#!/usr/bin/env bash
# Sanitized build + full test run: the gate for fabric/self-healing and
# parallel-dispatch work.
#
# Usage: scripts/check.sh [mode-or-sanitizers]
#   (none)            address,undefined (the default gate)
#   asan | address    AddressSanitizer + UndefinedBehaviorSanitizer
#   thread | tsan     ThreadSanitizer — certifies the parallel dispatch
#                     executor (worker pool, merge barrier) is race-free;
#                     each sanitizer gets its own build tree
#   <list>            any raw comma-separated -fsanitize= list
set -euo pipefail

MODE="${1:-address,undefined}"
case "$MODE" in
  asan|address) SANITIZE="address,undefined" ;;
  thread|tsan)  SANITIZE="thread" ;;
  *)            SANITIZE="$MODE" ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-sanitize-${SANITIZE//,/-}"

cmake -B "$BUILD" -S "$ROOT" -DGMMCS_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
