#!/usr/bin/env bash
# Sanitized build + full test run: the gate for fabric/self-healing work.
# Usage: scripts/check.sh [sanitizers]   (default: address,undefined)
set -euo pipefail

SANITIZE="${1:-address,undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-sanitize"

cmake -B "$BUILD" -S "$ROOT" -DGMMCS_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
