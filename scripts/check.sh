#!/usr/bin/env bash
# Sanitized build + full test run: the gate for fabric/self-healing and
# parallel-dispatch work.
#
# Usage: scripts/check.sh [mode-or-sanitizers]
#   (none)            address,undefined (the default gate)
#   asan | address    AddressSanitizer + UndefinedBehaviorSanitizer
#   thread | tsan     ThreadSanitizer — certifies the parallel dispatch
#                     executor (worker pool, merge barrier) is race-free;
#                     each sanitizer gets its own build tree
#   lint              both linters (determinism + gmmcs-lint, including
#                     the snapshot-discipline and lifetime passes) and
#                     the lint fixture selftests; no build tree
#                     required. Budgeted: the whole mode must finish
#                     inside LINT_BUDGET_S (default 180 s) so the gate
#                     stays cheap enough to run on every commit
#   chaos [seed [n]]  sanitized (asan,ubsan) generated-plan batch: builds
#                     the chaos bench and runs n generated fault plans
#                     (default 40) through the invariant oracle. Seed
#                     defaults to the current commit SHA so every commit
#                     explores fresh plans while staying reproducible —
#                     any violation prints a replayable chaos-spec.
#   fuzz [seed [n]]   sanitized (asan,ubsan) decoder fuzzing: replays the
#                     committed shrunk corpus (tests/fuzz_seeds/), then
#                     runs n seeded mutations (default 500) per decoder
#                     family under the no-throw / O(N)-allocation
#                     invariants. Seed defaults to the commit SHA; any
#                     violation prints a shrunk hex reproducer to commit.
#   <list>            any raw comma-separated -fsanitize= list
set -euo pipefail

MODE="${1:-address,undefined}"

if [[ "$MODE" == "chaos" ]]; then
  ROOT="$(cd "$(dirname "$0")/.." && pwd)"
  SEED="${2:-}"
  if [[ -z "$SEED" ]]; then
    # Derive the batch seed from the commit: hex short-SHA as an integer.
    SEED="$((16#$(git -C "$ROOT" rev-parse --short=12 HEAD)))"
  fi
  PLANS="${3:-40}"
  BUILD="$ROOT/build-sanitize-address-undefined"
  cmake -B "$BUILD" -S "$ROOT" -DGMMCS_SANITIZE="address,undefined" >/dev/null
  cmake --build "$BUILD" -j "$(nproc)" --target fabric_chaos test_chaos
  # The property tests first (fixed seeds + corpus replay), then the
  # commit-seeded batch.
  "$BUILD/tests/test_chaos"
  (cd "$BUILD" && ./bench/fabric_chaos --seed "$SEED" --plans "$PLANS")
  echo "check.sh chaos: $PLANS generated plans clean (seed $SEED)"
  exit 0
fi

if [[ "$MODE" == "fuzz" ]]; then
  ROOT="$(cd "$(dirname "$0")/.." && pwd)"
  SEED="${2:-}"
  if [[ -z "$SEED" ]]; then
    SEED="$((16#$(git -C "$ROOT" rev-parse --short=12 HEAD)))"
  fi
  ITERS="${3:-500}"
  exec "$ROOT/tools/fuzz/run_fuzz.sh" --seed "$SEED" --iters "$ITERS"
fi

if [[ "$MODE" == "lint" ]]; then
  ROOT="$(cd "$(dirname "$0")/.." && pwd)"
  LINT_BUDGET_S="${LINT_BUDGET_S:-180}"
  SECONDS=0
  # Prefer the compilation database of an existing build tree so the scan
  # matches exactly what ships; fall back to a directory walk.
  CCDB=""
  for tree in "$ROOT"/build "$ROOT"/build-*; do
    if [[ -f "$tree/compile_commands.json" ]]; then CCDB="$tree/compile_commands.json"; break; fi
  done
  python3 "$ROOT/tools/lint/tests/test_gmmcs_lint.py"
  python3 "$ROOT/tools/lint/tests/test_lock_order.py"
  python3 "$ROOT/tools/lint/tests/test_snapshot.py"
  python3 "$ROOT/tools/lint/tests/test_lifetime.py"
  python3 "$ROOT/tools/lint/tests/test_copy.py"
  python3 "$ROOT/tools/lint/tests/test_wire.py"
  JOBS="$(nproc)"
  if [[ -n "$CCDB" ]]; then
    python3 "$ROOT/tools/lint/determinism_lint.py" --root "$ROOT" --compile-commands "$CCDB" --jobs "$JOBS"
    python3 "$ROOT/tools/lint/gmmcs_lint.py" --root "$ROOT" --compile-commands "$CCDB" --jobs "$JOBS"
  else
    python3 "$ROOT/tools/lint/determinism_lint.py" --root "$ROOT" --jobs "$JOBS"
    python3 "$ROOT/tools/lint/gmmcs_lint.py" --root "$ROOT" --jobs "$JOBS"
  fi
  echo "check.sh lint: all linters clean in ${SECONDS}s (budget ${LINT_BUDGET_S}s)"
  if (( SECONDS > LINT_BUDGET_S )); then
    echo "check.sh lint: wall-clock budget exceeded" >&2
    exit 1
  fi
  exit 0
fi

case "$MODE" in
  asan|address) SANITIZE="address,undefined" ;;
  thread|tsan)  SANITIZE="thread" ;;
  *)            SANITIZE="$MODE" ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-sanitize-${SANITIZE//,/-}"

cmake -B "$BUILD" -S "$ROOT" -DGMMCS_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
