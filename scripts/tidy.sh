#!/usr/bin/env bash
# clang-tidy over every translation unit in the build, using .clang-tidy.
# Usage: scripts/tidy.sh [build-dir]   (default: build-tidy, configured here)
#
# Exits 0 with a notice when clang-tidy is not installed — the container
# toolchain is GCC-only; CI provides clang. Same availability gating as
# the -Wthread-safety build (see CMakeLists.txt).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (GCC-only toolchain)." >&2
  exit 0
fi

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD" -quiet "$ROOT/src/.*\.cpp"
else
  # Fallback: drive clang-tidy file by file off the compilation database.
  python3 - "$BUILD" "$ROOT" <<'EOF'
import json, subprocess, sys
build, root = sys.argv[1], sys.argv[2]
db = json.load(open(f"{build}/compile_commands.json"))
files = sorted({e["file"] for e in db if "/src/" in e["file"]})
rc = 0
for f in files:
    r = subprocess.run(["clang-tidy", "-p", build, "-quiet", f])
    rc = rc or r.returncode
sys.exit(rc)
EOF
fi
