// Tests for XGSP: session model, message vocabulary, session server over
// the broker, directory service, WSDL-CI binding, meeting scheduler.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/client.hpp"
#include "xgsp/directory.hpp"
#include "xgsp/messages.hpp"
#include "xgsp/scheduler.hpp"
#include "xgsp/session.hpp"
#include "xgsp/session_server.hpp"
#include "xgsp/web_server.hpp"
#include "xgsp/wsdl_ci.hpp"

namespace gmmcs::xgsp {
namespace {

TEST(SessionModel, StreamsGetTopics) {
  Session s("7", "weekly", "alice", SessionMode::kAdHoc);
  s.add_stream("audio", "PCMU");
  s.add_stream("video", "H261");
  ASSERT_NE(s.stream("video"), nullptr);
  EXPECT_EQ(s.stream("video")->topic, "/xgsp/session/7/video");
  EXPECT_EQ(s.control_topic(), "/xgsp/session/7/control");
  EXPECT_EQ(s.stream("data"), nullptr);
}

TEST(SessionModel, MembershipLifecycle) {
  Session s("1", "t", "alice", SessionMode::kAdHoc);
  EXPECT_EQ(s.state(), SessionState::kCreated);
  EXPECT_TRUE(s.join({"alice", EndpointKind::kXgsp, true}));
  EXPECT_EQ(s.state(), SessionState::kActive);
  EXPECT_FALSE(s.join({"alice", EndpointKind::kSip, false}));  // duplicate
  EXPECT_TRUE(s.join({"bob", EndpointKind::kH323, false}));
  EXPECT_TRUE(s.leave("alice"));
  EXPECT_FALSE(s.leave("alice"));
  s.end();
  EXPECT_EQ(s.state(), SessionState::kEnded);
  EXPECT_FALSE(s.join({"carol", EndpointKind::kXgsp, false}));
}

TEST(SessionModel, FloorControlQueue) {
  Session s("1", "t", "a", SessionMode::kAdHoc);
  s.join({"a", EndpointKind::kXgsp, true});
  s.join({"b", EndpointKind::kSip, false});
  s.join({"c", EndpointKind::kH323, false});
  EXPECT_TRUE(s.request_floor("a"));
  EXPECT_FALSE(s.request_floor("b"));  // queued
  EXPECT_FALSE(s.request_floor("c"));
  EXPECT_EQ(s.floor_holder(), "a");
  ASSERT_EQ(s.floor_queue().size(), 2u);
  EXPECT_TRUE(s.release_floor("a"));
  EXPECT_EQ(s.floor_holder(), "b");
  // Leaving while holding passes the floor on.
  s.leave("b");
  EXPECT_EQ(s.floor_holder(), "c");
}

TEST(SessionModel, FloorRequiresMembership) {
  Session s("1", "t", "a", SessionMode::kAdHoc);
  EXPECT_FALSE(s.request_floor("stranger"));
}

TEST(SessionModel, XmlRoundTrip) {
  Session s("9", "Grid <Forum>", "gcf@iu", SessionMode::kScheduled);
  s.add_stream("audio", "PCMU");
  s.join({"gcf@iu", EndpointKind::kXgsp, true});
  s.join({"wewu@iu", EndpointKind::kAdmire, false});
  Session t = Session::from_xml(s.to_xml());
  EXPECT_EQ(t.id(), "9");
  EXPECT_EQ(t.title(), "Grid <Forum>");
  EXPECT_EQ(t.mode(), SessionMode::kScheduled);
  EXPECT_EQ(t.state(), SessionState::kActive);
  ASSERT_EQ(t.members().size(), 2u);
  EXPECT_EQ(t.members()[1].kind, EndpointKind::kAdmire);
  EXPECT_TRUE(t.members()[0].moderator);
  ASSERT_EQ(t.streams().size(), 1u);
  EXPECT_EQ(t.streams()[0].topic, "/xgsp/session/9/audio");
}

TEST(XgspMessages, RequestRoundTrips) {
  Message m = Message::create_session("sync", "alice", SessionMode::kScheduled,
                                      {{"audio", "PCMU"}, {"video", "H263"}});
  m.seq = 5;
  m.reply_to = "/xgsp/client/alice";
  auto r = Message::parse(m.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, MsgType::kCreateSession);
  EXPECT_EQ(r.value().seq, 5u);
  EXPECT_EQ(r.value().title, "sync");
  EXPECT_EQ(r.value().mode, SessionMode::kScheduled);
  ASSERT_EQ(r.value().media.size(), 2u);
  EXPECT_EQ(r.value().media[1].codec, "H263");
}

TEST(XgspMessages, JoinCarriesEndpointKind) {
  Message m = Message::join("3", "bob", EndpointKind::kH323);
  auto r = Message::parse(m.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().endpoint_kind, EndpointKind::kH323);
  EXPECT_EQ(r.value().session_id, "3");
}

TEST(XgspMessages, ErrorRoundTrip) {
  auto r = Message::parse(Message::error("nope").serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok);
  EXPECT_EQ(r.value().reason, "nope");
}

TEST(XgspMessages, RejectsUnknownType) {
  EXPECT_FALSE(Message::parse("<xgsp type=\"warp-drive\"/>").ok());
  EXPECT_FALSE(Message::parse("<notxgsp/>").ok());
}

class XgspServerTest : public ::testing::Test {
 protected:
  XgspServerTest() : broker_node(net.add_host("broker"), 0) {
    server = std::make_unique<SessionServer>(net.add_host("server"),
                                             broker_node.stream_endpoint());
  }
  sim::EventLoop loop;
  sim::Network net{loop, 17};
  broker::BrokerNode broker_node;
  std::unique_ptr<SessionServer> server;
};

TEST_F(XgspServerTest, InProcessCreateJoinLeaveEnd) {
  Message created = server->handle(
      Message::create_session("m", "alice", SessionMode::kAdHoc, {{"audio", "PCMU"}}));
  ASSERT_EQ(created.type, MsgType::kSessionInfo);
  std::string id = created.sessions.front().id();
  Message joined = server->handle(Message::join(id, "bob", EndpointKind::kSip));
  EXPECT_EQ(joined.type, MsgType::kJoinAck);
  EXPECT_TRUE(joined.sessions.front().has_member("bob"));
  Message left = server->handle(Message::leave(id, "bob"));
  EXPECT_EQ(left.type, MsgType::kAck);
  Message ended = server->handle(Message::end_session(id));
  EXPECT_EQ(ended.type, MsgType::kAck);
  EXPECT_EQ(server->find(id)->state(), SessionState::kEnded);
}

TEST_F(XgspServerTest, CreatorBecomesModerator) {
  Message created = server->handle(
      Message::create_session("m", "alice", SessionMode::kAdHoc, {}));
  std::string id = created.sessions.front().id();
  Message joined = server->handle(Message::join(id, "alice", EndpointKind::kXgsp));
  EXPECT_TRUE(joined.sessions.front().members().front().moderator);
}

TEST_F(XgspServerTest, DefaultsToAudioVideoStreams) {
  Message created = server->handle(
      Message::create_session("m", "alice", SessionMode::kAdHoc, {}));
  EXPECT_EQ(created.sessions.front().streams().size(), 2u);
}

TEST_F(XgspServerTest, JoinUnknownSessionFails) {
  Message r = server->handle(Message::join("999", "bob", EndpointKind::kSip));
  EXPECT_EQ(r.type, MsgType::kError);
  EXPECT_FALSE(r.ok);
}

TEST_F(XgspServerTest, RemoteClientFullFlow) {
  XgspClient alice(net.add_host("alice"), broker_node.stream_endpoint(), "alice");
  XgspClient bob(net.add_host("bob"), broker_node.stream_endpoint(), "bob");
  std::string session_id;
  alice.create_session("weekly", SessionMode::kAdHoc, {{"video", "H261"}},
                       [&](const Message& r) {
                         ASSERT_EQ(r.type, MsgType::kSessionInfo);
                         session_id = r.sessions.front().id();
                       });
  loop.run();
  ASSERT_FALSE(session_id.empty());
  bool bob_joined = false;
  std::string video_topic;
  bob.join(session_id, [&](const Message& r) {
    ASSERT_EQ(r.type, MsgType::kJoinAck);
    bob_joined = true;
    video_topic = r.sessions.front().stream("video")->topic;
  });
  loop.run();
  ASSERT_TRUE(bob_joined);
  // Media plane: bob subscribes the topic from the join ack, alice sends.
  bob.subscribe_media(video_topic);
  int frames = 0;
  bob.on_media([&](const broker::Event&) { ++frames; });
  loop.run();
  alice.publish_media(video_topic, Bytes(100, 1));
  loop.run();
  EXPECT_EQ(frames, 1);
}

TEST_F(XgspServerTest, NotificationsReachJoinedClients) {
  XgspClient alice(net.add_host("alice"), broker_node.stream_endpoint(), "alice");
  XgspClient bob(net.add_host("bob"), broker_node.stream_endpoint(), "bob");
  std::string session_id;
  alice.create_session("weekly", SessionMode::kAdHoc, {}, [&](const Message& r) {
    session_id = r.sessions.front().id();
  });
  loop.run();
  alice.join(session_id, [](const Message&) {});
  loop.run();
  std::vector<std::string> alice_saw;
  alice.on_notification([&](const Message& m) { alice_saw.push_back(m.reason); });
  bob.join(session_id, [](const Message&) {});
  loop.run();
  ASSERT_FALSE(alice_saw.empty());
  EXPECT_EQ(alice_saw.back(), "join-session");
}

TEST_F(XgspServerTest, FloorControlOverBroker) {
  XgspClient alice(net.add_host("alice"), broker_node.stream_endpoint(), "alice");
  std::string session_id;
  alice.create_session("f", SessionMode::kAdHoc, {}, [&](const Message& r) {
    session_id = r.sessions.front().id();
  });
  loop.run();
  alice.join(session_id, [](const Message&) {});
  loop.run();
  std::string holder;
  alice.request_floor(session_id, [&](const Message& r) {
    ASSERT_EQ(r.type, MsgType::kFloorStatus);
    holder = r.floor_holder;
  });
  loop.run();
  EXPECT_EQ(holder, "alice");
}

TEST(DirectoryData, UserAndTerminalBinding) {
  Directory d;
  EXPECT_TRUE(d.register_user({.id = "alice", .display_name = "Alice", .community = "iu"}));
  EXPECT_FALSE(d.register_user({.id = "alice"}));  // duplicate
  EXPECT_TRUE(d.bind_terminal("alice", EndpointKind::kSip, "sip:alice@iu.edu"));
  EXPECT_FALSE(d.bind_terminal("ghost", EndpointKind::kSip, "x"));
  const UserAccount* u = d.find_user("alice");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->terminal_kind, EndpointKind::kSip);
  EXPECT_EQ(u->terminal_address, "sip:alice@iu.edu");
}

TEST(DirectoryData, CommunityRegistry) {
  Directory d;
  d.register_community({.name = "admire-beihang", .kind = "admire",
                        .web_service = {5, 8088}, .wsdl_ci = "<wsdl-ci/>"});
  const CommunityRecord* c = d.find_community("admire-beihang");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->web_service.port, 8088);
  EXPECT_EQ(d.community_names().size(), 1u);
}

TEST(WsdlCiDescriptor, RoundTrip) {
  WsdlCi d;
  d.service_name = "AdmireConferenceService";
  d.community = "admire";
  d.endpoint = {4, 8088};
  d.establish_op = "GetRendezvous";
  auto r = WsdlCi::parse(d.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().service_name, "AdmireConferenceService");
  EXPECT_EQ(r.value().establish_op, "GetRendezvous");
  EXPECT_EQ(r.value().membership_op, "SessionMembership");  // default preserved
  EXPECT_EQ(r.value().endpoint.node, 4u);
}

TEST(WsdlCiDescriptor, RejectsMalformed) {
  EXPECT_FALSE(WsdlCi::parse("<other/>").ok());
  EXPECT_FALSE(WsdlCi::parse("<wsdl-ci service=\"x\"/>").ok());  // no endpoint
}

class XgspSoapTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 23};
};

TEST_F(XgspSoapTest, DirectoryServiceOverSoap) {
  sim::Host& server_host = net.add_host("dir");
  sim::Host& client_host = net.add_host("client");
  DirectoryServer server(server_host);
  DirectoryClient client(client_host, server.endpoint());
  bool registered = false;
  client.register_user({.id = "auyar", .display_name = "Ahmet", .community = "syr"},
                       [&](bool ok) { registered = ok; });
  loop.run();
  ASSERT_TRUE(registered);
  std::optional<UserAccount> found;
  client.lookup_user("auyar", [&](std::optional<UserAccount> u) { found = std::move(u); });
  loop.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->display_name, "Ahmet");
  std::optional<UserAccount> missing = UserAccount{};
  client.lookup_user("nobody", [&](std::optional<UserAccount> u) { missing = std::move(u); });
  loop.run();
  EXPECT_FALSE(missing.has_value());
}

TEST_F(XgspSoapTest, WebServerCreateJoinOverSoap) {
  sim::Host& broker_host = net.add_host("broker");
  broker::BrokerNode broker_node(broker_host, 0);
  sim::Host& server_host = net.add_host("xgsp");
  SessionServer sessions(server_host, broker_node.stream_endpoint());
  Directory directory;
  directory.register_user({.id = "alice", .display_name = "Alice", .community = "iu"});
  WebServer web(server_host, sessions, directory);
  soap::SoapClient portal(net.add_host("portal"), web.endpoint());
  std::string session_id;
  xml::Element create("CreateSession");
  create.set_attr("title", "demo");
  create.set_attr("creator", "alice");
  portal.call(std::move(create), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    session_id = r.value().child("session")->attr("id");
  });
  loop.run();
  ASSERT_FALSE(session_id.empty());
  xml::Element join("JoinSession");
  join.set_attr("session", session_id);
  join.set_attr("user", "alice");
  bool joined = false;
  portal.call(std::move(join), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    joined = true;
  });
  loop.run();
  EXPECT_TRUE(joined);
  EXPECT_TRUE(sessions.find(session_id)->has_member("alice"));
}

TEST_F(XgspSoapTest, SchedulerAutoStartsAndEndsMeetings) {
  sim::Host& broker_host = net.add_host("broker");
  broker::BrokerNode broker_node(broker_host, 0);
  SessionServer sessions(net.add_host("xgsp"), broker_node.stream_endpoint());
  MeetingScheduler scheduler(loop, sessions);
  std::string started_session;
  bool finished = false;
  scheduler.on_started([&](const Reservation& r) { started_session = r.session_id; });
  scheduler.on_finished([&](const Reservation&) { finished = true; });
  std::string resv = scheduler.reserve("quarterly", "gcf", SimTime{duration_s(60).ns()},
                                       duration_s(30), {"wewu", "auyar"});
  EXPECT_EQ(scheduler.upcoming().size(), 1u);
  loop.run_until(SimTime{duration_s(59).ns()});
  EXPECT_TRUE(started_session.empty());
  loop.run_until(SimTime{duration_s(61).ns()});
  ASSERT_FALSE(started_session.empty());
  EXPECT_EQ(sessions.find(started_session)->mode(), SessionMode::kScheduled);
  loop.run_until(SimTime{duration_s(95).ns()});
  EXPECT_TRUE(finished);
  EXPECT_EQ(sessions.find(started_session)->state(), SessionState::kEnded);
  EXPECT_EQ(scheduler.find(resv)->session_id, started_session);
}

TEST_F(XgspSoapTest, SchedulerCancelPreventsStart) {
  sim::Host& broker_host = net.add_host("broker");
  broker::BrokerNode broker_node(broker_host, 0);
  SessionServer sessions(net.add_host("xgsp"), broker_node.stream_endpoint());
  MeetingScheduler scheduler(loop, sessions);
  std::string resv = scheduler.reserve("never", "gcf", SimTime{duration_s(10).ns()},
                                       duration_s(10), {});
  EXPECT_TRUE(scheduler.cancel(resv));
  loop.run_until(SimTime{duration_s(30).ns()});
  EXPECT_TRUE(sessions.sessions().empty());
  EXPECT_THROW(scheduler.reserve("past", "gcf", SimTime{duration_s(1).ns()}, duration_s(1), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gmmcs::xgsp
