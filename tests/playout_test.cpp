// Tests for the RTP playout (jitter) buffer.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "rtp/playout.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::rtp {
namespace {

RtpPacket packet(std::uint16_t seq, std::uint32_t ts) {
  RtpPacket p;
  p.sequence = seq;
  p.timestamp = ts;
  p.ssrc = 1;
  return p;
}

TEST(Playout, RestoresMediaTimeline) {
  sim::EventLoop loop;
  PlayoutBuffer buf(loop, {.delay = duration_ms(100), .clock_rate = 90000});
  std::vector<std::int64_t> play_times;
  buf.on_play([&](const RtpPacket&) { play_times.push_back(loop.now().ns()); });
  // Packets arrive with jittered spacing (0, 55, 70 ms) but timestamps
  // 40 ms apart.
  buf.push(packet(0, 0));
  loop.run_until(SimTime{duration_ms(55).ns()});
  buf.push(packet(1, 3600));
  loop.run_until(SimTime{duration_ms(70).ns()});
  buf.push(packet(2, 7200));
  loop.run();
  ASSERT_EQ(play_times.size(), 3u);
  // Playout at 100, 140, 180 ms: smooth 40 ms spacing restored.
  EXPECT_EQ(play_times[0], duration_ms(100).ns());
  EXPECT_EQ(play_times[1], duration_ms(140).ns());
  EXPECT_EQ(play_times[2], duration_ms(180).ns());
  EXPECT_EQ(buf.played(), 3u);
}

TEST(Playout, DropsLatePackets) {
  sim::EventLoop loop;
  PlayoutBuffer buf(loop, {.delay = duration_ms(50), .clock_rate = 90000});
  int played = 0;
  buf.on_play([&](const RtpPacket&) { ++played; });
  buf.push(packet(0, 0));  // plays at 50ms
  // Packet 1 (ts 3600 = +40ms media time, playout 90ms) arrives at 120ms.
  loop.run_until(SimTime{duration_ms(120).ns()});
  buf.push(packet(1, 3600));
  loop.run();
  EXPECT_EQ(played, 1);
  EXPECT_EQ(buf.dropped_late(), 1u);
}

TEST(Playout, AbsorbsReordering) {
  sim::EventLoop loop;
  PlayoutBuffer buf(loop, {.delay = duration_ms(100), .clock_rate = 90000});
  std::vector<std::uint16_t> order;
  buf.on_play([&](const RtpPacket& p) { order.push_back(p.sequence); });
  // Sequence 0 then 2 then 1 within the buffer window.
  buf.push(packet(0, 0));
  loop.run_until(SimTime{duration_ms(10).ns()});
  buf.push(packet(2, 7200));
  loop.run_until(SimTime{duration_ms(20).ns()});
  buf.push(packet(1, 3600));
  loop.run();
  EXPECT_EQ(order, (std::vector<std::uint16_t>{0, 1, 2}));
  EXPECT_EQ(buf.reorders_absorbed(), 1u);
  EXPECT_EQ(buf.dropped_late(), 0u);
}

TEST(Playout, FragmentsShareTimestampAndInstant) {
  sim::EventLoop loop;
  PlayoutBuffer buf(loop);
  std::vector<std::int64_t> at;
  buf.on_play([&](const RtpPacket&) { at.push_back(loop.now().ns()); });
  buf.push(packet(0, 1000));
  buf.push(packet(1, 1000));
  buf.push(packet(2, 1000));
  loop.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], at[1]);
  EXPECT_EQ(at[1], at[2]);
}

TEST(Playout, LargerDelayToleratesMoreJitter) {
  auto run = [](SimDuration delay) {
    sim::EventLoop loop;
    PlayoutBuffer buf(loop, {.delay = delay, .clock_rate = 90000});
    Rng rng(5);
    // 200 packets, 20ms media spacing, exponential network jitter ~15ms.
    for (int i = 0; i < 200; ++i) {
      auto arrival = duration_ms(20 * i) + duration_seconds(rng.exponential(0.015));
      loop.schedule_at(SimTime{arrival.ns()},
                       [&buf, i] { buf.push(packet(static_cast<std::uint16_t>(i), 1800u * i)); });
    }
    loop.run();
    return buf.dropped_late();
  };
  std::uint64_t tight = run(duration_ms(10));
  std::uint64_t roomy = run(duration_ms(120));
  EXPECT_GT(tight, roomy);
  EXPECT_EQ(roomy, 0u);
}

}  // namespace
}  // namespace gmmcs::rtp
