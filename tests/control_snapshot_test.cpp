// Epoch-snapshot control plane (DESIGN.md §12): readers holding a stale
// epoch must see a complete, internally consistent control plane; writers
// publish new epochs atomically, deferred to a deterministic (when, seq)
// position while events execute.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/control_snapshot.hpp"
#include "broker/subscription_index.hpp"
#include "broker/topic.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

using namespace gmmcs;
using broker::BrokerId;

namespace {

/// 4-broker ring fabric on fresh hosts.
struct RingFixture {
  sim::EventLoop loop;
  sim::Network net{loop};
  broker::BrokerNetwork fabric{net};

  RingFixture() {
    for (int i = 0; i < 4; ++i) fabric.add_broker(net.add_host("b" + std::to_string(i)));
    for (int i = 0; i < 4; ++i) fabric.link(i, (i + 1) % 4);
    fabric.finalize();
    loop.run();  // settle peer-link handshakes
  }
};

/// Every reachable pair in the snapshot must be walkable: following
/// next_hop from `from` reaches `to` in exactly distance(from, to) steps.
/// A half-built table (cleared but not yet rebuilt, or partially copied)
/// cannot pass this.
void expect_routes_complete(const broker::ControlSnapshot& snap, BrokerId n) {
  const broker::RouteTables& routes = snap.routes();
  for (BrokerId from = 0; from < n; ++from) {
    for (BrokerId to = 0; to < n; ++to) {
      if (from == to) continue;
      int d = routes.distance(from, to);
      ASSERT_GT(d, 0) << from << "->" << to;
      BrokerId cur = from;
      for (int hop = 0; hop < d; ++hop) cur = routes.next_hop(cur, to);
      EXPECT_EQ(cur, to) << "walk " << from << "->" << to;
    }
  }
}

}  // namespace

TEST(ControlSnapshot, EmptyEpochBehavesLikeUnfinalizedTables) {
  sim::EventLoop loop;
  sim::Network net(loop);
  broker::BrokerNetwork fabric(net);
  broker::ControlSnapshotPtr snap = fabric.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->routes().distance(0, 1), -1);
  EXPECT_THROW((void)snap->routes().next_hop(0, 1), std::logic_error);
  EXPECT_TRUE(fabric.interested_brokers("/any/topic", 0).empty());
}

TEST(ControlSnapshot, StaleReaderSeesCompleteRoutesAcrossRepair) {
  RingFixture f;
  broker::ControlSnapshotPtr before = f.fabric.snapshot();
  expect_routes_complete(*before, 4);
  ASSERT_EQ(before->routes().distance(0, 1), 1);

  // Route repair publishes a new epoch; the held snapshot must be the
  // unchanged old epoch, complete and consistent.
  f.fabric.report_link(0, 1, /*up=*/false);
  broker::ControlSnapshotPtr after = f.fabric.snapshot();
  ASSERT_NE(before.get(), after.get());
  EXPECT_GT(after->epoch(), before->epoch());
  EXPECT_EQ(before->routes().distance(0, 1), 1);
  EXPECT_EQ(before->routes().next_hop(0, 1), 1u);
  expect_routes_complete(*before, 4);
  // The new epoch routes around the dead link: 0 -> 3 -> 2 -> 1.
  EXPECT_EQ(after->routes().distance(0, 1), 3);
  EXPECT_EQ(after->routes().next_hop(0, 1), 3u);
  expect_routes_complete(*after, 4);
}

TEST(ControlSnapshot, InterestOnlyPublicationSharesRoutesPointer) {
  RingFixture f;
  broker::ControlSnapshotPtr before = f.fabric.snapshot();
  f.fabric.advertise(broker::TopicFilter("/conf/a"), /*origin=*/2, /*add=*/true);
  broker::ControlSnapshotPtr after = f.fabric.snapshot();
  ASSERT_NE(before.get(), after.get());
  // Two-level sharing: only the interest half was rebuilt.
  EXPECT_EQ(before->routes_ptr().get(), after->routes_ptr().get());
  EXPECT_NE(before->interest_ptr().get(), after->interest_ptr().get());
  EXPECT_TRUE(before->interest().matches("/conf/a", 0).empty());
  EXPECT_EQ(after->interest().matches("/conf/a", 0), std::vector<std::uint32_t>{2u});
}

TEST(ControlSnapshot, PublicationDefersToEventBoundaryDuringRun) {
  RingFixture f;
  const std::uint64_t epoch0 = f.fabric.snapshot()->epoch();
  std::uint64_t epoch_between = 0;
  std::vector<BrokerId> seen_same_event;
  std::vector<BrokerId> seen_between;
  std::vector<BrokerId> seen_after;
  const SimTime t = f.loop.now() + duration_ms(1);
  f.loop.schedule_at(t, [&] {
    // Reader event sequenced after the mutation below but before the
    // deferred publication: must still see the whole old epoch.
    f.loop.schedule_at(t, [&] {
      seen_between = f.fabric.interested_brokers("/conf/x", 0);
      epoch_between = f.fabric.snapshot()->epoch();
    });
    f.fabric.advertise(broker::TopicFilter("/conf/x"), /*origin=*/3, /*add=*/true);
    // Same event as the mutation: publication has not run yet either.
    seen_same_event = f.fabric.interested_brokers("/conf/x", 0);
  });
  f.loop.schedule_at(t + SimDuration{1}, [&] {
    seen_after = f.fabric.interested_brokers("/conf/x", 0);
  });
  f.loop.run();
  EXPECT_TRUE(seen_same_event.empty());
  EXPECT_TRUE(seen_between.empty());
  EXPECT_EQ(epoch_between, epoch0);
  EXPECT_EQ(seen_after, std::vector<BrokerId>{3u});
  EXPECT_GT(f.fabric.snapshot()->epoch(), epoch0);
}

TEST(ControlSnapshot, SubscribeDuringFanoutIsPerEventAtomic) {
  // End-to-end flavor of the visibility contract: a publish event that
  // enters the broker before a subscription's epoch flips delivers to the
  // old interest set; the next publish delivers to the new one.
  RingFixture f;
  const char* topic = "/conf/atomic";
  broker::BrokerClient sub(f.net.add_host("sub"), f.fabric.broker(2).stream_endpoint(),
                           {.name = "sub"});
  broker::BrokerClient pub(f.net.add_host("pub"), f.fabric.broker(0).stream_endpoint(),
                           {.name = "pub"});
  int got = 0;
  sub.on_event([&](const broker::Event&) { ++got; });
  f.loop.run();  // settle hellos
  // Subscribe and publish racing: whether broker 0's routing job reads
  // interest before or after the advertisement's epoch flip is a fixed,
  // deterministic outcome — the event sees the subscription entirely or
  // not at all (0 or 1 copies, never a duplicate from a half-applied
  // table). A publish after the flip must then deliver exactly one more.
  sub.subscribe(topic);
  pub.publish(topic, Bytes(64, 1));
  f.loop.run();
  const int first = got;
  EXPECT_TRUE(first == 0 || first == 1) << first;
  pub.publish(topic, Bytes(64, 1));
  f.loop.run();
  EXPECT_EQ(got, first + 1);
}

TEST(ControlSnapshot, FlattenMatchesLiveIndex) {
  broker::SubscriptionIndex index;
  index.subscribe(1, broker::TopicFilter("/conf/a"));
  index.subscribe(2, broker::TopicFilter("/conf/a"));
  index.subscribe(2, broker::TopicFilter("/conf/a"));  // refcount 2
  index.subscribe(3, broker::TopicFilter("/conf/*"));
  index.subscribe(4, broker::TopicFilter("/conf/#"));
  index.subscribe(5, broker::TopicFilter("/other/b"));
  index.unsubscribe(2, broker::TopicFilter("/conf/a"));  // still referenced
  broker::InterestTable flat = index.flatten();
  const char* topics[] = {"/conf/a", "/conf/b", "/conf/a/b", "/other/b", "/nope"};
  for (const char* topic : topics) {
    for (std::uint32_t exclude = 0; exclude <= 5; ++exclude) {
      EXPECT_EQ(flat.matches(topic, exclude), index.matches(topic, exclude))
          << topic << " excl " << exclude;
    }
  }
}

TEST(ControlSnapshot, BrokerHostsKeepParallelLanes) {
  // The point of the exercise: broker hosts are no longer exclusive, so
  // their events carry real lanes and parallel dispatch applies to them.
  RingFixture f;
  for (BrokerId id = 0; id < 4; ++id) {
    EXPECT_NE(f.fabric.broker(id).host().lane(), sim::kNoLane);
  }
}
