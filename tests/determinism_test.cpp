// Determinism certification: a run is a pure function of (config, seed),
// byte-identical across repeats and across worker counts (DESIGN.md §9).
// All comparisons are exact — including doubles — because "close" is not
// reproducible; the metrics must come out bit-for-bit equal.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "core/experiments.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

using namespace gmmcs;

namespace {

struct ChaosMetrics {
  std::set<std::uint32_t> sub_a_seqs;
  std::set<std::uint32_t> sub_b_seqs;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t executed = 0;
  std::uint64_t route_recomputes = 0;
  std::int64_t end_ns = 0;
  bool operator==(const ChaosMetrics&) const = default;
};

/// A condensed fabric_chaos bench: 4-broker ring under a crash and a link
/// flap, steady publish stream, two subscribers. Returns every simulated
/// metric the bench reports. Broker-heavy by design — broker hosts run on
/// ordinary parallel lanes since the epoch-snapshot control plane, so with
/// workers > 1 this exercises concurrent fan-out, snapshot reads and
/// staged control-plane writes.
ChaosMetrics run_chaos(std::uint64_t seed, int workers = 1) {
  sim::EventLoop loop;
  loop.set_workers(workers);
  sim::Network net(loop, seed);
  // Lossy paths so the seeded RNG actually shapes the run.
  net.set_default_path(sim::PathConfig{.latency = duration_us(200), .loss = 0.05});
  broker::BrokerNetwork fabric(net);
  broker::BrokerNode::Config bcfg;
  bcfg.heartbeat.interval = duration_ms(50);
  bcfg.heartbeat.miss_threshold = 3;
  std::vector<sim::Host*> hosts;
  for (int i = 0; i < 4; ++i) {
    sim::Host& h = net.add_host("b" + std::to_string(i));
    hosts.push_back(&h);
    fabric.add_broker(h, bcfg);
  }
  for (int i = 0; i < 4; ++i) fabric.link(i, (i + 1) % 4);
  fabric.finalize();

  const char* topic = "/conf/det";
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint(),
                           {.name = "pub"});
  broker::BrokerClient sub_a(net.add_host("subA"), fabric.broker(1).stream_endpoint(),
                             {.name = "subA"});
  broker::BrokerClient sub_b(net.add_host("subB"), fabric.broker(2).stream_endpoint(),
                             {.name = "subB"});
  ChaosMetrics m;
  sub_a.subscribe(topic);
  sub_b.subscribe(topic);
  sub_a.on_event([&](const broker::Event& ev) { m.sub_a_seqs.insert(ev.seq); });
  sub_b.on_event([&](const broker::Event& ev) { m.sub_b_seqs.insert(ev.seq); });

  sim::FaultPlan plan;
  plan.crash_host(hosts[3]->id(), SimTime{duration_ms(800).ns()},
                  SimTime{duration_ms(1500).ns()});
  plan.flap_link(hosts[1]->id(), hosts[2]->id(), SimTime{duration_ms(1800).ns()},
                 SimTime{duration_ms(2200).ns()});
  plan.install(net);

  for (int i = 0; i < 120; ++i) {
    loop.schedule_at(SimTime{duration_ms(300 + i * 20).ns()},
                     [&pub, topic] { pub.publish(topic, Bytes(128, 1)); });
  }
  loop.run_until(SimTime{duration_s(3).ns()});

  m.delivered = net.delivered();
  m.lost = net.lost();
  m.executed = loop.executed();
  m.route_recomputes = fabric.route_recomputes();
  m.end_ns = loop.now().ns();
  return m;
}

void expect_series_identical(const Series& a, const Series& b) {
  ASSERT_EQ(a.points().size(), b.points().size());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << "point " << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << "point " << i;
  }
}

}  // namespace

TEST(Determinism, ChaosFabricDoubleRunByteIdentical) {
  ChaosMetrics first = run_chaos(4242);
  ChaosMetrics second = run_chaos(4242);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.delivered, 0u);
  EXPECT_FALSE(first.sub_a_seqs.empty());
}

TEST(Determinism, ChaosFabricWorkerCountInvariant) {
  // The broker-heavy parallel certification: every simulated metric —
  // per-subscriber delivery sets included — must be byte-identical whether
  // the fabric's events run serially or on 8 workers.
  ChaosMetrics serial = run_chaos(4242, /*workers=*/1);
  ChaosMetrics parallel = run_chaos(4242, /*workers=*/8);
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial.delivered, 0u);
  EXPECT_GT(serial.route_recomputes, 0u);
  EXPECT_FALSE(serial.sub_a_seqs.empty());
  EXPECT_FALSE(serial.sub_b_seqs.empty());
}

TEST(Determinism, ChaosFabricSeedActuallyMatters) {
  // Guards against the double-run test passing vacuously (e.g. metrics
  // all zero): a different seed must perturb at least the event count.
  ChaosMetrics a = run_chaos(4242);
  ChaosMetrics b = run_chaos(777);
  EXPECT_NE(a, b);
}

TEST(Determinism, CapacityRunWorkerCountInvariant) {
  core::CapacityConfig cfg;
  cfg.clients = 40;
  cfg.seconds = 1.5;
  cfg.seed = 2003;

  cfg.workers = 1;
  core::CapacityPoint serial = run_capacity(cfg);
  cfg.workers = 4;
  core::CapacityPoint parallel = run_capacity(cfg);

  EXPECT_EQ(serial.clients, parallel.clients);
  EXPECT_EQ(serial.avg_delay_ms, parallel.avg_delay_ms);
  EXPECT_EQ(serial.p99_delay_ms, parallel.p99_delay_ms);
  EXPECT_EQ(serial.loss_ratio, parallel.loss_ratio);
  EXPECT_EQ(serial.offered_mbps, parallel.offered_mbps);
  EXPECT_EQ(serial.good_quality, parallel.good_quality);
  EXPECT_GT(serial.offered_mbps, 0.0);
}

TEST(Determinism, Fig3RunWorkerCountInvariant) {
  core::Fig3Config cfg;
  cfg.receivers = 24;
  cfg.measured = 4;
  cfg.packets = 50;
  cfg.seed = 2003;

  cfg.workers = 1;
  core::Fig3Result serial = run_fig3(cfg);
  cfg.workers = 4;
  core::Fig3Result parallel = run_fig3(cfg);

  expect_series_identical(serial.delay_ms, parallel.delay_ms);
  expect_series_identical(serial.jitter_ms, parallel.jitter_ms);
  EXPECT_EQ(serial.avg_delay_ms, parallel.avg_delay_ms);
  EXPECT_EQ(serial.avg_jitter_ms, parallel.avg_jitter_ms);
  EXPECT_EQ(serial.loss_ratio, parallel.loss_ratio);
  EXPECT_EQ(serial.dispatch_jobs_dropped, parallel.dispatch_jobs_dropped);
  ASSERT_FALSE(serial.delay_ms.points().empty());
}

TEST(Determinism, CapacityDoubleRunByteIdentical) {
  core::CapacityConfig cfg;
  cfg.clients = 30;
  cfg.seconds = 1.0;
  cfg.seed = 99;
  core::CapacityPoint a = run_capacity(cfg);
  core::CapacityPoint b = run_capacity(cfg);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.p99_delay_ms, b.p99_delay_ms);
  EXPECT_EQ(a.loss_ratio, b.loss_ratio);
  EXPECT_EQ(a.offered_mbps, b.offered_mbps);
}
