// Property-based tests: invariants checked over randomized inputs and
// parameter grids (TEST_P / INSTANTIATE_TEST_SUITE_P). Every generator is
// seeded from the suite parameter, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/event.hpp"
#include "broker/topic.hpp"
#include "common/random.hpp"
#include "h323/messages.hpp"
#include "rtp/packet.hpp"
#include "rtp/playout.hpp"
#include "rtp/receiver_stats.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sim/service_center.hpp"
#include "sip/message.hpp"
#include "transport/stream.hpp"
#include "xgsp/messages.hpp"
#include "xml/xml.hpp"

namespace gmmcs {
namespace {

// ---------------------------------------------------------------------------
// Wire-format round trips over randomized instances.
// ---------------------------------------------------------------------------

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};

  std::string random_token() {
    static const char* words[] = {"alice", "bob", "conf-7", "gmmcs", "video",
                                  "audio", "session", "h261",   "x",     "long-token-name"};
    return words[rng.uniform_int(0, 9)];
  }
  Bytes random_bytes(std::size_t max) {
    Bytes out(static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max))));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
    return out;
  }
};

TEST_P(WireRoundTrip, RtpPacket) {
  for (int i = 0; i < 50; ++i) {
    rtp::RtpPacket p;
    p.marker = rng.chance(0.5);
    p.payload_type = static_cast<std::uint8_t>(rng.uniform_int(0, 127));
    p.sequence = static_cast<std::uint16_t>(rng.next());
    p.timestamp = static_cast<std::uint32_t>(rng.next());
    p.ssrc = static_cast<std::uint32_t>(rng.next());
    for (int c = rng.uniform_int(0, 4); c > 0; --c) {
      p.csrcs.push_back(static_cast<std::uint32_t>(rng.next()));
    }
    p.payload = random_bytes(1400);
    auto r = rtp::RtpPacket::parse(p.serialize());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().marker, p.marker);
    EXPECT_EQ(r.value().payload_type, p.payload_type);
    EXPECT_EQ(r.value().sequence, p.sequence);
    EXPECT_EQ(r.value().timestamp, p.timestamp);
    EXPECT_EQ(r.value().ssrc, p.ssrc);
    EXPECT_EQ(r.value().csrcs, p.csrcs);
    EXPECT_EQ(r.value().payload, p.payload);
  }
}

TEST_P(WireRoundTrip, BrokerEvent) {
  for (int i = 0; i < 50; ++i) {
    broker::Event e;
    e.topic = "/" + random_token() + "/" + random_token();
    e.payload = random_bytes(2000);
    e.qos = rng.chance(0.5) ? broker::QoS::kReliable : broker::QoS::kBestEffort;
    e.origin = SimTime{static_cast<std::int64_t>(rng.next() >> 1)};
    e.seq = static_cast<std::uint32_t>(rng.next());
    e.hops = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    auto f = broker::decode(broker::encode(e));
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f.value().event.topic, e.topic);
    EXPECT_EQ(f.value().event.payload, e.payload);
    EXPECT_EQ(f.value().event.qos, e.qos);
    EXPECT_EQ(f.value().event.origin, e.origin);
    EXPECT_EQ(f.value().event.seq, e.seq);
    EXPECT_EQ(f.value().event.hops, e.hops);
  }
}

TEST_P(WireRoundTrip, H323Messages) {
  for (int i = 0; i < 50; ++i) {
    h323::RasMessage ras;
    ras.type = static_cast<h323::RasType>(rng.uniform_int(1, 11));
    ras.seq = static_cast<std::uint32_t>(rng.next());
    ras.endpoint_alias = random_token();
    ras.bandwidth = static_cast<std::uint32_t>(rng.uniform_int(0, 100000));
    ras.call_signal_address = {static_cast<sim::NodeId>(rng.uniform_int(0, 1000)),
                               static_cast<std::uint16_t>(rng.uniform_int(1, 65535))};
    auto r = h323::RasMessage::decode(ras.encode());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().type, ras.type);
    EXPECT_EQ(r.value().endpoint_alias, ras.endpoint_alias);
    EXPECT_EQ(r.value().call_signal_address, ras.call_signal_address);

    h323::H245Message h245;
    h245.type = static_cast<h323::H245Type>(rng.uniform_int(1, 10));
    h245.channel = static_cast<std::uint16_t>(rng.next());
    h245.media_kind = rng.chance(0.5) ? "audio" : "video";
    for (int c = rng.uniform_int(0, 6); c > 0; --c) {
      h245.capabilities.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 127)));
    }
    auto r2 = h323::H245Message::decode(h245.encode());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2.value().type, h245.type);
    EXPECT_EQ(r2.value().capabilities, h245.capabilities);
    EXPECT_EQ(r2.value().media_kind, h245.media_kind);
  }
}

TEST_P(WireRoundTrip, ParsersNeverCrashOnGarbage) {
  for (int i = 0; i < 200; ++i) {
    Bytes garbage = random_bytes(200);
    std::string text(garbage.begin(), garbage.end());
    const Payload frame{std::move(garbage)};
    (void)rtp::RtpPacket::parse(frame);
    (void)broker::decode(frame);
    (void)h323::RasMessage::decode(frame);
    (void)h323::Q931Message::decode(frame);
    (void)h323::H245Message::decode(frame);
    (void)sip::SipMessage::parse(text);
    (void)xml::parse(text);
    (void)xgsp::Message::parse(text);
  }
  SUCCEED();
}

TEST_P(WireRoundTrip, XmlRandomTreeRoundTrip) {
  // Build a random tree, serialize, parse, compare structure.
  std::function<xml::Element(int)> build = [&](int depth) {
    xml::Element e("n" + std::to_string(rng.uniform_int(0, 99)));
    for (int a = rng.uniform_int(0, 3); a > 0; --a) {
      e.set_attr("a" + std::to_string(a), random_token() + "<&>\"'");
    }
    if (depth > 0 && rng.chance(0.7)) {
      for (int c = rng.uniform_int(1, 3); c > 0; --c) e.add_child(build(depth - 1));
    } else if (rng.chance(0.5)) {
      e.set_text(random_token() + " & <" + random_token() + ">");
    }
    return e;
  };
  std::function<void(const xml::Element&, const xml::Element&)> compare =
      [&](const xml::Element& a, const xml::Element& b) {
        ASSERT_EQ(a.name(), b.name());
        ASSERT_EQ(a.text(), b.text());
        ASSERT_EQ(a.attrs(), b.attrs());
        ASSERT_EQ(a.children().size(), b.children().size());
        for (std::size_t i = 0; i < a.children().size(); ++i) {
          compare(a.children()[i], b.children()[i]);
        }
      };
  for (int i = 0; i < 20; ++i) {
    xml::Element tree = build(3);
    auto parsed = xml::parse(tree.serialize());
    ASSERT_TRUE(parsed.ok());
    compare(tree, parsed.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Topic filter algebra.
// ---------------------------------------------------------------------------

class TopicProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
  std::string random_topic(int max_depth = 5) {
    std::string t;
    int depth = static_cast<int>(rng.uniform_int(1, max_depth));
    for (int i = 0; i < depth; ++i) {
      t += "/s" + std::to_string(rng.uniform_int(0, 9));
    }
    return t;
  }
};

TEST_P(TopicProperty, ExactFilterMatchesExactlyItself) {
  for (int i = 0; i < 100; ++i) {
    std::string t = random_topic();
    broker::TopicFilter f(t);
    EXPECT_TRUE(f.matches(t));
    std::string other = random_topic();
    if (other != t) {
      EXPECT_FALSE(f.matches(other)) << t << " vs " << other;
    }
  }
}

TEST_P(TopicProperty, HashMatchesAllExtensions) {
  for (int i = 0; i < 100; ++i) {
    std::string base = random_topic(3);
    broker::TopicFilter f(base + "/#");
    EXPECT_TRUE(f.matches(base));
    EXPECT_TRUE(f.matches(base + "/x"));
    EXPECT_TRUE(f.matches(base + "/x/y/z"));
  }
}

TEST_P(TopicProperty, StarMatchesAnySingleSegmentSubstitution) {
  for (int i = 0; i < 100; ++i) {
    std::string t = random_topic(4);
    auto segs = broker::topic_segments(t);
    auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(segs.size()) - 1));
    std::string pattern;
    std::string longer;
    for (std::size_t s = 0; s < segs.size(); ++s) {
      pattern += "/" + (s == idx ? std::string("*") : segs[s]);
      longer += "/" + segs[s];
    }
    broker::TopicFilter f(pattern);
    EXPECT_TRUE(f.matches(t)) << pattern << " should match " << t;
    EXPECT_FALSE(f.matches(longer + "/extra"));
  }
}

TEST_P(TopicProperty, NormalizationIsIdempotent) {
  for (int i = 0; i < 100; ++i) {
    std::string messy;
    for (int s = rng.uniform_int(1, 4); s > 0; --s) {
      messy += rng.chance(0.3) ? "//" : "/";
      messy += "seg" + std::to_string(rng.uniform_int(0, 5));
    }
    if (rng.chance(0.5)) messy += "/";
    std::string once = broker::normalize_topic(messy);
    EXPECT_EQ(broker::normalize_topic(once), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopicProperty, ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// ServiceCenter obeys queueing theory.
// ---------------------------------------------------------------------------

struct QueueCase {
  double utilization;   // ρ = λ·s (single server)
  int servers;
};

class QueueLaw : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueLaw, PoissonArrivalsMatchMD1Wait) {
  const QueueCase& c = GetParam();
  sim::EventLoop loop;
  sim::ServiceCenter sc(loop, c.servers);
  Rng rng(99);
  const SimDuration service = duration_us(1000);
  // λ per server = ρ / s.
  double lambda = c.utilization * c.servers / service.to_seconds();
  RunningStats waits;
  SimTime t{0};
  const int jobs = 20000;
  for (int i = 0; i < jobs; ++i) {
    t += duration_seconds(rng.exponential(1.0 / lambda));
    loop.schedule_at(t, [&loop, &sc, &waits, service] {
      SimTime enq = loop.now();
      sc.submit(service, [&waits, &loop, enq] { waits.add((loop.now() - enq).to_ms()); });
    });
  }
  loop.run();
  ASSERT_EQ(waits.count(), static_cast<std::size_t>(jobs));
  double mean_wait_ms = waits.mean() - service.to_ms();  // queueing only
  if (c.servers == 1) {
    // M/D/1: Wq = ρ/(2(1-ρ)) * s.
    double expected = c.utilization / (2.0 * (1.0 - c.utilization)) * service.to_ms();
    EXPECT_NEAR(mean_wait_ms, expected, expected * 0.25 + 0.05)
        << "rho=" << c.utilization;
  } else {
    // Multi-server at the same per-server utilization waits strictly less.
    double md1 = c.utilization / (2.0 * (1.0 - c.utilization)) * service.to_ms();
    EXPECT_LT(mean_wait_ms, md1);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueLaw,
                         ::testing::Values(QueueCase{0.3, 1}, QueueCase{0.6, 1},
                                           QueueCase{0.8, 1}, QueueCase{0.9, 1},
                                           QueueCase{0.8, 4}));

// ---------------------------------------------------------------------------
// Stream transport: exactly-once, in-order, any (latency, loss) setting.
// ---------------------------------------------------------------------------

struct LinkCase {
  int latency_us;
  double loss;
  int messages;
};

class StreamProperty : public ::testing::TestWithParam<LinkCase> {};

TEST_P(StreamProperty, ExactlyOnceInOrder) {
  const LinkCase& c = GetParam();
  sim::EventLoop loop;
  sim::Network net(loop, 7);
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(),
               sim::PathConfig{.latency = duration_us(c.latency_us), .loss = c.loss});
  transport::StreamListener listener(b, 80);
  std::vector<int> got;
  transport::StreamConnectionPtr server_conn;
  listener.on_accept([&](transport::StreamConnectionPtr conn) {
    server_conn = conn;
    conn->on_message([&](const Payload& m) { got.push_back(std::stoi(gmmcs::to_string(
        std::span<const std::uint8_t>(m)))); });
  });
  auto conn = transport::StreamConnection::connect(a, sim::Endpoint{b.id(), 80});
  for (int i = 0; i < c.messages; ++i) conn->send(std::to_string(i));
  loop.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(c.messages));
  for (int i = 0; i < c.messages; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Links, StreamProperty,
                         ::testing::Values(LinkCase{10, 0.0, 50}, LinkCase{5000, 0.0, 50},
                                           LinkCase{100, 0.3, 100}, LinkCase{100, 0.9, 30},
                                           LinkCase{50000, 0.5, 20}));

// ---------------------------------------------------------------------------
// Broker delivery: with random filters/topics, every matching subscriber
// receives exactly once and no one else receives anything.
// ---------------------------------------------------------------------------

class BrokerDelivery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrokerDelivery, MatchesFiltersExactlyOnce) {
  Rng rng(GetParam());
  sim::EventLoop loop;
  sim::Network net(loop, GetParam());
  broker::BrokerNode node(net.add_host("broker"), 0);
  constexpr int kSubs = 12;
  std::vector<std::unique_ptr<broker::BrokerClient>> subs;
  std::vector<broker::TopicFilter> filters;
  std::vector<std::map<std::string, int>> deliveries(kSubs);
  for (int i = 0; i < kSubs; ++i) {
    std::string pattern;
    int style = static_cast<int>(rng.uniform_int(0, 2));
    std::string a = std::to_string(rng.uniform_int(0, 2));
    std::string b = std::to_string(rng.uniform_int(0, 2));
    if (style == 0) pattern = "/s/" + a + "/" + b;
    if (style == 1) pattern = "/s/*/" + b;
    if (style == 2) pattern = "/s/" + a + "/#";
    filters.emplace_back(pattern);
    subs.push_back(std::make_unique<broker::BrokerClient>(
        net.add_host("sub" + std::to_string(i)), node.stream_endpoint()));
    subs.back()->subscribe(pattern);
    auto* box = &deliveries[static_cast<std::size_t>(i)];
    subs.back()->on_event([box](const broker::Event& ev) { (*box)[ev.topic]++; });
  }
  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  std::vector<std::string> topics;
  for (int i = 0; i < 30; ++i) {
    std::string topic = "/s/" + std::to_string(rng.uniform_int(0, 2)) + "/" +
                        std::to_string(rng.uniform_int(0, 2));
    topics.push_back(topic);
    pub.publish(topic, Bytes(32, 0), broker::QoS::kReliable);
  }
  loop.run();
  for (int i = 0; i < kSubs; ++i) {
    std::map<std::string, int> expected;
    for (const auto& t : topics) {
      if (filters[static_cast<std::size_t>(i)].matches(t)) expected[t]++;
    }
    EXPECT_EQ(deliveries[static_cast<std::size_t>(i)], expected)
        << "subscriber " << i << " filter " << filters[static_cast<std::size_t>(i)].pattern();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrokerDelivery, ::testing::Values(21, 22, 23, 24));

// ---------------------------------------------------------------------------
// ReceiverStats invariants under random loss/reordering/duplication.
// ---------------------------------------------------------------------------

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, InvariantsHoldUnderChaos) {
  Rng rng(GetParam());
  rtp::ReceiverStats stats(90000);
  std::uint16_t seq = static_cast<std::uint16_t>(rng.next());
  SimTime t{0};
  std::uint64_t pushed = 0;
  for (int i = 0; i < 2000; ++i) {
    t += duration_us(rng.uniform_int(100, 2000));
    if (rng.chance(0.2)) {  // loss: skip sequence numbers
      seq = static_cast<std::uint16_t>(seq + rng.uniform_int(1, 3));
    }
    rtp::RtpPacket p;
    p.sequence = seq++;
    p.timestamp = static_cast<std::uint32_t>(i) * 1800;
    p.ssrc = 1;
    stats.on_packet(p, t, t - duration_us(rng.uniform_int(0, 5000)));
    ++pushed;
    if (rng.chance(0.05)) {  // duplicate
      stats.on_packet(p, t, t);
      ++pushed;
    }
  }
  EXPECT_EQ(stats.received(), pushed);
  EXPECT_GE(stats.expected(), 1u);
  EXPECT_GE(stats.loss_ratio(), 0.0);
  EXPECT_LE(stats.loss_ratio(), 1.0);
  EXPECT_GE(stats.delay_ms().min(), 0.0);
  EXPECT_GE(stats.jitter_ms(), 0.0);
  // fraction_lost_since_last is an 8-bit fixed-point in [0, 1).
  std::uint8_t f = stats.fraction_lost_since_last();
  EXPECT_LE(f / 256.0, 1.0);
}

TEST_P(StatsProperty, PlayoutAccountingBalances) {
  Rng rng(GetParam());
  sim::EventLoop loop;
  rtp::PlayoutBuffer buf(loop, {.delay = duration_ms(30), .clock_rate = 8000});
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    auto arrival = duration_ms(20 * i) + duration_seconds(rng.exponential(0.02));
    loop.schedule_at(SimTime{arrival.ns()}, [&buf, i] {
      rtp::RtpPacket p;
      p.sequence = static_cast<std::uint16_t>(i);
      p.timestamp = 160u * static_cast<std::uint32_t>(i);
      buf.push(p);
    });
  }
  loop.run();
  EXPECT_EQ(buf.played() + buf.dropped_late(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace gmmcs
