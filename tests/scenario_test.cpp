// Cross-module scenarios: a lossy participant detected by the quality
// service, and the web-server facade driven end to end over SOAP.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "media/generator.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/directory.hpp"
#include "xgsp/quality.hpp"
#include "xgsp/session_server.hpp"
#include "xgsp/web_server.hpp"

namespace gmmcs {
namespace {

TEST(Scenario, BurstyLinkParticipantFlaggedByQualityMonitor) {
  sim::EventLoop loop;
  sim::Network net(loop, 171);
  sim::Host& bh = net.add_host("broker");
  broker::BrokerNode node(bh, 0);
  xgsp::SessionServer sessions(net.add_host("xgsp"), node.stream_endpoint());
  xgsp::Message created = sessions.handle(xgsp::Message::create_session(
      "field-site", "hq", xgsp::SessionMode::kAdHoc, {{"video", "H261"}}));
  std::string sid = created.sessions.front().id();
  std::string topic = created.sessions.front().stream("video")->topic;

  // Two receivers: one on a clean LAN, one behind a bursty WAN link.
  sim::Host& clean_host = net.add_host("clean");
  sim::Host& lossy_host = net.add_host("lossy");
  net.set_path(bh.id(), lossy_host.id(),
               sim::PathConfig{.latency = duration_ms(40), .loss = 0.15, .burst_length = 6.0});
  broker::BrokerClient clean(clean_host, node.stream_endpoint());
  broker::BrokerClient lossy(lossy_host, node.stream_endpoint());
  clean.subscribe(topic);
  lossy.subscribe(topic);
  media::MediaProbe clean_probe(90000);
  media::MediaProbe lossy_probe(90000);
  clean.on_event([&](const broker::Event& ev) { clean_probe.on_wire(ev.payload, loop.now()); });
  lossy.on_event([&](const broker::Event& ev) { lossy_probe.on_wire(ev.payload, loop.now()); });

  // The sender.
  sim::Host& tx_host = net.add_host("sender");
  rtp::RtpSession tx(tx_host, {.ssrc = 5, .payload_type = 31});
  broker::BrokerClient pub(tx_host, node.stream_endpoint());
  tx.on_send([&](const Payload& wire) { pub.publish(topic, wire); });
  media::VideoSource source(tx, {.codec = media::codecs::h261(), .seed = 9});
  xgsp::QualityMonitor monitor(net.add_host("monitor"), node.stream_endpoint(), sid);
  loop.run();
  source.start();
  loop.run_for(duration_s(10));
  source.stop();
  loop.run_for(duration_s(1));

  // Both publish their receiver stats to the quality topic.
  publish_quality(clean, sid, xgsp::QualityReport::from_stats("clean-user", clean_probe.stats()));
  publish_quality(lossy, sid, xgsp::QualityReport::from_stats("lossy-user", lossy_probe.stats()));
  loop.run();
  ASSERT_EQ(monitor.latest().size(), 2u);
  EXPECT_LT(monitor.latest().at("clean-user").loss_ratio, 0.005);
  EXPECT_GT(monitor.latest().at("lossy-user").loss_ratio, 0.05);
  auto degraded = monitor.degraded(/*max_loss=*/0.02);
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0], "lossy-user");
  // The bursty link also shows in reordering-free gap structure: the
  // lossy receiver saw markedly fewer packets.
  EXPECT_LT(lossy_probe.stats().received(), clean_probe.stats().received());
}

TEST(Scenario, WebServerFullLifecycleOverSoap) {
  sim::EventLoop loop;
  sim::Network net(loop, 173);
  broker::BrokerNode node(net.add_host("broker"), 0);
  sim::Host& server_host = net.add_host("xgsp");
  xgsp::SessionServer sessions(server_host, node.stream_endpoint());
  xgsp::Directory directory;
  directory.register_user({.id = "alice", .display_name = "Alice", .community = "iu"});
  directory.register_user({.id = "bob", .display_name = "Bob", .community = "syr"});
  xgsp::WebServer web(server_host, sessions, directory);
  soap::SoapClient portal(net.add_host("portal"), web.endpoint());

  // Create two sessions, join users, list, leave, end — all over SOAP.
  std::vector<std::string> ids;
  for (const char* title : {"morning", "afternoon"}) {
    xml::Element create("CreateSession");
    create.set_attr("title", title);
    create.set_attr("creator", "alice");
    portal.call(std::move(create), [&](Result<xml::Element> r) {
      ASSERT_TRUE(r.ok());
      ids.push_back(r.value().child("session")->attr("id"));
    });
  }
  loop.run();
  ASSERT_EQ(ids.size(), 2u);
  for (const std::string& user : {std::string("alice"), std::string("bob")}) {
    xml::Element join("JoinSession");
    join.set_attr("session", ids[0]);
    join.set_attr("user", user);
    portal.call(std::move(join), [](Result<xml::Element> r) { ASSERT_TRUE(r.ok()); });
  }
  loop.run();
  int listed = 0;
  portal.call(xml::Element("ListSessions"), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    listed = static_cast<int>(r.value().children_named("session").size());
  });
  loop.run();
  EXPECT_EQ(listed, 2);
  EXPECT_EQ(sessions.find(ids[0])->members().size(), 2u);

  xml::Element leave("LeaveSession");
  leave.set_attr("session", ids[0]);
  leave.set_attr("user", "bob");
  portal.call(std::move(leave), [](Result<xml::Element> r) { ASSERT_TRUE(r.ok()); });
  loop.run();
  EXPECT_EQ(sessions.find(ids[0])->members().size(), 1u);

  xml::Element end("EndSession");
  end.set_attr("session", ids[1]);
  portal.call(std::move(end), [](Result<xml::Element> r) { ASSERT_TRUE(r.ok()); });
  loop.run();
  EXPECT_EQ(sessions.find(ids[1])->state(), xgsp::SessionState::kEnded);

  // Error paths come back as SOAP faults.
  for (auto [op, attr] : {std::pair{"JoinSession", "session"}, {"EndSession", "session"}}) {
    xml::Element bad(op);
    bad.set_attr(attr, "999");
    bad.set_attr("user", "alice");
    bool failed = false;
    portal.call(std::move(bad), [&](Result<xml::Element> r) { failed = !r.ok(); });
    loop.run();
    EXPECT_TRUE(failed) << op;
  }
  // InviteCommunity with an unknown community faults too.
  xml::Element invite("InviteCommunity");
  invite.set_attr("session", ids[0]);
  invite.set_attr("community", "atlantis");
  bool invite_failed = false;
  portal.call(std::move(invite), [&](Result<xml::Element> r) { invite_failed = !r.ok(); });
  loop.run();
  EXPECT_TRUE(invite_failed);
}

}  // namespace
}  // namespace gmmcs
