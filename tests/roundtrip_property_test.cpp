// Seeded-random encode -> decode -> re-encode byte-identity properties for
// every wire family the gmmcs-lint codec-symmetry pass covers. The static
// pass proves the op sequences line up; these tests are the dynamic
// witness that the bytes (or text) survive a full round trip unchanged.
//
// Identity is checked on the *wire image*: re-encoding the decoded value
// must reproduce the original encoding bit-for-bit. That is stronger than
// field-by-field equality (it also pins header flag packing, length
// prefixes, ordering) and is exactly what a relay node relies on when it
// re-emits a message.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broker/event.hpp"
#include "common/random.hpp"
#include "h323/messages.hpp"
#include "rtp/packet.hpp"
#include "rtp/rtcp.hpp"
#include "sip/message.hpp"
#include "sip/sdp.hpp"
#include "streaming/rtsp.hpp"
#include "xgsp/messages.hpp"

namespace {

using gmmcs::Bytes;
using gmmcs::Rng;
using gmmcs::SimTime;

constexpr int kRounds = 200;

std::string rand_token(Rng& rng, std::size_t max_len = 24) {
  static const char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.";
  auto len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlpha[rng.uniform_int(0, sizeof(kAlpha) - 2)]);
  }
  return s;
}

Bytes rand_bytes(Rng& rng, std::size_t max_len = 64) {
  auto len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  Bytes b;
  b.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    b.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  return b;
}

std::uint32_t rand_u32(Rng& rng) { return static_cast<std::uint32_t>(rng.next()); }
std::uint16_t rand_u16(Rng& rng) { return static_cast<std::uint16_t>(rng.next()); }
std::uint8_t rand_u8(Rng& rng) { return static_cast<std::uint8_t>(rng.next()); }

gmmcs::sim::Endpoint rand_endpoint(Rng& rng) {
  return {rand_u32(rng), rand_u16(rng)};
}

// --- broker frames -------------------------------------------------------

gmmcs::broker::Event rand_event(Rng& rng) {
  gmmcs::broker::Event ev;
  ev.topic = rand_token(rng);
  ev.payload = rand_bytes(rng);
  ev.qos = rng.chance(0.5) ? gmmcs::broker::QoS::kReliable : gmmcs::broker::QoS::kBestEffort;
  ev.origin = SimTime{rng.uniform_int(0, 1'000'000'000)};
  ev.seq = rand_u32(rng);
  ev.hops = rand_u8(rng);
  ev.publisher = rand_u32(rng);
  return ev;
}

Bytes reencode(const gmmcs::broker::Frame& f) {
  using gmmcs::broker::MessageType;
  switch (f.type) {
    case MessageType::kHello:
      return encode(f.hello);
    case MessageType::kHelloAck:
      return encode(f.hello_ack);
    case MessageType::kSubscribe:
    case MessageType::kUnsubscribe:
      return encode(f.subscribe);
    case MessageType::kEvent:
      return encode(f.event);
    case MessageType::kPeerEvent:
      return encode(f.peer_event);
    case MessageType::kPing:
      return encode(f.ping, /*pong=*/false);
    case MessageType::kPong:
      return encode(f.ping, /*pong=*/true);
    case MessageType::kHeartbeat:
      return encode(f.heartbeat);
    case MessageType::kLinkState:
      return encode(f.link_state);
  }
  return {};
}

void expect_broker_roundtrip(Bytes wire) {
  // Decode through a Payload-backed frame (the shape every arrival takes
  // since the zero-copy plane landed); re-encoding must reproduce the
  // plain-Bytes wire image bit-for-bit.
  const Bytes reference = wire;
  const gmmcs::Payload frame{std::move(wire)};
  auto decoded = gmmcs::broker::decode(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(reencode(decoded.value()), reference);
}

TEST(RoundtripBroker, AllFrameTypesSurviveReencoding) {
  Rng rng(0xB40CE12ull);
  for (int i = 0; i < kRounds; ++i) {
    {
      gmmcs::broker::HelloMessage m{rand_token(rng), rand_u16(rng)};
      expect_broker_roundtrip(encode(m));
    }
    {
      gmmcs::broker::HelloAckMessage m{rand_u32(rng), rand_u16(rng)};
      expect_broker_roundtrip(encode(m));
    }
    {
      gmmcs::broker::SubscribeMessage m{rand_token(rng), rng.chance(0.5)};
      expect_broker_roundtrip(encode(m));
    }
    expect_broker_roundtrip(encode(rand_event(rng)));
    {
      gmmcs::broker::PeerEventMessage m;
      m.event = rand_event(rng);
      auto n = rng.uniform_int(0, 6);
      for (std::int64_t k = 0; k < n; ++k) m.targets.push_back(rand_u32(rng));
      expect_broker_roundtrip(encode(m));
      // The copy-avoiding framing helper must produce the same wire image.
      EXPECT_EQ(gmmcs::broker::encode_peer_event(m.event, m.targets), encode(m));
    }
    {
      gmmcs::broker::PingMessage m{rand_u32(rng), SimTime{rng.uniform_int(0, 1'000'000'000)}};
      expect_broker_roundtrip(encode(m, /*pong=*/false));
      expect_broker_roundtrip(encode(m, /*pong=*/true));
    }
    {
      gmmcs::broker::HeartbeatMessage m{rand_u32(rng)};
      expect_broker_roundtrip(encode(m));
    }
    {
      gmmcs::broker::LinkStateMessage m{rand_u32(rng), rand_u32(rng), rand_u32(rng),
                                        rand_u32(rng), rng.chance(0.5)};
      expect_broker_roundtrip(encode(m));
    }
  }
}

TEST(RoundtripBroker, PayloadBackedEventDecodeIsZeroCopyAndByteIdentical) {
  Rng rng(0xFACEull);
  for (int i = 0; i < kRounds; ++i) {
    auto ev = rand_event(rng);
    const Bytes reference = encode(ev);
    const gmmcs::Payload frame{encode(ev)};
    auto back = gmmcs::broker::decode(frame);
    ASSERT_TRUE(back.ok()) << back.error().message;
    const gmmcs::broker::Event& decoded = back.value().event;
    // A Payload-backed decode re-encodes to the identical Bytes image.
    EXPECT_EQ(encode(decoded), reference);
    // And its payload is a slice of the arrival frame, not a fresh buffer.
    if (!decoded.payload.empty()) {
      EXPECT_GE(decoded.payload.data(), frame.data());
      EXPECT_LE(decoded.payload.data() + decoded.payload.size(), frame.data() + frame.size());
    }
  }
}

TEST(RoundtripBroker, EveryStrictPrefixOfEveryFrameKindIsRejected) {
  // Broker frames are fixed-field or length-prefixed throughout, so no
  // strict prefix of a valid frame is itself a valid frame: truncation
  // anywhere must poison the reader and surface as a decode error, never
  // as a silently zero-filled message. (RTP is excluded by design — its
  // payload is the trailing byte run, so prefixes are legitimate
  // shorter packets.)
  Rng rng(0x7E1Full);
  std::vector<Bytes> wires;
  wires.push_back(encode(gmmcs::broker::HelloMessage{rand_token(rng), rand_u16(rng)}));
  wires.push_back(encode(gmmcs::broker::HelloAckMessage{rand_u32(rng), rand_u16(rng)}));
  wires.push_back(encode(gmmcs::broker::SubscribeMessage{rand_token(rng), true}));
  wires.push_back(encode(gmmcs::broker::SubscribeMessage{rand_token(rng), false}));
  wires.push_back(encode(rand_event(rng)));
  {
    gmmcs::broker::PeerEventMessage m;
    m.event = rand_event(rng);
    for (int k = 0; k < 3; ++k) m.targets.push_back(rand_u32(rng));
    wires.push_back(encode(m));
  }
  {
    gmmcs::broker::PingMessage m{rand_u32(rng), SimTime{12345}};
    wires.push_back(encode(m, /*pong=*/false));
    wires.push_back(encode(m, /*pong=*/true));
  }
  wires.push_back(encode(gmmcs::broker::HeartbeatMessage{rand_u32(rng)}));
  wires.push_back(encode(gmmcs::broker::LinkStateMessage{
      rand_u32(rng), rand_u32(rng), rand_u32(rng), rand_u32(rng), true}));
  for (const Bytes& wire : wires) {
    ASSERT_TRUE(gmmcs::broker::decode(gmmcs::Payload{Bytes(wire)}).ok());
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const gmmcs::Payload prefix{Bytes(wire.begin(), wire.begin() + cut)};
      auto decoded = gmmcs::broker::decode(prefix);
      EXPECT_FALSE(decoded.ok())
          << cut << "-byte prefix of a " << wire.size() << "-byte frame "
          << "(type " << int(wire.empty() ? 0 : wire[0]) << ") decoded";
    }
  }
}

// --- H.323: RAS / Q.931 / H.245 ------------------------------------------

TEST(RoundtripH323, RasMessages) {
  Rng rng(0x4A51ull);
  const gmmcs::h323::RasType types[] = {
      gmmcs::h323::RasType::kGatekeeperRequest, gmmcs::h323::RasType::kRegistrationRequest,
      gmmcs::h323::RasType::kAdmissionRequest, gmmcs::h323::RasType::kAdmissionConfirm,
      gmmcs::h323::RasType::kBandwidthRequest, gmmcs::h323::RasType::kDisengageConfirm};
  for (int i = 0; i < kRounds; ++i) {
    gmmcs::h323::RasMessage m;
    m.type = types[rng.uniform_int(0, 5)];
    m.seq = rand_u32(rng);
    m.endpoint_alias = rand_token(rng);
    m.gatekeeper_id = rand_token(rng);
    m.call_signal_address = rand_endpoint(rng);
    m.bandwidth = rand_u32(rng);
    m.destination_alias = rand_token(rng);
    m.reject_reason = rand_token(rng);
    Bytes wire = m.encode();
    auto back = gmmcs::h323::RasMessage::decode(wire);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().encode(), wire);
  }
}

TEST(RoundtripH323, Q931Messages) {
  Rng rng(0x0931ull);
  const gmmcs::h323::Q931Type types[] = {
      gmmcs::h323::Q931Type::kSetup, gmmcs::h323::Q931Type::kCallProceeding,
      gmmcs::h323::Q931Type::kAlerting, gmmcs::h323::Q931Type::kConnect,
      gmmcs::h323::Q931Type::kReleaseComplete};
  for (int i = 0; i < kRounds; ++i) {
    gmmcs::h323::Q931Message m;
    m.type = types[rng.uniform_int(0, 4)];
    m.call_reference = rand_u16(rng);
    m.calling_party = rand_token(rng);
    m.called_party = rand_token(rng);
    m.h245_address = rand_endpoint(rng);
    m.release_reason = rand_token(rng);
    Bytes wire = m.encode();
    auto back = gmmcs::h323::Q931Message::decode(wire);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().encode(), wire);
  }
}

TEST(RoundtripH323, H245Messages) {
  Rng rng(0x0245ull);
  for (int i = 0; i < kRounds; ++i) {
    gmmcs::h323::H245Message m;
    m.type = static_cast<gmmcs::h323::H245Type>(rng.uniform_int(1, 10));
    m.seq = rand_u32(rng);
    auto caps = rng.uniform_int(0, 8);
    for (std::int64_t k = 0; k < caps; ++k) m.capabilities.push_back(rand_u8(rng));
    m.channel = rand_u16(rng);
    m.media_kind = rng.chance(0.5) ? "audio" : "video";
    m.payload_type = rand_u8(rng);
    m.media_address = rand_endpoint(rng);
    m.reject_reason = rand_token(rng);
    Bytes wire = m.encode();
    auto back = gmmcs::h323::H245Message::decode(wire);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().encode(), wire);
  }
}

// --- RTP / RTCP -----------------------------------------------------------

TEST(RoundtripRtp, Packets) {
  Rng rng(0x4274ull);
  for (int i = 0; i < kRounds; ++i) {
    gmmcs::rtp::RtpPacket p;
    p.marker = rng.chance(0.5);
    p.payload_type = static_cast<std::uint8_t>(rng.uniform_int(0, 127));  // 7-bit field
    p.sequence = rand_u16(rng);
    p.timestamp = rand_u32(rng);
    p.ssrc = rand_u32(rng);
    auto cc = rng.uniform_int(0, 15);  // 4-bit CSRC count
    for (std::int64_t k = 0; k < cc; ++k) p.csrcs.push_back(rand_u32(rng));
    p.payload = rand_bytes(rng, 256);
    const Bytes reference = p.serialize();
    const gmmcs::Payload frame{p.serialize()};
    auto back = gmmcs::rtp::RtpPacket::parse(frame);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().serialize(), reference);
    // Zero-copy parse: the decoded payload aliases the arrival frame.
    const gmmcs::rtp::RtpPacket& q = back.value();
    if (!q.payload.empty()) {
      EXPECT_GE(q.payload.data(), frame.data());
      EXPECT_LE(q.payload.data() + q.payload.size(), frame.data() + frame.size());
    }
  }
}

gmmcs::rtp::ReportBlock rand_block(Rng& rng) {
  gmmcs::rtp::ReportBlock b;
  b.ssrc = rand_u32(rng);
  b.fraction_lost = rand_u8(rng);
  b.cumulative_lost = rand_u32(rng) & 0xFFFFFFu;  // 24 bits on the wire
  b.highest_seq = rand_u32(rng);
  b.jitter = rand_u32(rng);
  b.lsr = rand_u32(rng);
  b.dlsr = rand_u32(rng);
  return b;
}

TEST(RoundtripRtcp, SenderReceiverAndBye) {
  Rng rng(0x47C9ull);
  for (int i = 0; i < kRounds; ++i) {
    {
      gmmcs::rtp::SenderReport sr;
      sr.ssrc = rand_u32(rng);
      sr.ntp_timestamp = rng.next();
      sr.rtp_timestamp = rand_u32(rng);
      sr.packet_count = rand_u32(rng);
      sr.octet_count = rand_u32(rng);
      auto n = rng.uniform_int(0, 4);
      for (std::int64_t k = 0; k < n; ++k) sr.blocks.push_back(rand_block(rng));
      Bytes wire = serialize(sr);
      auto back = gmmcs::rtp::parse_rtcp(wire);
      ASSERT_TRUE(back.ok()) << back.error().message;
      ASSERT_EQ(back.value().type, gmmcs::rtp::kRtcpSenderReport);
      EXPECT_EQ(serialize(back.value().sr), wire);
    }
    {
      gmmcs::rtp::ReceiverReport rr;
      rr.ssrc = rand_u32(rng);
      auto n = rng.uniform_int(0, 4);
      for (std::int64_t k = 0; k < n; ++k) rr.blocks.push_back(rand_block(rng));
      Bytes wire = serialize(rr);
      auto back = gmmcs::rtp::parse_rtcp(wire);
      ASSERT_TRUE(back.ok()) << back.error().message;
      ASSERT_EQ(back.value().type, gmmcs::rtp::kRtcpReceiverReport);
      EXPECT_EQ(serialize(back.value().rr), wire);
    }
    {
      gmmcs::rtp::Bye bye{rand_u32(rng)};
      Bytes wire = serialize(bye);
      auto back = gmmcs::rtp::parse_rtcp(wire);
      ASSERT_TRUE(back.ok()) << back.error().message;
      ASSERT_EQ(back.value().type, gmmcs::rtp::kRtcpBye);
      EXPECT_EQ(serialize(back.value().bye), wire);
    }
  }
}

// --- Text codecs: SIP, SDP, RTSP, XGSP ------------------------------------
//
// For text protocols the round-trip identity is on the serialized string:
// serialize(parse(s)) == s. Random field values are drawn from the token
// alphabet (text protocols do not carry arbitrary bytes in headers).

TEST(RoundtripSip, RequestsAndResponses) {
  Rng rng(0x51Bull);
  const char* methods[] = {"INVITE", "ACK", "BYE", "REGISTER", "MESSAGE"};
  for (int i = 0; i < kRounds; ++i) {
    auto req = gmmcs::sip::SipMessage::request(
        methods[rng.uniform_int(0, 4)], "sip:" + rand_token(rng, 10) + "@gmmcs",
        "sip:" + rand_token(rng, 10) + "@gmmcs", "sip:" + rand_token(rng, 10) + "@gmmcs",
        rand_token(rng, 12), rand_u32(rng) % 10000);
    req.add_header("X-Prop", rand_token(rng));
    if (rng.chance(0.5)) req.body = rand_token(rng, 40);
    std::string s1 = req.serialize();
    auto back = gmmcs::sip::SipMessage::parse(s1);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().serialize(), s1);

    auto resp = gmmcs::sip::SipMessage::response(req, 200, "OK");
    if (rng.chance(0.5)) resp.body = rand_token(rng, 40);
    std::string s2 = resp.serialize();
    auto back2 = gmmcs::sip::SipMessage::parse(s2);
    ASSERT_TRUE(back2.ok()) << back2.error().message;
    EXPECT_EQ(back2.value().serialize(), s2);
  }
}

TEST(RoundtripSdp, OfferAnswer) {
  Rng rng(0x5D9ull);
  for (int i = 0; i < kRounds; ++i) {
    gmmcs::sip::Sdp sdp;
    sdp.origin_user = rand_token(rng, 8);
    if (sdp.origin_user.empty()) sdp.origin_user = "-";
    sdp.address = rand_u32(rng);
    sdp.session_name = rand_token(rng, 8);
    if (sdp.session_name.empty()) sdp.session_name = "s";
    auto n = rng.uniform_int(0, 3);
    for (std::int64_t k = 0; k < n; ++k) {
      gmmcs::sip::SdpMedia m;
      m.kind = rng.chance(0.5) ? "audio" : "video";
      m.port = rand_u16(rng);
      m.payload_type = rand_u8(rng);
      m.codec = rand_token(rng, 6) + "/8000";
      sdp.media.push_back(m);
    }
    std::string s1 = sdp.serialize();
    auto back = gmmcs::sip::Sdp::parse(s1);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().serialize(), s1);
  }
}

TEST(RoundtripRtsp, RequestsAndResponses) {
  Rng rng(0x4754ull);
  const char* methods[] = {"OPTIONS", "DESCRIBE", "SETUP", "PLAY", "PAUSE", "TEARDOWN"};
  for (int i = 0; i < kRounds; ++i) {
    auto req = gmmcs::streaming::RtspMessage::request(
        methods[rng.uniform_int(0, 5)], "rtsp://helix/" + rand_token(rng, 10),
        static_cast<int>(rng.uniform_int(1, 9999)));
    req.set_header("X-Prop", rand_token(rng));
    if (rng.chance(0.5)) req.body = rand_token(rng, 40);
    std::string s1 = req.serialize();
    auto back = gmmcs::streaming::RtspMessage::parse(s1);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().serialize(), s1);

    auto resp = gmmcs::streaming::RtspMessage::response(req, 200, "OK");
    std::string s2 = resp.serialize();
    auto back2 = gmmcs::streaming::RtspMessage::parse(s2);
    ASSERT_TRUE(back2.ok()) << back2.error().message;
    EXPECT_EQ(back2.value().serialize(), s2);
  }
}

gmmcs::xgsp::Message rand_xgsp_request(Rng& rng) {
  using gmmcs::xgsp::EndpointKind;
  using gmmcs::xgsp::Message;
  using gmmcs::xgsp::SessionMode;
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return Message::create_session(
          rand_token(rng, 10), rand_token(rng, 8),
          rng.chance(0.5) ? SessionMode::kAdHoc : SessionMode::kScheduled,
          {{rng.chance(0.5) ? "audio" : "video", rand_token(rng, 6)}});
    case 1:
      return Message::join(rand_token(rng, 8), rand_token(rng, 8),
                           static_cast<EndpointKind>(rng.uniform_int(0, 5)));
    case 2:
      return Message::leave(rand_token(rng, 8), rand_token(rng, 8));
    case 3:
      return Message::end_session(rand_token(rng, 8));
    default:
      return Message::error(rand_token(rng, 16));
  }
}

TEST(RoundtripXgsp, RequestsAndReplies) {
  Rng rng(0x9357ull);
  for (int i = 0; i < kRounds; ++i) {
    auto m = rand_xgsp_request(rng);
    m.seq = rand_u32(rng) % 100000;
    m.reply_to = rand_token(rng, 12);
    std::string s1 = m.serialize();
    auto back = gmmcs::xgsp::Message::parse(s1);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().serialize(), s1);
  }
}

TEST(RoundtripXgsp, SessionInfoWithLiveState) {
  Rng rng(0x5E55ull);
  for (int i = 0; i < 50; ++i) {
    gmmcs::xgsp::Session s("conf-" + std::to_string(rng.uniform_int(1, 99)),
                           rand_token(rng, 10), rand_token(rng, 8),
                           gmmcs::xgsp::SessionMode::kAdHoc);
    s.add_stream("audio", rand_token(rng, 6));
    s.join({rand_token(rng, 8), gmmcs::xgsp::EndpointKind::kSip, false});
    s.activate();

    gmmcs::xgsp::Message m;
    m.type = gmmcs::xgsp::MsgType::kSessionInfo;
    m.seq = rand_u32(rng) % 100000;
    m.sessions.push_back(s);
    m.floor_holder = rand_token(rng, 8);
    m.floor_queue.push_back(rand_token(rng, 8));
    std::string s1 = m.serialize();
    auto back = gmmcs::xgsp::Message::parse(s1);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().serialize(), s1);
  }
}

}  // namespace
