// Tests for the SOAP substrate: envelopes, HTTP framing, RPC round trips.
#include <gtest/gtest.h>

#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "soap/soap.hpp"

namespace gmmcs::soap {
namespace {

TEST(SoapEnvelope, WrapAndParse) {
  xml::Element payload("CreateSession");
  payload.set_attr("title", "standup");
  auto env = make_envelope(payload);
  auto parsed = parse_envelope(env.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name(), "CreateSession");
  EXPECT_EQ(parsed.value().attr("title"), "standup");
}

TEST(SoapEnvelope, FaultParsesAsError) {
  auto env = make_fault("soap:Server", "boom");
  auto parsed = parse_envelope(env.serialize());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("boom"), std::string::npos);
}

TEST(SoapEnvelope, RejectsNonEnvelope) {
  EXPECT_FALSE(parse_envelope("<NotAnEnvelope/>").ok());
  EXPECT_FALSE(parse_envelope("<soap:Envelope/>").ok());
  EXPECT_FALSE(parse_envelope("garbage").ok());
}

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.path = "/xgsp";
  req.soap_action = "CreateSession";
  req.body = "<x/>";
  auto parsed = parse_http_request(serialize(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, "POST");
  EXPECT_EQ(parsed.value().path, "/xgsp");
  EXPECT_EQ(parsed.value().soap_action, "CreateSession");
  EXPECT_EQ(parsed.value().body, "<x/>");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 500;
  resp.body = "<fault/>";
  auto parsed = parse_http_response(serialize(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 500);
  EXPECT_EQ(parsed.value().body, "<fault/>");
}

TEST(Http, RejectsMalformed) {
  EXPECT_FALSE(parse_http_request("no separator").ok());
  EXPECT_FALSE(parse_http_request("BROKEN\r\n\r\nbody").ok());
  EXPECT_FALSE(parse_http_response("NOPE 200\r\n\r\n").ok());
}

class SoapRpcTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 3};
};

TEST_F(SoapRpcTest, CallAndReply) {
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");
  SoapServer server(server_host, 8080);
  server.register_operation("Echo", [](const xml::Element& req) -> Result<xml::Element> {
    xml::Element resp("EchoResponse");
    resp.set_text(req.text());
    return resp;
  });
  SoapClient client(client_host, server.endpoint());
  std::string got;
  xml::Element req("Echo");
  req.set_text("hello soap");
  client.call(std::move(req), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    got = r.value().text();
  });
  loop.run();
  EXPECT_EQ(got, "hello soap");
  EXPECT_EQ(server.calls(), 1u);
  EXPECT_EQ(server.faults(), 0u);
}

TEST_F(SoapRpcTest, UnknownOperationFaults) {
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");
  SoapServer server(server_host, 8080);
  SoapClient client(client_host, server.endpoint());
  bool failed = false;
  client.call(xml::Element("Missing"), [&](Result<xml::Element> r) { failed = !r.ok(); });
  loop.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(server.faults(), 1u);
}

TEST_F(SoapRpcTest, HandlerErrorBecomesFault) {
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");
  SoapServer server(server_host, 8080);
  server.register_operation("Fragile", [](const xml::Element&) -> Result<xml::Element> {
    return fail<xml::Element>("handler exploded");
  });
  SoapClient client(client_host, server.endpoint());
  std::string err;
  client.call(xml::Element("Fragile"), [&](Result<xml::Element> r) {
    ASSERT_FALSE(r.ok());
    err = r.error().message;
  });
  loop.run();
  EXPECT_NE(err.find("handler exploded"), std::string::npos);
}

TEST_F(SoapRpcTest, PipelinedCallsCorrelateInOrder) {
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");
  SoapServer server(server_host, 8080);
  server.register_operation("N", [](const xml::Element& req) -> Result<xml::Element> {
    xml::Element resp("NResponse");
    resp.set_text(req.text());
    return resp;
  });
  SoapClient client(client_host, server.endpoint());
  std::vector<int> replies;
  for (int i = 0; i < 5; ++i) {
    xml::Element req("N");
    req.set_text(std::to_string(i));
    client.call(std::move(req), [&](Result<xml::Element> r) {
      ASSERT_TRUE(r.ok());
      replies.push_back(std::stoi(r.value().text()));
    });
  }
  loop.run();
  EXPECT_EQ(replies, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace gmmcs::soap
