// Tests for the broker link monitoring service: probe RTTs, smoothing,
// and sensitivity to dispatch load.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/client.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace gmmcs::broker {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : fabric(net) {
    b0 = &fabric.add_broker(net.add_host("b0"));
    b1 = &fabric.add_broker(net.add_host("b1"));
    net.set_path(b0->host().id(), b1->host().id(),
                 sim::PathConfig{.latency = duration_ms(3)});
    fabric.link(0, 1);
    fabric.finalize();
    loop.run();  // settle the peer-link handshakes
  }

  sim::EventLoop loop;
  sim::Network net{loop, 131};
  BrokerNetwork fabric;
  BrokerNode* b0 = nullptr;
  BrokerNode* b1 = nullptr;
};

TEST_F(MonitorTest, ProbeMeasuresLinkRtt) {
  SimDuration rtt{};
  b0->probe_peer(1, [&](SimDuration d) { rtt = d; });
  loop.run();
  // ~2 x 3 ms propagation + route cost + serialization.
  EXPECT_GT(rtt.ms(), 5);
  EXPECT_LT(rtt.ms(), 10);
  ASSERT_TRUE(b0->link_rtts().contains(1));
  EXPECT_EQ(b0->link_rtts().at(1), rtt);
}

TEST_F(MonitorTest, SmoothedRttConverges) {
  for (int i = 0; i < 10; ++i) {
    b0->probe_peer(1, nullptr);
    loop.run();
  }
  SimDuration srtt = b0->link_rtts().at(1);
  SimDuration sample{};
  b0->probe_peer(1, [&](SimDuration d) { sample = d; });
  loop.run();
  // On an idle link, smoothed and instantaneous values agree closely.
  EXPECT_NEAR(static_cast<double>(srtt.ns()), static_cast<double>(sample.ns()),
              static_cast<double>(sample.ns()) * 0.1);
}

TEST_F(MonitorTest, LoadedBrokerAnswersSlowly) {
  SimDuration idle_rtt{};
  b0->probe_peer(1, [&](SimDuration d) { idle_rtt = d; });
  loop.run();

  // Pile fanout work onto b1: many subscribers, a burst of large events.
  std::vector<std::unique_ptr<BrokerClient>> subs;
  for (int i = 0; i < 50; ++i) {
    subs.push_back(std::make_unique<BrokerClient>(net.add_host("s" + std::to_string(i)),
                                                  b1->stream_endpoint()));
    subs.back()->subscribe("/t");
  }
  BrokerClient pub(net.add_host("pub"), b1->stream_endpoint());
  loop.run();
  for (int i = 0; i < 100; ++i) pub.publish("/t", Bytes(2048, 0));
  // Probe while the burst is queued (don't drain the loop first).
  SimDuration busy_rtt{};
  b0->probe_peer(1, [&](SimDuration d) { busy_rtt = d; });
  loop.run();
  EXPECT_GT(busy_rtt.ns(), idle_rtt.ns() * 3)
      << "idle=" << to_string(idle_rtt) << " busy=" << to_string(busy_rtt);
}

TEST_F(MonitorTest, ProbeToUnlinkedPeerIsNoop) {
  BrokerNode& b2 = fabric.add_broker(net.add_host("b2"));
  (void)b2;
  bool called = false;
  b0->probe_peer(2, [&](SimDuration) { called = true; });
  loop.run();
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace gmmcs::broker
