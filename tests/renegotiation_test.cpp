// Tests for mid-call renegotiation: SIP re-INVITE through the gateway
// (media address change) and H.323 bandwidth change (BRQ/BCF/BRJ).
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "h323/gatekeeper.hpp"
#include "h323/gateway.hpp"
#include "h323/terminal.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sip/endpoint.hpp"
#include "sip/gateway.hpp"
#include "sip/proxy.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs {
namespace {

class RenegotiationTest : public ::testing::Test {
 protected:
  RenegotiationTest()
      : node(net.add_host("broker"), 0),
        sessions(net.add_host("xgsp"), node.stream_endpoint()),
        gateway(net.add_host("gw"), sessions, node.stream_endpoint()),
        proxy(net.add_host("proxy")) {
    proxy.add_domain_route("gmmcs", gateway.endpoint());
    xgsp::Message created = sessions.handle(xgsp::Message::create_session(
        "reneg", "x", xgsp::SessionMode::kAdHoc, {{"video", "H261"}}));
    sid = created.sessions.front().id();
  }

  sim::EventLoop loop;
  sim::Network net{loop, 141};
  broker::BrokerNode node;
  xgsp::SessionServer sessions;
  sip::SipGateway gateway;
  sip::SipProxy proxy;
  std::string sid;
};

TEST_F(RenegotiationTest, SipReinviteMovesMediaToNewPort) {
  sim::Host& ah = net.add_host("alice");
  sip::SipEndpoint alice(ah, "sip:alice@x", proxy.endpoint());
  rtp::RtpSession rtp_a(ah, {.ssrc = 1, .payload_type = 31});
  rtp::RtpSession rtp_b(ah, {.ssrc = 2, .payload_type = 31});  // the "new device"
  alice.register_with_proxy([](bool) {});
  loop.run();
  sip::Sdp offer;
  offer.address = ah.id();
  offer.media.push_back({"video", rtp_a.local().port, 31, "H261/90000"});
  bool ok = false;
  alice.invite(sip::SipGateway::conference_uri(sid), offer,
               [&](bool r, const sip::SipEndpoint::Call&) { ok = r; });
  loop.run();
  ASSERT_TRUE(ok);

  // Media published on the topic lands on rtp_a.
  std::string topic = sessions.find(sid)->stream("video")->topic;
  broker::BrokerClient native(net.add_host("native"), node.stream_endpoint());
  loop.run();
  rtp::RtpPacket pkt;
  pkt.ssrc = 99;
  pkt.payload_type = 31;
  pkt.payload = Bytes(100, 0);
  native.publish(topic, pkt.serialize());
  loop.run();
  EXPECT_EQ(rtp_a.source_stats(99).received(), 1u);
  EXPECT_EQ(rtp_b.source_stats(99).received(), 0u);

  // Re-INVITE moves the receive port to rtp_b.
  sip::Sdp new_offer;
  new_offer.address = ah.id();
  new_offer.media.push_back({"video", rtp_b.local().port, 31, "H261/90000"});
  bool reneg_ok = false;
  alice.reinvite(new_offer, [&](bool r, const sip::SipEndpoint::Call&) { reneg_ok = r; });
  loop.run();
  ASSERT_TRUE(reneg_ok);
  EXPECT_EQ(gateway.active_calls(), 1u);

  native.publish(topic, pkt.serialize());
  loop.run();
  EXPECT_EQ(rtp_a.source_stats(99).received(), 1u);  // old port silent
  EXPECT_EQ(rtp_b.source_stats(99).received(), 1u);  // new port live
  // The participant did not rejoin; membership is unchanged.
  EXPECT_TRUE(sessions.find(sid)->has_member("sip:alice@x"));
  EXPECT_EQ(sessions.find(sid)->members().size(), 1u);
}

TEST_F(RenegotiationTest, ReinviteWithoutCallFails) {
  sip::SipEndpoint alice(net.add_host("a"), "sip:a@x", proxy.endpoint());
  bool ok = true;
  alice.reinvite(sip::Sdp{}, [&](bool r, const sip::SipEndpoint::Call&) { ok = r; });
  EXPECT_FALSE(ok);
}

TEST_F(RenegotiationTest, H323BandwidthRenegotiation) {
  h323::Gatekeeper::Config cfg;
  cfg.bandwidth_budget = 10000;
  h323::Gatekeeper gk(net.add_host("gk"), cfg);
  h323::H323Gateway h323_gw(net.add_host("h323-gw"), sessions, node.stream_endpoint());
  gk.set_conference_target(h323_gw.call_signal_endpoint());
  h323::H323Terminal t1(net.add_host("t1"), "t1", gk.ras_endpoint());
  h323::H323Terminal t2(net.add_host("t2"), "t2", gk.ras_endpoint());
  t1.register_endpoint([](bool) {});
  t2.register_endpoint([](bool) {});
  loop.run();
  // Both admit 4000 (of 10000).
  transport::DatagramSocket m1(net.add_host("m1"));
  for (auto* t : {&t1, &t2}) {
    bool ok = false;
    t->call("conf-" + sid, 4000, {}, [&](bool r, const h323::H323Terminal::MediaTargets&) {
      ok = r;
    });
    loop.run();
    ASSERT_TRUE(ok);
  }
  EXPECT_EQ(gk.bandwidth_in_use(), 8000u);
  // t1 upgrades to 6000: total would be 10000, exactly at budget -> OK.
  bool up_ok = false;
  t1.change_bandwidth(6000, [&](bool r) { up_ok = r; });
  loop.run();
  EXPECT_TRUE(up_ok);
  EXPECT_EQ(gk.bandwidth_in_use(), 10000u);
  // t2 tries 4100: over budget -> BRJ, grant unchanged.
  bool up2_ok = true;
  t2.change_bandwidth(4100, [&](bool r) { up2_ok = r; });
  loop.run();
  EXPECT_FALSE(up2_ok);
  EXPECT_EQ(t2.last_reject_reason(), "zone bandwidth exhausted");
  EXPECT_EQ(gk.bandwidth_in_use(), 10000u);
  // t1 downgrades to 1000: always allowed.
  bool down_ok = false;
  t1.change_bandwidth(1000, [&](bool r) { down_ok = r; });
  loop.run();
  EXPECT_TRUE(down_ok);
  EXPECT_EQ(gk.bandwidth_in_use(), 5000u);
}

TEST_F(RenegotiationTest, BandwidthChangeWithoutAdmissionRejected) {
  h323::Gatekeeper gk(net.add_host("gk"));
  h323::H323Terminal t(net.add_host("t"), "t", gk.ras_endpoint());
  t.register_endpoint([](bool) {});
  loop.run();
  bool ok = true;
  t.change_bandwidth(1000, [&](bool r) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(t.last_reject_reason(), "no active admission");
}

}  // namespace
}  // namespace gmmcs
