// Tests for the streaming subsystem: RTSP codec/state machine, Helix-like
// distribution, the Real producer pipeline from broker topics, the player
// buffering model, and the conference archive.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "media/generator.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "streaming/archive.hpp"
#include "streaming/helix_server.hpp"
#include "streaming/player.hpp"
#include "streaming/producer.hpp"
#include "streaming/rtsp.hpp"

namespace gmmcs::streaming {
namespace {

TEST(RtspCodec, RequestRoundTrip) {
  RtspMessage req = RtspMessage::request("DESCRIBE", "rtsp://host2/conf-1-video", 3);
  req.set_header("Accept", "application/sdp");
  auto r = RtspMessage::parse(req.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_request);
  EXPECT_EQ(r.value().method, "DESCRIBE");
  EXPECT_EQ(r.value().cseq(), 3);
  EXPECT_EQ(r.value().header("accept"), "application/sdp");
}

TEST(RtspCodec, ResponseEchoesSessionAndCseq) {
  RtspMessage req = RtspMessage::request("PLAY", "rtsp://h/x", 9);
  req.set_header("Session", "rtsp-4");
  RtspMessage resp = RtspMessage::response(req, 200, "OK");
  auto r = RtspMessage::parse(resp.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().cseq(), 9);
  EXPECT_EQ(r.value().session_id(), "rtsp-4");
}

TEST(RtspCodec, StreamNameFromUri) {
  EXPECT_EQ(stream_name_from_uri("rtsp://host9/sess-1-video"), "sess-1-video");
  EXPECT_EQ(stream_name_from_uri("rtsp://host9"), "");
}

TEST(RtspCodec, RejectsMalformed) {
  EXPECT_FALSE(RtspMessage::parse("nope").ok());
  EXPECT_FALSE(RtspMessage::parse("PLAY rtsp://x\r\n\r\n").ok());
}

class StreamingTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 51};
};

TEST_F(StreamingTest, DescribeSetupPlayDeliversBlocks) {
  HelixServer helix(net.add_host("helix"));
  helix.register_stream("lecture", "v=0\r\ns=lecture\r\n");
  StreamingPlayer player(net.add_host("viewer"), helix.rtsp_endpoint());
  bool playing = false;
  player.play("lecture", [&](bool ok) { playing = ok; });
  loop.run();
  ASSERT_TRUE(playing);
  EXPECT_EQ(player.description(), "v=0\r\ns=lecture\r\n");
  EXPECT_EQ(helix.playing_clients("lecture"), 1u);
  for (int i = 0; i < 10; ++i) {
    helix.push_block("lecture", media::EncodedBlock{.timestamp = 3600u * i, .bytes = 500});
  }
  loop.run();
  EXPECT_EQ(player.blocks_received(), 10u);
  ASSERT_TRUE(player.startup_latency().has_value());
  EXPECT_LT(player.startup_latency()->ms(), 10);
}

TEST_F(StreamingTest, PauseStopsAndTeardownCleans) {
  HelixServer helix(net.add_host("helix"));
  helix.register_stream("s", "d");
  StreamingPlayer player(net.add_host("viewer"), helix.rtsp_endpoint());
  player.play("s", [](bool) {});
  loop.run();
  helix.push_block("s", media::EncodedBlock{.bytes = 100});
  loop.run();
  EXPECT_EQ(player.blocks_received(), 1u);
  bool paused = false;
  player.pause([&](bool ok) { paused = ok; });
  loop.run();
  ASSERT_TRUE(paused);
  helix.push_block("s", media::EncodedBlock{.bytes = 100});
  loop.run();
  EXPECT_EQ(player.blocks_received(), 1u);  // paused: nothing delivered
  bool torn = false;
  player.teardown([&](bool ok) { torn = ok; });
  loop.run();
  EXPECT_TRUE(torn);
  EXPECT_EQ(helix.playing_clients("s"), 0u);
}

TEST_F(StreamingTest, DescribeUnknownStreamFails) {
  HelixServer helix(net.add_host("helix"));
  StreamingPlayer player(net.add_host("viewer"), helix.rtsp_endpoint());
  bool ok = true;
  player.play("ghost", [&](bool r) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
}

TEST_F(StreamingTest, MultiplePlayersEachGetCopies) {
  HelixServer helix(net.add_host("helix"));
  helix.register_stream("s", "d");
  std::vector<std::unique_ptr<StreamingPlayer>> players;
  for (int i = 0; i < 5; ++i) {
    players.push_back(std::make_unique<StreamingPlayer>(
        net.add_host("v" + std::to_string(i)), helix.rtsp_endpoint()));
    players.back()->play("s", [](bool) {});
  }
  loop.run();
  EXPECT_EQ(helix.playing_clients("s"), 5u);
  helix.push_block("s", media::EncodedBlock{.bytes = 200});
  loop.run();
  for (auto& p : players) EXPECT_EQ(p->blocks_received(), 1u);
  EXPECT_EQ(helix.blocks_distributed(), 5u);
}

TEST_F(StreamingTest, ProducerBridgesTopicToHelix) {
  sim::Host& bh = net.add_host("broker");
  broker::BrokerNode broker_node(bh, 0);
  sim::Host& rh = net.add_host("real-servers");
  HelixServer helix(rh);
  RealProducer producer(rh, broker_node.stream_endpoint(), helix,
                        {.topic = "/xgsp/session/9/video", .stream_name = "9-video"});
  EXPECT_EQ(helix.stream_names(), std::vector<std::string>{"9-video"});

  // A viewer playing the re-encoded stream.
  StreamingPlayer player(net.add_host("viewer"), helix.rtsp_endpoint());
  player.play("9-video", [](bool) {});
  loop.run();

  // A video sender publishing RTP into the session topic.
  sim::Host& sender = net.add_host("sender");
  rtp::RtpSession tx(sender, {.ssrc = 5, .payload_type = 96});
  broker::BrokerClient pub(sender, broker_node.stream_endpoint(),
                           broker::BrokerClient::Config{.name = "sender"});
  tx.on_send([&](const Payload& wire) { pub.publish("/xgsp/session/9/video", wire); });
  media::VideoSource source(tx, {.codec = media::codecs::mpeg4_sim(), .seed = 4});
  loop.run();
  source.start();
  loop.run_until(SimTime{duration_s(2).ns()});
  source.stop();
  loop.run_for(duration_s(1));

  EXPECT_GT(producer.packets_consumed(), 50u);
  EXPECT_GT(producer.blocks_produced(), 20u);
  EXPECT_GT(player.blocks_received(), 20u);
  // RealMedia re-encoding reduces the bitrate (output_ratio < 1).
  EXPECT_LT(player.bytes_received(), producer.packets_consumed() * 960);
  EXPECT_EQ(player.late_blocks(), 0u);
}

TEST_F(StreamingTest, ArchiveRecordsAndReplaysWithTiming) {
  sim::Host& bh = net.add_host("broker");
  broker::BrokerNode broker_node(bh, 0);
  ConferenceArchive archive(net.add_host("archive"), broker_node.stream_endpoint());
  broker::BrokerClient pub(net.add_host("pub"), broker_node.stream_endpoint());
  archive.record("/conf/audio");
  loop.run();
  // Three events spaced 100ms apart.
  for (int i = 0; i < 3; ++i) {
    loop.schedule_after(duration_ms(100 * (i + 1)),
                        [&pub, i] { pub.publish("/conf/audio", Bytes(10, static_cast<std::uint8_t>(i))); });
  }
  loop.run();
  archive.stop("/conf/audio");
  EXPECT_EQ(archive.recorded_events("/conf/audio"), 3u);

  // Replay at 1x onto a new topic; a subscriber sees the same spacing.
  broker::BrokerClient sub(net.add_host("sub"), broker_node.stream_endpoint());
  sub.subscribe("/replay/audio");
  std::vector<std::int64_t> arrivals;
  sub.on_event([&](const broker::Event&) { arrivals.push_back(loop.now().ns()); });
  loop.run();
  SimTime replay_start = loop.now();
  ASSERT_TRUE(archive.replay("/conf/audio", "/replay/audio"));
  loop.run();
  ASSERT_EQ(arrivals.size(), 3u);
  auto gap1 = arrivals[1] - arrivals[0];
  auto gap2 = arrivals[2] - arrivals[1];
  EXPECT_NEAR(static_cast<double>(gap1), duration_ms(100).ns(), duration_ms(5).ns());
  EXPECT_NEAR(static_cast<double>(gap2), duration_ms(100).ns(), duration_ms(5).ns());
  EXPECT_GE(arrivals[0], replay_start.ns());
}

TEST_F(StreamingTest, ArchiveReplaySpeedScalesTiming) {
  sim::Host& bh = net.add_host("broker");
  broker::BrokerNode broker_node(bh, 0);
  ConferenceArchive archive(net.add_host("archive"), broker_node.stream_endpoint());
  broker::BrokerClient pub(net.add_host("pub"), broker_node.stream_endpoint());
  archive.record("/t");
  loop.run();
  loop.schedule_after(duration_ms(200), [&] { pub.publish("/t", Bytes(1, 1)); });
  loop.schedule_after(duration_ms(400), [&] { pub.publish("/t", Bytes(1, 2)); });
  loop.run();
  archive.stop("/t");
  broker::BrokerClient sub(net.add_host("sub"), broker_node.stream_endpoint());
  sub.subscribe("/t2");
  std::vector<std::int64_t> arrivals;
  sub.on_event([&](const broker::Event&) { arrivals.push_back(loop.now().ns()); });
  loop.run();
  ASSERT_TRUE(archive.replay("/t", "/t2", 2.0));  // twice as fast
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), duration_ms(100).ns(),
              duration_ms(5).ns());
  EXPECT_FALSE(archive.replay("/missing", "/x"));
}

}  // namespace
}  // namespace gmmcs::streaming
