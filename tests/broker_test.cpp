// Tests for the messaging middleware: topics, event wire format,
// single-broker pub/sub, multi-broker routing, RTP proxy, firewall clients.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/rtp_proxy.hpp"
#include "broker/topic.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "transport/stream.hpp"

namespace gmmcs::broker {
namespace {

TEST(Topic, Normalization) {
  EXPECT_EQ(normalize_topic("session/42/"), "/session/42");
  EXPECT_EQ(normalize_topic("//a//b"), "/a/b");
  EXPECT_EQ(normalize_topic("/"), "/");
}

TEST(Topic, Validity) {
  EXPECT_TRUE(is_valid_topic("/xgsp/session/1/video"));
  EXPECT_FALSE(is_valid_topic("/a/*/b"));
  EXPECT_FALSE(is_valid_topic("/a/#"));
  EXPECT_FALSE(is_valid_topic(""));
  EXPECT_FALSE(is_valid_topic("/"));
}

TEST(Topic, ExactFilterMatch) {
  TopicFilter f("/xgsp/session/1/video");
  EXPECT_TRUE(f.matches("/xgsp/session/1/video"));
  EXPECT_FALSE(f.matches("/xgsp/session/1/audio"));
  EXPECT_FALSE(f.matches("/xgsp/session/1"));
  EXPECT_FALSE(f.matches("/xgsp/session/1/video/hd"));
}

TEST(Topic, StarMatchesOneSegment) {
  TopicFilter f("/xgsp/session/*/video");
  EXPECT_TRUE(f.matches("/xgsp/session/1/video"));
  EXPECT_TRUE(f.matches("/xgsp/session/99/video"));
  EXPECT_FALSE(f.matches("/xgsp/session/1/2/video"));
}

TEST(Topic, HashMatchesRest) {
  TopicFilter f("/xgsp/session/1/#");
  EXPECT_TRUE(f.matches("/xgsp/session/1/video"));
  EXPECT_TRUE(f.matches("/xgsp/session/1/audio/stereo"));
  EXPECT_FALSE(f.matches("/xgsp/session/2/video"));
  // '#' requires at least the prefix.
  EXPECT_FALSE(f.matches("/xgsp/session"));
}

TEST(Topic, HashMatchesPrefixItself) {
  TopicFilter f("/a/#");
  EXPECT_TRUE(f.matches("/a/b"));
  EXPECT_TRUE(f.matches("/a"));  // zero remaining segments
}

TEST(Topic, InvalidHashPlacementMatchesNothing) {
  TopicFilter f("/a/#/b");
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.matches("/a/x/b"));
}

TEST(EventWire, EventRoundTrip) {
  Event e;
  e.topic = "/s/1/video";
  e.payload = to_bytes("payload");
  e.qos = QoS::kReliable;
  e.origin = SimTime{123456789};
  e.seq = 42;
  e.hops = 3;
  auto f = decode(encode(e));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().type, MessageType::kEvent);
  const Event& d = f.value().event;
  EXPECT_EQ(d.topic, "/s/1/video");
  EXPECT_EQ(d.qos, QoS::kReliable);
  EXPECT_EQ(d.origin.ns(), 123456789);
  EXPECT_EQ(d.seq, 42u);
  EXPECT_EQ(d.hops, 3);
}

TEST(EventWire, PeerEventCarriesTargets) {
  PeerEventMessage m;
  m.event.topic = "/t";
  m.event.payload = Bytes(10, 1);
  m.targets = {3, 7, 9};
  auto f = decode(encode(m));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().type, MessageType::kPeerEvent);
  EXPECT_EQ(f.value().peer_event.targets, (std::vector<BrokerId>{3, 7, 9}));
}

TEST(EventWire, HelloRoundTrip) {
  auto f = decode(encode(HelloMessage{"alice", 5004}));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().hello.client_name, "alice");
  EXPECT_EQ(f.value().hello.udp_port, 5004);
  auto a = decode(encode(HelloAckMessage{17, 9001}));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().hello_ack.client_id, 17u);
}

TEST(EventWire, RejectsGarbage) {
  EXPECT_FALSE(decode(Bytes{}).ok());
  EXPECT_FALSE(decode(Bytes{99, 1, 2}).ok());
}

class BrokerTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 21};

  sim::Host& host(const std::string& name) { return net.add_host(name); }
};

TEST_F(BrokerTest, SingleBrokerPubSub) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint(), {.name = "pub"});
  BrokerClient sub(host("sub"), broker.stream_endpoint(), {.name = "sub"});
  sub.subscribe("/session/1/video");
  std::vector<std::string> got;
  sub.on_event([&](const Event& e) { got.push_back(to_string(e.payload)); });
  loop.run();  // handshakes
  ASSERT_TRUE(pub.ready());
  ASSERT_TRUE(sub.ready());
  pub.publish("/session/1/video", to_bytes("frame1"));
  pub.publish("/session/1/audio", to_bytes("nope"));
  pub.publish("/session/1/video", to_bytes("frame2"));
  loop.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "frame1");
  EXPECT_EQ(got[1], "frame2");
  EXPECT_EQ(broker.events_in(), 3u);
  EXPECT_EQ(broker.copies_delivered(), 2u);
}

TEST_F(BrokerTest, PublishBeforeReadyIsQueued) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient sub(host("sub"), broker.stream_endpoint());
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  pub.publish("/t", to_bytes("early"));  // before handshake completes
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerTest, WildcardSubscription) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  BrokerClient sub(host("sub"), broker.stream_endpoint());
  sub.subscribe("/session/1/#");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  pub.publish("/session/1/video", to_bytes("a"));
  pub.publish("/session/1/audio", to_bytes("b"));
  pub.publish("/session/2/video", to_bytes("c"));
  loop.run();
  EXPECT_EQ(got, 2);
}

TEST_F(BrokerTest, UnsubscribeStopsDelivery) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  BrokerClient sub(host("sub"), broker.stream_endpoint());
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  pub.publish("/t", to_bytes("one"));
  loop.run();
  sub.unsubscribe("/t");
  loop.run();
  pub.publish("/t", to_bytes("two"));
  loop.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(broker.subscription_count(), 0u);
}

TEST_F(BrokerTest, MultipleSubscribersEachGetACopy) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  std::vector<std::unique_ptr<BrokerClient>> subs;
  int got = 0;
  for (int i = 0; i < 10; ++i) {
    subs.push_back(std::make_unique<BrokerClient>(host("sub" + std::to_string(i)),
                                                  broker.stream_endpoint()));
    subs.back()->subscribe("/t");
    subs.back()->on_event([&](const Event&) { ++got; });
  }
  loop.run();
  pub.publish("/t", to_bytes("x"));
  loop.run();
  EXPECT_EQ(got, 10);
  EXPECT_EQ(broker.copies_delivered(), 10u);
}

TEST_F(BrokerTest, EventCarriesOriginTimestampEndToEnd) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  BrokerClient sub(host("sub"), broker.stream_endpoint());
  sub.subscribe("/t");
  SimTime origin, arrival;
  sub.on_event([&](const Event& e) {
    origin = e.origin;
    arrival = loop.now();
  });
  loop.run();
  SimTime published_at = loop.now();
  pub.publish("/t", Bytes(1000, 0));
  loop.run();
  EXPECT_EQ(origin, published_at);
  EXPECT_GT(arrival, origin);  // dispatch cost + two network legs
}

TEST_F(BrokerTest, ReliableQosDeliveredOverStreamDespiteLoss) {
  sim::Host& bh = host("broker");
  sim::Host& sh = host("sub");
  BrokerNode broker(bh, 0);
  // Lossy path: UDP events would vanish, stream traffic is reliable.
  net.set_path(bh.id(), sh.id(), sim::PathConfig{.latency = duration_us(100), .loss = 1.0});
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  BrokerClient sub(sh, broker.stream_endpoint(), {.udp_delivery = true});
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  pub.publish("/t", to_bytes("lost"), QoS::kBestEffort);
  pub.publish("/t", to_bytes("kept"), QoS::kReliable);
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerTest, DispatchCostScalesWithFanout) {
  // With one dispatch thread, delivering to N clients takes ~N copy costs;
  // the last receiver's delay reflects the full fanout serialization.
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  std::vector<std::unique_ptr<BrokerClient>> subs;
  SimTime last_arrival;
  for (int i = 0; i < 50; ++i) {
    subs.push_back(std::make_unique<BrokerClient>(host("s" + std::to_string(i)),
                                                  broker.stream_endpoint()));
    subs.back()->subscribe("/t");
    subs.back()->on_event([&](const Event&) { last_arrival = loop.now(); });
  }
  loop.run();
  SimTime t0 = loop.now();
  pub.publish("/t", Bytes(1024, 0));
  loop.run();
  // 50 copies x ~30us = ~1.5ms minimum.
  EXPECT_GT((last_arrival - t0).us(), 1000);
}

TEST_F(BrokerTest, EncodeOnceRegardlessOfFanout) {
  // The encode-once fan-out: delivering one event to 400 subscribers must
  // serialize the kEvent frame exactly once process-wide — at the
  // publishing client. The broker adopts the arrival frame as the routed
  // event's wire image and shares it with every recipient.
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  std::vector<std::unique_ptr<BrokerClient>> subs;
  int got = 0;
  for (int i = 0; i < 400; ++i) {
    subs.push_back(std::make_unique<BrokerClient>(host("s" + std::to_string(i)),
                                                  broker.stream_endpoint()));
    subs.back()->subscribe("/t");
    subs.back()->on_event([&](const Event&) { ++got; });
  }
  loop.run();
  std::uint64_t enc0 = event_encode_count();
  pub.publish("/t", Bytes(1024, 0));
  loop.run();
  EXPECT_EQ(got, 400);
  EXPECT_EQ(broker.copies_delivered(), 400u);
  EXPECT_EQ(event_encode_count() - enc0, 1u);
}

TEST_F(BrokerTest, DeliveryOrderMatchesSubscriptionOrder) {
  // Regression vs the pre-index path: copy jobs are submitted in ascending
  // client-id order, so equal-latency receivers hear the event in the
  // order they subscribed.
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  std::vector<std::unique_ptr<BrokerClient>> subs;
  std::vector<int> arrivals;
  for (int i = 0; i < 8; ++i) {
    subs.push_back(std::make_unique<BrokerClient>(host("s" + std::to_string(i)),
                                                  broker.stream_endpoint()));
    subs.back()->subscribe("/t");
    subs.back()->on_event([&arrivals, i](const Event&) { arrivals.push_back(i); });
  }
  loop.run();
  pub.publish("/t", to_bytes("x"));
  loop.run();
  EXPECT_EQ(arrivals, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(BrokerTest, OverlappingFiltersDeliverSingleCopy) {
  // A client whose exact and wildcard filters both match still gets one
  // copy (the index deduplicates across its exact table and wildcard
  // list, like the old per-client break).
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(host("pub"), broker.stream_endpoint());
  BrokerClient sub(host("sub"), broker.stream_endpoint());
  sub.subscribe("/s/1/video");
  sub.subscribe("/s/1/#");
  sub.subscribe("/s/*/video");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  pub.publish("/s/1/video", to_bytes("x"));
  loop.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(broker.copies_delivered(), 1u);
}

TEST_F(BrokerTest, DuplicateHelloKeepsFirstIdentity) {
  // A second Hello on an identified connection must not mint a second
  // ClientRec (the old path leaked the first one and its udp_index entry).
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  sim::Host& ch = host("client");
  auto conn = transport::StreamConnection::connect(ch, broker.stream_endpoint());
  std::vector<ClientId> acks;
  conn->on_message([&](const Payload& data) {
    auto f = decode(data);
    if (f.ok() && f.value().type == MessageType::kHelloAck) {
      acks.push_back(f.value().hello_ack.client_id);
    }
  });
  conn->send(encode(HelloMessage{"dup", 5004}));
  conn->send(encode(HelloMessage{"dup-again", 5006}));
  loop.run();
  EXPECT_EQ(broker.client_count(), 1u);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0], 1u);
}

TEST_F(BrokerTest, ClientDisconnectCleansSubscriptions) {
  sim::Host& bh = host("broker");
  BrokerNode broker(bh, 0);
  {
    auto sub = std::make_unique<BrokerClient>(host("sub"), broker.stream_endpoint());
    sub->subscribe("/t");
    loop.run();
    EXPECT_EQ(broker.client_count(), 1u);
    EXPECT_EQ(broker.subscription_count(), 1u);
    // BrokerClient has no explicit close; dropping it closes the stream.
    sub.reset();
  }
  loop.run();
  EXPECT_EQ(broker.client_count(), 0u);
  EXPECT_EQ(broker.subscription_count(), 0u);
}

class BrokerNetTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 33};
};

TEST_F(BrokerNetTest, TwoBrokerRouting) {
  BrokerNetwork fabric(net);
  BrokerNode& b0 = fabric.add_broker(net.add_host("b0"));
  BrokerNode& b1 = fabric.add_broker(net.add_host("b1"));
  fabric.link(0, 1);
  fabric.finalize();
  BrokerClient pub(net.add_host("pub"), b0.stream_endpoint());
  BrokerClient sub(net.add_host("sub"), b1.stream_endpoint());
  sub.subscribe("/conf/video");
  std::vector<std::uint8_t> hops;
  sub.on_event([&](const Event& e) { hops.push_back(e.hops); });
  loop.run();
  pub.publish("/conf/video", to_bytes("x"));
  loop.run();
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], 1);  // one broker-to-broker hop
  EXPECT_EQ(b0.peer_forwards(), 1u);
}

TEST_F(BrokerNetTest, ChainRoutingMultiHop) {
  BrokerNetwork fabric(net);
  for (int i = 0; i < 4; ++i) fabric.add_broker(net.add_host("b" + std::to_string(i)));
  fabric.link(0, 1);
  fabric.link(1, 2);
  fabric.link(2, 3);
  fabric.finalize();
  EXPECT_EQ(fabric.distance(0, 3), 3);
  EXPECT_EQ(fabric.next_hop(0, 3), 1u);
  BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  BrokerClient sub(net.add_host("sub"), fabric.broker(3).stream_endpoint());
  sub.subscribe("/t");
  std::uint8_t seen_hops = 0;
  sub.on_event([&](const Event& e) { seen_hops = e.hops; });
  loop.run();
  pub.publish("/t", to_bytes("x"));
  loop.run();
  EXPECT_EQ(seen_hops, 3);
}

TEST_F(BrokerNetTest, NoDuplicateDeliveryOnSharedPaths) {
  // Chain b0-b1-b2 with subscribers at b1 and b2: b1 must both deliver
  // locally and forward, and b2's copy must arrive exactly once.
  BrokerNetwork fabric(net);
  for (int i = 0; i < 3; ++i) fabric.add_broker(net.add_host("b" + std::to_string(i)));
  fabric.link(0, 1);
  fabric.link(1, 2);
  fabric.finalize();
  BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  BrokerClient sub1(net.add_host("s1"), fabric.broker(1).stream_endpoint());
  BrokerClient sub2(net.add_host("s2"), fabric.broker(2).stream_endpoint());
  sub1.subscribe("/t");
  sub2.subscribe("/t");
  int got1 = 0, got2 = 0;
  sub1.on_event([&](const Event&) { ++got1; });
  sub2.on_event([&](const Event&) { ++got2; });
  loop.run();
  pub.publish("/t", to_bytes("x"));
  loop.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  // b0 sent exactly one copy toward b1 (shared next hop for both targets).
  EXPECT_EQ(fabric.broker(0).peer_forwards(), 1u);
}

TEST_F(BrokerNetTest, PublisherLocalBrokerSubscribersUnaffectedByFabric) {
  BrokerNetwork fabric(net);
  fabric.add_broker(net.add_host("b0"));
  fabric.add_broker(net.add_host("b1"));
  fabric.link(0, 1);
  fabric.finalize();
  BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  BrokerClient local_sub(net.add_host("ls"), fabric.broker(0).stream_endpoint());
  local_sub.subscribe("/t");
  int got = 0;
  local_sub.on_event([&](const Event& e) {
    ++got;
    EXPECT_EQ(e.hops, 0);
  });
  loop.run();
  pub.publish("/t", to_bytes("x"));
  loop.run();
  EXPECT_EQ(got, 1);
  // Nothing forwarded: the only interest is local.
  EXPECT_EQ(fabric.broker(0).peer_forwards(), 0u);
}

TEST_F(BrokerNetTest, HierarchyTopologyRoutesEverywhere) {
  BrokerNetwork fabric(net);
  // 2 super-clusters x 2 clusters x 2 nodes = 8 brokers.
  for (int sc = 0; sc < 2; ++sc) {
    for (int c = 0; c < 2; ++c) {
      for (int n = 0; n < 2; ++n) {
        BrokerNode& b = fabric.add_broker(
            net.add_host("b" + std::to_string(sc) + std::to_string(c) + std::to_string(n)));
        fabric.set_address(b.id(), ClusterAddress{sc, c, n});
      }
    }
  }
  fabric.link_hierarchy();
  for (BrokerId i = 0; i < 8; ++i) {
    for (BrokerId j = 0; j < 8; ++j) {
      EXPECT_GE(fabric.distance(i, j), 0) << i << "->" << j;
    }
  }
  // End-to-end across super-clusters.
  BrokerClient pub(net.add_host("pub"), fabric.broker(1).stream_endpoint());
  BrokerClient sub(net.add_host("sub"), fabric.broker(7).stream_endpoint());
  sub.subscribe("/x");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  pub.publish("/x", to_bytes("x"));
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerNetTest, UnroutableTargetsCountedNotFatal) {
  // Two brokers with interest but no path between them: every event that
  // cannot reach its interested broker bumps unroutable_events() (and
  // warns once, not per event).
  BrokerNetwork fabric(net);
  BrokerNode& b0 = fabric.add_broker(net.add_host("b0"));
  fabric.add_broker(net.add_host("b1"));
  fabric.finalize();  // no links: b1 is unreachable from b0
  BrokerClient pub(net.add_host("pub"), b0.stream_endpoint());
  BrokerClient sub(net.add_host("sub"), fabric.broker(1).stream_endpoint());
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  for (int i = 0; i < 5; ++i) pub.publish("/t", to_bytes("x"));
  loop.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b0.unroutable_events(), 5u);
  EXPECT_EQ(b0.peer_forwards(), 0u);
}

TEST_F(BrokerNetTest, ClientViaProxyTraversesFirewall) {
  BrokerNetwork fabric(net);
  BrokerNode& b = fabric.add_broker(net.add_host("broker"));
  fabric.finalize();
  sim::Host& inside = net.add_host("inside");
  sim::Host& proxy_host = net.add_host("proxy");
  transport::Firewall fw(inside, transport::FirewallRules{});
  transport::ProxyServer proxy(proxy_host);
  BrokerClient pub(net.add_host("pub"), b.stream_endpoint());
  BrokerClient sub(inside, b.stream_endpoint(),
                   {.name = "tunneled", .via_proxy = proxy.endpoint()});
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  ASSERT_TRUE(sub.ready());
  pub.publish("/t", to_bytes("through-the-wall"), QoS::kReliable);
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerNetTest, RtpProxyBridgesRawRtp) {
  BrokerNetwork fabric(net);
  BrokerNode& b = fabric.add_broker(net.add_host("broker"));
  fabric.finalize();
  RtpProxy proxy(net.add_host("proxy"), b.stream_endpoint(), {.topic = "/s/1/video"});
  // Raw RTP sender and receiver that know nothing about the broker.
  sim::Host& tx_host = net.add_host("tx");
  sim::Host& rx_host = net.add_host("rx");
  transport::DatagramSocket tx(tx_host);
  transport::DatagramSocket rx(rx_host);
  int got = 0;
  rx.on_receive([&](const sim::Datagram& d) {
    ++got;
    EXPECT_EQ(d.payload.size(), 200u);
  });
  proxy.add_receiver(rx.local());
  loop.run();  // proxy handshake
  tx.send_to(proxy.rtp_ingress(), Bytes(200, 7));
  loop.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(proxy.packets_published(), 1u);
  EXPECT_EQ(proxy.packets_fanned_out(), 1u);
}

}  // namespace
}  // namespace gmmcs::broker
