// Tests for the JXTA-like peer-to-peer mode: mesh membership, direct
// replication, publisher-side fanout cost, and the no-broker property.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/p2p.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace gmmcs::broker {
namespace {

class P2pTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 81};
  P2pMesh mesh;
};

TEST_F(P2pTest, DirectReplicationToInterestedPeers) {
  P2pPeer a(net.add_host("a"), mesh, "a");
  P2pPeer b(net.add_host("b"), mesh, "b");
  P2pPeer c(net.add_host("c"), mesh, "c");
  b.subscribe("/av");
  c.subscribe("/other");
  int b_got = 0, c_got = 0;
  b.on_event([&](const Event& ev) {
    ++b_got;
    EXPECT_EQ(ev.topic, "/av");
  });
  c.on_event([&](const Event&) { ++c_got; });
  a.publish("/av", Bytes(100, 1));
  loop.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
  EXPECT_EQ(a.copies_sent(), 1u);
}

TEST_F(P2pTest, PublisherNeverHearsItself) {
  P2pPeer a(net.add_host("a"), mesh, "a");
  a.subscribe("/t");
  int got = 0;
  a.on_event([&](const Event&) { ++got; });
  a.publish("/t", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(got, 0);
}

TEST_F(P2pTest, WildcardsWorkInMesh) {
  P2pPeer a(net.add_host("a"), mesh, "a");
  P2pPeer b(net.add_host("b"), mesh, "b");
  b.subscribe("/session/*/video");
  int got = 0;
  b.on_event([&](const Event&) { ++got; });
  a.publish("/session/9/video", Bytes(10, 0));
  a.publish("/session/9/audio", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST_F(P2pTest, UnsubscribeAndLeaveStopDelivery) {
  P2pPeer a(net.add_host("a"), mesh, "a");
  auto b = std::make_unique<P2pPeer>(net.add_host("b"), mesh, "b");
  b->subscribe("/t");
  int got = 0;
  b->on_event([&](const Event&) { ++got; });
  a.publish("/t", Bytes(1, 0));
  loop.run();
  EXPECT_EQ(got, 1);
  b->unsubscribe("/t");
  a.publish("/t", Bytes(1, 0));
  loop.run();
  EXPECT_EQ(got, 1);
  b->subscribe("/t");
  EXPECT_EQ(mesh.peer_count(), 2u);
  b.reset();  // peer departs the mesh entirely
  EXPECT_EQ(mesh.peer_count(), 1u);
  a.publish("/t", Bytes(1, 0));
  loop.run();  // no crash, nothing delivered
  // Only the first publish produced a copy (second was after unsubscribe,
  // third after the peer left the mesh).
  EXPECT_EQ(a.copies_sent(), 1u);
}

TEST_F(P2pTest, FanoutCpuGrowsWithGroupSize) {
  P2pPeer pub(net.add_host("pub"), mesh, "pub");
  std::vector<std::unique_ptr<P2pPeer>> peers;
  for (int i = 0; i < 10; ++i) {
    peers.push_back(
        std::make_unique<P2pPeer>(net.add_host("p" + std::to_string(i)), mesh, "p"));
    peers.back()->subscribe("/t");
  }
  pub.publish("/t", Bytes(1024, 0));
  loop.run();
  SimDuration ten = pub.fanout_cpu();
  for (int i = 10; i < 20; ++i) {
    peers.push_back(
        std::make_unique<P2pPeer>(net.add_host("p" + std::to_string(i)), mesh, "p"));
    peers.back()->subscribe("/t");
  }
  pub.publish("/t", Bytes(1024, 0));
  loop.run();
  SimDuration twenty = pub.fanout_cpu() - ten;
  // Second publish fanned to ~2x the peers -> ~2x the copy CPU.
  EXPECT_GT(twenty.ns(), ten.ns() * 3 / 2);
  EXPECT_EQ(pub.copies_sent(), 30u);
}

TEST_F(P2pTest, EventsCarryOriginForDelayMeasurement) {
  P2pPeer a(net.add_host("a"), mesh, "a");
  P2pPeer b(net.add_host("b"), mesh, "b");
  b.subscribe("/t");
  SimTime origin;
  SimTime arrival;
  b.on_event([&](const Event& ev) {
    origin = ev.origin;
    arrival = loop.now();
  });
  loop.run_until(SimTime{duration_ms(5).ns()});
  SimTime published = loop.now();
  a.publish("/t", Bytes(100, 0));
  loop.run();
  EXPECT_EQ(origin, published);
  EXPECT_GT(arrival, origin);
}

}  // namespace
}  // namespace gmmcs::broker
