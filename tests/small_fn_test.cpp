// SmallFn: inline-storage guarantees, move semantics, heap fallback, and
// the ServiceCenter property the type exists for — a copy job's completion
// closure costs zero heap allocations once the center is warmed up.

#include "common/small_fn.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/time.hpp"
#include "sim/event_loop.hpp"
#include "sim/service_center.hpp"

namespace {

using gmmcs::SmallFn;

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting global new/delete: the test binary is single-process and the
// counter only ever diffed around deterministic single-threaded regions.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(SmallFn, InvokesAndReportsEngagement) {
  int hits = 0;
  SmallFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(SmallFn{}));
  EXPECT_FALSE(static_cast<bool>(SmallFn{nullptr}));
}

TEST(SmallFn, CapturesUpTo64BytesInline) {
  struct Fat {
    std::shared_ptr<int> keep;
    std::uint64_t ids[6];
    void operator()() const {}
  };
  static_assert(sizeof(Fat) <= SmallFn::kInlineBytes);
  SmallFn fn(Fat{std::make_shared<int>(1), {}});
  EXPECT_TRUE(fn.is_inline());

  struct TooFat {
    std::uint64_t blob[9];  // 72 bytes
    void operator()() const {}
  };
  static_assert(sizeof(TooFat) > SmallFn::kInlineBytes);
  SmallFn heap_fn(TooFat{});
  EXPECT_FALSE(heap_fn.is_inline());
  heap_fn();  // still callable through the heap cell
}

TEST(SmallFn, InlineConstructionDoesNotAllocate) {
  auto owner = std::make_shared<int>(7);
  std::uint64_t before = g_allocs.load();
  {
    SmallFn fn([owner, a = std::uint64_t{1}, b = std::uint64_t{2}]() mutable { ++a; (void)b; });
    EXPECT_TRUE(fn.is_inline());
    fn();
  }
  EXPECT_EQ(g_allocs.load(), before);
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  int got = 0;
  SmallFn fn([p = std::move(p), &got] { got = *p + 1; });
  EXPECT_TRUE(fn.is_inline());  // unique_ptr is 8 bytes, move-only
  SmallFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move): asserting the postcondition
  moved();
  EXPECT_EQ(got, 42);
}

TEST(SmallFn, MoveTransfersOwnershipExactlyOnce) {
  auto owner = std::make_shared<int>(0);
  std::weak_ptr<int> watch = owner;
  SmallFn a([owner = std::move(owner)] {});
  EXPECT_EQ(watch.use_count(), 1);
  SmallFn b = std::move(a);
  EXPECT_EQ(watch.use_count(), 1);
  SmallFn c;
  c = std::move(b);
  EXPECT_EQ(watch.use_count(), 1);
  c.reset();
  EXPECT_EQ(watch.use_count(), 0);
}

TEST(SmallFn, AssignmentDestroysPreviousTarget) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> watch = first;
  SmallFn fn([first = std::move(first)] {});
  EXPECT_EQ(watch.use_count(), 1);
  fn = SmallFn([] {});
  EXPECT_EQ(watch.use_count(), 0);
}

TEST(SmallFn, HeapFallbackReleasesOnDestruction) {
  auto owner = std::make_shared<int>(3);
  std::weak_ptr<int> watch = owner;
  struct Big {
    std::shared_ptr<int> keep;
    std::uint64_t pad[9];
    void operator()() const {}
  };
  {
    SmallFn fn(Big{std::move(owner), {}});
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(watch.use_count(), 1);
    fn();
  }
  EXPECT_EQ(watch.use_count(), 0);
}

// The end-to-end property: after warm-up (ServiceCenter slot table,
// EventLoop callback slot table, event heap and queue at steady-state
// capacity), a copy job with a realistic capture (shared_ptr + ids,
// > std::function's 16-byte SBO) costs ZERO heap allocations end to end.
// EventLoop scheduling recycles a cb_slots_ entry (no map node) and
// Callback is a SmallFn (64-byte inline buffer), so neither the EventLoop
// bookkeeping nor the completion closure allocates. Before the slot table
// + SmallFn migration the same job cost >= 3 allocations (callbacks_ map
// node + the std::function wrapping the capture + the outer completion
// closure), so the zero bound below certifies the improvement: both old
// implementations fail it.
TEST(ServiceCenterSmallFn, WarmedCopyJobsDoNotAllocate) {
  gmmcs::sim::EventLoop loop;
  gmmcs::sim::ServiceCenter sc(loop, /*servers=*/2);
  auto payload = std::make_shared<int>(0);

  auto submit_one = [&] {
    bool ok = sc.submit(gmmcs::duration_ms(1),
                        [payload, a = std::uint64_t{1}, b = std::uint64_t{2},
                         c = std::uint64_t{3}] { *payload += static_cast<int>(a + b + c); });
    ASSERT_TRUE(ok);
  };
  for (int i = 0; i < 8; ++i) submit_one();  // warm slots + event heap
  loop.run();

  std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 8; ++i) submit_one();
  loop.run();
  EXPECT_EQ(g_allocs.load() - before, 0u);
  EXPECT_EQ(*payload, 16 * 6);
  EXPECT_EQ(sc.completed(), 16u);
}

}  // namespace
