// Deterministic structure-aware decoder fuzzer (DESIGN.md §16.4).
//
// Every decoder family — broker frames, RAS, Q.931, H.245, RTP, RTCP,
// SIP, SDP, RTSP, XGSP/XML, HTTP — is driven with seeded mutations of
// valid wire images: truncation, length-field inflation, count
// explosion, bit flips, and digit-run inflation for the text protocols.
// Two invariants hold for every input:
//
//   1. No throw. Malformed input is data, not an exception: decoders
//      return an error Result (or a zero-filled value for fields
//      documented as best-effort), never propagate.
//   2. O(N) allocation. Decoding an N-byte frame allocates at most
//      kAllocFactor * N + kAllocSlack bytes, certified by a counting
//      global operator new. This is the dynamic twin of the wire taint
//      pass: a count or length claimed by the frame but not backed by
//      its bytes must be rejected before it sizes an allocation.
//
// Failures shrink greedily to a minimal reproducer, printed as hex to
// commit under tests/fuzz_seeds/ (replayed by the first test here; the
// corpus is named <family>-<what>.hex). GMMCS_FUZZ_SEED and
// GMMCS_FUZZ_ITERS override the batch — CI derives the seed from the
// commit SHA so every push explores new mutations while any failure
// stays reproducible.
//
// Own binary because it replaces global new/delete (like
// zero_copy_cert_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "broker/event.hpp"
#include "common/bytes.hpp"
#include "common/random.hpp"
#include "h323/messages.hpp"
#include "rtp/packet.hpp"
#include "rtp/rtcp.hpp"
#include "sip/message.hpp"
#include "sip/sdp.hpp"
#include "soap/soap.hpp"
#include "streaming/rtsp.hpp"
#include "xgsp/messages.hpp"

namespace {

using gmmcs::Bytes;
using gmmcs::ByteWriter;
using gmmcs::Rng;

std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

// Counting global new/delete: single-process, diffed around
// single-threaded decode calls only.
void* operator new(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

// Generous constants: real decoders sit far below (a broker frame
// decode allocates ~2N), while the bugs this hunts sit far above (the
// pre-fix kPeerEvent decode turned a 3-byte frame into a 256 KiB
// reserve — 3 * 128 + 8192 = 8576 would have caught it 30x over).
constexpr std::uint64_t kAllocFactor = 128;
constexpr std::uint64_t kAllocSlack = 8192;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

std::string to_text(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// --- family registry ------------------------------------------------------

struct Family {
  const char* name;
  bool text;  // enables digit-run inflation mutations
  void (*decode)(const Bytes&);
  Bytes (*seed)(Rng&);
};

std::string rand_token(Rng& rng, std::size_t max_len = 12) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789-.";
  auto len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlpha[rng.uniform_int(0, sizeof(kAlpha) - 2)]);
  }
  return s;
}

Bytes rand_payload(Rng& rng, std::size_t max_len = 32) {
  auto len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  Bytes b;
  for (std::size_t i = 0; i < len; ++i) {
    b.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  return b;
}

Bytes seed_broker(Rng& rng) {
  gmmcs::broker::Event ev;
  ev.topic = rand_token(rng);
  ev.payload = rand_payload(rng);
  ev.seq = static_cast<std::uint32_t>(rng.next());
  ev.publisher = static_cast<std::uint32_t>(rng.next());
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return encode(gmmcs::broker::HelloMessage{
          rand_token(rng), static_cast<std::uint16_t>(rng.next())});
    case 1:
      return encode(gmmcs::broker::SubscribeMessage{rand_token(rng), rng.chance(0.5)});
    case 2:
      return encode(ev);
    case 3: {
      gmmcs::broker::PeerEventMessage m;
      m.event = ev;
      auto n = rng.uniform_int(0, 4);
      for (std::int64_t k = 0; k < n; ++k) {
        m.targets.push_back(static_cast<std::uint32_t>(rng.next()));
      }
      return encode(m);
    }
    default:
      return encode(gmmcs::broker::LinkStateMessage{
          static_cast<std::uint32_t>(rng.next()), static_cast<std::uint32_t>(rng.next()),
          static_cast<std::uint32_t>(rng.next()), static_cast<std::uint32_t>(rng.next()),
          rng.chance(0.5)});
  }
}

Bytes seed_ras(Rng& rng) {
  gmmcs::h323::RasMessage m;
  m.type = static_cast<gmmcs::h323::RasType>(rng.uniform_int(1, 14));
  m.seq = static_cast<std::uint32_t>(rng.next());
  m.endpoint_alias = rand_token(rng);
  m.gatekeeper_id = rand_token(rng);
  m.bandwidth = static_cast<std::uint32_t>(rng.next());
  return m.encode();
}

Bytes seed_q931(Rng& rng) {
  gmmcs::h323::Q931Message m;
  m.type = gmmcs::h323::Q931Type::kSetup;
  m.call_reference = static_cast<std::uint16_t>(rng.next());
  m.calling_party = rand_token(rng);
  m.called_party = rand_token(rng);
  return m.encode();
}

Bytes seed_h245(Rng& rng) {
  gmmcs::h323::H245Message m;
  m.type = static_cast<gmmcs::h323::H245Type>(rng.uniform_int(1, 10));
  m.seq = static_cast<std::uint32_t>(rng.next());
  auto n = rng.uniform_int(0, 6);
  for (std::int64_t i = 0; i < n; ++i) {
    m.capabilities.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  m.media_kind = rand_token(rng);
  return m.encode();
}

Bytes seed_rtp(Rng& rng) {
  gmmcs::rtp::RtpPacket p;
  p.payload_type = static_cast<std::uint8_t>(rng.uniform_int(0, 127));
  p.sequence = static_cast<std::uint16_t>(rng.next());
  p.timestamp = static_cast<std::uint32_t>(rng.next());
  p.ssrc = static_cast<std::uint32_t>(rng.next());
  auto n = rng.uniform_int(0, 4);
  for (std::int64_t i = 0; i < n; ++i) {
    p.csrcs.push_back(static_cast<std::uint32_t>(rng.next()));
  }
  p.payload = rand_payload(rng);
  return p.serialize();
}

Bytes seed_rtcp(Rng& rng) {
  auto rand_block = [&] {
    gmmcs::rtp::ReportBlock b;
    b.ssrc = static_cast<std::uint32_t>(rng.next());
    b.highest_seq = static_cast<std::uint32_t>(rng.next());
    b.jitter = static_cast<std::uint32_t>(rng.next());
    return b;
  };
  if (rng.chance(0.5)) {
    gmmcs::rtp::SenderReport sr;
    sr.ssrc = static_cast<std::uint32_t>(rng.next());
    sr.ntp_timestamp = rng.next();
    auto n = rng.uniform_int(0, 3);
    for (std::int64_t i = 0; i < n; ++i) sr.blocks.push_back(rand_block());
    return serialize(sr);
  }
  gmmcs::rtp::ReceiverReport rr;
  rr.ssrc = static_cast<std::uint32_t>(rng.next());
  auto n = rng.uniform_int(0, 3);
  for (std::int64_t i = 0; i < n; ++i) rr.blocks.push_back(rand_block());
  return serialize(rr);
}

Bytes from_text(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

Bytes seed_sip(Rng& rng) {
  if (rng.chance(0.5)) {
    return from_text("INVITE sip:" + rand_token(rng) + "@gw SIP/2.0\r\nCSeq: " +
                     std::to_string(rng.uniform_int(1, 100000)) +
                     " INVITE\r\nCall-ID: " + rand_token(rng) + "\r\n\r\nbody");
  }
  return from_text("SIP/2.0 " + std::to_string(rng.uniform_int(100, 699)) +
                   " Reason\r\nCSeq: 1 INVITE\r\n\r\n");
}

Bytes seed_sdp(Rng& rng) {
  return from_text("v=0\r\no=" + rand_token(rng) + " 1 1 IN IP4 7\r\ns=s\r\nc=IN IP4 " +
                   std::to_string(rng.uniform_int(1, 1000)) + "\r\nm=audio " +
                   std::to_string(rng.uniform_int(1024, 65535)) + " RTP/AVP " +
                   std::to_string(rng.uniform_int(0, 127)) + "\r\na=rtpmap:0 PCMU/8000\r\n");
}

Bytes seed_rtsp(Rng& rng) {
  if (rng.chance(0.5)) {
    return from_text("SETUP rtsp://h/" + rand_token(rng) +
                     " RTSP/1.0\r\nCSeq: " + std::to_string(rng.uniform_int(1, 100000)) +
                     "\r\nTransport: RTP/AVP;client_node=7;client_port=9\r\n\r\n");
  }
  return from_text("RTSP/1.0 " + std::to_string(rng.uniform_int(100, 699)) +
                   " OK\r\nCSeq: 2\r\nSession: " + rand_token(rng) + "\r\n\r\n");
}

Bytes seed_xgsp(Rng& rng) {
  return from_text("<xgsp type=\"join-session\" seq=\"" +
                   std::to_string(rng.uniform_int(0, 100000)) + "\" session=\"" +
                   rand_token(rng) + "\" user=\"" + rand_token(rng) +
                   "\"><media kind=\"audio\" topic=\"/t\"/></xgsp>");
}

Bytes seed_http(Rng& rng) {
  return from_text("HTTP/1.1 " + std::to_string(rng.uniform_int(100, 599)) +
                   " OK\r\nContent-Type: text/xml\r\n\r\n<env>" + rand_token(rng) +
                   "</env>");
}

void decode_broker(const Bytes& b) { (void)gmmcs::broker::decode(gmmcs::Payload{Bytes(b)}); }
void decode_ras(const Bytes& b) { (void)gmmcs::h323::RasMessage::decode(b); }
void decode_q931(const Bytes& b) { (void)gmmcs::h323::Q931Message::decode(b); }
void decode_h245(const Bytes& b) { (void)gmmcs::h323::H245Message::decode(b); }
void decode_rtp(const Bytes& b) { (void)gmmcs::rtp::RtpPacket::parse(gmmcs::Payload{Bytes(b)}); }
void decode_rtcp(const Bytes& b) { (void)gmmcs::rtp::parse_rtcp(b); }
void decode_sip(const Bytes& b) { (void)gmmcs::sip::SipMessage::parse(to_text(b)); }
void decode_sdp(const Bytes& b) { (void)gmmcs::sip::Sdp::parse(to_text(b)); }
void decode_rtsp(const Bytes& b) { (void)gmmcs::streaming::RtspMessage::parse(to_text(b)); }
void decode_xgsp(const Bytes& b) { (void)gmmcs::xgsp::Message::parse(to_text(b)); }
void decode_http(const Bytes& b) { (void)gmmcs::soap::parse_http_response(to_text(b)); }

constexpr Family kFamilies[] = {
    {"broker", false, decode_broker, seed_broker},
    {"ras", false, decode_ras, seed_ras},
    {"q931", false, decode_q931, seed_q931},
    {"h245", false, decode_h245, seed_h245},
    {"rtp", false, decode_rtp, seed_rtp},
    {"rtcp", false, decode_rtcp, seed_rtcp},
    {"sip", true, decode_sip, seed_sip},
    {"sdp", true, decode_sdp, seed_sdp},
    {"rtsp", true, decode_rtsp, seed_rtsp},
    {"xgsp", true, decode_xgsp, seed_xgsp},
    {"http", true, decode_http, seed_http},
};

// --- the invariant --------------------------------------------------------

struct Verdict {
  bool threw = false;
  std::uint64_t allocated = 0;
  std::string what;
  [[nodiscard]] bool violated(std::size_t input_size) const {
    return threw || allocated > kAllocFactor * input_size + kAllocSlack;
  }
};

Verdict run_decode(const Family& fam, const Bytes& input) {
  Verdict v;
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  try {
    fam.decode(input);
  } catch (const std::exception& e) {
    v.threw = true;
    v.what = e.what();
  } catch (...) {
    v.threw = true;
    v.what = "(non-std exception)";
  }
  v.allocated = g_alloc_bytes.load(std::memory_order_relaxed);
  return v;
}

// --- mutations ------------------------------------------------------------

Bytes mutate(Rng& rng, const Family& fam, Bytes b) {
  if (b.empty()) return b;
  int kinds = fam.text ? 5 : 4;
  switch (rng.uniform_int(0, kinds - 1)) {
    case 0: {  // truncation
      b.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1)));
      break;
    }
    case 1: {  // length-field / count inflation: saturate a small window
      auto width = static_cast<std::size_t>(rng.uniform_int(1, 4));
      auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1));
      for (std::size_t i = at; i < b.size() && i < at + width; ++i) b[i] = 0xFF;
      break;
    }
    case 2: {  // count explosion: set a single byte to its maximum
      b[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(b.size()) - 1))] = 0xFF;
      break;
    }
    case 3: {  // bit flips
      auto flips = rng.uniform_int(1, 8);
      for (std::int64_t i = 0; i < flips; ++i) {
        auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1));
        b[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      break;
    }
    default: {  // digit-run inflation (text): overflow numeric fields
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (std::isdigit(b[i]) != 0) {
          auto len = static_cast<std::size_t>(rng.uniform_int(8, 24) & 0x1F);
          b.insert(b.begin() + static_cast<std::ptrdiff_t>(i), len, b[i]);
          break;
        }
      }
      break;
    }
  }
  // Occasionally stack a second mutation to reach deeper states.
  if (rng.chance(0.3)) return mutate(rng, fam, std::move(b));
  return b;
}

// --- shrinking ------------------------------------------------------------

// Greedy ddmin-lite: repeatedly delete the largest removable chunk that
// keeps the input failing, halving the chunk size until single bytes.
Bytes shrink(const Family& fam, Bytes failing) {
  for (std::size_t chunk = failing.size() / 2; chunk >= 1; chunk /= 2) {
    bool progress = true;
    while (progress && failing.size() > 1) {
      progress = false;
      for (std::size_t at = 0; at + chunk <= failing.size(); at += chunk) {
        Bytes cand(failing.begin(), failing.begin() + static_cast<std::ptrdiff_t>(at));
        cand.insert(cand.end(), failing.begin() + static_cast<std::ptrdiff_t>(at + chunk),
                    failing.end());
        if (run_decode(fam, cand).violated(cand.size())) {
          failing = std::move(cand);
          progress = true;
          break;
        }
      }
    }
    if (chunk == 1) break;
  }
  return failing;
}

std::string hex_dump(const Bytes& b) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::uint8_t byte : b) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

Bytes parse_hex(const std::string& text) {
  Bytes out;
  int hi = -1;
  for (char c : text) {
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    else continue;  // whitespace / newlines
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | nibble));
      hi = -1;
    }
  }
  return out;
}

void fuzz_family(const Family& fam) {
  const std::uint64_t seed = env_u64("GMMCS_FUZZ_SEED", 20260809);
  const std::uint64_t iters = env_u64("GMMCS_FUZZ_ITERS", 500);
  Rng rng(seed ^ std::hash<std::string>{}(fam.name));
  for (std::uint64_t i = 0; i < iters; ++i) {
    Bytes input = mutate(rng, fam, fam.seed(rng));
    Verdict v = run_decode(fam, input);
    if (!v.violated(input.size())) continue;
    const Bytes minimal = shrink(fam, input);
    const Verdict mv = run_decode(fam, minimal);
    FAIL() << fam.name << " decode invariant violated (seed=" << seed
           << " iter=" << i << "): "
           << (mv.threw ? "threw '" + mv.what + "'"
                        : "allocated " + std::to_string(mv.allocated) + " bytes for a " +
                              std::to_string(minimal.size()) + "-byte input")
           << "\nshrunk reproducer (commit as tests/fuzz_seeds/" << fam.name
           << "-<what>.hex):\n" << hex_dump(minimal);
  }
}

// --- tests ----------------------------------------------------------------

// The committed corpus: every shrunk reproducer a past fuzz run found
// replays clean against the hardened decoders. File name prefix (up to
// the first '-') selects the family.
TEST(DecodeFuzz, CommittedSeedCorpusReplaysClean) {
  const std::filesystem::path dir(GMMCS_FUZZ_SEED_DIR);
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".hex") continue;
    const std::string stem = entry.path().stem().string();
    const std::string fam_name = stem.substr(0, stem.find('-'));
    const Family* fam = nullptr;
    for (const Family& f : kFamilies) {
      if (fam_name == f.name) fam = &f;
    }
    ASSERT_NE(fam, nullptr) << "unknown family in seed name: " << stem;
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const Bytes input = parse_hex(text);
    const Verdict v = run_decode(*fam, input);
    EXPECT_FALSE(v.violated(input.size()))
        << stem << ": " << (v.threw ? "threw '" + v.what + "'"
                                    : "allocated " + std::to_string(v.allocated) + " bytes");
    ++replayed;
  }
  EXPECT_GE(replayed, 6) << "seed corpus went missing from " << dir;
}

TEST(DecodeFuzz, Broker) { fuzz_family(kFamilies[0]); }
TEST(DecodeFuzz, Ras) { fuzz_family(kFamilies[1]); }
TEST(DecodeFuzz, Q931) { fuzz_family(kFamilies[2]); }
TEST(DecodeFuzz, H245) { fuzz_family(kFamilies[3]); }
TEST(DecodeFuzz, Rtp) { fuzz_family(kFamilies[4]); }
TEST(DecodeFuzz, Rtcp) { fuzz_family(kFamilies[5]); }
TEST(DecodeFuzz, Sip) { fuzz_family(kFamilies[6]); }
TEST(DecodeFuzz, Sdp) { fuzz_family(kFamilies[7]); }
TEST(DecodeFuzz, Rtsp) { fuzz_family(kFamilies[8]); }
TEST(DecodeFuzz, Xgsp) { fuzz_family(kFamilies[9]); }
TEST(DecodeFuzz, Http) { fuzz_family(kFamilies[10]); }

}  // namespace
