// Tests for the discrete-event simulator: event loop, service centers,
// network hosts / NIC queueing / paths / multicast.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/service_center.hpp"

namespace gmmcs::sim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime{30}, [&] { order.push_back(3); });
  loop.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  loop.schedule_at(SimTime{20}, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().ns(), 30);
}

TEST(EventLoop, EqualTimesRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(SimTime{100}, [&, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesNow) {
  EventLoop loop;
  SimTime inner;
  loop.schedule_after(duration_ms(5), [&] {
    loop.schedule_after(duration_ms(7), [&] { inner = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(inner.ns(), duration_ms(12).ns());
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  TaskId id = loop.schedule_after(duration_ms(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(SimTime{10}, [&] { ++count; });
  loop.schedule_at(SimTime{20}, [&] { ++count; });
  loop.schedule_at(SimTime{30}, [&] { ++count; });
  loop.run_until(SimTime{20});
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now().ns(), 20);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilAdvancesTimeWithEmptyQueue) {
  EventLoop loop;
  loop.run_until(SimTime{500});
  EXPECT_EQ(loop.now().ns(), 500);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.schedule_at(SimTime{100}, [] {});
  loop.run();
  bool ran = false;
  loop.schedule_at(SimTime{50}, [&] { ran = true; });  // in the past
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now().ns(), 100);
}

TEST(PeriodicTask, TicksAtPeriod) {
  EventLoop loop;
  std::vector<std::int64_t> at;
  PeriodicTask task(loop, duration_ms(10), [&](std::uint64_t) { at.push_back(loop.now().ns()); });
  task.start();
  loop.run_until(SimTime{duration_ms(35).ns()});
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], duration_ms(10).ns());
  EXPECT_EQ(at[2], duration_ms(30).ns());
}

TEST(PeriodicTask, StopHalts) {
  EventLoop loop;
  int ticks = 0;
  PeriodicTask task(loop, duration_ms(1), [&](std::uint64_t t) {
    ++ticks;
    if (t == 4) task.stop();
  });
  task.start();
  loop.run();
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTask, TickIndexIncrements) {
  EventLoop loop;
  std::vector<std::uint64_t> idx;
  PeriodicTask task(loop, duration_ms(2), [&](std::uint64_t t) { idx.push_back(t); });
  task.start();
  loop.run_until(SimTime{duration_ms(7).ns()});
  EXPECT_EQ(idx, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(ServiceCenter, SingleServerSerializes) {
  EventLoop loop;
  ServiceCenter sc(loop, 1);
  std::vector<std::int64_t> done_at;
  for (int i = 0; i < 3; ++i) {
    sc.submit(duration_ms(10), [&] { done_at.push_back(loop.now().ns()); });
  }
  loop.run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], duration_ms(10).ns());
  EXPECT_EQ(done_at[1], duration_ms(20).ns());
  EXPECT_EQ(done_at[2], duration_ms(30).ns());
  EXPECT_EQ(sc.completed(), 3u);
}

TEST(ServiceCenter, ParallelServersOverlap) {
  EventLoop loop;
  ServiceCenter sc(loop, 2);
  std::vector<std::int64_t> done_at;
  for (int i = 0; i < 4; ++i) {
    sc.submit(duration_ms(10), [&] { done_at.push_back(loop.now().ns()); });
  }
  loop.run();
  ASSERT_EQ(done_at.size(), 4u);
  // Two at t=10, two at t=20.
  EXPECT_EQ(done_at[1], duration_ms(10).ns());
  EXPECT_EQ(done_at[3], duration_ms(20).ns());
}

TEST(ServiceCenter, QueueLimitRejects) {
  EventLoop loop;
  ServiceCenter sc(loop, 1, 2);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    sc.submit(duration_ms(1), [&] { ++completed; });
  }
  loop.run();
  EXPECT_EQ(completed, 3);  // 1 in service + 2 queued
  EXPECT_EQ(sc.rejected(), 2u);
}

TEST(ServiceCenter, MeanWaitAccounting) {
  EventLoop loop;
  ServiceCenter sc(loop, 1);
  // Jobs of 10ms each, submitted together: waits are 0, 10, 20 -> mean 10.
  for (int i = 0; i < 3; ++i) sc.submit(duration_ms(10), [] {});
  loop.run();
  EXPECT_EQ(sc.mean_wait().ms(), 10);
}

class NetworkTest : public ::testing::Test {
 protected:
  EventLoop loop;
  Network net{loop, 1234};
};

TEST_F(NetworkTest, DeliversWithLatencyAndSerialization) {
  Host& a = net.add_host("a", NicConfig{.egress_bps = 8e6, .overhead_bytes = 0});
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(), PathConfig{.latency = duration_ms(3)});
  SimTime arrival;
  b.bind(100, [&](const Datagram& d) {
    arrival = loop.now();
    EXPECT_EQ(d.payload.size(), 1000u);
    EXPECT_EQ(d.src.node, 0u);
  });
  a.send(Endpoint{b.id(), 100}, 50, Bytes(1000, 0xFF));
  loop.run();
  // 1000 bytes at 8 Mbps = 1ms serialization + 3ms latency.
  EXPECT_EQ(arrival.ns(), duration_ms(4).ns());
}

TEST_F(NetworkTest, NicQueueAddsDelayForBackToBackPackets) {
  Host& a = net.add_host("a", NicConfig{.egress_bps = 8e6, .overhead_bytes = 0});
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(), PathConfig{.latency = SimDuration{0}});
  std::vector<std::int64_t> arrivals;
  b.bind(1, [&](const Datagram&) { arrivals.push_back(loop.now().ns()); });
  for (int i = 0; i < 3; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0));
  loop.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], duration_ms(1).ns());
  EXPECT_EQ(arrivals[1], duration_ms(2).ns());
  EXPECT_EQ(arrivals[2], duration_ms(3).ns());
}

TEST_F(NetworkTest, DropTailWhenQueueFull) {
  Host& a = net.add_host("a", NicConfig{.egress_bps = 8e6, .queue_bytes = 2500,
                                        .overhead_bytes = 0});
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    if (a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0))) ++accepted;
  }
  loop.run();
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(a.nic_dropped(), 3u);
}

TEST_F(NetworkTest, QueueDrainsAndAcceptsAgain) {
  Host& a = net.add_host("a", NicConfig{.egress_bps = 8e6, .queue_bytes = 1000,
                                        .overhead_bytes = 0});
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0));
  loop.run();  // fully drains
  EXPECT_TRUE(a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0)));
  loop.run();
  EXPECT_EQ(received, 2);
}

TEST_F(NetworkTest, RandomLossDropsExpectedFraction) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(10), .loss = 0.3});
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(100, 0));
  loop.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.03);
}

TEST_F(NetworkTest, ReliableTrafficExemptFromLoss) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(10), .loss = 1.0});
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  for (int i = 0; i < 10; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(100, 0), /*reliable=*/true);
  loop.run();
  EXPECT_EQ(received, 10);
}

TEST_F(NetworkTest, UnboundPortDiscardsSilently) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  a.send(Endpoint{b.id(), 999}, 1, Bytes(10, 0));
  loop.run();  // no crash, nothing delivered
  SUCCEED();
}

TEST_F(NetworkTest, EphemeralPortsAreDistinct) {
  Host& a = net.add_host("a");
  auto p1 = a.bind_ephemeral([](const Datagram&) {});
  auto p2 = a.bind_ephemeral([](const Datagram&) {});
  EXPECT_NE(p1, p2);
  EXPECT_TRUE(a.is_bound(p1));
  a.unbind(p1);
  EXPECT_FALSE(a.is_bound(p1));
}

TEST_F(NetworkTest, DoubleBindThrows) {
  Host& a = net.add_host("a");
  a.bind(5, [](const Datagram&) {});
  EXPECT_THROW(a.bind(5, [](const Datagram&) {}), std::logic_error);
}

TEST_F(NetworkTest, MulticastFansOutToMembers) {
  Host& sender = net.add_host("s");
  Host& r1 = net.add_host("r1");
  Host& r2 = net.add_host("r2");
  GroupId g = net.create_group();
  int got1 = 0, got2 = 0;
  r1.bind(10, [&](const Datagram& d) {
    ++got1;
    EXPECT_EQ(d.group, g);
  });
  r2.bind(10, [&](const Datagram&) { ++got2; });
  net.join_group(g, Endpoint{r1.id(), 10});
  net.join_group(g, Endpoint{r2.id(), 10});
  sender.send_multicast(g, 99, Bytes(500, 1));
  loop.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  // One serialization at the sender regardless of fan-out.
  EXPECT_EQ(sender.nic_sent(), 1u);
}

TEST_F(NetworkTest, MulticastSkipsSelfAndLeavers) {
  Host& s = net.add_host("s");
  Host& r = net.add_host("r");
  GroupId g = net.create_group();
  int self_got = 0, r_got = 0;
  s.bind(7, [&](const Datagram&) { ++self_got; });
  r.bind(7, [&](const Datagram&) { ++r_got; });
  net.join_group(g, Endpoint{s.id(), 7});
  net.join_group(g, Endpoint{r.id(), 7});
  s.send_multicast(g, 7, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(self_got, 0);
  EXPECT_EQ(r_got, 1);
  net.leave_group(g, Endpoint{r.id(), 7});
  s.send_multicast(g, 7, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(r_got, 1);
}

TEST_F(NetworkTest, DownHostDropsTraffic) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  b.set_up(false);
  a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(received, 0);
  b.set_up(true);
  a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, DefaultPathApplies) {
  net.set_default_path(PathConfig{.latency = duration_ms(50)});
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  SimTime arrival;
  b.bind(1, [&](const Datagram&) { arrival = loop.now(); });
  a.send(Endpoint{b.id(), 1}, 2, Bytes(1, 0));
  loop.run();
  EXPECT_GE((arrival - SimTime::zero()).ms(), 50);
}

TEST_F(NetworkTest, GilbertLossMatchesStationaryRate) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(),
               PathConfig{.latency = duration_us(10), .loss = 0.2, .burst_length = 5.0});
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
  loop.run();
  // Correlated losses, but the long-run rate matches the configured 20%.
  EXPECT_NEAR(static_cast<double>(n - received) / n, 0.2, 0.02);
}

TEST_F(NetworkTest, GilbertLossesComeInBursts) {
  auto mean_burst = [&](double burst_cfg, std::uint64_t seed) {
    EventLoop loop2;
    Network net2(loop2, seed);
    Host& a = net2.add_host("a");
    Host& b = net2.add_host("b");
    net2.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(10), .loss = 0.2,
                                             .burst_length = burst_cfg});
    // Sequence-stamped packets reveal loss runs at the receiver.
    std::vector<int> got;
    b.bind(1, [&](const Datagram& d) {
      ByteReader r(d.payload);
      got.push_back(static_cast<int>(r.u32()));
    });
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      ByteWriter w;
      w.u32(static_cast<std::uint32_t>(i));
      a.send(Endpoint{b.id(), 1}, 2, w.take());
    }
    loop2.run();
    // Mean length of gaps in the received sequence.
    double bursts = 0, lost = 0;
    for (std::size_t i = 1; i < got.size(); ++i) {
      int gap = got[i] - got[i - 1] - 1;
      if (gap > 0) {
        bursts += 1;
        lost += gap;
      }
    }
    return bursts > 0 ? lost / bursts : 0.0;
  };
  double bernoulli = mean_burst(1.0, 5);
  double gilbert = mean_burst(8.0, 5);
  EXPECT_LT(bernoulli, 1.6);           // independent: mostly isolated drops
  EXPECT_GT(gilbert, bernoulli * 3.0);  // correlated: long runs
  EXPECT_NEAR(gilbert, 8.0, 3.0);
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    EventLoop loop2;
    Network net2(loop2, seed);
    Host& a = net2.add_host("a");
    Host& b = net2.add_host("b");
    net2.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(100), .loss = 0.5});
    int received = 0;
    b.bind(1, [&](const Datagram&) { ++received; });
    for (int i = 0; i < 100; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
    loop2.run();
    return received;
  };
  EXPECT_EQ(run_once(77), run_once(77));
}

TEST_F(NetworkTest, DownedHostDropsQueuedEgress) {
  // Crash semantics: bytes still sitting in the NIC queue at power-off
  // must never reach the wire. 1000 bytes at 1 Mbps = 8 ms serialization
  // each, so of 5 back-to-back sends only the two that departed before
  // the 20 ms crash may arrive.
  Host& a = net.add_host("a", NicConfig{.egress_bps = 1e6, .overhead_bytes = 0});
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(10)});
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  for (int i = 0; i < 5; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0));
  loop.schedule_at(SimTime{duration_ms(20).ns()}, [&] { a.set_up(false); });
  loop.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(net.lost(), 3u);
}

TEST_F(NetworkTest, RestartedHostStartsWithEmptyNicQueue) {
  Host& a = net.add_host("a", NicConfig{.egress_bps = 1e6, .overhead_bytes = 0});
  Host& b = net.add_host("b");
  net.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(10)});
  std::vector<std::int64_t> arrivals;
  b.bind(1, [&](const Datagram&) { arrivals.push_back(loop.now().ns()); });
  for (int i = 0; i < 5; ++i) a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0));
  loop.schedule_at(SimTime{duration_ms(1).ns()}, [&] { a.set_up(false); });
  loop.schedule_at(SimTime{duration_ms(50).ns()}, [&] {
    a.set_up(true);
    // The pre-crash queue was wiped, so this send serializes immediately
    // (8 ms) instead of behind 5 queued packets.
    a.send(Endpoint{b.id(), 1}, 2, Bytes(1000, 0));
  });
  loop.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], duration_ms(58).ns() + duration_us(10).ns());
}

TEST_F(NetworkTest, BindWhileDownThrows) {
  Host& a = net.add_host("a");
  a.set_up(false);
  EXPECT_THROW(a.bind(5, [](const Datagram&) {}), std::logic_error);
  a.set_up(true);
  EXPECT_NO_THROW(a.bind(5, [](const Datagram&) {}));
}

TEST_F(NetworkTest, AdministrativeLinkDownBlocksBothDirections) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int at_a = 0, at_b = 0;
  a.bind(1, [&](const Datagram&) { ++at_a; });
  b.bind(1, [&](const Datagram&) { ++at_b; });
  net.set_link_up(a.id(), b.id(), false);
  EXPECT_FALSE(net.link_up(a.id(), b.id()));
  EXPECT_FALSE(net.link_up(b.id(), a.id()));
  a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
  b.send(Endpoint{a.id(), 1}, 2, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(at_a, 0);
  EXPECT_EQ(at_b, 0);
  net.set_link_up(a.id(), b.id(), true);
  a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
  b.send(Endpoint{a.id(), 1}, 2, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(at_a, 1);
  EXPECT_EQ(at_b, 1);
}

TEST_F(NetworkTest, FaultPlanSchedulesCrashWindow) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  FaultPlan plan;
  plan.crash_host(b.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(20).ns()});
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.active_at(SimTime{duration_ms(15).ns()}));
  EXPECT_FALSE(plan.active_at(SimTime{duration_ms(25).ns()}));
  plan.install(net);
  // One packet before, one during, one after the outage window.
  for (std::int64_t ms : {5, 15, 25}) {
    loop.schedule_at(SimTime{duration_ms(ms).ns()},
                     [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  }
  loop.run();
  EXPECT_EQ(received, 2);
}

TEST_F(NetworkTest, FaultPlanPartitionBlocksCrossTraffic) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  Host& c = net.add_host("c");
  int at_b = 0, at_c = 0;
  b.bind(1, [&](const Datagram&) { ++at_b; });
  c.bind(1, [&](const Datagram&) { ++at_c; });
  FaultPlan plan;
  plan.partition({a.id()}, {b.id(), c.id()}, SimTime{duration_ms(10).ns()},
                 SimTime{duration_ms(20).ns()});
  plan.install(net);
  auto send_both = [&] {
    a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));
    b.send(Endpoint{c.id(), 1}, 2, Bytes(10, 0));  // same side: unaffected
  };
  loop.schedule_at(SimTime{duration_ms(15).ns()}, send_both);
  loop.schedule_at(SimTime{duration_ms(25).ns()}, send_both);
  loop.run();
  EXPECT_EQ(at_b, 1);  // only the post-heal cross-partition packet
  EXPECT_EQ(at_c, 2);  // intra-side traffic flows throughout
}

TEST_F(NetworkTest, FaultPlanOverlappingCrashesRestoreAtLatestUntil) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  FaultPlan plan;
  // [10, 30) and [20, 50) overlap: the host must stay down until 50 even
  // though the first window's restore fires at 30.
  plan.crash_host(b.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(30).ns()})
      .crash_host(b.id(), SimTime{duration_ms(20).ns()}, SimTime{duration_ms(50).ns()});
  plan.install(net);
  for (std::int64_t ms : {5, 25, 35, 45, 55}) {
    loop.schedule_at(SimTime{duration_ms(ms).ns()},
                     [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  }
  loop.run();
  EXPECT_EQ(received, 2);  // only the 5ms and 55ms packets
}

TEST_F(NetworkTest, FaultPlanPermanentCrashPinsHostDown) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  FaultPlan plan;
  // A temporary crash overlapping a permanent one must not revive the
  // host when its own window ends.
  plan.crash_host(b.id(), SimTime{duration_ms(10).ns()})
      .crash_host(b.id(), SimTime{duration_ms(20).ns()}, SimTime{duration_ms(30).ns()});
  plan.install(net);
  for (std::int64_t ms : {5, 35, 100}) {
    loop.schedule_at(SimTime{duration_ms(ms).ns()},
                     [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  }
  loop.run();
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(net.host(b.id()).up());
}

TEST_F(NetworkTest, FaultPlanFlapInsidePartitionStaysCut) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  FaultPlan plan;
  // The flap's restore at 20 lands inside the partition window; the pair
  // reconnects only when the partition heals at 40.
  plan.flap_link(a.id(), b.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(20).ns()})
      .partition({a.id()}, {b.id()}, SimTime{duration_ms(15).ns()},
                 SimTime{duration_ms(40).ns()});
  plan.install(net);
  for (std::int64_t ms : {5, 25, 35, 45}) {
    loop.schedule_at(SimTime{duration_ms(ms).ns()},
                     [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  }
  loop.run();
  EXPECT_EQ(received, 2);  // 5ms and 45ms
}

TEST_F(NetworkTest, FaultPlanOverlappingBurstsRestoreOriginalPath) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  const PathConfig base{.latency = duration_us(10), .loss = 0.0};
  net.set_path(a.id(), b.id(), base);
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  FaultPlan plan;
  // Two total-loss bursts, [10, 30) and [20, 50): traffic is dark for the
  // whole union and the base (lossless) model reappears only at 50.
  plan.loss_burst(a.id(), b.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(30).ns()},
                  1.0)
      .loss_burst(a.id(), b.id(), SimTime{duration_ms(20).ns()}, SimTime{duration_ms(50).ns()},
                  1.0);
  plan.install(net);
  for (std::int64_t ms : {5, 25, 35, 45, 55, 60}) {
    loop.schedule_at(SimTime{duration_ms(ms).ns()},
                     [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  }
  loop.run();
  EXPECT_EQ(received, 3);  // 5ms, then 55ms and 60ms after full restore
  EXPECT_EQ(net.path(a.id(), b.id()).loss, base.loss);
}

TEST_F(NetworkTest, FaultPlanOneWayCutIsDirectional) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int at_a = 0, at_b = 0;
  a.bind(1, [&](const Datagram&) { ++at_a; });
  b.bind(1, [&](const Datagram&) { ++at_b; });
  FaultPlan plan;
  plan.cut_oneway(a.id(), b.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(30).ns()});
  plan.install(net);
  auto send_both = [&] {
    a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0), /*reliable=*/true);
    b.send(Endpoint{a.id(), 1}, 2, Bytes(10, 0), /*reliable=*/true);
  };
  loop.schedule_at(SimTime{duration_ms(20).ns()}, send_both);
  loop.schedule_at(SimTime{duration_ms(35).ns()}, send_both);
  loop.run();
  // During the cut only a -> b is dark (even for reliable traffic); the
  // reverse direction keeps flowing, and both work after restore.
  EXPECT_EQ(at_b, 1);
  EXPECT_EQ(at_a, 2);
}

TEST_F(NetworkTest, FaultPlanGrayHostDropsBestEffortEgressOnly) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int at_a = 0, at_b = 0;
  a.bind(1, [&](const Datagram&) { ++at_a; });
  b.bind(1, [&](const Datagram&) { ++at_b; });
  FaultPlan plan;
  plan.gray_host(a.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(30).ns()}, 1.0);
  plan.install(net);
  loop.schedule_at(SimTime{duration_ms(20).ns()}, [&] {
    a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0));                    // dropped (gray egress)
    a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0), /*reliable=*/true); // control survives
    b.send(Endpoint{a.id(), 1}, 2, Bytes(10, 0));                    // ingress unaffected
  });
  loop.schedule_at(SimTime{duration_ms(35).ns()},
                   [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  loop.run();
  EXPECT_EQ(at_b, 2);  // the reliable packet and the post-restore one
  EXPECT_EQ(at_a, 1);
}

TEST_F(NetworkTest, FaultPlanStackedGrayDegradesRestoreCleanly) {
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const Datagram&) { ++received; });
  FaultPlan plan;
  // Overlapping gray windows [10, 30) and [20, 50): egress stays dark for
  // the union; a clean host reappears only after the last one pops.
  plan.gray_host(a.id(), SimTime{duration_ms(10).ns()}, SimTime{duration_ms(30).ns()}, 1.0)
      .gray_host(a.id(), SimTime{duration_ms(20).ns()}, SimTime{duration_ms(50).ns()}, 1.0);
  plan.install(net);
  for (std::int64_t ms : {5, 25, 35, 45, 55}) {
    loop.schedule_at(SimTime{duration_ms(ms).ns()},
                     [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
  }
  loop.run();
  EXPECT_EQ(received, 2);  // 5ms and 55ms
}

TEST_F(NetworkTest, FaultPlanDeterministicAcrossRuns) {
  // The same seed with the same fault plan (crash + flap + loss burst)
  // must reproduce delivery exactly.
  auto run_once = [](std::uint64_t seed) {
    EventLoop loop2;
    Network net2{loop2, seed};
    Host& a = net2.add_host("a");
    Host& b = net2.add_host("b");
    net2.set_path(a.id(), b.id(), PathConfig{.latency = duration_us(100), .loss = 0.1});
    FaultPlan plan;
    plan.crash_host(b.id(), SimTime{duration_ms(40).ns()}, SimTime{duration_ms(60).ns()})
        .flap_link(a.id(), b.id(), SimTime{duration_ms(100).ns()},
                   SimTime{duration_ms(120).ns()})
        .loss_burst(a.id(), b.id(), SimTime{duration_ms(150).ns()},
                    SimTime{duration_ms(170).ns()}, 0.8);
    plan.install(net2);
    int received = 0;
    b.bind(1, [&](const Datagram&) { ++received; });
    for (int i = 0; i < 200; ++i) {
      loop2.schedule_at(SimTime{duration_ms(i).ns()},
                        [&] { a.send(Endpoint{b.id(), 1}, 2, Bytes(10, 0)); });
    }
    loop2.run();
    return received;
  };
  int first = run_once(99);
  EXPECT_EQ(first, run_once(99));
  EXPECT_LT(first, 200);  // the plan really dropped something
}

}  // namespace
}  // namespace gmmcs::sim
