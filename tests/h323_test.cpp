// Tests for the H.323 stack: RAS/Q.931/H.245 codecs, gatekeeper
// registration/admission/bandwidth, full terminal->gateway call flow with
// RTP bridged onto broker topics.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "h323/gatekeeper.hpp"
#include "h323/gateway.hpp"
#include "h323/messages.hpp"
#include "h323/terminal.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::h323 {
namespace {

TEST(H323Codec, RasRoundTrip) {
  RasMessage m;
  m.type = RasType::kAdmissionConfirm;
  m.seq = 42;
  m.endpoint_alias = "polycom-1";
  m.gatekeeper_id = "gmmcs-zone";
  m.call_signal_address = {7, 1720};
  m.bandwidth = 6000;
  m.destination_alias = "conf-3";
  auto r = RasMessage::decode(m.encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, RasType::kAdmissionConfirm);
  EXPECT_EQ(r.value().seq, 42u);
  EXPECT_EQ(r.value().call_signal_address.port, 1720);
  EXPECT_EQ(r.value().bandwidth, 6000u);
  EXPECT_EQ(r.value().destination_alias, "conf-3");
}

TEST(H323Codec, Q931RoundTrip) {
  Q931Message m;
  m.type = Q931Type::kConnect;
  m.call_reference = 9;
  m.calling_party = "terminal-a";
  m.called_party = "conf-12";
  m.h245_address = {3, 20001};
  auto r = Q931Message::decode(m.encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, Q931Type::kConnect);
  EXPECT_EQ(r.value().h245_address.node, 3u);
  EXPECT_EQ(r.value().called_party, "conf-12");
}

TEST(H323Codec, H245RoundTrip) {
  H245Message m;
  m.type = H245Type::kOpenLogicalChannel;
  m.seq = 5;
  m.capabilities = {0, 31};
  m.channel = 2;
  m.media_kind = "video";
  m.payload_type = 31;
  m.media_address = {4, 5004};
  auto r = H245Message::decode(m.encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, H245Type::kOpenLogicalChannel);
  EXPECT_EQ(r.value().capabilities, (std::vector<std::uint8_t>{0, 31}));
  EXPECT_EQ(r.value().media_kind, "video");
  EXPECT_EQ(r.value().media_address.port, 5004);
}

TEST(H323Codec, RejectsForeignAndTruncated) {
  EXPECT_FALSE(RasMessage::decode(Bytes{0x00, 0x01}).ok());
  EXPECT_FALSE(Q931Message::decode(Bytes{0x52, 0x05}).ok());
  RasMessage m;
  Bytes wire = m.encode();
  wire.resize(4);
  EXPECT_FALSE(RasMessage::decode(wire).ok());
}

class H323Test : public ::testing::Test {
 protected:
  H323Test()
      : gk(net.add_host("gatekeeper")),
        broker_node(net.add_host("broker"), 0),
        sessions(net.add_host("xgsp"), broker_node.stream_endpoint()),
        gateway(net.add_host("gateway"), sessions, broker_node.stream_endpoint()) {
    gk.set_conference_target(gateway.call_signal_endpoint());
  }

  std::string make_session(const std::string& kind = "video", const std::string& codec = "H261") {
    xgsp::Message created = sessions.handle(xgsp::Message::create_session(
        "h323-conf", "gcf", xgsp::SessionMode::kAdHoc, {{kind, codec}}));
    return created.sessions.front().id();
  }

  sim::EventLoop loop;
  sim::Network net{loop, 41};
  Gatekeeper gk;
  broker::BrokerNode broker_node;
  xgsp::SessionServer sessions;
  H323Gateway gateway;
};

TEST_F(H323Test, DiscoveryAndRegistration) {
  H323Terminal term(net.add_host("term"), "polycom-1", gk.ras_endpoint());
  bool discovered = false, registered = false;
  term.discover([&](bool ok) { discovered = ok; });
  loop.run();
  EXPECT_TRUE(discovered);
  term.register_endpoint([&](bool ok) { registered = ok; });
  loop.run();
  EXPECT_TRUE(registered);
  EXPECT_EQ(gk.registrations(), 1u);
  EXPECT_TRUE(gk.resolve("polycom-1").has_value());
}

TEST_F(H323Test, AdmissionRequiresRegistration) {
  H323Terminal term(net.add_host("term"), "rogue", gk.ras_endpoint());
  bool ok = true;
  term.call("conf-1", 1000, {}, [&](bool r, const H323Terminal::MediaTargets&) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(term.last_reject_reason(), "caller not registered");
}

TEST_F(H323Test, BandwidthBudgetEnforced) {
  Gatekeeper::Config cfg;
  cfg.bandwidth_budget = 5000;  // 500 kbps zone
  Gatekeeper small_gk(net.add_host("gk2"), cfg);
  small_gk.set_conference_target(gateway.call_signal_endpoint());
  std::string sid = make_session();
  H323Terminal t1(net.add_host("t1"), "t1", small_gk.ras_endpoint());
  H323Terminal t2(net.add_host("t2"), "t2", small_gk.ras_endpoint());
  t1.register_endpoint([](bool) {});
  t2.register_endpoint([](bool) {});
  loop.run();
  bool ok1 = false, ok2 = true;
  sim::Host& t1h = net.add_host("t1-media");
  transport::DatagramSocket rtp1(t1h);
  t1.call("conf-" + sid, 4000, {{"video", 31, rtp1.local()}},
          [&](bool r, const H323Terminal::MediaTargets&) { ok1 = r; });
  loop.run();
  EXPECT_TRUE(ok1);
  EXPECT_EQ(small_gk.bandwidth_in_use(), 4000u);
  t2.call("conf-" + sid, 4000, {}, [&](bool r, const H323Terminal::MediaTargets&) { ok2 = r; });
  loop.run();
  EXPECT_FALSE(ok2);
  EXPECT_EQ(t2.last_reject_reason(), "zone bandwidth exhausted");
  // Disengage releases the budget.
  bool hung = false;
  t1.hangup([&](bool r) { hung = r; });
  loop.run();
  EXPECT_TRUE(hung);
  EXPECT_EQ(small_gk.bandwidth_in_use(), 0u);
}

TEST_F(H323Test, FullCallBridgesMediaToBrokerTopic) {
  std::string sid = make_session();
  std::string topic = sessions.find(sid)->stream("video")->topic;

  // A broker-native observer of the session's video topic.
  broker::BrokerClient native(net.add_host("native"), broker_node.stream_endpoint());
  native.subscribe(topic);
  media::MediaProbe native_probe(90000);
  native.on_event([&](const broker::Event& ev) { native_probe.on_wire(ev.payload, loop.now()); });

  // H.323 terminal with an RTP session for video.
  sim::Host& th = net.add_host("terminal");
  H323Terminal term(th, "polycom-1", gk.ras_endpoint());
  rtp::RtpSession term_rtp(th, {.ssrc = 77, .payload_type = 31});
  term.register_endpoint([](bool) {});
  loop.run();
  bool ok = false;
  H323Terminal::MediaTargets targets;
  term.call("conf-" + sid, 6000, {{"video", 31, term_rtp.local()}},
            [&](bool r, const H323Terminal::MediaTargets& t) {
              ok = r;
              targets = t;
            });
  loop.run();
  ASSERT_TRUE(ok);
  ASSERT_TRUE(targets.contains("video"));
  EXPECT_EQ(gateway.active_calls(), 1u);
  EXPECT_TRUE(sessions.find(sid)->has_member("polycom-1"));

  // Terminal -> gateway -> topic -> native observer.
  term_rtp.add_destination(targets.at("video"));
  for (int i = 0; i < 4; ++i) term_rtp.send_media(Bytes(300, 1), 100 * i);
  loop.run();
  EXPECT_EQ(native_probe.stats().received(), 4u);

  // Native publisher -> topic -> gateway proxy -> terminal RTP.
  rtp::RtpPacket pkt;
  pkt.ssrc = 1234;
  pkt.payload_type = 31;
  pkt.payload = Bytes(100, 3);
  native.publish(topic, pkt.serialize());
  loop.run();
  EXPECT_EQ(term_rtp.source_stats(1234).received(), 1u);

  // Hangup tears everything down.
  bool hung = false;
  term.hangup([&](bool r) { hung = r; });
  loop.run();
  EXPECT_TRUE(hung);
  EXPECT_EQ(gateway.active_calls(), 0u);
  EXPECT_FALSE(sessions.find(sid)->has_member("polycom-1"));
  native.publish(topic, pkt.serialize());
  loop.run();
  EXPECT_EQ(term_rtp.source_stats(1234).received(), 1u);  // no longer fanned out
}

TEST_F(H323Test, CallToUnknownConferenceReleases) {
  H323Terminal term(net.add_host("term"), "t", gk.ras_endpoint());
  term.register_endpoint([](bool) {});
  loop.run();
  bool ok = true;
  term.call("conf-999", 1000, {}, [&](bool r, const H323Terminal::MediaTargets&) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(term.last_reject_reason(), "no such conference");
  EXPECT_EQ(gateway.active_calls(), 0u);
}

TEST_F(H323Test, OlcForMissingStreamRejected) {
  std::string sid = make_session("audio", "PCMU");  // session has audio only
  H323Terminal term(net.add_host("term"), "t", gk.ras_endpoint());
  term.register_endpoint([](bool) {});
  loop.run();
  sim::Host& mh = net.add_host("m");
  transport::DatagramSocket rtp(mh);
  bool ok = true;
  term.call("conf-" + sid, 1000, {{"video", 31, rtp.local()}},
            [&](bool r, const H323Terminal::MediaTargets&) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(term.last_reject_reason(), "no such media stream in session");
}

TEST_F(H323Test, TwoTerminalsShareOneBridge) {
  std::string sid = make_session();
  sim::Host& h1 = net.add_host("t1h");
  sim::Host& h2 = net.add_host("t2h");
  H323Terminal t1(h1, "t1", gk.ras_endpoint());
  H323Terminal t2(h2, "t2", gk.ras_endpoint());
  rtp::RtpSession rtp1(h1, {.ssrc = 1, .payload_type = 31});
  rtp::RtpSession rtp2(h2, {.ssrc = 2, .payload_type = 31});
  t1.register_endpoint([](bool) {});
  t2.register_endpoint([](bool) {});
  loop.run();
  H323Terminal::MediaTargets tg1, tg2;
  t1.call("conf-" + sid, 1000, {{"video", 31, rtp1.local()}},
          [&](bool, const H323Terminal::MediaTargets& t) { tg1 = t; });
  t2.call("conf-" + sid, 1000, {{"video", 31, rtp2.local()}},
          [&](bool, const H323Terminal::MediaTargets& t) { tg2 = t; });
  loop.run();
  ASSERT_TRUE(tg1.contains("video"));
  ASSERT_TRUE(tg2.contains("video"));
  // Both point at the same shared per-session proxy ingress.
  EXPECT_EQ(tg1.at("video"), tg2.at("video"));
  // t1's media reaches t2 through the topic (and not itself).
  rtp1.add_destination(tg1.at("video"));
  rtp1.send_media(Bytes(100, 1), 0);
  loop.run();
  EXPECT_EQ(rtp2.source_stats(1).received(), 1u);
}

}  // namespace
}  // namespace gmmcs::h323
