// Tests for the RTP/RTCP stack: wire formats, receiver statistics
// (sequence tracking, RFC 3550 jitter), sessions over the simulator.
#include <gtest/gtest.h>

#include "rtp/packet.hpp"
#include "rtp/receiver_stats.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace gmmcs::rtp {
namespace {

TEST(RtpPacket, SerializeParseRoundTrip) {
  RtpPacket p;
  p.marker = true;
  p.payload_type = 96;
  p.sequence = 0xBEEF;
  p.timestamp = 0x12345678;
  p.ssrc = 0xCAFEBABE;
  p.csrcs = {1, 2, 3};
  p.payload = to_bytes("frame-data");
  auto r = RtpPacket::parse(p.serialize());
  ASSERT_TRUE(r.ok());
  const RtpPacket& q = r.value();
  EXPECT_TRUE(q.marker);
  EXPECT_EQ(q.payload_type, 96);
  EXPECT_EQ(q.sequence, 0xBEEF);
  EXPECT_EQ(q.timestamp, 0x12345678u);
  EXPECT_EQ(q.ssrc, 0xCAFEBABEu);
  EXPECT_EQ(q.csrcs, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(to_string(std::span<const std::uint8_t>(q.payload)), "frame-data");
}

TEST(RtpPacket, HeaderLayout) {
  RtpPacket p;
  p.payload_type = 31;
  Bytes wire = p.serialize();
  ASSERT_EQ(wire.size(), kRtpHeaderSize);
  EXPECT_EQ(wire[0] >> 6, 2);        // version
  EXPECT_EQ(wire[1] & 0x7F, 31);     // payload type
  EXPECT_EQ(wire[1] & 0x80, 0);      // no marker
}

TEST(RtpPacket, RejectsShortAndBadVersion) {
  EXPECT_FALSE(RtpPacket::parse(Bytes{1, 2, 3}).ok());
  RtpPacket p;
  Bytes wire = p.serialize();
  wire[0] = 0x00;  // version 0
  EXPECT_FALSE(RtpPacket::parse(std::move(wire)).ok());
}

TEST(RtpPacket, RejectsTruncatedCsrcList) {
  RtpPacket p;
  p.csrcs = {7, 8};
  Bytes wire = p.serialize();
  wire.resize(kRtpHeaderSize + 4);  // cut the second CSRC
  EXPECT_FALSE(RtpPacket::parse(std::move(wire)).ok());
}

TEST(Rtcp, SenderReportRoundTrip) {
  SenderReport sr;
  sr.ssrc = 42;
  sr.ntp_timestamp = 0xAABBCCDDEEFF0011ull;
  sr.rtp_timestamp = 90000;
  sr.packet_count = 1000;
  sr.octet_count = 800000;
  ReportBlock b;
  b.ssrc = 7;
  b.fraction_lost = 25;
  b.cumulative_lost = 0x012345;
  b.highest_seq = 0x00010002;
  b.jitter = 117;
  sr.blocks.push_back(b);
  auto r = parse_rtcp(serialize(sr));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, kRtcpSenderReport);
  EXPECT_EQ(r.value().sr.ssrc, 42u);
  EXPECT_EQ(r.value().sr.ntp_timestamp, 0xAABBCCDDEEFF0011ull);
  ASSERT_EQ(r.value().sr.blocks.size(), 1u);
  EXPECT_EQ(r.value().sr.blocks[0].cumulative_lost, 0x012345u);
  EXPECT_EQ(r.value().sr.blocks[0].jitter, 117u);
}

TEST(Rtcp, ReceiverReportRoundTrip) {
  ReceiverReport rr;
  rr.ssrc = 9;
  for (std::uint32_t i = 0; i < 3; ++i) {
    ReportBlock b;
    b.ssrc = i;
    b.fraction_lost = static_cast<std::uint8_t>(i * 10);
    rr.blocks.push_back(b);
  }
  auto r = parse_rtcp(serialize(rr));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, kRtcpReceiverReport);
  ASSERT_EQ(r.value().rr.blocks.size(), 3u);
  EXPECT_EQ(r.value().rr.blocks[2].fraction_lost, 20);
}

TEST(Rtcp, ByeRoundTripAndClassifier) {
  Bytes bye = serialize(Bye{77});
  EXPECT_TRUE(looks_like_rtcp(bye));
  auto r = parse_rtcp(bye);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().bye.ssrc, 77u);
  RtpPacket media;
  media.payload_type = 96;
  EXPECT_FALSE(looks_like_rtcp(media.serialize()));
}

TEST(Rtcp, FractionLostRatio) {
  ReportBlock b;
  b.fraction_lost = 128;
  EXPECT_DOUBLE_EQ(b.fraction_lost_ratio(), 0.5);
}

class ReceiverStatsTest : public ::testing::Test {
 protected:
  static RtpPacket packet(std::uint16_t seq, std::uint32_t ts) {
    RtpPacket p;
    p.sequence = seq;
    p.timestamp = ts;
    p.ssrc = 1;
    return p;
  }
};

TEST_F(ReceiverStatsTest, CountsInOrderPackets) {
  ReceiverStats s(90000);
  for (std::uint16_t i = 0; i < 10; ++i) {
    s.on_packet(packet(i, i * 3600), SimTime{i * 1000}, SimTime{i * 1000});
  }
  EXPECT_EQ(s.received(), 10u);
  EXPECT_EQ(s.expected(), 10u);
  EXPECT_EQ(s.cumulative_lost(), 0);
  EXPECT_EQ(s.loss_ratio(), 0.0);
}

TEST_F(ReceiverStatsTest, DetectsLoss) {
  ReceiverStats s(90000);
  for (std::uint16_t i = 0; i < 10; ++i) {
    if (i % 2 == 0) s.on_packet(packet(i, i * 3600), SimTime{0}, SimTime{0});
  }
  // seq 0..8 received evens: expected = 9 (0..8), received 5.
  EXPECT_EQ(s.expected(), 9u);
  EXPECT_EQ(s.cumulative_lost(), 4);
}

TEST_F(ReceiverStatsTest, HandlesSequenceWrap) {
  ReceiverStats s(90000);
  std::uint16_t seq = 0xFFFE;
  for (int i = 0; i < 6; ++i) {
    s.on_packet(packet(seq, 0), SimTime{0}, SimTime{0});
    ++seq;
  }
  EXPECT_EQ(s.received(), 6u);
  EXPECT_EQ(s.expected(), 6u);
  EXPECT_EQ(s.extended_highest_seq(), 0x10003u);
}

TEST_F(ReceiverStatsTest, CountsReorderAndDuplicates) {
  ReceiverStats s(90000);
  s.on_packet(packet(10, 0), SimTime{0}, SimTime{0});
  s.on_packet(packet(12, 0), SimTime{0}, SimTime{0});
  s.on_packet(packet(11, 0), SimTime{0}, SimTime{0});  // late
  s.on_packet(packet(12, 0), SimTime{0}, SimTime{0});  // dup
  EXPECT_EQ(s.out_of_order(), 1u);
  EXPECT_EQ(s.duplicates(), 1u);
}

TEST_F(ReceiverStatsTest, ZeroJitterForPerfectSpacing) {
  ReceiverStats s(90000);
  // Arrival spacing exactly matches timestamp spacing -> J stays 0.
  for (std::uint16_t i = 0; i < 50; ++i) {
    auto t = SimTime{static_cast<std::int64_t>(i) * 40'000'000};  // 40ms
    s.on_packet(packet(i, i * 3600), t, t);                        // 3600 = 40ms @90kHz
  }
  EXPECT_EQ(s.jitter_timestamp_units(), 0u);
  EXPECT_NEAR(s.jitter_ms(), 0.0, 1e-9);
}

TEST_F(ReceiverStatsTest, JitterConvergesTowardSpacingVariation) {
  ReceiverStats s(90000);
  // Timestamps advance 40ms but arrivals alternate 30ms/50ms: |D| = 10ms
  // every packet, so the RFC filter converges to ~10ms.
  SimTime arrival{0};
  for (std::uint16_t i = 0; i < 500; ++i) {
    s.on_packet(packet(i, i * 3600), arrival, arrival);
    arrival += duration_ms(i % 2 == 0 ? 30 : 50);
  }
  EXPECT_NEAR(s.jitter_ms(), 10.0, 1.0);
}

TEST_F(ReceiverStatsTest, DelayStatsFromSendStamps) {
  ReceiverStats s(90000);
  for (std::uint16_t i = 0; i < 10; ++i) {
    SimTime sent{static_cast<std::int64_t>(i) * 1'000'000};
    s.on_packet(packet(i, i * 3600), sent + duration_ms(25), sent);
  }
  EXPECT_NEAR(s.delay_ms().mean(), 25.0, 1e-9);
  EXPECT_EQ(s.delay_ms().count(), 10u);
}

TEST_F(ReceiverStatsTest, FractionLostInterval) {
  ReceiverStats s(90000);
  // First interval: 4 of 8 received.
  for (std::uint16_t i = 0; i < 8; i += 2) s.on_packet(packet(i, 0), SimTime{0}, SimTime{0});
  std::uint8_t f1 = s.fraction_lost_since_last();
  EXPECT_NEAR(f1 / 256.0, 3.0 / 7.0, 0.01);  // expected 0..6 = 7, received 4
  // Second interval: everything received.
  for (std::uint16_t i = 7; i < 15; ++i) s.on_packet(packet(i, 0), SimTime{0}, SimTime{0});
  std::uint8_t f2 = s.fraction_lost_since_last();
  EXPECT_EQ(f2, 0);
}

TEST_F(ReceiverStatsTest, SeriesRecordingIsOptIn) {
  ReceiverStats s(90000);
  s.on_packet(packet(0, 0), SimTime{0}, SimTime{0});
  EXPECT_TRUE(s.delay_series().points().empty());
  s.enable_series(true);
  s.on_packet(packet(1, 3600), SimTime{0}, SimTime{0});
  EXPECT_EQ(s.delay_series().points().size(), 1u);
  EXPECT_EQ(s.jitter_series().points().size(), 1u);
}

class RtpSessionTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 5};
};

TEST_F(RtpSessionTest, MediaFlowsBetweenSessions) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  RtpSession tx(a, {.ssrc = 100, .payload_type = 96, .clock_rate = 90000});
  RtpSession rx(b, {.ssrc = 200, .payload_type = 96, .clock_rate = 90000});
  tx.add_destination(rx.local());
  int got = 0;
  rx.on_media([&](const RtpPacket& p, const sim::Datagram&) {
    ++got;
    EXPECT_EQ(p.ssrc, 100u);
  });
  for (int i = 0; i < 5; ++i) tx.send_media(Bytes(100, 0), 1000 * i);
  loop.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(tx.packets_sent(), 5u);
  EXPECT_EQ(rx.source_stats(100).received(), 5u);
}

TEST_F(RtpSessionTest, SequenceNumbersIncrement) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  RtpSession tx(a, {.ssrc = 1});
  RtpSession rx(b, {.ssrc = 2});
  tx.add_destination(rx.local());
  std::vector<std::uint16_t> seqs;
  rx.on_media([&](const RtpPacket& p, const sim::Datagram&) { seqs.push_back(p.sequence); });
  for (int i = 0; i < 3; ++i) tx.send_media(Bytes(10, 0), 0);
  loop.run();
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(static_cast<std::uint16_t>(seqs[1] - seqs[0]), 1);
  EXPECT_EQ(static_cast<std::uint16_t>(seqs[2] - seqs[1]), 1);
}

TEST_F(RtpSessionTest, RtcpSenderReportEmitted) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  RtpSession tx(a, {.ssrc = 1, .send_rtcp = true, .rtcp_interval = duration_ms(100)});
  RtpSession rx(b, {.ssrc = 2});
  tx.add_destination(rx.local());
  int sr_count = 0;
  rx.on_rtcp([&](const RtcpPacket& p, const sim::Datagram&) {
    if (p.type == kRtcpSenderReport) {
      ++sr_count;
      EXPECT_GT(p.sr.packet_count, 0u);
    }
  });
  tx.send_media(Bytes(10, 0), 0);
  loop.run_until(SimTime{duration_ms(350).ns()});
  EXPECT_EQ(sr_count, 3);
}

TEST_F(RtpSessionTest, RtcpReceiverReportCarriesStats) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  RtpSession tx(a, {.ssrc = 1});
  RtpSession rx(b, {.ssrc = 2, .send_rtcp = true, .rtcp_interval = duration_ms(50)});
  tx.add_destination(rx.local());
  rx.add_destination(tx.local());
  ReportBlock seen{};
  bool got_rr = false;
  tx.on_rtcp([&](const RtcpPacket& p, const sim::Datagram&) {
    if (p.type == kRtcpReceiverReport && !p.rr.blocks.empty()) {
      got_rr = true;
      seen = p.rr.blocks[0];
    }
  });
  for (int i = 0; i < 10; ++i) tx.send_media(Bytes(50, 0), i * 100);
  loop.run_until(SimTime{duration_ms(120).ns()});
  ASSERT_TRUE(got_rr);
  EXPECT_EQ(seen.ssrc, 1u);
  EXPECT_EQ(seen.fraction_lost, 0);
}

TEST_F(RtpSessionTest, MulticastDistribution) {
  sim::Host& s = net.add_host("s");
  sim::Host& r1 = net.add_host("r1");
  sim::Host& r2 = net.add_host("r2");
  RtpSession tx(s, {.ssrc = 1});
  RtpSession rxa(r1, {.ssrc = 2});
  RtpSession rxb(r2, {.ssrc = 3});
  sim::GroupId g = net.create_group();
  rxa.join_group(g);
  rxb.join_group(g);
  tx.set_multicast_group(g);
  int a_got = 0, b_got = 0;
  rxa.on_media([&](const RtpPacket&, const sim::Datagram&) { ++a_got; });
  rxb.on_media([&](const RtpPacket&, const sim::Datagram&) { ++b_got; });
  tx.send_media(Bytes(10, 0), 0);
  loop.run();
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
}

TEST_F(RtpSessionTest, GarbageCountsAsParseError) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  RtpSession rx(b, {.ssrc = 2});
  transport::DatagramSocket raw(a);
  raw.send_to(rx.local(), Bytes{0xFF, 0xFF});
  loop.run();
  EXPECT_EQ(rx.parse_errors(), 1u);
}

TEST_F(RtpSessionTest, ByeReachesPeer) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  RtpSession tx(a, {.ssrc = 31});
  RtpSession rx(b, {.ssrc = 2});
  tx.add_destination(rx.local());
  std::uint32_t bye_from = 0;
  rx.on_rtcp([&](const RtcpPacket& p, const sim::Datagram&) {
    if (p.type == kRtcpBye) bye_from = p.bye.ssrc;
  });
  tx.send_bye();
  loop.run();
  EXPECT_EQ(bye_from, 31u);
}

}  // namespace
}  // namespace gmmcs::rtp
