// Runtime twin of the gmmcs-lint `lifetime` pass (DESIGN.md §14).
//
// Reconstructs the PR 7 deferred-kPing use-after-free in a minimal
// harness: BrokerNode's ping handler (broker_node.cpp, kPing case)
// originally deferred the pong with a raw `StreamConnection*` capture,
// and a client crash whose reconnect Hello evicted the ghost record
// dropped the last shared_ptr — freeing the connection before the
// deferred job ran. Only ASan could see it (DESIGN.md §13); the fix
// captures a weak_ptr and drops the pong when the stream died, like a
// write to a closed socket.
//
// These tests execute that exact interleaving — pong deferred, owner
// table erased, loop run — against the real StreamConnection over the
// simulator. With the weak_ptr shape they pass everywhere and the
// sanitized jobs (scripts/check.sh asan, the chaos CI job) prove the
// freed-before-run window is genuinely exercised: swap the capture
// below for `raw = conn.get()` and ASan reports heap-use-after-free in
// DeferredPongAfterEvictionIsDropped.
//
// The static-analysis twin is tools/lint/tests/test_lifetime.py
// (TestKpingRegression): gmmcs-lint pass 7 flags the raw-capture form
// of this code and `--fix` rewrites it into the weak_ptr shape asserted
// here, so the bug class is fenced from both sides — the linter stops
// it at review time, this test stops it at runtime.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "transport/stream.hpp"

namespace gmmcs::transport {
namespace {

// BrokerNode's client table and ping handler, reduced to the lifetime
// essentials: accepted connections are owned by a table keyed like
// udp_index_, pings are answered by a deferred job (a loaded broker
// pongs late), and ghost eviction erases the owning entry while that
// job may still be queued.
class PongServer {
 public:
  PongServer(sim::EventLoop& loop, sim::Host& host, std::uint16_t port)
      : loop_(loop), listener_(host, port) {
    listener_.on_accept([this](StreamConnectionPtr conn) {
      const int id = next_id_++;
      auto* raw = conn.get();
      clients_.emplace(id, std::move(conn));
      raw->on_message([this, id](const Payload& msg) { handle(id, msg); });
    });
  }

  [[nodiscard]] sim::Endpoint local() const { return listener_.local(); }

  /// Ghost eviction: drop the owning shared_ptr. If the deferred pong
  /// held a raw pointer this would free the memory out from under it.
  void evict(int id) { clients_.erase(id); }

  [[nodiscard]] int pongs_dropped() const { return pongs_dropped_; }

  /// Schedule eviction of client `id` this long after its next ping —
  /// inside the pong delay, so the connection dies with the job queued.
  void evict_after_ping(int id, SimDuration delay) {
    evict_victim_ = id;
    evict_delay_ = delay;
  }

 private:
  void handle(int id, const Payload& msg) {
    if (to_string(msg) != "ping") return;
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    // The PR 7 kPing shape: the deferred reply must not keep the
    // connection alive (that would resurrect ghosts) and must not
    // dangle (that was the bug) — so it holds a weak_ptr and checks.
    std::weak_ptr<StreamConnection> weak_conn = it->second;
    loop_.schedule_after(kPongDelay, [this, weak_conn] {
      if (auto conn = weak_conn.lock()) {
        conn->send("pong");
      } else {
        ++pongs_dropped_;
      }
    });
    if (evict_victim_ == id) {
      loop_.schedule_after(evict_delay_, [this, id] { evict(id); });
      evict_victim_ = -1;
    }
  }

  static constexpr SimDuration kPongDelay = duration_ms(50);

  sim::EventLoop& loop_;
  StreamListener listener_;
  std::map<int, StreamConnectionPtr> clients_;
  int next_id_ = 0;
  int evict_victim_ = -1;
  SimDuration evict_delay_{};
  int pongs_dropped_ = 0;
};

class LifetimeRegressionTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 7};
};

TEST_F(LifetimeRegressionTest, DeferredPongOnLiveConnectionDelivers) {
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");
  PongServer server(loop, server_host, 5000);

  StreamConnectionPtr client =
      StreamConnection::connect(client_host, server.local());
  int pongs = 0;
  client->on_message([&](const Payload& msg) {
    if (to_string(msg) == "pong") ++pongs;
  });
  client->on_connect([&] { client->send("ping"); });
  loop.run();

  EXPECT_EQ(pongs, 1);
  EXPECT_EQ(server.pongs_dropped(), 0);
}

TEST_F(LifetimeRegressionTest, DeferredPongAfterEvictionIsDropped) {
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");
  PongServer server(loop, server_host, 5000);
  // Eviction lands 10 ms after the ping, well inside the 50 ms pong
  // delay: the owning shared_ptr is gone while the job is still queued.
  server.evict_after_ping(0, duration_ms(10));

  StreamConnectionPtr client =
      StreamConnection::connect(client_host, server.local());
  int pongs = 0;
  client->on_message([&](const Payload& msg) {
    if (to_string(msg) == "pong") ++pongs;
  });
  client->on_connect([&] { client->send("ping"); });
  // With a raw capture this run is a heap-use-after-free (the deferred
  // job touches the freed acceptor connection); ASan builds catch it.
  // With the weak_ptr shape the job observes the death and no-ops.
  loop.run();

  EXPECT_EQ(pongs, 0);
  EXPECT_EQ(server.pongs_dropped(), 1);
}

TEST_F(LifetimeRegressionTest, EvictionFreesConnectionWhileJobQueued) {
  // Proves the freed-before-run window is real (i.e. the raw-capture
  // variant of the previous test would genuinely dangle, not merely
  // reply to a closed-but-alive stream): observe the acceptor
  // connection through an independent weak_ptr and assert it expires
  // at eviction time, strictly before the pong job's due time.
  sim::Host& server_host = net.add_host("server");
  sim::Host& client_host = net.add_host("client");

  StreamListener listener(server_host, 5000);
  std::map<int, StreamConnectionPtr> table;
  std::weak_ptr<StreamConnection> observer;
  listener.on_accept([&](StreamConnectionPtr conn) {
    observer = conn;
    table.emplace(0, std::move(conn));
  });

  StreamConnectionPtr client =
      StreamConnection::connect(client_host, {server_host.id(), 5000});
  loop.run();
  ASSERT_FALSE(observer.expired());

  bool expired_at_pong_time = false;
  loop.schedule_after(duration_ms(10), [&] { table.erase(0); });
  loop.schedule_after(duration_ms(50),
                      [&] { expired_at_pong_time = observer.expired(); });
  loop.run();

  EXPECT_TRUE(expired_at_pong_time);
  EXPECT_TRUE(observer.expired());
}

}  // namespace
}  // namespace gmmcs::transport
