// Second property suite: broker-fabric routing over random topologies and
// session/floor invariants under random operation sequences.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/client.hpp"
#include "common/random.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/session.hpp"

namespace gmmcs {
namespace {

// ---------------------------------------------------------------------------
// Random fabric topology: every matching subscriber gets exactly one copy,
// wherever it is attached, and no broker forwards more than once per event
// per link direction.
// ---------------------------------------------------------------------------

class FabricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricProperty, ExactlyOnceAcrossRandomTopology) {
  Rng rng(GetParam());
  sim::EventLoop loop;
  sim::Network net(loop, GetParam());
  broker::BrokerNetwork fabric(net);
  const int brokers = static_cast<int>(rng.uniform_int(4, 8));
  for (int i = 0; i < brokers; ++i) {
    fabric.add_broker(net.add_host("b" + std::to_string(i)));
  }
  // Random spanning tree (connectivity) plus a few chords (redundancy).
  std::set<std::pair<broker::BrokerId, broker::BrokerId>> links;
  for (int i = 1; i < brokers; ++i) {
    auto parent = static_cast<broker::BrokerId>(rng.uniform_int(0, i - 1));
    fabric.link(parent, static_cast<broker::BrokerId>(i));
    links.insert(std::minmax(parent, static_cast<broker::BrokerId>(i)));
  }
  for (int c = 0; c < brokers / 2; ++c) {
    auto a = static_cast<broker::BrokerId>(rng.uniform_int(0, brokers - 1));
    auto b = static_cast<broker::BrokerId>(rng.uniform_int(0, brokers - 1));
    if (a == b || links.contains(std::minmax(a, b))) continue;
    fabric.link(a, b);
    links.insert(std::minmax(a, b));
  }
  fabric.finalize();

  // Subscribers scattered over random brokers.
  const int n_subs = static_cast<int>(rng.uniform_int(3, 10));
  std::vector<std::unique_ptr<broker::BrokerClient>> subs;
  std::vector<int> counts(static_cast<std::size_t>(n_subs), 0);
  for (int i = 0; i < n_subs; ++i) {
    auto at = static_cast<broker::BrokerId>(rng.uniform_int(0, brokers - 1));
    subs.push_back(std::make_unique<broker::BrokerClient>(
        net.add_host("s" + std::to_string(i)), fabric.broker(at).stream_endpoint()));
    subs.back()->subscribe("/conf/#");
    auto* counter = &counts[static_cast<std::size_t>(i)];
    subs.back()->on_event([counter](const broker::Event&) { ++(*counter); });
  }
  auto pub_at = static_cast<broker::BrokerId>(rng.uniform_int(0, brokers - 1));
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(pub_at).stream_endpoint());
  loop.run();

  const int n_events = 10;
  for (int i = 0; i < n_events; ++i) {
    pub.publish("/conf/video", Bytes(200, 0), broker::QoS::kReliable);
  }
  loop.run();
  for (int i = 0; i < n_subs; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], n_events)
        << "subscriber " << i << " of " << n_subs << " on " << brokers << " brokers";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricProperty,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

// ---------------------------------------------------------------------------
// Session invariants under random join/leave/floor sequences.
// ---------------------------------------------------------------------------

class SessionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionProperty, FloorAndMembershipInvariants) {
  Rng rng(GetParam());
  xgsp::Session session("p", "prop", "creator", xgsp::SessionMode::kAdHoc);
  std::vector<std::string> users;
  for (int i = 0; i < 8; ++i) users.push_back("u" + std::to_string(i));
  std::set<std::string> members;
  for (int step = 0; step < 500; ++step) {
    const std::string& user = users[static_cast<std::size_t>(rng.uniform_int(0, 7))];
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        bool ok = session.join({user, xgsp::EndpointKind::kXgsp, false});
        EXPECT_EQ(ok, !members.contains(user));
        members.insert(user);
        break;
      }
      case 1: {
        bool ok = session.leave(user);
        EXPECT_EQ(ok, members.contains(user));
        members.erase(user);
        break;
      }
      case 2:
        session.request_floor(user);
        break;
      case 3:
        session.release_floor(user);
        break;
    }
    // Invariants after every step:
    EXPECT_EQ(session.members().size(), members.size());
    const std::string& holder = session.floor_holder();
    if (!holder.empty()) {
      EXPECT_TRUE(members.contains(holder)) << "floor held by non-member " << holder;
    }
    std::set<std::string> queued(session.floor_queue().begin(), session.floor_queue().end());
    EXPECT_EQ(queued.size(), session.floor_queue().size()) << "duplicate in floor queue";
    EXPECT_FALSE(queued.contains(holder)) << "holder also queued";
    for (const auto& q : queued) {
      EXPECT_TRUE(members.contains(q)) << "non-member queued";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionProperty, ::testing::Values(211, 212, 213, 214));

}  // namespace
}  // namespace gmmcs
