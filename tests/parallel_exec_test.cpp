// Parallel host dispatch: lane batching, buffered side effects, and
// byte-identical serial/parallel execution (DESIGN.md §9).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

using namespace gmmcs;
using namespace gmmcs::sim;

namespace {

using Trace = std::vector<std::pair<std::int64_t, std::uint64_t>>;

/// Records the commit-order (when, seq) stream of a loop.
struct TraceRecorder {
  explicit TraceRecorder(EventLoop& loop) {
    loop.set_trace([this](SimTime when, std::uint64_t seq) {
      trace.emplace_back(when.ns(), seq);
    });
  }
  Trace trace;
};

}  // namespace

TEST(ParallelExec, SameTimestampDistinctLanesCommitInSeqOrder) {
  EventLoop loop;
  loop.set_workers(4);
  TraceRecorder rec(loop);
  std::vector<int> order;
  SimTime t{duration_ms(1).ns()};
  for (int lane = 1; lane <= 8; ++lane) {
    loop.schedule_at(
        t, [&loop, &order, lane] { loop.post_effect([&order, lane] { order.push_back(lane); }); },
        static_cast<Lane>(lane));
  }
  loop.run();
  // Effects replay at the barrier in scheduling (seq) order even though
  // the events themselves ran concurrently.
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i + 1);
  ASSERT_EQ(rec.trace.size(), 8u);
  for (std::size_t i = 1; i < rec.trace.size(); ++i) {
    EXPECT_LT(rec.trace[i - 1].second, rec.trace[i].second);
  }
}

TEST(ParallelExec, InParallelBatchOnlyDuringMultiEventBatches) {
  EventLoop loop;
  loop.set_workers(4);
  bool solo_parallel = true, batch_parallel = false;
  // A lone event executes inline even with workers enabled.
  loop.schedule_at(SimTime{duration_ms(1).ns()},
                   [&] { solo_parallel = loop.in_parallel_batch(); }, Lane{1});
  SimTime t{duration_ms(2).ns()};
  loop.schedule_at(t, [&] { batch_parallel = loop.in_parallel_batch(); }, Lane{1});
  loop.schedule_at(t, [] {}, Lane{2});
  loop.run();
  EXPECT_FALSE(solo_parallel);
  EXPECT_TRUE(batch_parallel);
}

TEST(ParallelExec, BufferedScheduleInheritsLaneAndRuns) {
  EventLoop loop;
  loop.set_workers(4);
  SimTime t{duration_ms(1).ns()};
  std::vector<Lane> child_lanes(3, kNoLane);
  for (int lane = 1; lane <= 3; ++lane) {
    loop.schedule_at(
        t,
        [&loop, &child_lanes, lane] {
          loop.schedule_after(duration_ms(1), [&loop, &child_lanes, lane] {
            child_lanes[static_cast<std::size_t>(lane - 1)] = loop.current_lane();
          });
        },
        static_cast<Lane>(lane));
  }
  loop.run();
  for (int lane = 1; lane <= 3; ++lane) {
    EXPECT_EQ(child_lanes[static_cast<std::size_t>(lane - 1)], static_cast<Lane>(lane));
  }
}

TEST(ParallelExec, BufferedCancelOfProvisionalAndPriorTasks) {
  EventLoop loop;
  loop.set_workers(4);
  bool doomed_ran = false, child_ran = false, kept_ran = false;
  // A pre-existing task cancelled from inside a parallel batch...
  TaskId doomed = loop.schedule_at(SimTime{duration_ms(5).ns()},
                                   [&] { doomed_ran = true; }, Lane{1});
  SimTime t{duration_ms(1).ns()};
  loop.schedule_at(
      t,
      [&] {
        // ...and a provisional (minted-in-batch) id cancelled in the same
        // event before the barrier ever materializes it.
        TaskId child =
            loop.schedule_after(duration_ms(1), [&child_ran] { child_ran = true; });
        loop.cancel(child);
        loop.cancel(doomed);
      },
      Lane{1});
  loop.schedule_at(t, [&] { kept_ran = true; }, Lane{2});
  loop.run();
  EXPECT_FALSE(doomed_ran);
  EXPECT_FALSE(child_ran);
  EXPECT_TRUE(kept_ran);
}

TEST(ParallelExec, NoLaneEventsAreBarriers) {
  EventLoop loop;
  loop.set_workers(4);
  SimTime t{duration_ms(1).ns()};
  bool barrier_parallel = true;
  loop.schedule_at(t, [] {}, Lane{1});
  loop.schedule_at(t, [&] { barrier_parallel = loop.in_parallel_batch(); });  // kNoLane
  loop.schedule_at(t, [] {}, Lane{2});
  loop.run();
  // The untagged event must have executed alone (inline), never inside a
  // concurrent batch.
  EXPECT_FALSE(barrier_parallel);
}

namespace {

/// A lane-disciplined stress workload: `lanes` chains of events, each
/// touching only its own accumulator, occasionally rescheduling itself,
/// spawning same-timestamp work on its lane and bumping a shared counter
/// through post_effect. Fully deterministic given the seed.
struct Workload {
  std::uint64_t shared = 0;
  std::vector<std::uint64_t> per_lane;

  void run(EventLoop& loop, int lanes, std::uint64_t seed) {
    per_lane.assign(static_cast<std::size_t>(lanes), 0);
    std::vector<Rng> rngs;
    for (int i = 0; i < lanes; ++i) rngs.emplace_back(seed + static_cast<std::uint64_t>(i));
    std::function<void(int, int)> step = [&](int lane, int depth) {
      auto idx = static_cast<std::size_t>(lane - 1);
      Rng& rng = rngs[idx];
      per_lane[idx] = per_lane[idx] * 31 + static_cast<std::uint64_t>(depth) + rng.next() % 7;
      if (depth >= 40) return;
      // Cluster timestamps on a coarse grid so lanes collide on purpose.
      auto delay = duration_us(100 * rng.uniform_int(1, 5));
      loop.schedule_after(delay, [&step, lane, depth] { step(lane, depth + 1); });
      if (rng.chance(0.3)) {
        loop.post_effect([this] { shared += 1; });
      }
      if (rng.chance(0.2)) {
        TaskId doomed = loop.schedule_after(duration_ms(2), [this, idx] {
          per_lane[idx] += 1'000'000;  // must never run
        });
        loop.cancel(doomed);
      }
    };
    for (int lane = 1; lane <= lanes; ++lane) {
      loop.schedule_at(SimTime{duration_us(100).ns()},
                       [&step, lane] { step(lane, 0); }, static_cast<Lane>(lane));
    }
    loop.run();
  }
};

}  // namespace

TEST(ParallelExec, SerialAndParallelTracesAndStateIdentical) {
  Trace serial_trace, parallel_trace;
  Workload serial_w, parallel_w;
  {
    EventLoop loop;
    TraceRecorder rec(loop);
    serial_w.run(loop, 12, 77);
    serial_trace = std::move(rec.trace);
  }
  {
    EventLoop loop;
    loop.set_workers(4);
    TraceRecorder rec(loop);
    parallel_w.run(loop, 12, 77);
    parallel_trace = std::move(rec.trace);
  }
  EXPECT_EQ(serial_trace, parallel_trace);
  EXPECT_EQ(serial_w.per_lane, parallel_w.per_lane);
  EXPECT_EQ(serial_w.shared, parallel_w.shared);
}

TEST(ParallelExec, NetworkTrafficWithLossIsWorkerCountInvariant) {
  // Per-receiver payload streams, arrival times and fabric counters must
  // not depend on the worker count, loss RNG included. Multicast arrivals
  // share one timestamp (single sender-side serialization), so with
  // workers > 1 the receiver handlers genuinely run concurrently.
  struct PerHost {
    std::vector<std::uint8_t> payload;  // flattened received bytes
    std::vector<std::int64_t> stamps;   // arrival times (ns)
    bool operator==(const PerHost&) const = default;
  };
  struct RunResult {
    std::vector<PerHost> rx;
    std::uint64_t delivered = 0, lost = 0, executed = 0;
  };
  auto run = [](int workers) {
    EventLoop loop;
    loop.set_workers(workers);
    Network net(loop, 99);
    net.set_default_path(PathConfig{.latency = duration_us(150), .loss = 0.2});
    Host& tx = net.add_host("tx");
    constexpr int kReceivers = 6;
    RunResult out;
    out.rx.resize(kReceivers);
    GroupId group = net.create_group();
    for (int i = 0; i < kReceivers; ++i) {
      Host& h = net.add_host("rx" + std::to_string(i));
      // Lane discipline: each handler touches only its own host's slot.
      h.bind(7, [&out, &loop, i](const Datagram& d) {
        PerHost& mine = out.rx[static_cast<std::size_t>(i)];
        mine.payload.insert(mine.payload.end(), d.payload.begin(), d.payload.end());
        mine.stamps.push_back(loop.now().ns());
      });
      net.join_group(group, Endpoint{h.id(), 7});
    }
    for (int n = 0; n < 50; ++n) {
      loop.schedule_at(SimTime{duration_ms(n).ns()},
                       [&tx, group, n] {
                         tx.send_multicast(group, 9, Bytes(64, static_cast<std::uint8_t>(n)));
                       },
                       tx.lane());
    }
    loop.run();
    out.delivered = net.delivered();
    out.lost = net.lost();
    out.executed = loop.executed();
    return out;
  };
  RunResult serial = run(1);
  RunResult parallel = run(4);
  EXPECT_EQ(serial.rx, parallel.rx);
  EXPECT_EQ(serial.delivered, parallel.delivered);
  EXPECT_EQ(serial.lost, parallel.lost);
  EXPECT_EQ(serial.executed, parallel.executed);
  EXPECT_GT(serial.lost, 0u);       // the loss model actually engaged
  EXPECT_GT(serial.delivered, 0u);  // ...but traffic still flowed
}

TEST(ParallelExec, WorkerPoolSurvivesReconfiguration) {
  EventLoop loop;
  int runs = 0;
  for (int workers : {4, 1, 2}) {
    loop.set_workers(workers);
    SimTime t = loop.now() + duration_ms(1);
    for (int lane = 1; lane <= 3; ++lane) {
      loop.schedule_at(t, [&runs] { ++runs; }, static_cast<Lane>(lane));
    }
    loop.run();
  }
  EXPECT_EQ(runs, 9);
}

TEST(EventLoopCompaction, CancelHeavyChurnKeepsHeapBounded) {
  EventLoop loop;
  // Schedule far-future tasks and cancel almost all of them, repeatedly —
  // the PeriodicTask / heartbeat pattern. Without compaction the heap
  // grows with every cancel; with it, stale entries stay within 2x live.
  std::vector<TaskId> ids;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 100; ++i) {
      ids.push_back(loop.schedule_at(SimTime{duration_s(1000).ns()}, [] {}));
    }
    for (TaskId id : ids) loop.cancel(id);
    ids.clear();
  }
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_LT(loop.heap_entries(), 128u);  // 2x live + compaction floor
  // And the loop still works.
  bool ran = false;
  loop.schedule_at(SimTime{duration_s(1).ns()}, [&ran] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
}
