// Tests for the media layer: codec registry, traffic generators, transcoder.
#include <gtest/gtest.h>

#include "media/codec.hpp"
#include "media/generator.hpp"
#include "media/transcoder.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace gmmcs::media {
namespace {

TEST(Codec, RegistryLookups) {
  EXPECT_EQ(codecs::g711u().payload_type, 0);
  EXPECT_EQ(codecs::h261().payload_type, 31);
  EXPECT_EQ(codecs::mpeg4_sim().bitrate_bps, 600000.0);
  auto by_name = find_codec("pcmu");
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(by_name->clock_rate, 8000u);
  auto by_pt = find_codec(static_cast<std::uint8_t>(34));
  ASSERT_TRUE(by_pt.has_value());
  EXPECT_EQ(by_pt->name, "H263");
  EXPECT_FALSE(find_codec("NOPE").has_value());
}

TEST(Codec, AudioVideoSplit) {
  for (const auto& c : all_codecs()) {
    if (c.type == MediaType::kVideo) {
      EXPECT_EQ(c.clock_rate, 90000u) << c.name;
    } else {
      EXPECT_EQ(c.clock_rate, 8000u) << c.name;
    }
  }
}

class MediaTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 9};
};

TEST_F(MediaTest, AudioSourceProducesExpectedBitrate) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  rtp::RtpSession tx(a, {.ssrc = 1, .payload_type = 0, .clock_rate = 8000});
  rtp::RtpSession rx(b, {.ssrc = 2, .payload_type = 0, .clock_rate = 8000});
  tx.add_destination(rx.local());
  std::size_t bytes = 0;
  rx.on_media([&](const rtp::RtpPacket& p, const sim::Datagram&) { bytes += p.payload.size(); });
  AudioSource src(tx, {.codec = codecs::g711u()});
  src.start();
  loop.run_until(SimTime{duration_s(10).ns()});
  src.stop();
  double bps = static_cast<double>(bytes) * 8.0 / 10.0;
  EXPECT_NEAR(bps, 64000.0, 2000.0);
  // 50 packets/s for 20ms cadence.
  EXPECT_NEAR(static_cast<double>(src.packets_emitted()), 500.0, 2.0);
}

TEST_F(MediaTest, TalkspurtAudioIsSparser) {
  sim::Host& a = net.add_host("a");
  rtp::RtpSession tx(a, {.ssrc = 1, .payload_type = 0, .clock_rate = 8000});
  AudioSource continuous(tx, {.codec = codecs::g711u(), .seed = 3});
  AudioSource spurty(tx, {.codec = codecs::g711u(), .talkspurt = true, .seed = 3});
  continuous.start();
  spurty.start();
  loop.run_until(SimTime{duration_s(30).ns()});
  EXPECT_LT(spurty.packets_emitted(), continuous.packets_emitted());
  // Expect roughly talk/(talk+silence) = 1.2/3.0 = 40% duty cycle.
  double duty = static_cast<double>(spurty.packets_emitted()) /
                static_cast<double>(continuous.packets_emitted());
  EXPECT_NEAR(duty, 0.4, 0.15);
}

TEST_F(MediaTest, VideoSourceAveragesConfiguredBitrate) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  rtp::RtpSession tx(a, {.ssrc = 1, .payload_type = 96});
  rtp::RtpSession rx(b, {.ssrc = 2, .payload_type = 96});
  tx.add_destination(rx.local());
  std::size_t bytes = 0;
  rx.on_media([&](const rtp::RtpPacket& p, const sim::Datagram&) { bytes += p.payload.size(); });
  VideoSource src(tx, {.codec = codecs::mpeg4_sim(), .seed = 7});
  src.start();
  loop.run_until(SimTime{duration_s(20).ns()});
  double bps = static_cast<double>(bytes) * 8.0 / 20.0;
  EXPECT_NEAR(bps, 600000.0, 60000.0);  // the paper's 600 Kbps stream
}

TEST_F(MediaTest, VideoFramesFragmentWithMarker) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  rtp::RtpSession tx(a, {.ssrc = 1, .payload_type = 96});
  rtp::RtpSession rx(b, {.ssrc = 2, .payload_type = 96});
  tx.add_destination(rx.local());
  std::map<std::uint32_t, int> fragments;
  std::map<std::uint32_t, int> markers;
  rx.on_media([&](const rtp::RtpPacket& p, const sim::Datagram&) {
    fragments[p.timestamp]++;
    if (p.marker) markers[p.timestamp]++;
  });
  VideoSource src(tx, {.codec = codecs::mpeg4_sim(), .mtu_payload = 500, .seed = 7});
  src.start();
  loop.run_until(SimTime{duration_s(2).ns()});
  ASSERT_FALSE(fragments.empty());
  bool saw_multi_fragment = false;
  for (auto& [ts, n] : fragments) {
    EXPECT_EQ(markers[ts], 1) << "exactly one marker per frame";
    if (n > 1) saw_multi_fragment = true;
  }
  EXPECT_TRUE(saw_multi_fragment);
}

TEST_F(MediaTest, VideoIFramesAreLarger) {
  sim::Host& a = net.add_host("a");
  rtp::RtpSession tx(a, {.ssrc = 1, .payload_type = 96});
  VideoSource src(tx, {.codec = codecs::mpeg4_sim(), .gop_size = 10, .i_frame_scale = 4.0,
                       .size_jitter = 0.0, .seed = 7});
  // p_frame_bytes = gop*mean/(gop-1+scale): sanity of the closed form.
  double mean_frame_bits = 600000.0 * 0.04;
  double expected_p = 10.0 * mean_frame_bits / (9.0 + 4.0) / 8.0;
  EXPECT_NEAR(static_cast<double>(src.p_frame_bytes()), expected_p, 2.0);
}

TEST_F(MediaTest, TranscoderReassemblesAndScales) {
  sim::EventLoop lp;
  Transcoder tc(lp, {.output_ratio = 0.5, .cost_per_kb = duration_us(100), .threads = 1});
  std::vector<EncodedBlock> blocks;
  tc.on_output([&](const EncodedBlock& b) { blocks.push_back(b); });
  // One frame of 3 fragments (2 x 400 + 1 x 200 bytes).
  for (int i = 0; i < 3; ++i) {
    rtp::RtpPacket p;
    p.timestamp = 1000;
    p.payload = Bytes(i == 2 ? 200 : 400, 0);
    p.marker = (i == 2);
    tc.push_packet(p);
  }
  lp.run();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].timestamp, 1000u);
  EXPECT_EQ(blocks[0].bytes, 500u);  // 1000 * 0.5
  EXPECT_EQ(tc.frames_in(), 1u);
  EXPECT_EQ(tc.frames_out(), 1u);
}

TEST_F(MediaTest, TranscoderQueueingDelaysOutput) {
  sim::EventLoop lp;
  // 1 KB frame costs 1ms; submit 5 frames at t=0 -> completions at 1..5ms.
  Transcoder tc(lp, {.output_ratio = 1.0, .cost_per_kb = duration_ms(1), .threads = 1});
  std::vector<std::int64_t> done_ms;
  tc.on_output([&](const EncodedBlock& b) { done_ms.push_back(b.encoded_at.ns() / 1'000'000); });
  for (int f = 0; f < 5; ++f) {
    rtp::RtpPacket p;
    p.timestamp = static_cast<std::uint32_t>(f);
    p.payload = Bytes(1024, 0);
    p.marker = true;
    tc.push_packet(p);
  }
  lp.run();
  ASSERT_EQ(done_ms.size(), 5u);
  EXPECT_EQ(done_ms[0], 1);
  EXPECT_EQ(done_ms[4], 5);
  EXPECT_GT(tc.mean_encode_wait().ns(), 0);
}

TEST_F(MediaTest, TranscoderDropsOnOverload) {
  sim::EventLoop lp;
  Transcoder tc(lp, {.cost_per_kb = duration_ms(10), .threads = 1, .queue_limit = 2});
  int out = 0;
  tc.on_output([&](const EncodedBlock&) { ++out; });
  for (int f = 0; f < 10; ++f) {
    rtp::RtpPacket p;
    p.timestamp = static_cast<std::uint32_t>(f);
    p.payload = Bytes(1024, 0);
    p.marker = true;
    tc.push_packet(p);
  }
  lp.run();
  EXPECT_EQ(out, 3);  // 1 in service + 2 queued
  EXPECT_EQ(tc.frames_dropped(), 7u);
}

}  // namespace
}  // namespace gmmcs::media
