// Tests for shared-application collaboration: sequencing, exactly-once
// in-order application, late-join snapshots, concurrent submitters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/broker_node.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/shared_app.hpp"

namespace gmmcs::xgsp {
namespace {

TEST(AppOpCodec, RoundTrip) {
  AppOp op;
  op.seq = 42;
  op.actor = "alice";
  op.command = "draw";
  op.args = "line 0,0 10,10 <red>";
  auto doc = xml::parse(op.to_xml().serialize());
  ASSERT_TRUE(doc.ok());
  AppOp back = AppOp::from_xml(doc.value());
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.actor, "alice");
  EXPECT_EQ(back.command, "draw");
  EXPECT_EQ(back.args, "line 0,0 10,10 <red>");
}

class SharedAppTest : public ::testing::Test {
 protected:
  SharedAppTest()
      : node(net.add_host("broker"), 0),
        app_host(net.add_host("sharer"), node.stream_endpoint(), kTopic) {}

  static constexpr const char* kTopic = "/xgsp/session/1/data";
  sim::EventLoop loop;
  sim::Network net{loop, 111};
  broker::BrokerNode node;
  SharedAppHost app_host;
};

TEST_F(SharedAppTest, OpsAreSequencedAndAppliedInOrder) {
  SharedAppClient a(net.add_host("a"), node.stream_endpoint(), kTopic, "alice");
  SharedAppClient b(net.add_host("b"), node.stream_endpoint(), kTopic, "bob");
  std::vector<std::uint32_t> a_seqs, b_seqs;
  a.on_op([&](const AppOp& op) { a_seqs.push_back(op.seq); });
  b.on_op([&](const AppOp& op) { b_seqs.push_back(op.seq); });
  loop.run();
  a.submit("draw", "circle");
  b.submit("draw", "square");
  a.submit("erase", "all");
  loop.run();
  EXPECT_EQ(app_host.ops_sequenced(), 3u);
  EXPECT_EQ(a_seqs, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(b_seqs, (std::vector<std::uint32_t>{1, 2, 3}));
  // Both replicas applied identical logs, including their own ops exactly
  // once (via the sequenced form, not the raw submission).
  EXPECT_EQ(a.applied_through(), 3u);
  EXPECT_EQ(b.applied_through(), 3u);
}

TEST_F(SharedAppTest, SubmitterSeesOwnOpOnceWithSequence) {
  SharedAppClient a(net.add_host("a"), node.stream_endpoint(), kTopic, "alice");
  std::vector<std::string> applied;
  a.on_op([&](const AppOp& op) {
    applied.push_back(op.actor + "/" + op.command + "#" + std::to_string(op.seq));
  });
  loop.run();
  a.submit("type", "hello");
  loop.run();
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], "alice/type#1");
}

TEST_F(SharedAppTest, LateJoinerCatchesUpViaSnapshot) {
  SharedAppClient a(net.add_host("a"), node.stream_endpoint(), kTopic, "alice");
  a.on_op([](const AppOp&) {});
  loop.run();
  for (int i = 0; i < 5; ++i) a.submit("draw", "op" + std::to_string(i));
  loop.run();
  ASSERT_EQ(app_host.ops_sequenced(), 5u);

  // Carol joins late: without catch_up she would be stuck behind the gap.
  SharedAppClient carol(net.add_host("c"), node.stream_endpoint(), kTopic, "carol");
  std::vector<std::uint32_t> carol_seqs;
  carol.on_op([&](const AppOp& op) { carol_seqs.push_back(op.seq); });
  loop.run();
  carol.catch_up();
  loop.run();
  EXPECT_EQ(carol_seqs, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(app_host.snapshots_served(), 1u);

  // And live ops continue seamlessly after the snapshot.
  a.submit("draw", "op5");
  loop.run();
  ASSERT_EQ(carol_seqs.size(), 6u);
  EXPECT_EQ(carol_seqs.back(), 6u);
}

TEST_F(SharedAppTest, ManyClientsConvergeToSameLog) {
  constexpr int kClients = 6;
  std::vector<std::unique_ptr<SharedAppClient>> clients;
  std::vector<std::vector<std::string>> logs(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<SharedAppClient>(
        net.add_host("c" + std::to_string(i)), node.stream_endpoint(), kTopic,
        "user" + std::to_string(i)));
    auto* log = &logs[static_cast<std::size_t>(i)];
    clients.back()->on_op([log](const AppOp& op) {
      log->push_back(std::to_string(op.seq) + ":" + op.actor + ":" + op.command);
    });
  }
  loop.run();
  // Everyone scribbles concurrently.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < kClients; ++i) {
      clients[static_cast<std::size_t>(i)]->submit("draw", "r" + std::to_string(round));
    }
  }
  loop.run();
  ASSERT_EQ(app_host.ops_sequenced(), 30u);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(logs[static_cast<std::size_t>(i)], logs[0]) << "replica " << i << " diverged";
  }
  EXPECT_EQ(logs[0].size(), 30u);
}

}  // namespace
}  // namespace gmmcs::xgsp
