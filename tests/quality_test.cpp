// Tests for session quality monitoring, plus a churn soak of the full
// session/membership/media machinery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/broker_node.hpp"
#include "common/random.hpp"
#include "media/probe.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/client.hpp"
#include "xgsp/quality.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::xgsp {
namespace {

TEST(QualityReportCodec, RoundTripAndFromStats) {
  rtp::ReceiverStats stats(90000);
  rtp::RtpPacket p;
  p.ssrc = 1;
  for (std::uint16_t i = 0; i < 10; i += 2) {  // 50% loss pattern
    p.sequence = i;
    stats.on_packet(p, SimTime{i * 1000000}, SimTime{i * 1000000 - 500000});
  }
  QualityReport r = QualityReport::from_stats("alice", stats);
  EXPECT_EQ(r.user, "alice");
  EXPECT_GT(r.loss_ratio, 0.0);
  EXPECT_NEAR(r.delay_ms, 0.5, 1e-9);
  auto doc = xml::parse(r.to_xml().serialize());
  ASSERT_TRUE(doc.ok());
  QualityReport back = QualityReport::from_xml(doc.value());
  EXPECT_EQ(back.user, "alice");
  EXPECT_NEAR(back.loss_ratio, r.loss_ratio, 1e-6);
  EXPECT_NEAR(back.delay_ms, r.delay_ms, 1e-6);
  EXPECT_EQ(back.received, r.received);
}

class QualityTest : public ::testing::Test {
 protected:
  QualityTest() : node(net.add_host("broker"), 0) {}
  sim::EventLoop loop;
  sim::Network net{loop, 151};
  broker::BrokerNode node;
};

TEST_F(QualityTest, MonitorAggregatesLatestPerUser) {
  QualityMonitor monitor(net.add_host("monitor"), node.stream_endpoint(), "7");
  broker::BrokerClient alice(net.add_host("alice"), node.stream_endpoint());
  broker::BrokerClient bob(net.add_host("bob"), node.stream_endpoint());
  loop.run();
  publish_quality(alice, "7", {.user = "alice", .loss_ratio = 0.001, .jitter_ms = 8});
  publish_quality(bob, "7", {.user = "bob", .loss_ratio = 0.10, .jitter_ms = 55});
  publish_quality(alice, "7", {.user = "alice", .loss_ratio = 0.002, .jitter_ms = 9});
  loop.run();
  EXPECT_EQ(monitor.reports_received(), 3u);
  ASSERT_EQ(monitor.latest().size(), 2u);
  EXPECT_NEAR(monitor.latest().at("alice").loss_ratio, 0.002, 1e-9);  // latest wins
  auto bad = monitor.degraded();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "bob");
  // Bob's link recovers.
  publish_quality(bob, "7", {.user = "bob", .loss_ratio = 0.0, .jitter_ms = 10});
  loop.run();
  EXPECT_TRUE(monitor.degraded().empty());
}

TEST_F(QualityTest, MonitorIgnoresGarbageOnTopic) {
  QualityMonitor monitor(net.add_host("monitor"), node.stream_endpoint(), "7");
  broker::BrokerClient noisy(net.add_host("noisy"), node.stream_endpoint());
  loop.run();
  noisy.publish(quality_topic("7"), to_bytes("not xml"), broker::QoS::kReliable);
  noisy.publish(quality_topic("7"), to_bytes("<other/>"), broker::QoS::kReliable);
  noisy.publish(quality_topic("7"), to_bytes("<quality-report/>"), broker::QoS::kReliable);
  loop.run();
  EXPECT_EQ(monitor.reports_received(), 0u);
  EXPECT_TRUE(monitor.latest().empty());
}

TEST_F(QualityTest, SessionChurnSoak) {
  // 24 participants join/leave/publish over 60 simulated seconds; the
  // session stays consistent and the media plane keeps flowing.
  SessionServer server(net.add_host("xgsp"), node.stream_endpoint());
  Message created = server.handle(
      Message::create_session("soak", "organizer", SessionMode::kAdHoc, {{"video", "H261"}}));
  std::string sid = created.sessions.front().id();
  std::string topic = created.sessions.front().stream("video")->topic;

  constexpr int kUsers = 24;
  std::vector<std::unique_ptr<XgspClient>> clients;
  std::vector<bool> joined(kUsers, false);
  std::vector<std::uint64_t> media_got(kUsers, 0);
  for (int i = 0; i < kUsers; ++i) {
    clients.push_back(std::make_unique<XgspClient>(net.add_host("u" + std::to_string(i)),
                                                   node.stream_endpoint(),
                                                   "user" + std::to_string(i)));
    clients.back()->subscribe_media(topic);
    auto* counter = &media_got[static_cast<std::size_t>(i)];
    clients.back()->on_media([counter](const broker::Event&) { ++(*counter); });
  }
  loop.run();
  Rng rng(7);
  for (int step = 0; step < 120; ++step) {
    int u = static_cast<int>(rng.uniform_int(0, kUsers - 1));
    if (!joined[static_cast<std::size_t>(u)]) {
      clients[static_cast<std::size_t>(u)]->join(sid, [](const Message&) {});
      joined[static_cast<std::size_t>(u)] = true;
    } else if (rng.chance(0.4)) {
      clients[static_cast<std::size_t>(u)]->leave(sid, [](const Message&) {});
      joined[static_cast<std::size_t>(u)] = false;
    } else {
      clients[static_cast<std::size_t>(u)]->publish_media(topic, Bytes(400, 1));
    }
    loop.run_for(duration_ms(500));
  }
  loop.run();
  // Server membership agrees with our bookkeeping.
  std::size_t expected_members = 0;
  for (bool j : joined) expected_members += j ? 1 : 0;
  EXPECT_EQ(server.find(sid)->members().size(), expected_members);
  // Media flowed to subscribers throughout (publishers excluded per event,
  // so totals differ per client, but everyone saw a healthy stream).
  for (int i = 0; i < kUsers; ++i) {
    EXPECT_GT(media_got[static_cast<std::size_t>(i)], 10u) << "client " << i;
  }
  // All floor state remained coherent (nobody requested: empty).
  EXPECT_TRUE(server.find(sid)->floor_holder().empty());
}

}  // namespace
}  // namespace gmmcs::xgsp
