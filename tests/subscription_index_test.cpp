// Tests for the routing fast path index: exact/wildcard matching parity
// with TopicFilter, refcounting, cache invalidation and exclusion.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broker/subscription_index.hpp"
#include "broker/topic.hpp"

namespace gmmcs::broker {
namespace {

using Ids = std::vector<SubscriptionIndex::SubscriberId>;

TEST(SubscriptionIndex, ExactFilterMatchesOnlyItsTopic) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/s/1/video"));
  idx.subscribe(2, TopicFilter("/s/1/audio"));
  EXPECT_EQ(idx.matches("/s/1/video"), (Ids{1}));
  EXPECT_EQ(idx.matches("/s/1/audio"), (Ids{2}));
  EXPECT_EQ(idx.matches("/s/1"), (Ids{}));
  EXPECT_EQ(idx.matches("/s/1/video/hd"), (Ids{}));
  EXPECT_EQ(idx.exact_topic_count(), 2u);
  EXPECT_EQ(idx.wildcard_filter_count(), 0u);
}

TEST(SubscriptionIndex, ExactLookupNormalizesTopic) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("s/1/video/"));
  EXPECT_EQ(idx.matches("/s/1/video"), (Ids{1}));
  EXPECT_EQ(idx.matches("//s//1/video/"), (Ids{1}));
}

TEST(SubscriptionIndex, StarMatchesOneSegment) {
  SubscriptionIndex idx;
  idx.subscribe(5, TopicFilter("/s/*/video"));
  EXPECT_EQ(idx.matches("/s/1/video"), (Ids{5}));
  EXPECT_EQ(idx.matches("/s/99/video"), (Ids{5}));
  EXPECT_EQ(idx.matches("/s/1/2/video"), (Ids{}));
  EXPECT_EQ(idx.exact_topic_count(), 0u);
  EXPECT_EQ(idx.wildcard_filter_count(), 1u);
}

TEST(SubscriptionIndex, HashMatchesRest) {
  SubscriptionIndex idx;
  idx.subscribe(3, TopicFilter("/s/1/#"));
  EXPECT_EQ(idx.matches("/s/1/video"), (Ids{3}));
  EXPECT_EQ(idx.matches("/s/1/audio/stereo"), (Ids{3}));
  EXPECT_EQ(idx.matches("/s/1"), (Ids{3}));  // zero remaining segments
  EXPECT_EQ(idx.matches("/s/2/video"), (Ids{}));
}

TEST(SubscriptionIndex, InvalidFilterNeverMatches) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/a/#/b"));
  EXPECT_EQ(idx.matches("/a/x/b"), (Ids{}));
  EXPECT_EQ(idx.entry_count(), 1u);  // still refcounted for symmetry
  idx.unsubscribe(1, TopicFilter("/a/#/b"));
  EXPECT_EQ(idx.entry_count(), 0u);
}

TEST(SubscriptionIndex, MergesExactAndWildcardSortedDeduplicated) {
  SubscriptionIndex idx;
  idx.subscribe(9, TopicFilter("/s/1/video"));
  idx.subscribe(2, TopicFilter("/s/#"));
  idx.subscribe(5, TopicFilter("/s/*/video"));
  // Client 9 also holds a wildcard that matches the same topic: one entry.
  idx.subscribe(9, TopicFilter("/s/#"));
  EXPECT_EQ(idx.matches("/s/1/video"), (Ids{2, 5, 9}));
}

TEST(SubscriptionIndex, ExclusionDropsPublisher) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/t"));
  idx.subscribe(2, TopicFilter("/t"));
  EXPECT_EQ(idx.matches("/t", 1), (Ids{2}));
  EXPECT_EQ(idx.matches("/t", 2), (Ids{1}));
  EXPECT_EQ(idx.matches("/t", 0), (Ids{1, 2}));  // no client 0 exists
}

TEST(SubscriptionIndex, RefcountNeedsBalancedUnsubscribes) {
  // BrokerNetwork advertises once per subscribing client: two clients on
  // one broker -> refcount 2; one unsubscribe must not clear interest.
  SubscriptionIndex idx;
  TopicFilter f("/t");
  idx.subscribe(7, f);
  idx.subscribe(7, f);
  idx.unsubscribe(7, f);
  EXPECT_EQ(idx.matches("/t"), (Ids{7}));
  idx.unsubscribe(7, f);
  EXPECT_EQ(idx.matches("/t"), (Ids{}));
}

TEST(SubscriptionIndex, CacheInvalidatedOnSubscribe) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/t"));
  EXPECT_EQ(idx.matches("/t"), (Ids{1}));
  auto gen = idx.generation();
  idx.subscribe(2, TopicFilter("/t"));
  EXPECT_GT(idx.generation(), gen);
  EXPECT_EQ(idx.matches("/t"), (Ids{1, 2}));
}

TEST(SubscriptionIndex, CacheInvalidatedOnUnsubscribe) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/t"));
  idx.subscribe(2, TopicFilter("/t"));
  EXPECT_EQ(idx.matches("/t"), (Ids{1, 2}));
  idx.unsubscribe(1, TopicFilter("/t"));
  EXPECT_EQ(idx.matches("/t"), (Ids{2}));
}

TEST(SubscriptionIndex, CacheInvalidatedOnDisconnect) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/t"));
  idx.subscribe(1, TopicFilter("/s/#"));
  idx.subscribe(2, TopicFilter("/t"));
  EXPECT_EQ(idx.matches("/t"), (Ids{1, 2}));
  EXPECT_EQ(idx.matches("/s/x"), (Ids{1}));
  idx.remove_subscriber(1);
  EXPECT_EQ(idx.matches("/t"), (Ids{2}));
  EXPECT_EQ(idx.matches("/s/x"), (Ids{}));
  EXPECT_EQ(idx.entry_count(), 1u);
}

TEST(SubscriptionIndex, SteadyStateHitsCache) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/t"));
  (void)idx.matches("/t");  // miss: builds the line
  auto misses = idx.cache_misses();
  for (int i = 0; i < 100; ++i) (void)idx.matches("/t");
  EXPECT_EQ(idx.cache_misses(), misses);
  EXPECT_GE(idx.cache_hits(), 100u);
}

TEST(SubscriptionIndex, EmptyResultIsCachedToo) {
  SubscriptionIndex idx;
  idx.subscribe(1, TopicFilter("/t"));
  (void)idx.matches("/other");
  auto misses = idx.cache_misses();
  (void)idx.matches("/other");
  EXPECT_EQ(idx.cache_misses(), misses);
}

}  // namespace
}  // namespace gmmcs::broker
