// Targeted regressions for every decode-plane hardening fix that landed
// with the wire taint pass (DESIGN.md §16). Each test replays the exact
// hostile input the pre-fix code mishandled — counts and lengths claimed
// by the frame that the bytes on hand cannot back, numeric text fields
// that used to throw, and nesting that used to convert wire bytes into
// stack frames. The decoders must reject all of them as plain parse
// errors: no throw, no oversized allocation, no crash.
//
// The fuzzer (tests/decode_fuzz_test.cpp) searches for new inputs of
// this shape; this file pins the ones already found so they stay fixed.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "broker/event.hpp"
#include "common/bytes.hpp"
#include "h323/messages.hpp"
#include "rtp/packet.hpp"
#include "rtp/rtcp.hpp"
#include "sip/message.hpp"
#include "sip/sdp.hpp"
#include "streaming/rtsp.hpp"
#include "xgsp/messages.hpp"
#include "xml/xml.hpp"

namespace {

using gmmcs::Bytes;
using gmmcs::ByteWriter;

// --- broker ---------------------------------------------------------------

TEST(MalformedBroker, PeerEventCountClaimOnTruncatedFrame) {
  // Three bytes claiming 65535 peer targets. The pre-fix decode reserved
  // 65535 * 4 = 256 KiB before the first bounds check ran.
  const Bytes wire = {0x06, 0xFF, 0xFF};
  auto decoded = gmmcs::broker::decode(gmmcs::Payload{Bytes(wire)});
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("truncated"), std::string::npos);
}

TEST(MalformedBroker, EventPayloadLengthClaimExceedsFrame) {
  ByteWriter w;
  w.u8(0x05);  // kEvent
  w.u8(0);     // qos
  w.u8(0);     // hops
  w.u64(0);    // origin
  w.u32(1);    // seq
  w.u32(1);    // publisher
  w.lstr("t");
  w.u32(0xFFFFFFFF);  // payload length: 4 GiB claimed, 0 bytes present
  auto decoded = gmmcs::broker::decode(gmmcs::Payload{w.take()});
  ASSERT_FALSE(decoded.ok());
}

// --- H.323 ----------------------------------------------------------------

TEST(MalformedH323, H245CapabilityCountClaimOnEmptyTail) {
  ByteWriter w;
  w.u8(0x45);  // H.245 tag
  w.u8(1);     // type
  w.u32(7);    // seq
  w.u8(0xFF);  // 255 capabilities claimed, none present
  auto decoded = gmmcs::h323::H245Message::decode(w.take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("capability count"), std::string::npos);
}

// --- RTP / RTCP -----------------------------------------------------------

TEST(MalformedRtp, CsrcCountClaimOnHeaderOnlyPacket) {
  // 12-byte header with CC=15: the CSRC list alone would need 60 bytes.
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((2 << 6) | 0x0F));
  w.u8(0);
  w.u16(1);   // sequence
  w.u32(2);   // timestamp
  w.u32(3);   // ssrc
  auto decoded = gmmcs::rtp::RtpPacket::parse(gmmcs::Payload{w.take()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("CSRC"), std::string::npos);
}

TEST(MalformedRtcp, ReceiverReportBlockCountClaim) {
  // Count bits say 31 report blocks (744 bytes); the packet is 8 bytes.
  // The pre-fix parse pushed 31 zero-filled blocks before ok() caught it.
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((2 << 6) | 0x1F));
  w.u8(gmmcs::rtp::kRtcpReceiverReport);
  w.u16(7);   // length in words (ignored)
  w.u32(42);  // ssrc
  auto decoded = gmmcs::rtp::parse_rtcp(w.take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("report block count"), std::string::npos);
}

TEST(MalformedRtcp, SenderReportBlockCountClaim) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((2 << 6) | 0x1F));
  w.u8(gmmcs::rtp::kRtcpSenderReport);
  w.u16(6);
  w.u32(42);  // ssrc
  w.u64(1);   // ntp
  w.u32(2);   // rtp ts
  w.u32(3);   // packets
  w.u32(4);   // octets
  auto decoded = gmmcs::rtp::parse_rtcp(w.take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("report block count"), std::string::npos);
}

// --- SIP / SDP ------------------------------------------------------------

TEST(MalformedSip, OverflowingStatusCodeIsAParseError) {
  // Used to throw std::out_of_range from std::stoi.
  auto decoded = gmmcs::sip::SipMessage::parse("SIP/2.0 99999999999 OK\r\n\r\n");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("status code"), std::string::npos);
}

TEST(MalformedSip, OverflowingCseqReadsAsZero) {
  auto decoded = gmmcs::sip::SipMessage::parse(
      "INVITE sip:alice@gw SIP/2.0\r\nCSeq: 99999999999 INVITE\r\n\r\n");
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().cseq_number(), 0u);
  EXPECT_EQ(decoded.value().cseq_method(), "INVITE");
}

TEST(MalformedSdp, OverflowingMediaPortIsAParseError) {
  // 99999 does not fit a u16; std::stoi used to truncate-accept it.
  auto decoded = gmmcs::sip::Sdp::parse("v=0\r\nm=audio 99999 RTP/AVP 0\r\n");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("m= line"), std::string::npos);
}

// --- RTSP -----------------------------------------------------------------

TEST(MalformedRtsp, OverflowingStatusCodeIsAParseError) {
  auto decoded =
      gmmcs::streaming::RtspMessage::parse("RTSP/1.0 4294967296 OK\r\n\r\n");
  ASSERT_FALSE(decoded.ok());
}

// --- XML / XGSP -----------------------------------------------------------

TEST(MalformedXml, DeepNestingIsRejectedNotStackOverflow) {
  // 512 nested elements: the recursive-descent parser used to burn one
  // stack frame per '<a>' with no depth cap.
  std::string doc;
  for (int i = 0; i < 512; ++i) doc += "<a>";
  for (int i = 0; i < 512; ++i) doc += "</a>";
  auto decoded = gmmcs::xml::parse(doc);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("nesting too deep"), std::string::npos);
}

TEST(MalformedXml, OverflowingCharacterReferenceIsDropped) {
  // &#<huge>; used to throw from std::stoi inside unescape().
  auto decoded = gmmcs::xml::parse("<a>&#99999999999999999999;</a>");
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().text(), "");
}

TEST(MalformedXgsp, OverflowingSeqIsAParseError) {
  auto decoded = gmmcs::xgsp::Message::parse(
      "<xgsp type=\"ack\" seq=\"99999999999\"/>");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("malformed seq"), std::string::npos);
}

}  // namespace
