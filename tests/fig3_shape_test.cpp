// Shape tests for the paper's evaluation (DESIGN.md §4).
//
// These assert the *relationships* the paper reports — who wins, by what
// rough factor, where capacity knees fall — not exact milliseconds. They
// run the same harnesses as the bench binaries.
#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace gmmcs::core {
namespace {

class Fig3Shape : public ::testing::Test {
 protected:
  static const Fig3Result& nb() {
    static const Fig3Result r = [] {
      Fig3Config cfg;
      cfg.fanout = Fanout::kBroker;
      return run_fig3(cfg);
    }();
    return r;
  }
  static const Fig3Result& jmf() {
    static const Fig3Result r = [] {
      Fig3Config cfg;
      cfg.fanout = Fanout::kJmfReflector;
      return run_fig3(cfg);
    }();
    return r;
  }
};

TEST_F(Fig3Shape, StreamIsSixHundredKbps) {
  // "This video stream has an average bandwidth of 600Kbps."
  EXPECT_NEAR(nb().stream_kbps, 600.0, 60.0);
}

TEST_F(Fig3Shape, BrokerDelayInPaperBand) {
  // Paper: 80.76 ms. Band: 60-110 ms.
  EXPECT_GT(nb().avg_delay_ms, 60.0);
  EXPECT_LT(nb().avg_delay_ms, 110.0);
}

TEST_F(Fig3Shape, JmfDelayInPaperBand) {
  // Paper: 229.23 ms. Band: 180-290 ms.
  EXPECT_GT(jmf().avg_delay_ms, 180.0);
  EXPECT_LT(jmf().avg_delay_ms, 290.0);
}

TEST_F(Fig3Shape, BrokerBeatsJmfByRoughFactor) {
  double ratio = jmf().avg_delay_ms / nb().avg_delay_ms;
  EXPECT_GT(ratio, 2.0);  // paper: 2.84x
  EXPECT_LT(ratio, 4.0);
}

TEST_F(Fig3Shape, BrokerJitterBelowJmfJitter) {
  // Paper: 13.38 ms vs 15.55 ms.
  EXPECT_LT(nb().avg_jitter_ms, jmf().avg_jitter_ms);
  EXPECT_GT(nb().avg_jitter_ms, 8.0);
  EXPECT_LT(nb().avg_jitter_ms, 22.0);
  EXPECT_LT(jmf().avg_jitter_ms, 24.0);
}

TEST_F(Fig3Shape, NoLossAtTheOperatingPoint) {
  EXPECT_LT(nb().loss_ratio, 0.001);
  EXPECT_LT(jmf().loss_ratio, 0.001);
  EXPECT_EQ(nb().dispatch_jobs_dropped, 0u);
}

TEST_F(Fig3Shape, JmfSeriesSitsAboveBrokerSeriesThroughout) {
  // The figure's visual signature: the two delay curves barely overlap —
  // JMF stays above NaradaBrokering across the whole packet range.
  Series nb_ds = nb().delay_ms.downsample(20);
  Series jmf_ds = jmf().delay_ms.downsample(20);
  ASSERT_GE(nb_ds.points().size(), 18u);
  std::size_t n = std::min(nb_ds.points().size(), jmf_ds.points().size());
  int above = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (jmf_ds.points()[i].y > nb_ds.points()[i].y) ++above;
  }
  EXPECT_GE(above, static_cast<int>(n) - 1);  // allow one crossing at most
}

TEST_F(Fig3Shape, SeriesCoverTwoThousandPackets) {
  EXPECT_GE(nb().delay_ms.points().size(), 1900u);
  EXPECT_GE(jmf().delay_ms.points().size(), 1900u);
}

TEST_F(Fig3Shape, ExperimentIsBitForBitDeterministic) {
  // The whole reproduction claim rests on seeded determinism: identical
  // config => identical measurements, down to the nanosecond.
  Fig3Config cfg;
  cfg.packets = 300;
  Fig3Result a = run_fig3(cfg);
  Fig3Result b = run_fig3(cfg);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.avg_jitter_ms, b.avg_jitter_ms);
  ASSERT_EQ(a.delay_ms.points().size(), b.delay_ms.points().size());
  for (std::size_t i = 0; i < a.delay_ms.points().size(); ++i) {
    ASSERT_EQ(a.delay_ms.points()[i].y, b.delay_ms.points()[i].y) << "packet " << i;
  }
  // A different seed perturbs the workload and therefore the measurement.
  cfg.seed = 2004;
  Fig3Result c = run_fig3(cfg);
  EXPECT_NE(a.avg_delay_ms, c.avg_delay_ms);
}

TEST_F(Fig3Shape, UnoptimizedBrokerIsWorse) {
  // Ablation A1: the paper's transmission optimizations are what make the
  // broker competitive; without them it degrades past the JMF baseline.
  Fig3Config cfg;
  cfg.fanout = Fanout::kBrokerNaive;
  cfg.packets = 600;  // enough to show saturation, keeps the test fast
  Fig3Result naive = run_fig3(cfg);
  EXPECT_GT(naive.avg_delay_ms, nb().avg_delay_ms);
}

class CapacityShape : public ::testing::Test {
 protected:
  static CapacityPoint point(MediaKind kind, int clients) {
    CapacityConfig cfg;
    cfg.kind = kind;
    cfg.clients = clients;
    return run_capacity(cfg);
  }
};

TEST_F(CapacityShape, AudioGoodAtThousandClients) {
  CapacityPoint p = point(MediaKind::kAudio, 1000);
  EXPECT_TRUE(p.good_quality) << "delay=" << p.avg_delay_ms << " loss=" << p.loss_ratio;
  EXPECT_LT(p.avg_delay_ms, 50.0);
}

TEST_F(CapacityShape, AudioEventuallyDegrades) {
  CapacityPoint p = point(MediaKind::kAudio, 2400);
  EXPECT_FALSE(p.good_quality);
}

TEST_F(CapacityShape, VideoGoodAtFourHundredClients) {
  CapacityPoint p = point(MediaKind::kVideo, 400);
  EXPECT_TRUE(p.good_quality) << "delay=" << p.avg_delay_ms << " loss=" << p.loss_ratio;
}

TEST_F(CapacityShape, VideoDegradesWellBeforeSixHundred) {
  CapacityPoint p = point(MediaKind::kVideo, 600);
  EXPECT_FALSE(p.good_quality);
}

TEST_F(CapacityShape, DelayGrowsMonotonicallyNearSaturation) {
  CapacityPoint a = point(MediaKind::kVideo, 200);
  CapacityPoint b = point(MediaKind::kVideo, 400);
  EXPECT_LT(a.avg_delay_ms, b.avg_delay_ms);
}

}  // namespace
}  // namespace gmmcs::core
