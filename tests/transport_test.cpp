// Tests for the transport layer: datagram sockets, streams, firewall, proxy.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/firewall.hpp"
#include "transport/stream.hpp"

namespace gmmcs::transport {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 42};
};

TEST_F(TransportTest, DatagramSocketSendReceive) {
  sim::Host& a = net.add_host("a");
  sim::Host& b = net.add_host("b");
  DatagramSocket sa(a);
  DatagramSocket sb(b, 5000);
  std::string got;
  sb.on_receive([&](const sim::Datagram& d) { got = to_string(d.payload); });
  sa.send_to(sim::Endpoint{b.id(), 5000}, to_bytes("ping"));
  loop.run();
  EXPECT_EQ(got, "ping");
}

TEST_F(TransportTest, DatagramSocketUnbindsOnDestruction) {
  sim::Host& a = net.add_host("a");
  std::uint16_t port;
  {
    DatagramSocket s(a);
    port = s.local().port;
    EXPECT_TRUE(a.is_bound(port));
  }
  EXPECT_FALSE(a.is_bound(port));
}

TEST_F(TransportTest, DatagramMulticastViaSocket) {
  sim::Host& s = net.add_host("s");
  sim::Host& r = net.add_host("r");
  DatagramSocket ss(s);
  DatagramSocket rs(r);
  sim::GroupId g = net.create_group();
  rs.join_group(g);
  int got = 0;
  rs.on_receive([&](const sim::Datagram&) { ++got; });
  ss.send_group(g, to_bytes("m"));
  loop.run();
  EXPECT_EQ(got, 1);
  rs.leave_group(g);
  ss.send_group(g, to_bytes("m"));
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST_F(TransportTest, StreamHandshakeAndExchange) {
  sim::Host& server = net.add_host("server");
  sim::Host& client = net.add_host("client");
  StreamListener listener(server, 80);
  std::vector<std::string> server_got;
  StreamConnectionPtr server_conn;
  listener.on_accept([&](StreamConnectionPtr c) {
    server_conn = std::move(c);
    // Capture the slot, not the shared_ptr: a handler owning its own
    // connection is a reference cycle (LeakSanitizer flags it).
    server_conn->on_message([&](const Payload& m) {
      server_got.push_back(to_string(m));
      server_conn->send("reply:" + to_string(m));
    });
  });
  auto conn = StreamConnection::connect(client, sim::Endpoint{server.id(), 80});
  std::vector<std::string> client_got;
  conn->on_message([&](const Payload& m) { client_got.push_back(to_string(m)); });
  bool connected = false;
  conn->on_connect([&] { connected = true; });
  conn->send("hello");
  conn->send("world");
  loop.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(conn->established());
  ASSERT_EQ(server_got.size(), 2u);
  EXPECT_EQ(server_got[0], "hello");
  ASSERT_EQ(client_got.size(), 2u);
  EXPECT_EQ(client_got[1], "reply:world");
}

TEST_F(TransportTest, StreamPreservesOrderUnderLoad) {
  sim::Host& server = net.add_host("server");
  sim::Host& client = net.add_host("client");
  StreamListener listener(server, 80);
  std::vector<int> order;
  StreamConnectionPtr sc;
  listener.on_accept([&](StreamConnectionPtr c) {
    sc = c;
    c->on_message([&](const Payload& m) { order.push_back(std::stoi(to_string(m))); });
  });
  auto conn = StreamConnection::connect(client, sim::Endpoint{server.id(), 80});
  for (int i = 0; i < 50; ++i) conn->send(std::to_string(i));
  loop.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(TransportTest, StreamSurvivesLossyPath) {
  sim::Host& server = net.add_host("server");
  sim::Host& client = net.add_host("client");
  net.set_path(server.id(), client.id(),
               sim::PathConfig{.latency = duration_us(100), .loss = 0.5});
  StreamListener listener(server, 80);
  int got = 0;
  StreamConnectionPtr sc;
  listener.on_accept([&](StreamConnectionPtr c) {
    sc = c;
    c->on_message([&](const Payload&) { ++got; });
  });
  auto conn = StreamConnection::connect(client, sim::Endpoint{server.id(), 80});
  for (int i = 0; i < 20; ++i) conn->send("x");
  loop.run();
  EXPECT_EQ(got, 20);  // reliable: loss model does not apply
}

TEST_F(TransportTest, StreamCloseNotifiesPeer) {
  sim::Host& server = net.add_host("server");
  sim::Host& client = net.add_host("client");
  StreamListener listener(server, 80);
  StreamConnectionPtr sc;
  bool server_saw_close = false;
  listener.on_accept([&](StreamConnectionPtr c) {
    sc = c;
    c->on_close([&] { server_saw_close = true; });
  });
  auto conn = StreamConnection::connect(client, sim::Endpoint{server.id(), 80});
  loop.run();
  conn->close();
  loop.run();
  EXPECT_TRUE(server_saw_close);
  EXPECT_TRUE(sc->closed());
  EXPECT_TRUE(conn->closed());
}

TEST_F(TransportTest, StreamBuffersInboxUntilHandlerSet) {
  sim::Host& server = net.add_host("server");
  sim::Host& client = net.add_host("client");
  StreamListener listener(server, 80);
  StreamConnectionPtr sc;
  listener.on_accept([&](StreamConnectionPtr c) { sc = c; });
  auto conn = StreamConnection::connect(client, sim::Endpoint{server.id(), 80});
  conn->send("early1");
  conn->send("early2");
  loop.run();
  ASSERT_NE(sc, nullptr);
  std::vector<std::string> got;
  sc->on_message([&](const Payload& m) { got.push_back(to_string(m)); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "early1");
}

TEST_F(TransportTest, FirewallBlocksUnsolicitedDatagrams) {
  sim::Host& inside = net.add_host("inside");
  sim::Host& outside = net.add_host("outside");
  Firewall fw(inside, FirewallRules{});
  DatagramSocket si(inside, 100);
  DatagramSocket so(outside, 200);
  int got = 0;
  si.on_receive([&](const sim::Datagram&) { ++got; });
  so.send_to(sim::Endpoint{inside.id(), 100}, to_bytes("attack"));
  loop.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(fw.blocked(), 1u);
}

TEST_F(TransportTest, FirewallAllowsReplyTraffic) {
  sim::Host& inside = net.add_host("inside");
  sim::Host& outside = net.add_host("outside");
  Firewall fw(inside, FirewallRules{});
  DatagramSocket si(inside, 100);
  DatagramSocket so(outside, 200);
  int got = 0;
  si.on_receive([&](const sim::Datagram&) { ++got; });
  // Inside initiates; outside replies to the same flow.
  si.send_to(so.local(), to_bytes("hello"));
  so.on_receive([&](const sim::Datagram& d) { so.send_to(d.src, to_bytes("reply")); });
  loop.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fw.passed(), 1u);
}

TEST_F(TransportTest, FirewallBlocksInboundStreamButAllowsOutbound) {
  sim::Host& inside = net.add_host("inside");
  sim::Host& outside = net.add_host("outside");
  Firewall fw(inside, FirewallRules{});
  // Inbound connection to a listener behind the firewall: blocked.
  StreamListener inside_listener(inside, 80);
  bool accepted_inbound = false;
  inside_listener.on_accept([&](StreamConnectionPtr) { accepted_inbound = true; });
  auto in_conn = StreamConnection::connect(outside, sim::Endpoint{inside.id(), 80});
  loop.run();
  EXPECT_FALSE(accepted_inbound);
  EXPECT_FALSE(in_conn->established());
  // Outbound connection from behind the firewall: works.
  StreamListener outside_listener(outside, 80);
  StreamConnectionPtr sc;
  outside_listener.on_accept([&](StreamConnectionPtr c) { sc = c; });
  auto out_conn = StreamConnection::connect(inside, sim::Endpoint{outside.id(), 80});
  int inside_got = 0;
  out_conn->on_message([&](const Payload&) { ++inside_got; });
  loop.run();
  ASSERT_TRUE(out_conn->established());
  sc->send("data-back");
  loop.run();
  EXPECT_EQ(inside_got, 1);
}

TEST_F(TransportTest, ProxyTunnelsThroughFirewall) {
  sim::Host& inside = net.add_host("inside");     // client behind firewall
  sim::Host& proxy_host = net.add_host("proxy");  // in the DMZ
  sim::Host& broker = net.add_host("broker");     // the real target
  Firewall fw(inside, FirewallRules{});
  ProxyServer proxy(proxy_host);
  StreamListener broker_listener(broker, 9000);
  std::vector<std::string> broker_got;
  StreamConnectionPtr bc;
  broker_listener.on_accept([&](StreamConnectionPtr c) {
    bc = std::move(c);
    bc->on_message([&](const Payload& m) {
      broker_got.push_back(to_string(m));
      bc->send("ack:" + to_string(m));
    });
  });
  auto tunnel = connect_via_proxy(inside, proxy.endpoint(), sim::Endpoint{broker.id(), 9000});
  std::vector<std::string> client_got;
  tunnel->on_message([&](const Payload& m) { client_got.push_back(to_string(m)); });
  tunnel->send("subscribe:topic1");
  loop.run();
  ASSERT_EQ(broker_got.size(), 1u);
  EXPECT_EQ(broker_got[0], "subscribe:topic1");
  ASSERT_EQ(client_got.size(), 1u);
  EXPECT_EQ(client_got[0], "ack:subscribe:topic1");
  EXPECT_EQ(proxy.active_tunnels(), 1u);
  EXPECT_GE(proxy.relayed_messages(), 2u);
}

TEST_F(TransportTest, ProxyRejectsMalformedConnect) {
  sim::Host& client = net.add_host("client");
  sim::Host& proxy_host = net.add_host("proxy");
  ProxyServer proxy(proxy_host);
  auto conn = StreamConnection::connect(client, proxy.endpoint());
  bool closed = false;
  conn->on_close([&] { closed = true; });
  conn->send("GARBAGE");
  loop.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(proxy.active_tunnels(), 0u);
}

TEST_F(TransportTest, ProxyClosePropagates) {
  sim::Host& client = net.add_host("client");
  sim::Host& proxy_host = net.add_host("proxy");
  sim::Host& target = net.add_host("target");
  ProxyServer proxy(proxy_host);
  StreamListener listener(target, 7);
  StreamConnectionPtr tc;
  listener.on_accept([&](StreamConnectionPtr c) { tc = c; });
  auto tunnel = connect_via_proxy(client, proxy.endpoint(), sim::Endpoint{target.id(), 7});
  tunnel->send("x");
  loop.run();
  ASSERT_NE(tc, nullptr);
  bool target_closed = false;
  tc->on_close([&] { target_closed = true; });
  tunnel->close();
  loop.run();
  EXPECT_TRUE(target_closed);
}

}  // namespace
}  // namespace gmmcs::transport
