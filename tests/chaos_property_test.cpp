// Property-based chaos testing (DESIGN.md §13): generated fabrics and
// fault plans must satisfy the self-healing invariants; failing specs
// shrink to minimal replayable reproducers; the committed seed corpus
// replays as a regression suite; and a generated run is deterministic
// across worker counts.
//
// GMMCS_CHAOS_SEED / GMMCS_CHAOS_PLANS override the generated batch (CI
// derives the seed from the commit SHA so every push explores new plans
// while any failure stays reproducible from the logged spec).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "broker/chaos.hpp"
#include "sim/chaos_gen.hpp"

using namespace gmmcs;

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

std::string describe(const broker::ChaosOutcome& outcome) {
  std::string out;
  for (const broker::ChaosViolation& v : outcome.violations) {
    out += v.invariant + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace

TEST(ChaosSpec, SerializationRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const sim::ChaosSpec spec = sim::ChaosGen::generate(seed);
    const std::string text = spec.serialize();
    const auto back = sim::ChaosSpec::parse(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(back->serialize(), text);
    EXPECT_EQ(back->hash(), spec.hash());
  }
}

TEST(ChaosSpec, GeneratorIsPureInSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    EXPECT_EQ(sim::ChaosGen::generate(seed).serialize(),
              sim::ChaosGen::generate(seed).serialize());
  }
  // next() records the derived per-spec seed, so any spec from a stream
  // is reproducible without replaying the stream.
  sim::ChaosGen gen(7);
  gen.next();
  const sim::ChaosSpec second = gen.next();
  EXPECT_EQ(sim::ChaosGen::generate(second.seed).serialize(), second.serialize());
}

TEST(ChaosProperty, GeneratedPlansSatisfyInvariants) {
  const std::uint64_t seed = env_u64("GMMCS_CHAOS_SEED", 20260809);
  const std::uint64_t plans = env_u64("GMMCS_CHAOS_PLANS", 25);
  sim::ChaosGen gen(seed);
  for (std::uint64_t i = 0; i < plans; ++i) {
    const sim::ChaosSpec spec = gen.next();
    const broker::ChaosOutcome outcome = broker::run_chaos(spec);
    if (!outcome.ok()) {
      // Shrink before reporting: the failure message is a minimal,
      // committable reproducer (drop it into tests/chaos_seeds/).
      const sim::ChaosSpec shrunk = broker::shrink_chaos(spec);
      FAIL() << "plan " << i << " (seed " << spec.seed << ") violated:\n"
             << describe(outcome) << "minimal reproducer:\n"
             << shrunk.serialize();
    }
  }
}

TEST(ChaosProperty, SeedCorpusReplays) {
  const std::filesystem::path dir(GMMCS_CHAOS_SEED_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".spec") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no .spec files under " << dir;
  for (const auto& path : files) {
    const auto spec = sim::read_spec_file(path.string());
    ASSERT_TRUE(spec.has_value()) << path;
    const broker::ChaosOutcome outcome = broker::run_chaos(*spec);
    EXPECT_TRUE(outcome.ok()) << path << ":\n" << describe(outcome);
  }
}

TEST(ChaosProperty, DeterministicAcrossWorkerCounts) {
  const sim::ChaosSpec spec = sim::ChaosGen::generate(1234567);
  const broker::ChaosOutcome serial = broker::run_chaos(spec, {.workers = 1});
  const broker::ChaosOutcome again = broker::run_chaos(spec, {.workers = 1});
  const broker::ChaosOutcome parallel = broker::run_chaos(spec, {.workers = 8});
  EXPECT_TRUE(serial.ok()) << describe(serial);
  EXPECT_TRUE(serial.metrics == again.metrics) << "serial double-run diverged";
  EXPECT_TRUE(serial.metrics == parallel.metrics) << "workers 1 vs 8 diverged";
}

// The re-break demonstration: disable the broker-side client keepalive
// (reverting the DESIGN.md §8 ghost-record fix) and the generator finds a
// violating plan, which shrinks to a <= 3-fault minimal reproducer that
// passes again with the fix on.
TEST(ChaosProperty, RevertedGhostReapIsCaughtAndShrinks) {
  const broker::ChaosOptions broken{.ghost_reap = false};
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 200 && !found; ++seed) {
    const sim::ChaosSpec spec = sim::ChaosGen::generate(seed);
    // Pre-filter for the ghost shape (a stream-only client's host
    // crashing) before paying for a run.
    const bool shaped = std::any_of(
        spec.faults.begin(), spec.faults.end(), [&spec](const sim::ChaosFault& f) {
          return f.kind == sim::FaultPlan::FaultKind::kHostCrash &&
                 f.a.kind == sim::ChaosRefKind::kClient &&
                 spec.clients[static_cast<std::size_t>(f.a.index)].stream_only;
        });
    if (!shaped) continue;
    if (broker::run_chaos(spec, broken).ok()) continue;
    found = true;
    const sim::ChaosSpec shrunk = broker::shrink_chaos(spec, broken);
    EXPECT_LE(shrunk.faults.size(), 3u) << shrunk.serialize();
    EXPECT_FALSE(broker::run_chaos(shrunk, broken).ok())
        << "shrunk spec must still fail without the reaper";
    const broker::ChaosOutcome fixed = broker::run_chaos(shrunk);
    EXPECT_TRUE(fixed.ok()) << "keepalive reaper should heal the reproducer:\n"
                            << describe(fixed) << shrunk.serialize();
  }
  EXPECT_TRUE(found) << "no generated plan exposed the reverted ghost-record reap";
}
