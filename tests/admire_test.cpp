// Tests for the Admire community: WSDL-CI-described SOAP service,
// rendezvous negotiation, RTP agents bridging community multicast to the
// Global-MMCS broker topics.
#include <gtest/gtest.h>

#include "admire/admire.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/session_server.hpp"
#include "xgsp/wsdl_ci.hpp"

namespace gmmcs::admire {
namespace {

class AdmireTest : public ::testing::Test {
 protected:
  AdmireTest()
      : broker_node(net.add_host("broker"), 0),
        sessions(net.add_host("xgsp"), broker_node.stream_endpoint()),
        community(net.add_host("admire"), broker_node.stream_endpoint()) {}

  xgsp::Session make_session() {
    xgsp::Message created = sessions.handle(xgsp::Message::create_session(
        "intercontinental", "gcf", xgsp::SessionMode::kAdHoc,
        {{"audio", "PCMU"}, {"video", "H261"}}));
    return created.sessions.front();
  }

  sim::EventLoop loop;
  sim::Network net{loop, 61};
  broker::BrokerNode broker_node;
  xgsp::SessionServer sessions;
  AdmireCommunity community;
};

TEST_F(AdmireTest, DescriptorDescribesService) {
  xgsp::WsdlCi d = community.descriptor();
  EXPECT_EQ(d.community, "admire");
  EXPECT_EQ(d.establish_op, "GetRendezvous");
  EXPECT_EQ(d.endpoint, community.soap_endpoint());
  // Round-trips through XML for directory storage.
  auto parsed = xgsp::WsdlCi::parse(d.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().establish_op, "GetRendezvous");
}

TEST_F(AdmireTest, EstablishViaWsdlCiProxyReturnsRendezvous) {
  xgsp::Session session = make_session();
  // The interface component generated from the descriptor (paper §2.2).
  xgsp::CollaborationProxy proxy(net.add_host("gmmcs-web"), community.descriptor());
  xml::Element args("session-invite");
  args.add_child(session.to_xml());
  int rendezvous_count = 0;
  proxy.establish(std::move(args), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    rendezvous_count = static_cast<int>(r.value().children_named("rendezvous").size());
  });
  loop.run();
  EXPECT_EQ(rendezvous_count, 2);  // audio + video
  EXPECT_EQ(community.sessions_bridged(), 1u);
  ASSERT_NE(community.rendezvous_for(session.id()), nullptr);
}

TEST_F(AdmireTest, EstablishRejectsMalformedInvites) {
  xgsp::CollaborationProxy proxy(net.add_host("web"), community.descriptor());
  bool failed = false;
  proxy.establish(xml::Element("session-invite"), [&](Result<xml::Element> r) {
    failed = !r.ok();
  });
  loop.run();
  EXPECT_TRUE(failed);
}

TEST_F(AdmireTest, TerminalsExchangeMediaThroughRendezvous) {
  xgsp::Session session = make_session();
  xgsp::CollaborationProxy proxy(net.add_host("web"), community.descriptor());
  xml::Element args("session-invite");
  args.add_child(session.to_xml());
  proxy.establish(std::move(args), [](Result<xml::Element>) {});
  loop.run();

  auto t1 = community.make_terminal(net.add_host("beihang-1"), "wewu");
  auto t2 = community.make_terminal(net.add_host("beihang-2"), "student");
  ASSERT_TRUE(t1->attach(session.id()));
  ASSERT_TRUE(t2->attach(session.id()));
  int t2_got = 0;
  t2->on_media([&](const sim::Datagram&) { ++t2_got; });
  t1->send_media("video", Bytes(300, 9));
  loop.run();
  EXPECT_EQ(t2_got, 1);
  EXPECT_EQ(community.packets_uplinked(), 1u);
}

TEST_F(AdmireTest, CommunityMediaReachesGmmcsTopicAndBack) {
  xgsp::Session session = make_session();
  xgsp::CollaborationProxy proxy(net.add_host("web"), community.descriptor());
  xml::Element args("session-invite");
  args.add_child(session.to_xml());
  proxy.establish(std::move(args), [](Result<xml::Element>) {});
  loop.run();

  // Global-MMCS side: a broker-native subscriber to the video topic.
  broker::BrokerClient native(net.add_host("native"), broker_node.stream_endpoint());
  std::string topic = session.stream("video")->topic;
  native.subscribe(topic);
  int native_got = 0;
  native.on_event([&](const broker::Event&) { ++native_got; });

  auto terminal = community.make_terminal(net.add_host("beihang-1"), "wewu");
  ASSERT_TRUE(terminal->attach(session.id()));
  loop.run();

  // Admire terminal -> rendezvous -> topic -> native client. The
  // rendezvous reflects onto the community multicast group, so the sender
  // hears its own packet back too — MBONE tools filter their own SSRC.
  terminal->send_media("video", Bytes(300, 9));
  loop.run();
  EXPECT_EQ(native_got, 1);
  EXPECT_EQ(terminal->packets_received(), 1u);  // own reflection

  // Native client -> topic -> rendezvous downlink -> Admire terminal.
  native.publish(topic, Bytes(200, 5));
  loop.run();
  EXPECT_EQ(terminal->packets_received(), 2u);
  EXPECT_EQ(community.packets_downlinked(), 1u);
}

TEST_F(AdmireTest, AttachToUnbridgedSessionFails) {
  auto terminal = community.make_terminal(net.add_host("t"), "x");
  EXPECT_FALSE(terminal->attach("does-not-exist"));
}

TEST_F(AdmireTest, MembershipAndControlOperations) {
  soap::SoapClient client(net.add_host("web"), community.soap_endpoint());
  int members = -1;
  xml::Element join("SessionMembership");
  join.set_attr("user", "auyar");
  join.set_attr("action", "join");
  client.call(std::move(join), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    members = std::stoi(r.value().attr("members"));
  });
  loop.run();
  EXPECT_EQ(members, 1);
  xml::Element leave("SessionMembership");
  leave.set_attr("user", "auyar");
  leave.set_attr("action", "leave");
  client.call(std::move(leave), [&](Result<xml::Element> r) {
    ASSERT_TRUE(r.ok());
    members = std::stoi(r.value().attr("members"));
  });
  loop.run();
  EXPECT_EQ(members, 0);
  bool controlled = false;
  xml::Element ctl("SessionControl");
  ctl.add_child("mute-all");
  client.call(std::move(ctl), [&](Result<xml::Element> r) {
    controlled = r.ok() && r.value().attr("applied") == "mute-all";
  });
  loop.run();
  EXPECT_TRUE(controlled);
}

}  // namespace
}  // namespace gmmcs::admire
