// Tests for the guaranteed-delivery service: recovery buffering, NAK
// repair over lossy UDP delivery, give-up on unrecoverable holes,
// multi-publisher ordering.
#include <gtest/gtest.h>

#include <string>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/reliable.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "transport/stream.hpp"

namespace gmmcs::broker {
namespace {

class ReliableTest : public ::testing::Test {
 protected:
  ReliableTest() : node(net.add_host("broker"), 0) {}

  static constexpr const char* kTopic = "/conf/critical";
  sim::EventLoop loop;
  sim::Network net{loop, 121};
  BrokerNode node;
};

TEST_F(ReliableTest, EventsCarryPublisherId) {
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  BrokerClient sub(net.add_host("sub"), node.stream_endpoint());
  sub.subscribe(kTopic);
  ClientId seen = 0;
  sub.on_event([&](const Event& ev) { seen = ev.publisher; });
  loop.run();
  pub.publish(kTopic, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(seen, pub.id());
  EXPECT_NE(seen, 0u);
}

TEST_F(ReliableTest, RecoveryServiceBuffersBounded) {
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic,
                           /*buffer_limit=*/16);
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  for (int i = 0; i < 40; ++i) pub.publish(kTopic, Bytes(8, 0), QoS::kReliable);
  loop.run();
  EXPECT_EQ(recovery.buffered(), 16u);
}

TEST_F(ReliableTest, RepairsLossOnLossyUdpPath) {
  sim::Host& sub_host = net.add_host("sub");
  // UDP delivery to this subscriber is very lossy; streams are exempt.
  net.set_path(node.host().id(), sub_host.id(),
               sim::PathConfig{.latency = duration_us(200), .loss = 0.4});
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic);
  ReliableSubscriber sub(sub_host, node.stream_endpoint(), kTopic, recovery.endpoint());
  std::vector<std::uint32_t> seqs;
  sub.on_event([&](const Event& ev) { seqs.push_back(ev.seq); });
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    pub.publish(kTopic, Bytes(64, 0));
    loop.run_for(duration_ms(5));
  }
  loop.run_for(duration_ms(500));
  // The reliability contract is suffix delivery: from the first event the
  // subscriber ever saw, everything is delivered in order exactly once
  // (a lost *head* event is indistinguishable from a late join).
  ASSERT_GE(seqs.size(), static_cast<std::size_t>(n - 3));
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
  }
  EXPECT_EQ(seqs.size(), seqs.back() - seqs.front() + 1);
  EXPECT_GT(sub.gaps_detected(), 0u);
  EXPECT_GT(sub.recovered(), 0u);
  EXPECT_EQ(sub.events_lost(), 0u);
  EXPECT_GT(recovery.naks_served(), 0u);
}

TEST_F(ReliableTest, GivesUpOnUnrecoverableHoleAndResumes) {
  sim::Host& sub_host = net.add_host("sub");
  net.set_path(node.host().id(), sub_host.id(),
               sim::PathConfig{.latency = duration_us(200), .loss = 0.5});
  // A tiny recovery buffer that cannot hold history: old events are gone
  // by the time the NAK arrives if we delay.
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic,
                           /*buffer_limit=*/1);
  ReliableSubscriber sub(sub_host, node.stream_endpoint(), kTopic, recovery.endpoint(),
                         /*give_up=*/duration_ms(50));
  std::vector<std::uint32_t> seqs;
  sub.on_event([&](const Event& ev) { seqs.push_back(ev.seq); });
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  for (int i = 0; i < 100; ++i) {
    pub.publish(kTopic, Bytes(64, 0));
    loop.run_for(duration_ms(5));
  }
  loop.run_for(duration_s(1));
  // Some events are genuinely gone, but delivery moved past the holes
  // and order was preserved.
  EXPECT_GT(sub.events_lost(), 0u);
  EXPECT_GT(seqs.size(), 20u);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_GT(seqs[i], seqs[i - 1]);
  EXPECT_EQ(sub.delivered() + sub.events_lost(), seqs.back() - seqs.front() + 1);
}

TEST_F(ReliableTest, MultiplePublishersOrderedIndependently) {
  sim::Host& sub_host = net.add_host("sub");
  net.set_path(node.host().id(), sub_host.id(),
               sim::PathConfig{.latency = duration_us(200), .loss = 0.3});
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic);
  ReliableSubscriber sub(sub_host, node.stream_endpoint(), kTopic, recovery.endpoint());
  std::map<ClientId, std::vector<std::uint32_t>> by_pub;
  sub.on_event([&](const Event& ev) { by_pub[ev.publisher].push_back(ev.seq); });
  BrokerClient p1(net.add_host("p1"), node.stream_endpoint());
  BrokerClient p2(net.add_host("p2"), node.stream_endpoint());
  loop.run();
  for (int i = 0; i < 60; ++i) {
    p1.publish(kTopic, Bytes(32, 1));
    p2.publish(kTopic, Bytes(32, 2));
    loop.run_for(duration_ms(5));
  }
  loop.run_for(duration_ms(500));
  ASSERT_EQ(by_pub.size(), 2u);
  for (const auto& [publisher, seqs] : by_pub) {
    // Suffix delivery per publisher: contiguous and in order from the
    // first event seen.
    ASSERT_GE(seqs.size(), 58u) << "publisher " << publisher;
    for (std::size_t i = 1; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
    }
  }
}

TEST_F(ReliableTest, LateJoinerDoesNotNakHistory) {
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic);
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  for (int i = 0; i < 20; ++i) pub.publish(kTopic, Bytes(16, 0), QoS::kReliable);
  loop.run();
  ReliableSubscriber sub(net.add_host("late"), node.stream_endpoint(), kTopic,
                         recovery.endpoint());
  int got = 0;
  sub.on_event([&](const Event&) { ++got; });
  loop.run();
  pub.publish(kTopic, Bytes(16, 0), QoS::kReliable);
  loop.run();
  EXPECT_EQ(got, 1);  // only the live event, no replay of history
  EXPECT_EQ(sub.gaps_detected(), 0u);
}

TEST_F(ReliableTest, TailLossAcrossLinkFlapRepairedViaSync) {
  // The broker->subscriber path flaps while the publisher keeps going,
  // then the publisher stops: the trailing events can only be revealed by
  // a SYNC probe (no later event would ever expose the gap) and repaired
  // through the recovery service's independent NAK stream.
  sim::Host& sub_host = net.add_host("sub");
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic);
  ReliableSubscriber sub(sub_host, node.stream_endpoint(), kTopic, recovery.endpoint());
  std::vector<std::uint32_t> seqs;
  sub.on_event([&](const Event& ev) { seqs.push_back(ev.seq); });
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();

  sim::FaultPlan plan;
  const SimTime flap_start = loop.now() + duration_ms(200);
  plan.flap_link(node.host().id(), sub_host.id(), flap_start, flap_start + duration_ms(300));
  plan.install(net);
  // 50 events at 5 ms spacing: the last ~10 fall inside the flap window
  // and beyond, so the tail is lost on the UDP path.
  for (int i = 0; i < 50; ++i) {
    pub.publish(kTopic, Bytes(64, 0));
    loop.run_for(duration_ms(5));
  }
  loop.run_for(duration_s(1));
  // Suffix contract holds across the flap: contiguous, nothing lost.
  ASSERT_FALSE(seqs.empty());
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
  EXPECT_EQ(seqs.back(), 49u);
  EXPECT_EQ(sub.events_lost(), 0u);
  EXPECT_GT(sub.recovered(), 0u);
  EXPECT_GT(recovery.naks_served(), 0u);
  EXPECT_EQ(recovery.retransmissions(), sub.recovered());
}

TEST_F(ReliableTest, NakRangeClampedToBoundedBuffer) {
  // A NAK asking for more history than the bounded buffer holds must be
  // answered with exactly the surviving events, not fault or replay junk.
  RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), kTopic,
                           /*buffer_limit=*/16);
  BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  for (int i = 0; i < 40; ++i) pub.publish(kTopic, Bytes(8, 0), QoS::kReliable);
  loop.run();
  ASSERT_EQ(recovery.buffered(), 16u);  // seqs 24..39 survive

  auto nak = transport::StreamConnection::connect(net.add_host("nakker"), recovery.endpoint());
  std::vector<std::uint32_t> replayed;
  nak->on_message([&](const Payload& data) {
    auto frame = decode(data);
    if (frame.ok() && frame.value().type == MessageType::kEvent) {
      replayed.push_back(frame.value().event.seq);
    }
  });
  nak->send("NAK " + std::to_string(pub.id()) + " 0 39");
  loop.run();
  ASSERT_EQ(replayed.size(), 16u);
  EXPECT_EQ(replayed.front(), 24u);
  EXPECT_EQ(replayed.back(), 39u);
  EXPECT_EQ(recovery.retransmissions(), 16u);
  EXPECT_EQ(recovery.naks_served(), 1u);
}

}  // namespace
}  // namespace gmmcs::broker
