// Coverage for smaller paths not exercised elsewhere: sim utilities,
// dispatch cost math, RTP session management, SIP/gatekeeper edges, SOAP
// reconnects, XGSP floor queueing over the broker.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "h323/gatekeeper.hpp"
#include "h323/terminal.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sip/endpoint.hpp"
#include "sip/proxy.hpp"
#include "soap/soap.hpp"
#include "xgsp/client.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs {
namespace {

TEST(SimMisc, PeriodicTaskStartAfterPhase) {
  sim::EventLoop loop;
  std::vector<std::int64_t> at;
  sim::PeriodicTask task(loop, duration_ms(10),
                         [&](std::uint64_t) { at.push_back(loop.now().ns()); });
  task.start_after(duration_ms(3));
  loop.run_until(SimTime{duration_ms(25).ns()});
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], duration_ms(3).ns());
  EXPECT_EQ(at[1], duration_ms(13).ns());
  EXPECT_TRUE(task.running());
  task.stop();
  EXPECT_FALSE(task.running());
  EXPECT_THROW(sim::PeriodicTask(loop, SimDuration{0}, [](std::uint64_t) {}),
               std::invalid_argument);
}

TEST(SimMisc, NicBacklogDelayReflectsQueuedBytes) {
  sim::EventLoop loop;
  sim::Network net(loop, 1);
  sim::Host& a = net.add_host("a", sim::NicConfig{.egress_bps = 8e6, .overhead_bytes = 0});
  sim::Host& b = net.add_host("b");
  EXPECT_EQ(a.nic_backlog_delay().ns(), 0);
  for (int i = 0; i < 4; ++i) a.send(sim::Endpoint{b.id(), 1}, 2, Bytes(1000, 0));
  // 4 x 1ms serialization queued.
  EXPECT_EQ(a.nic_backlog_delay().ms(), 4);
  loop.run();
  EXPECT_EQ(a.nic_backlog_delay().ns(), 0);
  EXPECT_EQ(a.nic_queued_bytes(), 0u);
}

TEST(SimMisc, EventLoopExecutedCounter) {
  sim::EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule_after(duration_ms(i), [] {});
  loop.run();
  EXPECT_EQ(loop.executed(), 5u);
  EXPECT_FALSE(loop.step());
}

TEST(DispatchCost, CopyCostComposition) {
  broker::DispatchConfig cfg;
  cfg.copy_fixed = duration_us(8);
  cfg.copy_per_kb = duration_us(22);
  EXPECT_EQ(cfg.copy_cost(0).ns(), duration_us(8).ns());
  EXPECT_EQ(cfg.copy_cost(1024).ns(), duration_us(30).ns());
  EXPECT_EQ(cfg.copy_cost(512).ns(), duration_us(19).ns());
  // Unoptimized is strictly more expensive at every size.
  auto opt = broker::DispatchConfig::optimized();
  auto naive = broker::DispatchConfig::unoptimized();
  for (std::size_t size : {0u, 160u, 960u, 4096u}) {
    EXPECT_GT(naive.copy_cost(size).ns(), opt.copy_cost(size).ns()) << size;
  }
}

TEST(RtpSessionMisc, DestinationManagement) {
  sim::EventLoop loop;
  sim::Network net(loop, 3);
  sim::Host& a = net.add_host("a");
  rtp::RtpSession tx(a, {.ssrc = 1});
  tx.add_destination({9, 100});
  tx.add_destination({9, 100});  // duplicate ignored
  tx.add_destination({9, 200});
  EXPECT_EQ(tx.destinations().size(), 2u);
  tx.clear_destinations();
  EXPECT_TRUE(tx.destinations().empty());
  // Sending with no destinations still feeds the tap.
  int tapped = 0;
  tx.on_send([&](const Payload&) { ++tapped; });
  tx.send_media(Bytes(10, 0), 0);
  EXPECT_EQ(tapped, 1);
  EXPECT_EQ(tx.packets_sent(), 1u);
}

TEST(SipMisc, UnregisteredCalleeAfterUnregister) {
  sim::EventLoop loop;
  sim::Network net(loop, 5);
  sip::SipProxy proxy(net.add_host("proxy"));
  sip::SipEndpoint alice(net.add_host("alice"), "sip:alice@x", proxy.endpoint());
  sip::SipEndpoint bob(net.add_host("bob"), "sip:bob@y", proxy.endpoint());
  alice.register_with_proxy([](bool) {});
  bob.register_with_proxy([](bool) {});
  loop.run();
  bob.unregister([](bool) {});
  loop.run();
  bool ok = true;
  alice.invite("sip:bob@y", sip::Sdp{}, [&](bool r, const sip::SipEndpoint::Call&) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
}

TEST(SipMisc, ByeWithoutCallFails) {
  sim::EventLoop loop;
  sim::Network net(loop, 5);
  sip::SipProxy proxy(net.add_host("proxy"));
  sip::SipEndpoint alice(net.add_host("alice"), "sip:alice@x", proxy.endpoint());
  bool ok = true;
  alice.bye([&](bool r) { ok = r; });
  EXPECT_FALSE(ok);
}

TEST(GatekeeperMisc, UnknownDirectDestinationRejected) {
  sim::EventLoop loop;
  sim::Network net(loop, 7);
  h323::Gatekeeper gk(net.add_host("gk"));
  h323::H323Terminal t(net.add_host("t"), "t1", gk.ras_endpoint());
  t.register_endpoint([](bool) {});
  loop.run();
  bool ok = true;
  t.call("nonexistent-terminal", 100, {}, [&](bool r, const h323::H323Terminal::MediaTargets&) {
    ok = r;
  });
  loop.run();
  EXPECT_FALSE(ok);
  EXPECT_NE(t.last_reject_reason().find("unknown destination"), std::string::npos);
}

TEST(GatekeeperMisc, DirectTerminalToTerminalResolution) {
  sim::EventLoop loop;
  sim::Network net(loop, 7);
  h323::Gatekeeper gk(net.add_host("gk"));
  h323::H323Terminal t1(net.add_host("t1"), "alpha", gk.ras_endpoint());
  h323::H323Terminal t2(net.add_host("t2"), "beta", gk.ras_endpoint());
  t1.register_endpoint([](bool) {});
  t2.register_endpoint([](bool) {});
  loop.run();
  // Admission toward a registered alias resolves to its call signal addr.
  EXPECT_TRUE(gk.resolve("beta").has_value());
  EXPECT_EQ(gk.registrations(), 2u);
}

TEST(SoapMisc, TwoClientsShareOneServer) {
  sim::EventLoop loop;
  sim::Network net(loop, 9);
  soap::SoapServer server(net.add_host("server"), 8080);
  server.register_operation("Ping", [](const xml::Element&) -> Result<xml::Element> {
    return xml::Element("Pong");
  });
  soap::SoapClient c1(net.add_host("c1"), server.endpoint());
  soap::SoapClient c2(net.add_host("c2"), server.endpoint());
  int pongs = 0;
  for (auto* c : {&c1, &c2}) {
    c->call(xml::Element("Ping"), [&](Result<xml::Element> r) {
      if (r.ok() && r.value().name() == "Pong") ++pongs;
    });
  }
  loop.run();
  EXPECT_EQ(pongs, 2);
  EXPECT_EQ(server.calls(), 2u);
}

TEST(XgspMisc, FloorQueueAcrossRemoteClients) {
  sim::EventLoop loop;
  sim::Network net(loop, 11);
  broker::BrokerNode node(net.add_host("broker"), 0);
  xgsp::SessionServer server(net.add_host("xgsp"), node.stream_endpoint());
  xgsp::XgspClient a(net.add_host("a"), node.stream_endpoint(), "a");
  xgsp::XgspClient b(net.add_host("b"), node.stream_endpoint(), "b");
  std::string sid;
  a.create_session("floor", xgsp::SessionMode::kAdHoc, {}, [&](const xgsp::Message& r) {
    sid = r.sessions.front().id();
  });
  loop.run();
  a.join(sid, [](const xgsp::Message&) {});
  b.join(sid, [](const xgsp::Message&) {});
  loop.run();
  std::string holder_after_a, holder_after_b, holder_after_release;
  std::vector<std::string> queue_after_b;
  a.request_floor(sid, [&](const xgsp::Message& r) { holder_after_a = r.floor_holder; });
  loop.run();
  b.request_floor(sid, [&](const xgsp::Message& r) {
    holder_after_b = r.floor_holder;
    queue_after_b = r.floor_queue;
  });
  loop.run();
  EXPECT_EQ(holder_after_a, "a");
  EXPECT_EQ(holder_after_b, "a");
  ASSERT_EQ(queue_after_b.size(), 1u);
  EXPECT_EQ(queue_after_b[0], "b");
  a.release_floor(sid, [&](const xgsp::Message& r) { holder_after_release = r.floor_holder; });
  loop.run();
  EXPECT_EQ(holder_after_release, "b");
}

TEST(BrokerMisc, StreamOnlyClientReceivesEverythingOverStream) {
  sim::EventLoop loop;
  sim::Network net(loop, 13);
  sim::Host& bh = net.add_host("broker");
  sim::Host& sh = net.add_host("sub");
  broker::BrokerNode node(bh, 0);
  // Even best-effort events go over the stream when the client opted out
  // of UDP delivery — so a fully lossy UDP path doesn't matter.
  net.set_path(bh.id(), sh.id(), sim::PathConfig{.latency = duration_us(100), .loss = 0.0});
  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  broker::BrokerClient sub(sh, node.stream_endpoint(),
                           broker::BrokerClient::Config{.udp_delivery = false});
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const broker::Event&) { ++got; });
  loop.run();
  for (int i = 0; i < 10; ++i) pub.publish("/t", Bytes(100, 0));
  loop.run();
  EXPECT_EQ(got, 10);
}

TEST(BrokerMisc, PublisherSubscriberDoesNotHearItself) {
  sim::EventLoop loop;
  sim::Network net(loop, 15);
  broker::BrokerNode node(net.add_host("broker"), 0);
  broker::BrokerClient self(net.add_host("self"), node.stream_endpoint());
  broker::BrokerClient other(net.add_host("other"), node.stream_endpoint());
  self.subscribe("/t");
  other.subscribe("/t");
  int self_got = 0, other_got = 0;
  self.on_event([&](const broker::Event&) { ++self_got; });
  other.on_event([&](const broker::Event&) { ++other_got; });
  loop.run();
  // Over UDP (media path) and over the stream (reliable path).
  self.publish("/t", Bytes(10, 0), broker::QoS::kBestEffort);
  self.publish("/t", Bytes(10, 0), broker::QoS::kReliable);
  loop.run();
  EXPECT_EQ(self_got, 0);
  EXPECT_EQ(other_got, 2);
}

TEST(StatsMisc, RunningStatsSumAndSingleValue) {
  RunningStats s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.sum(), 7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), s.max());
}

}  // namespace
}  // namespace gmmcs
