// Zero-copy certification for the routed-event payload plane (DESIGN.md §15).
//
// The claim the copy-discipline lint pass (gmmcs-lint pass 8) exists to
// protect: a routed event's bytes are allocated exactly once — the wire
// frame built at the publishing client — and every hop from there to the
// last of 400 subscribers shares that buffer by refcount. Three
// independent instruments certify it on a warmed broker:
//
//   - payload_copy_count()/payload_bytes_copied(): the counted escape
//     hatches (Payload::copy_of / to_bytes) must not fire at all.
//   - event_encode_count(): exactly one kEvent serialization
//     process-wide (the broker adopts the publisher's frame).
//   - a counting global operator new: exactly one allocation of
//     payload size or larger — the frame itself. Fan-out to 400
//     subscribers adds zero.
//
// Own binary because it replaces global new/delete (like small_fn_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/event.hpp"
#include "common/payload.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace {

// Any single allocation this large is assumed to be a payload buffer:
// the sim's bookkeeping (deque blocks, hash nodes, topic strings) stays
// well under it, and the event payload is chosen well over it.
constexpr std::size_t kLargeAlloc = 4096;
constexpr std::size_t kPayloadBytes = 8192;

std::atomic<std::uint64_t> g_large_allocs{0};

}  // namespace

// Counting global new/delete: the test binary is single-process and the
// counter only ever diffed around deterministic single-threaded regions.
void* operator new(std::size_t size) {
  if (size >= kLargeAlloc) g_large_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace gmmcs::broker {
namespace {

TEST(ZeroCopyCert, WarmedFanoutTo400SubscribersAllocatesThePayloadOnce) {
  sim::EventLoop loop;
  sim::Network net{loop, 21};

  sim::Host& bh = net.add_host("broker");
  BrokerNode broker(bh, 0);
  BrokerClient pub(net.add_host("pub"), broker.stream_endpoint());
  std::vector<std::unique_ptr<BrokerClient>> subs;
  int got = 0;
  for (int i = 0; i < 400; ++i) {
    subs.push_back(std::make_unique<BrokerClient>(
        net.add_host("s" + std::to_string(i)), broker.stream_endpoint()));
    subs.back()->subscribe("/t");
    subs.back()->on_event([&](const Event& ev) {
      if (ev.payload.size() == kPayloadBytes) ++got;
    });
  }
  loop.run();

  // Warm rounds: grow the loop's job queues, the broker's subscription
  // index, and every stream's buffers to steady-state size so the
  // measured round sees only the traffic itself.
  for (int round = 0; round < 2; ++round) {
    pub.publish("/t", Bytes(kPayloadBytes, 0x5a));
    loop.run();
  }
  got = 0;

  // Build the payload before sampling so its own buffer isn't charged
  // to the measured region (it is moved, not copied, into the Payload).
  Bytes body(kPayloadBytes, 0x5a);
  const std::uint64_t copies0 = payload_copy_count();
  const std::uint64_t bytes0 = payload_bytes_copied();
  const std::uint64_t enc0 = event_encode_count();
  const std::uint64_t large0 = g_large_allocs.load(std::memory_order_relaxed);
  const std::uint64_t delivered0 = broker.copies_delivered();

  pub.publish("/t", std::move(body));
  loop.run();

  EXPECT_EQ(got, 400);
  EXPECT_EQ(broker.copies_delivered() - delivered0, 400u);
  // Zero deep copies publish→delivery: the escape hatches never fired...
  EXPECT_EQ(payload_copy_count() - copies0, 0u);
  EXPECT_EQ(payload_bytes_copied() - bytes0, 0u);
  // ...the frame was serialized once, at the publishing client...
  EXPECT_EQ(event_encode_count() - enc0, 1u);
  // ...and that serialization is the only payload-sized allocation in
  // the whole process. 400 deliveries cost refcount bumps, not buffers.
  EXPECT_EQ(g_large_allocs.load(std::memory_order_relaxed) - large0, 1u);
}

TEST(ZeroCopyCert, InstrumentationIsLive) {
  // Guard against a vacuous certification: prove the counters actually
  // fire when a deep copy does happen.
  const std::uint64_t copies0 = payload_copy_count();
  const std::uint64_t bytes0 = payload_bytes_copied();
  const std::uint64_t large0 = g_large_allocs.load(std::memory_order_relaxed);

  Bytes original(kPayloadBytes, 0x5a);
  Payload p = Payload::copy_of(original);
  Bytes back = p.to_bytes();

  EXPECT_EQ(payload_copy_count() - copies0, 2u);
  EXPECT_EQ(payload_bytes_copied() - bytes0, 2u * kPayloadBytes);
  EXPECT_GE(g_large_allocs.load(std::memory_order_relaxed) - large0, 2u);
  EXPECT_EQ(back.size(), original.size());
}

}  // namespace
}  // namespace gmmcs::broker
