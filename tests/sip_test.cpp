// Tests for the SIP stack: message/SDP codecs, registrar/proxy routing,
// UA call flows, the SIP<->XGSP gateway media bridge, IM/chat, presence.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sip/endpoint.hpp"
#include "sip/gateway.hpp"
#include "sip/im.hpp"
#include "sip/message.hpp"
#include "sip/proxy.hpp"
#include "sip/sdp.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::sip {
namespace {

TEST(SipUriParse, Basics) {
  auto u = SipUri::parse("sip:alice@iu.edu");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().user, "alice");
  EXPECT_EQ(u.value().host, "iu.edu");
  EXPECT_EQ(u.value().to_string(), "sip:alice@iu.edu");
  EXPECT_FALSE(SipUri::parse("alice@iu.edu").ok());
  EXPECT_FALSE(SipUri::parse("sip:aliceiu.edu").ok());
  EXPECT_FALSE(SipUri::parse("sip:@host").ok());
}

TEST(SipMessageCodec, RequestRoundTrip) {
  SipMessage req = SipMessage::request("INVITE", "sip:bob@syr.edu", "sip:alice@iu.edu",
                                       "sip:bob@syr.edu", "call-77", 3);
  req.set_header("Contact", "sim:4:5060");
  req.body = "v=0\r\n";
  auto r = SipMessage::parse(req.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_request);
  EXPECT_EQ(r.value().method, "INVITE");
  EXPECT_EQ(r.value().request_uri, "sip:bob@syr.edu");
  EXPECT_EQ(r.value().call_id(), "call-77");
  EXPECT_EQ(r.value().cseq_number(), 3u);
  EXPECT_EQ(r.value().cseq_method(), "INVITE");
  EXPECT_EQ(r.value().from_uri(), "sip:alice@iu.edu");
  EXPECT_EQ(r.value().body, "v=0\r\n");
}

TEST(SipMessageCodec, ResponseRoundTripAndEcho) {
  SipMessage req = SipMessage::request("BYE", "sip:x@y", "sip:a@b", "sip:x@y", "c1", 9);
  SipMessage resp = SipMessage::response(req, 200, "OK");
  auto r = SipMessage::parse(resp.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().is_request);
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().call_id(), "c1");
  EXPECT_EQ(r.value().cseq_method(), "BYE");
}

TEST(SipMessageCodec, HeaderNamesCaseInsensitive) {
  SipMessage m;
  m.set_header("Call-ID", "x");
  EXPECT_EQ(m.header("call-id"), "x");
  m.set_header("CALL-ID", "y");
  EXPECT_EQ(m.header("Call-ID"), "y");
  EXPECT_EQ(m.headers.size(), 1u);
}

TEST(SipMessageCodec, RejectsMalformed) {
  EXPECT_FALSE(SipMessage::parse("garbage").ok());
  EXPECT_FALSE(SipMessage::parse("INVITE sip:x@y\r\n\r\n").ok());
  EXPECT_FALSE(SipMessage::parse("INVITE sip:x@y SIP/2.0\r\nBadHeader\r\n\r\n").ok());
}

TEST(SipMessageCodec, StripAddress) {
  EXPECT_EQ(strip_address("<sip:a@b>;tag=zz"), "sip:a@b");
  EXPECT_EQ(strip_address("sip:a@b;tag=zz"), "sip:a@b");
  EXPECT_EQ(strip_address("  sip:a@b  "), "sip:a@b");
}

TEST(SdpCodec, RoundTrip) {
  Sdp sdp;
  sdp.origin_user = "alice";
  sdp.address = 7;
  sdp.media.push_back({"audio", 4000, 0, "PCMU/8000"});
  sdp.media.push_back({"video", 4002, 31, "H261/90000"});
  auto r = Sdp::parse(sdp.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().address, 7u);
  ASSERT_EQ(r.value().media.size(), 2u);
  EXPECT_EQ(r.value().media[1].codec, "H261/90000");
  auto ep = r.value().media_endpoint("video");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->port, 4002);
}

TEST(SdpCodec, RejectsMalformed) {
  EXPECT_FALSE(Sdp::parse("no sdp here").ok());
  EXPECT_FALSE(Sdp::parse("v=0\r\nc=IN SIM\r\n").ok());
  EXPECT_FALSE(Sdp::parse("v=0\r\nm=audio\r\n").ok());
}

TEST(Contact, RoundTrip) {
  auto ep = parse_contact(make_contact({9, 5060}));
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep.value().node, 9u);
  EXPECT_EQ(ep.value().port, 5060);
  EXPECT_TRUE(parse_contact("<sim:1:2>").ok());
  EXPECT_FALSE(parse_contact("sip:1:2").ok());
}

class SipTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 31};
};

TEST_F(SipTest, RegisterAndLookup) {
  SipProxy proxy(net.add_host("proxy"));
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  bool ok = false;
  alice.register_with_proxy([&](bool r) { ok = r; });
  loop.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(proxy.registrations(), 1u);
  auto binding = proxy.lookup("sip:alice@iu.edu");
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->node, alice.agent().endpoint().node);
  // Unregister clears the binding.
  alice.unregister([&](bool r) { ok = r; });
  loop.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(proxy.registrations(), 0u);
}

TEST_F(SipTest, EndToEndCallThroughProxy) {
  SipProxy proxy(net.add_host("proxy"));
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  SipEndpoint bob(net.add_host("bob"), "sip:bob@syr.edu", proxy.endpoint());
  alice.register_with_proxy([](bool) {});
  bob.register_with_proxy([](bool) {});
  loop.run();
  bob.on_invite([&](const std::string& from, const Sdp& offer) -> std::optional<Sdp> {
    EXPECT_EQ(from, "sip:alice@iu.edu");
    EXPECT_EQ(offer.media.size(), 1u);
    Sdp answer;
    answer.address = 99;
    answer.media.push_back({"audio", 6000, 0, "PCMU/8000"});
    return answer;
  });
  Sdp offer;
  offer.address = 5;
  offer.media.push_back({"audio", 5004, 0, "PCMU/8000"});
  bool established = false;
  alice.invite("sip:bob@syr.edu", offer, [&](bool ok, const SipEndpoint::Call& call) {
    established = ok;
    EXPECT_EQ(call.remote_sdp.address, 99u);
  });
  loop.run();
  ASSERT_TRUE(established);
  ASSERT_TRUE(alice.active_call().has_value());
  ASSERT_TRUE(bob.active_call().has_value());
  // Teardown.
  bool bye_ok = false;
  alice.bye([&](bool ok) { bye_ok = ok; });
  loop.run();
  EXPECT_TRUE(bye_ok);
  EXPECT_FALSE(alice.active_call().has_value());
  EXPECT_FALSE(bob.active_call().has_value());
}

TEST_F(SipTest, CallToUnregisteredUserFails) {
  SipProxy proxy(net.add_host("proxy"));
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  alice.register_with_proxy([](bool) {});
  loop.run();
  int status_ok = -1;
  alice.invite("sip:ghost@nowhere", Sdp{}, [&](bool ok, const SipEndpoint::Call&) {
    status_ok = ok ? 1 : 0;
  });
  loop.run();
  EXPECT_EQ(status_ok, 0);
  EXPECT_EQ(proxy.rejected(), 1u);
}

TEST_F(SipTest, CalleeCanReject) {
  SipProxy proxy(net.add_host("proxy"));
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  SipEndpoint bob(net.add_host("bob"), "sip:bob@syr.edu", proxy.endpoint());
  alice.register_with_proxy([](bool) {});
  bob.register_with_proxy([](bool) {});
  loop.run();
  bob.on_invite([](const std::string&, const Sdp&) { return std::nullopt; });
  bool ok = true;
  alice.invite("sip:bob@syr.edu", Sdp{}, [&](bool r, const SipEndpoint::Call&) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
}

TEST_F(SipTest, InstantMessageDirect) {
  SipProxy proxy(net.add_host("proxy"));
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  SipEndpoint bob(net.add_host("bob"), "sip:bob@syr.edu", proxy.endpoint());
  alice.register_with_proxy([](bool) {});
  bob.register_with_proxy([](bool) {});
  loop.run();
  std::string got_from, got_text;
  bob.on_message([&](const std::string& from, const std::string& text) {
    got_from = from;
    got_text = text;
  });
  bool delivered = false;
  alice.send_message("sip:bob@syr.edu", "hi bob", [&](bool ok) { delivered = ok; });
  loop.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(got_from, "sip:alice@iu.edu");
  EXPECT_EQ(got_text, "hi bob");
}

TEST_F(SipTest, ChatRoomFanout) {
  sim::Host& server_host = net.add_host("server");
  SipProxy proxy(server_host);
  ChatServer chat(server_host);
  proxy.add_domain_route(ChatServer::kDomain, chat.endpoint());
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  SipEndpoint bob(net.add_host("bob"), "sip:bob@syr.edu", proxy.endpoint());
  SipEndpoint carol(net.add_host("carol"), "sip:carol@anl.gov", proxy.endpoint());
  std::string room = ChatServer::room_uri("grid-forum");
  for (auto* ep : {&alice, &bob, &carol}) {
    ep->register_with_proxy([](bool) {});
    ep->send_message(room, "/join", [](bool) {});
  }
  loop.run();
  EXPECT_EQ(chat.member_count("grid-forum"), 3u);
  std::vector<std::string> bob_got, carol_got, alice_got;
  alice.on_message([&](const std::string&, const std::string& t) { alice_got.push_back(t); });
  bob.on_message([&](const std::string&, const std::string& t) { bob_got.push_back(t); });
  carol.on_message([&](const std::string&, const std::string& t) { carol_got.push_back(t); });
  alice.send_message(room, "hello everyone", [](bool) {});
  loop.run();
  ASSERT_EQ(bob_got.size(), 1u);
  EXPECT_EQ(bob_got[0], "sip:alice@iu.edu: hello everyone");
  EXPECT_EQ(carol_got.size(), 1u);
  EXPECT_TRUE(alice_got.empty());  // no echo to the sender
  // Leave stops delivery.
  bob.send_message(room, "/leave", [](bool) {});
  loop.run();
  carol.send_message(room, "bob gone?", [](bool) {});
  loop.run();
  EXPECT_EQ(bob_got.size(), 1u);
  EXPECT_EQ(alice_got.size(), 1u);
}

TEST_F(SipTest, ChatRequiresMembership) {
  sim::Host& server_host = net.add_host("server");
  SipProxy proxy(server_host);
  ChatServer chat(server_host);
  proxy.add_domain_route(ChatServer::kDomain, chat.endpoint());
  SipEndpoint mallory(net.add_host("mallory"), "sip:mallory@x", proxy.endpoint());
  mallory.register_with_proxy([](bool) {});
  loop.run();
  mallory.send_message(ChatServer::room_uri("nope"), "/join", [](bool) {});
  loop.run();
  bool ok = true;
  mallory.send_message(ChatServer::room_uri("other"), "sneaky", [&](bool r) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
}

TEST_F(SipTest, PresenceNotifications) {
  SipProxy proxy(net.add_host("proxy"));
  SipEndpoint watcher(net.add_host("watcher"), "sip:w@x", proxy.endpoint());
  SipEndpoint target(net.add_host("target"), "sip:t@y", proxy.endpoint());
  watcher.register_with_proxy([](bool) {});
  loop.run();
  std::vector<std::string> statuses;
  watcher.subscribe_presence("sip:t@y", [&](const std::string& s) { statuses.push_back(s); });
  loop.run();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], "closed");  // immediate NOTIFY: not registered yet
  target.register_with_proxy([](bool) {});
  loop.run();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[1], "open");
  target.unregister([](bool) {});
  loop.run();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[2], "closed");
}

class SipGatewayTest : public ::testing::Test {
 protected:
  SipGatewayTest()
      : broker_node(net.add_host("broker"), 0),
        sessions(net.add_host("xgsp"), broker_node.stream_endpoint()),
        gw_host(net.add_host("gateway")),
        gateway(gw_host, sessions, broker_node.stream_endpoint()),
        proxy(net.add_host("proxy")) {
    proxy.add_domain_route("gmmcs", gateway.endpoint());
  }
  sim::EventLoop loop;
  sim::Network net{loop, 37};
  broker::BrokerNode broker_node;
  xgsp::SessionServer sessions;
  sim::Host& gw_host;
  SipGateway gateway;
  SipProxy proxy;
};

TEST_F(SipGatewayTest, InviteJoinsXgspSessionAndBridgesMedia) {
  // An XGSP session already exists (created by the web server, say).
  xgsp::Message created = sessions.handle(xgsp::Message::create_session(
      "bridge-test", "gcf", xgsp::SessionMode::kAdHoc, {{"video", "H261"}}));
  std::string sid = created.sessions.front().id();

  // A broker-native participant subscribed to the video topic.
  broker::BrokerClient native(net.add_host("native"), broker_node.stream_endpoint());
  std::string topic = created.sessions.front().stream("video")->topic;
  native.subscribe(topic);
  media::MediaProbe native_probe(90000);
  native.on_event(
      [&](const broker::Event& ev) { native_probe.on_wire(ev.payload, loop.now()); });

  // The SIP caller with an RTP session.
  sim::Host& alice_host = net.add_host("alice");
  SipEndpoint alice(alice_host, "sip:alice@iu.edu", proxy.endpoint());
  rtp::RtpSession alice_rtp(alice_host, {.ssrc = 500, .payload_type = 31});
  alice.register_with_proxy([](bool) {});
  loop.run();

  Sdp offer;
  offer.address = alice_host.id();
  offer.media.push_back({"video", alice_rtp.local().port, 31, "H261/90000"});
  bool ok = false;
  Sdp answer;
  alice.invite(SipGateway::conference_uri(sid), offer,
               [&](bool success, const SipEndpoint::Call& call) {
                 ok = success;
                 answer = call.remote_sdp;
               });
  loop.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(gateway.active_calls(), 1u);
  EXPECT_TRUE(sessions.find(sid)->has_member("sip:alice@iu.edu"));
  auto gw_video = answer.media_endpoint("video");
  ASSERT_TRUE(gw_video.has_value());

  // Alice sends RTP to the gateway's answered endpoint -> broker topic ->
  // the native subscriber.
  alice_rtp.add_destination(*gw_video);
  for (int i = 0; i < 5; ++i) alice_rtp.send_media(Bytes(200, 1), 100 * i);
  loop.run();
  EXPECT_EQ(native_probe.stats().received(), 5u);

  // And media published by the native client reaches Alice's RTP session.
  rtp::RtpPacket pkt;
  pkt.ssrc = 900;
  pkt.payload_type = 31;
  pkt.payload = Bytes(150, 2);
  native.publish(topic, pkt.serialize());
  loop.run();
  EXPECT_EQ(alice_rtp.source_stats(900).received(), 1u);

  // BYE leaves the session and stops fan-out to Alice.
  bool bye_ok = false;
  alice.bye([&](bool r) { bye_ok = r; });
  loop.run();
  EXPECT_TRUE(bye_ok);
  EXPECT_FALSE(sessions.find(sid)->has_member("sip:alice@iu.edu"));
  native.publish(topic, pkt.serialize());
  loop.run();
  EXPECT_EQ(alice_rtp.source_stats(900).received(), 1u);  // unchanged
}

TEST_F(SipGatewayTest, InviteToUnknownSessionRejected) {
  SipEndpoint alice(net.add_host("alice"), "sip:alice@iu.edu", proxy.endpoint());
  alice.register_with_proxy([](bool) {});
  loop.run();
  bool ok = true;
  alice.invite(SipGateway::conference_uri("404"), Sdp{},
               [&](bool r, const SipEndpoint::Call&) { ok = r; });
  loop.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(gateway.active_calls(), 0u);
}

}  // namespace
}  // namespace gmmcs::sip
