// Tests for the Access Grid integration: venues, MBONE tools on
// multicast, and the venue<->session bridge.
#include <gtest/gtest.h>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "core/accessgrid.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::core {
namespace {

class AccessGridTest : public ::testing::Test {
 protected:
  AccessGridTest()
      : broker_node(net.add_host("broker"), 0),
        sessions(net.add_host("xgsp"), broker_node.stream_endpoint()),
        venue(net, "ANL-lobby") {}

  xgsp::Session make_session() {
    xgsp::Message created = sessions.handle(xgsp::Message::create_session(
        "ag-session", "gcf", xgsp::SessionMode::kAdHoc, {{"audio", "PCMU"}, {"video", "H261"}}));
    return created.sessions.front();
  }

  sim::EventLoop loop;
  sim::Network net{loop, 91};
  broker::BrokerNode broker_node;
  xgsp::SessionServer sessions;
  AccessGridVenue venue;
};

TEST_F(AccessGridTest, VenueHasGroupsPerKind) {
  EXPECT_NE(venue.group("audio"), venue.group("video"));
  EXPECT_EQ(venue.kinds().size(), 2u);
  EXPECT_THROW(static_cast<void>(venue.group("slides")), std::invalid_argument);
}

TEST_F(AccessGridTest, ToolsExchangeMediaOverMulticast) {
  MboneTool vic1(net.add_host("vic1"), venue);
  MboneTool vic2(net.add_host("vic2"), venue);
  MboneTool rat1(net.add_host("rat1"), venue);
  int vic2_got = 0;
  vic2.on_media([&](const sim::Datagram&) { ++vic2_got; });
  vic1.send_media("video", Bytes(400, 1));
  loop.run();
  EXPECT_EQ(vic2_got, 1);
  EXPECT_EQ(rat1.packets_received(), 1u);  // tools join all venue groups
  EXPECT_EQ(vic1.packets_received(), 0u);  // multicast does not self-loop
}

TEST_F(AccessGridTest, ToolLeavesGroupsOnDestruction) {
  MboneTool vic1(net.add_host("vic1"), venue);
  {
    MboneTool vic2(net.add_host("vic2"), venue);
    vic1.send_media("video", Bytes(10, 0));
    loop.run();
    EXPECT_EQ(vic2.packets_received(), 1u);
  }
  vic1.send_media("video", Bytes(10, 0));
  loop.run();  // no dangling delivery
  EXPECT_EQ(net.group_size(venue.group("video")), 1u);
}

TEST_F(AccessGridTest, BridgeConnectsVenueToSessionTopics) {
  xgsp::Session session = make_session();
  AccessGridBridge bridge(net.add_host("ag-bridge"), broker_node.stream_endpoint(), venue,
                          session);
  EXPECT_EQ(bridge.bridged_kinds(), 2u);

  MboneTool vic(net.add_host("vic"), venue);
  broker::BrokerClient native(net.add_host("native"), broker_node.stream_endpoint());
  native.subscribe(session.stream("video")->topic);
  int native_got = 0;
  native.on_event([&](const broker::Event&) { ++native_got; });
  loop.run();

  // vic -> venue multicast -> bridge -> topic -> native client.
  vic.send_media("video", Bytes(500, 7));
  loop.run();
  EXPECT_EQ(native_got, 1);
  EXPECT_EQ(bridge.uplinked(), 1u);

  // native client -> topic -> bridge -> venue multicast -> vic.
  native.publish(session.stream("video")->topic, Bytes(300, 8));
  loop.run();
  EXPECT_EQ(vic.packets_received(), 1u);
  EXPECT_EQ(bridge.downlinked(), 1u);
}

TEST_F(AccessGridTest, BridgeIgnoresKindsVenueLacks) {
  xgsp::Message created = sessions.handle(xgsp::Message::create_session(
      "data-session", "gcf", xgsp::SessionMode::kAdHoc, {{"data", "SHARED-APP"}}));
  AccessGridBridge bridge(net.add_host("bridge"), broker_node.stream_endpoint(),
                          venue, created.sessions.front());
  EXPECT_EQ(bridge.bridged_kinds(), 0u);
}

TEST_F(AccessGridTest, NoEchoLoopBetweenVenueAndTopic) {
  xgsp::Session session = make_session();
  AccessGridBridge bridge(net.add_host("bridge"), broker_node.stream_endpoint(), venue,
                          session);
  MboneTool vic(net.add_host("vic"), venue);
  loop.run();
  vic.send_media("video", Bytes(100, 1));
  loop.run();
  // The tool's packet went venue->topic once; the broker does not echo
  // the bridge's own publication back, so nothing returns to the venue
  // and vic hears nothing (it is the only tool).
  EXPECT_EQ(bridge.uplinked(), 1u);
  EXPECT_EQ(bridge.downlinked(), 0u);
  EXPECT_EQ(vic.packets_received(), 0u);
}

}  // namespace
}  // namespace gmmcs::core
