// Tests for the HearMe VoIP community, including the WSDL-CI genericity
// claim: the same generated CollaborationProxy drives Admire and HearMe,
// two communities with entirely different implementations.
#include <gtest/gtest.h>

#include "admire/admire.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sip/hearme.hpp"
#include "xgsp/session_server.hpp"
#include "xgsp/wsdl_ci.hpp"

namespace gmmcs::sip {
namespace {

class HearMeTest : public ::testing::Test {
 protected:
  HearMeTest()
      : node(net.add_host("broker"), 0),
        sessions(net.add_host("xgsp"), node.stream_endpoint()),
        hearme(net.add_host("hearme"), node.stream_endpoint()) {}

  xgsp::Session make_audio_session() {
    xgsp::Message created = sessions.handle(xgsp::Message::create_session(
        "voip", "gcf", xgsp::SessionMode::kAdHoc, {{"audio", "PCMU"}}));
    return created.sessions.front();
  }

  void establish(const xgsp::Session& session) {
    xgsp::CollaborationProxy proxy(net.add_host("web-" + session.id()), hearme.descriptor());
    xml::Element args("session-invite");
    args.add_child(session.to_xml());
    bool ok = false;
    proxy.establish(std::move(args), [&](Result<xml::Element> r) { ok = r.ok(); });
    loop.run();
    ASSERT_TRUE(ok);
  }

  sim::EventLoop loop;
  sim::Network net{loop, 161};
  broker::BrokerNode node;
  xgsp::SessionServer sessions;
  HearMeService hearme;
};

TEST_F(HearMeTest, DescriptorNamesItsOwnOperations) {
  xgsp::WsdlCi d = hearme.descriptor();
  EXPECT_EQ(d.community, "sip");
  EXPECT_EQ(d.establish_op, "JoinConference");
  auto parsed = xgsp::WsdlCi::parse(d.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().membership_op, "PhoneMembership");
}

TEST_F(HearMeTest, EstablishCreatesAudioBridge) {
  xgsp::Session session = make_audio_session();
  establish(session);
  EXPECT_TRUE(hearme.rendezvous_for(session.id()).has_value());
  EXPECT_EQ(hearme.phones_in(session.id()), 0u);
}

TEST_F(HearMeTest, RejectsVideoOnlySessions) {
  xgsp::Message created = sessions.handle(xgsp::Message::create_session(
      "video-only", "x", xgsp::SessionMode::kAdHoc, {{"video", "H261"}}));
  xgsp::CollaborationProxy proxy(net.add_host("web"), hearme.descriptor());
  xml::Element args("session-invite");
  args.add_child(created.sessions.front().to_xml());
  bool failed = false;
  proxy.establish(std::move(args), [&](Result<xml::Element> r) { failed = !r.ok(); });
  loop.run();
  EXPECT_TRUE(failed);
}

TEST_F(HearMeTest, PhonesTalkToEachOtherAndToGmmcs) {
  xgsp::Session session = make_audio_session();
  establish(session);
  HearMeService::Phone p1(net.add_host("phone1"), hearme, "555-0101");
  HearMeService::Phone p2(net.add_host("phone2"), hearme, "555-0102");
  ASSERT_TRUE(p1.dial(session.id()));
  ASSERT_TRUE(p2.dial(session.id()));
  EXPECT_EQ(hearme.phones_in(session.id()), 2u);

  broker::BrokerClient native(net.add_host("native"), node.stream_endpoint());
  native.subscribe(session.stream("audio")->topic);
  int native_got = 0;
  native.on_event([&](const broker::Event&) { ++native_got; });
  loop.run();

  // Phone 1 speaks: phone 2 hears it (bridge mix), Global-MMCS hears it
  // (topic publish), phone 1 does not hear itself.
  p1.send_audio(Bytes(160, 1));
  loop.run();
  EXPECT_EQ(p2.packets_received(), 1u);
  EXPECT_EQ(p1.packets_received(), 0u);
  EXPECT_EQ(native_got, 1);

  // A Global-MMCS participant speaks: both phones hear.
  native.publish(session.stream("audio")->topic, Bytes(160, 2));
  loop.run();
  EXPECT_EQ(p1.packets_received(), 1u);
  EXPECT_EQ(p2.packets_received(), 2u);

  // Hang-up removes the phone from the mix.
  p2.hang_up();
  p1.send_audio(Bytes(160, 3));
  loop.run();
  EXPECT_EQ(p2.packets_received(), 2u);
  EXPECT_EQ(hearme.phones_in(session.id()), 1u);
}

TEST_F(HearMeTest, DialIntoUnbridgedSessionFails) {
  HearMeService::Phone p(net.add_host("phone"), hearme, "555-0199");
  EXPECT_FALSE(p.dial("42"));
}

TEST_F(HearMeTest, SameProxyCodeDrivesAdmireAndHearMe) {
  // The WSDL-CI genericity claim: one piece of calling code, two
  // communities with different operations and internals.
  admire::AdmireCommunity admire_comm(net.add_host("admire"), node.stream_endpoint());
  xgsp::Message created = sessions.handle(xgsp::Message::create_session(
      "both", "gcf", xgsp::SessionMode::kAdHoc, {{"audio", "PCMU"}, {"video", "H261"}}));
  const xgsp::Session& session = created.sessions.front();

  std::vector<std::unique_ptr<xgsp::CollaborationProxy>> proxies;
  int accepted = 0;
  for (const xgsp::WsdlCi& descriptor : {hearme.descriptor(), admire_comm.descriptor()}) {
    auto proxy = std::make_unique<xgsp::CollaborationProxy>(
        net.add_host("web-" + descriptor.community + "-x"), descriptor);
    xml::Element args("session-invite");
    args.add_child(session.to_xml());
    proxy->establish(std::move(args), [&](Result<xml::Element> r) {
      if (r.ok() && !r.value().children_named("rendezvous").empty()) ++accepted;
    });
    loop.run();
    proxies.push_back(std::move(proxy));
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_TRUE(hearme.rendezvous_for(session.id()).has_value());
  EXPECT_NE(admire_comm.rendezvous_for(session.id()), nullptr);
}

}  // namespace
}  // namespace gmmcs::sip
