// Tests for the common substrate: bytes, time, rng, stats, strings, ids.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/random.hpp"
#include "common/result.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"

namespace gmmcs {
namespace {

TEST(Bytes, RoundTripIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(Bytes, ShortReadSetsErrorAndReturnsZero) {
  Bytes data{0x01};
  ByteReader r(data);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  // Further reads stay zero and flagged.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthPrefixedString) {
  ByteWriter w;
  w.lstr("hello");
  w.lstr("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.lstr(), "hello");
  EXPECT_EQ(r.lstr(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, RawRoundTrip) {
  ByteWriter w;
  Bytes payload{1, 2, 3, 4, 5};
  w.raw(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(5), payload);
}

TEST(Time, Arithmetic) {
  SimTime t0 = SimTime::zero();
  SimTime t1 = t0 + duration_ms(5);
  EXPECT_EQ((t1 - t0).ms(), 5);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(duration_us(1500).ns(), 1'500'000);
  EXPECT_DOUBLE_EQ(duration_ms(250).to_seconds(), 0.25);
}

TEST(Time, FractionalSeconds) {
  EXPECT_EQ(duration_seconds(0.001).ns(), 1'000'000);
  EXPECT_EQ(duration_seconds(1e-9).ns(), 1);
}

TEST(Time, ToString) {
  EXPECT_EQ(to_string(duration_ms(12)), "12.00ms");
  EXPECT_EQ(to_string(duration_s(2)), "2.000s");
  EXPECT_EQ(to_string(duration_us(500)), "500.0us");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  Rng a(99);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, HistogramPercentile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
}

TEST(Stats, HistogramClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Stats, SeriesDownsampleAverages) {
  Series s;
  for (int i = 0; i < 100; ++i) s.add(i, 2.0 * i);
  Series d = s.downsample(10);
  EXPECT_EQ(d.points().size(), 10u);
  EXPECT_NEAR(d.points()[0].x, 4.5, 1e-9);
  EXPECT_NEAR(d.points()[0].y, 9.0, 1e-9);
  EXPECT_NEAR(d.mean_y(), s.mean_y(), 1e-9);
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitN) {
  auto parts = split_n("INVITE sip:alice@x SIP/2.0", ' ', 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "INVITE");
  EXPECT_EQ(parts[2], "SIP/2.0");
}

TEST(Strings, SplitLinesHandlesCrlf) {
  auto lines = split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(to_lower("Content-Type"), "content-type");
  EXPECT_TRUE(iequals("Via", "VIA"));
  EXPECT_FALSE(iequals("Via", "Vial"));
}

TEST(Strings, StartsEndsJoin) {
  EXPECT_TRUE(starts_with("sip:alice", "sip:"));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
}

TEST(Result, ValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = fail<int>("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_THROW(static_cast<void>(bad.value()), std::logic_error);
}

TEST(Ids, MonotonicAndTagged) {
  IdGenerator gen;
  EXPECT_EQ(gen.next(), 1u);
  EXPECT_EQ(gen.next(), 2u);
  EXPECT_EQ(gen.next_tagged("sess"), "sess-3");
}

}  // namespace
}  // namespace gmmcs
