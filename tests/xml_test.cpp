// Tests for the minimal XML DOM, parser and serializer.
#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace gmmcs::xml {
namespace {

TEST(XmlBuild, SerializeSimple) {
  Element root("session");
  root.set_attr("id", "42");
  root.add_text_child("name", "standup");
  EXPECT_EQ(root.serialize(), "<session id=\"42\"><name>standup</name></session>");
}

TEST(XmlBuild, SelfClosingWhenEmpty) {
  Element e("ping");
  EXPECT_EQ(e.serialize(), "<ping/>");
}

TEST(XmlBuild, AttributeOverwrite) {
  Element e("x");
  e.set_attr("a", "1");
  e.set_attr("a", "2");
  EXPECT_EQ(e.attr("a"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
}

TEST(XmlEscape, RoundTrip) {
  std::string nasty = "a<b & \"c\" 'd' >e";
  EXPECT_EQ(unescape(escape(nasty)), nasty);
}

TEST(XmlEscape, NumericEntities) {
  EXPECT_EQ(unescape("&#65;&#x42;"), "AB");
}

TEST(XmlParse, SimpleDocument) {
  auto r = parse("<a x=\"1\"><b>hi</b><b>yo</b></a>");
  ASSERT_TRUE(r.ok());
  const Element& root = r.value();
  EXPECT_EQ(root.name(), "a");
  EXPECT_EQ(root.attr("x"), "1");
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0].text(), "hi");
  EXPECT_EQ(root.children_named("b").size(), 2u);
  EXPECT_EQ(root.child_text("b"), "hi");
}

TEST(XmlParse, DeclarationAndComments) {
  auto r = parse("<?xml version=\"1.0\"?><!-- hi --><root><!-- inner -->x</root>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().text(), "x");
}

TEST(XmlParse, Cdata) {
  auto r = parse("<m><![CDATA[a<b&c]]></m>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().text(), "a<b&c");
}

TEST(XmlParse, EntitiesInTextAndAttrs) {
  auto r = parse("<m t=\"a&amp;b\">x &lt; y</m>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().attr("t"), "a&b");
  EXPECT_EQ(r.value().text(), "x < y");
}

TEST(XmlParse, SelfClosingAndNesting) {
  auto r = parse("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().children().size(), 2u);
  ASSERT_NE(r.value().child("c"), nullptr);
  EXPECT_NE(r.value().child("c")->child("d"), nullptr);
}

TEST(XmlParse, SingleQuotedAttributes) {
  auto r = parse("<a x='hi'/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().attr("x"), "hi");
}

TEST(XmlParse, RejectsMismatchedTags) {
  auto r = parse("<a><b></a></b>");
  EXPECT_FALSE(r.ok());
}

TEST(XmlParse, RejectsTrailingContent) {
  auto r = parse("<a/><b/>");
  EXPECT_FALSE(r.ok());
}

TEST(XmlParse, RejectsTruncated) {
  EXPECT_FALSE(parse("<a><b>").ok());
  EXPECT_FALSE(parse("<a x=\"unterminated>").ok());
  EXPECT_FALSE(parse("").ok());
}

TEST(XmlParse, RoundTripThroughSerialize) {
  Element root("xgsp");
  root.set_attr("version", "1.0");
  Element& sess = root.add_child("session");
  sess.set_attr("id", "s-1");
  sess.add_text_child("title", "Weekly <sync> & more");
  Element& media = sess.add_child("media");
  media.set_attr("type", "video");
  media.set_attr("codec", "H.261");
  auto r = parse(root.serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().child("session")->child_text("title"), "Weekly <sync> & more");
  EXPECT_EQ(r.value().child("session")->child("media")->attr("codec"), "H.261");
}

TEST(XmlParse, PrettyPrintedInputParses) {
  Element root("a");
  root.add_child("b").add_text_child("c", "deep");
  std::string pretty = root.serialize(true);
  auto r = parse(pretty);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().child("b")->child_text("c"), "deep");
}

TEST(XmlNamespace, LocalNameAndChildLocal) {
  EXPECT_EQ(local_name("soap:Envelope"), "Envelope");
  EXPECT_EQ(local_name("plain"), "plain");
  Element root("soap:Envelope");
  root.add_child("soap:Body");
  EXPECT_NE(root.child_local("Body"), nullptr);
  EXPECT_EQ(root.child_local("Header"), nullptr);
}

}  // namespace
}  // namespace gmmcs::xml
