// Integration tests on the assembled Global-MMCS system: the full
// heterogeneous-conference path of the paper — SIP endpoint, H.323
// terminal, Admire community, native XGSP client and streaming viewer all
// in one session — plus the baseline reflector and facade conveniences.
#include <gtest/gtest.h>

#include "baseline/jmf_reflector.hpp"
#include "broker/client.hpp"
#include "core/global_mmcs.hpp"
#include "h323/terminal.hpp"
#include "media/generator.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"
#include "sip/endpoint.hpp"
#include "streaming/player.hpp"
#include "xgsp/client.hpp"

namespace gmmcs::core {
namespace {

TEST(JmfReflectorUnit, ReflectsToAllButSender) {
  sim::EventLoop loop;
  sim::Network net(loop, 71);
  sim::Host& server = net.add_host("server");
  baseline::JmfReflector reflector(server);
  sim::Host& sh = net.add_host("sender");
  transport::DatagramSocket tx(sh);
  transport::DatagramSocket rx1(net.add_host("r1"));
  transport::DatagramSocket rx2(net.add_host("r2"));
  int got1 = 0, got2 = 0, got_self = 0;
  tx.on_receive([&](const sim::Datagram&) { ++got_self; });
  rx1.on_receive([&](const sim::Datagram&) { ++got1; });
  rx2.on_receive([&](const sim::Datagram&) { ++got2; });
  reflector.add_receiver(tx.local());
  reflector.add_receiver(rx1.local());
  reflector.add_receiver(rx2.local());
  tx.send_to(reflector.endpoint(), Bytes(100, 1));
  loop.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got_self, 0);  // no reflection back to the sender
  EXPECT_EQ(reflector.packets_in(), 1u);
  EXPECT_EQ(reflector.copies_out(), 2u);
}

TEST(JmfReflectorUnit, SingleThreadSerializesCopies) {
  sim::EventLoop loop;
  sim::Network net(loop, 72);
  baseline::JmfReflector::Config cfg;
  cfg.per_packet_cost = duration_ms(1);
  cfg.copy_fixed = duration_ms(2);
  cfg.copy_per_kb = SimDuration{0};
  baseline::JmfReflector reflector(net.add_host("server"), cfg);
  transport::DatagramSocket tx(net.add_host("tx"));
  std::vector<std::int64_t> arrivals;
  std::vector<std::unique_ptr<transport::DatagramSocket>> rxs;
  for (int i = 0; i < 3; ++i) {
    rxs.push_back(std::make_unique<transport::DatagramSocket>(
        net.add_host("r" + std::to_string(i))));
    rxs.back()->on_receive(
        [&](const sim::Datagram&) { arrivals.push_back(loop.now().ns()); });
    reflector.add_receiver(rxs.back()->local());
  }
  tx.send_to(reflector.endpoint(), Bytes(10, 0));
  loop.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Copies spaced by the 2ms copy cost on the single dispatch thread.
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), duration_ms(2).ns(),
              duration_us(100).ns());
  EXPECT_NEAR(static_cast<double>(arrivals[2] - arrivals[1]), duration_ms(2).ns(),
              duration_us(100).ns());
}

class GlobalMmcsTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  GlobalMmcs mmcs{loop};
};

TEST_F(GlobalMmcsTest, DeploymentWiring) {
  EXPECT_EQ(mmcs.brokers().broker_count(), 1u);
  EXPECT_GE(mmcs.network().host_count(), 6u);  // broker, xgsp, sip, h323, real, admire
  // Both communities registered in the directory with parseable WSDL-CI.
  for (const std::string& name : {mmcs.admire().name(), mmcs.hearme().name()}) {
    const xgsp::CommunityRecord* rec = mmcs.directory().data().find_community(name);
    ASSERT_NE(rec, nullptr) << name;
    EXPECT_TRUE(xgsp::WsdlCi::parse(rec->wsdl_ci).ok()) << name;
  }
}

TEST_F(GlobalMmcsTest, HeterogeneousConference) {
  // The paper's headline scenario: one session, four client technologies.
  std::string sid = mmcs.create_session("global-demo", "gcf", {{"video", "H261"}});
  std::string topic = mmcs.sessions().find(sid)->stream("video")->topic;

  // 1. Native XGSP client.
  sim::Host& nat_host = mmcs.add_client_host("native");
  xgsp::XgspClient native(nat_host, mmcs.broker_endpoint(), "gcf");
  native.join(sid, [](const xgsp::Message&) {});
  native.subscribe_media(topic);
  media::MediaProbe native_probe(90000);
  native.on_media([&](const broker::Event& ev) { native_probe.on_wire(ev.payload, loop.now()); });

  // 2. SIP endpoint.
  sim::Host& sip_host = mmcs.add_client_host("sip-client");
  sip::SipEndpoint alice(sip_host, "sip:alice@iu.edu", mmcs.sip_proxy().endpoint());
  rtp::RtpSession alice_rtp(sip_host, {.ssrc = 100, .payload_type = 31});
  alice.register_with_proxy([](bool) {});
  loop.run();
  sip::Sdp offer;
  offer.address = sip_host.id();
  offer.media.push_back({"video", alice_rtp.local().port, 31, "H261/90000"});
  std::optional<sim::Endpoint> sip_target;
  alice.invite(sip::SipGateway::conference_uri(sid), offer,
               [&](bool ok, const sip::SipEndpoint::Call& call) {
                 ASSERT_TRUE(ok);
                 sip_target = call.remote_sdp.media_endpoint("video");
               });
  loop.run();
  ASSERT_TRUE(sip_target.has_value());

  // 3. H.323 terminal.
  sim::Host& h323_host = mmcs.add_client_host("h323-client");
  h323::H323Terminal polycom(h323_host, "polycom-lab", mmcs.gatekeeper().ras_endpoint());
  rtp::RtpSession polycom_rtp(h323_host, {.ssrc = 200, .payload_type = 31});
  polycom.register_endpoint([](bool) {});
  loop.run();
  h323::H323Terminal::MediaTargets h323_targets;
  polycom.call("conf-" + sid, 6000, {{"video", 31, polycom_rtp.local()}},
               [&](bool ok, const h323::H323Terminal::MediaTargets& t) {
                 ASSERT_TRUE(ok);
                 h323_targets = t;
               });
  loop.run();
  ASSERT_TRUE(h323_targets.contains("video"));

  // 4. Admire community, invited through the web server's SOAP facade.
  soap::SoapClient portal(mmcs.add_client_host("portal"), mmcs.web().endpoint());
  xml::Element invite("InviteCommunity");
  invite.set_attr("session", sid);
  invite.set_attr("community", mmcs.admire().name());
  bool dispatched = false;
  portal.call(std::move(invite), [&](Result<xml::Element> r) { dispatched = r.ok(); });
  loop.run();
  ASSERT_TRUE(dispatched);
  auto beihang = mmcs.admire().make_terminal(mmcs.add_client_host("beihang"), "wewu");
  ASSERT_TRUE(beihang->attach(sid));

  // Session membership reflects all technologies.
  const xgsp::Session* session = mmcs.sessions().find(sid);
  EXPECT_TRUE(session->has_member("gcf"));
  EXPECT_TRUE(session->has_member("sip:alice@iu.edu"));
  EXPECT_TRUE(session->has_member("polycom-lab"));
  EXPECT_TRUE(session->has_member("community:" + mmcs.admire().name()));

  // Media from the SIP side reaches every other technology.
  alice_rtp.add_destination(*sip_target);
  rtp::RtpPacket pkt;
  int beihang_got = 0;
  beihang->on_media([&](const sim::Datagram&) { ++beihang_got; });
  for (int i = 0; i < 3; ++i) alice_rtp.send_media(Bytes(400, 1), 3600 * i);
  loop.run();
  EXPECT_EQ(native_probe.stats().received(), 3u);
  EXPECT_EQ(polycom_rtp.source_stats(100).received(), 3u);
  EXPECT_EQ(beihang_got, 3);

  // And media from the H.323 side reaches the SIP endpoint and Admire.
  polycom_rtp.add_destination(h323_targets.at("video"));
  polycom_rtp.send_media(Bytes(300, 2), 0);
  loop.run();
  EXPECT_EQ(alice_rtp.source_stats(200).received(), 1u);
  EXPECT_EQ(beihang_got, 4);
  EXPECT_EQ(native_probe.stats().received(), 4u);
}

TEST_F(GlobalMmcsTest, StreamingViewerWatchesSession) {
  std::string sid = mmcs.create_session("streamed", "gcf", {{"video", "H261"}});
  std::string topic = mmcs.sessions().find(sid)->stream("video")->topic;
  streaming::RealProducer& producer = mmcs.add_producer(sid, "video");
  EXPECT_EQ(producer.stream_name(), sid + "-video");

  streaming::StreamingPlayer viewer(mmcs.add_client_host("viewer"),
                                    mmcs.helix().rtsp_endpoint());
  bool playing = false;
  viewer.play(sid + "-video", [&](bool ok) { playing = ok; });
  loop.run();
  ASSERT_TRUE(playing);

  // Feed the session topic with video via a native client.
  sim::Host& sh = mmcs.add_client_host("sender");
  rtp::RtpSession tx(sh, {.ssrc = 9, .payload_type = 31});
  broker::BrokerClient pub(sh, mmcs.broker_endpoint(),
                           broker::BrokerClient::Config{.name = "sender"});
  tx.on_send([&](const Payload& wire) { pub.publish(topic, wire); });
  media::VideoSource source(tx, {.codec = media::codecs::h261(), .seed = 3});
  loop.run();
  source.start();
  loop.run_until(SimTime{duration_s(2).ns()});
  source.stop();
  loop.run_for(duration_s(1));
  EXPECT_GT(viewer.blocks_received(), 20u);
}

TEST_F(GlobalMmcsTest, ImChatRidesTheSipServers) {
  sip::SipEndpoint a(mmcs.add_client_host("a"), "sip:a@x", mmcs.sip_proxy().endpoint());
  sip::SipEndpoint b(mmcs.add_client_host("b"), "sip:b@y", mmcs.sip_proxy().endpoint());
  a.register_with_proxy([](bool) {});
  b.register_with_proxy([](bool) {});
  std::string room = sip::ChatServer::room_uri("ops");
  a.send_message(room, "/join", [](bool) {});
  b.send_message(room, "/join", [](bool) {});
  loop.run();
  std::string b_saw;
  b.on_message([&](const std::string&, const std::string& t) { b_saw = t; });
  a.send_message(room, "scheduled maintenance at noon", [](bool) {});
  loop.run();
  EXPECT_EQ(b_saw, "sip:a@x: scheduled maintenance at noon");
}

TEST_F(GlobalMmcsTest, SchedulerDrivesSessionLifecycle) {
  std::string resv = mmcs.scheduler().reserve("board meeting", "gcf",
                                              SimTime{duration_s(100).ns()}, duration_s(50),
                                              {"wewu"});
  loop.run_until(SimTime{duration_s(101).ns()});
  const xgsp::Reservation* r = mmcs.scheduler().find(resv);
  ASSERT_NE(r, nullptr);
  ASSERT_FALSE(r->session_id.empty());
  EXPECT_EQ(mmcs.sessions().find(r->session_id)->state(), xgsp::SessionState::kActive);
  loop.run_until(SimTime{duration_s(151).ns()});
  EXPECT_EQ(mmcs.sessions().find(r->session_id)->state(), xgsp::SessionState::kEnded);
}

TEST_F(GlobalMmcsTest, WebServerInvitesHearMeThroughItsWsdlCi) {
  // The web server resolves HearMe from the directory, builds the proxy
  // from its WSDL-CI, and drives JoinConference — no HearMe-specific code.
  std::string sid = mmcs.create_session("voip-bridged", "gcf", {{"audio", "PCMU"}});
  soap::SoapClient portal(mmcs.add_client_host("portal2"), mmcs.web().endpoint());
  xml::Element invite("InviteCommunity");
  invite.set_attr("session", sid);
  invite.set_attr("community", mmcs.hearme().name());
  bool dispatched = false;
  portal.call(std::move(invite), [&](Result<xml::Element> r) { dispatched = r.ok(); });
  loop.run();
  ASSERT_TRUE(dispatched);
  ASSERT_TRUE(mmcs.hearme().rendezvous_for(sid).has_value());
  // A phone dials in and hears a Global-MMCS publisher.
  sip::HearMeService::Phone phone(mmcs.add_client_host("phone"), mmcs.hearme(), "555-1000");
  ASSERT_TRUE(phone.dial(sid));
  broker::BrokerClient speaker(mmcs.add_client_host("speaker"), mmcs.broker_endpoint());
  loop.run();
  speaker.publish(mmcs.sessions().find(sid)->stream("audio")->topic, Bytes(160, 1));
  loop.run();
  EXPECT_EQ(phone.packets_received(), 1u);
}

TEST_F(GlobalMmcsTest, ScheduledMeetingSendsImInvitations) {
  sip::SipEndpoint bob(mmcs.add_client_host("bob"), "sip:bob@syr.edu",
                       mmcs.sip_proxy().endpoint());
  bob.register_with_proxy([](bool) {});
  std::string bob_saw;
  bob.on_message([&](const std::string&, const std::string& text) { bob_saw = text; });
  loop.run();
  mmcs.scheduler().reserve("review", "gcf", loop.now() + duration_s(10), duration_s(10),
                           {"sip:bob@syr.edu", "not-a-sip-user"});
  loop.run_until(loop.now() + duration_s(12));
  ASSERT_FALSE(bob_saw.empty());
  EXPECT_NE(bob_saw.find("review"), std::string::npos);
  EXPECT_NE(bob_saw.find("sip:conf-"), std::string::npos);
}

TEST_F(GlobalMmcsTest, AccessGridVenueViaFacade) {
  std::string sid = mmcs.create_session("ag-demo", "gcf", {{"video", "H261"}});
  AccessGridVenue& venue = mmcs.add_venue("lobby", sid);
  MboneTool vic(mmcs.add_client_host("vic"), venue);
  broker::BrokerClient native(mmcs.add_client_host("native"), mmcs.broker_endpoint());
  native.subscribe(mmcs.sessions().find(sid)->stream("video")->topic);
  int native_got = 0;
  native.on_event([&](const broker::Event&) { ++native_got; });
  loop.run();
  vic.send_media("video", Bytes(200, 1));
  loop.run();
  EXPECT_EQ(native_got, 1);
  EXPECT_THROW(mmcs.add_venue("x", "no-such-session"), std::invalid_argument);
}

TEST_F(GlobalMmcsTest, FacadeValidation) {
  EXPECT_THROW(mmcs.add_producer("missing", "video"), std::invalid_argument);
  std::string sid = mmcs.create_session("audio-only", "x", {{"audio", "PCMU"}});
  EXPECT_THROW(mmcs.add_producer(sid, "video"), std::invalid_argument);
  sim::EventLoop loop2;
  EXPECT_THROW(GlobalMmcs bad(loop2, GlobalMmcs::Config{.brokers = 0}), std::invalid_argument);
}

TEST(GlobalMmcsMultiBroker, SessionSpansBrokerFabric) {
  sim::EventLoop loop;
  GlobalMmcs mmcs(loop, GlobalMmcs::Config{.brokers = 3});
  std::string sid = mmcs.create_session("distributed", "gcf", {{"video", "H261"}});
  std::string topic = mmcs.sessions().find(sid)->stream("video")->topic;
  // Publisher attached to broker 0, subscriber to broker 2.
  broker::BrokerClient pub(mmcs.add_client_host("pub"),
                           mmcs.brokers().broker(0).stream_endpoint());
  broker::BrokerClient sub(mmcs.add_client_host("sub"),
                           mmcs.brokers().broker(2).stream_endpoint());
  sub.subscribe(topic);
  std::uint8_t hops = 0;
  int got = 0;
  sub.on_event([&](const broker::Event& ev) {
    ++got;
    hops = ev.hops;
  });
  loop.run();
  pub.publish(topic, Bytes(100, 1));
  loop.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(hops, 2);  // two broker-to-broker hops across the chain
}

}  // namespace
}  // namespace gmmcs::core
