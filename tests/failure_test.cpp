// Failure-injection tests: hosts going down, signaling connections
// dropping mid-call, NIC and dispatch overload, and recovery behaviour.
#include <gtest/gtest.h>

#include "broker/broker_network.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "h323/gatekeeper.hpp"
#include "h323/gateway.hpp"
#include "h323/terminal.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, 101};
};

TEST_F(FailureTest, BrokerOutageStopsDeliveryAndRecovers) {
  sim::Host& bh = net.add_host("broker");
  broker::BrokerNode node(bh, 0);
  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  broker::BrokerClient sub(net.add_host("sub"), node.stream_endpoint());
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const broker::Event&) { ++got; });
  loop.run();
  pub.publish("/t", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(got, 1);

  // Broker machine goes dark: published events vanish.
  bh.set_up(false);
  pub.publish("/t", Bytes(10, 0));
  pub.publish("/t", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(got, 1);

  // Power restored: state (clients, subscriptions) survived the outage
  // model (packets were dropped, the process did not crash) and media
  // publishing resumes without re-registration.
  bh.set_up(true);
  pub.publish("/t", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(got, 2);
}

TEST_F(FailureTest, MiddleBrokerOutagePartitionsChain) {
  broker::BrokerNetwork fabric(net);
  sim::Host& b0 = net.add_host("b0");
  sim::Host& b1 = net.add_host("b1");
  sim::Host& b2 = net.add_host("b2");
  fabric.add_broker(b0);
  fabric.add_broker(b1);
  fabric.add_broker(b2);
  fabric.link(0, 1);
  fabric.link(1, 2);
  fabric.finalize();
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  broker::BrokerClient near_sub(net.add_host("near"), fabric.broker(0).stream_endpoint());
  broker::BrokerClient far_sub(net.add_host("far"), fabric.broker(2).stream_endpoint());
  near_sub.subscribe("/t");
  far_sub.subscribe("/t");
  int near_got = 0, far_got = 0;
  near_sub.on_event([&](const broker::Event&) { ++near_got; });
  far_sub.on_event([&](const broker::Event&) { ++far_got; });
  loop.run();
  b1.set_up(false);  // the relay broker dies
  pub.publish("/t", Bytes(10, 0));
  loop.run();
  // Local delivery unaffected; the far side is partitioned.
  EXPECT_EQ(near_got, 1);
  EXPECT_EQ(far_got, 0);
  b1.set_up(true);
  pub.publish("/t", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(near_got, 2);
  EXPECT_EQ(far_got, 1);
}

TEST_F(FailureTest, DisconnectedBrokerIsSkippedNotFatal) {
  // A subscriber sits on a broker with no links at all. Publishing at a
  // connected broker must still serve reachable subscribers and must not
  // fault the dispatch path on the unreachable one.
  broker::BrokerNetwork fabric(net);
  fabric.add_broker(net.add_host("b0"));
  fabric.add_broker(net.add_host("b1"));
  fabric.add_broker(net.add_host("island"));  // never linked
  fabric.link(0, 1);
  fabric.finalize();
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  broker::BrokerClient reachable(net.add_host("r"), fabric.broker(1).stream_endpoint());
  broker::BrokerClient marooned(net.add_host("m"), fabric.broker(2).stream_endpoint());
  reachable.subscribe("/t");
  marooned.subscribe("/t");
  int reachable_got = 0, marooned_got = 0;
  reachable.on_event([&](const broker::Event&) { ++reachable_got; });
  marooned.on_event([&](const broker::Event&) { ++marooned_got; });
  loop.run();
  pub.publish("/t", Bytes(10, 0));
  loop.run();
  EXPECT_EQ(reachable_got, 1);
  EXPECT_EQ(marooned_got, 0);
}

TEST_F(FailureTest, H323SignalingDropReleasesCall) {
  broker::BrokerNode node(net.add_host("broker"), 0);
  xgsp::SessionServer sessions(net.add_host("xgsp"), node.stream_endpoint());
  h323::Gatekeeper gk(net.add_host("gk"));
  h323::H323Gateway gateway(net.add_host("gw"), sessions, node.stream_endpoint());
  gk.set_conference_target(gateway.call_signal_endpoint());
  xgsp::Message created = sessions.handle(xgsp::Message::create_session(
      "s", "x", xgsp::SessionMode::kAdHoc, {{"video", "H261"}}));
  std::string sid = created.sessions.front().id();

  sim::Host& th = net.add_host("terminal");
  auto term = std::make_unique<h323::H323Terminal>(th, "flaky", gk.ras_endpoint());
  transport::DatagramSocket rtp(th);
  term->register_endpoint([](bool) {});
  loop.run();
  bool connected = false;
  term->call("conf-" + sid, 1000, {{"video", 31, rtp.local()}},
             [&](bool ok, const h323::H323Terminal::MediaTargets&) { connected = ok; });
  loop.run();
  ASSERT_TRUE(connected);
  EXPECT_EQ(gateway.active_calls(), 1u);
  EXPECT_TRUE(sessions.find(sid)->has_member("flaky"));

  // The terminal process crashes: its connections close without BYE-ish
  // signaling. The gateway must clean the call and the XGSP membership.
  term.reset();
  loop.run();
  EXPECT_EQ(gateway.active_calls(), 0u);
  EXPECT_FALSE(sessions.find(sid)->has_member("flaky"));
}

TEST_F(FailureTest, NicOverloadDropsButRecovers) {
  // A tiny NIC queue on the sender: a burst overflows it; spaced traffic
  // then flows fine.
  sim::Host& a = net.add_host("a", sim::NicConfig{.egress_bps = 1e6, .queue_bytes = 3000,
                                                  .overhead_bytes = 0});
  sim::Host& b = net.add_host("b");
  int received = 0;
  b.bind(1, [&](const sim::Datagram&) { ++received; });
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.send(sim::Endpoint{b.id(), 1}, 2, Bytes(1000, 0))) ++accepted;
  }
  loop.run();
  EXPECT_LT(accepted, 10);
  EXPECT_EQ(received, accepted);
  EXPECT_GT(a.nic_dropped(), 0u);
  // After draining, sends succeed again.
  EXPECT_TRUE(a.send(sim::Endpoint{b.id(), 1}, 2, Bytes(1000, 0)));
  loop.run();
  EXPECT_EQ(received, accepted + 1);
}

TEST_F(FailureTest, DispatchOverloadShedsAndRecovers) {
  broker::BrokerNode::Config cfg;
  cfg.dispatch.queue_limit = 64;  // tiny dispatch queue
  broker::BrokerNode node(net.add_host("broker"), 0, cfg);
  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  broker::BrokerClient sub(net.add_host("sub"), node.stream_endpoint());
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const broker::Event&) { ++got; });
  loop.run();
  // A burst of 500 large events far exceeds the queue: some are shed.
  for (int i = 0; i < 500; ++i) pub.publish("/t", Bytes(2048, 0));
  loop.run();
  EXPECT_GT(node.jobs_dropped(), 0u);
  EXPECT_LT(got, 500);
  int after_burst = got;
  // Under light load the broker is healthy again.
  pub.publish("/t", Bytes(100, 0));
  loop.run();
  EXPECT_EQ(got, after_burst + 1);
}

// NOTE for the self-healing tests below: heartbeats and reconnect retries
// are periodic, so the event queue never drains — always settle with
// run_for()/run_until(), never loop.run().

TEST_F(FailureTest, BrokerCrashMidStreamReroutesAroundDeadNode) {
  // 4-broker ring 0-1-2-3-0; the 0->2 route initially relays via broker 1.
  // Crashing broker 1 mid-stream must be detected by heartbeats and
  // repaired to the 0->3->2 path without any manual finalize().
  broker::BrokerNetwork fabric(net);
  broker::BrokerNode::Config bcfg;
  bcfg.heartbeat.interval = duration_ms(50);
  bcfg.heartbeat.miss_threshold = 3;
  sim::Host& b1 = net.add_host("b1");
  fabric.add_broker(net.add_host("b0"), bcfg);
  fabric.add_broker(b1, bcfg);
  fabric.add_broker(net.add_host("b2"), bcfg);
  fabric.add_broker(net.add_host("b3"), bcfg);
  fabric.link(0, 1);
  fabric.link(1, 2);
  fabric.link(2, 3);
  fabric.link(3, 0);
  fabric.finalize();
  ASSERT_EQ(fabric.next_hop(0, 2), 1u);

  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  broker::BrokerClient far_sub(net.add_host("far"), fabric.broker(2).stream_endpoint());
  far_sub.subscribe("/t");
  int far_got = 0;
  far_sub.on_event([&](const broker::Event&) { ++far_got; });
  loop.run_for(duration_ms(200));
  pub.publish("/t", Bytes(10, 0));
  loop.run_for(duration_ms(200));
  EXPECT_EQ(far_got, 1);

  sim::FaultPlan plan;
  plan.crash_host(b1.id(), loop.now());  // permanent crash
  plan.install(net);
  // 3 missed 50 ms heartbeats ≈ 150 ms to detection; give it 400 ms.
  loop.run_for(duration_ms(400));
  EXPECT_GE(fabric.route_recomputes(), 1u);
  EXPECT_FALSE(fabric.link_considered_up(0, 1));
  EXPECT_EQ(fabric.next_hop(0, 2), 3u);  // repaired around the dead node

  pub.publish("/t", Bytes(10, 0));
  loop.run_for(duration_ms(200));
  EXPECT_EQ(far_got, 2);
}

TEST_F(FailureTest, PartitionHealsAndSubscriptionsResume) {
  // Chain 0-1-2 with the network partitioned between brokers 1 and 2 for
  // a while. During the partition events to the far side are unroutable;
  // after healing, heartbeats re-declare the link and the far subscriber
  // resumes receiving without resubscribing.
  broker::BrokerNetwork fabric(net);
  broker::BrokerNode::Config bcfg;
  bcfg.heartbeat.interval = duration_ms(50);
  sim::Host& b1 = net.add_host("b1");
  sim::Host& b2 = net.add_host("b2");
  fabric.add_broker(net.add_host("b0"), bcfg);
  fabric.add_broker(b1, bcfg);
  fabric.add_broker(b2, bcfg);
  fabric.link(0, 1);
  fabric.link(1, 2);
  fabric.finalize();

  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  broker::BrokerClient far_sub(net.add_host("far"), fabric.broker(2).stream_endpoint());
  far_sub.subscribe("/t");
  int far_got = 0;
  far_sub.on_event([&](const broker::Event&) { ++far_got; });
  loop.run_for(duration_ms(200));

  sim::FaultPlan plan;
  plan.partition({b1.id()}, {b2.id()}, SimTime{duration_s(1).ns()},
                 SimTime{duration_s(2).ns()});
  plan.install(net);
  loop.run_until(SimTime{duration_ms(1500).ns()});
  EXPECT_FALSE(fabric.link_considered_up(1, 2));
  EXPECT_EQ(fabric.distance(0, 2), -1);
  pub.publish("/t", Bytes(10, 0));
  loop.run_for(duration_ms(200));
  EXPECT_EQ(far_got, 0);  // partitioned: counted unroutable, not delivered
  EXPECT_GT(fabric.broker(0).unroutable_events(), 0u);

  // Heal; heartbeats resume and routes come back within a beat or two.
  loop.run_until(SimTime{duration_ms(2500).ns()});
  EXPECT_TRUE(fabric.link_considered_up(1, 2));
  EXPECT_EQ(fabric.distance(0, 2), 2);
  EXPECT_GE(fabric.route_recomputes(), 2u);  // one down, one up
  pub.publish("/t", Bytes(10, 0));
  loop.run_for(duration_ms(200));
  EXPECT_EQ(far_got, 1);  // subscription survived the partition
}

TEST_F(FailureTest, ClientOutlivesBrokerRestartViaBackoffReconnect) {
  sim::Host& bh = net.add_host("broker");
  broker::BrokerNode node(bh, 0);
  broker::BrokerClient::Config ccfg;
  ccfg.keepalive_interval = duration_ms(100);
  ccfg.reconnect.enabled = true;
  ccfg.reconnect.backoff_base = duration_ms(100);
  ccfg.reconnect.connect_timeout = duration_ms(300);
  ccfg.name = "pub";
  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint(), ccfg);
  ccfg.name = "sub";
  broker::BrokerClient sub(net.add_host("sub"), node.stream_endpoint(), ccfg);
  sub.subscribe("/t");
  int got = 0;
  sub.on_event([&](const broker::Event&) { ++got; });
  loop.run_for(duration_ms(500));
  pub.publish("/t", Bytes(10, 0));
  loop.run_for(duration_ms(200));
  EXPECT_EQ(got, 1);

  sim::FaultPlan plan;
  plan.crash_host(bh.id(), SimTime{duration_s(1).ns()}, SimTime{duration_s(2).ns()});
  plan.install(net);
  // Mid-outage: keepalives have missed and both clients are in backoff.
  loop.run_until(SimTime{duration_ms(1800).ns()});
  EXPECT_FALSE(sub.ready());
  EXPECT_GE(sub.disconnects(), 1u);

  // After the broker returns, backoff retries land, the handshake redoes
  // and the subscription set is replayed automatically.
  loop.run_until(SimTime{duration_ms(3500).ns()});
  EXPECT_TRUE(sub.ready());
  EXPECT_GE(sub.reconnects(), 1u);
  EXPECT_GE(pub.reconnects(), 1u);
  pub.publish("/t", Bytes(10, 0));
  loop.run_for(duration_ms(200));
  // Exactly one more delivery: the ghost record of the pre-crash
  // incarnation was evicted, so nothing is delivered twice.
  EXPECT_EQ(got, 2);
}

TEST_F(FailureTest, GatekeeperRecoversBandwidthFromDisengagedCalls) {
  h323::Gatekeeper::Config gkcfg;
  gkcfg.bandwidth_budget = 2000;
  h323::Gatekeeper gk(net.add_host("gk"), gkcfg);
  broker::BrokerNode node(net.add_host("broker"), 0);
  xgsp::SessionServer sessions(net.add_host("xgsp"), node.stream_endpoint());
  h323::H323Gateway gateway(net.add_host("gw"), sessions, node.stream_endpoint());
  gk.set_conference_target(gateway.call_signal_endpoint());
  xgsp::Message created = sessions.handle(
      xgsp::Message::create_session("s", "x", xgsp::SessionMode::kAdHoc, {{"video", "H261"}}));
  std::string sid = created.sessions.front().id();
  h323::H323Terminal t(net.add_host("t"), "t", gk.ras_endpoint());
  transport::DatagramSocket rtp(net.add_host("media"));
  t.register_endpoint([](bool) {});
  loop.run();
  for (int round = 0; round < 5; ++round) {
    bool ok = false;
    t.call("conf-" + sid, 2000, {{"video", 31, rtp.local()}},
           [&](bool r, const h323::H323Terminal::MediaTargets&) { ok = r; });
    loop.run();
    ASSERT_TRUE(ok) << "round " << round << ": " << t.last_reject_reason();
    EXPECT_EQ(gk.bandwidth_in_use(), 2000u);
    bool hung = false;
    t.hangup([&](bool r) { hung = r; });
    loop.run();
    ASSERT_TRUE(hung);
    EXPECT_EQ(gk.bandwidth_in_use(), 0u);
  }
}

}  // namespace
}  // namespace gmmcs
