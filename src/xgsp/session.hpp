// XGSP session model.
//
// A session is the unit of collaboration: a set of media streams (each
// mapped to a broker topic), a membership of participants joined through
// possibly different community technologies (native XGSP, SIP, H.323,
// Admire/AccessGrid, streaming players), and moderation state (floor
// control). Sessions are ad-hoc or scheduled ("hybrid collaboration
// pattern", paper §2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "xml/xml.hpp"

namespace gmmcs::xgsp {

/// How a participant reaches the session (which gateway/community).
enum class EndpointKind { kXgsp, kSip, kH323, kAdmire, kAccessGrid, kStreaming };
const char* to_string(EndpointKind k);
std::optional<EndpointKind> endpoint_kind_from(const std::string& s);

enum class SessionMode { kAdHoc, kScheduled };
enum class SessionState { kCreated, kActive, kEnded };

/// One media stream within a session.
struct MediaStream {
  std::string kind;   // "audio" | "video" | "data"
  std::string codec;  // registry name, e.g. "PCMU", "H261"
  std::string topic;  // broker topic carrying this stream

  [[nodiscard]] xml::Element to_xml() const;
  static MediaStream from_xml(const xml::Element& e);
};

struct Participant {
  std::string user;  // directory user id
  EndpointKind kind = EndpointKind::kXgsp;
  bool moderator = false;
};

/// Session descriptor + live state. Value semantics; the SessionServer
/// owns the authoritative copies.
class Session {
 public:
  Session() = default;
  Session(std::string id, std::string title, std::string creator, SessionMode mode);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::string& creator() const { return creator_; }
  [[nodiscard]] SessionMode mode() const { return mode_; }
  [[nodiscard]] SessionState state() const { return state_; }

  /// Adds a stream; the topic is derived from the session id and kind.
  MediaStream& add_stream(const std::string& kind, const std::string& codec);
  [[nodiscard]] const std::vector<MediaStream>& streams() const { return streams_; }
  [[nodiscard]] const MediaStream* stream(const std::string& kind) const;

  /// Membership. Joining an ended session or duplicate join fails.
  bool join(const Participant& p);
  bool leave(const std::string& user);
  [[nodiscard]] bool has_member(const std::string& user) const;
  [[nodiscard]] const std::vector<Participant>& members() const { return members_; }

  void activate() { state_ = SessionState::kActive; }
  void end();

  // --- Floor control (audio/video floor, moderator-granted) ---
  /// Requests the floor; granted immediately if free.
  bool request_floor(const std::string& user);
  bool release_floor(const std::string& user);
  [[nodiscard]] const std::string& floor_holder() const { return floor_holder_; }
  [[nodiscard]] const std::vector<std::string>& floor_queue() const { return floor_queue_; }

  /// Control topic for session signaling events.
  [[nodiscard]] std::string control_topic() const;

  [[nodiscard]] xml::Element to_xml() const;
  static Session from_xml(const xml::Element& e);

 private:
  std::string id_;
  std::string title_;
  std::string creator_;
  SessionMode mode_ = SessionMode::kAdHoc;
  SessionState state_ = SessionState::kCreated;
  std::vector<MediaStream> streams_;
  std::vector<Participant> members_;
  std::string floor_holder_;
  std::vector<std::string> floor_queue_;
};

}  // namespace gmmcs::xgsp
