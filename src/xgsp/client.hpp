// Native XGSP collaboration client.
//
// Speaks XGSP directly over the broker (no gateway): publishes requests
// to the control topic with a private reply topic, correlates replies by
// sequence number, and after joining subscribes to the session's control
// topic for membership/floor notifications and to its media topics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "broker/client.hpp"
#include "xgsp/messages.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::xgsp {

class XgspClient {
 public:
  using ReplyHandler = std::function<void(const Message&)>;

  XgspClient(sim::Host& host, sim::Endpoint broker_stream, std::string user);

  // --- Requests (reply delivered asynchronously) ---
  void create_session(const std::string& title, SessionMode mode,
                      std::vector<std::pair<std::string, std::string>> media,
                      ReplyHandler on_reply);
  void join(const std::string& session_id, ReplyHandler on_reply);
  void leave(const std::string& session_id, ReplyHandler on_reply);
  void list_sessions(ReplyHandler on_reply);
  void request_floor(const std::string& session_id, ReplyHandler on_reply);
  void release_floor(const std::string& session_id, ReplyHandler on_reply);

  /// Session-state notifications for sessions this client joined.
  void on_notification(std::function<void(const Message&)> handler);

  /// Media-plane access: publish/receive on a stream topic of a joined
  /// session (payloads are RTP packets in the experiments).
  void publish_media(const std::string& topic, Payload payload);
  void subscribe_media(const std::string& topic);
  void on_media(std::function<void(const broker::Event&)> handler);

  [[nodiscard]] const std::string& user() const { return user_; }
  [[nodiscard]] broker::BrokerClient& broker_client() { return client_; }

 private:
  void request(Message m, ReplyHandler on_reply);

  std::string user_;
  std::string reply_topic_;
  broker::BrokerClient client_;
  std::uint32_t next_seq_ = 1;
  std::map<std::uint32_t, ReplyHandler> pending_;
  std::map<std::string, bool> watched_sessions_;
  std::function<void(const Message&)> notification_handler_;
  std::function<void(const broker::Event&)> media_handler_;
};

}  // namespace gmmcs::xgsp
