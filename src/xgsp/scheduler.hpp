// Meeting scheduler: the "scheduled mode" of the hybrid collaboration
// pattern (paper §2.1).
//
// "People have to log into some web site or use emails to make
// reservation of some virtual meeting room, send invitations to other
// attendee in advance."
//
// Reservations auto-start: at the reserved instant the scheduler creates
// the session on the SessionServer (scheduled mode), and ends it when the
// reservation expires. Ad-hoc sessions bypass this entirely, going
// straight to the session server — together they form the hybrid pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/thread_annotations.hpp"
#include "sim/event_loop.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::xgsp {

struct Reservation {
  std::string id;
  std::string title;
  std::string organizer;
  SimTime start;
  SimDuration duration;
  std::vector<std::string> invitees;
  std::vector<std::pair<std::string, std::string>> media;  // (kind, codec)
  /// Session id once the meeting has started; empty before.
  std::string session_id;
  bool cancelled = false;
  bool finished = false;
};

class GMMCS_PINNED("a run-long service; its timers fire or the run ends first") MeetingScheduler {
 public:
  MeetingScheduler(sim::EventLoop& loop, SessionServer& sessions);

  /// Books a meeting room; returns the reservation id. `start` must be in
  /// the future.
  std::string reserve(const std::string& title, const std::string& organizer, SimTime start,
                      SimDuration duration, std::vector<std::string> invitees,
                      std::vector<std::pair<std::string, std::string>> media = {});
  bool cancel(const std::string& reservation_id);

  [[nodiscard]] const Reservation* find(const std::string& reservation_id) const;
  /// Reservations that have not started yet.
  [[nodiscard]] std::vector<const Reservation*> upcoming() const;

  /// Fires when a reserved meeting auto-starts; carries the reservation
  /// (with session_id filled) — "send invitations to other attendees".
  /// Multiple observers may register (the facade adds its own invitation
  /// sender alongside application handlers).
  void on_started(std::function<void(const Reservation&)> handler);
  void on_finished(std::function<void(const Reservation&)> handler);

 private:
  void start_meeting(const std::string& reservation_id);
  void finish_meeting(const std::string& reservation_id);

  sim::EventLoop* loop_;
  SessionServer* sessions_;
  IdGenerator ids_;
  std::map<std::string, Reservation> reservations_;
  std::vector<std::function<void(const Reservation&)>> started_;
  std::vector<std::function<void(const Reservation&)>> finished_;
};

}  // namespace gmmcs::xgsp
