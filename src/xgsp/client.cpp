#include "xgsp/client.hpp"

#include "broker/topic.hpp"
#include "common/strings.hpp"

namespace gmmcs::xgsp {

XgspClient::XgspClient(sim::Host& host, sim::Endpoint broker_stream, std::string user)
    : user_(std::move(user)),
      reply_topic_("/xgsp/client/" + user_),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "xgsp-" + user_}) {
  client_.subscribe(reply_topic_);
  client_.on_event([this](const broker::Event& ev) {
    // Replies arrive on the private topic; notifications on session
    // control topics; everything else is media.
    if (ev.topic == reply_topic_) {
      auto msg = Message::parse(gmmcs::to_string(std::span<const std::uint8_t>(ev.payload)));
      if (!msg.ok()) return;
      auto it = pending_.find(msg.value().seq);
      if (it == pending_.end()) return;
      ReplyHandler handler = std::move(it->second);
      pending_.erase(it);
      handler(msg.value());
      return;
    }
    if (ends_with(ev.topic, "/control")) {
      if (notification_handler_) {
        auto msg = Message::parse(gmmcs::to_string(std::span<const std::uint8_t>(ev.payload)));
        if (msg.ok()) notification_handler_(msg.value());
      }
      return;
    }
    if (media_handler_) media_handler_(ev);
  });
}

void XgspClient::request(Message m, ReplyHandler on_reply) {
  m.seq = next_seq_++;
  m.reply_to = reply_topic_;
  if (m.user.empty()) m.user = user_;
  pending_[m.seq] = std::move(on_reply);
  client_.publish(SessionServer::kControlTopic, to_bytes(m.serialize()),
                  broker::QoS::kReliable);
}

void XgspClient::create_session(const std::string& title, SessionMode mode,
                                std::vector<std::pair<std::string, std::string>> media,
                                ReplyHandler on_reply) {
  request(Message::create_session(title, user_, mode, std::move(media)), std::move(on_reply));
}

void XgspClient::join(const std::string& session_id, ReplyHandler on_reply) {
  // Subscribe to the session control topic before the ack so no
  // notification is missed.
  if (!watched_sessions_[session_id]) {
    watched_sessions_[session_id] = true;
    client_.subscribe("/xgsp/session/" + session_id + "/control");
  }
  request(Message::join(session_id, user_, EndpointKind::kXgsp), std::move(on_reply));
}

void XgspClient::leave(const std::string& session_id, ReplyHandler on_reply) {
  request(Message::leave(session_id, user_), std::move(on_reply));
}

void XgspClient::list_sessions(ReplyHandler on_reply) {
  Message m;
  m.type = MsgType::kListSessions;
  request(std::move(m), std::move(on_reply));
}

void XgspClient::request_floor(const std::string& session_id, ReplyHandler on_reply) {
  Message m;
  m.type = MsgType::kFloorRequest;
  m.session_id = session_id;
  request(std::move(m), std::move(on_reply));
}

void XgspClient::release_floor(const std::string& session_id, ReplyHandler on_reply) {
  Message m;
  m.type = MsgType::kFloorRelease;
  m.session_id = session_id;
  request(std::move(m), std::move(on_reply));
}

void XgspClient::on_notification(std::function<void(const Message&)> handler) {
  notification_handler_ = std::move(handler);
}

void XgspClient::publish_media(const std::string& topic, Payload payload) {
  client_.publish(topic, std::move(payload));
}

void XgspClient::subscribe_media(const std::string& topic) {
  client_.subscribe(topic);
}

void XgspClient::on_media(std::function<void(const broker::Event&)> handler) {
  media_handler_ = std::move(handler);
}

}  // namespace gmmcs::xgsp
