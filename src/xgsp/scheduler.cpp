#include "xgsp/scheduler.hpp"

#include <stdexcept>

namespace gmmcs::xgsp {

MeetingScheduler::MeetingScheduler(sim::EventLoop& loop, SessionServer& sessions)
    : loop_(&loop), sessions_(&sessions) {}

std::string MeetingScheduler::reserve(const std::string& title, const std::string& organizer,
                                      SimTime start, SimDuration duration,
                                      std::vector<std::string> invitees,
                                      std::vector<std::pair<std::string, std::string>> media) {
  if (start < loop_->now()) {
    throw std::invalid_argument("MeetingScheduler: reservation must be in the future");
  }
  Reservation r;
  r.id = ids_.next_tagged("resv");
  r.title = title;
  r.organizer = organizer;
  r.start = start;
  r.duration = duration;
  r.invitees = std::move(invitees);
  r.media = std::move(media);
  std::string id = r.id;
  reservations_.emplace(id, std::move(r));
  loop_->schedule_at(start, [this, id] { start_meeting(id); });
  return id;
}

bool MeetingScheduler::cancel(const std::string& reservation_id) {
  auto it = reservations_.find(reservation_id);
  if (it == reservations_.end() || !it->second.session_id.empty()) return false;
  it->second.cancelled = true;
  return true;
}

const Reservation* MeetingScheduler::find(const std::string& reservation_id) const {
  auto it = reservations_.find(reservation_id);
  return it == reservations_.end() ? nullptr : &it->second;
}

std::vector<const Reservation*> MeetingScheduler::upcoming() const {
  std::vector<const Reservation*> out;
  for (const auto& [id, r] : reservations_) {
    if (!r.cancelled && r.session_id.empty()) out.push_back(&r);
  }
  return out;
}

void MeetingScheduler::on_started(std::function<void(const Reservation&)> handler) {
  started_.push_back(std::move(handler));
}

void MeetingScheduler::on_finished(std::function<void(const Reservation&)> handler) {
  finished_.push_back(std::move(handler));
}

void MeetingScheduler::start_meeting(const std::string& reservation_id) {
  auto it = reservations_.find(reservation_id);
  if (it == reservations_.end() || it->second.cancelled) return;
  Reservation& r = it->second;
  Message reply = sessions_->handle(
      Message::create_session(r.title, r.organizer, SessionMode::kScheduled, r.media));
  if (!reply.ok || reply.sessions.empty()) return;
  r.session_id = reply.sessions.front().id();
  // A started meeting is live even before the first participant joins.
  if (Session* s = sessions_->find(r.session_id)) s->activate();
  loop_->schedule_after(r.duration, [this, reservation_id] { finish_meeting(reservation_id); });
  for (const auto& handler : started_) handler(r);
}

void MeetingScheduler::finish_meeting(const std::string& reservation_id) {
  auto it = reservations_.find(reservation_id);
  if (it == reservations_.end()) return;
  Reservation& r = it->second;
  r.finished = true;
  sessions_->handle(Message::end_session(r.session_id));
  for (const auto& handler : finished_) handler(r);
}

}  // namespace gmmcs::xgsp
