// XGSP: the XML-based General Session Protocol (paper §2.2).
//
// One signaling vocabulary that every gateway translates into: H.225/H.245
// from H.323 endpoints, INVITE/BYE from SIP, Admire's SOAP calls. The wire
// form is an <xgsp type="..."> element; a tagged Message struct carries
// the union of fields (the subset used depends on the type, as in most
// hand-written 2003 XML protocols).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "xgsp/session.hpp"
#include "xml/xml.hpp"

namespace gmmcs::xgsp {

enum class MsgType {
  kCreateSession,  // -> kSessionInfo
  kJoinSession,    // -> kJoinAck
  kLeaveSession,   // -> kAck
  kEndSession,     // -> kAck
  kListSessions,   // -> kSessionList
  kFloorRequest,   // -> kFloorStatus
  kFloorRelease,   // -> kFloorStatus
  kSessionInfo,
  kJoinAck,
  kAck,
  kSessionList,
  kFloorStatus,
  kError,
};

const char* to_string(MsgType t);

struct Message {
  MsgType type = MsgType::kAck;
  std::uint32_t seq = 0;
  /// Broker topic the reply should be published to.
  std::string reply_to;

  // Request fields.
  std::string session_id;
  std::string user;
  std::string title;
  SessionMode mode = SessionMode::kAdHoc;
  EndpointKind endpoint_kind = EndpointKind::kXgsp;
  /// For kCreateSession: requested streams (topic left empty).
  std::vector<MediaStream> media;

  // Reply fields.
  bool ok = true;
  std::string reason;  // kError
  std::vector<Session> sessions;  // kSessionInfo/kJoinAck: one; kSessionList: many
  std::string floor_holder;
  std::vector<std::string> floor_queue;

  [[nodiscard]] xml::Element to_xml() const;
  [[nodiscard]] std::string serialize() const { return to_xml().serialize(); }
  [[nodiscard]] static Result<Message> from_xml(const xml::Element& e);
  [[nodiscard]] static Result<Message> parse(const std::string& text);

  // --- Convenience constructors for the common requests ---
  static Message create_session(std::string title, std::string creator, SessionMode mode,
                                std::vector<std::pair<std::string, std::string>> media);
  static Message join(std::string session_id, std::string user, EndpointKind kind);
  static Message leave(std::string session_id, std::string user);
  static Message end_session(std::string session_id);
  static Message error(std::string reason);
};

}  // namespace gmmcs::xgsp
