#include "xgsp/web_server.hpp"

#include "common/log.hpp"

namespace gmmcs::xgsp {

WebServer::WebServer(sim::Host& host, SessionServer& sessions, Directory& directory,
                     std::uint16_t port)
    : host_(&host), sessions_(&sessions), directory_(&directory), soap_(host, port) {
  soap_.register_operation("CreateSession",
                           [this](const xml::Element& r) { return create_session(r); });
  soap_.register_operation("JoinSession",
                           [this](const xml::Element& r) { return join_session(r); });
  soap_.register_operation("LeaveSession",
                           [this](const xml::Element& r) { return leave_session(r); });
  soap_.register_operation("EndSession",
                           [this](const xml::Element& r) { return end_session(r); });
  soap_.register_operation("ListSessions",
                           [this](const xml::Element& r) { return list_sessions(r); });
  soap_.register_operation("InviteCommunity",
                           [this](const xml::Element& r) { return invite_community(r); });
}

Result<xml::Element> WebServer::create_session(const xml::Element& req) {
  Message m;
  m.type = MsgType::kCreateSession;
  m.title = req.attr("title");
  m.user = req.attr("creator");
  m.mode = req.attr("mode") == "scheduled" ? SessionMode::kScheduled : SessionMode::kAdHoc;
  for (const xml::Element* me : req.children_named("media")) {
    m.media.push_back(MediaStream::from_xml(*me));
  }
  Message reply = sessions_->handle(m);
  if (!reply.ok) return fail<xml::Element>(reply.reason);
  xml::Element resp("CreateSessionResponse");
  resp.add_child(reply.sessions.front().to_xml());
  return resp;
}

Result<xml::Element> WebServer::join_session(const xml::Element& req) {
  // Resolve the user's bound terminal so the gateway kind is recorded.
  EndpointKind kind = EndpointKind::kXgsp;
  if (const UserAccount* u = directory_->find_user(req.attr("user"))) {
    kind = u->terminal_kind;
  }
  Message reply = sessions_->handle(Message::join(req.attr("session"), req.attr("user"), kind));
  if (!reply.ok) return fail<xml::Element>(reply.reason);
  xml::Element resp("JoinSessionResponse");
  resp.add_child(reply.sessions.front().to_xml());
  return resp;
}

Result<xml::Element> WebServer::leave_session(const xml::Element& req) {
  Message reply = sessions_->handle(Message::leave(req.attr("session"), req.attr("user")));
  if (!reply.ok) return fail<xml::Element>(reply.reason);
  xml::Element resp("LeaveSessionResponse");
  resp.set_attr("ok", "true");
  return resp;
}

Result<xml::Element> WebServer::end_session(const xml::Element& req) {
  Message reply = sessions_->handle(Message::end_session(req.attr("session")));
  if (!reply.ok) return fail<xml::Element>(reply.reason);
  xml::Element resp("EndSessionResponse");
  resp.set_attr("ok", "true");
  return resp;
}

Result<xml::Element> WebServer::list_sessions(const xml::Element&) {
  Message m;
  m.type = MsgType::kListSessions;
  Message reply = sessions_->handle(m);
  xml::Element resp("ListSessionsResponse");
  for (const Session& s : reply.sessions) resp.add_child(s.to_xml());
  return resp;
}

Result<xml::Element> WebServer::invite_community(const xml::Element& req) {
  const std::string session_id = req.attr("session");
  const std::string community = req.attr("community");
  Session* s = sessions_->find(session_id);
  if (s == nullptr) return fail<xml::Element>("InviteCommunity: no session " + session_id);
  const CommunityRecord* rec = directory_->find_community(community);
  if (rec == nullptr) return fail<xml::Element>("InviteCommunity: unknown community " + community);

  auto it = proxies_.find(community);
  if (it == proxies_.end()) {
    auto descriptor = WsdlCi::parse(rec->wsdl_ci);
    if (!descriptor.ok()) {
      return fail<xml::Element>("InviteCommunity: bad WSDL-CI: " + descriptor.error().message);
    }
    it = proxies_
             .emplace(community,
                      std::make_unique<CollaborationProxy>(*host_, std::move(descriptor).value()))
             .first;
  }
  // Fire the establish operation with the session description; the
  // community answers asynchronously (e.g. Admire's rendezvous reply) and
  // joins the media topics itself. The SOAP response here acknowledges
  // that the invitation was dispatched.
  xml::Element args("session-invite");
  args.add_child(s->to_xml());
  it->second->establish(std::move(args), [community](Result<xml::Element> r) {
    if (!r.ok()) {
      GMMCS_WARN("xgsp-web") << "community " << community << " invite failed: "
                             << r.error().message;
    } else {
      GMMCS_INFO("xgsp-web") << "community " << community << " accepted invite";
    }
  });
  // Record the community as a participant of the session.
  Participant p;
  p.user = "community:" + community;
  p.kind = rec->kind == "admire" ? EndpointKind::kAdmire : EndpointKind::kXgsp;
  s->join(p);
  xml::Element resp("InviteCommunityResponse");
  resp.set_attr("dispatched", "true");
  return resp;
}

}  // namespace gmmcs::xgsp
