#include "xgsp/quality.hpp"

#include "common/strings.hpp"

namespace gmmcs::xgsp {

xml::Element QualityReport::to_xml() const {
  xml::Element e("quality-report");
  e.set_attr("user", user);
  e.set_attr("loss", std::to_string(loss_ratio));
  e.set_attr("jitter-ms", std::to_string(jitter_ms));
  e.set_attr("delay-ms", std::to_string(delay_ms));
  e.set_attr("received", std::to_string(received));
  return e;
}

QualityReport QualityReport::from_xml(const xml::Element& e) {
  QualityReport r;
  r.user = e.attr("user");
  if (e.has_attr("loss")) r.loss_ratio = parse_f64(e.attr("loss")).value_or(0.0);
  if (e.has_attr("jitter-ms")) r.jitter_ms = parse_f64(e.attr("jitter-ms")).value_or(0.0);
  if (e.has_attr("delay-ms")) r.delay_ms = parse_f64(e.attr("delay-ms")).value_or(0.0);
  if (e.has_attr("received")) r.received = parse_u64(e.attr("received")).value_or(0);
  return r;
}

QualityReport QualityReport::from_stats(std::string user, const rtp::ReceiverStats& stats) {
  QualityReport r;
  r.user = std::move(user);
  r.loss_ratio = stats.loss_ratio();
  r.jitter_ms = stats.jitter_ms();
  r.delay_ms = stats.delay_ms().mean();
  r.received = stats.received();
  return r;
}

std::string quality_topic(const std::string& session_id) {
  return "/xgsp/session/" + session_id + "/quality";
}

void publish_quality(broker::BrokerClient& client, const std::string& session_id,
                     const QualityReport& report) {
  client.publish(quality_topic(session_id), to_bytes(report.to_xml().serialize()),
                 broker::QoS::kReliable);
}

QualityMonitor::QualityMonitor(sim::Host& host, sim::Endpoint broker_stream,
                               std::string session_id)
    : session_id_(std::move(session_id)),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "quality-monitor-" + session_id_,
                                           .udp_delivery = false, .udp_publish = false}) {
  client_.subscribe(quality_topic(session_id_));
  client_.on_event([this](const broker::Event& ev) {
    auto doc = xml::parse(gmmcs::to_string(std::span<const std::uint8_t>(ev.payload)));
    if (!doc.ok() || doc.value().name() != "quality-report") return;
    QualityReport report = QualityReport::from_xml(doc.value());
    if (report.user.empty()) return;
    ++reports_;
    latest_[report.user] = report;
    if (handler_) handler_(report);
  });
}

std::vector<std::string> QualityMonitor::degraded(double max_loss, double max_jitter_ms) const {
  std::vector<std::string> out;
  for (const auto& [user, report] : latest_) {
    if (report.loss_ratio > max_loss || report.jitter_ms > max_jitter_ms) out.push_back(user);
  }
  return out;
}

void QualityMonitor::on_report(std::function<void(const QualityReport&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace gmmcs::xgsp
