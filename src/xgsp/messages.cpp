#include "xgsp/messages.hpp"

#include "common/strings.hpp"

namespace gmmcs::xgsp {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kCreateSession: return "create-session";
    case MsgType::kJoinSession: return "join-session";
    case MsgType::kLeaveSession: return "leave-session";
    case MsgType::kEndSession: return "end-session";
    case MsgType::kListSessions: return "list-sessions";
    case MsgType::kFloorRequest: return "floor-request";
    case MsgType::kFloorRelease: return "floor-release";
    case MsgType::kSessionInfo: return "session-info";
    case MsgType::kJoinAck: return "join-ack";
    case MsgType::kAck: return "ack";
    case MsgType::kSessionList: return "session-list";
    case MsgType::kFloorStatus: return "floor-status";
    case MsgType::kError: return "error";
  }
  return "?";
}

namespace {
[[nodiscard]] Result<MsgType> type_from(const std::string& s) {
  for (MsgType t : {MsgType::kCreateSession, MsgType::kJoinSession, MsgType::kLeaveSession,
                    MsgType::kEndSession, MsgType::kListSessions, MsgType::kFloorRequest,
                    MsgType::kFloorRelease, MsgType::kSessionInfo, MsgType::kJoinAck,
                    MsgType::kAck, MsgType::kSessionList, MsgType::kFloorStatus,
                    MsgType::kError}) {
    if (s == to_string(t)) return t;
  }
  return fail<MsgType>("xgsp: unknown message type '" + s + "'");
}
}  // namespace

xml::Element Message::to_xml() const {
  xml::Element e("xgsp");
  e.set_attr("type", to_string(type));
  e.set_attr("seq", std::to_string(seq));
  if (!reply_to.empty()) e.set_attr("reply-to", reply_to);
  if (!session_id.empty()) e.set_attr("session", session_id);
  if (!user.empty()) e.set_attr("user", user);
  if (type == MsgType::kCreateSession) {
    e.add_text_child("title", title);
    e.set_attr("mode", mode == SessionMode::kScheduled ? "scheduled" : "adhoc");
  }
  if (type == MsgType::kJoinSession) e.set_attr("via", xgsp::to_string(endpoint_kind));
  for (const auto& m : media) e.add_child(m.to_xml());
  if (!ok || type == MsgType::kError) e.set_attr("ok", "false");
  // `reason` doubles as the change kind on kSessionInfo notifications.
  if (!reason.empty()) e.add_text_child("reason", reason);
  for (const auto& s : sessions) e.add_child(s.to_xml());
  if (type == MsgType::kFloorStatus) {
    xml::Element& f = e.add_child("floor");
    f.set_attr("holder", floor_holder);
    for (const auto& u : floor_queue) f.add_text_child("queued", u);
  }
  return e;
}

Result<Message> Message::from_xml(const xml::Element& e) {
  if (e.name() != "xgsp") return fail<Message>("xgsp: root element must be <xgsp>");
  auto type = type_from(e.attr("type"));
  if (!type.ok()) return fail<Message>(type.error().message);
  Message m;
  m.type = type.value();
  if (e.has_attr("seq")) {
    auto seq = parse_u32(e.attr("seq"));
    if (!seq) return fail<Message>("xgsp: malformed seq '" + e.attr("seq") + "'");
    m.seq = *seq;
  }
  m.reply_to = e.attr("reply-to");
  m.session_id = e.attr("session");
  m.user = e.attr("user");
  m.title = e.child_text("title");
  m.mode = e.attr("mode") == "scheduled" ? SessionMode::kScheduled : SessionMode::kAdHoc;
  if (e.has_attr("via")) {
    auto kind = endpoint_kind_from(e.attr("via"));
    if (!kind) return fail<Message>("xgsp: unknown endpoint kind '" + e.attr("via") + "'");
    m.endpoint_kind = *kind;
  }
  m.ok = e.attr("ok") != "false";
  m.reason = e.child_text("reason");
  for (const xml::Element* me : e.children_named("media")) {
    m.media.push_back(MediaStream::from_xml(*me));
  }
  for (const xml::Element* se : e.children_named("session")) {
    m.sessions.push_back(Session::from_xml(*se));
  }
  if (const xml::Element* f = e.child("floor")) {
    m.floor_holder = f->attr("holder");
    for (const xml::Element* q : f->children_named("queued")) {
      m.floor_queue.push_back(q->text());
    }
  }
  return m;
}

Result<Message> Message::parse(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return fail<Message>(doc.error().message);
  return from_xml(doc.value());
}

Message Message::create_session(std::string title, std::string creator, SessionMode mode,
                                std::vector<std::pair<std::string, std::string>> media) {
  Message m;
  m.type = MsgType::kCreateSession;
  m.title = std::move(title);
  m.user = std::move(creator);
  m.mode = mode;
  for (auto& [kind, codec] : media) {
    MediaStream s;
    s.kind = kind;
    s.codec = codec;
    m.media.push_back(std::move(s));
  }
  return m;
}

Message Message::join(std::string session_id, std::string user, EndpointKind kind) {
  Message m;
  m.type = MsgType::kJoinSession;
  m.session_id = std::move(session_id);
  m.user = std::move(user);
  m.endpoint_kind = kind;
  return m;
}

Message Message::leave(std::string session_id, std::string user) {
  Message m;
  m.type = MsgType::kLeaveSession;
  m.session_id = std::move(session_id);
  m.user = std::move(user);
  return m;
}

Message Message::end_session(std::string session_id) {
  Message m;
  m.type = MsgType::kEndSession;
  m.session_id = std::move(session_id);
  return m;
}

Message Message::error(std::string reason) {
  Message m;
  m.type = MsgType::kError;
  m.ok = false;
  m.reason = std::move(reason);
  return m;
}

}  // namespace gmmcs::xgsp
