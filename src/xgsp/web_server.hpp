// XGSP Web Server (paper §3.2): the SOAP facade of Global-MMCS.
//
// "Through SOAP connection, the XGSP Web Server can invoke web-services
// provided by other communities, such as Admire and SIP." End users (web
// portals, meeting calendars) call CreateSession / JoinSession / ... here;
// InviteCommunity pulls a community's WSDL-CI descriptor from the
// directory, generates a CollaborationProxy, and drives the third-party
// collaboration server's establish operation — the paper's example of
// scheduling a third-party MCU into a session.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "soap/soap.hpp"
#include "xgsp/directory.hpp"
#include "xgsp/session_server.hpp"
#include "xgsp/wsdl_ci.hpp"

namespace gmmcs::xgsp {

class WebServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 8080;

  /// Runs on `host`, fronts `sessions`, resolves communities in `directory`.
  WebServer(sim::Host& host, SessionServer& sessions, Directory& directory,
            std::uint16_t port = kDefaultPort);

  [[nodiscard]] sim::Endpoint endpoint() const { return soap_.endpoint(); }
  [[nodiscard]] std::uint64_t calls() const { return soap_.calls(); }

 private:
  [[nodiscard]] Result<xml::Element> create_session(const xml::Element& req);
  [[nodiscard]] Result<xml::Element> join_session(const xml::Element& req);
  [[nodiscard]] Result<xml::Element> leave_session(const xml::Element& req);
  [[nodiscard]] Result<xml::Element> end_session(const xml::Element& req);
  [[nodiscard]] Result<xml::Element> list_sessions(const xml::Element& req);
  [[nodiscard]] Result<xml::Element> invite_community(const xml::Element& req);

  sim::Host* host_;
  SessionServer* sessions_;
  Directory* directory_;
  soap::SoapServer soap_;
  /// Interface components generated per community (keyed by name).
  std::map<std::string, std::unique_ptr<CollaborationProxy>> proxies_;
};

}  // namespace gmmcs::xgsp
