// Naming & directory service (paper §2.2).
//
// "The first is the directory of user account and media terminal. ...
//  The second is the directory of different communities and collaboration
//  servers."
//
// Directory is the in-memory authority; DirectoryServer exposes it as a
// SOAP web service; DirectoryClient is the typed stub other components
// use. Community records carry the WSDL-CI descriptor that lets the web
// server generate a control proxy for that community's collaboration
// server.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "soap/soap.hpp"
#include "xgsp/session.hpp"

namespace gmmcs::xgsp {

/// A user account with media capability and the currently bound terminal.
struct UserAccount {
  std::string id;            // unique, e.g. "alice@anl"
  std::string display_name;
  std::string community;     // home community name
  std::string audio_codec = "PCMU";
  std::string video_codec = "H261";
  /// Active media terminal binding ("the directory of the active
  /// terminal, which the participant will use to access media services").
  EndpointKind terminal_kind = EndpointKind::kXgsp;
  std::string terminal_address;  // technology-specific address

  [[nodiscard]] xml::Element to_xml() const;
  static UserAccount from_xml(const xml::Element& e);
};

/// An autonomous community with its own collaboration/media servers.
struct CommunityRecord {
  std::string name;          // "admire-beihang", "h323-esnet", ...
  std::string kind;          // "admire" | "h323" | "sip" | "accessgrid"
  sim::Endpoint web_service; // SOAP endpoint of its collaboration server
  std::string wsdl_ci;       // serialized WSDL-CI descriptor

  [[nodiscard]] xml::Element to_xml() const;
  static CommunityRecord from_xml(const xml::Element& e);
};

/// In-memory directory data.
class Directory {
 public:
  bool register_user(UserAccount user);  // false if id taken
  [[nodiscard]] const UserAccount* find_user(const std::string& id) const;
  bool bind_terminal(const std::string& user_id, EndpointKind kind, std::string address);
  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

  bool register_community(CommunityRecord community);
  [[nodiscard]] const CommunityRecord* find_community(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> community_names() const;

 private:
  std::map<std::string, UserAccount> users_;
  std::map<std::string, CommunityRecord> communities_;
};

/// SOAP facade over a Directory.
class DirectoryServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 8081;

  DirectoryServer(sim::Host& host, std::uint16_t port = kDefaultPort);

  [[nodiscard]] Directory& data() { return dir_; }
  [[nodiscard]] sim::Endpoint endpoint() const { return soap_.endpoint(); }

 private:
  Directory dir_;
  soap::SoapServer soap_;
};

/// Typed SOAP stub for the directory service.
class DirectoryClient {
 public:
  DirectoryClient(sim::Host& host, sim::Endpoint server);

  void register_user(const UserAccount& user, std::function<void(bool)> cb);
  void lookup_user(const std::string& id,
                   std::function<void(std::optional<UserAccount>)> cb);
  void bind_terminal(const std::string& user_id, EndpointKind kind,
                     const std::string& address, std::function<void(bool)> cb);
  void register_community(const CommunityRecord& community, std::function<void(bool)> cb);
  void lookup_community(const std::string& name,
                        std::function<void(std::optional<CommunityRecord>)> cb);

 private:
  soap::SoapClient soap_;
};

}  // namespace gmmcs::xgsp
