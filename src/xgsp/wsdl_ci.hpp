// WSDL-CI: the WSDL Collaboration Interface (paper §2.2).
//
// "WSDL-CI is used to describe the functionalities of the particular
// collaboration server. When we try to integrate the server into
// Global-MMCS, WSDL-CI provides the WSDL information to generate the
// interface component through which Global MMCS session server can
// control this collaboration server" — including "the methods of session
// establishment, session membership and session collaboration control."
//
// Descriptor (XML, round-trippable) + CollaborationProxy, the generated
// interface component: a SOAP stub whose operation names come from the
// descriptor rather than being hard-coded, so any community that ships a
// WSDL-CI document can be driven without code changes.
#pragma once

#include <functional>
#include <string>

#include "common/result.hpp"
#include "soap/soap.hpp"
#include "xml/xml.hpp"

namespace gmmcs::xgsp {

struct WsdlCi {
  std::string service_name;  // e.g. "AdmireConferenceService"
  std::string community;     // community kind: "admire", "h323", "sip"
  sim::Endpoint endpoint;    // where the SOAP service listens
  /// Operation names, one per category the paper enumerates.
  std::string establish_op = "EstablishSession";
  std::string membership_op = "SessionMembership";
  std::string control_op = "SessionControl";

  [[nodiscard]] xml::Element to_xml() const;
  [[nodiscard]] std::string serialize() const { return to_xml().serialize(); }
  [[nodiscard]] static Result<WsdlCi> from_xml(const xml::Element& e);
  [[nodiscard]] static Result<WsdlCi> parse(const std::string& text);
};

/// The "interface component" generated from a WSDL-CI descriptor: typed
/// entry points that dispatch to whatever operation names the community
/// declared.
class CollaborationProxy {
 public:
  using Callback = std::function<void(Result<xml::Element>)>;

  CollaborationProxy(sim::Host& host, WsdlCi descriptor);

  /// Session establishment (args become children of the operation element).
  void establish(xml::Element args, Callback cb);
  /// Session membership changes (join/leave of Global-MMCS users).
  void membership(xml::Element args, Callback cb);
  /// Collaboration control (floor, mute, camera select, ...).
  void control(xml::Element args, Callback cb);

  [[nodiscard]] const WsdlCi& descriptor() const { return descriptor_; }

 private:
  void invoke(const std::string& op, xml::Element args, Callback cb);

  WsdlCi descriptor_;
  soap::SoapClient client_;
};

}  // namespace gmmcs::xgsp
