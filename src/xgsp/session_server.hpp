// XGSP Session Server (paper §3.2).
//
// "The XGSP Session Server translates the high-level command from the
// XGSP Web Server into signaling messages of XGSP, and sends these
// signaling messages to the NaradaBrokering servers to create a
// publish/subscribe session."
//
// The server owns the authoritative session state. Requests arrive two
// ways: in-process calls (from the web server facade and co-located
// gateways) and XGSP XML events published to the control topic by remote
// gateways/clients, answered on the requester's reply topic. Whenever a
// session is created, one broker topic per media stream comes into
// existence simply by being named — subscription is the rendezvous.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "broker/client.hpp"
#include "common/ids.hpp"
#include "xgsp/messages.hpp"

namespace gmmcs::xgsp {

class SessionServer {
 public:
  static constexpr const char* kControlTopic = "/xgsp/control";

  SessionServer(sim::Host& host, sim::Endpoint broker_stream);

  /// Processes one XGSP request and returns the reply (in-process path).
  Message handle(const Message& request);

  [[nodiscard]] const std::map<std::string, Session>& sessions() const { return sessions_; }
  [[nodiscard]] Session* find(const std::string& id);
  [[nodiscard]] std::uint64_t requests_handled() const { return requests_; }

  /// Observer for session lifecycle (used by the streaming producer and
  /// archive service to start/stop per-session pipelines).
  using SessionObserver = std::function<void(const Session&, MsgType change)>;
  void on_session_change(SessionObserver observer) { observer_ = std::move(observer); }

 private:
  Message do_create(const Message& req);
  Message do_join(const Message& req);
  Message do_leave(const Message& req);
  Message do_end(const Message& req);
  Message do_list(const Message& req) const;
  Message do_floor(const Message& req);
  /// Publishes the updated session state to its control topic so joined
  /// participants see membership/floor changes.
  void notify(const Session& s, MsgType change);

  broker::BrokerClient client_;
  std::map<std::string, Session> sessions_;
  IdGenerator ids_;
  std::uint64_t requests_ = 0;
  SessionObserver observer_;
};

}  // namespace gmmcs::xgsp
