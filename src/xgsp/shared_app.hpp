// Shared-application collaboration (paper §2: the fourth service class,
// alongside videoconferencing, streaming and IM).
//
// A shared application (whiteboard, editor, slide deck) is an ordered
// stream of small state operations that every participant must apply in
// the same order. This service runs it over a session's data topic with
// reliable QoS: one participant hosts the authoritative log (the
// "application sharer"), others submit operations to it and apply the
// sequenced log; late joiners ask the host for a state snapshot (the full
// op log) before going live — the classic 2003 shared-app recipe (VNC/T.120
// era), expressed over XGSP topics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "broker/client.hpp"
#include "xml/xml.hpp"

namespace gmmcs::xgsp {

/// One application operation (opaque command + arguments).
struct AppOp {
  std::uint32_t seq = 0;      // assigned by the host
  std::string actor;          // who performed it
  std::string command;        // e.g. "draw", "type", "goto-slide"
  std::string args;

  [[nodiscard]] xml::Element to_xml() const;
  static AppOp from_xml(const xml::Element& e);
};

/// The hosting side: sequences operations and serves state snapshots.
class SharedAppHost {
 public:
  /// `topic` is the session's data topic (e.g. session.stream("data")).
  SharedAppHost(sim::Host& host, sim::Endpoint broker_stream, std::string topic);

  [[nodiscard]] const std::vector<AppOp>& log() const { return log_; }
  [[nodiscard]] std::uint64_t ops_sequenced() const { return log_.size(); }
  [[nodiscard]] std::uint64_t snapshots_served() const { return snapshots_; }

 private:
  void handle(const broker::Event& ev);

  std::string topic_;
  broker::BrokerClient client_;
  std::vector<AppOp> log_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t snapshots_ = 0;
};

/// A participant: submits operations, applies the sequenced stream, and
/// catches up via snapshot when joining late.
class SharedAppClient {
 public:
  SharedAppClient(sim::Host& host, sim::Endpoint broker_stream, std::string topic,
                  std::string user);

  /// Submits an operation to the host for sequencing.
  void submit(const std::string& command, const std::string& args);
  /// Requests the current state snapshot (late join); on_op fires for
  /// every logged operation, in order, before subsequent live ops.
  void catch_up();

  /// Fired for each sequenced operation exactly once, in sequence order.
  void on_op(std::function<void(const AppOp&)> handler);

  [[nodiscard]] std::uint32_t applied_through() const { return applied_; }
  [[nodiscard]] const std::string& user() const { return user_; }

 private:
  void handle(const broker::Event& ev);
  void apply(const AppOp& op);

  std::string topic_;
  std::string user_;
  broker::BrokerClient client_;
  std::function<void(const AppOp&)> handler_;
  std::uint32_t applied_ = 0;  // highest sequence applied
  /// Out-of-window ops held until the snapshot brings us level.
  std::map<std::uint32_t, AppOp> pending_;
  bool caught_up_ = true;  // false between catch_up() and the snapshot
};

}  // namespace gmmcs::xgsp
