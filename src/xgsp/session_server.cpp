#include "xgsp/session_server.hpp"

#include "common/log.hpp"

namespace gmmcs::xgsp {

SessionServer::SessionServer(sim::Host& host, sim::Endpoint broker_stream)
    : client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "xgsp-session-server",
                                           .udp_delivery = false, .udp_publish = false}) {
  client_.subscribe(kControlTopic);
  client_.on_event([this](const broker::Event& ev) {
    auto req = Message::parse(gmmcs::to_string(std::span<const std::uint8_t>(ev.payload)));
    Message reply = req.ok() ? handle(req.value()) : Message::error(req.error().message);
    if (req.ok() && !req.value().reply_to.empty()) {
      reply.seq = req.value().seq;
      client_.publish(req.value().reply_to, to_bytes(reply.serialize()),
                      broker::QoS::kReliable);
    }
  });
}

Session* SessionServer::find(const std::string& id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

Message SessionServer::handle(const Message& request) {
  ++requests_;
  switch (request.type) {
    case MsgType::kCreateSession: return do_create(request);
    case MsgType::kJoinSession: return do_join(request);
    case MsgType::kLeaveSession: return do_leave(request);
    case MsgType::kEndSession: return do_end(request);
    case MsgType::kListSessions: return do_list(request);
    case MsgType::kFloorRequest:
    case MsgType::kFloorRelease: return do_floor(request);
    default:
      return Message::error("xgsp: not a request: " + std::string(to_string(request.type)));
  }
}

Message SessionServer::do_create(const Message& req) {
  if (req.title.empty()) return Message::error("xgsp: session needs a title");
  std::string id = std::to_string(ids_.next());
  Session s(id, req.title, req.user, req.mode);
  for (const auto& m : req.media) s.add_stream(m.kind, m.codec);
  if (req.media.empty()) {
    // Default A/V session.
    s.add_stream("audio", "PCMU");
    s.add_stream("video", "H261");
  }
  auto [it, inserted] = sessions_.emplace(id, std::move(s));
  GMMCS_INFO("xgsp") << "created session " << id << " '" << req.title << "'";
  if (observer_) observer_(it->second, MsgType::kCreateSession);
  Message reply;
  reply.type = MsgType::kSessionInfo;
  reply.sessions.push_back(it->second);
  return reply;
}

Message SessionServer::do_join(const Message& req) {
  Session* s = find(req.session_id);
  if (s == nullptr) return Message::error("xgsp: no such session " + req.session_id);
  Participant p;
  p.user = req.user;
  p.kind = req.endpoint_kind;
  p.moderator = (s->creator() == req.user);
  if (!s->join(p)) return Message::error("xgsp: join refused for " + req.user);
  notify(*s, MsgType::kJoinSession);
  if (observer_) observer_(*s, MsgType::kJoinSession);
  Message reply;
  reply.type = MsgType::kJoinAck;
  reply.sessions.push_back(*s);
  return reply;
}

Message SessionServer::do_leave(const Message& req) {
  Session* s = find(req.session_id);
  if (s == nullptr) return Message::error("xgsp: no such session " + req.session_id);
  if (!s->leave(req.user)) return Message::error("xgsp: " + req.user + " is not a member");
  notify(*s, MsgType::kLeaveSession);
  if (observer_) observer_(*s, MsgType::kLeaveSession);
  Message reply;
  reply.type = MsgType::kAck;
  reply.session_id = req.session_id;
  return reply;
}

Message SessionServer::do_end(const Message& req) {
  Session* s = find(req.session_id);
  if (s == nullptr) return Message::error("xgsp: no such session " + req.session_id);
  s->end();
  notify(*s, MsgType::kEndSession);
  if (observer_) observer_(*s, MsgType::kEndSession);
  Message reply;
  reply.type = MsgType::kAck;
  reply.session_id = req.session_id;
  return reply;
}

Message SessionServer::do_list(const Message&) const {
  Message reply;
  reply.type = MsgType::kSessionList;
  for (const auto& [id, s] : sessions_) reply.sessions.push_back(s);
  return reply;
}

Message SessionServer::do_floor(const Message& req) {
  Session* s = find(req.session_id);
  if (s == nullptr) return Message::error("xgsp: no such session " + req.session_id);
  if (req.type == MsgType::kFloorRequest) {
    s->request_floor(req.user);
  } else {
    s->release_floor(req.user);
  }
  notify(*s, req.type);
  Message reply;
  reply.type = MsgType::kFloorStatus;
  reply.session_id = req.session_id;
  reply.floor_holder = s->floor_holder();
  reply.floor_queue = s->floor_queue();
  return reply;
}

void SessionServer::notify(const Session& s, MsgType change) {
  Message note;
  note.type = MsgType::kSessionInfo;
  note.session_id = s.id();
  note.reason = to_string(change);  // what changed, for observers
  note.sessions.push_back(s);
  note.floor_holder = s.floor_holder();
  client_.publish(s.control_topic(), to_bytes(note.serialize()), broker::QoS::kReliable);
}

}  // namespace gmmcs::xgsp
