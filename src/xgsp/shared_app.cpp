#include "xgsp/shared_app.hpp"

#include "common/strings.hpp"

namespace gmmcs::xgsp {

namespace {
std::string text_of(const broker::Event& ev) {
  return gmmcs::to_string(std::span<const std::uint8_t>(ev.payload));
}
}  // namespace

xml::Element AppOp::to_xml() const {
  xml::Element e("app-op");
  e.set_attr("seq", std::to_string(seq));
  e.set_attr("actor", actor);
  e.set_attr("command", command);
  if (!args.empty()) e.set_text(args);
  return e;
}

AppOp AppOp::from_xml(const xml::Element& e) {
  AppOp op;
  if (e.has_attr("seq")) op.seq = parse_u32(e.attr("seq")).value_or(0);
  op.actor = e.attr("actor");
  op.command = e.attr("command");
  op.args = e.text();
  return op;
}

SharedAppHost::SharedAppHost(sim::Host& host, sim::Endpoint broker_stream, std::string topic)
    : topic_(std::move(topic)),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "shared-app-host", .udp_delivery = false,
                                           .udp_publish = false}) {
  client_.subscribe(topic_);
  client_.on_event([this](const broker::Event& ev) { handle(ev); });
}

void SharedAppHost::handle(const broker::Event& ev) {
  auto doc = xml::parse(text_of(ev));
  if (!doc.ok()) return;
  const xml::Element& root = doc.value();
  if (root.name() == "app-op" && root.attr("seq") == "0") {
    // A submission: sequence it and publish the authoritative form.
    AppOp op = AppOp::from_xml(root);
    op.seq = next_seq_++;
    log_.push_back(op);
    client_.publish(topic_, to_bytes(op.to_xml().serialize()), broker::QoS::kReliable);
    return;
  }
  if (root.name() == "app-snapshot-request") {
    ++snapshots_;
    xml::Element snap("app-snapshot");
    snap.set_attr("for", root.attr("user"));
    snap.set_attr("through", std::to_string(log_.size()));
    for (const AppOp& op : log_) snap.add_child(op.to_xml());
    client_.publish(topic_, to_bytes(snap.serialize()), broker::QoS::kReliable);
  }
}

SharedAppClient::SharedAppClient(sim::Host& host, sim::Endpoint broker_stream,
                                 std::string topic, std::string user)
    : topic_(std::move(topic)),
      user_(std::move(user)),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "shared-app-" + user_,
                                           .udp_delivery = false, .udp_publish = false}) {
  client_.subscribe(topic_);
  client_.on_event([this](const broker::Event& ev) { handle(ev); });
}

void SharedAppClient::submit(const std::string& command, const std::string& args) {
  AppOp op;
  op.seq = 0;  // "please sequence me"
  op.actor = user_;
  op.command = command;
  op.args = args;
  client_.publish(topic_, to_bytes(op.to_xml().serialize()), broker::QoS::kReliable);
}

void SharedAppClient::catch_up() {
  caught_up_ = false;
  xml::Element req("app-snapshot-request");
  req.set_attr("user", user_);
  client_.publish(topic_, to_bytes(req.serialize()), broker::QoS::kReliable);
}

void SharedAppClient::on_op(std::function<void(const AppOp&)> handler) {
  handler_ = std::move(handler);
}

void SharedAppClient::apply(const AppOp& op) {
  applied_ = op.seq;
  if (handler_) handler_(op);
}

void SharedAppClient::handle(const broker::Event& ev) {
  auto doc = xml::parse(text_of(ev));
  if (!doc.ok()) return;
  const xml::Element& root = doc.value();
  if (root.name() == "app-op") {
    AppOp op = AppOp::from_xml(root);
    if (op.seq == 0) return;  // someone else's raw submission
    if (op.seq <= applied_) return;  // duplicate / already in snapshot
    if (!caught_up_ || op.seq != applied_ + 1) {
      pending_.emplace(op.seq, std::move(op));
      return;
    }
    apply(op);
    // Drain any directly-following held ops.
    auto it = pending_.find(applied_ + 1);
    while (it != pending_.end()) {
      apply(it->second);
      pending_.erase(it);
      it = pending_.find(applied_ + 1);
    }
    return;
  }
  if (root.name() == "app-snapshot" && root.attr("for") == user_) {
    for (const xml::Element* op_el : root.children_named("app-op")) {
      AppOp op = AppOp::from_xml(*op_el);
      if (op.seq > applied_) apply(op);
    }
    caught_up_ = true;
    // Live ops that raced past the snapshot.
    auto it = pending_.find(applied_ + 1);
    while (it != pending_.end()) {
      apply(it->second);
      pending_.erase(it);
      it = pending_.find(applied_ + 1);
    }
    pending_.clear();
  }
}

}  // namespace gmmcs::xgsp
