#include "xgsp/directory.hpp"

#include "common/strings.hpp"

namespace gmmcs::xgsp {

xml::Element UserAccount::to_xml() const {
  xml::Element e("user");
  e.set_attr("id", id);
  e.set_attr("name", display_name);
  e.set_attr("community", community);
  e.set_attr("audio", audio_codec);
  e.set_attr("video", video_codec);
  e.set_attr("terminal-kind", xgsp::to_string(terminal_kind));
  e.set_attr("terminal-address", terminal_address);
  return e;
}

UserAccount UserAccount::from_xml(const xml::Element& e) {
  UserAccount u;
  u.id = e.attr("id");
  u.display_name = e.attr("name");
  u.community = e.attr("community");
  if (e.has_attr("audio")) u.audio_codec = e.attr("audio");
  if (e.has_attr("video")) u.video_codec = e.attr("video");
  u.terminal_kind = endpoint_kind_from(e.attr("terminal-kind")).value_or(EndpointKind::kXgsp);
  u.terminal_address = e.attr("terminal-address");
  return u;
}

xml::Element CommunityRecord::to_xml() const {
  xml::Element e("community");
  e.set_attr("name", name);
  e.set_attr("kind", kind);
  e.set_attr("ws-node", std::to_string(web_service.node));
  e.set_attr("ws-port", std::to_string(web_service.port));
  if (!wsdl_ci.empty()) e.add_text_child("wsdl-ci", wsdl_ci);
  return e;
}

CommunityRecord CommunityRecord::from_xml(const xml::Element& e) {
  CommunityRecord c;
  c.name = e.attr("name");
  c.kind = e.attr("kind");
  if (e.has_attr("ws-node")) {
    c.web_service.node = static_cast<sim::NodeId>(parse_u32(e.attr("ws-node")).value_or(0));
    c.web_service.port = parse_u16(e.attr("ws-port")).value_or(0);
  }
  c.wsdl_ci = e.child_text("wsdl-ci");
  return c;
}

bool Directory::register_user(UserAccount user) {
  return users_.emplace(user.id, std::move(user)).second;
}

const UserAccount* Directory::find_user(const std::string& id) const {
  auto it = users_.find(id);
  return it == users_.end() ? nullptr : &it->second;
}

bool Directory::bind_terminal(const std::string& user_id, EndpointKind kind,
                              std::string address) {
  auto it = users_.find(user_id);
  if (it == users_.end()) return false;
  it->second.terminal_kind = kind;
  it->second.terminal_address = std::move(address);
  return true;
}

bool Directory::register_community(CommunityRecord community) {
  auto name = community.name;
  communities_[name] = std::move(community);
  return true;
}

const CommunityRecord* Directory::find_community(const std::string& name) const {
  auto it = communities_.find(name);
  return it == communities_.end() ? nullptr : &it->second;
}

std::vector<std::string> Directory::community_names() const {
  std::vector<std::string> out;
  out.reserve(communities_.size());
  for (const auto& [name, c] : communities_) out.push_back(name);
  return out;
}

DirectoryServer::DirectoryServer(sim::Host& host, std::uint16_t port) : soap_(host, port) {
  soap_.register_operation("RegisterUser", [this](const xml::Element& req) -> Result<xml::Element> {
    const xml::Element* u = req.child("user");
    if (u == nullptr) return fail<xml::Element>("RegisterUser: missing <user>");
    bool ok = dir_.register_user(UserAccount::from_xml(*u));
    xml::Element resp("RegisterUserResponse");
    resp.set_attr("ok", ok ? "true" : "false");
    return resp;
  });
  soap_.register_operation("LookupUser", [this](const xml::Element& req) -> Result<xml::Element> {
    const UserAccount* u = dir_.find_user(req.attr("id"));
    if (u == nullptr) return fail<xml::Element>("LookupUser: unknown user " + req.attr("id"));
    xml::Element resp("LookupUserResponse");
    resp.add_child(u->to_xml());
    return resp;
  });
  soap_.register_operation("BindTerminal", [this](const xml::Element& req) -> Result<xml::Element> {
    auto kind = endpoint_kind_from(req.attr("kind"));
    if (!kind) return fail<xml::Element>("BindTerminal: bad kind");
    bool ok = dir_.bind_terminal(req.attr("user"), *kind, req.attr("address"));
    xml::Element resp("BindTerminalResponse");
    resp.set_attr("ok", ok ? "true" : "false");
    return resp;
  });
  soap_.register_operation("RegisterCommunity",
                           [this](const xml::Element& req) -> Result<xml::Element> {
    const xml::Element* c = req.child("community");
    if (c == nullptr) return fail<xml::Element>("RegisterCommunity: missing <community>");
    dir_.register_community(CommunityRecord::from_xml(*c));
    xml::Element resp("RegisterCommunityResponse");
    resp.set_attr("ok", "true");
    return resp;
  });
  soap_.register_operation("LookupCommunity",
                           [this](const xml::Element& req) -> Result<xml::Element> {
    const CommunityRecord* c = dir_.find_community(req.attr("name"));
    if (c == nullptr) {
      return fail<xml::Element>("LookupCommunity: unknown community " + req.attr("name"));
    }
    xml::Element resp("LookupCommunityResponse");
    resp.add_child(c->to_xml());
    return resp;
  });
}

DirectoryClient::DirectoryClient(sim::Host& host, sim::Endpoint server) : soap_(host, server) {}

void DirectoryClient::register_user(const UserAccount& user, std::function<void(bool)> cb) {
  xml::Element req("RegisterUser");
  req.add_child(user.to_xml());
  soap_.call(std::move(req), [cb = std::move(cb)](Result<xml::Element> r) {
    cb(r.ok() && r.value().attr("ok") == "true");
  });
}

void DirectoryClient::lookup_user(const std::string& id,
                                  std::function<void(std::optional<UserAccount>)> cb) {
  xml::Element req("LookupUser");
  req.set_attr("id", id);
  soap_.call(std::move(req), [cb = std::move(cb)](Result<xml::Element> r) {
    if (!r.ok() || r.value().child("user") == nullptr) {
      cb(std::nullopt);
      return;
    }
    cb(UserAccount::from_xml(*r.value().child("user")));
  });
}

void DirectoryClient::bind_terminal(const std::string& user_id, EndpointKind kind,
                                    const std::string& address, std::function<void(bool)> cb) {
  xml::Element req("BindTerminal");
  req.set_attr("user", user_id);
  req.set_attr("kind", to_string(kind));
  req.set_attr("address", address);
  soap_.call(std::move(req), [cb = std::move(cb)](Result<xml::Element> r) {
    cb(r.ok() && r.value().attr("ok") == "true");
  });
}

void DirectoryClient::register_community(const CommunityRecord& community,
                                         std::function<void(bool)> cb) {
  xml::Element req("RegisterCommunity");
  req.add_child(community.to_xml());
  soap_.call(std::move(req), [cb = std::move(cb)](Result<xml::Element> r) { cb(r.ok()); });
}

void DirectoryClient::lookup_community(const std::string& name,
                                       std::function<void(std::optional<CommunityRecord>)> cb) {
  xml::Element req("LookupCommunity");
  req.set_attr("name", name);
  soap_.call(std::move(req), [cb = std::move(cb)](Result<xml::Element> r) {
    if (!r.ok() || r.value().child("community") == nullptr) {
      cb(std::nullopt);
      return;
    }
    cb(CommunityRecord::from_xml(*r.value().child("community")));
  });
}

}  // namespace gmmcs::xgsp
