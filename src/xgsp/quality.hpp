// Session quality monitoring.
//
// Gateways and native clients publish receiver-quality reports (the
// fields of RTCP receiver reports: loss fraction, jitter) onto a
// session's quality topic; the QualityMonitor — typically co-located with
// the session server — aggregates the latest report per participant and
// flags degraded members. This is the management-plane view a conference
// operator needs ("who is on a bad link?") built from the same RTCP
// quantities the capacity experiments use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "broker/client.hpp"
#include "rtp/receiver_stats.hpp"
#include "xml/xml.hpp"

namespace gmmcs::xgsp {

struct QualityReport {
  std::string user;
  double loss_ratio = 0.0;
  double jitter_ms = 0.0;
  double delay_ms = 0.0;     // mean observed end-to-end delay
  std::uint64_t received = 0;

  [[nodiscard]] xml::Element to_xml() const;
  static QualityReport from_xml(const xml::Element& e);
  /// Builds a report from local receiver statistics.
  static QualityReport from_stats(std::string user, const rtp::ReceiverStats& stats);
};

/// Topic carrying quality reports for a session.
std::string quality_topic(const std::string& session_id);

/// Publishes a report onto the session's quality topic (reliable QoS).
void publish_quality(broker::BrokerClient& client, const std::string& session_id,
                     const QualityReport& report);

class QualityMonitor {
 public:
  QualityMonitor(sim::Host& host, sim::Endpoint broker_stream, std::string session_id);

  /// Latest report per user.
  [[nodiscard]] const std::map<std::string, QualityReport>& latest() const { return latest_; }
  /// Users whose latest report breaches either threshold.
  [[nodiscard]] std::vector<std::string> degraded(double max_loss = 0.02,
                                                  double max_jitter_ms = 40.0) const;
  /// Fires on each received report.
  void on_report(std::function<void(const QualityReport&)> handler);
  [[nodiscard]] std::uint64_t reports_received() const { return reports_; }

 private:
  std::string session_id_;
  broker::BrokerClient client_;
  std::map<std::string, QualityReport> latest_;
  std::function<void(const QualityReport&)> handler_;
  std::uint64_t reports_ = 0;
};

}  // namespace gmmcs::xgsp
