#include "xgsp/wsdl_ci.hpp"

#include "common/strings.hpp"

namespace gmmcs::xgsp {

xml::Element WsdlCi::to_xml() const {
  xml::Element e("wsdl-ci");
  e.set_attr("service", service_name);
  e.set_attr("community", community);
  e.set_attr("node", std::to_string(endpoint.node));
  e.set_attr("port", std::to_string(endpoint.port));
  xml::Element& ops = e.add_child("operations");
  ops.add_child("establish").set_attr("name", establish_op);
  ops.add_child("membership").set_attr("name", membership_op);
  ops.add_child("control").set_attr("name", control_op);
  return e;
}

Result<WsdlCi> WsdlCi::from_xml(const xml::Element& e) {
  if (e.name() != "wsdl-ci") return fail<WsdlCi>("wsdl-ci: wrong root element");
  WsdlCi d;
  d.service_name = e.attr("service");
  d.community = e.attr("community");
  if (!e.has_attr("node") || !e.has_attr("port")) {
    return fail<WsdlCi>("wsdl-ci: missing endpoint");
  }
  auto node = parse_u32(e.attr("node"));
  auto port = parse_u16(e.attr("port"));
  if (!node || !port) return fail<WsdlCi>("wsdl-ci: malformed endpoint");
  d.endpoint.node = static_cast<sim::NodeId>(*node);
  d.endpoint.port = *port;
  if (const xml::Element* ops = e.child("operations")) {
    if (const xml::Element* op = ops->child("establish")) d.establish_op = op->attr("name");
    if (const xml::Element* op = ops->child("membership")) d.membership_op = op->attr("name");
    if (const xml::Element* op = ops->child("control")) d.control_op = op->attr("name");
  }
  return d;
}

Result<WsdlCi> WsdlCi::parse(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return fail<WsdlCi>(doc.error().message);
  return from_xml(doc.value());
}

CollaborationProxy::CollaborationProxy(sim::Host& host, WsdlCi descriptor)
    : descriptor_(std::move(descriptor)), client_(host, descriptor_.endpoint) {}

void CollaborationProxy::invoke(const std::string& op, xml::Element args, Callback cb) {
  xml::Element request(op);
  request.add_child(std::move(args));
  client_.call(std::move(request), std::move(cb));
}

void CollaborationProxy::establish(xml::Element args, Callback cb) {
  invoke(descriptor_.establish_op, std::move(args), std::move(cb));
}

void CollaborationProxy::membership(xml::Element args, Callback cb) {
  invoke(descriptor_.membership_op, std::move(args), std::move(cb));
}

void CollaborationProxy::control(xml::Element args, Callback cb) {
  invoke(descriptor_.control_op, std::move(args), std::move(cb));
}

}  // namespace gmmcs::xgsp
