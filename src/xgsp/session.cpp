#include "xgsp/session.hpp"

#include <algorithm>

namespace gmmcs::xgsp {

const char* to_string(EndpointKind k) {
  switch (k) {
    case EndpointKind::kXgsp: return "xgsp";
    case EndpointKind::kSip: return "sip";
    case EndpointKind::kH323: return "h323";
    case EndpointKind::kAdmire: return "admire";
    case EndpointKind::kAccessGrid: return "accessgrid";
    case EndpointKind::kStreaming: return "streaming";
  }
  return "?";
}

std::optional<EndpointKind> endpoint_kind_from(const std::string& s) {
  for (EndpointKind k : {EndpointKind::kXgsp, EndpointKind::kSip, EndpointKind::kH323,
                         EndpointKind::kAdmire, EndpointKind::kAccessGrid,
                         EndpointKind::kStreaming}) {
    if (s == to_string(k)) return k;
  }
  return std::nullopt;
}

xml::Element MediaStream::to_xml() const {
  xml::Element e("media");
  e.set_attr("kind", kind);
  e.set_attr("codec", codec);
  e.set_attr("topic", topic);
  return e;
}

MediaStream MediaStream::from_xml(const xml::Element& e) {
  return MediaStream{e.attr("kind"), e.attr("codec"), e.attr("topic")};
}

Session::Session(std::string id, std::string title, std::string creator, SessionMode mode)
    : id_(std::move(id)), title_(std::move(title)), creator_(std::move(creator)), mode_(mode) {}

MediaStream& Session::add_stream(const std::string& kind, const std::string& codec) {
  MediaStream s;
  s.kind = kind;
  s.codec = codec;
  s.topic = "/xgsp/session/" + id_ + "/" + kind;
  streams_.push_back(std::move(s));
  return streams_.back();
}

const MediaStream* Session::stream(const std::string& kind) const {
  for (const auto& s : streams_) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

bool Session::join(const Participant& p) {
  if (state_ == SessionState::kEnded) return false;
  if (has_member(p.user)) return false;
  members_.push_back(p);
  if (state_ == SessionState::kCreated) state_ = SessionState::kActive;
  return true;
}

bool Session::leave(const std::string& user) {
  auto before = members_.size();
  std::erase_if(members_, [&](const Participant& p) { return p.user == user; });
  if (members_.size() == before) return false;
  if (floor_holder_ == user) {
    floor_holder_.clear();
    if (!floor_queue_.empty()) {
      floor_holder_ = floor_queue_.front();
      floor_queue_.erase(floor_queue_.begin());
    }
  }
  std::erase(floor_queue_, user);
  return true;
}

bool Session::has_member(const std::string& user) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Participant& p) { return p.user == user; });
}

void Session::end() {
  state_ = SessionState::kEnded;
  members_.clear();
  floor_holder_.clear();
  floor_queue_.clear();
}

bool Session::request_floor(const std::string& user) {
  if (!has_member(user)) return false;
  if (floor_holder_.empty()) {
    floor_holder_ = user;
    return true;
  }
  if (floor_holder_ == user) return true;
  if (std::find(floor_queue_.begin(), floor_queue_.end(), user) == floor_queue_.end()) {
    floor_queue_.push_back(user);
  }
  return false;  // queued, not granted
}

bool Session::release_floor(const std::string& user) {
  if (floor_holder_ != user) return false;
  floor_holder_.clear();
  if (!floor_queue_.empty()) {
    floor_holder_ = floor_queue_.front();
    floor_queue_.erase(floor_queue_.begin());
  }
  return true;
}

std::string Session::control_topic() const {
  return "/xgsp/session/" + id_ + "/control";
}

xml::Element Session::to_xml() const {
  xml::Element e("session");
  e.set_attr("id", id_);
  e.set_attr("mode", mode_ == SessionMode::kAdHoc ? "adhoc" : "scheduled");
  e.set_attr("state", state_ == SessionState::kCreated
                          ? "created"
                          : (state_ == SessionState::kActive ? "active" : "ended"));
  e.add_text_child("title", title_);
  e.add_text_child("creator", creator_);
  for (const auto& s : streams_) e.add_child(s.to_xml());
  for (const auto& m : members_) {
    xml::Element& p = e.add_child("participant");
    p.set_attr("user", m.user);
    p.set_attr("kind", to_string(m.kind));
    if (m.moderator) p.set_attr("moderator", "true");
  }
  return e;
}

Session Session::from_xml(const xml::Element& e) {
  Session s(e.attr("id"), e.child_text("title"), e.child_text("creator"),
            e.attr("mode") == "scheduled" ? SessionMode::kScheduled : SessionMode::kAdHoc);
  std::string state = e.attr("state");
  if (state == "active") s.state_ = SessionState::kActive;
  if (state == "ended") s.state_ = SessionState::kEnded;
  for (const xml::Element* m : e.children_named("media")) {
    s.streams_.push_back(MediaStream::from_xml(*m));
  }
  for (const xml::Element* p : e.children_named("participant")) {
    Participant part;
    part.user = p->attr("user");
    part.kind = endpoint_kind_from(p->attr("kind")).value_or(EndpointKind::kXgsp);
    part.moderator = p->attr("moderator") == "true";
    s.members_.push_back(std::move(part));
  }
  return s;
}

}  // namespace gmmcs::xgsp
