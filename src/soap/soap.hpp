// SOAP 1.1-style envelopes, HTTP-lite framing and RPC over streams.
//
// Everything "web services" in the paper rides on this: the XGSP web
// server's operations, the naming & directory service, and the community
// web services bound through WSDL-CI (Admire's rendezvous negotiation,
// HearMe-style VoIP control). The envelope layout matches 2003-era
// doc/literal SOAP closely enough to be recognizable; HTTP framing is one
// request or response message per stream frame.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "sim/network.hpp"
#include "transport/stream.hpp"
#include "xml/xml.hpp"

namespace gmmcs::soap {

/// Wraps a body payload element in <soap:Envelope><soap:Body>...</>.
xml::Element make_envelope(xml::Element body_content);
/// Builds a <soap:Fault> envelope.
xml::Element make_fault(const std::string& code, const std::string& reason);
/// Extracts the first element inside soap:Body. Faults come back as
/// errors with the fault string.
[[nodiscard]] Result<xml::Element> parse_envelope(const std::string& text);

/// Minimal HTTP messages carrying SOAP payloads.
struct HttpRequest {
  std::string method = "POST";
  std::string path = "/";
  std::string soap_action;
  std::string body;
};
struct HttpResponse {
  int status = 200;
  std::string body;
};

std::string serialize(const HttpRequest& r);
std::string serialize(const HttpResponse& r);
[[nodiscard]] Result<HttpRequest> parse_http_request(const std::string& text);
[[nodiscard]] Result<HttpResponse> parse_http_response(const std::string& text);

/// A SOAP RPC endpoint: dispatches by the local name of the body's first
/// child element ("CreateSession", "GetRendezvous", ...).
class GMMCS_PINNED("SOAP services are registered at startup and serve until the loop drains") SoapServer {
 public:
  /// Handler receives the request element, returns the response element
  /// (wrapped for you) or an Error (returned as a SOAP fault).
  using Handler = std::function<Result<xml::Element>(const xml::Element&)>;

  SoapServer(sim::Host& host, std::uint16_t port);

  void register_operation(const std::string& name, Handler handler);
  [[nodiscard]] sim::Endpoint endpoint() const { return listener_.local(); }
  [[nodiscard]] std::uint64_t calls() const { return calls_; }
  [[nodiscard]] std::uint64_t faults() const { return faults_; }

 private:
  void accept(transport::StreamConnectionPtr conn);
  [[nodiscard]] HttpResponse handle(const HttpRequest& req);

  transport::StreamListener listener_;
  std::map<std::string, Handler> operations_;
  std::vector<transport::StreamConnectionPtr> conns_;
  std::uint64_t calls_ = 0;
  std::uint64_t faults_ = 0;
};

/// A SOAP RPC client: sends requests over one persistent connection and
/// correlates responses in order (HTTP/1.1 pipelining semantics).
class GMMCS_PINNED("SOAP clients outlive their in-flight calls; the loop drains before teardown") SoapClient {
 public:
  using Callback = std::function<void(Result<xml::Element>)>;

  SoapClient(sim::Host& host, sim::Endpoint server);

  /// Invokes an operation; `request` is the body payload element whose
  /// name selects the server-side operation.
  void call(xml::Element request, Callback on_reply);
  [[nodiscard]] std::uint64_t calls_sent() const { return calls_sent_; }

 private:
  transport::StreamConnectionPtr conn_;
  std::deque<Callback> pending_;
  std::uint64_t calls_sent_ = 0;
};

}  // namespace gmmcs::soap
