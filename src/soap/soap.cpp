#include "soap/soap.hpp"

#include "common/strings.hpp"

namespace gmmcs::soap {

namespace {
constexpr const char* kEnvNs = "http://schemas.xmlsoap.org/soap/envelope/";
}  // namespace

xml::Element make_envelope(xml::Element body_content) {
  xml::Element env("soap:Envelope");
  env.set_attr("xmlns:soap", kEnvNs);
  env.add_child("soap:Body").add_child(std::move(body_content));
  return env;
}

xml::Element make_fault(const std::string& code, const std::string& reason) {
  xml::Element fault("soap:Fault");
  fault.add_text_child("faultcode", code);
  fault.add_text_child("faultstring", reason);
  return make_envelope(std::move(fault));
}

Result<xml::Element> parse_envelope(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return fail<xml::Element>("soap: " + doc.error().message);
  const xml::Element& root = doc.value();
  if (xml::local_name(root.name()) != "Envelope") {
    return fail<xml::Element>("soap: root is not an Envelope");
  }
  const xml::Element* body = root.child_local("Body");
  if (body == nullptr) return fail<xml::Element>("soap: no Body");
  if (body->children().empty()) return fail<xml::Element>("soap: empty Body");
  const xml::Element& first = body->children().front();
  if (xml::local_name(first.name()) == "Fault") {
    return fail<xml::Element>("soap fault: " + first.child_text("faultcode") + ": " +
                              first.child_text("faultstring"));
  }
  return first;
}

std::string serialize(const HttpRequest& r) {
  std::string out = r.method + " " + r.path + " HTTP/1.1\r\n";
  out += "Content-Type: text/xml; charset=utf-8\r\n";
  if (!r.soap_action.empty()) out += "SOAPAction: \"" + r.soap_action + "\"\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n\r\n";
  out += r.body;
  return out;
}

std::string serialize(const HttpResponse& r) {
  std::string reason = r.status == 200 ? "OK" : "Internal Server Error";
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " + reason + "\r\n";
  out += "Content-Type: text/xml; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n\r\n";
  out += r.body;
  return out;
}

namespace {
/// Splits head/body on the blank line; returns false if absent.
bool split_http(const std::string& text, std::string& head, std::string& body) {
  std::size_t pos = text.find("\r\n\r\n");
  std::size_t skip = 4;
  if (pos == std::string::npos) {
    pos = text.find("\n\n");
    skip = 2;
    if (pos == std::string::npos) return false;
  }
  head = text.substr(0, pos);
  body = text.substr(pos + skip);
  return true;
}
}  // namespace

Result<HttpRequest> parse_http_request(const std::string& text) {
  std::string head, body;
  if (!split_http(text, head, body)) return fail<HttpRequest>("http: no header/body separator");
  auto lines = split_lines(head);
  if (lines.empty()) return fail<HttpRequest>("http: empty request");
  auto parts = split_n(lines[0], ' ', 3);
  if (parts.size() != 3 || !starts_with(parts[2], "HTTP/")) {
    return fail<HttpRequest>("http: malformed request line");
  }
  HttpRequest req;
  req.method = parts[0];
  req.path = parts[1];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto kv = split_n(lines[i], ':', 2);
    if (kv.size() == 2 && iequals(trim(kv[0]), "SOAPAction")) {
      std::string v(trim(kv[1]));
      if (v.size() >= 2 && v.front() == '"' && v.back() == '"') v = v.substr(1, v.size() - 2);
      req.soap_action = v;
    }
  }
  req.body = std::move(body);
  return req;
}

Result<HttpResponse> parse_http_response(const std::string& text) {
  std::string head, body;
  if (!split_http(text, head, body)) return fail<HttpResponse>("http: no header/body separator");
  auto lines = split_lines(head);
  if (lines.empty()) return fail<HttpResponse>("http: empty response");
  auto parts = split_n(lines[0], ' ', 3);
  if (parts.size() < 2 || !starts_with(parts[0], "HTTP/")) {
    return fail<HttpResponse>("http: malformed status line");
  }
  HttpResponse resp;
  auto status = parse_u32(parts[1], 999);
  if (!status) return fail<HttpResponse>("http: malformed status code '" + parts[1] + "'");
  resp.status = static_cast<int>(*status);
  resp.body = std::move(body);
  return resp;
}

SoapServer::SoapServer(sim::Host& host, std::uint16_t port) : listener_(host, port) {
  listener_.on_accept([this](transport::StreamConnectionPtr conn) { accept(std::move(conn)); });
}

void SoapServer::register_operation(const std::string& name, Handler handler) {
  operations_[name] = std::move(handler);
}

void SoapServer::accept(transport::StreamConnectionPtr conn) {
  conns_.push_back(conn);
  auto* raw = conn.get();
  conn->on_message([this, raw](const Payload& data) {
    auto req = parse_http_request(to_string(data));
    HttpResponse resp;
    if (!req.ok()) {
      resp.status = 500;
      resp.body = make_fault("soap:Client", req.error().message).serialize();
    } else {
      resp = handle(req.value());
    }
    raw->send(serialize(resp));
  });
  conn->on_close([this, raw] {
    std::erase_if(conns_, [raw](const transport::StreamConnectionPtr& c) {
      return c.get() == raw;
    });
  });
}

HttpResponse SoapServer::handle(const HttpRequest& req) {
  ++calls_;
  auto body = parse_envelope(req.body);
  HttpResponse resp;
  if (!body.ok()) {
    ++faults_;
    resp.status = 500;
    resp.body = make_fault("soap:Client", body.error().message).serialize();
    return resp;
  }
  std::string op(xml::local_name(body.value().name()));
  auto it = operations_.find(op);
  if (it == operations_.end()) {
    ++faults_;
    resp.status = 500;
    resp.body = make_fault("soap:Client", "unknown operation '" + op + "'").serialize();
    return resp;
  }
  Result<xml::Element> result = it->second(body.value());
  if (!result.ok()) {
    ++faults_;
    resp.status = 500;
    resp.body = make_fault("soap:Server", result.error().message).serialize();
    return resp;
  }
  resp.body = make_envelope(std::move(result).value()).serialize();
  return resp;
}

SoapClient::SoapClient(sim::Host& host, sim::Endpoint server)
    : conn_(transport::StreamConnection::connect(host, server)) {
  conn_->on_message([this](const Payload& data) {
    if (pending_.empty()) return;
    Callback cb = std::move(pending_.front());
    pending_.pop_front();
    auto resp = parse_http_response(to_string(data));
    if (!resp.ok()) {
      cb(fail<xml::Element>(resp.error().message));
      return;
    }
    cb(parse_envelope(resp.value().body));
  });
  conn_->on_close([this] {
    while (!pending_.empty()) {
      Callback cb = std::move(pending_.front());
      pending_.pop_front();
      cb(fail<xml::Element>("soap: connection closed"));
    }
  });
}

void SoapClient::call(xml::Element request, Callback on_reply) {
  HttpRequest req;
  req.soap_action = std::string(xml::local_name(request.name()));
  req.body = make_envelope(std::move(request)).serialize();
  pending_.push_back(std::move(on_reply));
  ++calls_sent_;
  conn_->send(serialize(req));
}

}  // namespace gmmcs::soap
