#include "streaming/rtsp.hpp"

#include "common/strings.hpp"

namespace gmmcs::streaming {

std::string RtspMessage::header(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return v;
  }
  return {};
}

RtspMessage& RtspMessage::set_header(const std::string& name, const std::string& value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = value;
      return *this;
    }
  }
  headers.emplace_back(name, value);
  return *this;
}

int RtspMessage::cseq() const {
  return static_cast<int>(parse_u32(header("CSeq")).value_or(0));
}

std::string RtspMessage::serialize() const {
  std::string out;
  if (is_request) {
    out = method + " " + uri + " RTSP/1.0\r\n";
  } else {
    out = "RTSP/1.0 " + std::to_string(status) + " " + reason + "\r\n";
  }
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

Result<RtspMessage> RtspMessage::parse(const std::string& text) {
  std::size_t sep = text.find("\r\n\r\n");
  std::size_t skip = 4;
  if (sep == std::string::npos) {
    sep = text.find("\n\n");
    skip = 2;
    if (sep == std::string::npos) return fail<RtspMessage>("rtsp: no header/body separator");
  }
  RtspMessage m;
  m.body = text.substr(sep + skip);
  auto lines = split_lines(text.substr(0, sep));
  if (lines.empty()) return fail<RtspMessage>("rtsp: empty message");
  if (starts_with(lines[0], "RTSP/1.0 ")) {
    m.is_request = false;
    auto parts = split_n(lines[0], ' ', 3);
    if (parts.size() < 2) return fail<RtspMessage>("rtsp: malformed status line");
    auto status = parse_u32(parts[1], 999);
    if (!status) return fail<RtspMessage>("rtsp: malformed status code '" + parts[1] + "'");
    m.status = static_cast<int>(*status);
    m.reason = parts.size() == 3 ? parts[2] : "";
  } else {
    auto parts = split_n(lines[0], ' ', 3);
    if (parts.size() != 3 || parts[2] != "RTSP/1.0") {
      return fail<RtspMessage>("rtsp: malformed request line");
    }
    m.method = parts[0];
    m.uri = parts[1];
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto kv = split_n(lines[i], ':', 2);
    if (kv.size() != 2) return fail<RtspMessage>("rtsp: malformed header");
    std::string name(trim(kv[0]));
    if (iequals(name, "Content-Length")) continue;
    m.headers.emplace_back(std::move(name), std::string(trim(kv[1])));
  }
  return m;
}

RtspMessage RtspMessage::request(const std::string& method, const std::string& uri, int cseq) {
  RtspMessage m;
  m.is_request = true;
  m.method = method;
  m.uri = uri;
  m.set_header("CSeq", std::to_string(cseq));
  return m;
}

RtspMessage RtspMessage::response(const RtspMessage& req, int status,
                                  const std::string& reason) {
  RtspMessage m;
  m.is_request = false;
  m.status = status;
  m.reason = reason;
  m.set_header("CSeq", req.header("CSeq"));
  if (!req.session_id().empty()) m.set_header("Session", req.session_id());
  return m;
}

std::string stream_name_from_uri(const std::string& uri) {
  std::string_view s = uri;
  if (starts_with(s, "rtsp://")) s.remove_prefix(7);
  std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(s.substr(slash + 1));
}

}  // namespace gmmcs::streaming
