#include "streaming/producer.hpp"

namespace gmmcs::streaming {

RealProducer::RealProducer(sim::Host& host, sim::Endpoint broker_stream, HelixServer& helix,
                           Config cfg)
    : cfg_(std::move(cfg)),
      helix_(&helix),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "real-producer-" + cfg_.stream_name}),
      transcoder_(host.loop(), cfg_.transcode) {
  std::string description = "v=0\r\ns=" + cfg_.stream_name +
                            "\r\na=source-topic:" + cfg_.topic + "\r\nm=video 0 REAL " +
                            std::to_string(cfg_.transcode.output.payload_type) + "\r\n";
  helix_->register_stream(cfg_.stream_name, std::move(description));
  client_.subscribe(cfg_.topic);
  client_.on_event([this](const broker::Event& ev) {
    auto packet = rtp::RtpPacket::parse(ev.payload);
    if (!packet.ok()) return;
    ++packets_;
    transcoder_.push_packet(packet.value());
  });
  transcoder_.on_output([this](const media::EncodedBlock& block) {
    helix_->push_block(cfg_.stream_name, block);
  });
}

}  // namespace gmmcs::streaming
