#include "streaming/player.hpp"

#include "common/bytes.hpp"

namespace gmmcs::streaming {

StreamingPlayer::StreamingPlayer(sim::Host& host, sim::Endpoint rtsp_server)
    : StreamingPlayer(host, rtsp_server, Config{}) {}

StreamingPlayer::StreamingPlayer(sim::Host& host, sim::Endpoint rtsp_server, Config cfg)
    : host_(&host),
      cfg_(cfg),
      server_host_("host" + std::to_string(rtsp_server.node)),
      rtsp_(transport::StreamConnection::connect(host, rtsp_server)),
      media_in_(host) {
  rtsp_->on_message([this](const Payload& data) {
    auto parsed = RtspMessage::parse(gmmcs::to_string(std::span<const std::uint8_t>(data)));
    if (!parsed.ok() || pending_.empty()) return;
    auto cb = std::move(pending_.front());
    pending_.pop_front();
    cb(parsed.value());
  });
  media_in_.on_receive([this](const sim::Datagram& d) { on_media(d); });
}

void StreamingPlayer::send(RtspMessage req, std::function<void(const RtspMessage&)> on_resp) {
  req.set_header("CSeq", std::to_string(next_cseq_++));
  pending_.push_back(std::move(on_resp));
  rtsp_->send(req.serialize());
}

void StreamingPlayer::play(const std::string& stream_name, std::function<void(bool)> cb) {
  stream_ = stream_name;
  std::string uri = "rtsp://" + server_host_ + "/" + stream_name;
  send(RtspMessage::request("DESCRIBE", uri, 0), [this, uri, cb](const RtspMessage& resp) {
    if (resp.status != 200) {
      cb(false);
      return;
    }
    description_ = resp.body;
    RtspMessage setup = RtspMessage::request("SETUP", uri, 0);
    setup.set_header("Transport",
                     "SIM/RTP;client_node=" + std::to_string(media_in_.local().node) +
                         ";client_port=" + std::to_string(media_in_.local().port));
    send(std::move(setup), [this, uri, cb](const RtspMessage& resp2) {
      if (resp2.status != 200) {
        cb(false);
        return;
      }
      session_id_ = resp2.session_id();
      RtspMessage play = RtspMessage::request("PLAY", uri, 0);
      play.set_header("Session", session_id_);
      send(std::move(play), [this, cb](const RtspMessage& resp3) {
        playing_ = (resp3.status == 200);
        if (playing_) play_acked_at_ = host_->loop().now();
        cb(playing_);
      });
    });
  });
}

void StreamingPlayer::pause(std::function<void(bool)> cb) {
  RtspMessage req = RtspMessage::request("PAUSE", "rtsp://" + server_host_ + "/" + stream_, 0);
  req.set_header("Session", session_id_);
  send(std::move(req), [this, cb = std::move(cb)](const RtspMessage& resp) {
    if (resp.status == 200) playing_ = false;
    cb(resp.status == 200);
  });
}

void StreamingPlayer::teardown(std::function<void(bool)> cb) {
  RtspMessage req =
      RtspMessage::request("TEARDOWN", "rtsp://" + server_host_ + "/" + stream_, 0);
  req.set_header("Session", session_id_);
  send(std::move(req), [this, cb = std::move(cb)](const RtspMessage& resp) {
    if (resp.status == 200) playing_ = false;
    cb(resp.status == 200);
  });
}

void StreamingPlayer::on_media(const sim::Datagram& d) {
  ByteReader r(d.payload);
  std::uint32_t ts = r.u32();
  r.u8();  // payload type
  if (!r.ok()) return;
  SimTime now = host_->loop().now();
  ++blocks_;
  bytes_ += d.payload.size();
  if (!first_arrival_) {
    first_arrival_ = now;
    first_ts_ = ts;
    if (playing_) startup_ = now - play_acked_at_;
    return;
  }
  // Playout deadline under the fixed-delay buffer model.
  double media_offset_s =
      static_cast<double>(ts - *first_ts_) / static_cast<double>(cfg_.clock_rate);
  SimTime deadline = *first_arrival_ + cfg_.buffer_delay + duration_seconds(media_offset_s);
  if (now > deadline) ++late_;
}

}  // namespace gmmcs::streaming
