// Conference archive and replay.
//
// Admire "can support ... a complete conference management as well as
// conference archiving service" (paper §3.1); Global-MMCS inherits the
// capability by recording broker topics. The archive subscribes to a
// session's media topics, stores events with their relative timing, and
// can replay a recording onto a new topic with the original cadence —
// which is exactly how late-joining or offline viewers were served.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/client.hpp"
#include "common/thread_annotations.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::streaming {

class GMMCS_PINNED("the archive service records and replays for the whole run") ConferenceArchive {
 public:
  ConferenceArchive(sim::Host& host, sim::Endpoint broker_stream);

  /// Starts recording a topic.
  void record(const std::string& topic);
  /// Stops recording it (the recording is kept).
  void stop(const std::string& topic);

  struct Recording {
    struct Entry {
      SimDuration offset;  // relative to recording start
      /// Shares the delivered event's buffer: archiving appends a handle,
      /// and replay re-publishes the same allocation (zero-copy both ways).
      Payload payload;
    };
    SimTime started;
    std::vector<Entry> entries;
    bool active = false;
  };

  [[nodiscard]] const Recording* recording(const std::string& topic) const;
  [[nodiscard]] std::size_t recorded_events(const std::string& topic) const;

  /// Replays a finished recording onto `replay_topic`, preserving the
  /// original inter-event timing scaled by `speed` (2.0 = twice as fast).
  /// Returns false if there is no recording.
  bool replay(const std::string& topic, const std::string& replay_topic, double speed = 1.0);

 private:
  sim::Host* host_;
  broker::BrokerClient client_;
  std::map<std::string, Recording> recordings_;
};

}  // namespace gmmcs::streaming
