// Real Producer (paper §3.2): the broker-to-streaming bridge.
//
// "Enhanced with customer input plug in, our Real Producer can receive
// RTP audio and video packets from network, encode them into Real format
// and submit them to the Helix Server."
//
// The producer subscribes to a session's media topic through a broker
// client, reassembles frames and transcodes them (media::Transcoder, with
// its CPU queue), and pushes the re-encoded blocks into the HelixServer
// under a stream name players can DESCRIBE.
#pragma once

#include <memory>
#include <string>

#include "broker/client.hpp"
#include "media/transcoder.hpp"
#include "rtp/packet.hpp"
#include "streaming/helix_server.hpp"

namespace gmmcs::streaming {

class RealProducer {
 public:
  struct Config {
    /// Broker topic to consume (a session media stream).
    std::string topic;
    /// Stream name registered with the Helix server.
    std::string stream_name;
    media::Transcoder::Config transcode{};
  };

  RealProducer(sim::Host& host, sim::Endpoint broker_stream, HelixServer& helix, Config cfg);

  [[nodiscard]] std::uint64_t packets_consumed() const { return packets_; }
  [[nodiscard]] std::uint64_t blocks_produced() const { return transcoder_.frames_out(); }
  [[nodiscard]] std::uint64_t frames_dropped() const { return transcoder_.frames_dropped(); }
  [[nodiscard]] const media::Transcoder& transcoder() const { return transcoder_; }
  [[nodiscard]] const std::string& stream_name() const { return cfg_.stream_name; }

 private:
  Config cfg_;
  HelixServer* helix_;
  broker::BrokerClient client_;
  media::Transcoder transcoder_;
  std::uint64_t packets_ = 0;
};

}  // namespace gmmcs::streaming
