// Helix-like streaming server (paper §3.2).
//
// "The Real Servers including a Real Producer and a Helix Server provide
// a streaming service to real-player and windows media player."
//
// Producers register streams and push encoded blocks; players drive the
// RTSP state machine (DESCRIBE -> SETUP -> PLAY -> PAUSE/TEARDOWN) and
// receive the blocks as datagrams on their announced port. Per-stream
// fan-out is a simple copy loop — streaming distribution trees were never
// the paper's bottleneck claim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/thread_annotations.hpp"
#include "media/transcoder.hpp"
#include "streaming/rtsp.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/stream.hpp"

namespace gmmcs::streaming {

class GMMCS_PINNED("the streaming server lives for the whole run; sessions come and go") HelixServer {
 public:
  static constexpr std::uint16_t kRtspPort = 554;

  explicit HelixServer(sim::Host& host, std::uint16_t port = kRtspPort);

  /// Registers a stream (usually called by the Real producer).
  /// `description` is served to DESCRIBE requests.
  void register_stream(const std::string& name, std::string description);
  void unregister_stream(const std::string& name);
  /// Pushes one encoded block into a stream; fans out to playing clients.
  void push_block(const std::string& name, const media::EncodedBlock& block);

  [[nodiscard]] sim::Endpoint rtsp_endpoint() const { return listener_.local(); }
  [[nodiscard]] std::vector<std::string> stream_names() const;
  [[nodiscard]] std::size_t playing_clients(const std::string& name) const;
  [[nodiscard]] std::uint64_t blocks_distributed() const { return distributed_; }

 private:
  enum class PlayerState { kInit, kReady, kPlaying };
  struct PlayerSession {
    std::string id;
    std::string stream;
    sim::Endpoint media_dst{};
    PlayerState state = PlayerState::kInit;
  };
  struct Stream {
    std::string description;
    std::uint64_t blocks = 0;
  };

  void accept(transport::StreamConnectionPtr conn);
  RtspMessage handle(const RtspMessage& req);

  sim::Host* host_;
  transport::StreamListener listener_;
  transport::DatagramSocket media_out_;
  std::vector<transport::StreamConnectionPtr> conns_;
  std::map<std::string, Stream> streams_;
  std::map<std::string, PlayerSession> sessions_;  // by RTSP session id
  IdGenerator session_ids_;
  std::uint64_t distributed_ = 0;
};

}  // namespace gmmcs::streaming
