// Streaming player: the Real/Windows-Media-player analog.
//
// Drives the RTSP client state machine against the Helix server and
// measures playback quality: startup latency (first block after PLAY),
// received blocks/bytes, and playout-buffer underruns under a simple
// fixed-delay playout model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/thread_annotations.hpp"
#include "streaming/rtsp.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/stream.hpp"

namespace gmmcs::streaming {

class GMMCS_PINNED("player app objects live for the experiment run; their RTSP connection dies first") StreamingPlayer {
 public:
  struct Config {
    /// Playout buffering: a block with timestamp t plays at
    /// first_block_arrival + buffer_delay + (t - first_t)/clock_rate.
    SimDuration buffer_delay = duration_ms(2000);
    std::uint32_t clock_rate = 90000;
  };

  StreamingPlayer(sim::Host& host, sim::Endpoint rtsp_server, Config cfg);
  /// Default configuration (2 s playout buffer, 90 kHz clock).
  StreamingPlayer(sim::Host& host, sim::Endpoint rtsp_server);

  /// Runs DESCRIBE -> SETUP -> PLAY for a stream; cb(success).
  void play(const std::string& stream_name, std::function<void(bool)> cb);
  void pause(std::function<void(bool)> cb);
  void teardown(std::function<void(bool)> cb);

  [[nodiscard]] const std::string& description() const { return description_; }
  [[nodiscard]] std::uint64_t blocks_received() const { return blocks_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_; }
  /// Delay between PLAY being acknowledged and the first media block.
  [[nodiscard]] std::optional<SimDuration> startup_latency() const { return startup_; }
  /// Blocks that arrived after their playout deadline (would stutter).
  [[nodiscard]] std::uint64_t late_blocks() const { return late_; }
  [[nodiscard]] bool playing() const { return playing_; }

 private:
  void send(RtspMessage req, std::function<void(const RtspMessage&)> on_resp);
  void on_media(const sim::Datagram& d);

  sim::Host* host_;
  Config cfg_;
  std::string server_host_;
  transport::StreamConnectionPtr rtsp_;
  transport::DatagramSocket media_in_;
  std::deque<std::function<void(const RtspMessage&)>> pending_;
  int next_cseq_ = 1;
  std::string session_id_;
  std::string stream_;
  bool playing_ = false;
  SimTime play_acked_at_;
  std::uint64_t blocks_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t late_ = 0;
  std::optional<SimDuration> startup_;
  std::optional<SimTime> first_arrival_;
  std::optional<std::uint32_t> first_ts_;
  std::string description_;
};

}  // namespace gmmcs::streaming
