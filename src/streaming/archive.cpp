#include "streaming/archive.hpp"

namespace gmmcs::streaming {

ConferenceArchive::ConferenceArchive(sim::Host& host, sim::Endpoint broker_stream)
    : host_(&host),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "conference-archive"}) {
  client_.on_event([this](const broker::Event& ev) {
    auto it = recordings_.find(ev.topic);
    if (it == recordings_.end() || !it->second.active) return;
    it->second.entries.push_back(
        {host_->loop().now() - it->second.started, ev.payload});
  });
}

void ConferenceArchive::record(const std::string& topic) {
  auto& rec = recordings_[topic];
  rec.started = host_->loop().now();
  rec.entries.clear();
  rec.active = true;
  client_.subscribe(topic);
}

void ConferenceArchive::stop(const std::string& topic) {
  auto it = recordings_.find(topic);
  if (it == recordings_.end()) return;
  it->second.active = false;
  client_.unsubscribe(topic);
}

const ConferenceArchive::Recording* ConferenceArchive::recording(const std::string& topic) const {
  auto it = recordings_.find(topic);
  return it == recordings_.end() ? nullptr : &it->second;
}

std::size_t ConferenceArchive::recorded_events(const std::string& topic) const {
  const Recording* rec = recording(topic);
  return rec == nullptr ? 0 : rec->entries.size();
}

bool ConferenceArchive::replay(const std::string& topic, const std::string& replay_topic,
                               double speed) {
  auto it = recordings_.find(topic);
  if (it == recordings_.end() || it->second.entries.empty() || speed <= 0.0) return false;
  for (const auto& entry : it->second.entries) {
    auto delay = SimDuration{
        static_cast<std::int64_t>(static_cast<double>(entry.offset.ns()) / speed)};
    host_->loop().schedule_after(delay, [this, replay_topic, payload = entry.payload] {
      client_.publish(replay_topic, payload);
    });
  }
  return true;
}

}  // namespace gmmcs::streaming
