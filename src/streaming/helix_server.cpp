#include "streaming/helix_server.hpp"

#include "common/bytes.hpp"
#include "common/strings.hpp"

namespace gmmcs::streaming {

HelixServer::HelixServer(sim::Host& host, std::uint16_t port)
    : host_(&host), listener_(host, port), media_out_(host) {
  listener_.on_accept([this](transport::StreamConnectionPtr conn) { accept(std::move(conn)); });
}

void HelixServer::register_stream(const std::string& name, std::string description) {
  streams_[name] = Stream{std::move(description), 0};
}

void HelixServer::unregister_stream(const std::string& name) {
  streams_.erase(name);
  std::erase_if(sessions_, [&](const auto& kv) { return kv.second.stream == name; });
}

std::vector<std::string> HelixServer::stream_names() const {
  std::vector<std::string> out;
  for (const auto& [name, s] : streams_) out.push_back(name);
  return out;
}

std::size_t HelixServer::playing_clients(const std::string& name) const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.stream == name && s.state == PlayerState::kPlaying) ++n;
  }
  return n;
}

void HelixServer::push_block(const std::string& name, const media::EncodedBlock& block) {
  auto it = streams_.find(name);
  if (it == streams_.end()) return;
  ++it->second.blocks;
  // A block travels as one datagram: [timestamp u32][payload_type u8][data].
  ByteWriter w(block.bytes + 5);
  w.u32(block.timestamp);
  w.u8(block.payload_type);
  w.raw(Bytes(block.bytes, 0xEE));
  // One framed buffer shared across every playing session (refcount bumps).
  const Payload wire{w.take()};
  for (const auto& [id, s] : sessions_) {
    if (s.stream != name || s.state != PlayerState::kPlaying) continue;
    ++distributed_;
    media_out_.send_to(s.media_dst, wire);
  }
}

void HelixServer::accept(transport::StreamConnectionPtr conn) {
  conns_.push_back(conn);
  auto* raw = conn.get();
  conn->on_message([this, raw](const Payload& data) {
    auto parsed = RtspMessage::parse(gmmcs::to_string(std::span<const std::uint8_t>(data)));
    if (!parsed.ok()) return;
    raw->send(handle(parsed.value()).serialize());
  });
  conn->on_close([this, raw] {
    std::erase_if(conns_, [raw](const transport::StreamConnectionPtr& c) {
      return c.get() == raw;
    });
  });
}

RtspMessage HelixServer::handle(const RtspMessage& req) {
  const std::string name = stream_name_from_uri(req.uri);
  if (req.method == "OPTIONS") {
    RtspMessage resp = RtspMessage::response(req, 200, "OK");
    resp.set_header("Public", "OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN");
    return resp;
  }
  if (req.method == "DESCRIBE") {
    auto it = streams_.find(name);
    if (it == streams_.end()) return RtspMessage::response(req, 404, "Stream Not Found");
    RtspMessage resp = RtspMessage::response(req, 200, "OK");
    resp.set_header("Content-Type", "application/sdp");
    resp.body = it->second.description;
    return resp;
  }
  if (req.method == "SETUP") {
    if (!streams_.contains(name)) return RtspMessage::response(req, 404, "Stream Not Found");
    // Transport: SIM/RTP;client_node=<n>;client_port=<p>
    std::string transport = req.header("Transport");
    sim::NodeId node = 0;
    std::uint16_t port = 0;
    for (const auto& part : split(transport, ';')) {
      auto kv = split_n(part, '=', 2);
      if (kv.size() != 2) continue;
      // Unparseable values leave port 0 → 461 Unsupported Transport.
      if (kv[0] == "client_node") node = static_cast<sim::NodeId>(parse_u32(kv[1]).value_or(0));
      if (kv[0] == "client_port") port = parse_u16(kv[1]).value_or(0);
    }
    if (port == 0) return RtspMessage::response(req, 461, "Unsupported Transport");
    PlayerSession s;
    s.id = session_ids_.next_tagged("rtsp");
    s.stream = name;
    s.media_dst = sim::Endpoint{node, port};
    s.state = PlayerState::kReady;
    std::string sid = s.id;
    sessions_[sid] = std::move(s);
    RtspMessage resp = RtspMessage::response(req, 200, "OK");
    resp.set_header("Session", sid);
    resp.set_header("Transport", transport);
    return resp;
  }
  // The remaining methods operate on an established session.
  auto it = sessions_.find(req.session_id());
  if (it == sessions_.end()) return RtspMessage::response(req, 454, "Session Not Found");
  if (req.method == "PLAY") {
    it->second.state = PlayerState::kPlaying;
    return RtspMessage::response(req, 200, "OK");
  }
  if (req.method == "PAUSE") {
    it->second.state = PlayerState::kReady;
    return RtspMessage::response(req, 200, "OK");
  }
  if (req.method == "TEARDOWN") {
    sessions_.erase(it);
    return RtspMessage::response(req, 200, "OK");
  }
  return RtspMessage::response(req, 501, "Not Implemented");
}

}  // namespace gmmcs::streaming
