// RTSP message codec (RFC 2326 subset).
//
// "Real-players as well as windows media players can use RTSP to connect
// the Helix Server and choose the multimedia streams that they are
// interested in." Same text-protocol shape as SIP: request/status line,
// headers, optional body (SDP-ish stream description).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace gmmcs::streaming {

struct RtspMessage {
  bool is_request = true;
  std::string method;  // OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN
  std::string uri;     // rtsp://<server>/<stream>
  int status = 0;
  std::string reason;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  [[nodiscard]] std::string header(const std::string& name) const;
  RtspMessage& set_header(const std::string& name, const std::string& value);
  [[nodiscard]] int cseq() const;
  [[nodiscard]] std::string session_id() const { return header("Session"); }

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Result<RtspMessage> parse(const std::string& text);

  static RtspMessage request(const std::string& method, const std::string& uri, int cseq);
  static RtspMessage response(const RtspMessage& req, int status, const std::string& reason);
};

/// Extracts the stream name from "rtsp://host/name".
std::string stream_name_from_uri(const std::string& uri);

}  // namespace gmmcs::streaming
