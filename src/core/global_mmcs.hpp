// Global-MMCS: the assembled system (paper Figure 2).
//
// One GlobalMmcs instance stands up the whole prototype deployment on a
// simulated network: the NaradaBrokering fabric, the XGSP web / session /
// naming & directory servers, the meeting scheduler, the SIP servers
// (proxy + registrar + gateway + chat), the H.323 servers (gatekeeper +
// gateway), the Real streaming servers (producer factory + Helix), the
// conference archive, and an Admire community bridged through its SOAP
// web service. This is the public entry point a downstream user starts
// from; the examples/ directory shows it in use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "admire/admire.hpp"
#include "broker/broker_network.hpp"
#include "core/accessgrid.hpp"
#include "h323/gatekeeper.hpp"
#include "h323/gateway.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sip/agent.hpp"
#include "sip/gateway.hpp"
#include "sip/hearme.hpp"
#include "sip/im.hpp"
#include "sip/proxy.hpp"
#include "streaming/archive.hpp"
#include "streaming/helix_server.hpp"
#include "streaming/producer.hpp"
#include "xgsp/directory.hpp"
#include "xgsp/scheduler.hpp"
#include "xgsp/session_server.hpp"
#include "xgsp/web_server.hpp"

namespace gmmcs::core {

class GlobalMmcs {
 public:
  struct Config {
    /// Brokers in the fabric; >1 builds a chain b0-b1-...-bN.
    int brokers = 1;
    broker::DispatchConfig dispatch = broker::DispatchConfig::optimized();
    /// Optional subsystems (all on by default).
    bool with_sip = true;
    bool with_h323 = true;
    bool with_streaming = true;
    bool with_admire = true;
    std::uint64_t seed = 2003;
  };

  GlobalMmcs(sim::EventLoop& loop, Config cfg);
  /// Default deployment: everything enabled, one broker.
  explicit GlobalMmcs(sim::EventLoop& loop);
  ~GlobalMmcs();

  // --- Infrastructure access ---
  [[nodiscard]] sim::EventLoop& loop() { return *loop_; }
  [[nodiscard]] sim::Network& network() { return *net_; }
  [[nodiscard]] broker::BrokerNetwork& brokers() { return *brokers_; }
  /// Stream endpoint of the broker clients should attach to.
  [[nodiscard]] sim::Endpoint broker_endpoint() const;

  // --- XGSP web-services framework ---
  [[nodiscard]] xgsp::SessionServer& sessions() { return *session_server_; }
  [[nodiscard]] xgsp::WebServer& web() { return *web_server_; }
  [[nodiscard]] xgsp::DirectoryServer& directory() { return *directory_server_; }
  [[nodiscard]] xgsp::MeetingScheduler& scheduler() { return *scheduler_; }

  // --- Protocol servers ---
  [[nodiscard]] sip::SipProxy& sip_proxy() { return *sip_proxy_; }
  [[nodiscard]] sip::SipGateway& sip_gateway() { return *sip_gateway_; }
  [[nodiscard]] sip::ChatServer& chat() { return *chat_; }
  [[nodiscard]] h323::Gatekeeper& gatekeeper() { return *gatekeeper_; }
  [[nodiscard]] h323::H323Gateway& h323_gateway() { return *h323_gateway_; }
  [[nodiscard]] streaming::HelixServer& helix() { return *helix_; }
  [[nodiscard]] streaming::ConferenceArchive& archive() { return *archive_; }
  [[nodiscard]] admire::AdmireCommunity& admire() { return *admire_; }
  [[nodiscard]] sip::HearMeService& hearme() { return *hearme_; }

  // --- Conveniences ---
  /// Creates an ad-hoc session through the session server; returns its id.
  std::string create_session(const std::string& title, const std::string& creator,
                             std::vector<std::pair<std::string, std::string>> media);
  /// Starts a Real producer consuming a session stream; the stream becomes
  /// available on the Helix server as "<session>-<kind>".
  streaming::RealProducer& add_producer(const std::string& session_id, const std::string& kind);
  /// Adds a fresh client machine to the simulated network.
  sim::Host& add_client_host(const std::string& name);
  /// Creates an Access Grid venue and bridges it into a session's media
  /// topics (the venue gets its own bridge host).
  AccessGridVenue& add_venue(const std::string& venue_name, const std::string& session_id);

 private:
  sim::EventLoop* loop_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<broker::BrokerNetwork> brokers_;
  std::unique_ptr<xgsp::SessionServer> session_server_;
  std::unique_ptr<xgsp::DirectoryServer> directory_server_;
  std::unique_ptr<xgsp::WebServer> web_server_;
  std::unique_ptr<xgsp::MeetingScheduler> scheduler_;
  std::unique_ptr<sip::SipProxy> sip_proxy_;
  std::unique_ptr<sip::SipGateway> sip_gateway_;
  std::unique_ptr<sip::ChatServer> chat_;
  /// Sends meeting invitations (SIP MESSAGE) when scheduled sessions start.
  std::unique_ptr<sip::SipAgent> calendar_notifier_;
  std::unique_ptr<h323::Gatekeeper> gatekeeper_;
  std::unique_ptr<h323::H323Gateway> h323_gateway_;
  std::unique_ptr<streaming::HelixServer> helix_;
  std::unique_ptr<streaming::ConferenceArchive> archive_;
  std::unique_ptr<admire::AdmireCommunity> admire_;
  std::unique_ptr<sip::HearMeService> hearme_;
  std::vector<std::unique_ptr<streaming::RealProducer>> producers_;
  std::vector<std::unique_ptr<AccessGridVenue>> venues_;
  std::vector<std::unique_ptr<AccessGridBridge>> venue_bridges_;
};

}  // namespace gmmcs::core
