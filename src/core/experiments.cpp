#include "core/experiments.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "baseline/jmf_reflector.hpp"
#include "broker/client.hpp"
#include "media/generator.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "transport/datagram_socket.hpp"

namespace gmmcs::core {

const char* to_string(Fanout f) {
  switch (f) {
    case Fanout::kBroker: return "NaradaBrokering";
    case Fanout::kBrokerNaive: return "NaradaBrokering-unoptimized";
    case Fanout::kJmfReflector: return "JMF-reflector";
  }
  return "?";
}

namespace {

/// Averages the per-receiver (index, value) series pointwise across
/// receivers, truncated to `limit` points.
Series average_series(const std::vector<const Series*>& series, std::size_t limit) {
  Series out;
  if (series.empty()) return out;
  std::size_t len = limit;
  for (const Series* s : series) len = std::min(len, s->points().size());
  for (std::size_t i = 0; i < len; ++i) {
    double sum = 0;
    for (const Series* s : series) sum += s->points()[i].y;
    out.add(static_cast<double>(i), sum / static_cast<double>(series.size()));
  }
  return out;
}

constexpr const char* kFig3Topic = "/xgsp/session/fig3/video";

}  // namespace

Fig3Result run_fig3(const Fig3Config& cfg) {
  sim::EventLoop loop;
  loop.set_workers(cfg.workers);
  sim::Network net(loop, cfg.seed);
  // Gigabit LAN, sub-millisecond propagation, no physical loss — matching
  // the paper's testbed conditions.
  net.set_default_path(sim::PathConfig{.latency = duration_us(200), .loss = 0.0});
  sim::Host& sender_host = net.add_host("sender-machine");
  sim::Host& far_host = net.add_host("receiver-machine");
  sim::Host& server_host = net.add_host("server-machine");

  // The 600 Kbps video sender.
  rtp::RtpSession tx(sender_host, {.ssrc = 1, .payload_type = 96, .clock_rate = 90000});
  media::VideoSource source(tx, {.codec = media::codecs::mpeg4_sim(), .seed = cfg.seed});

  std::vector<std::unique_ptr<media::MediaProbe>> probes;
  for (int i = 0; i < cfg.measured; ++i) {
    probes.push_back(std::make_unique<media::MediaProbe>(90000, /*record_series=*/true));
  }

  std::unique_ptr<broker::BrokerNode> broker_node;
  std::vector<std::unique_ptr<broker::BrokerClient>> broker_clients;
  std::unique_ptr<broker::BrokerClient> publisher;
  std::unique_ptr<baseline::JmfReflector> reflector;
  std::vector<std::unique_ptr<transport::DatagramSocket>> raw_receivers;

  if (cfg.fanout == Fanout::kJmfReflector) {
    reflector = std::make_unique<baseline::JmfReflector>(server_host);
    for (int i = 0; i < cfg.receivers; ++i) {
      sim::Host& h = i < cfg.measured ? sender_host : far_host;
      auto sock = std::make_unique<transport::DatagramSocket>(h);
      if (i < cfg.measured) {
        media::MediaProbe* probe = probes[static_cast<std::size_t>(i)].get();
        sock->on_receive([probe, &loop](const sim::Datagram& d) {
          probe->on_wire(d.payload, loop.now());
        });
      }
      reflector->add_receiver(sock->local());
      raw_receivers.push_back(std::move(sock));
    }
    tx.add_destination(reflector->endpoint());
  } else {
    broker::BrokerNode::Config bcfg;
    bcfg.dispatch = cfg.fanout == Fanout::kBroker ? broker::DispatchConfig::optimized()
                                                  : broker::DispatchConfig::unoptimized();
    broker_node = std::make_unique<broker::BrokerNode>(server_host, 0, bcfg);
    for (int i = 0; i < cfg.receivers; ++i) {
      sim::Host& h = i < cfg.measured ? sender_host : far_host;
      auto client = std::make_unique<broker::BrokerClient>(
          h, broker_node->stream_endpoint(),
          broker::BrokerClient::Config{.name = "rx-" + std::to_string(i)});
      client->subscribe(kFig3Topic);
      if (i < cfg.measured) {
        media::MediaProbe* probe = probes[static_cast<std::size_t>(i)].get();
        client->on_event([probe, &loop](const broker::Event& ev) {
          probe->on_wire(ev.payload, loop.now());
        });
      }
      broker_clients.push_back(std::move(client));
    }
    publisher = std::make_unique<broker::BrokerClient>(
        sender_host, broker_node->stream_endpoint(),
        broker::BrokerClient::Config{.name = "video-sender", .udp_delivery = false});
    tx.on_send([&](const Payload& wire) { publisher->publish(kFig3Topic, wire); });
  }

  // Let every handshake and subscription settle before media starts.
  loop.run();
  SimTime media_start = loop.now();
  source.start();
  auto target = static_cast<std::uint64_t>(cfg.packets) + 32;  // headroom for tail loss
  while (source.packets_emitted() < target) {
    loop.run_for(duration_ms(500));
  }
  source.stop();
  double media_seconds = (loop.now() - media_start).to_seconds();
  loop.run_for(duration_s(5));  // drain queues
  double sim_seconds = (loop.now() - media_start).to_seconds();

  Fig3Result out;
  std::vector<const Series*> delays, jitters;
  RunningStats avg_delay, avg_jitter, loss;
  for (auto& probe : probes) {
    delays.push_back(&probe->stats().delay_series());
    jitters.push_back(&probe->stats().jitter_series());
    avg_delay.add(probe->stats().delay_ms().mean());
    avg_jitter.add(probe->stats().jitter_ms());
    loss.add(probe->stats().loss_ratio());
  }
  auto limit = static_cast<std::size_t>(cfg.packets);
  out.delay_ms = average_series(delays, limit);
  out.jitter_ms = average_series(jitters, limit);
  out.avg_delay_ms = out.delay_ms.mean_y();
  out.avg_jitter_ms = avg_jitter.mean();
  out.loss_ratio = loss.mean();
  out.dispatch_jobs_dropped =
      reflector ? reflector->jobs_dropped() : broker_node->jobs_dropped();
  out.stream_kbps = static_cast<double>(tx.octets_sent()) * 8.0 / media_seconds / 1000.0;
  out.sim_seconds = sim_seconds;
  return out;
}

CapacityPoint run_capacity(const CapacityConfig& cfg) {
  sim::EventLoop loop;
  loop.set_workers(cfg.workers);
  sim::Network net(loop, cfg.seed);
  net.set_default_path(sim::PathConfig{.latency = duration_us(200), .loss = 0.0});
  sim::Host& sender_host = net.add_host("sender-machine");
  sim::Host& server_host = net.add_host("server-machine");

  broker::BrokerNode::Config bcfg;
  bcfg.dispatch = cfg.dispatch;
  broker::BrokerNode broker_node(server_host, 0, bcfg);

  const std::string topic = cfg.kind == MediaKind::kAudio ? "/cap/audio" : "/cap/video";
  const media::CodecInfo& codec = cfg.kind == MediaKind::kAudio
                                      ? media::codecs::g711u()
                                      : media::codecs::mpeg4_sim();

  rtp::RtpSession tx(sender_host,
                     {.ssrc = 1, .payload_type = codec.payload_type,
                      .clock_rate = codec.clock_rate});
  broker::BrokerClient publisher(
      sender_host, broker_node.stream_endpoint(),
      broker::BrokerClient::Config{.name = "sender", .udp_delivery = false});
  tx.on_send([&](const Payload& wire) { publisher.publish(topic, wire); });

  std::unique_ptr<media::AudioSource> audio;
  std::unique_ptr<media::VideoSource> video;
  if (cfg.kind == MediaKind::kAudio) {
    audio = std::make_unique<media::AudioSource>(
        tx, media::AudioSource::Config{.codec = codec, .seed = cfg.seed});
  } else {
    video = std::make_unique<media::VideoSource>(
        tx, media::VideoSource::Config{.codec = codec, .seed = cfg.seed});
  }

  // Receivers spread over hosts, ~100 per machine.
  std::vector<sim::Host*> rx_hosts;
  for (int i = 0; i * 100 < cfg.clients; ++i) {
    rx_hosts.push_back(&net.add_host("rx-machine-" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<broker::BrokerClient>> clients;
  for (int i = 0; i < cfg.clients; ++i) {
    auto& h = *rx_hosts[static_cast<std::size_t>(i / 100)];
    auto c = std::make_unique<broker::BrokerClient>(
        h, broker_node.stream_endpoint(),
        broker::BrokerClient::Config{.name = "rx-" + std::to_string(i)});
    c->subscribe(topic);
    clients.push_back(std::move(c));
  }

  loop.run();  // settle handshakes
  if (audio) audio->start();
  if (video) video->start();

  // Warm-up half: media flows but nothing is measured.
  loop.run_for(duration_seconds(cfg.seconds / 2.0));

  // Attach probes to a spread sample of receivers for the measured half.
  // The sample walk must not alias with the 100-per-host receiver fill
  // above: a receiver's delay depends on its position in the broker's
  // per-host fan-out order (later copies queue behind earlier ones at the
  // rx NIC), and a plain j*stride walk samples only gcd-limited positions
  // once stride reaches kPerHost. At exactly 1000 clients (stride 100)
  // every probe was first-on-host — no intra-host queueing at all — which
  // put the audio point at 0.57 ms between 4.4 ms and 6.3 ms neighbours.
  // For stride >= kPerHost, nudge each probe so its within-host position
  // is exactly j*kPerHost/kSample: uniform coverage of queue depth at
  // every sweep size. Below that, the plain walk already spreads.
  constexpr int kSample = 10;
  constexpr int kPerHost = 100;  // matches the rx-machine fill above
  std::vector<std::unique_ptr<media::MediaProbe>> probes;
  int stride = std::max(1, cfg.clients / kSample);
  int last_idx = -1;
  for (int j = 0; j * stride < cfg.clients; ++j) {
    int idx = j * stride;
    if (stride >= kPerHost) {
      idx += (j * kPerHost / kSample - idx % kPerHost + kPerHost) % kPerHost;
    }
    idx = std::min(idx, cfg.clients - 1);
    if (idx <= last_idx) continue;  // clamp collision on ragged final stride
    last_idx = idx;
    auto probe = std::make_unique<media::MediaProbe>(codec.clock_rate);
    media::MediaProbe* p = probe.get();
    clients[static_cast<std::size_t>(idx)]->on_event(
        [p, &loop](const broker::Event& ev) { p->on_wire(ev.payload, loop.now()); });
    probes.push_back(std::move(probe));
  }
  loop.run_for(duration_seconds(cfg.seconds / 2.0));
  if (audio) audio->stop();
  if (video) video->stop();
  loop.run_for(duration_s(3));  // drain

  CapacityPoint out;
  out.clients = cfg.clients;
  RunningStats delay, loss, maxima;
  for (auto& probe : probes) {
    delay.add(probe->stats().delay_ms().mean());
    maxima.add(probe->stats().delay_ms().max());
    loss.add(probe->stats().loss_ratio());
  }
  out.avg_delay_ms = delay.mean();
  out.p99_delay_ms = maxima.mean();  // conservative tail proxy (per-client max)
  out.loss_ratio = loss.mean();
  out.offered_mbps = codec.bitrate_bps * cfg.clients / 1e6;
  out.good_quality = out.avg_delay_ms < 150.0 && out.loss_ratio < 0.02;
  return out;
}

}  // namespace gmmcs::core
