#include "core/global_mmcs.hpp"

#include <stdexcept>

namespace gmmcs::core {

GlobalMmcs::GlobalMmcs(sim::EventLoop& loop) : GlobalMmcs(loop, Config{}) {}

GlobalMmcs::GlobalMmcs(sim::EventLoop& loop, Config cfg) : loop_(&loop) {
  if (cfg.brokers < 1) throw std::invalid_argument("GlobalMmcs: need at least one broker");
  net_ = std::make_unique<sim::Network>(loop, cfg.seed);
  net_->set_default_path(sim::PathConfig{.latency = duration_us(200), .loss = 0.0});

  // NaradaBrokering fabric (chain topology when more than one broker).
  brokers_ = std::make_unique<broker::BrokerNetwork>(*net_);
  for (int i = 0; i < cfg.brokers; ++i) {
    broker::BrokerNode::Config bcfg;
    bcfg.dispatch = cfg.dispatch;
    brokers_->add_broker(net_->add_host("broker-" + std::to_string(i)), bcfg);
  }
  for (int i = 0; i + 1 < cfg.brokers; ++i) {
    brokers_->link(static_cast<broker::BrokerId>(i), static_cast<broker::BrokerId>(i + 1));
  }
  brokers_->finalize();

  // XGSP servers (Figure 2: web server, naming & directory, session server).
  sim::Host& xgsp_host = net_->add_host("xgsp-servers");
  session_server_ = std::make_unique<xgsp::SessionServer>(xgsp_host, broker_endpoint());
  directory_server_ = std::make_unique<xgsp::DirectoryServer>(xgsp_host);
  web_server_ =
      std::make_unique<xgsp::WebServer>(xgsp_host, *session_server_, directory_server_->data());
  scheduler_ = std::make_unique<xgsp::MeetingScheduler>(loop, *session_server_);

  if (cfg.with_sip) {
    sim::Host& sip_host = net_->add_host("sip-servers");
    sip_proxy_ = std::make_unique<sip::SipProxy>(sip_host);
    sip_gateway_ =
        std::make_unique<sip::SipGateway>(sip_host, *session_server_, broker_endpoint());
    chat_ = std::make_unique<sip::ChatServer>(sip_host);
    sip_proxy_->add_domain_route(sip::ChatServer::kDomain, chat_->endpoint());
    sip_proxy_->add_domain_route("gmmcs", sip_gateway_->endpoint());
  }

  if (cfg.with_sip) {
    // "send invitations to other attendee in advance" (paper §2.1): when
    // a reserved meeting starts, every sip: invitee gets an IM carrying
    // the session id and the conference URI to call.
    calendar_notifier_ = std::make_unique<sip::SipAgent>(xgsp_host, /*port=*/0);
    scheduler_->on_started([this](const xgsp::Reservation& r) {
      for (const std::string& invitee : r.invitees) {
        if (!invitee.starts_with("sip:")) continue;
        sip::SipMessage invite = sip::SipMessage::request(
            "MESSAGE", invitee, "sip:calendar@gmmcs", invitee,
            calendar_notifier_->new_call_id(), calendar_notifier_->next_cseq());
        invite.set_header("Content-Type", "text/plain");
        invite.body = "Meeting '" + r.title + "' has started. Join session " + r.session_id +
                      " (" + sip::SipGateway::conference_uri(r.session_id) + ")";
        calendar_notifier_->send_request(sip_proxy_->endpoint(), std::move(invite),
                                         [](const sip::SipMessage&) {});
      }
    });
  }

  if (cfg.with_h323) {
    sim::Host& h323_host = net_->add_host("h323-servers");
    gatekeeper_ = std::make_unique<h323::Gatekeeper>(h323_host);
    h323_gateway_ =
        std::make_unique<h323::H323Gateway>(h323_host, *session_server_, broker_endpoint());
    gatekeeper_->set_conference_target(h323_gateway_->call_signal_endpoint());
  }

  if (cfg.with_streaming) {
    sim::Host& real_host = net_->add_host("real-servers");
    helix_ = std::make_unique<streaming::HelixServer>(real_host);
    archive_ = std::make_unique<streaming::ConferenceArchive>(real_host, broker_endpoint());
  }

  if (cfg.with_admire) {
    sim::Host& admire_host = net_->add_host("admire-community");
    admire_ = std::make_unique<admire::AdmireCommunity>(admire_host, broker_endpoint());
    xgsp::CommunityRecord rec;
    rec.name = admire_->name();
    rec.kind = "admire";
    rec.web_service = admire_->soap_endpoint();
    rec.wsdl_ci = admire_->descriptor().serialize();
    directory_server_->data().register_community(std::move(rec));
  }

  if (cfg.with_sip) {
    // The HearMe VoIP community (paper §3.2) registers alongside Admire.
    sim::Host& hearme_host = net_->add_host("hearme-community");
    hearme_ = std::make_unique<sip::HearMeService>(hearme_host, broker_endpoint());
    xgsp::CommunityRecord rec;
    rec.name = hearme_->name();
    rec.kind = "sip";
    rec.web_service = hearme_->soap_endpoint();
    rec.wsdl_ci = hearme_->descriptor().serialize();
    directory_server_->data().register_community(std::move(rec));
  }
}

GlobalMmcs::~GlobalMmcs() = default;

sim::Endpoint GlobalMmcs::broker_endpoint() const {
  return brokers_->broker(0).stream_endpoint();
}

std::string GlobalMmcs::create_session(const std::string& title, const std::string& creator,
                                       std::vector<std::pair<std::string, std::string>> media) {
  xgsp::Message reply = session_server_->handle(
      xgsp::Message::create_session(title, creator, xgsp::SessionMode::kAdHoc, std::move(media)));
  if (!reply.ok || reply.sessions.empty()) {
    throw std::runtime_error("GlobalMmcs::create_session failed: " + reply.reason);
  }
  return reply.sessions.front().id();
}

streaming::RealProducer& GlobalMmcs::add_producer(const std::string& session_id,
                                                  const std::string& kind) {
  if (!helix_) throw std::logic_error("GlobalMmcs: streaming subsystem disabled");
  xgsp::Session* session = session_server_->find(session_id);
  if (session == nullptr) throw std::invalid_argument("GlobalMmcs: no session " + session_id);
  const xgsp::MediaStream* stream = session->stream(kind);
  if (stream == nullptr) {
    throw std::invalid_argument("GlobalMmcs: session has no '" + kind + "' stream");
  }
  streaming::RealProducer::Config cfg;
  cfg.topic = stream->topic;
  cfg.stream_name = session_id + "-" + kind;
  producers_.push_back(std::make_unique<streaming::RealProducer>(
      net_->host(helix_->rtsp_endpoint().node), broker_endpoint(), *helix_, std::move(cfg)));
  return *producers_.back();
}

sim::Host& GlobalMmcs::add_client_host(const std::string& name) {
  return net_->add_host(name);
}

AccessGridVenue& GlobalMmcs::add_venue(const std::string& venue_name,
                                       const std::string& session_id) {
  xgsp::Session* session = session_server_->find(session_id);
  if (session == nullptr) throw std::invalid_argument("GlobalMmcs: no session " + session_id);
  venues_.push_back(std::make_unique<AccessGridVenue>(*net_, venue_name));
  venue_bridges_.push_back(std::make_unique<AccessGridBridge>(
      net_->add_host("ag-bridge-" + venue_name), broker_endpoint(), *venues_.back(), *session));
  return *venues_.back();
}

}  // namespace gmmcs::core
