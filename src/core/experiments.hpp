// Reusable experiment harnesses for the paper's evaluation (DESIGN.md §4).
//
// Each harness builds the full simulated deployment — sender machine with
// the measured co-located receivers, a second receiver machine, the broker
// (or JMF reflector) machine on a gigabit LAN — runs the workload, and
// returns the measured series/aggregates. The bench binaries print them in
// the paper's format; tests assert the shape bands.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/broker_node.hpp"
#include "common/stats.hpp"

namespace gmmcs::core {

/// Which distribution system carries the media.
enum class Fanout {
  kBroker,        // NaradaBrokering-style broker (optimized dispatch)
  kBrokerNaive,   // broker with pre-optimization dispatch (ablation A1)
  kJmfReflector,  // the paper's Java Media Framework baseline
};

const char* to_string(Fanout f);

// ---------------------------------------------------------------------------
// Figure 3: per-packet delay and jitter, 400 video receivers, 600 Kbps.
// ---------------------------------------------------------------------------

struct Fig3Config {
  Fanout fanout = Fanout::kBroker;
  int receivers = 400;
  /// Receivers co-located with the sender whose stats are averaged
  /// ("we gather the results from only those 12 clients").
  int measured = 12;
  /// Packets per receiver to record (the paper's x-axis runs to 2000).
  int packets = 2000;
  std::uint64_t seed = 2003;
  /// EventLoop worker threads (1 = serial). Any value yields byte-identical
  /// results; >1 only changes wall-clock time (DESIGN.md §9).
  int workers = 1;
};

struct Fig3Result {
  /// Mean across measured receivers, per packet index.
  Series delay_ms;
  Series jitter_ms;
  double avg_delay_ms = 0;
  double avg_jitter_ms = 0;
  double loss_ratio = 0;
  std::uint64_t dispatch_jobs_dropped = 0;
  /// Wall quantities of the run, for reporting.
  double stream_kbps = 0;
  double sim_seconds = 0;
};

Fig3Result run_fig3(const Fig3Config& cfg);

// ---------------------------------------------------------------------------
// Claims C1/C2: clients one broker can serve with good quality.
// ---------------------------------------------------------------------------

enum class MediaKind { kAudio, kVideo };

struct CapacityConfig {
  MediaKind kind = MediaKind::kVideo;
  int clients = 400;
  /// Simulated seconds of media; stats use the second half (warmed up).
  double seconds = 8.0;
  broker::DispatchConfig dispatch = broker::DispatchConfig::optimized();
  std::uint64_t seed = 2003;
  /// EventLoop worker threads (1 = serial); results are byte-identical
  /// regardless (DESIGN.md §9).
  int workers = 1;
};

struct CapacityPoint {
  int clients = 0;
  double avg_delay_ms = 0;
  double p99_delay_ms = 0;
  double loss_ratio = 0;
  double offered_mbps = 0;
  /// The paper's "very good quality": avg delay < 150 ms and loss < 2%
  /// (Figure 3 shows ~80 ms steady delay is what the paper called good).
  bool good_quality = false;
};

CapacityPoint run_capacity(const CapacityConfig& cfg);

}  // namespace gmmcs::core
