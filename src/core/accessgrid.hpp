// Access Grid integration (paper §2.1, §3.2).
//
// Access Grid — "the de facto Internet2 multimedia collaborative
// environment" — is multicast-native: rooms ("venues") are sets of
// multicast groups on which MBONE tools (vic for video, rat for audio)
// send and receive RTP directly. Global-MMCS reaches AG users through a
// venue bridge: a host that joins the venue's groups and pumps traffic
// to/from the session's broker topics, the same RTP-agent pattern as the
// Admire rendezvous but with no signaling at all (pure multicast).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/client.hpp"
#include "transport/datagram_socket.hpp"
#include "xgsp/session.hpp"

namespace gmmcs::core {

/// A venue: named multicast groups, one per media kind.
class AccessGridVenue {
 public:
  AccessGridVenue(sim::Network& net, std::string name,
                  std::vector<std::string> kinds = {"audio", "video"});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::GroupId group(const std::string& kind) const;
  [[nodiscard]] std::vector<std::string> kinds() const;

 private:
  sim::Network* net_;
  std::string name_;
  std::map<std::string, sim::GroupId> groups_;
};

/// An MBONE tool (vic/rat): a multicast RTP endpoint in a venue.
class MboneTool {
 public:
  MboneTool(sim::Host& host, AccessGridVenue& venue);
  ~MboneTool();

  /// Sends one RTP packet (wire bytes) onto the venue's group for `kind`.
  void send_media(const std::string& kind, Payload rtp_wire);
  void on_media(std::function<void(const sim::Datagram&)> handler);
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }

 private:
  AccessGridVenue* venue_;
  transport::DatagramSocket socket_;
  std::uint64_t received_ = 0;
  std::function<void(const sim::Datagram&)> handler_;
};

/// Bridges a venue into an XGSP session: venue group <-> session topic,
/// per media kind present in both.
class AccessGridBridge {
 public:
  AccessGridBridge(sim::Host& host, sim::Endpoint broker_stream, AccessGridVenue& venue,
                   const xgsp::Session& session);

  [[nodiscard]] std::uint64_t uplinked() const { return uplinked_; }
  [[nodiscard]] std::uint64_t downlinked() const { return downlinked_; }
  [[nodiscard]] std::size_t bridged_kinds() const { return legs_.size(); }

 private:
  struct Leg {
    std::string kind;
    std::string topic;
    sim::GroupId group = 0;
    std::unique_ptr<transport::DatagramSocket> socket;  // venue-side member
    std::unique_ptr<broker::BrokerClient> client;       // topic-side client
  };

  std::vector<std::unique_ptr<Leg>> legs_;
  std::uint64_t uplinked_ = 0;
  std::uint64_t downlinked_ = 0;
};

}  // namespace gmmcs::core
