#include "core/accessgrid.hpp"

#include <stdexcept>

namespace gmmcs::core {

AccessGridVenue::AccessGridVenue(sim::Network& net, std::string name,
                                 std::vector<std::string> kinds)
    : net_(&net), name_(std::move(name)) {
  for (const auto& kind : kinds) groups_[kind] = net_->create_group();
}

sim::GroupId AccessGridVenue::group(const std::string& kind) const {
  auto it = groups_.find(kind);
  if (it == groups_.end()) {
    throw std::invalid_argument("AccessGridVenue '" + name_ + "' has no '" + kind + "' group");
  }
  return it->second;
}

std::vector<std::string> AccessGridVenue::kinds() const {
  std::vector<std::string> out;
  for (const auto& [kind, g] : groups_) out.push_back(kind);
  return out;
}

MboneTool::MboneTool(sim::Host& host, AccessGridVenue& venue)
    : venue_(&venue), socket_(host) {
  for (const auto& kind : venue.kinds()) socket_.join_group(venue.group(kind));
  socket_.on_receive([this](const sim::Datagram& d) {
    ++received_;
    if (handler_) handler_(d);
  });
}

MboneTool::~MboneTool() {
  for (const auto& kind : venue_->kinds()) socket_.leave_group(venue_->group(kind));
}

void MboneTool::send_media(const std::string& kind, Payload rtp_wire) {
  socket_.send_group(venue_->group(kind), std::move(rtp_wire));
}

void MboneTool::on_media(std::function<void(const sim::Datagram&)> handler) {
  handler_ = std::move(handler);
}

AccessGridBridge::AccessGridBridge(sim::Host& host, sim::Endpoint broker_stream,
                                   AccessGridVenue& venue, const xgsp::Session& session) {
  for (const auto& stream : session.streams()) {
    bool venue_has = false;
    for (const auto& kind : venue.kinds()) {
      if (kind == stream.kind) venue_has = true;
    }
    if (!venue_has) continue;
    auto leg = std::make_unique<Leg>();
    leg->kind = stream.kind;
    leg->topic = stream.topic;
    leg->group = venue.group(stream.kind);
    leg->socket = std::make_unique<transport::DatagramSocket>(host);
    leg->socket->join_group(leg->group);
    leg->client = std::make_unique<broker::BrokerClient>(
        host, broker_stream,
        broker::BrokerClient::Config{.name = "ag-bridge-" + session.id() + "-" + stream.kind});
    leg->client->subscribe(stream.topic);
    Leg* raw = leg.get();
    // Venue -> topic: anything the tools multicast (the bridge's own
    // group sends never loop back to its socket).
    leg->socket->on_receive([this, raw](const sim::Datagram& d) {
      ++uplinked_;
      raw->client->publish(raw->topic, d.payload);
    });
    // Topic -> venue: the broker excludes our own publications, so only
    // remote media is re-multicast.
    leg->client->on_event([this, raw](const broker::Event& ev) {
      ++downlinked_;
      raw->socket->send_group(raw->group, ev.payload);
    });
    legs_.push_back(std::move(leg));
  }
}

}  // namespace gmmcs::core
