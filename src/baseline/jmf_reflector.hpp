// JMF reflector baseline.
//
// The paper compares NaradaBrokering against "a JMF reflector program
// written in Java": a unicast RTP reflector that receives each packet and
// re-sends one copy per receiver from a single dispatch loop. Its cost
// model mirrors what made JMF slow in 2003 — per-packet receive handling
// plus a per-receiver send cost with a significant size-dependent part
// (Java-side buffer copies) — all serialized on one thread.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/time.hpp"
#include "sim/network.hpp"
#include "sim/service_center.hpp"
#include "transport/datagram_socket.hpp"

namespace gmmcs::baseline {

class JmfReflector {
 public:
  struct Config {
    std::uint16_t rtp_port = 7000;
    /// Per-packet receive/demux cost.
    SimDuration per_packet_cost = duration_us(120);
    /// Per-receiver send cost: fixed part + per-KiB part. Slightly above
    /// the optimized broker's cost (JMF does a per-receiver buffer copy),
    /// which at the Figure-3 operating point (~95% utilization) amplifies
    /// into the ~3x delay gap the paper reports.
    SimDuration copy_fixed = duration_us(9);
    SimDuration copy_per_kb = SimDuration{22600};  // 22.6 us/KiB
    std::size_t queue_limit = 100000;
  };

  JmfReflector(sim::Host& host, Config cfg);
  /// Default configuration (calibrated 2003-era JMF costs).
  explicit JmfReflector(sim::Host& host);

  void add_receiver(sim::Endpoint rtp_dst);
  void remove_receiver(sim::Endpoint rtp_dst);

  [[nodiscard]] sim::Endpoint endpoint() const { return socket_.local(); }
  [[nodiscard]] std::size_t receiver_count() const { return receivers_.size(); }
  [[nodiscard]] std::uint64_t packets_in() const { return packets_in_; }
  [[nodiscard]] std::uint64_t copies_out() const { return copies_out_; }
  [[nodiscard]] std::uint64_t jobs_dropped() const { return dispatch_.rejected(); }
  [[nodiscard]] const sim::ServiceCenter& dispatch() const { return dispatch_; }

 private:
  void handle(const sim::Datagram& d);
  [[nodiscard]] SimDuration copy_cost(std::size_t bytes) const;

  sim::Host* host_;
  Config cfg_;
  transport::DatagramSocket socket_;
  sim::ServiceCenter dispatch_;
  std::vector<sim::Endpoint> receivers_;
  std::uint64_t packets_in_ = 0;
  std::uint64_t copies_out_ = 0;
};

}  // namespace gmmcs::baseline
