#include "baseline/jmf_reflector.hpp"

#include <algorithm>

namespace gmmcs::baseline {

JmfReflector::JmfReflector(sim::Host& host) : JmfReflector(host, Config{}) {}

JmfReflector::JmfReflector(sim::Host& host, Config cfg)
    : host_(&host),
      cfg_(cfg),
      socket_(host, cfg.rtp_port),
      // The defining property of the JMF baseline: ONE dispatch thread.
      dispatch_(host.loop(), 1, cfg.queue_limit) {
  socket_.on_receive([this](const sim::Datagram& d) { handle(d); });
}

void JmfReflector::add_receiver(sim::Endpoint rtp_dst) {
  if (std::find(receivers_.begin(), receivers_.end(), rtp_dst) == receivers_.end()) {
    receivers_.push_back(rtp_dst);
  }
}

void JmfReflector::remove_receiver(sim::Endpoint rtp_dst) {
  std::erase(receivers_, rtp_dst);
}

SimDuration JmfReflector::copy_cost(std::size_t bytes) const {
  auto size_part = static_cast<std::int64_t>(static_cast<double>(cfg_.copy_per_kb.ns()) *
                                             static_cast<double>(bytes) / 1024.0);
  return cfg_.copy_fixed + SimDuration{size_part};
}

void JmfReflector::handle(const sim::Datagram& d) {
  ++packets_in_;
  dispatch_.submit(cfg_.per_packet_cost, [this, payload = d.payload, src = d.src] {
    for (const auto& dst : receivers_) {
      if (dst == src) continue;  // don't reflect back to the sender
      dispatch_.submit(copy_cost(payload.size()), [this, dst, payload] {
        ++copies_out_;
        host_->send(dst, cfg_.rtp_port, payload);
      });
    }
  });
}

}  // namespace gmmcs::baseline
