// The Admire community (paper §3.1/§3.2).
//
// Admire is an autonomous collaboration community (Beihang's system
// deployed across NSFCNET/CERNET) that Global-MMCS integrates through web
// services rather than protocol gateways:
//
//   "For Admire community, XGSP Web Server invokes the web-services of
//    Admire to notify the address of the rendezvous point. And Admire
//    responds with its rendezvous point in SOAP reply. After that, both
//    sides will create RTP agents on this rendezvous."
//
// This module implements that whole community: the SOAP collaboration
// service (driven through a WSDL-CI descriptor), the rendezvous RTP
// agents bridging to the Global-MMCS broker topics, and Admire's internal
// distribution, which supports "both unicast and multicast": terminals
// send unicast RTP to the rendezvous and receive on a community multicast
// group.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/client.hpp"
#include "soap/soap.hpp"
#include "transport/datagram_socket.hpp"
#include "xgsp/session.hpp"
#include "xgsp/wsdl_ci.hpp"

namespace gmmcs::admire {

class AdmireTerminal;

class AdmireCommunity {
 public:
  static constexpr std::uint16_t kSoapPort = 8088;

  /// Runs the community's collaboration server on `host`, bridging to the
  /// Global-MMCS broker at `broker_stream`.
  AdmireCommunity(sim::Host& host, sim::Endpoint broker_stream,
                  std::uint16_t soap_port = kSoapPort, std::string name = "admire-beihang");

  /// WSDL-CI descriptor for registration in the Global-MMCS directory.
  [[nodiscard]] xgsp::WsdlCi descriptor() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Endpoint soap_endpoint() const { return soap_.endpoint(); }

  /// A rendezvous bridge for one session media stream.
  struct Rendezvous {
    std::string kind;
    sim::Endpoint ingress;        // terminals send RTP here (unicast)
    sim::GroupId downlink = 0;    // terminals receive on this group
  };
  /// Bridges established per session id.
  [[nodiscard]] const std::vector<Rendezvous>* rendezvous_for(const std::string& session_id) const;
  [[nodiscard]] std::size_t sessions_bridged() const { return bridges_.size(); }
  [[nodiscard]] std::uint64_t packets_uplinked() const { return uplinked_; }
  [[nodiscard]] std::uint64_t packets_downlinked() const { return downlinked_; }

  /// Community-side terminal management (terminals live on their own
  /// hosts inside the community network).
  std::unique_ptr<AdmireTerminal> make_terminal(sim::Host& host, std::string user);

 private:
  friend class AdmireTerminal;

  struct StreamBridge {
    std::string kind;
    std::string topic;
    std::unique_ptr<transport::DatagramSocket> ingress;  // from terminals
    sim::GroupId downlink = 0;
    std::unique_ptr<broker::BrokerClient> uplink;        // to/from gmmcs broker
  };
  struct SessionBridge {
    std::vector<std::unique_ptr<StreamBridge>> streams;
    std::vector<Rendezvous> rendezvous;
  };

  [[nodiscard]] Result<xml::Element> establish(const xml::Element& request);
  [[nodiscard]] Result<xml::Element> membership(const xml::Element& request);
  [[nodiscard]] Result<xml::Element> control(const xml::Element& request);
  SessionBridge& bridge_session(const xgsp::Session& session);

  sim::Host* host_;
  sim::Endpoint broker_;
  std::string name_;
  soap::SoapServer soap_;
  std::map<std::string, SessionBridge> bridges_;  // by session id
  std::vector<std::string> community_members_;
  std::uint64_t uplinked_ = 0;
  std::uint64_t downlinked_ = 0;
};

/// A terminal inside the Admire community (an "Admire client" — also a
/// stand-in for Access Grid MBONE tools, which share the multicast model).
class AdmireTerminal {
 public:
  AdmireTerminal(sim::Host& host, std::string user, AdmireCommunity& community);

  /// Attaches to a session's rendezvous: joins the downlink multicast
  /// group and learns the unicast ingress. Returns false if the community
  /// has no bridge for the session.
  bool attach(const std::string& session_id);
  /// Sends one RTP packet (wire bytes) into each attached stream of the
  /// given kind.
  void send_media(const std::string& kind, Payload rtp_wire);
  void on_media(std::function<void(const sim::Datagram&)> handler);

  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] const std::string& user() const { return user_; }

 private:
  sim::Host* host_;
  std::string user_;
  AdmireCommunity* community_;
  transport::DatagramSocket socket_;
  std::map<std::string, sim::Endpoint> ingress_by_kind_;
  std::uint64_t received_ = 0;
  std::function<void(const sim::Datagram&)> handler_;
};

}  // namespace gmmcs::admire
