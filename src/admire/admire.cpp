#include "admire/admire.hpp"

#include "common/log.hpp"

namespace gmmcs::admire {

AdmireCommunity::AdmireCommunity(sim::Host& host, sim::Endpoint broker_stream,
                                 std::uint16_t soap_port, std::string name)
    : host_(&host), broker_(broker_stream), name_(std::move(name)), soap_(host, soap_port) {
  soap_.register_operation("GetRendezvous",
                           [this](const xml::Element& r) { return establish(r); });
  soap_.register_operation("SessionMembership",
                           [this](const xml::Element& r) { return membership(r); });
  soap_.register_operation("SessionControl",
                           [this](const xml::Element& r) { return control(r); });
}

xgsp::WsdlCi AdmireCommunity::descriptor() const {
  xgsp::WsdlCi d;
  d.service_name = "AdmireConferenceService";
  d.community = "admire";
  d.endpoint = soap_.endpoint();
  d.establish_op = "GetRendezvous";
  d.membership_op = "SessionMembership";
  d.control_op = "SessionControl";
  return d;
}

const std::vector<AdmireCommunity::Rendezvous>* AdmireCommunity::rendezvous_for(
    const std::string& session_id) const {
  auto it = bridges_.find(session_id);
  return it == bridges_.end() ? nullptr : &it->second.rendezvous;
}

AdmireCommunity::SessionBridge& AdmireCommunity::bridge_session(const xgsp::Session& session) {
  auto it = bridges_.find(session.id());
  if (it != bridges_.end()) return it->second;
  it = bridges_.emplace(session.id(), SessionBridge{}).first;
  SessionBridge& bridge = it->second;
  for (const auto& stream : session.streams()) {
    auto sb = std::make_unique<StreamBridge>();
    sb->kind = stream.kind;
    sb->topic = stream.topic;
    sb->downlink = host_->network().create_group();
    sb->ingress = std::make_unique<transport::DatagramSocket>(*host_);
    sb->uplink = std::make_unique<broker::BrokerClient>(
        *host_, broker_,
        broker::BrokerClient::Config{.name = name_ + "-agent-" + session.id() + "-" +
                                             stream.kind});
    sb->uplink->subscribe(stream.topic);
    StreamBridge* raw = sb.get();
    // Terminal -> rendezvous: multicast to the community AND publish to
    // the Global-MMCS topic (the "RTP agent" pair of the paper).
    sb->ingress->on_receive([this, raw](const sim::Datagram& d) {
      ++uplinked_;
      raw->ingress->send_group(raw->downlink, d.payload);
      raw->uplink->publish(raw->topic, d.payload);
    });
    // Topic -> community multicast (the broker does not echo our own
    // publications back, so no duplicate delivery).
    sb->uplink->on_event([this, raw](const broker::Event& ev) {
      ++downlinked_;
      raw->ingress->send_group(raw->downlink, ev.payload);
    });
    bridge.rendezvous.push_back(
        Rendezvous{stream.kind, sb->ingress->local(), sb->downlink});
    bridge.streams.push_back(std::move(sb));
  }
  GMMCS_INFO("admire") << name_ << " bridged session " << session.id() << " with "
                       << bridge.streams.size() << " rendezvous streams";
  return bridge;
}

Result<xml::Element> AdmireCommunity::establish(const xml::Element& request) {
  // Request shape: <GetRendezvous><session-invite><session .../></...></...>
  const xml::Element* invite = request.child("session-invite");
  const xml::Element* session_el =
      invite != nullptr ? invite->child("session") : request.child("session");
  if (session_el == nullptr) {
    return fail<xml::Element>("GetRendezvous: missing <session>");
  }
  xgsp::Session session = xgsp::Session::from_xml(*session_el);
  if (session.id().empty()) return fail<xml::Element>("GetRendezvous: session without id");
  SessionBridge& bridge = bridge_session(session);
  xml::Element resp("GetRendezvousResponse");
  resp.set_attr("session", session.id());
  resp.set_attr("community", name_);
  for (const auto& rv : bridge.rendezvous) {
    xml::Element& e = resp.add_child("rendezvous");
    e.set_attr("kind", rv.kind);
    e.set_attr("node", std::to_string(rv.ingress.node));
    e.set_attr("port", std::to_string(rv.ingress.port));
  }
  return resp;
}

Result<xml::Element> AdmireCommunity::membership(const xml::Element& request) {
  std::string user = request.attr("user");
  std::string action = request.attr("action");
  if (user.empty()) return fail<xml::Element>("SessionMembership: missing user");
  if (action == "leave") {
    std::erase(community_members_, user);
  } else {
    community_members_.push_back(user);
  }
  xml::Element resp("SessionMembershipResponse");
  resp.set_attr("members", std::to_string(community_members_.size()));
  return resp;
}

Result<xml::Element> AdmireCommunity::control(const xml::Element& request) {
  // Admire handles its own conference control internally; acknowledge the
  // command so the WSDL-CI control path is exercised end to end.
  xml::Element resp("SessionControlResponse");
  resp.set_attr("applied", request.children().empty() ? "none" : request.children()[0].name());
  return resp;
}

std::unique_ptr<AdmireTerminal> AdmireCommunity::make_terminal(sim::Host& host,
                                                               std::string user) {
  return std::make_unique<AdmireTerminal>(host, std::move(user), *this);
}

AdmireTerminal::AdmireTerminal(sim::Host& host, std::string user, AdmireCommunity& community)
    : host_(&host), user_(std::move(user)), community_(&community), socket_(host) {
  socket_.on_receive([this](const sim::Datagram& d) {
    ++received_;
    if (handler_) handler_(d);
  });
}

bool AdmireTerminal::attach(const std::string& session_id) {
  const auto* rendezvous = community_->rendezvous_for(session_id);
  if (rendezvous == nullptr) return false;
  for (const auto& rv : *rendezvous) {
    ingress_by_kind_[rv.kind] = rv.ingress;
    socket_.join_group(rv.downlink);
  }
  return true;
}

void AdmireTerminal::send_media(const std::string& kind, Payload rtp_wire) {
  auto it = ingress_by_kind_.find(kind);
  if (it == ingress_by_kind_.end()) return;
  socket_.send_to(it->second, std::move(rtp_wire));
}

void AdmireTerminal::on_media(std::function<void(const sim::Datagram&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace gmmcs::admire
