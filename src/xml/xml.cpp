#include "xml/xml.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace gmmcs::xml {

std::string Element::attr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) return v;
  }
  return {};
}

bool Element::has_attr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) return true;
  }
  return false;
}

Element& Element::set_attr(std::string name, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == name) {
      v = std::move(value);
      return *this;
    }
  }
  attrs_.emplace_back(std::move(name), std::move(value));
  return *this;
}

Element& Element::add_child(std::string name) {
  children_.emplace_back(std::move(name));
  return children_.back();
}

Element& Element::add_child(Element child) {
  children_.push_back(std::move(child));
  return children_.back();
}

Element& Element::add_text_child(std::string name, std::string text) {
  Element& c = add_child(std::move(name));
  c.set_text(std::move(text));
  return c;
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

Element* Element::child(std::string_view name) {
  for (auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c.name() == name) out.push_back(&c);
  }
  return out;
}

std::string Element::child_text(std::string_view name) const {
  const Element* c = child(name);
  return c ? c->text() : std::string{};
}

const Element* Element::child_local(std::string_view name) const {
  for (const auto& c : children_) {
    if (local_name(c.name()) == name) return &c;
  }
  return nullptr;
}

std::string_view local_name(std::string_view qualified) {
  std::size_t pos = qualified.find(':');
  return pos == std::string_view::npos ? qualified : qualified.substr(pos + 1);
}

void Element::serialize_into(std::string& out, int depth, bool indent) const {
  auto pad = [&] {
    if (indent) out.append(static_cast<std::size_t>(depth) * 2, ' ');
  };
  pad();
  out += '<';
  out += name_;
  for (const auto& [k, v] : attrs_) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape(v);
    out += '"';
  }
  if (children_.empty() && text_.empty()) {
    out += "/>";
    if (indent) out += '\n';
    return;
  }
  out += '>';
  out += escape(text_);
  if (!children_.empty()) {
    if (indent) out += '\n';
    for (const auto& c : children_) c.serialize_into(out, depth + 1, indent);
    pad();
  }
  out += "</";
  out += name_;
  out += '>';
  if (indent) out += '\n';
}

std::string Element::serialize(bool indent) const {
  std::string out;
  serialize_into(out, 0, indent);
  return out;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  std::size_t i = 0;
  while (i < escaped.size()) {
    if (escaped[i] != '&') {
      out += escaped[i++];
      continue;
    }
    std::size_t end = escaped.find(';', i);
    if (end == std::string_view::npos) {
      out += escaped[i++];
      continue;
    }
    std::string_view ent = escaped.substr(i + 1, end - i - 1);
    if (ent == "amp") out += '&';
    else if (ent == "lt") out += '<';
    else if (ent == "gt") out += '>';
    else if (ent == "quot") out += '"';
    else if (ent == "apos") out += '\'';
    else if (!ent.empty() && ent[0] == '#') {
      auto code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                      ? parse_hex_u64(ent.substr(2), 127)
                      : parse_u64(ent.substr(1), 127);
      if (code && *code > 0) out += static_cast<char>(*code);
    } else {
      // Unknown entity: keep verbatim.
      out += '&';
      out += ent;
      out += ';';
    }
    i = end + 1;
  }
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  [[nodiscard]] Result<Element> parse_document() {
    skip_misc();
    if (eof()) return fail<Element>("xml: empty document");
    Element root;
    if (!parse_element(root, 0)) return fail<Element>(error_);
    skip_misc();
    if (!eof()) return fail<Element>("xml: trailing content after root element");
    return root;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  char get() { return s_[pos_++]; }
  bool match(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  /// Skips whitespace, comments, processing instructions and declarations.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (match("<?")) {
        std::size_t end = s_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? s_.size() : end + 2;
      } else if (match("<!--")) {
        std::size_t end = s_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? s_.size() : end + 3;
      } else if (match("<!DOCTYPE")) {
        std::size_t end = s_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? s_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '_' || c == '-' ||
           c == '.';
  }

  std::string parse_name() {
    std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    return std::string(s_.substr(start, pos_ - start));
  }

  bool err(std::string message) {
    error_ = "xml: " + std::move(message) + " at offset " + std::to_string(pos_);
    return false;
  }

  // Recursion depth cap: the parser descends once per nested element, so
  // hostile input like "<a><a><a>..." otherwise converts wire bytes
  // straight into stack frames until overflow. 64 is far beyond any
  // document the protocols produce (XGSP nests 3-4 deep).
  static constexpr int kMaxDepth = 64;

  bool parse_element(Element& out, int depth) {
    if (depth >= kMaxDepth) return err("element nesting too deep");
    if (eof() || get() != '<') return err("expected '<'");
    std::string name = parse_name();
    if (name.empty()) return err("expected element name");
    out.set_name(name);
    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return err("unexpected end inside tag");
      if (peek() == '/') {
        ++pos_;
        if (eof() || get() != '>') return err("expected '>' after '/'");
        return true;  // self-closing
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      std::string attr_name = parse_name();
      if (attr_name.empty()) return err("expected attribute name");
      skip_ws();
      if (eof() || get() != '=') return err("expected '=' in attribute");
      skip_ws();
      if (eof()) return err("unexpected end in attribute");
      char quote = get();
      if (quote != '"' && quote != '\'') return err("expected quoted attribute value");
      std::size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) return err("unterminated attribute value");
      out.set_attr(std::move(attr_name), unescape(s_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
    }
    // Content.
    std::string text;
    while (true) {
      if (eof()) return err("unexpected end inside element '" + name + "'");
      if (peek() == '<') {
        if (match("</")) {
          std::string close = parse_name();
          if (close != name) return err("mismatched close tag '" + close + "' for '" + name + "'");
          skip_ws();
          if (eof() || get() != '>') return err("expected '>' in close tag");
          out.set_text(std::move(text));
          return true;
        }
        if (match("<!--")) {
          std::size_t end = s_.find("-->", pos_);
          if (end == std::string_view::npos) return err("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (match("<![CDATA[")) {
          std::size_t end = s_.find("]]>", pos_);
          if (end == std::string_view::npos) return err("unterminated CDATA");
          text += s_.substr(pos_, end - pos_);
          pos_ = end + 3;
          continue;
        }
        if (match("<?")) {
          std::size_t end = s_.find("?>", pos_);
          if (end == std::string_view::npos) return err("unterminated processing instruction");
          pos_ = end + 2;
          continue;
        }
        Element child;
        if (!parse_element(child, depth + 1)) return false;
        out.add_child(std::move(child));
      } else {
        std::size_t start = pos_;
        while (!eof() && peek() != '<') ++pos_;
        std::string_view chunk = s_.substr(start, pos_ - start);
        // Drop pure inter-element whitespace, keep meaningful text.
        bool all_ws = true;
        for (char c : chunk) {
          if (!std::isspace(static_cast<unsigned char>(c))) {
            all_ws = false;
            break;
          }
        }
        if (!all_ws || out.children().empty()) {
          if (!all_ws) text += unescape(chunk);
        }
      }
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<Element> parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace gmmcs::xml
