// Minimal XML document model, parser and serializer.
//
// XGSP messages, SOAP envelopes and WSDL-CI descriptors are all XML; this
// module is the shared substrate. It supports the subset those formats
// need: elements, attributes, text content, comments (skipped), XML
// declarations (skipped), CDATA, and the five predefined entities.
// Namespaces are carried as plain prefixed names ("soap:Envelope") — the
// consumers in this codebase use fixed prefixes, as the 2003 toolchains did.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace gmmcs::xml {

/// An XML element: name, ordered attributes, child elements and text.
///
/// Mixed content is simplified: all text nodes of an element are
/// concatenated into `text` (sufficient for the protocol formats here).
class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  /// Returns the attribute value or empty string if absent.
  [[nodiscard]] std::string attr(std::string_view name) const;
  [[nodiscard]] bool has_attr(std::string_view name) const;
  Element& set_attr(std::string name, std::string value);
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string name);
  Element& add_child(Element child);
  /// Convenience: adds <name>text</name>.
  Element& add_text_child(std::string name, std::string text);

  [[nodiscard]] const std::vector<Element>& children() const { return children_; }
  [[nodiscard]] std::vector<Element>& children() { return children_; }

  /// First child with the given name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view name) const;
  [[nodiscard]] Element* child(std::string_view name);
  /// All children with the given name.
  [[nodiscard]] std::vector<const Element*> children_named(std::string_view name) const;
  /// Text of the first child with the given name, or empty string.
  [[nodiscard]] std::string child_text(std::string_view name) const;
  /// Finds a child matching the local name, ignoring any namespace prefix
  /// ("Envelope" matches "soap:Envelope"). Used by SOAP parsing.
  [[nodiscard]] const Element* child_local(std::string_view local_name) const;

  /// Serializes; indent=true produces pretty-printed output for logs.
  [[nodiscard]] std::string serialize(bool indent = false) const;

 private:
  void serialize_into(std::string& out, int depth, bool indent) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<Element> children_;
};

/// Escapes text content / attribute values (&, <, >, ", ').
std::string escape(std::string_view raw);
/// Resolves the five predefined entities and decimal/hex character refs.
std::string unescape(std::string_view escaped);

/// Strips a namespace prefix: local_name("soap:Body") == "Body".
std::string_view local_name(std::string_view qualified);

/// Parses a document; returns the root element or a parse error.
[[nodiscard]] Result<Element> parse(std::string_view text);

}  // namespace gmmcs::xml
