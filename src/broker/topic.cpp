#include "broker/topic.hpp"

#include "common/strings.hpp"

namespace gmmcs::broker {

std::string normalize_topic(std::string_view raw) {
  std::string out = "/";
  for (const auto& seg : split(raw, '/')) {
    if (seg.empty()) continue;
    if (out.size() > 1) out += '/';
    out += seg;
  }
  return out;
}

std::vector<std::string> topic_segments(std::string_view topic) {
  std::vector<std::string> out;
  for (const auto& seg : split(topic, '/')) {
    if (!seg.empty()) out.push_back(seg);
  }
  return out;
}

bool is_valid_topic(std::string_view topic) {
  if (topic.empty()) return false;
  auto segs = topic_segments(topic);
  if (segs.empty()) return false;
  for (const auto& s : segs) {
    if (s == "*" || s == "#") return false;
  }
  return true;
}

TopicFilter::TopicFilter(std::string_view pattern)
    : pattern_(normalize_topic(pattern)), segments_(topic_segments(pattern_)) {
  if (segments_.empty()) {
    valid_ = false;
    return;
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i] == "*") has_star_ = true;
    if (segments_[i] == "#") {
      if (i + 1 != segments_.size()) {
        valid_ = false;  // '#' only allowed as the last segment
        return;
      }
      trailing_hash_ = true;
      segments_.pop_back();
      break;
    }
  }
}

bool TopicFilter::matches(std::string_view topic) const {
  if (!valid_) return false;
  auto segs = topic_segments(topic);
  if (trailing_hash_) {
    if (segs.size() < segments_.size()) return false;
  } else {
    if (segs.size() != segments_.size()) return false;
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i] == "*") continue;
    if (segments_[i] != segs[i]) return false;
  }
  return true;
}

}  // namespace gmmcs::broker
