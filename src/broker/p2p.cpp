#include "broker/p2p.hpp"

#include <algorithm>

namespace gmmcs::broker {

void P2pMesh::join(P2pPeer* peer) {
  if (std::find(peers_.begin(), peers_.end(), peer) == peers_.end()) peers_.push_back(peer);
}

void P2pMesh::leave(P2pPeer* peer) {
  std::erase(peers_, peer);
  interest_.erase(peer);
}

void P2pMesh::advertise(P2pPeer* peer, const TopicFilter& filter, bool add) {
  auto& filters = interest_[peer];
  if (add) {
    if (std::find(filters.begin(), filters.end(), filter) == filters.end()) {
      filters.push_back(filter);
    }
  } else {
    std::erase(filters, filter);
  }
}

std::vector<P2pPeer*> P2pMesh::interested(const std::string& topic, const P2pPeer* from) const {
  std::vector<P2pPeer*> out;
  for (const auto& [peer, filters] : interest_) {
    if (peer == from) continue;
    for (const auto& f : filters) {
      if (f.matches(topic)) {
        out.push_back(const_cast<P2pPeer*>(peer));
        break;
      }
    }
  }
  return out;
}

P2pPeer::P2pPeer(sim::Host& host, P2pMesh& mesh, std::string name, DispatchConfig dispatch)
    : host_(&host),
      mesh_(&mesh),
      name_(std::move(name)),
      dispatch_cfg_(dispatch),
      dispatch_(host.loop(), dispatch.threads, dispatch.queue_limit),
      socket_(host) {
  socket_.on_receive([this](const sim::Datagram& d) { handle(d); });
  mesh_->join(this);
}

P2pPeer::~P2pPeer() {
  mesh_->leave(this);
}

void P2pPeer::subscribe(const std::string& filter) {
  mesh_->advertise(this, TopicFilter(filter), /*add=*/true);
}

void P2pPeer::unsubscribe(const std::string& filter) {
  mesh_->advertise(this, TopicFilter(filter), /*add=*/false);
}

void P2pPeer::publish(const std::string& topic, Payload payload) {
  Event ev;
  ev.topic = normalize_topic(topic);
  ev.payload = std::move(payload);
  ev.origin = host_->loop().now();
  ev.seq = next_seq_++;
  // Publisher-side fanout: one route job then one copy job per
  // interested peer, exactly the work a broker would do — but on the
  // publishing client's CPU.
  std::vector<P2pPeer*> targets = mesh_->interested(ev.topic, this);
  fanout_cpu_ += dispatch_cfg_.route_cost;
  dispatch_.submit(dispatch_cfg_.route_cost, [this, ev = std::move(ev),
                                              targets = std::move(targets)]() mutable {
    // One encode, shared by every per-peer copy job (refcounted handle).
    const Payload wire = encode(ev);
    for (P2pPeer* peer : targets) {
      SimDuration cost = dispatch_cfg_.copy_cost(ev.payload.size());
      fanout_cpu_ += cost;
      dispatch_.submit(cost, [this, dst = peer->endpoint(), wire] {
        ++copies_sent_;
        socket_.send_to(dst, wire);
      });
    }
  });
}

void P2pPeer::handle(const sim::Datagram& d) {
  auto frame = decode(d.payload);
  if (!frame.ok() || frame.value().type != MessageType::kEvent) return;
  ++received_;
  if (handler_) handler_(frame.value().event);
}

void P2pPeer::on_event(std::function<void(const Event&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace gmmcs::broker
