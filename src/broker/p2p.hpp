// JXTA-like peer-to-peer mode (paper §2.3).
//
// "It can operate either in a client-server mode like JMS or in a
// completely distributed JXTA-like peer-to-peer mode. By combining these
// two disparate models, NaradaBrokering can allow optimized
// performance-functionality trade-offs for different scenarios."
//
// In P2P mode there is no broker: peers learn each other through a
// rendezvous (P2pMesh, the control plane — the analog of a JXTA
// rendezvous peer) and replicate events directly, paying the fanout CPU
// on the *publisher*. Small groups save a network hop and a server;
// large groups overload the sending client — the trade-off
// bench/p2p_tradeoff quantifies (extension A6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_node.hpp"
#include "broker/event.hpp"
#include "broker/topic.hpp"
#include "sim/service_center.hpp"
#include "transport/datagram_socket.hpp"

namespace gmmcs::broker {

class P2pPeer;

/// Rendezvous/control plane: tracks members and their subscriptions and
/// keeps every peer's view of the mesh current. Like BrokerNetwork's
/// interest propagation, this control plane is instantaneous; the data
/// plane (every event datagram) is fully simulated.
class P2pMesh {
 public:
  P2pMesh() = default;

  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

 private:
  friend class P2pPeer;
  void join(P2pPeer* peer);
  void leave(P2pPeer* peer);
  void advertise(P2pPeer* peer, const TopicFilter& filter, bool add);
  /// Peers (other than `from`) with interest matching the topic.
  [[nodiscard]] std::vector<P2pPeer*> interested(const std::string& topic,
                                                 const P2pPeer* from) const;

  std::vector<P2pPeer*> peers_;
  std::map<const P2pPeer*, std::vector<TopicFilter>> interest_;
};

/// A peer in the mesh: publisher-side fanout with a dispatch cost model
/// mirroring the broker's (the same work has to happen somewhere).
class P2pPeer {
 public:
  P2pPeer(sim::Host& host, P2pMesh& mesh, std::string name,
          DispatchConfig dispatch = DispatchConfig::optimized());
  ~P2pPeer();
  P2pPeer(const P2pPeer&) = delete;
  P2pPeer& operator=(const P2pPeer&) = delete;

  void subscribe(const std::string& filter);
  void unsubscribe(const std::string& filter);
  void publish(const std::string& topic, Payload payload);
  void on_event(std::function<void(const Event&)> handler);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Endpoint endpoint() const { return socket_.local(); }
  [[nodiscard]] std::uint64_t events_received() const { return received_; }
  [[nodiscard]] std::uint64_t copies_sent() const { return copies_sent_; }
  /// Simulated CPU time this peer spent on fanout (the sender-side cost
  /// that the broker would otherwise absorb).
  [[nodiscard]] SimDuration fanout_cpu() const { return fanout_cpu_; }

 private:
  friend class P2pMesh;
  void handle(const sim::Datagram& d);

  sim::Host* host_;
  P2pMesh* mesh_;
  std::string name_;
  DispatchConfig dispatch_cfg_;
  sim::ServiceCenter dispatch_;
  transport::DatagramSocket socket_;
  std::function<void(const Event&)> handler_;
  std::uint32_t next_seq_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t copies_sent_ = 0;
  SimDuration fanout_cpu_{};
};

}  // namespace gmmcs::broker
