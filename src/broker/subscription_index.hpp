// Indexed topic-to-subscriber matching: the routing fast path.
//
// The naive matcher walks every subscriber and every filter per published
// event — O(subscribers x filters) segment comparisons, which is exactly
// the per-packet overhead the paper's broker optimization removed. This
// index splits the subscription table the way 2003-era brokers did:
//
//  * concrete filters (no wildcards) live in an exact-topic hash map, so a
//    published topic finds them with one lookup;
//  * wildcard filters ("*"/"#") live in a short side list that is scanned
//    only when present;
//  * results are memoized per topic in a match cache stamped with a
//    subscription generation counter, so steady-state media traffic (many
//    events, few distinct topics, rare churn) pays one hash probe per
//    event. Any subscribe/unsubscribe/disconnect bumps the generation and
//    lazily invalidates every cached line.
//
// The index is shared by BrokerNode (subscriber = ClientId) and
// BrokerNetwork (subscriber = BrokerId); entries are refcounted so the
// network's per-origin advertisement counts work unchanged.
//
// This is host-CPU bookkeeping only: the *simulated* dispatch cost model
// (DispatchConfig) is charged exactly as before, so measured results are
// identical while the simulator itself runs much faster (see DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/control_snapshot.hpp"
#include "broker/topic.hpp"

namespace gmmcs::broker {

class SubscriptionIndex {
 public:
  /// Wide enough for both ClientId and BrokerId.
  using SubscriberId = std::uint32_t;

  /// Adds one reference to (subscriber, filter). Invalid filters are
  /// stored for refcounting symmetry but never match anything.
  void subscribe(SubscriberId id, const TopicFilter& filter);
  /// Drops one reference; the entry disappears when its count reaches 0.
  void unsubscribe(SubscriberId id, const TopicFilter& filter);
  /// Drops all of a subscriber's references (client disconnect).
  void remove_subscriber(SubscriberId id);

  /// Exports the current table as a flat immutable InterestTable for
  /// epoch-snapshot publication (DESIGN.md §12). Pure export: does not
  /// touch the match cache, so it is safe from the writer context while
  /// lock-free readers use previously published snapshots.
  [[nodiscard]] InterestTable flatten() const;

  /// Sorted, deduplicated ids of every subscriber with a filter matching
  /// `topic`. Cached per topic; valid until the next table mutation.
  const std::vector<SubscriberId>& matches(const std::string& topic) const;
  /// Same, minus `exclude` (publisher / origin-broker exclusion).
  [[nodiscard]] std::vector<SubscriberId> matches(const std::string& topic,
                                                  SubscriberId exclude) const;

  /// Total (subscriber, filter) entries, counting each once regardless of
  /// refcount.
  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t exact_topic_count() const { return exact_.size(); }
  [[nodiscard]] std::size_t wildcard_filter_count() const { return wildcards_.size(); }
  /// Bumped by every table mutation; cached match lines from older
  /// generations are recomputed on next use.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  /// Refcounts ordered by subscriber id so match results come out sorted.
  using RefMap = std::map<SubscriberId, int>;

  struct WildcardEntry {
    TopicFilter filter;
    RefMap refs;
  };

  struct CacheLine {
    std::uint64_t generation = 0;
    std::vector<SubscriberId> ids;
  };

  void bump_generation();

  /// Concrete filter pattern -> subscriber refcounts (one hash probe per
  /// published topic).
  std::unordered_map<std::string, RefMap> exact_;
  /// Filters containing '*' or a trailing '#' (scanned per cache miss).
  std::vector<WildcardEntry> wildcards_;
  /// Invalid filters, kept purely so unsubscribe refcounts balance.
  std::unordered_map<std::string, RefMap> invalid_;
  std::uint64_t generation_ = 1;

  /// topic (as published) -> match result; lazily invalidated by
  /// generation mismatch, fully reset if it ever grows past the cap.
  mutable std::unordered_map<std::string, CacheLine> cache_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
};

}  // namespace gmmcs::broker
