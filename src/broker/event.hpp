// Broker events and the client/broker wire protocol.
//
// One binary frame format is shared by the stream (TCP-profile) and
// datagram (UDP-profile) channels, and by broker-to-broker links. Events
// carry an origin timestamp stamped at the publisher so receivers can
// measure true end-to-end delay across any number of broker hops — the
// quantity Figure 3 plots.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/payload.hpp"
#include "common/result.hpp"
#include "common/time.hpp"

namespace gmmcs::broker {

using BrokerId = std::uint32_t;
using ClientId = std::uint32_t;

enum class QoS : std::uint8_t {
  /// Delivered over the client's datagram channel if it has one.
  kBestEffort = 0,
  /// Always delivered over the reliable stream channel.
  kReliable = 1,
};

/// A published event.
struct Event {
  std::string topic;
  /// Ref-counted view. Decoded events hold a zero-copy slice of the frame
  /// they arrived in; published events adopt the buffer the application
  /// framed. Bytes are allocated once at the publisher, then shared.
  Payload payload;
  QoS qos = QoS::kBestEffort;
  /// Publisher's simulated send instant (end-to-end delay reference).
  SimTime origin;
  /// Publisher-assigned sequence number (monotonic per publisher).
  std::uint32_t seq = 0;
  /// Broker hops traversed so far.
  std::uint8_t hops = 0;
  /// Publishing client's id, stamped by its ingress broker (0 = unknown).
  /// (publisher, seq) identifies an event for the recovery service.
  ClientId publisher = 0;
};

/// Message kinds on client<->broker and broker<->broker channels.
enum class MessageType : std::uint8_t {
  kHello = 1,       // client -> broker: announce, optional UDP receive port
  kHelloAck = 2,    // broker -> client: client id + broker UDP port
  kSubscribe = 3,   // client -> broker: filter
  kUnsubscribe = 4, // client -> broker: filter
  kEvent = 5,       // either direction: a published/delivered event
  kPeerEvent = 6,   // broker -> broker: event + remaining target brokers
  kPing = 7,        // link performance probe (monitoring service)
  kPong = 8,        // probe reply, echoing token and send time
  kHeartbeat = 9,   // broker -> broker: periodic liveness beacon (sender id)
  kLinkState = 10,  // broker -> broker: gossiped link up/down advertisement
};

struct HelloMessage {
  std::string client_name;
  /// 0 means "deliver events over the stream".
  std::uint16_t udp_port = 0;
};

struct HelloAckMessage {
  ClientId client_id = 0;
  std::uint16_t broker_udp_port = 0;
};

struct SubscribeMessage {
  std::string filter;
  bool subscribe = true;  // false = unsubscribe
};

/// Broker-to-broker forwarded event with its remaining target set.
struct PeerEventMessage {
  Event event;
  std::vector<BrokerId> targets;
};

/// Link probe (same payload both directions; pong echoes the ping).
struct PingMessage {
  std::uint32_t token = 0;
  SimTime sent;
};

/// Peer-link keepalive carrying the sending broker's id; silence past the
/// configured miss threshold is how a broker detects a dead peer/link.
struct HeartbeatMessage {
  BrokerId from = 0;
};

/// Gossiped link-state advertisement (gossip routing mode, DESIGN.md §13):
/// `origin` observed link (a, b) transition to `up` and floods the news
/// over its peer links; `seq` is a per-origin sequence number brokers use
/// to forward each advertisement at most once.
struct LinkStateMessage {
  BrokerId origin = 0;
  std::uint32_t seq = 0;
  BrokerId a = 0;
  BrokerId b = 0;
  bool up = false;
};

Bytes encode(const HelloMessage& m);
Bytes encode(const HelloAckMessage& m);
Bytes encode(const SubscribeMessage& m);
Bytes encode(const Event& e);
Bytes encode(const PeerEventMessage& m);
/// kPeerEvent framing straight from an Event and a target set, avoiding
/// the intermediate PeerEventMessage copy of topic + payload.
Bytes encode_peer_event(const Event& e, const std::vector<BrokerId>& targets);
Bytes encode(const PingMessage& m, bool pong);
Bytes encode(const HeartbeatMessage& m);
Bytes encode(const LinkStateMessage& m);

/// Process-wide count of kEvent encodes (encode(Event) calls). Host-side
/// instrumentation for the encode-once fan-out path; tests and benches
/// diff it around a publish to prove the wire frame is built exactly once
/// per event regardless of recipient count. Not part of the cost model.
std::uint64_t event_encode_count();

/// An event in flight through the routing fast path: one shared Event plus
/// its lazily-encoded kEvent wire frame. Fan-out jobs capture the
/// shared_ptr, so a 400-recipient delivery holds one payload buffer and
/// encodes one frame instead of copying and re-encoding per recipient —
/// the transmission-path optimization behind the paper's Figure-3 gap.
class RoutedEvent {
 public:
  explicit RoutedEvent(Event ev) : event_(std::move(ev)) {}
  /// Frame adoption: when the decoded event is forwarded verbatim, the
  /// arrival frame IS the delivery frame — the broker re-encodes nothing
  /// and every recipient shares the publisher's one allocation.
  RoutedEvent(Event ev, Payload frame) : event_(std::move(ev)), wire_(std::move(frame)), encoded_(true) {}

  [[nodiscard]] const Event& event() const { return event_; }
  /// The cached kEvent frame; adopted at ingress or encoded on first use,
  /// shared afterwards.
  [[nodiscard]] const Payload& wire() const;

 private:
  Event event_;
  mutable Payload wire_;
  mutable bool encoded_ = false;
};

using RoutedEventPtr = std::shared_ptr<const RoutedEvent>;

/// A decoded frame; `type` selects which member is meaningful.
struct Frame {
  MessageType type;
  HelloMessage hello;
  HelloAckMessage hello_ack;
  SubscribeMessage subscribe;
  Event event;
  PeerEventMessage peer_event;
  PingMessage ping;
  HeartbeatMessage heartbeat;
  LinkStateMessage link_state;
};

/// Decodes a frame. The event payload inside a kEvent/kPeerEvent frame is
/// a zero-copy slice of `data` (it shares the buffer; no bytes move).
[[nodiscard]] Result<Frame> decode(const Payload& data);

}  // namespace gmmcs::broker
