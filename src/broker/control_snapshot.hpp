// Epoch snapshots of the broker control plane (DESIGN.md §12).
//
// The fabric's routing tables and broker interest state are read on every
// published event (the dispatch hot path) but mutated only by rare control
// traffic: subscribe/unsubscribe advertisements, link-state reports, route
// repair. An RCU-style snapshot discipline exploits that asymmetry:
// writers build a fresh immutable ControlSnapshot under the canonical
// writer context (BrokerNetwork::ctx_) and publish it through one atomic
// shared_ptr store; dispatch paths load the current epoch lock-free and
// read it without any synchronization — which is what lets broker hosts
// run on ordinary parallel lanes instead of the serial kNoLane barrier.
//
// Immutability contract (enforced by the gmmcs-lint `snapshot` pass): the
// types below carry no mutable members and no mutating methods, and code
// outside the writer context may only hold `const` handles to them.
// Reclamation is shared_ptr refcounting — an old epoch stays alive exactly
// as long as some in-flight reader still holds it, and is freed by the
// last release with no grace-period machinery.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/topic.hpp"

namespace gmmcs::broker {

/// Flattened, immutable broker-interest table: the read-side counterpart
/// of SubscriptionIndex (which keeps refcounts and a mutable match cache,
/// both of which would be races under concurrent readers). Built by
/// SubscriptionIndex::flatten(); subscriber ids are broker ids here.
struct InterestTable {
  using SubscriberId = std::uint32_t;

  struct WildcardRow {
    TopicFilter filter;
    std::vector<SubscriberId> ids;  // sorted
  };

  /// Concrete filter pattern -> sorted subscriber ids.
  std::unordered_map<std::string, std::vector<SubscriberId>> exact;
  std::vector<WildcardRow> wildcards;

  /// Sorted, deduplicated subscribers matching `topic`, minus `exclude`.
  /// Matches SubscriptionIndex::matches(topic, exclude) exactly.
  [[nodiscard]] std::vector<SubscriberId> matches(const std::string& topic,
                                                  SubscriberId exclude) const;
};

/// Immutable shortest-path routing tables ([from][to] -> next hop / hops).
struct RouteTables {
  std::map<std::uint32_t, std::map<std::uint32_t, std::uint32_t>> next_hop_by;
  std::map<std::uint32_t, std::map<std::uint32_t, int>> dist_by;

  /// First hop from `from` toward `to`; throws like the pre-snapshot
  /// BrokerNetwork queries (no table = finalize() never ran; no entry =
  /// partitioned).
  [[nodiscard]] std::uint32_t next_hop(std::uint32_t from, std::uint32_t to) const;
  /// Hop distance; -1 if unreachable (or finalize() never ran).
  [[nodiscard]] int distance(std::uint32_t from, std::uint32_t to) const;
};

/// One published epoch of the control plane. Two-level sharing: an
/// interest-only change republishes with the routes pointer unchanged (and
/// vice versa), so writers rebuild only what they touched.
class ControlSnapshot {
 public:
  ControlSnapshot(std::uint64_t epoch, std::shared_ptr<const RouteTables> routes,
                  std::shared_ptr<const InterestTable> interest)
      : epoch_(epoch), routes_(std::move(routes)), interest_(std::move(interest)) {}

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const RouteTables& routes() const { return *routes_; }
  [[nodiscard]] const InterestTable& interest() const { return *interest_; }
  [[nodiscard]] const std::shared_ptr<const RouteTables>& routes_ptr() const { return routes_; }
  [[nodiscard]] const std::shared_ptr<const InterestTable>& interest_ptr() const {
    return interest_;
  }

 private:
  std::uint64_t epoch_;
  std::shared_ptr<const RouteTables> routes_;
  std::shared_ptr<const InterestTable> interest_;
};

using ControlSnapshotPtr = std::shared_ptr<const ControlSnapshot>;

}  // namespace gmmcs::broker
