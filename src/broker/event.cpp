#include "broker/event.hpp"

namespace gmmcs::broker {

namespace {
std::uint64_t g_event_encodes = 0;

void encode_event_body(ByteWriter& w, const Event& e) {
  w.u8(static_cast<std::uint8_t>(e.qos));
  w.u8(e.hops);
  w.u64(static_cast<std::uint64_t>(e.origin.ns()));
  w.u32(e.seq);
  w.u32(e.publisher);
  w.lstr(e.topic);
  w.u32(static_cast<std::uint32_t>(e.payload.size()));
  w.raw(e.payload);
}

Event decode_event_body(ByteReader& r, const Payload& frame) {
  Event e;
  e.qos = static_cast<QoS>(r.u8());
  e.hops = r.u8();
  e.origin = SimTime{static_cast<std::int64_t>(r.u64())};
  e.seq = r.u32();
  e.publisher = r.u32();
  e.topic = r.lstr();
  auto len = r.read_len_bounded(r.remaining());
  if (!len.ok()) return e;  // reader is poisoned; caller checks r.ok()
  std::size_t at = r.position();
  // Advance through the reader, but take the payload as a zero-copy
  // slice of the frame buffer rather than an owned vector.
  r.skip(len.value());
  e.payload = frame.slice(at, len.value());
  return e;
}
}  // namespace

Bytes encode(const HelloMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kHello));
  w.lstr(m.client_name);
  w.u16(m.udp_port);
  return w.take();
}

Bytes encode(const HelloAckMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kHelloAck));
  w.u32(m.client_id);
  w.u16(m.broker_udp_port);
  return w.take();
}

Bytes encode(const SubscribeMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.subscribe ? MessageType::kSubscribe
                                             : MessageType::kUnsubscribe));
  w.lstr(m.filter);
  return w.take();
}

// Fixed kEvent overhead: type + qos + hops (3×u8) + origin (u64) +
// seq + publisher + payload length (3×u32) + the topic's lstr prefix
// (u16) = 25 bytes. The reserve must not undershoot: the zero-copy
// certification (tests/zero_copy_cert_test.cpp) pins the frame to a
// single allocation, and a short reserve silently re-copies it.
constexpr std::size_t kEventFixedOverhead = 25;

Bytes encode(const Event& e) {
  ++g_event_encodes;
  ByteWriter w(e.payload.size() + e.topic.size() + kEventFixedOverhead);
  w.u8(static_cast<std::uint8_t>(MessageType::kEvent));
  encode_event_body(w, e);
  return w.take();
}

Bytes encode_peer_event(const Event& e, const std::vector<BrokerId>& targets) {
  ByteWriter w(e.payload.size() + e.topic.size() + kEventFixedOverhead +
               2 + 4 * targets.size());
  w.u8(static_cast<std::uint8_t>(MessageType::kPeerEvent));
  w.u16(static_cast<std::uint16_t>(targets.size()));
  for (BrokerId id : targets) w.u32(id);
  encode_event_body(w, e);
  return w.take();
}

Bytes encode(const PeerEventMessage& m) {
  return encode_peer_event(m.event, m.targets);
}

std::uint64_t event_encode_count() {
  return g_event_encodes;
}

const Payload& RoutedEvent::wire() const {
  if (!encoded_) {
    wire_ = encode(event_);
    encoded_ = true;
  }
  return wire_;
}

Bytes encode(const PingMessage& m, bool pong) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(pong ? MessageType::kPong : MessageType::kPing));
  w.u32(m.token);
  w.u64(static_cast<std::uint64_t>(m.sent.ns()));
  return w.take();
}

Bytes encode(const HeartbeatMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kHeartbeat));
  w.u32(m.from);
  return w.take();
}

Bytes encode(const LinkStateMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kLinkState));
  w.u32(m.origin);
  w.u32(m.seq);
  w.u32(m.a);
  w.u32(m.b);
  w.u8(m.up ? 1 : 0);
  return w.take();
}

Result<Frame> decode(const Payload& data) {
  if (data.empty()) return fail<Frame>("broker: empty frame");
  ByteReader r(data);
  Frame f;
  auto type = r.u8();
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello:
      f.type = MessageType::kHello;
      f.hello.client_name = r.lstr();
      f.hello.udp_port = r.u16();
      break;
    case MessageType::kHelloAck:
      f.type = MessageType::kHelloAck;
      f.hello_ack.client_id = r.u32();
      f.hello_ack.broker_udp_port = r.u16();
      break;
    case MessageType::kSubscribe:
    case MessageType::kUnsubscribe:
      f.type = static_cast<MessageType>(type);
      f.subscribe.filter = r.lstr();
      f.subscribe.subscribe = (static_cast<MessageType>(type) == MessageType::kSubscribe);
      break;
    case MessageType::kEvent:
      f.type = MessageType::kEvent;
      f.event = decode_event_body(r, data);
      break;
    case MessageType::kPeerEvent: {
      f.type = MessageType::kPeerEvent;
      // A hostile 3-byte frame used to claim 65535 targets and allocate
      // 256 KiB before the truncation check; the clamped count read
      // rejects any count that can't fit in the bytes actually left.
      auto n = r.read_count_u16(4);
      if (!n.ok()) break;  // reader poisoned; truncation check below fires
      f.peer_event.targets.reserve(n.value());
      for (std::size_t i = 0; i < n.value(); ++i) {
        f.peer_event.targets.push_back(r.u32());
      }
      f.peer_event.event = decode_event_body(r, data);
      break;
    }
    case MessageType::kPing:
    case MessageType::kPong:
      f.type = static_cast<MessageType>(type);
      f.ping.token = r.u32();
      f.ping.sent = SimTime{static_cast<std::int64_t>(r.u64())};
      break;
    case MessageType::kHeartbeat:
      f.type = MessageType::kHeartbeat;
      f.heartbeat.from = r.u32();
      break;
    case MessageType::kLinkState:
      f.type = MessageType::kLinkState;
      f.link_state.origin = r.u32();
      f.link_state.seq = r.u32();
      f.link_state.a = r.u32();
      f.link_state.b = r.u32();
      f.link_state.up = r.u8() != 0;
      break;
    default:
      return fail<Frame>("broker: unknown frame type " + std::to_string(type));
  }
  if (!r.ok()) return fail<Frame>("broker: truncated frame");
  return f;
}

}  // namespace gmmcs::broker
