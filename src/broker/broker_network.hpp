// The distributed broker fabric: topology, routing and interest
// propagation across a "dynamic collection of brokers" (paper §2.3).
//
// NaradaBrokering organizes brokers hierarchically (nodes within clusters
// within super-clusters); events travel broker-to-broker along shortest
// paths toward every broker with matching subscriber interest, and each
// forwarded copy carries its remaining target set so intermediate brokers
// never duplicate or loop.
//
// Modelling note (see DESIGN.md §2): the *data plane* — every forwarded
// event — is fully message-accurate, paying dispatch CPU, NIC and link
// costs per hop. The *control plane* (interest advertisements and route
// computation) is applied instantaneously through this coordinator object,
// standing in for NaradaBrokering's gossip of subscription tables. The
// experiments measure data-plane behaviour only.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker_node.hpp"
#include "broker/control_snapshot.hpp"
#include "broker/subscription_index.hpp"
#include "broker/topic.hpp"
#include "common/thread_annotations.hpp"
#include "sim/network.hpp"

namespace gmmcs::broker {

/// NaradaBrokering-style 3-level hierarchical broker address.
struct ClusterAddress {
  int super_cluster = 0;
  int cluster = 0;
  int node = 0;

  auto operator<=>(const ClusterAddress&) const = default;
  [[nodiscard]] std::string to_string() const;
};

class GMMCS_PINNED("the cluster control plane is built before the loop starts and outlives its drain") BrokerNetwork {
 public:
  explicit BrokerNetwork(sim::Network& net);
  ~BrokerNetwork();

  /// Creates a broker on the given host and registers it in the fabric.
  BrokerNode& add_broker(sim::Host& host, BrokerNode::Config cfg = {});
  [[nodiscard]] BrokerNode& broker(BrokerId id);
  [[nodiscard]] std::size_t broker_count() const {
    ctx_.assert_held();
    return brokers_.size();
  }

  /// Connects two brokers with a bidirectional link (a stream connection
  /// in each direction). Call finalize() after all links are in place.
  void link(BrokerId a, BrokerId b);
  /// Computes shortest-path routing tables over the current topology.
  /// Not one-shot: report_link() recomputes the same tables around failed
  /// links at runtime, so routes self-heal as detectors fire.
  void finalize();

  // --- Self-healing control plane ---
  /// A broker's failure detector reporting the (a,b) link down or back up.
  /// Both ends report independently; duplicate reports are deduplicated and
  /// only genuine transitions trigger a route recompute (and the
  /// on_route_repair callback). Link identity is undirected.
  void report_link(BrokerId a, BrokerId b, bool up);
  [[nodiscard]] bool link_considered_up(BrokerId a, BrokerId b) const {
    ctx_.assert_held();
    return !down_links_.contains(std::minmax(a, b));
  }
  /// Observer for repair instrumentation: (a, b, up, at) on each genuine
  /// link-state transition, after routes have been rebuilt.
  void on_route_repair(
      std::function<void(BrokerId, BrokerId, bool, SimTime)> cb) {
    ctx_.assert_held();
    route_listener_ = std::move(cb);
  }
  /// Times the routing tables were rebuilt by report_link transitions.
  [[nodiscard]] std::uint64_t route_recomputes() const {
    ctx_.assert_held();
    return route_recomputes_;
  }

  // --- Gossiped link-state (DESIGN.md §13) ---
  /// Switches route repair from the instantaneous shared-table shortcut to
  /// gossip: each broker keeps its *own* view of down links, learns about
  /// remote failures only from kLinkState advertisements flooded over the
  /// (simulated, latency-paying) peer links, and routes its row from that
  /// view. Off by default — fault-free runs carry no gossip traffic and
  /// existing outputs stay byte-identical. Set before the run starts.
  void set_gossip(bool enabled) {
    ctx_.assert_held();
    gossip_ = enabled;
  }
  /// Stable after setup (set_gossip is a construction-time switch), so
  /// broker-lane code may check it without entering the fabric context.
  [[nodiscard]] bool gossip_enabled() const { return gossip_; }
  /// A broker applying a received link-state advertisement to its own
  /// routing view (gossip mode only). Staged like report_link.
  void apply_link_state(BrokerId at, BrokerId a, BrokerId b, bool up);

  /// Optional hierarchical address labels; set_address also implies
  /// nothing topologically — use link_hierarchy to wire by address.
  void set_address(BrokerId id, ClusterAddress addr);
  [[nodiscard]] ClusterAddress address(BrokerId id) const;
  /// Wires the fabric from the assigned addresses: full mesh inside each
  /// cluster, the lowest-numbered node of each cluster links to the peer
  /// clusters' leaders inside a super-cluster, and super-cluster leaders
  /// form a ring. Then finalizes.
  void link_hierarchy();

  // --- Interest control plane ---
  /// Stages an interest mutation. The table update runs in serial order
  /// (inline when called serially, at the merge barrier from a parallel
  /// lane event) and a fresh snapshot epoch is published afterwards; see
  /// DESIGN.md §12 for the visibility contract.
  void advertise(const TopicFilter& filter, BrokerId origin, bool add);
  /// All brokers (excluding `exclude`) with interest matching `topic`.
  /// Lock-free: reads the current published snapshot; callable from any
  /// lane's dispatch path concurrently.
  [[nodiscard]] std::vector<BrokerId> interested_brokers(const std::string& topic,
                                                         BrokerId exclude) const;

  // --- Routing queries (lock-free snapshot reads, like interested_brokers) ---
  [[nodiscard]] BrokerId next_hop(BrokerId from, BrokerId to) const;
  /// Hop distance; -1 if unreachable.
  [[nodiscard]] int distance(BrokerId from, BrokerId to) const;

  /// The current control-plane epoch (routing tables + interest state) as
  /// one immutable, atomically-published object. Dispatch paths that make
  /// several related queries (e.g. distance then next_hop per target)
  /// should load one snapshot and query it, guaranteeing a single
  /// consistent epoch even while writers republish concurrently.
  [[nodiscard]] ControlSnapshotPtr snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

 private:
  /// BFS over adjacency_ minus down_links_; shared by finalize() and
  /// report_link().
  void rebuild_routes() GMMCS_REQUIRES(ctx_);
  /// Rebuilds one broker's routing row from the down-set it believes in:
  /// the shared down_links_ normally, its gossip view in gossip mode.
  void rebuild_route_row(BrokerId src) GMMCS_REQUIRES(ctx_);
  /// Records which halves of the control plane changed and arranges for a
  /// snapshot publication: synchronous outside event execution (setup and
  /// tests observe the new epoch immediately), otherwise via a scheduled
  /// kNoLane event so serial and parallel runs flip epochs at the same
  /// (when, seq) position.
  void mark_dirty(bool routes, bool interest) GMMCS_REQUIRES(ctx_);
  /// Rebuilds the dirty snapshot halves and atomically publishes the next
  /// epoch. The only writer of snapshot_, always under ctx_ — the lint
  /// snapshot-discipline pass enforces exactly this.
  void publish_now() GMMCS_REQUIRES(ctx_);

  sim::Network* net_;
  /// Fabric execution context (phantom capability, DESIGN.md §11): the
  /// authoritative control-plane state below is the *writer side* of the
  /// epoch-snapshot discipline (DESIGN.md §12) — mutated only in serial
  /// order (setup code, kNoLane events, the merge barrier). Dispatch-path
  /// readers never touch it: they read the published snapshot_ lock-free,
  /// which is why broker hosts run on ordinary parallel lanes and no
  /// longer need set_exclusive. Outermost in the canonical lock order:
  /// brokers call in here (advertise/report_link) and we call into brokers
  /// (link, add_peer_link) within the same serial context.
  ExecContext ctx_;
  std::vector<std::unique_ptr<BrokerNode>> brokers_ GMMCS_GUARDED_BY(ctx_);
  std::map<BrokerId, std::set<BrokerId>> adjacency_ GMMCS_GUARDED_BY(ctx_);
  /// Links currently declared down by some broker's failure detector,
  /// keyed undirected (min id, max id).
  std::set<std::pair<BrokerId, BrokerId>> down_links_ GMMCS_GUARDED_BY(ctx_);
  /// Gossip mode: written only during setup, read by broker-lane code via
  /// gossip_enabled() — stable while events run, so unguarded by design.
  bool gossip_ = false;
  /// Gossip mode: each broker's private view of down links, fed by the
  /// kLinkState advertisements that actually reached it.
  std::map<BrokerId, std::set<std::pair<BrokerId, BrokerId>>> view_down_ GMMCS_GUARDED_BY(ctx_);
  std::function<void(BrokerId, BrokerId, bool, SimTime)> route_listener_ GMMCS_GUARDED_BY(ctx_);
  std::uint64_t route_recomputes_ GMMCS_GUARDED_BY(ctx_) = 0;
  // [from][to] -> next hop.
  std::map<BrokerId, std::map<BrokerId, BrokerId>> next_hop_ GMMCS_GUARDED_BY(ctx_);
  std::map<BrokerId, std::map<BrokerId, int>> dist_ GMMCS_GUARDED_BY(ctx_);
  /// Broker interest table (subscriber = BrokerId), sharing the indexed
  /// fast path (exact hash + wildcard list + match cache) with the
  /// per-node client table. Advertisements are refcounted per origin.
  SubscriptionIndex interest_ GMMCS_GUARDED_BY(ctx_);
  std::map<BrokerId, ClusterAddress> addresses_ GMMCS_GUARDED_BY(ctx_);

  // --- Epoch-snapshot publication state (DESIGN.md §12) ---
  std::uint64_t epoch_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Which snapshot halves are stale relative to the authoritative state.
  bool routes_dirty_ GMMCS_GUARDED_BY(ctx_) = true;
  bool interest_dirty_ GMMCS_GUARDED_BY(ctx_) = true;
  /// True while a publication event is scheduled (dedups mark_dirty calls
  /// within one timestamp).
  bool publish_pending_ GMMCS_GUARDED_BY(ctx_) = false;
  sim::TaskId publish_task_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Previously built halves, reused unchanged when only the other half
  /// was dirtied (two-level sharing keeps republication cheap).
  std::shared_ptr<const RouteTables> pub_routes_ GMMCS_GUARDED_BY(ctx_);
  std::shared_ptr<const InterestTable> pub_interest_ GMMCS_GUARDED_BY(ctx_);
  /// The published snapshot: written only by publish_now() under ctx_,
  /// loaded lock-free by dispatch-path readers on any lane. Reclamation is
  /// refcounting — the last reader of a superseded epoch frees it.
  std::atomic<ControlSnapshotPtr> snapshot_;
};

}  // namespace gmmcs::broker
