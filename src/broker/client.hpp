// Broker client API: connect, subscribe, publish.
//
// Mirrors the client profiles the paper lists for NaradaBrokering (§2.3):
// a reliable stream (TCP) control channel for everyone, an optional UDP
// channel for media events in both directions, and connection through an
// HTTP proxy for clients behind firewalls.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "broker/event.hpp"
#include "sim/network.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/firewall.hpp"
#include "transport/stream.hpp"

namespace gmmcs::broker {

class BrokerClient {
 public:
  struct Config {
    std::string name = "client";
    /// Receive best-effort events over UDP (media path); reliable events
    /// always arrive on the stream.
    bool udp_delivery = true;
    /// Publish best-effort events over UDP rather than the stream.
    bool udp_publish = true;
    /// Tunnel the control stream through an HTTP proxy (firewalled
    /// clients). UDP channels are disabled in that case.
    std::optional<sim::Endpoint> via_proxy;
  };

  BrokerClient(sim::Host& host, sim::Endpoint broker_stream, Config cfg);
  /// Default configuration (UDP media channels, no proxy).
  BrokerClient(sim::Host& host, sim::Endpoint broker_stream);

  void subscribe(const std::string& filter);
  void unsubscribe(const std::string& filter);
  /// Publishes an event; origin timestamp is stamped here. Events
  /// published before the handshake completes are queued.
  void publish(const std::string& topic, Bytes payload, QoS qos = QoS::kBestEffort);

  void on_event(std::function<void(const Event&)> handler);
  /// Fires once the broker has acknowledged the Hello.
  void on_ready(std::function<void()> handler);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] ClientId id() const { return client_id_; }
  [[nodiscard]] std::uint64_t events_received() const { return events_received_; }
  [[nodiscard]] std::uint64_t events_published() const { return events_published_; }
  [[nodiscard]] sim::Host& host() const { return *host_; }

 private:
  void handle_frame(const Bytes& data);
  void flush_queue();

  sim::Host* host_;
  Config cfg_;
  transport::StreamConnectionPtr stream_;
  std::optional<transport::DatagramSocket> udp_;
  sim::Endpoint broker_udp_{};
  ClientId client_id_ = 0;
  bool ready_ = false;
  std::uint32_t next_seq_ = 0;
  std::uint64_t events_received_ = 0;
  std::uint64_t events_published_ = 0;
  std::deque<Event> pending_;
  std::function<void(const Event&)> event_handler_;
  std::function<void()> ready_handler_;
};

}  // namespace gmmcs::broker
