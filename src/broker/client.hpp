// Broker client API: connect, subscribe, publish.
//
// Mirrors the client profiles the paper lists for NaradaBrokering (§2.3):
// a reliable stream (TCP) control channel for everyone, an optional UDP
// channel for media events in both directions, and connection through an
// HTTP proxy for clients behind firewalls.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/event.hpp"
#include "common/random.hpp"
#include "common/thread_annotations.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/firewall.hpp"
#include "transport/stream.hpp"

namespace gmmcs::broker {

/// Client self-healing policy: when the control stream dies (broker crash,
/// keepalive miss, connect timeout) the client retries with exponential
/// backoff plus jitter, re-sends its Hello and replays its subscription
/// set. Disabled by default — a fault-free run schedules no extra events,
/// keeping existing bench outputs byte-identical.
struct ReconnectPolicy {
  bool enabled = false;
  /// First retry delay; doubles per consecutive failure up to backoff_max.
  SimDuration backoff_base = duration_ms(100);
  SimDuration backoff_max = duration_s(5);
  /// Uniform +-fraction applied to each delay (decorrelates clients that
  /// lost the same broker).
  double jitter = 0.25;
  /// A connect attempt not established within this window counts as
  /// failed and re-enters backoff.
  SimDuration connect_timeout = duration_ms(500);
  /// Stream-level SYN retransmission interval while connecting (see
  /// transport::ConnectOptions): recovers a handshake whose SYN or SYN-ACK
  /// was eaten by a one-way cut or a briefly-dead broker host without
  /// waiting out the full connect_timeout + backoff round trip. 0 keeps
  /// the historical behavior (the watchdog alone owns the handshake).
  SimDuration syn_retry{0};
  int syn_retries = 3;
};

class GMMCS_PINNED("client endpoints are created at run start and destroyed only after the loop drains") BrokerClient {
 public:
  struct Config {
    std::string name = "client";
    /// Receive best-effort events over UDP (media path); reliable events
    /// always arrive on the stream.
    bool udp_delivery = true;
    /// Publish best-effort events over UDP rather than the stream.
    bool udp_publish = true;
    /// Tunnel the control stream through an HTTP proxy (firewalled
    /// clients). UDP channels are disabled in that case.
    std::optional<sim::Endpoint> via_proxy;
    /// Keepalive pings on the control stream every interval; the broker is
    /// declared dead after keepalive_miss silent intervals. 0 disables
    /// (the default: no extra frames or timers in fault-free runs).
    SimDuration keepalive_interval{0};
    int keepalive_miss = 3;
    ReconnectPolicy reconnect;
  };

  BrokerClient(sim::Host& host, sim::Endpoint broker_stream, Config cfg);
  /// Default configuration (UDP media channels, no proxy).
  BrokerClient(sim::Host& host, sim::Endpoint broker_stream);
  ~BrokerClient();
  BrokerClient(const BrokerClient&) = delete;
  BrokerClient& operator=(const BrokerClient&) = delete;

  void subscribe(const std::string& filter);
  void unsubscribe(const std::string& filter);
  /// Publishes an event; origin timestamp and the client's id are stamped
  /// here (the id lets the ingress broker adopt the frame verbatim for its
  /// fan-out). Events published before the handshake completes are queued.
  void publish(const std::string& topic, Payload payload, QoS qos = QoS::kBestEffort);

  void on_event(std::function<void(const Event&)> handler);
  /// Fires once the broker has acknowledged the Hello.
  void on_ready(std::function<void()> handler);
  /// Fires when the control stream is declared dead (before backoff).
  void on_disconnect(std::function<void()> handler);
  /// Fires after a successful re-handshake (subscriptions replayed).
  void on_reconnect(std::function<void()> handler);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] ClientId id() const { return client_id_; }
  [[nodiscard]] std::uint64_t events_received() const { return events_received_; }
  [[nodiscard]] std::uint64_t events_published() const { return events_published_; }
  /// Times the control stream was declared dead / successfully re-established.
  [[nodiscard]] std::uint64_t disconnects() const { return disconnects_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  /// Publishes still queued behind an incomplete handshake (0 once ready;
  /// the chaos oracle's stuck-stream check).
  [[nodiscard]] std::size_t pending_publishes() const { return pending_.size(); }
  [[nodiscard]] sim::Host& host() const { return *host_; }

 private:
  void handle_frame(const Payload& data);
  void flush_queue();
  /// (Re)opens the control stream and sends Hello.
  void open_stream();
  /// Declares the control stream dead and enters backoff (idempotent
  /// while a retry is already pending).
  void stream_down();
  void schedule_retry();
  void attempt_connect();
  void keepalive_tick();
  void cancel_connect_timer();

  sim::Host* host_;
  Config cfg_;
  sim::Endpoint broker_stream_{};
  transport::StreamConnectionPtr stream_;
  std::optional<transport::DatagramSocket> udp_;
  sim::Endpoint broker_udp_{};
  ClientId client_id_ = 0;
  bool ready_ = false;
  std::uint32_t next_seq_ = 0;
  std::uint64_t events_received_ = 0;
  std::uint64_t events_published_ = 0;
  std::deque<Event> pending_;
  /// Live subscription set, replayed after every re-handshake.
  std::vector<std::string> filters_;
  // Self-healing state (all inert unless reconnect/keepalive enabled).
  std::uint64_t hello_acks_ = 0;
  std::uint64_t disconnects_ = 0;
  std::uint64_t reconnects_ = 0;
  int attempt_ = 0;             // consecutive failed connect attempts
  bool retry_pending_ = false;  // a backoff timer is armed
  std::uint64_t conn_generation_ = 0;
  sim::TaskId retry_timer_ = 0;
  sim::TaskId connect_timer_ = 0;
  std::unique_ptr<sim::PeriodicTask> keepalive_task_;
  SimTime last_heard_{};
  Rng jitter_rng_;
  std::function<void(const Event&)> event_handler_;
  std::function<void()> ready_handler_;
  std::function<void()> disconnect_handler_;
  std::function<void()> reconnect_handler_;
};

}  // namespace gmmcs::broker
