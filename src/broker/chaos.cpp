#include "broker/chaos.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/reliable.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gmmcs::broker {

namespace {

constexpr const char* kReliableTopic = "/chaos/reliable";
constexpr std::int64_t kTrafficStartMs = 300;

std::string topic_name(int index) { return "/chaos/t" + std::to_string(index); }

/// A client crashed past the end of the run never comes back: its checks
/// are skipped and its broker record is *expected* to be reaped.
bool permanently_crashed(const sim::ChaosSpec& spec, int client) {
  for (const sim::ChaosFault& f : spec.faults) {
    if (f.kind == sim::FaultPlan::FaultKind::kHostCrash &&
        f.a.kind == sim::ChaosRefKind::kClient && f.a.index == client &&
        f.until > spec.horizon) {
      return true;
    }
  }
  return false;
}

/// Reference all-pairs hop counts over the spec's full (healed) topology.
std::map<int, std::map<int, int>> reference_distances(const sim::ChaosSpec& spec) {
  std::map<int, std::set<int>> adj;
  for (int i = 0; i < spec.brokers; ++i) adj[i];
  for (const auto& [a, b] : spec.links) {
    adj[a].insert(b);
    adj[b].insert(a);
  }
  std::map<int, std::map<int, int>> dist;
  for (int src = 0; src < spec.brokers; ++src) {
    auto& d = dist[src];
    d[src] = 0;
    std::deque<int> queue{src};
    while (!queue.empty()) {
      int cur = queue.front();
      queue.pop_front();
      for (int nb : adj[cur]) {
        if (d.contains(nb)) continue;
        d[nb] = d[cur] + 1;
        queue.push_back(nb);
      }
    }
  }
  return dist;
}

}  // namespace

ChaosOutcome run_chaos(const sim::ChaosSpec& spec, const ChaosOptions& opts) {
  sim::EventLoop loop;
  if (opts.workers > 1) loop.set_workers(opts.workers);
  sim::Network net(loop, spec.seed ^ 0x5DEECE66Dull);

  // --- Fabric ---
  BrokerNetwork fabric(net);
  BrokerNode::Config bcfg;
  bcfg.heartbeat.interval = duration_ms(50);
  bcfg.heartbeat.miss_threshold = 3;
  if (opts.ghost_reap) {
    // Reap after 2 s of silence: the threshold must exceed the longest
    // one-way outage the generator can produce (1.2 s), because a silent
    // receiver behind an asymmetric cut answers no probes yet is alive.
    bcfg.client_keepalive.interval = duration_ms(250);
    bcfg.client_keepalive.miss_threshold = 8;
  }
  std::vector<sim::Host*> broker_hosts;
  for (int i = 0; i < spec.brokers; ++i) {
    sim::Host& h = net.add_host("b" + std::to_string(i));
    broker_hosts.push_back(&h);
    fabric.add_broker(h, bcfg);
  }
  for (const auto& [a, b] : spec.links) fabric.link(a, b);
  fabric.set_gossip(spec.gossip);
  fabric.finalize();

  // --- Reliable pipeline, pinned to broker 0 (never crashed) ---
  sim::Host& pub_host = net.add_host("pub");
  sim::Host& recovery_host = net.add_host("recovery");
  sim::Host& rsub_host = net.add_host("rsub");
  BrokerClient pub(pub_host, fabric.broker(0).stream_endpoint(), {.name = "pub"});
  RecoveryService recovery(recovery_host, fabric.broker(0).stream_endpoint(), kReliableTopic);
  ReliableSubscriber rsub(rsub_host, fabric.broker(0).stream_endpoint(), kReliableTopic,
                          recovery.endpoint(), /*give_up=*/duration_s(1),
                          /*sync_interval=*/duration_ms(100));
  const SimTime traffic_start{duration_ms(kTrafficStartMs).ns()};
  for (int i = 0; i < spec.reliable_events; ++i) {
    loop.schedule_at(traffic_start + spec.reliable_spacing * i,
                     [&pub] { pub.publish(kReliableTopic, Bytes(128, 0)); });
  }

  // --- Generated clients ---
  std::vector<sim::Host*> client_hosts;
  std::vector<std::unique_ptr<BrokerClient>> clients;
  for (std::size_t i = 0; i < spec.clients.size(); ++i) {
    const sim::ChaosClient& cc = spec.clients[i];
    sim::Host& h = net.add_host("c" + std::to_string(i));
    client_hosts.push_back(&h);
    BrokerClient::Config cfg;
    cfg.name = "c" + std::to_string(i);
    cfg.udp_delivery = !cc.stream_only;
    cfg.udp_publish = !cc.stream_only;
    cfg.keepalive_interval = duration_ms(200);
    cfg.keepalive_miss = 3;
    cfg.reconnect.enabled = true;
    cfg.reconnect.backoff_base = duration_ms(100);
    cfg.reconnect.backoff_max = duration_ms(500);
    cfg.reconnect.connect_timeout = duration_ms(300);
    if (opts.syn_retry) {
      cfg.reconnect.syn_retry = duration_ms(100);
      cfg.reconnect.syn_retries = 3;
    }
    auto& client = clients.emplace_back(std::make_unique<BrokerClient>(
        h, fabric.broker(cc.broker).stream_endpoint(), cfg));
    client->subscribe(topic_name(cc.topic));
    for (int e = 0; e < cc.events; ++e) {
      loop.schedule_at(traffic_start + cc.spacing * e,
                       [c = client.get(), t = topic_name(cc.topic)] {
                         c->publish(t, Bytes(128, 0));
                       });
    }
  }

  // --- Fault plan ---
  auto node_of = [&](const sim::ChaosRef& r) -> sim::NodeId {
    switch (r.kind) {
      case sim::ChaosRefKind::kBroker:
        return broker_hosts[static_cast<std::size_t>(r.index)]->id();
      case sim::ChaosRefKind::kClient:
        return client_hosts[static_cast<std::size_t>(r.index)]->id();
      case sim::ChaosRefKind::kRsub:
        return rsub_host.id();
    }
    return broker_hosts[0]->id();
  };
  sim::FaultPlan plan;
  for (const sim::ChaosFault& f : spec.faults) {
    switch (f.kind) {
      case sim::FaultPlan::FaultKind::kHostCrash:
        plan.crash_host(node_of(f.a), f.from, f.until);
        break;
      case sim::FaultPlan::FaultKind::kLinkFlap:
        plan.flap_link(node_of(f.a), node_of(f.b), f.from, f.until);
        break;
      case sim::FaultPlan::FaultKind::kLossBurst:
        plan.loss_burst(node_of(f.a), node_of(f.b), f.from, f.until, f.loss, f.burst_length);
        break;
      case sim::FaultPlan::FaultKind::kOneWayCut:
        plan.cut_oneway(node_of(f.a), node_of(f.b), f.from, f.until);
        break;
      case sim::FaultPlan::FaultKind::kGrayHost:
        plan.gray_host(node_of(f.a), f.from, f.until, f.loss, f.burst_length);
        break;
      case sim::FaultPlan::FaultKind::kPartition: {
        std::vector<sim::NodeId> side_a, side_b;
        for (int i : f.group_a) side_a.push_back(broker_hosts[static_cast<std::size_t>(i)]->id());
        for (int i : f.group_b) side_b.push_back(broker_hosts[static_cast<std::size_t>(i)]->id());
        plan.partition(std::move(side_a), std::move(side_b), f.from, f.until);
        break;
      }
    }
  }
  plan.install(net);

  loop.run_until(spec.horizon + spec.settle);

  // --- Oracle ---
  ChaosOutcome out;
  auto violate = [&out](const char* invariant, std::string detail) {
    out.violations.push_back({invariant, std::move(detail)});
  };

  // 1. Reliable eventual delivery.
  if (rsub.delivered() != static_cast<std::uint64_t>(spec.reliable_events) ||
      rsub.events_lost() != 0) {
    violate("reliable-delivery",
            "delivered " + std::to_string(rsub.delivered()) + "/" +
                std::to_string(spec.reliable_events) + ", lost " +
                std::to_string(rsub.events_lost()));
  }

  // 2. Route convergence after the last fault healed.
  const auto ref = reference_distances(spec);
  for (int from = 0; from < spec.brokers; ++from) {
    for (int to = 0; to < spec.brokers; ++to) {
      const auto& row = ref.at(from);
      const auto it = row.find(to);
      const int want = it == row.end() ? -1 : it->second;
      const int got = fabric.distance(from, to);
      if (got != want) {
        violate("route-convergence", "distance(" + std::to_string(from) + "," +
                                         std::to_string(to) + ") = " + std::to_string(got) +
                                         ", expected " + std::to_string(want));
      }
    }
  }
  for (const auto& [a, b] : spec.links) {
    if (!fabric.link_considered_up(a, b)) {
      violate("route-convergence",
              "link (" + std::to_string(a) + "," + std::to_string(b) + ") still down");
    }
    if (fabric.broker(a).peer_considered_down(b) || fabric.broker(b).peer_considered_down(a)) {
      violate("route-convergence", "peer detector (" + std::to_string(a) + "," +
                                       std::to_string(b) + ") still down");
    }
  }

  // 3. No ghost client records: each broker holds exactly its genuinely
  // attached clients (plus the three pipeline clients on broker 0).
  std::map<int, std::size_t> expected;
  for (int i = 0; i < spec.brokers; ++i) expected[i] = i == 0 ? 3 : 0;
  for (std::size_t i = 0; i < spec.clients.size(); ++i) {
    if (!permanently_crashed(spec, static_cast<int>(i))) {
      ++expected[spec.clients[i].broker];
    }
  }
  for (int i = 0; i < spec.brokers; ++i) {
    const std::size_t got = fabric.broker(i).client_count();
    if (got != expected[i]) {
      violate("ghost-records", "broker " + std::to_string(i) + " has " + std::to_string(got) +
                                   " client records, expected " + std::to_string(expected[i]));
    }
  }

  // 4. No stuck streams: every surviving client is connected and flushed.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (permanently_crashed(spec, static_cast<int>(i))) continue;
    if (!clients[i]->ready() || clients[i]->pending_publishes() != 0) {
      violate("stuck-streams", "client c" + std::to_string(i) + " ready=" +
                                   (clients[i]->ready() ? "1" : "0") + " pending=" +
                                   std::to_string(clients[i]->pending_publishes()));
    }
  }
  if (!pub.ready() || pub.pending_publishes() != 0) {
    violate("stuck-streams", "reliable publisher ready=" + std::string(pub.ready() ? "1" : "0") +
                                 " pending=" + std::to_string(pub.pending_publishes()));
  }

  // --- Metrics fingerprint ---
  out.metrics.reliable_delivered = rsub.delivered();
  out.metrics.reliable_recovered = rsub.recovered();
  out.metrics.reliable_lost = rsub.events_lost();
  for (int i = 0; i < spec.brokers; ++i) {
    BrokerNode& b = fabric.broker(i);
    out.metrics.events_in += b.events_in();
    out.metrics.copies_delivered += b.copies_delivered();
    out.metrics.peer_forwards += b.peer_forwards();
    out.metrics.clients_reaped += b.clients_reaped();
    out.metrics.link_states_flooded += b.link_states_flooded();
  }
  out.metrics.route_recomputes = fabric.route_recomputes();
  for (const auto& c : clients) out.metrics.client_events_received += c->events_received();
  out.metrics.net_delivered = net.delivered();
  out.metrics.net_lost = net.lost();
  return out;
}

namespace {

/// Removes client `index` from the spec: its faults go with it and refs
/// to later clients shift down one.
sim::ChaosSpec without_client(const sim::ChaosSpec& spec, int index) {
  sim::ChaosSpec out = spec;
  out.clients.erase(out.clients.begin() + index);
  std::erase_if(out.faults, [index](const sim::ChaosFault& f) {
    return (f.a.kind == sim::ChaosRefKind::kClient && f.a.index == index) ||
           (f.b.kind == sim::ChaosRefKind::kClient && f.b.index == index);
  });
  for (sim::ChaosFault& f : out.faults) {
    if (f.a.kind == sim::ChaosRefKind::kClient && f.a.index > index) --f.a.index;
    if (f.b.kind == sim::ChaosRefKind::kClient && f.b.index > index) --f.b.index;
  }
  return out;
}

}  // namespace

sim::ChaosSpec shrink_chaos(const sim::ChaosSpec& spec, const ChaosOptions& opts) {
  auto fails = [&opts](const sim::ChaosSpec& s) { return !run_chaos(s, opts).ok(); };
  if (!fails(spec)) return spec;
  sim::ChaosSpec cur = spec;
  bool progress = true;
  while (progress) {
    progress = false;
    // Drop faults one at a time.
    for (std::size_t i = 0; i < cur.faults.size();) {
      sim::ChaosSpec trial = cur;
      trial.faults.erase(trial.faults.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(trial)) {
        cur = std::move(trial);
        progress = true;
      } else {
        ++i;
      }
    }
    // Drop clients (with their faults).
    for (int i = 0; i < static_cast<int>(cur.clients.size());) {
      sim::ChaosSpec trial = without_client(cur, i);
      if (fails(trial)) {
        cur = std::move(trial);
        progress = true;
      } else {
        ++i;
      }
    }
    // Halve traffic.
    if (cur.reliable_events > 0 ||
        std::any_of(cur.clients.begin(), cur.clients.end(),
                    [](const sim::ChaosClient& c) { return c.events > 0; })) {
      sim::ChaosSpec trial = cur;
      trial.reliable_events /= 2;
      for (sim::ChaosClient& c : trial.clients) c.events /= 2;
      if (fails(trial)) {
        cur = std::move(trial);
        progress = true;
      }
    }
  }
  return cur;
}

}  // namespace gmmcs::broker
