#include "broker/broker_network.hpp"

#include <deque>
#include <stdexcept>

namespace gmmcs::broker {

std::string ClusterAddress::to_string() const {
  return std::to_string(super_cluster) + "." + std::to_string(cluster) + "." +
         std::to_string(node);
}

BrokerNetwork::BrokerNetwork(sim::Network& net) : net_(&net) {
  ctx_.assert_held();
  // Publish the empty epoch so dispatch-path readers never see a null
  // snapshot: pre-finalize queries behave exactly as the locked tables
  // did (next_hop throws "finalize() not called", distance -1, no
  // interest matches).
  publish_now();
}

BrokerNetwork::~BrokerNetwork() {
  ctx_.assert_held();
  // A publication event may still be queued (fabric destroyed before the
  // loop drains); cancel it so the event can't run into a dead `this`.
  if (publish_pending_) net_->loop().cancel(publish_task_);
}

BrokerNode& BrokerNetwork::add_broker(sim::Host& host, BrokerNode::Config cfg) {
  ctx_.assert_held();
  // Broker hosts run on ordinary parallel lanes: dispatch paths read the
  // fabric control plane through the published snapshot (lock-free) and
  // route every control-plane mutation through the serial post_effect
  // order, so broker events are host-independent like any other host's.
  // (Before the epoch-snapshot control plane they were set_exclusive.)
  auto id = static_cast<BrokerId>(brokers_.size());
  brokers_.push_back(std::make_unique<BrokerNode>(host, id, cfg));
  BrokerNode& node = *brokers_.back();
  node.ctx_.assert_held();  // fabric setup runs in the same serial context
  node.network_ = this;
  adjacency_[id];
  return node;
}

BrokerNode& BrokerNetwork::broker(BrokerId id) {
  ctx_.assert_held();
  return *brokers_.at(id);
}

void BrokerNetwork::link(BrokerId a, BrokerId b) {
  ctx_.assert_held();
  if (a == b) throw std::invalid_argument("BrokerNetwork::link: self-link");
  BrokerNode& na = broker(a);
  BrokerNode& nb = broker(b);
  // Fabric -> broker entry (DESIGN.md §11): BrokerNetwork::ctx_ is outer,
  // BrokerNode::ctx_ inner, so establishing the nodes' contexts here obeys
  // the canonical lock order.
  na.ctx_.assert_held();
  nb.ctx_.assert_held();
  // One stream connection in each direction (send paths are independent).
  auto ab = transport::StreamConnection::connect(na.host(), nb.stream_endpoint());
  auto ba = transport::StreamConnection::connect(nb.host(), na.stream_endpoint());
  na.add_peer_link(b, std::move(ab));
  nb.add_peer_link(a, std::move(ba));
  adjacency_[a].insert(b);
  adjacency_[b].insert(a);
}

void BrokerNetwork::finalize() {
  ctx_.assert_held();
  rebuild_routes();
  mark_dirty(/*routes=*/true, /*interest=*/false);
}

void BrokerNetwork::mark_dirty(bool routes, bool interest) {
  routes_dirty_ |= routes;
  interest_dirty_ |= interest;
  if (publish_pending_) return;
  sim::EventLoop& loop = net_->loop();
  if (!loop.executing()) {
    // Setup / test code outside event execution: publish synchronously so
    // the caller observes the new epoch immediately.
    publish_now();
    return;
  }
  // Inside a run: defer to a same-timestamp kNoLane event. Serial and
  // parallel execution schedule it from the same serial-order position
  // (inline event vs merge-barrier replay), so the epoch flips at an
  // identical (when, seq) in both modes; events sequenced before it read
  // the previous epoch either way.
  publish_pending_ = true;
  publish_task_ = loop.schedule_at(
      loop.now(),
      [this] {
        ctx_.assert_held();
        publish_pending_ = false;
        publish_task_ = 0;
        publish_now();
      },
      sim::kNoLane);
}

void BrokerNetwork::publish_now() {
  ++epoch_;
  if (routes_dirty_ || !pub_routes_) {
    auto routes = std::make_shared<RouteTables>();
    routes->next_hop_by = next_hop_;
    routes->dist_by = dist_;
    pub_routes_ = std::move(routes);
    routes_dirty_ = false;
  }
  if (interest_dirty_ || !pub_interest_) {
    pub_interest_ = std::make_shared<const InterestTable>(interest_.flatten());
    interest_dirty_ = false;
  }
  snapshot_.store(
      std::make_shared<const ControlSnapshot>(epoch_, pub_routes_, pub_interest_),
      std::memory_order_release);
}

void BrokerNetwork::rebuild_routes() {
  next_hop_.clear();
  dist_.clear();
  for (const auto& [src, _] : adjacency_) rebuild_route_row(src);
}

void BrokerNetwork::rebuild_route_row(BrokerId src) {
  // BFS from one broker (links are uniform cost), skipping links the
  // broker believes down: the shared detector table normally, its own
  // gossip-fed view in gossip mode.
  const auto& down = gossip_ ? view_down_[src] : down_links_;
  auto& hops = next_hop_[src];
  auto& dist = dist_[src];
  hops.clear();
  dist.clear();
  dist[src] = 0;
  std::deque<BrokerId> queue{src};
  while (!queue.empty()) {
    BrokerId cur = queue.front();
    queue.pop_front();
    for (BrokerId nb : adjacency_.at(cur)) {
      if (dist.contains(nb)) continue;
      if (!down.empty() && down.contains(std::minmax(cur, nb))) continue;
      dist[nb] = dist[cur] + 1;
      // First hop on the path: neighbor itself if cur==src, else
      // inherit cur's first hop.
      hops[nb] = (cur == src) ? nb : hops[cur];
      queue.push_back(nb);
    }
  }
}

void BrokerNetwork::report_link(BrokerId a, BrokerId b, bool up) {
  // Writer path: detectors fire from broker-lane events, so the table
  // mutation is staged through post_effect — it runs inline when called
  // serially, or at the merge barrier (in (when, seq) order of the
  // reporting events) from a parallel batch. Captures {this, a, b, up}.
  net_->loop().post_effect([this, a, b, up] {
    ctx_.assert_held();
    const auto key = std::minmax(a, b);
    // Both endpoints' detectors report each transition; only the first
    // report of a genuine state change fires the repair listener.
    const bool changed = up ? down_links_.erase(key) > 0 : down_links_.insert(key).second;
    if (gossip_) {
      // Gossip mode: the reporting broker updates only its own view (and
      // row) here; everyone else learns from the flooded advertisement,
      // paying real propagation latency.
      auto& view = view_down_[a];
      const bool view_changed = up ? view.erase(key) > 0 : view.insert(key).second;
      if (view_changed) {
        rebuild_route_row(a);
        ++route_recomputes_;
        mark_dirty(/*routes=*/true, /*interest=*/false);
      }
    } else if (changed) {
      rebuild_routes();
      ++route_recomputes_;
      mark_dirty(/*routes=*/true, /*interest=*/false);
    }
    if (changed && route_listener_) {
      route_listener_(key.first, key.second, up, net_->loop().now());
    }
  });
}

void BrokerNetwork::apply_link_state(BrokerId at, BrokerId a, BrokerId b, bool up) {
  // Staged like report_link; no repair-listener fire (the transition was
  // already announced at its origin) and no shared-table touch.
  net_->loop().post_effect([this, at, a, b, up] {
    ctx_.assert_held();
    if (!gossip_) return;
    const auto key = std::minmax(a, b);
    auto& view = view_down_[at];
    const bool changed = up ? view.erase(key) > 0 : view.insert(key).second;
    if (!changed) return;
    rebuild_route_row(at);
    ++route_recomputes_;
    mark_dirty(/*routes=*/true, /*interest=*/false);
  });
}

void BrokerNetwork::set_address(BrokerId id, ClusterAddress addr) {
  ctx_.assert_held();
  addresses_[id] = addr;
}

ClusterAddress BrokerNetwork::address(BrokerId id) const {
  ctx_.assert_held();
  auto it = addresses_.find(id);
  return it == addresses_.end() ? ClusterAddress{} : it->second;
}

void BrokerNetwork::link_hierarchy() {
  ctx_.assert_held();
  // Group brokers by (super_cluster, cluster).
  std::map<std::pair<int, int>, std::vector<BrokerId>> clusters;
  std::map<int, std::vector<std::pair<int, BrokerId>>> supers;  // sc -> (cluster, leader)
  for (const auto& [id, addr] : addresses_) {
    clusters[{addr.super_cluster, addr.cluster}].push_back(id);
  }
  // Full mesh within each cluster; lowest id is the cluster leader.
  for (auto& [key, members] : clusters) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        link(members[i], members[j]);
      }
    }
    supers[key.first].push_back({key.second, members.front()});
  }
  // Cluster leaders form a ring inside each super-cluster; the first
  // leader of each super-cluster joins the inter-super ring.
  std::vector<BrokerId> super_leaders;
  for (auto& [sc, leaders] : supers) {
    for (std::size_t i = 0; i + 1 < leaders.size(); ++i) {
      link(leaders[i].second, leaders[i + 1].second);
    }
    if (leaders.size() > 2) link(leaders.back().second, leaders.front().second);
    super_leaders.push_back(leaders.front().second);
  }
  for (std::size_t i = 0; i + 1 < super_leaders.size(); ++i) {
    link(super_leaders[i], super_leaders[i + 1]);
  }
  if (super_leaders.size() > 2) link(super_leaders.back(), super_leaders.front());
  finalize();
}

void BrokerNetwork::advertise(const TopicFilter& filter, BrokerId origin, bool add) {
  // Writer path, staged like report_link. TopicFilter (~90 bytes) exceeds
  // the SmallFn inline budget by value, so the closure owns it through a
  // shared_ptr: {this, shared_ptr, origin, add} = 32 bytes.
  net_->loop().post_effect(
      [this, f = std::make_shared<const TopicFilter>(filter), origin, add] {
        ctx_.assert_held();
        if (add) {
          interest_.subscribe(origin, *f);
        } else {
          interest_.unsubscribe(origin, *f);
        }
        mark_dirty(/*routes=*/false, /*interest=*/true);
      });
}

std::vector<BrokerId> BrokerNetwork::interested_brokers(const std::string& topic,
                                                        BrokerId exclude) const {
  // Lock-free dispatch-path read: one acquire load of the published
  // snapshot. Result is sorted by broker id like the locked index scan,
  // so forwarding order is unchanged.
  return snapshot()->interest().matches(topic, exclude);
}

BrokerId BrokerNetwork::next_hop(BrokerId from, BrokerId to) const {
  return snapshot()->routes().next_hop(from, to);
}

int BrokerNetwork::distance(BrokerId from, BrokerId to) const {
  return snapshot()->routes().distance(from, to);
}

}  // namespace gmmcs::broker
