#include "broker/broker_network.hpp"

#include <deque>
#include <stdexcept>

namespace gmmcs::broker {

std::string ClusterAddress::to_string() const {
  return std::to_string(super_cluster) + "." + std::to_string(cluster) + "." +
         std::to_string(node);
}

BrokerNetwork::BrokerNetwork(sim::Network& net) : net_(&net) {}

BrokerNetwork::~BrokerNetwork() = default;

BrokerNode& BrokerNetwork::add_broker(sim::Host& host, BrokerNode::Config cfg) {
  ctx_.assert_held();
  // Fabric brokers share control-plane state across hosts (the routing
  // tables, the interest index and its match cache), so their events are
  // not host-independent: opt them out of parallel lanes.
  host.set_exclusive(true);
  auto id = static_cast<BrokerId>(brokers_.size());
  brokers_.push_back(std::make_unique<BrokerNode>(host, id, cfg));
  BrokerNode& node = *brokers_.back();
  node.ctx_.assert_held();  // fabric setup runs in the same serial context
  node.network_ = this;
  adjacency_[id];
  return node;
}

BrokerNode& BrokerNetwork::broker(BrokerId id) {
  ctx_.assert_held();
  return *brokers_.at(id);
}

void BrokerNetwork::link(BrokerId a, BrokerId b) {
  ctx_.assert_held();
  if (a == b) throw std::invalid_argument("BrokerNetwork::link: self-link");
  BrokerNode& na = broker(a);
  BrokerNode& nb = broker(b);
  // Fabric -> broker entry (DESIGN.md §11): BrokerNetwork::ctx_ is outer,
  // BrokerNode::ctx_ inner, so establishing the nodes' contexts here obeys
  // the canonical lock order.
  na.ctx_.assert_held();
  nb.ctx_.assert_held();
  // One stream connection in each direction (send paths are independent).
  auto ab = transport::StreamConnection::connect(na.host(), nb.stream_endpoint());
  auto ba = transport::StreamConnection::connect(nb.host(), na.stream_endpoint());
  na.add_peer_link(b, std::move(ab));
  nb.add_peer_link(a, std::move(ba));
  adjacency_[a].insert(b);
  adjacency_[b].insert(a);
}

void BrokerNetwork::finalize() {
  ctx_.assert_held();
  rebuild_routes();
}

void BrokerNetwork::rebuild_routes() {
  next_hop_.clear();
  dist_.clear();
  // BFS from every broker (links are uniform cost), skipping links a
  // failure detector currently declares down.
  for (const auto& [src, _] : adjacency_) {
    auto& hops = next_hop_[src];
    auto& dist = dist_[src];
    dist[src] = 0;
    std::deque<BrokerId> queue{src};
    while (!queue.empty()) {
      BrokerId cur = queue.front();
      queue.pop_front();
      for (BrokerId nb : adjacency_.at(cur)) {
        if (dist.contains(nb)) continue;
        if (!down_links_.empty() && !link_considered_up(cur, nb)) continue;
        dist[nb] = dist[cur] + 1;
        // First hop on the path: neighbor itself if cur==src, else
        // inherit cur's first hop.
        hops[nb] = (cur == src) ? nb : hops[cur];
        queue.push_back(nb);
      }
    }
  }
}

void BrokerNetwork::report_link(BrokerId a, BrokerId b, bool up) {
  ctx_.assert_held();
  const auto key = std::minmax(a, b);
  // Both endpoints' detectors report each transition; only the first
  // report of a genuine state change does any work.
  const bool changed = up ? down_links_.erase(key) > 0 : down_links_.insert(key).second;
  if (!changed) return;
  rebuild_routes();
  ++route_recomputes_;
  if (route_listener_) route_listener_(key.first, key.second, up, net_->loop().now());
}

void BrokerNetwork::set_address(BrokerId id, ClusterAddress addr) {
  ctx_.assert_held();
  addresses_[id] = addr;
}

ClusterAddress BrokerNetwork::address(BrokerId id) const {
  ctx_.assert_held();
  auto it = addresses_.find(id);
  return it == addresses_.end() ? ClusterAddress{} : it->second;
}

void BrokerNetwork::link_hierarchy() {
  ctx_.assert_held();
  // Group brokers by (super_cluster, cluster).
  std::map<std::pair<int, int>, std::vector<BrokerId>> clusters;
  std::map<int, std::vector<std::pair<int, BrokerId>>> supers;  // sc -> (cluster, leader)
  for (const auto& [id, addr] : addresses_) {
    clusters[{addr.super_cluster, addr.cluster}].push_back(id);
  }
  // Full mesh within each cluster; lowest id is the cluster leader.
  for (auto& [key, members] : clusters) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        link(members[i], members[j]);
      }
    }
    supers[key.first].push_back({key.second, members.front()});
  }
  // Cluster leaders form a ring inside each super-cluster; the first
  // leader of each super-cluster joins the inter-super ring.
  std::vector<BrokerId> super_leaders;
  for (auto& [sc, leaders] : supers) {
    for (std::size_t i = 0; i + 1 < leaders.size(); ++i) {
      link(leaders[i].second, leaders[i + 1].second);
    }
    if (leaders.size() > 2) link(leaders.back().second, leaders.front().second);
    super_leaders.push_back(leaders.front().second);
  }
  for (std::size_t i = 0; i + 1 < super_leaders.size(); ++i) {
    link(super_leaders[i], super_leaders[i + 1]);
  }
  if (super_leaders.size() > 2) link(super_leaders.back(), super_leaders.front());
  finalize();
}

void BrokerNetwork::advertise(const TopicFilter& filter, BrokerId origin, bool add) {
  ctx_.assert_held();
  if (add) {
    interest_.subscribe(origin, filter);
  } else {
    interest_.unsubscribe(origin, filter);
  }
}

std::vector<BrokerId> BrokerNetwork::interested_brokers(const std::string& topic,
                                                        BrokerId exclude) const {
  ctx_.assert_held();
  // Indexed + cached; result is sorted by broker id like the old
  // set-based scan, so forwarding order is unchanged.
  return interest_.matches(topic, exclude);
}

BrokerId BrokerNetwork::next_hop(BrokerId from, BrokerId to) const {
  ctx_.assert_held();
  auto fit = next_hop_.find(from);
  if (fit == next_hop_.end()) throw std::logic_error("BrokerNetwork: finalize() not called");
  auto tit = fit->second.find(to);
  if (tit == fit->second.end()) {
    throw std::logic_error("BrokerNetwork: no route from " + std::to_string(from) + " to " +
                           std::to_string(to));
  }
  return tit->second;
}

int BrokerNetwork::distance(BrokerId from, BrokerId to) const {
  ctx_.assert_held();
  auto fit = dist_.find(from);
  if (fit == dist_.end()) return -1;
  auto tit = fit->second.find(to);
  return tit == fit->second.end() ? -1 : tit->second;
}

}  // namespace gmmcs::broker
