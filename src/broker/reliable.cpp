#include "broker/reliable.hpp"

#include "common/strings.hpp"

namespace gmmcs::broker {

RecoveryService::RecoveryService(sim::Host& host, sim::Endpoint broker_stream,
                                 std::string topic, std::size_t buffer_limit)
    : topic_(std::move(topic)),
      buffer_limit_(buffer_limit),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "recovery-" + topic_,
                                           .udp_delivery = false, .udp_publish = false}),
      listener_(host, /*port=*/0) {
  client_.subscribe(topic_);
  client_.on_event([this](const Event& ev) {
    buffer_.push_back(ev);
    if (buffer_.size() > buffer_limit_) buffer_.pop_front();
  });
  listener_.on_accept([this](transport::StreamConnectionPtr conn) {
    conns_.push_back(conn);
    auto* raw = conn.get();
    conn->on_message([this, raw](const Payload& data) {
      handle_request(raw, gmmcs::to_string(data));
    });
    conn->on_close([this, raw] {
      std::erase_if(conns_, [raw](const transport::StreamConnectionPtr& c) {
        return c.get() == raw;
      });
    });
  });
}

void RecoveryService::handle_request(transport::StreamConnection* conn,
                                     const std::string& line) {
  if (line == "SYNC") {
    std::map<ClientId, std::uint32_t> max_seq;
    for (const Event& ev : buffer_) {
      auto [it, inserted] = max_seq.emplace(ev.publisher, ev.seq);
      if (!inserted && ev.seq > it->second) it->second = ev.seq;
    }
    std::string reply;
    for (const auto& [publisher, seq] : max_seq) {
      reply += "SYNC " + std::to_string(publisher) + " " + std::to_string(seq) + "\n";
    }
    if (!reply.empty()) conn->send(reply);
    return;
  }
  auto parts = split(line, ' ');
  if (parts.size() != 4 || parts[0] != "NAK") return;
  ++naks_;
  // A garbled NAK is ignored rather than answered: the subscriber re-asks.
  auto pub = parse_u32(parts[1]);
  auto lo = parse_u32(parts[2]);
  auto hi = parse_u32(parts[3]);
  if (!pub || !lo || !hi) return;
  auto publisher = static_cast<ClientId>(*pub);
  std::uint32_t from = *lo;
  std::uint32_t to = *hi;
  for (const Event& ev : buffer_) {
    if (ev.publisher == publisher && ev.seq >= from && ev.seq <= to) {
      ++retransmissions_;
      conn->send(encode(ev));
    }
  }
}

ReliableSubscriber::ReliableSubscriber(sim::Host& host, sim::Endpoint broker_stream,
                                       std::string topic, sim::Endpoint recovery,
                                       SimDuration give_up, SimDuration sync_interval)
    : host_(&host),
      topic_(std::move(topic)),
      give_up_(give_up),
      sync_interval_(sync_interval),
      client_(host, broker_stream,
              broker::BrokerClient::Config{.name = "reliable-sub"}),
      nak_link_(transport::StreamConnection::connect(host, recovery)) {
  client_.subscribe(topic_);
  client_.on_event([this](const Event& ev) {
    ingest(ev);
    arm_sync_probe();
  });
  // Repaired events come back on the NAK link as kEvent frames; SYNC
  // summaries come back as text.
  nak_link_->on_message([this](const Payload& data) {
    auto frame = decode(data);
    if (frame.ok() && frame.value().type == MessageType::kEvent) {
      ++recovered_;
      ingest(frame.value().event);
      // A repaired event counts as reception too: if the broker path went
      // silent mid-stream (link flap, broker crash), the probe chain must
      // continue from here or a tail published during the outage is never
      // revealed. The chain terminates once a probe finds us up to date.
      arm_sync_probe();
      return;
    }
    handle_sync(gmmcs::to_string(data));
  });
}

void ReliableSubscriber::arm_sync_probe() {
  if (sync_armed_) return;
  sync_armed_ = true;
  host_->loop().schedule_after(sync_interval_, [this] {
    sync_armed_ = false;
    nak_link_->send("SYNC");
  });
}

void ReliableSubscriber::handle_sync(const std::string& text) {
  for (const auto& line : split_lines(text)) {
    auto parts = split(line, ' ');
    if (parts.size() != 3 || parts[0] != "SYNC") continue;
    auto pub = parse_u32(parts[1]);
    auto seq = parse_u32(parts[2]);
    if (!pub || !seq) continue;
    auto publisher = static_cast<ClientId>(*pub);
    std::uint32_t max_seq = *seq;
    auto it = publishers_.find(publisher);
    if (it == publishers_.end() || !it->second.started) continue;  // never heard: not ours
    PublisherState& st = it->second;
    if (max_seq < st.next_seq) continue;  // up to date
    // Tail gap: request everything we have not delivered or held.
    ++gaps_;
    nak_link_->send("NAK " + std::to_string(publisher) + " " + std::to_string(st.next_seq) +
                    " " + std::to_string(max_seq));
    schedule_give_up(publisher, st.next_seq);
  }
}

void ReliableSubscriber::on_event(std::function<void(const Event&)> handler) {
  handler_ = std::move(handler);
}

void ReliableSubscriber::ingest(const Event& ev) {
  PublisherState& st = publishers_[ev.publisher];
  if (!st.started) {
    // First event seen from this publisher: adopt its sequence as base
    // (a late joiner does not NAK history it never saw).
    st.started = true;
    st.next_seq = ev.seq;
  }
  if (ev.seq < st.next_seq) return;  // duplicate or already-skipped
  if (st.held.contains(ev.seq)) return;
  st.held.emplace(ev.seq, ev);
  if (ev.seq != st.next_seq) {
    // Gap: ask the recovery service for [next_seq, ev.seq - 1].
    ++gaps_;
    nak_link_->send("NAK " + std::to_string(ev.publisher) + " " +
                    std::to_string(st.next_seq) + " " + std::to_string(ev.seq - 1));
    schedule_give_up(ev.publisher, st.next_seq);
  }
  flush(ev.publisher, st);
}

void ReliableSubscriber::flush(ClientId publisher, PublisherState& st) {
  (void)publisher;
  auto it = st.held.find(st.next_seq);
  while (it != st.held.end()) {
    ++delivered_;
    if (handler_) handler_(it->second);
    st.held.erase(it);
    ++st.next_seq;
    it = st.held.find(st.next_seq);
  }
}

void ReliableSubscriber::schedule_give_up(ClientId publisher, std::uint32_t expected_seq) {
  host_->loop().schedule_after(give_up_, [this, publisher, expected_seq] {
    auto pit = publishers_.find(publisher);
    if (pit == publishers_.end()) return;
    PublisherState& st = pit->second;
    // Still stuck at (or before) the sequence we were waiting for? Skip
    // the unrecoverable hole up to the next event we do hold.
    if (st.next_seq > expected_seq || st.held.empty()) return;
    std::uint32_t next_available = st.held.begin()->first;
    lost_ += next_available - st.next_seq;
    st.next_seq = next_available;
    flush(publisher, st);
  });
}

}  // namespace gmmcs::broker
