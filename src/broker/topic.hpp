// Hierarchical topics and subscription filters.
//
// NaradaBrokering organizes group communication around topics; Global-MMCS
// creates one topic per session stream, e.g. "/xgsp/session/42/video/1".
// Filters support "*" (exactly one segment) and "#" (the rest of the path),
// the classic topic-matching vocabulary of 2003-era pub/sub brokers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gmmcs::broker {

/// Normalizes a topic path: ensures a leading '/', strips a trailing one,
/// collapses empty segments. "session//42/" -> "/session/42".
std::string normalize_topic(std::string_view raw);

/// True if `topic` is a well-formed concrete topic (no wildcards).
bool is_valid_topic(std::string_view topic);

/// A parsed subscription filter.
class TopicFilter {
 public:
  /// Parses a filter; wildcards: "*" one segment, "#" all remaining
  /// segments (only valid in last position; invalid filters match nothing).
  explicit TopicFilter(std::string_view pattern);

  [[nodiscard]] bool matches(std::string_view topic) const;
  [[nodiscard]] const std::string& pattern() const { return pattern_; }
  [[nodiscard]] bool valid() const { return valid_; }
  /// True if the filter names a single concrete topic (no wildcards); such
  /// filters match exactly topics whose normalized form equals pattern().
  [[nodiscard]] bool exact() const { return valid_ && !trailing_hash_ && !has_star_; }
  /// Filters compare by normalized pattern (used as map keys).
  auto operator<=>(const TopicFilter& o) const { return pattern_ <=> o.pattern_; }
  bool operator==(const TopicFilter& o) const { return pattern_ == o.pattern_; }

 private:
  std::string pattern_;
  std::vector<std::string> segments_;
  bool trailing_hash_ = false;
  bool has_star_ = false;
  bool valid_ = true;
};

/// Splits a normalized topic into segments.
std::vector<std::string> topic_segments(std::string_view topic);

}  // namespace gmmcs::broker
