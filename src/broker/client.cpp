#include "broker/client.hpp"

#include "broker/topic.hpp"

namespace gmmcs::broker {

BrokerClient::BrokerClient(sim::Host& host, sim::Endpoint broker_stream)
    : BrokerClient(host, broker_stream, Config{}) {}

BrokerClient::BrokerClient(sim::Host& host, sim::Endpoint broker_stream, Config cfg)
    : host_(&host), cfg_(cfg) {
  bool tunneled = cfg_.via_proxy.has_value();
  if (tunneled) {
    stream_ = transport::connect_via_proxy(host, *cfg_.via_proxy, broker_stream);
  } else {
    stream_ = transport::StreamConnection::connect(host, broker_stream);
  }
  HelloMessage hello;
  hello.client_name = cfg_.name;
  if (!tunneled && (cfg_.udp_delivery || cfg_.udp_publish)) {
    udp_.emplace(host);
    udp_->on_receive([this](const sim::Datagram& d) { handle_frame(d.payload); });
    if (cfg_.udp_delivery) hello.udp_port = udp_->local().port;
  }
  stream_->send(encode(hello));
  stream_->on_message([this](const Bytes& data) { handle_frame(data); });
}

void BrokerClient::handle_frame(const Bytes& data) {
  auto frame = decode(data);
  if (!frame.ok()) return;
  Frame f = std::move(frame).value();
  switch (f.type) {
    case MessageType::kHelloAck:
      client_id_ = f.hello_ack.client_id;
      broker_udp_ = sim::Endpoint{stream_->remote().node, f.hello_ack.broker_udp_port};
      ready_ = true;
      flush_queue();
      if (ready_handler_) ready_handler_();
      break;
    case MessageType::kEvent:
      ++events_received_;
      if (event_handler_) event_handler_(f.event);
      break;
    default:
      break;
  }
}

void BrokerClient::subscribe(const std::string& filter) {
  stream_->send(encode(SubscribeMessage{filter, true}));
}

void BrokerClient::unsubscribe(const std::string& filter) {
  stream_->send(encode(SubscribeMessage{filter, false}));
}

void BrokerClient::publish(const std::string& topic, Bytes payload, QoS qos) {
  Event ev;
  ev.topic = normalize_topic(topic);
  ev.payload = std::move(payload);
  ev.qos = qos;
  ev.origin = host_->loop().now();
  ev.seq = next_seq_++;
  if (!ready_) {
    pending_.push_back(std::move(ev));
    return;
  }
  ++events_published_;
  if (udp_ && cfg_.udp_publish && qos == QoS::kBestEffort) {
    udp_->send_to(broker_udp_, encode(ev));
  } else {
    stream_->send(encode(ev));
  }
}

void BrokerClient::flush_queue() {
  while (!pending_.empty()) {
    Event ev = std::move(pending_.front());
    pending_.pop_front();
    ++events_published_;
    if (udp_ && cfg_.udp_publish && ev.qos == QoS::kBestEffort) {
      udp_->send_to(broker_udp_, encode(ev));
    } else {
      stream_->send(encode(ev));
    }
  }
}

void BrokerClient::on_event(std::function<void(const Event&)> handler) {
  event_handler_ = std::move(handler);
}

void BrokerClient::on_ready(std::function<void()> handler) {
  ready_handler_ = std::move(handler);
  if (ready_ && ready_handler_) ready_handler_();
}

}  // namespace gmmcs::broker
