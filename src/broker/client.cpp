#include "broker/client.hpp"

#include <algorithm>

#include "broker/topic.hpp"

namespace gmmcs::broker {

namespace {
/// Stable jitter seed from (host, name): std::hash is not guaranteed
/// stable across platforms, FNV-1a is.
std::uint64_t jitter_seed(const sim::Host& host, const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h ^ (static_cast<std::uint64_t>(host.id()) << 32);
}
}  // namespace

BrokerClient::BrokerClient(sim::Host& host, sim::Endpoint broker_stream)
    : BrokerClient(host, broker_stream, Config{}) {}

BrokerClient::BrokerClient(sim::Host& host, sim::Endpoint broker_stream, Config cfg)
    : host_(&host),
      cfg_(cfg),
      broker_stream_(broker_stream),
      jitter_rng_(jitter_seed(host, cfg.name)) {
  open_stream();
}

BrokerClient::~BrokerClient() {
  // Timers and handlers capture `this`; disarm them all before the members
  // they reach into are torn down.
  if (retry_timer_ != 0) host_->loop().cancel(retry_timer_);
  cancel_connect_timer();
  keepalive_task_.reset();
  if (stream_) stream_->on_close(nullptr);
}

void BrokerClient::open_stream() {
  ++conn_generation_;
  bool tunneled = cfg_.via_proxy.has_value();
  if (tunneled) {
    stream_ = transport::connect_via_proxy(*host_, *cfg_.via_proxy, broker_stream_);
  } else {
    transport::ConnectOptions opts;
    if (cfg_.reconnect.enabled) {
      // SYN-level retransmission under the connect_timeout watchdog: a lost
      // handshake segment recovers in one syn_retry instead of a full
      // teardown + backoff + re-Hello round.
      opts.syn_retry = cfg_.reconnect.syn_retry;
      opts.max_syn_retries = cfg_.reconnect.syn_retries;
    }
    stream_ = transport::StreamConnection::connect(*host_, broker_stream_, opts);
  }
  if (!tunneled && (cfg_.udp_delivery || cfg_.udp_publish) && !udp_) {
    // The UDP socket outlives reconnects: keeping its port stable is what
    // lets the broker recognize a returning client's Hello and evict the
    // ghost record of the crashed incarnation.
    udp_.emplace(*host_);
    udp_->on_receive([this](const sim::Datagram& d) { handle_frame(d.payload); });
  }
  HelloMessage hello;
  hello.client_name = cfg_.name;
  if (udp_ && cfg_.udp_delivery) hello.udp_port = udp_->local().port;
  stream_->send(encode(hello));
  stream_->on_message([this](const Payload& data) { handle_frame(data); });
  last_heard_ = host_->loop().now();
  if (cfg_.reconnect.enabled) {
    stream_->on_close([this] { stream_down(); });
    // Connect-timeout watchdog, generation-guarded so a late firing after
    // this attempt was superseded is a no-op. Armed only when reconnect is
    // opted into: a pending timer would extend loop.run() horizons and
    // shift fault-free bench timestamps.
    connect_timer_ = host_->loop().schedule_after(
        cfg_.reconnect.connect_timeout, [this, gen = conn_generation_] {
          connect_timer_ = 0;
          if (gen == conn_generation_ && !ready_) stream_down();
        });
  }
}

void BrokerClient::stream_down() {
  if (retry_pending_) return;
  cancel_connect_timer();
  ready_ = false;
  ++disconnects_;
  if (stream_) {
    // Disarm first: close() below must not re-enter stream_down().
    stream_->on_close(nullptr);
    stream_->close();
  }
  if (disconnect_handler_) disconnect_handler_();
  if (cfg_.reconnect.enabled) schedule_retry();
}

void BrokerClient::schedule_retry() {
  // Exponential backoff with jitter: base * 2^attempts, capped, then
  // spread by a uniform +-jitter fraction.
  std::int64_t delay_ns = cfg_.reconnect.backoff_base.ns();
  for (int i = 0; i < attempt_ && delay_ns < cfg_.reconnect.backoff_max.ns(); ++i) {
    delay_ns *= 2;
  }
  delay_ns = std::min(delay_ns, cfg_.reconnect.backoff_max.ns());
  if (cfg_.reconnect.jitter > 0) {
    double factor = jitter_rng_.uniform(1.0 - cfg_.reconnect.jitter, 1.0 + cfg_.reconnect.jitter);
    delay_ns = std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                             static_cast<double>(delay_ns) * factor));
  }
  retry_pending_ = true;
  retry_timer_ = host_->loop().schedule_after(SimDuration{delay_ns}, [this] {
    retry_timer_ = 0;
    retry_pending_ = false;
    attempt_connect();
  });
}

void BrokerClient::attempt_connect() {
  if (!host_->up()) {
    // Our own host is still down (bind would refuse); keep backing off.
    ++attempt_;
    schedule_retry();
    return;
  }
  ++attempt_;
  open_stream();
}

void BrokerClient::cancel_connect_timer() {
  if (connect_timer_ != 0) {
    host_->loop().cancel(connect_timer_);
    connect_timer_ = 0;
  }
}

void BrokerClient::keepalive_tick() {
  if (!ready_) return;  // during an outage the backoff machinery owns liveness
  PingMessage ping;
  ping.sent = host_->loop().now();
  stream_->send(encode(ping, /*pong=*/false));
  if (host_->loop().now() - last_heard_ > cfg_.keepalive_interval * cfg_.keepalive_miss) {
    stream_down();
  }
}

void BrokerClient::handle_frame(const Payload& data) {
  auto frame = decode(data);
  if (!frame.ok()) return;
  Frame f = std::move(frame).value();
  last_heard_ = host_->loop().now();
  switch (f.type) {
    case MessageType::kHelloAck:
      client_id_ = f.hello_ack.client_id;
      broker_udp_ = sim::Endpoint{stream_->remote().node, f.hello_ack.broker_udp_port};
      ready_ = true;
      attempt_ = 0;
      cancel_connect_timer();
      if (hello_acks_++ > 0) {
        // Re-handshake: the broker minted a fresh (empty) client record, so
        // replay the whole subscription set. The first HelloAck must NOT
        // replay — subscribe() already sent those frames.
        ++reconnects_;
        for (const auto& filter : filters_) {
          stream_->send(encode(SubscribeMessage{filter, true}));
        }
        if (reconnect_handler_) reconnect_handler_();
      }
      if (cfg_.keepalive_interval.ns() > 0 && !keepalive_task_) {
        keepalive_task_ = std::make_unique<sim::PeriodicTask>(
            host_->loop(), cfg_.keepalive_interval, [this](std::uint64_t) { keepalive_tick(); });
        keepalive_task_->start();
      }
      flush_queue();
      if (ready_handler_) ready_handler_();
      break;
    case MessageType::kEvent:
      ++events_received_;
      if (event_handler_) event_handler_(f.event);
      break;
    case MessageType::kPing:
      // Broker-side client keepalive probe (DESIGN.md §13): answer so the
      // broker can tell a quiet-but-alive client from a ghost record.
      stream_->send(encode(f.ping, /*pong=*/true));
      break;
    default:
      // Clients only consume kHelloAck/kEvent/kPing (kPong is handled
      // before the switch); other frames addressed to us are ignored.
      break;
  }
}

void BrokerClient::subscribe(const std::string& filter) {
  if (std::find(filters_.begin(), filters_.end(), filter) == filters_.end()) {
    filters_.push_back(filter);
  }
  stream_->send(encode(SubscribeMessage{filter, true}));
}

void BrokerClient::unsubscribe(const std::string& filter) {
  std::erase(filters_, filter);
  stream_->send(encode(SubscribeMessage{filter, false}));
}

void BrokerClient::publish(const std::string& topic, Payload payload, QoS qos) {
  Event ev;
  ev.topic = normalize_topic(topic);
  ev.payload = std::move(payload);
  ev.qos = qos;
  ev.origin = host_->loop().now();
  ev.seq = next_seq_++;
  if (!ready_) {
    pending_.push_back(std::move(ev));
    return;
  }
  // Self-stamp the broker-assigned id: the published frame is then
  // byte-identical to the one the broker fans out, so the broker adopts it
  // instead of re-encoding (encode-once across the whole tree).
  ev.publisher = client_id_;
  ++events_published_;
  if (udp_ && cfg_.udp_publish && qos == QoS::kBestEffort) {
    udp_->send_to(broker_udp_, encode(ev));
  } else {
    stream_->send(encode(ev));
  }
}

void BrokerClient::flush_queue() {
  while (!pending_.empty()) {
    Event ev = std::move(pending_.front());
    pending_.pop_front();
    ev.publisher = client_id_;  // see publish(): enables broker frame adoption
    ++events_published_;
    if (udp_ && cfg_.udp_publish && ev.qos == QoS::kBestEffort) {
      udp_->send_to(broker_udp_, encode(ev));
    } else {
      stream_->send(encode(ev));
    }
  }
}

void BrokerClient::on_event(std::function<void(const Event&)> handler) {
  event_handler_ = std::move(handler);
}

void BrokerClient::on_ready(std::function<void()> handler) {
  ready_handler_ = std::move(handler);
  if (ready_ && ready_handler_) ready_handler_();
}

void BrokerClient::on_disconnect(std::function<void()> handler) {
  disconnect_handler_ = std::move(handler);
}

void BrokerClient::on_reconnect(std::function<void()> handler) {
  reconnect_handler_ = std::move(handler);
}

}  // namespace gmmcs::broker
