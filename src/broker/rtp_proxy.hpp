// RTP proxy: bridges raw-RTP endpoints onto broker topics.
//
// The paper (§3.2): "Any RTP client or server who wants to join in this
// session ... can subscribe to this topic and publish its RTP messages
// through RTP Proxies in the NaradaBrokering system." H.323 terminals,
// SIP endpoints and the Real producer are plain RTP speakers; gateways
// point their media at an RtpProxy, which wraps packets into events
// (ingress) and fans events back out as raw RTP (egress).
#pragma once

#include <set>
#include <string>

#include "broker/client.hpp"
#include "transport/datagram_socket.hpp"

namespace gmmcs::broker {

class RtpProxy {
 public:
  struct Config {
    /// Topic this proxy bridges (one proxy per session stream).
    std::string topic;
    std::string name = "rtp-proxy";
  };

  /// The proxy runs on `host` (typically the broker's host or a gateway
  /// host) and connects to the broker at `broker_stream`.
  RtpProxy(sim::Host& host, sim::Endpoint broker_stream, Config cfg);

  /// Raw RTP sent here is published onto the topic.
  [[nodiscard]] sim::Endpoint rtp_ingress() const { return rtp_in_.local(); }

  /// Registers/unregisters a raw-RTP receiver for the topic's media.
  void add_receiver(sim::Endpoint rtp_dst);
  void remove_receiver(sim::Endpoint rtp_dst);
  [[nodiscard]] std::size_t receiver_count() const { return receivers_.size(); }

  [[nodiscard]] std::uint64_t packets_published() const { return published_; }
  [[nodiscard]] std::uint64_t packets_fanned_out() const { return fanned_out_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }

 private:
  std::string topic_;
  BrokerClient client_;
  transport::DatagramSocket rtp_in_;
  transport::DatagramSocket rtp_out_;
  std::set<sim::Endpoint> receivers_;
  std::uint64_t published_ = 0;
  std::uint64_t fanned_out_ = 0;
};

}  // namespace gmmcs::broker
