// Chaos harness: materializes a sim::ChaosSpec into a live broker
// fabric, runs it to quiescence, and checks the self-healing invariants
// (DESIGN.md §13). The companion shrinker delta-debugs a failing spec
// down to a minimal reproducer.
//
// Oracle invariants, checked after horizon + settle:
//   1. Reliable eventual delivery: the NAK-repair subscriber delivered
//      every published reliable event; nothing was given up as lost.
//   2. Route convergence: with every fault healed, each broker's routing
//      row matches BFS over the full topology and no peer or link is
//      still considered down.
//   3. No ghost client records: each broker's client table holds exactly
//      the clients that are genuinely attached (crashed-forever clients
//      reaped, returning clients counted once).
//   4. No stuck streams: every surviving client is ready() with an empty
//      pending-publish queue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/chaos_gen.hpp"

namespace gmmcs::broker {

struct ChaosOptions {
  /// Event-loop workers (1 = serial; the determinism test compares 1 vs 8).
  int workers = 1;
  /// Broker-side client keepalive (the ghost-record reaper). Turning this
  /// off re-opens the DESIGN.md §8 gap — the property test does exactly
  /// that to prove the generator catches it.
  bool ghost_reap = true;
  /// Client SYN retransmission during connect (transport-level handshake
  /// recovery under one-way cuts).
  bool syn_retry = true;
};

struct ChaosViolation {
  std::string invariant;  // "reliable-delivery" | "route-convergence" |
                          // "ghost-records" | "stuck-streams"
  std::string detail;
};

/// Deterministic run fingerprint: equal specs + equal options must yield
/// equal metrics at any worker count (the workers-1-vs-8 double-run).
struct ChaosMetrics {
  std::uint64_t reliable_delivered = 0;
  std::uint64_t reliable_recovered = 0;
  std::uint64_t reliable_lost = 0;
  std::uint64_t events_in = 0;
  std::uint64_t copies_delivered = 0;
  std::uint64_t peer_forwards = 0;
  std::uint64_t route_recomputes = 0;
  std::uint64_t clients_reaped = 0;
  std::uint64_t link_states_flooded = 0;
  std::uint64_t client_events_received = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_lost = 0;

  bool operator==(const ChaosMetrics&) const = default;
};

struct ChaosOutcome {
  std::vector<ChaosViolation> violations;
  ChaosMetrics metrics;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Builds the fabric the spec describes, installs its fault plan, runs to
/// horizon + settle and applies the oracle.
ChaosOutcome run_chaos(const sim::ChaosSpec& spec, const ChaosOptions& opts = {});

/// Greedy delta-debugging: repeatedly drops faults and clients and halves
/// traffic while the spec still fails under `opts`, to a fixpoint. The
/// input must fail; returns it unchanged if it doesn't.
sim::ChaosSpec shrink_chaos(const sim::ChaosSpec& spec, const ChaosOptions& opts = {});

}  // namespace gmmcs::broker
