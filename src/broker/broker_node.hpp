// A single NaradaBrokering-style broker.
//
// The broker accepts clients over a stream (TCP profile) or datagram (UDP
// profile) channel, maintains a subscription table of topic filters, and
// routes published events to local subscribers and peer brokers.
//
// Performance model: event handling runs through a ServiceCenter — one
// routing job per event plus one copy job per recipient, with the copy
// cost composed of a fixed per-send overhead and a size-proportional part.
// This is the mechanism behind every measured number in the paper's
// evaluation: at 400 x 600 Kbps the copy jobs put the dispatch CPU near
// saturation, and the difference between the optimized transmission path
// and a naive one (or the JMF reflector baseline) shows up as the
// 80 ms-vs-229 ms delay gap of Figure 3.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "broker/event.hpp"
#include "broker/subscription_index.hpp"
#include "common/mutex.hpp"
#include "broker/topic.hpp"
#include "common/thread_annotations.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sim/service_center.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/stream.hpp"

namespace gmmcs::broker {

class BrokerNetwork;

/// Cost model of the broker's event dispatch path.
struct DispatchConfig {
  /// How the dispatch path submits fan-out work (DESIGN.md §12).
  enum class ControlPlane {
    /// Classic per-copy submission: one ServiceCenter job per recipient,
    /// no NIC backpressure on dispatch threads. Byte-identical to the
    /// pre-snapshot tree; the before/after baseline in the benches.
    kLocked,
    /// Batched fan-out: one ServiceCenter batch per event (per-recipient
    /// completions expanded arithmetically) with the virtual-NIC
    /// admission gate, so dispatch threads block instead of flooding a
    /// full egress queue.
    kSnapshot,
  };

  /// Parallel dispatch workers (the "message transmission" thread pool).
  int threads = 1;
  /// Bound on queued dispatch jobs; overflowing jobs are dropped.
  std::size_t queue_limit = 100000;
  /// Per-event cost: topic matching, header handling.
  SimDuration route_cost = duration_us(100);
  /// Per-recipient fixed cost (send path overhead).
  SimDuration copy_fixed = duration_us(8);
  /// Per-recipient cost per KiB of payload (buffer handling). Calibrated
  /// so the Figure-3 workload (400 x 600 Kbps) runs at ~93% dispatch
  /// utilization, the regime the paper measured (see DESIGN.md §6).
  SimDuration copy_per_kb = SimDuration{23400};
  ControlPlane control_plane = ControlPlane::kLocked;
  /// Egress-queue headroom the batched fan-out's NIC gate keeps free
  /// (kSnapshot only); see ServiceCenter::BatchParams.
  std::size_t nic_slack_bytes = 64 * 1024;

  [[nodiscard]] SimDuration copy_cost(std::size_t payload_bytes) const;

  /// The tuned transmission path the paper describes ("after we made some
  /// optimizations ... it shows excellent performance").
  static DispatchConfig optimized();
  /// The pre-optimization path (per-recipient buffer copies and
  /// allocation), used by the A1 ablation bench.
  static DispatchConfig unoptimized();
  /// The epoch-snapshot control plane at full width: optimized costs,
  /// batched fan-out and an 8-thread transmission pool (the pool size the
  /// paper's broker ran in production).
  static DispatchConfig snapshot();
};

/// Peer-link failure detection (the self-healing fabric's sensor layer):
/// every broker beats a kHeartbeat frame on each peer link per interval
/// and declares a peer link down after miss_threshold silent intervals;
/// any later heartbeat from that peer declares it back up. Transitions
/// are reported to BrokerNetwork, which repairs the routing tables.
/// Disabled by default (zero interval): a fault-free run carries no
/// heartbeat traffic, keeping existing bench outputs byte-identical.
struct HeartbeatConfig {
  SimDuration interval{0};
  int miss_threshold = 3;
};

/// Broker-side client liveness (DESIGN.md §13): a client record silent for
/// one interval is probed with a kPing on its stream (live clients answer
/// kPong; any frame counts as life); a record still silent after
/// miss_threshold intervals is reaped. This is what clears the *ghost*
/// records a crashed-and-restarted broker keeps for stream-only clients —
/// their reconnect mints a fresh record and the Hello-time UDP-endpoint
/// eviction never fires because there is no UDP endpoint to collide on.
/// Disabled by default (zero interval): fault-free runs carry no probe
/// traffic or timers.
struct ClientKeepaliveConfig {
  SimDuration interval{0};
  int miss_threshold = 3;
};

class GMMCS_PINNED("brokers are immortal for a run: chaos frees connections, never broker nodes") BrokerNode {
 public:
  struct Config {
    std::uint16_t stream_port = 9000;
    std::uint16_t dgram_port = 9001;
    DispatchConfig dispatch = DispatchConfig::optimized();
    HeartbeatConfig heartbeat;
    ClientKeepaliveConfig client_keepalive;
  };

  BrokerNode(sim::Host& host, BrokerId id, Config cfg);
  /// Default configuration (ports 9000/9001, optimized dispatch).
  BrokerNode(sim::Host& host, BrokerId id);

  [[nodiscard]] BrokerId id() const { return id_; }
  [[nodiscard]] sim::Host& host() const { return *host_; }
  [[nodiscard]] sim::Endpoint stream_endpoint() const { return listener_.local(); }
  [[nodiscard]] sim::Endpoint dgram_endpoint() const { return dgram_.local(); }

  // --- Statistics ---
  [[nodiscard]] std::uint64_t events_in() const {
    ctx_.assert_held();
    return events_in_;
  }
  [[nodiscard]] std::uint64_t copies_delivered() const {
    ctx_.assert_held();
    return copies_delivered_;
  }
  [[nodiscard]] std::uint64_t peer_forwards() const {
    ctx_.assert_held();
    return peer_forwards_;
  }
  [[nodiscard]] std::uint64_t jobs_dropped() const { return dispatch_.rejected(); }
  /// Events addressed to an interested broker we have no route to
  /// (fabric partition); counted per unreachable target.
  [[nodiscard]] std::uint64_t unroutable_events() const {
    ctx_.assert_held();
    return unroutable_events_;
  }
  [[nodiscard]] const sim::ServiceCenter& dispatch() const { return dispatch_; }
  [[nodiscard]] std::size_t client_count() const {
    ctx_.assert_held();
    return clients_.size();
  }
  [[nodiscard]] std::size_t subscription_count() const;
  /// The topic-routing fast path index (exposed for tests and benches).
  [[nodiscard]] const SubscriptionIndex& subscriptions() const {
    ctx_.assert_held();
    return sub_index_;
  }

  // --- Link monitoring (the performance monitoring service) ---
  /// Probes a linked peer; cb receives the RTT. Probes ride the peer's
  /// dispatch pipeline, so a loaded broker answers slowly — the measured
  /// RTT is the real service quality of the link, not just wire latency.
  void probe_peer(BrokerId peer, std::function<void(SimDuration)> cb);
  /// Exponentially-smoothed RTT per peer from past probes.
  [[nodiscard]] const std::map<BrokerId, SimDuration>& link_rtts() const {
    ctx_.assert_held();
    return srtt_;
  }

  // --- Failure detection (see HeartbeatConfig) ---
  [[nodiscard]] std::uint64_t heartbeats_sent() const {
    ctx_.assert_held();
    return heartbeats_sent_;
  }
  /// Peer-link liveness transitions this broker's detector declared.
  [[nodiscard]] std::uint64_t links_detected_down() const {
    ctx_.assert_held();
    return links_detected_down_;
  }
  [[nodiscard]] std::uint64_t links_detected_up() const {
    ctx_.assert_held();
    return links_detected_up_;
  }
  [[nodiscard]] bool peer_considered_down(BrokerId peer) const {
    ctx_.assert_held();
    return peer_down_.contains(peer);
  }
  /// Ghost client records reaped by the client-keepalive sweep.
  [[nodiscard]] std::uint64_t clients_reaped() const {
    ctx_.assert_held();
    return clients_reaped_;
  }
  /// kLinkState advertisements this broker originated or forwarded.
  [[nodiscard]] std::uint64_t link_states_flooded() const {
    ctx_.assert_held();
    return link_states_flooded_;
  }

 private:
  friend class BrokerNetwork;

  struct ClientRec {
    ClientId id = 0;
    std::string name;
    transport::StreamConnectionPtr stream;
    sim::Endpoint udp{};
    bool has_udp = false;
    std::vector<TopicFilter> filters;
    /// Last instant any frame (stream or UDP) arrived from this client;
    /// the client-keepalive sweep probes and reaps on this.
    SimTime last_heard{};
  };

  void accept(transport::StreamConnectionPtr conn);
  void handle_stream_frame(ClientId client, const Payload& data);
  void handle_datagram(const sim::Datagram& d);
  void handle_subscription(ClientRec& c, const SubscribeMessage& m) GMMCS_REQUIRES(ctx_);
  /// Drops a client record and its subscriptions/advertisements. Used when
  /// a reconnecting client's fresh Hello supersedes its ghost record.
  void evict_client(ClientId cid) GMMCS_REQUIRES(ctx_);
  void handle_peer_heartbeat(BrokerId peer) GMMCS_REQUIRES(ctx_);
  void heartbeat_tick();
  /// Starts the heartbeat task lazily once the first peer link exists.
  void ensure_heartbeat_task() GMMCS_REQUIRES(ctx_);
  /// Client-keepalive sweep: probes quiet client records, reaps dead ones.
  void client_keepalive_tick();
  /// Detector transition in gossip mode: flood a fresh advertisement for
  /// the (id_, peer) link so remote brokers learn at propagation speed.
  void originate_link_state(BrokerId peer, bool up) GMMCS_REQUIRES(ctx_);
  /// A kLinkState frame arriving from a peer: dedup by (origin, link, seq),
  /// apply to our routing view and re-flood once.
  void handle_link_state(const LinkStateMessage& m) GMMCS_REQUIRES(ctx_);
  void flood_link_state(const LinkStateMessage& m) GMMCS_REQUIRES(ctx_);

  /// Entry point for a client-published event. `publisher` (0 = unknown)
  /// is excluded from local delivery: a subscriber never hears its own
  /// publications back, matching media-bridge semantics. `frame` is the
  /// arrival frame: when the decoded publisher matches the transport-
  /// derived one the frame is adopted verbatim as the delivery wire, so
  /// the broker re-encodes nothing and the whole fan-out shares the
  /// publisher's single allocation.
  void ingress_event(Event ev, ClientId publisher, const Payload& frame) GMMCS_REQUIRES(ctx_);
  /// Entry point for an event forwarded by a peer broker.
  void ingress_peer_event(PeerEventMessage m) GMMCS_REQUIRES(ctx_);
  /// Routing core: deliver locally and forward the remaining targets.
  /// Fan-out jobs share the RoutedEvent — no per-recipient Event copy and
  /// at most one kEvent encode per event.
  void route_and_deliver(const RoutedEventPtr& ev, ClientId exclude,
                         const std::vector<BrokerId>& remote_targets) GMMCS_REQUIRES(ctx_);
  /// Local fan-out of one event to every matching client (minus
  /// `exclude`): per-copy dispatch jobs under ControlPlane::kLocked, one
  /// NIC-gated ServiceCenter batch under kSnapshot.
  void fan_out_local(const RoutedEventPtr& ev, ClientId exclude) GMMCS_REQUIRES(ctx_);
  /// Forwards an event toward each remaining target broker, one copy per
  /// distinct next hop.
  void route_remote(const RoutedEventPtr& ev, const std::vector<BrokerId>& targets)
      GMMCS_REQUIRES(ctx_);
  void deliver_copy(const ClientRec& c, const RoutedEvent& ev) GMMCS_REQUIRES(ctx_);
  void forward_to_peer(BrokerId next_hop, const RoutedEvent& ev,
                       const std::vector<BrokerId>& targets) GMMCS_REQUIRES(ctx_);
  [[nodiscard]] std::vector<ClientId> local_matches(const std::string& topic,
                                                    ClientId exclude = 0) const
      GMMCS_REQUIRES(ctx_);

  /// Outgoing link to a peer broker (created by BrokerNetwork::link, which
  /// establishes our ctx_ first — see DESIGN.md §11 on the fabric/broker
  /// mutual-entry pattern).
  void add_peer_link(BrokerId peer, transport::StreamConnectionPtr conn) GMMCS_REQUIRES(ctx_);

  sim::Host* host_;
  BrokerId id_;
  Config cfg_;
  /// Broker execution context (phantom capability, DESIGN.md §11): the
  /// state below belongs to this broker's host lane. Broker hosts run on
  /// ordinary parallel lanes — fabric-shared control-plane state lives in
  /// BrokerNetwork behind the epoch-snapshot discipline (DESIGN.md §12),
  /// so a broker's dispatch events only read immutable snapshots plus
  /// this lane-local state, and cross-broker traffic rides the simulated
  /// network like any other host's.
  ExecContext ctx_;
  BrokerNetwork* network_ GMMCS_GUARDED_BY(ctx_) = nullptr;  // set by BrokerNetwork::add_broker
  transport::StreamListener listener_;
  transport::DatagramSocket dgram_;
  sim::ServiceCenter dispatch_;
  ClientId next_client_id_ GMMCS_GUARDED_BY(ctx_) = 1;
  std::unordered_map<ClientId, ClientRec> clients_ GMMCS_GUARDED_BY(ctx_);
  /// Topic -> subscriber fast path (exact hash index + wildcard list +
  /// per-topic match cache); kept in sync with ClientRec::filters.
  SubscriptionIndex sub_index_ GMMCS_GUARDED_BY(ctx_);
  /// Reverse index: client's UDP endpoint -> id, to identify publishers of
  /// datagram-path events (hot path: one hash lookup per media packet).
  std::unordered_map<sim::Endpoint, ClientId, sim::EndpointHash> udp_index_
      GMMCS_GUARDED_BY(ctx_);
  std::unordered_map<BrokerId, transport::StreamConnectionPtr> peer_links_
      GMMCS_GUARDED_BY(ctx_);
  /// Failure-detector state (ordered: heartbeat fan-out order must be
  /// deterministic). last-heard is bumped by every peer heartbeat.
  std::map<BrokerId, SimTime> peer_last_heard_ GMMCS_GUARDED_BY(ctx_);
  std::set<BrokerId> peer_down_ GMMCS_GUARDED_BY(ctx_);
  std::unique_ptr<sim::PeriodicTask> heartbeat_task_ GMMCS_GUARDED_BY(ctx_);
  std::unique_ptr<sim::PeriodicTask> client_keepalive_task_ GMMCS_GUARDED_BY(ctx_);
  std::uint64_t heartbeats_sent_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t links_detected_down_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t links_detected_up_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t clients_reaped_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Gossip state: per-origin flood dedup — highest seq already forwarded
  /// for (origin, link min, link max) — and our own origination counter.
  std::map<std::tuple<BrokerId, BrokerId, BrokerId>, std::uint32_t> lsa_seen_
      GMMCS_GUARDED_BY(ctx_);
  std::uint32_t lsa_next_seq_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t link_states_flooded_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Ticks since the last gossip refresh re-flood (see heartbeat_tick).
  int gossip_refresh_countdown_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint32_t next_probe_token_ GMMCS_GUARDED_BY(ctx_) = 1;
  std::map<std::uint32_t, std::pair<BrokerId, std::function<void(SimDuration)>>> probes_
      GMMCS_GUARDED_BY(ctx_);
  std::map<BrokerId, SimDuration> srtt_ GMMCS_GUARDED_BY(ctx_);
  // Inbound connections (from clients and peers) we must keep alive.
  std::vector<transport::StreamConnectionPtr> inbound_ GMMCS_GUARDED_BY(ctx_);
  std::uint64_t events_in_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t copies_delivered_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t peer_forwards_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t unroutable_events_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Targets we already warned about being unreachable — at media rates an
  /// unconditional per-event warning floods the log during a partition.
  std::set<BrokerId> warned_unroutable_ GMMCS_GUARDED_BY(ctx_);
};

}  // namespace gmmcs::broker
