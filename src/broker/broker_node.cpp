#include "broker/broker_node.hpp"

#include <algorithm>

#include "broker/broker_network.hpp"
#include "common/log.hpp"

namespace gmmcs::broker {

SimDuration DispatchConfig::copy_cost(std::size_t payload_bytes) const {
  auto size_part = static_cast<std::int64_t>(static_cast<double>(copy_per_kb.ns()) *
                                             static_cast<double>(payload_bytes) / 1024.0);
  return copy_fixed + SimDuration{size_part};
}

DispatchConfig DispatchConfig::optimized() {
  return DispatchConfig{};
}

DispatchConfig DispatchConfig::unoptimized() {
  // Pre-optimization NaradaBrokering transmission: per-recipient buffer
  // copies, per-send allocation and synchronized queues roughly double the
  // size-dependent cost and add fixed overhead.
  DispatchConfig cfg;
  cfg.copy_fixed = duration_us(12);
  cfg.copy_per_kb = duration_us(34);
  cfg.route_cost = duration_us(150);
  return cfg;
}

DispatchConfig DispatchConfig::snapshot() {
  DispatchConfig cfg;
  cfg.threads = 8;
  cfg.control_plane = ControlPlane::kSnapshot;
  return cfg;
}

BrokerNode::BrokerNode(sim::Host& host, BrokerId id) : BrokerNode(host, id, Config{}) {}

BrokerNode::BrokerNode(sim::Host& host, BrokerId id, Config cfg)
    : host_(&host),
      id_(id),
      cfg_(cfg),
      listener_(host, cfg.stream_port),
      dgram_(host, cfg.dgram_port),
      dispatch_(host.loop(), cfg.dispatch.threads, cfg.dispatch.queue_limit) {
  listener_.on_accept([this](transport::StreamConnectionPtr conn) { accept(std::move(conn)); });
  dgram_.on_receive([this](const sim::Datagram& d) { handle_datagram(d); });
  if (cfg_.client_keepalive.interval.ns() > 0) {
    client_keepalive_task_ = std::make_unique<sim::PeriodicTask>(
        host.loop(), cfg_.client_keepalive.interval,
        [this](std::uint64_t) { client_keepalive_tick(); });
    client_keepalive_task_->start();
  }
}

std::size_t BrokerNode::subscription_count() const {
  ctx_.assert_held();
  std::size_t n = 0;
  // det-lint: allow(unordered-iteration) — commutative sum, order-free
  for (const auto& [id, c] : clients_) n += c.filters.size();
  return n;
}

void BrokerNode::accept(transport::StreamConnectionPtr conn) {
  ctx_.assert_held();
  inbound_.push_back(conn);
  // The connection's client identity is established by its Hello frame.
  auto client_id = std::make_shared<ClientId>(0);
  auto* raw = conn.get();
  // Weak self-reference: lets the Hello handler recover the shared_ptr
  // without scanning inbound_, and without a conn -> handler -> conn cycle.
  std::weak_ptr<transport::StreamConnection> weak_conn = conn;
  conn->on_message([this, raw, client_id, weak_conn](const Payload& data) {
    ctx_.assert_held();
    auto frame = decode(data);
    if (!frame.ok()) return;
    Frame f = std::move(frame).value();
    // Any frame from an identified client is proof of life for its record
    // (kPong answers to keepalive probes land here too).
    if (*client_id != 0) {
      auto lit = clients_.find(*client_id);
      if (lit != clients_.end()) lit->second.last_heard = host_->loop().now();
    }
    switch (f.type) {
      case MessageType::kHello: {
        // A repeat Hello on an already-identified connection would mint a
        // second ClientRec and leak the first (and its udp_index_ entry);
        // the connection keeps its original identity instead.
        if (*client_id != 0) break;
        ClientId cid = next_client_id_++;
        *client_id = cid;
        ClientRec rec;
        rec.id = cid;
        rec.name = f.hello.client_name;
        rec.stream = weak_conn.lock();
        rec.last_heard = host_->loop().now();
        if (f.hello.udp_port != 0) {
          rec.udp = sim::Endpoint{rec.stream->remote().node, f.hello.udp_port};
          rec.has_udp = true;
          // A fresh Hello claiming an endpoint another record holds means
          // that record is a ghost of a crashed-and-reconnected client;
          // evict it or both records would receive every matching event.
          auto ghost = udp_index_.find(rec.udp);
          if (ghost != udp_index_.end() && ghost->second != cid) evict_client(ghost->second);
          udp_index_[rec.udp] = cid;
        }
        clients_.emplace(cid, std::move(rec));
        raw->send(encode(HelloAckMessage{cid, cfg_.dgram_port}));
        break;
      }
      case MessageType::kSubscribe:
      case MessageType::kUnsubscribe: {
        auto it = clients_.find(*client_id);
        if (it != clients_.end()) handle_subscription(it->second, f.subscribe);
        break;
      }
      case MessageType::kEvent:
        ingress_event(std::move(f.event), *client_id, data);
        break;
      case MessageType::kPeerEvent:
        ingress_peer_event(std::move(f.peer_event));
        break;
      case MessageType::kPing:
        // Probes ride the dispatch pipeline: a loaded broker pongs late.
        // Weak capture: the connection can die before the job runs (client
        // crash, ghost eviction by a reconnect Hello); the pong to a dead
        // stream is simply dropped, like a write to a closed socket.
        dispatch_.submit(cfg_.dispatch.route_cost, [weak_conn, ping = f.ping] {
          if (auto conn = weak_conn.lock()) conn->send(encode(ping, /*pong=*/true));
        });
        break;
      case MessageType::kHeartbeat:
        handle_peer_heartbeat(f.heartbeat.from);
        break;
      case MessageType::kLinkState:
        handle_link_state(f.link_state);
        break;
      default:
        // kHelloAck is a broker-to-client reply; kPong from a client is the
        // answer to our keepalive probe — the proof-of-life bump above is
        // all it needs to do.
        break;
    }
  });
  conn->on_close([this, raw, client_id] {
    ctx_.assert_held();
    auto it = clients_.find(*client_id);
    if (it != clients_.end()) {
      if (network_ != nullptr) {
        for (const auto& filter : it->second.filters) {
          network_->advertise(filter, id_, /*add=*/false);
        }
      }
      sub_index_.remove_subscriber(*client_id);
      if (it->second.has_udp) {
        // Ownership check: a reconnected client may have re-claimed this
        // endpoint, in which case the index entry is no longer ours.
        auto uit = udp_index_.find(it->second.udp);
        if (uit != udp_index_.end() && uit->second == *client_id) udp_index_.erase(uit);
      }
      clients_.erase(it);
    }
    std::erase_if(inbound_, [raw](const transport::StreamConnectionPtr& c) {
      return c.get() == raw;
    });
  });
}

void BrokerNode::evict_client(ClientId cid) {
  auto it = clients_.find(cid);
  if (it == clients_.end()) return;
  if (network_ != nullptr) {
    for (const auto& filter : it->second.filters) {
      network_->advertise(filter, id_, /*add=*/false);
    }
  }
  sub_index_.remove_subscriber(cid);
  if (it->second.has_udp) {
    auto uit = udp_index_.find(it->second.udp);
    if (uit != udp_index_.end() && uit->second == cid) udp_index_.erase(uit);
  }
  auto stream = it->second.stream;
  clients_.erase(it);
  // Closing the ghost's stream fires its on_close, which finds no client
  // record (already erased) and just drops the connection from inbound_.
  if (stream) stream->close();
}

void BrokerNode::handle_subscription(ClientRec& c, const SubscribeMessage& m) {
  TopicFilter filter(m.filter);
  if (!filter.valid()) return;
  if (m.subscribe) {
    if (std::find(c.filters.begin(), c.filters.end(), filter) == c.filters.end()) {
      c.filters.push_back(filter);
      sub_index_.subscribe(c.id, filter);
      if (network_ != nullptr) network_->advertise(filter, id_, /*add=*/true);
    }
  } else {
    auto before = c.filters.size();
    std::erase(c.filters, filter);
    if (c.filters.size() != before) {
      sub_index_.unsubscribe(c.id, filter);
      if (network_ != nullptr) network_->advertise(filter, id_, /*add=*/false);
    }
  }
}

void BrokerNode::handle_datagram(const sim::Datagram& d) {
  ctx_.assert_held();
  auto frame = decode(d.payload);
  if (!frame.ok()) return;
  Frame f = std::move(frame).value();
  if (f.type != MessageType::kEvent) return;
  auto it = udp_index_.find(d.src);
  ClientId publisher = it == udp_index_.end() ? 0 : it->second;
  if (publisher != 0) {
    // Datagram-path publishers prove life without touching their stream.
    auto cit = clients_.find(publisher);
    if (cit != clients_.end()) cit->second.last_heard = host_->loop().now();
  }
  ingress_event(std::move(f.event), publisher, d.payload);
}

void BrokerNode::ingress_event(Event ev, ClientId publisher, const Payload& frame) {
  ++events_in_;
  // Frame adoption: clients stamp their own id at publish, so a
  // well-behaved event's arrival frame is byte-for-byte the frame every
  // recipient should receive — adopt it and encode nothing. A mismatched
  // claim (publisher spoofing, pre-Hello traffic) is overridden with the
  // transport-derived identity and re-encoded lazily as before.
  const bool adopt = ev.publisher == publisher;
  ev.publisher = publisher;
  std::vector<BrokerId> remote =
      network_ != nullptr ? network_->interested_brokers(ev.topic, id_) : std::vector<BrokerId>{};
  // One shared RoutedEvent for the whole fan-out: every copy job holds the
  // same payload buffer and the kEvent frame is adopted or encoded at most
  // once.
  auto routed = adopt ? std::make_shared<const RoutedEvent>(std::move(ev), frame)
                      : std::make_shared<const RoutedEvent>(std::move(ev));
  dispatch_.submit(cfg_.dispatch.route_cost, [this, publisher, routed = std::move(routed),
                                              remote = std::move(remote)] {
    ctx_.assert_held();
    route_and_deliver(routed, publisher, remote);
  });
}

void BrokerNode::ingress_peer_event(PeerEventMessage m) {
  ++events_in_;
  m.event.hops = static_cast<std::uint8_t>(m.event.hops + 1);
  auto routed = std::make_shared<const RoutedEvent>(std::move(m.event));
  dispatch_.submit(cfg_.dispatch.route_cost, [this, routed = std::move(routed),
                                              targets = std::move(m.targets)] {
    ctx_.assert_held();
    // Deliver locally if we are a target; forward the rest.
    std::vector<BrokerId> rest;
    bool local = false;
    for (BrokerId t : targets) {
      if (t == id_) {
        local = true;
      } else {
        rest.push_back(t);
      }
    }
    if (local) fan_out_local(routed, /*exclude=*/0);
    if (!rest.empty()) route_remote(routed, rest);
  });
}

void BrokerNode::route_and_deliver(const RoutedEventPtr& ev, ClientId exclude,
                                   const std::vector<BrokerId>& remote_targets) {
  fan_out_local(ev, exclude);
  if (!remote_targets.empty()) route_remote(ev, remote_targets);
}

void BrokerNode::fan_out_local(const RoutedEventPtr& ev, ClientId exclude) {
  std::vector<ClientId> cids = local_matches(ev->event().topic, exclude);
  if (cids.empty()) return;
  const SimDuration cost = cfg_.dispatch.copy_cost(ev->event().payload.size());
  if (cfg_.dispatch.control_plane == DispatchConfig::ControlPlane::kSnapshot) {
    // One ServiceCenter batch for the whole fan-out: per-recipient
    // completion times come out of the arithmetic fast path, and the NIC
    // parameters let the gate model dispatch threads blocking on a full
    // egress queue (the copies below all leave through host_'s NIC).
    struct FanoutBatch {
      RoutedEventPtr ev;
      std::vector<ClientId> cids;
    };
    auto batch = std::make_shared<const FanoutBatch>(FanoutBatch{ev, std::move(cids)});
    const sim::NicConfig& nic = host_->nic_config();
    sim::ServiceCenter::BatchParams params;
    params.service = cost;
    params.wire_bytes = ev->wire().size() + nic.overhead_bytes;
    params.nic_bps = nic.egress_bps;
    params.nic_cap = nic.queue_bytes;
    params.nic_slack = cfg_.dispatch.nic_slack_bytes;
    dispatch_.submit_batch(batch->cids.size(), params, [this, batch](std::size_t i) {
      ctx_.assert_held();
      auto it = clients_.find(batch->cids[i]);
      if (it != clients_.end()) deliver_copy(it->second, *batch->ev);
    });
    return;
  }
  for (ClientId cid : cids) {
    dispatch_.submit(cost, [this, cid, ev] {
      ctx_.assert_held();
      auto it = clients_.find(cid);
      if (it != clients_.end()) deliver_copy(it->second, *ev);
    });
  }
}

void BrokerNode::route_remote(const RoutedEventPtr& ev, const std::vector<BrokerId>& targets) {
  // Group remaining target brokers by next hop; one forwarded copy per hop.
  // Unreachable brokers (fabric partitions, links not yet finalized) are
  // skipped rather than faulting the dispatch path. by_hop stays an
  // ordered map so forwards are submitted in deterministic hop order.
  // One snapshot load for the whole grouping: distance and next_hop must
  // answer from the same routing epoch, or a concurrent route repair
  // could pass the distance check and then throw in next_hop.
  const ControlSnapshotPtr snap = network_->snapshot();
  const RouteTables& routes = snap->routes();
  std::map<BrokerId, std::vector<BrokerId>> by_hop;
  for (BrokerId t : targets) {
    if (routes.distance(id_, t) < 0) {
      ++unroutable_events_;
      if (warned_unroutable_.insert(t).second) {
        GMMCS_WARN("broker") << "broker " << id_ << ": no route to interested broker " << t
                             << " (counted in unroutable_events; further drops to this "
                                "target logged silently)";
      }
      continue;
    }
    by_hop[routes.next_hop(id_, t)].push_back(t);
  }
  for (auto& [hop, subset] : by_hop) {
    dispatch_.submit(cfg_.dispatch.copy_cost(ev->event().payload.size()),
                     [this, hop, ev, subset = std::move(subset)] {
                       ctx_.assert_held();
                       forward_to_peer(hop, *ev, subset);
                     });
  }
}

std::vector<ClientId> BrokerNode::local_matches(const std::string& topic,
                                                ClientId exclude) const {
  return sub_index_.matches(topic, exclude);
}

void BrokerNode::deliver_copy(const ClientRec& c, const RoutedEvent& ev) {
  ++copies_delivered_;
  // One shared frame, usually adopted straight from the publisher; each
  // recipient's datagram/stream payload is a refcounted handle to it —
  // payload_copy_count() proves no bytes move here.
  const Payload& wire = ev.wire();
  if (c.has_udp && ev.event().qos == QoS::kBestEffort) {
    host_->send(c.udp, cfg_.dgram_port, wire);
  } else if (c.stream) {
    c.stream->send(wire);
  }
}

void BrokerNode::forward_to_peer(BrokerId next_hop, const RoutedEvent& ev,
                                 const std::vector<BrokerId>& targets) {
  auto it = peer_links_.find(next_hop);
  if (it == peer_links_.end()) {
    GMMCS_WARN("broker") << "broker " << id_ << " has no link toward " << next_hop;
    return;
  }
  ++peer_forwards_;
  // Peer framing embeds the (per-hop) target set, so it cannot reuse the
  // cached kEvent frame; it still encodes straight from the shared event
  // with no intermediate PeerEventMessage copy.
  it->second->send(encode_peer_event(ev.event(), targets));
}

void BrokerNode::add_peer_link(BrokerId peer, transport::StreamConnectionPtr conn) {
  // Pongs (and future peer-control frames) come back on our outgoing link.
  conn->on_message([this](const Payload& data) {
    ctx_.assert_held();
    auto frame = decode(data);
    if (!frame.ok() || frame.value().type != MessageType::kPong) return;
    auto it = probes_.find(frame.value().ping.token);
    if (it == probes_.end()) return;
    auto [peer_id, cb] = std::move(it->second);
    probes_.erase(it);
    SimDuration rtt = host_->loop().now() - frame.value().ping.sent;
    auto sit = srtt_.find(peer_id);
    if (sit == srtt_.end()) {
      srtt_[peer_id] = rtt;
    } else {
      // RFC 793-style smoothing: srtt = 7/8 srtt + 1/8 sample.
      sit->second = SimDuration{(sit->second.ns() * 7 + rtt.ns()) / 8};
    }
    if (cb) cb(rtt);
  });
  peer_links_[peer] = std::move(conn);
  peer_last_heard_[peer] = host_->loop().now();
  ensure_heartbeat_task();
}

void BrokerNode::ensure_heartbeat_task() {
  if (heartbeat_task_ || cfg_.heartbeat.interval.ns() <= 0) return;
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(
      host_->loop(), cfg_.heartbeat.interval, [this](std::uint64_t) { heartbeat_tick(); });
  heartbeat_task_->start();
}

void BrokerNode::heartbeat_tick() {
  ctx_.assert_held();
  const SimTime now = host_->loop().now();
  const SimDuration dead = cfg_.heartbeat.interval * cfg_.heartbeat.miss_threshold;
  const bool gossip = network_ != nullptr && network_->gossip_enabled();
  // Gossip refresh: every miss_threshold ticks, re-advertise the current
  // state of our adjacent links with a fresh sequence number. Event-driven
  // floods alone leave brokers that were partitioned *during* a transition
  // with a permanently stale view; the periodic re-flood converges them
  // once connectivity returns (classic link-state protocol refresh).
  const bool refresh = gossip && --gossip_refresh_countdown_ <= 0;
  if (refresh) gossip_refresh_countdown_ = cfg_.heartbeat.miss_threshold;
  // peer_last_heard_ is ordered by BrokerId, so beacon fan-out and
  // detection order are deterministic across runs.
  for (auto& [peer, last] : peer_last_heard_) {
    auto lit = peer_links_.find(peer);
    if (lit != peer_links_.end()) {
      lit->second->send(encode(HeartbeatMessage{id_}));
      ++heartbeats_sent_;
    }
    if (now - last > dead && peer_down_.insert(peer).second) {
      ++links_detected_down_;
      if (network_ != nullptr) {
        network_->report_link(id_, peer, /*up=*/false);
        if (gossip) originate_link_state(peer, /*up=*/false);
        continue;  // the fresh transition already flooded
      }
    }
    if (refresh) originate_link_state(peer, !peer_down_.contains(peer));
  }
}

void BrokerNode::handle_peer_heartbeat(BrokerId peer) {
  peer_last_heard_[peer] = host_->loop().now();
  if (peer_down_.erase(peer) > 0) {
    ++links_detected_up_;
    if (network_ != nullptr) {
      network_->report_link(id_, peer, /*up=*/true);
      if (network_->gossip_enabled()) originate_link_state(peer, /*up=*/true);
    }
  }
}

void BrokerNode::client_keepalive_tick() {
  ctx_.assert_held();
  const SimTime now = host_->loop().now();
  const SimDuration quiet = cfg_.client_keepalive.interval;
  const SimDuration dead = quiet * cfg_.client_keepalive.miss_threshold;
  // Sweep in client-id order (clients_ hashes; eviction emits
  // advertisements whose serial order must be reproducible), collecting
  // first because evict_client mutates the map.
  std::vector<ClientId> ids;
  ids.reserve(clients_.size());
  // det-lint: allow(unordered-iteration) — key harvest, sorted before use
  for (const auto& [cid, rec] : clients_) ids.push_back(cid);
  std::sort(ids.begin(), ids.end());
  for (ClientId cid : ids) {
    auto it = clients_.find(cid);
    if (it == clients_.end()) continue;
    ClientRec& rec = it->second;
    const SimDuration silent = now - rec.last_heard;
    if (silent > dead) {
      // A live client would have answered the probes below; this record is
      // a ghost (its owner crashed, or reconnected as a fresh identity).
      ++clients_reaped_;
      evict_client(cid);
    } else if (silent > quiet && rec.stream) {
      // Quiet but not yet condemned: probe. Any answered frame bumps
      // last_heard; a ghost's stream leads nowhere and stays silent.
      PingMessage probe;
      probe.sent = now;
      rec.stream->send(encode(probe, /*pong=*/false));
    }
  }
}

void BrokerNode::originate_link_state(BrokerId peer, bool up) {
  LinkStateMessage m;
  m.origin = id_;
  m.seq = ++lsa_next_seq_;
  m.a = id_;
  m.b = peer;
  m.up = up;
  // Record our own advertisement so the flood echoing back is dropped.
  const auto [lo, hi] = std::minmax(m.a, m.b);
  lsa_seen_[{m.origin, lo, hi}] = m.seq;
  flood_link_state(m);
}

void BrokerNode::handle_link_state(const LinkStateMessage& m) {
  const auto [lo, hi] = std::minmax(m.a, m.b);
  auto [it, inserted] = lsa_seen_.try_emplace({m.origin, lo, hi}, m.seq);
  if (!inserted) {
    if (m.seq <= it->second) return;  // stale or already forwarded
    it->second = m.seq;
  }
  if (network_ != nullptr) network_->apply_link_state(id_, m.a, m.b, m.up);
  // Forward once to every peer (including back toward the sender — the
  // dedup above terminates the flood).
  flood_link_state(m);
}

void BrokerNode::flood_link_state(const LinkStateMessage& m) {
  // One encode, shared by every peer link (refcounted handle per send).
  const Payload wire = encode(m);
  // peer_last_heard_ is ordered by BrokerId: deterministic flood order.
  for (const auto& [peer, last] : peer_last_heard_) {
    auto it = peer_links_.find(peer);
    if (it == peer_links_.end()) continue;
    it->second->send(wire);
    ++link_states_flooded_;
  }
}

void BrokerNode::probe_peer(BrokerId peer, std::function<void(SimDuration)> cb) {
  ctx_.assert_held();
  auto it = peer_links_.find(peer);
  if (it == peer_links_.end()) return;
  PingMessage ping;
  ping.token = next_probe_token_++;
  ping.sent = host_->loop().now();
  probes_[ping.token] = {peer, std::move(cb)};
  it->second->send(encode(ping, /*pong=*/false));
}

}  // namespace gmmcs::broker
