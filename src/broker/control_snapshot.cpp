#include "broker/control_snapshot.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmmcs::broker {

std::vector<InterestTable::SubscriberId> InterestTable::matches(const std::string& topic,
                                                                SubscriberId exclude) const {
  std::vector<SubscriberId> out;
  std::string normalized = normalize_topic(topic);
  if (auto it = exact.find(normalized); it != exact.end()) {
    out = it->second;  // already sorted
  }
  if (!wildcards.empty()) {
    for (const WildcardRow& row : wildcards) {
      if (!row.filter.matches(normalized)) continue;
      out.insert(out.end(), row.ids.begin(), row.ids.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  std::erase(out, exclude);
  return out;
}

std::uint32_t RouteTables::next_hop(std::uint32_t from, std::uint32_t to) const {
  auto fit = next_hop_by.find(from);
  if (fit == next_hop_by.end()) throw std::logic_error("BrokerNetwork: finalize() not called");
  auto tit = fit->second.find(to);
  if (tit == fit->second.end()) {
    throw std::logic_error("BrokerNetwork: no route from " + std::to_string(from) + " to " +
                           std::to_string(to));
  }
  return tit->second;
}

int RouteTables::distance(std::uint32_t from, std::uint32_t to) const {
  auto fit = dist_by.find(from);
  if (fit == dist_by.end()) return -1;
  auto tit = fit->second.find(to);
  return tit == fit->second.end() ? -1 : tit->second;
}

}  // namespace gmmcs::broker
