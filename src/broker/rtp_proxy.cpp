#include "broker/rtp_proxy.hpp"

#include "broker/topic.hpp"

namespace gmmcs::broker {

RtpProxy::RtpProxy(sim::Host& host, sim::Endpoint broker_stream, Config cfg)
    : topic_(normalize_topic(cfg.topic)),
      client_(host, broker_stream, {.name = cfg.name}),
      rtp_in_(host),
      rtp_out_(host) {
  client_.subscribe(topic_);
  rtp_in_.on_receive([this](const sim::Datagram& d) {
    // Publish for everyone else on the topic...
    ++published_;
    client_.publish(topic_, d.payload);
    // ...and fan out locally to this proxy's own receivers: the broker
    // never echoes a publication back to its publisher, so receivers
    // bridged through the *same* proxy are served here (minus the source).
    for (const auto& dst : receivers_) {
      if (dst == d.src) continue;
      ++fanned_out_;
      rtp_out_.send_to(dst, d.payload);
    }
  });
  client_.on_event([this](const Event& ev) {
    for (const auto& dst : receivers_) {
      ++fanned_out_;
      rtp_out_.send_to(dst, ev.payload);
    }
  });
}

void RtpProxy::add_receiver(sim::Endpoint rtp_dst) {
  receivers_.insert(rtp_dst);
}

void RtpProxy::remove_receiver(sim::Endpoint rtp_dst) {
  receivers_.erase(rtp_dst);
}

}  // namespace gmmcs::broker
