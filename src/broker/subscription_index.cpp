#include "broker/subscription_index.hpp"

#include <algorithm>

namespace gmmcs::broker {

namespace {
/// Cached distinct-topic lines before the cache resets. Media workloads
/// publish on a bounded set of session topics, so this is never hit in
/// practice; it only bounds memory against adversarial topic churn.
constexpr std::size_t kMaxCacheLines = 4096;
}  // namespace

void SubscriptionIndex::subscribe(SubscriberId id, const TopicFilter& filter) {
  if (!filter.valid()) {
    ++invalid_[filter.pattern()][id];
  } else if (filter.exact()) {
    ++exact_[filter.pattern()][id];
  } else {
    auto it = std::find_if(wildcards_.begin(), wildcards_.end(),
                           [&](const WildcardEntry& e) { return e.filter == filter; });
    if (it == wildcards_.end()) {
      wildcards_.push_back(WildcardEntry{filter, {}});
      it = std::prev(wildcards_.end());
    }
    ++it->refs[id];
  }
  bump_generation();
}

void SubscriptionIndex::unsubscribe(SubscriberId id, const TopicFilter& filter) {
  auto drop_from = [&](auto& table) {
    auto it = table.find(filter.pattern());
    if (it == table.end()) return;
    auto rit = it->second.find(id);
    if (rit == it->second.end()) return;
    if (--rit->second <= 0) it->second.erase(rit);
    if (it->second.empty()) table.erase(it);
    bump_generation();
  };
  if (!filter.valid()) {
    drop_from(invalid_);
  } else if (filter.exact()) {
    drop_from(exact_);
  } else {
    auto it = std::find_if(wildcards_.begin(), wildcards_.end(),
                           [&](const WildcardEntry& e) { return e.filter == filter; });
    if (it == wildcards_.end()) return;
    auto rit = it->refs.find(id);
    if (rit == it->refs.end()) return;
    if (--rit->second <= 0) it->refs.erase(rit);
    if (it->refs.empty()) wildcards_.erase(it);
    bump_generation();
  }
}

void SubscriptionIndex::remove_subscriber(SubscriberId id) {
  bool changed = false;
  auto sweep = [&](auto& table) {
    for (auto it = table.begin(); it != table.end();) {
      changed |= it->second.erase(id) > 0;
      it = it->second.empty() ? table.erase(it) : std::next(it);
    }
  };
  sweep(exact_);
  sweep(invalid_);
  for (auto it = wildcards_.begin(); it != wildcards_.end();) {
    changed |= it->refs.erase(id) > 0;
    it = it->refs.empty() ? wildcards_.erase(it) : std::next(it);
  }
  if (changed) bump_generation();
}

const std::vector<SubscriptionIndex::SubscriberId>& SubscriptionIndex::matches(
    const std::string& topic) const {
  if (cache_.size() > kMaxCacheLines) cache_.clear();
  CacheLine& line = cache_[topic];
  // generation_ starts at 1, so a default-constructed line (generation 0)
  // can never masquerade as current.
  if (line.generation == generation_) {
    ++cache_hits_;
    return line.ids;
  }
  ++cache_misses_;
  line.generation = generation_;
  line.ids.clear();
  std::string normalized = normalize_topic(topic);
  if (auto it = exact_.find(normalized); it != exact_.end()) {
    for (const auto& [id, refs] : it->second) line.ids.push_back(id);
  }
  if (!wildcards_.empty()) {
    for (const auto& entry : wildcards_) {
      if (!entry.filter.matches(normalized)) continue;
      for (const auto& [id, refs] : entry.refs) line.ids.push_back(id);
    }
    std::sort(line.ids.begin(), line.ids.end());
    line.ids.erase(std::unique(line.ids.begin(), line.ids.end()), line.ids.end());
  }
  return line.ids;
}

std::vector<SubscriptionIndex::SubscriberId> SubscriptionIndex::matches(
    const std::string& topic, SubscriberId exclude) const {
  const std::vector<SubscriberId>& all = matches(topic);
  std::vector<SubscriberId> out;
  out.reserve(all.size());
  for (SubscriberId id : all) {
    if (id != exclude) out.push_back(id);
  }
  return out;
}

InterestTable SubscriptionIndex::flatten() const {
  InterestTable out;
  out.exact.reserve(exact_.size());
  // Keyed copy into another hash map; per-key id vectors come from ordered
  // RefMaps, so the exported table's contents are iteration-order
  // independent. det-lint: allow(unordered-iteration)
  for (const auto& [pattern, refs] : exact_) {
    std::vector<SubscriberId>& ids = out.exact[pattern];
    ids.reserve(refs.size());
    for (const auto& [id, count] : refs) ids.push_back(id);
  }
  out.wildcards.reserve(wildcards_.size());
  for (const WildcardEntry& entry : wildcards_) {
    InterestTable::WildcardRow row{entry.filter, {}};
    row.ids.reserve(entry.refs.size());
    for (const auto& [id, count] : entry.refs) row.ids.push_back(id);
    out.wildcards.push_back(std::move(row));
  }
  return out;
}

std::size_t SubscriptionIndex::entry_count() const {
  std::size_t n = 0;
  // det-lint: allow(unordered-iteration) — commutative sum, order-free
  for (const auto& [pattern, refs] : exact_) n += refs.size();
  // det-lint: allow(unordered-iteration) — commutative sum, order-free
  for (const auto& [pattern, refs] : invalid_) n += refs.size();
  for (const auto& entry : wildcards_) n += entry.refs.size();
  return n;
}

void SubscriptionIndex::bump_generation() {
  ++generation_;
}

}  // namespace gmmcs::broker
