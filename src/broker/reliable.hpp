// Guaranteed-delivery service: NAK-based recovery for UDP subscribers.
//
// NaradaBrokering offered reliable delivery on top of best-effort
// transports. The shape implemented here is the classic one: a
// RecoveryService keeps a bounded buffer of recent events per topic
// (subscribed over the lossless stream profile, so its copy is complete);
// lossy UDP subscribers track per-publisher sequence numbers, detect gaps,
// and fetch the missing events from the service over a reliable stream —
// repairing loss without forcing all media onto TCP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "broker/client.hpp"
#include "common/thread_annotations.hpp"
#include "transport/stream.hpp"

namespace gmmcs::broker {

/// Buffers recent topic events and answers NAKs.
///
/// NAK wire format (one stream message): "NAK <publisher> <from> <to>";
/// each available event in [from, to] is answered as a kEvent frame on
/// the same stream. A "SYNC" request is answered with one text line
/// "SYNC <publisher> <max_seq>" per known publisher, letting subscribers
/// detect *tail* loss (a gap no later event would ever reveal).
class GMMCS_PINNED("runs beside its broker for the whole run") RecoveryService {
 public:
  RecoveryService(sim::Host& host, sim::Endpoint broker_stream, std::string topic,
                  std::size_t buffer_limit = 4096);

  [[nodiscard]] sim::Endpoint endpoint() const { return listener_.local(); }
  [[nodiscard]] const std::string& topic() const { return topic_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t naks_served() const { return naks_; }

 private:
  void handle_request(transport::StreamConnection* conn, const std::string& line);

  std::string topic_;
  std::size_t buffer_limit_;
  broker::BrokerClient client_;           // lossless (stream) subscription
  transport::StreamListener listener_;    // NAK endpoint
  std::vector<transport::StreamConnectionPtr> conns_;
  std::deque<Event> buffer_;              // recent events, oldest first
  std::uint64_t retransmissions_ = 0;
  std::uint64_t naks_ = 0;
};

/// A topic subscriber on the lossy UDP profile with gap repair.
///
/// Events are delivered to on_event() in per-publisher sequence order;
/// a detected gap triggers a NAK to the recovery service, and repaired
/// events are slotted back in order. Events unrecoverable within the
/// buffer window are skipped after `give_up` (delivery resumes past the
/// hole, counted in events_lost()).
class GMMCS_PINNED("reliable subscribers live for the whole run; give-up cancels timers, not the object") ReliableSubscriber {
 public:
  ReliableSubscriber(sim::Host& host, sim::Endpoint broker_stream, std::string topic,
                     sim::Endpoint recovery, SimDuration give_up = duration_ms(200),
                     SimDuration sync_interval = duration_ms(100));

  void on_event(std::function<void(const Event&)> handler);

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t gaps_detected() const { return gaps_; }
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  [[nodiscard]] std::uint64_t events_lost() const { return lost_; }

 private:
  struct PublisherState {
    bool started = false;
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, Event> held;  // out-of-order / repaired events
  };

  void ingest(const Event& ev);
  void flush(ClientId publisher, PublisherState& st);
  void schedule_give_up(ClientId publisher, std::uint32_t expected_seq);
  void handle_sync(const std::string& line);
  void arm_sync_probe();

  sim::Host* host_;
  std::string topic_;
  SimDuration give_up_;
  SimDuration sync_interval_;
  broker::BrokerClient client_;
  transport::StreamConnectionPtr nak_link_;
  /// One coalesced SYNC probe is armed after each received event; when
  /// the stream quiesces exactly one final probe fires, catching tail
  /// loss without keeping the event loop alive forever.
  bool sync_armed_ = false;
  std::map<ClientId, PublisherState> publishers_;
  std::function<void(const Event&)> handler_;
  std::uint64_t delivered_ = 0;
  std::uint64_t gaps_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace gmmcs::broker
