#include "rtp/rtcp.hpp"

namespace gmmcs::rtp {

namespace {
constexpr std::uint8_t kVersionBits = 2 << 6;

void write_block(ByteWriter& w, const ReportBlock& b) {
  w.u32(b.ssrc);
  w.u8(b.fraction_lost);
  // 24-bit cumulative lost.
  w.u8(static_cast<std::uint8_t>(b.cumulative_lost >> 16));
  w.u16(static_cast<std::uint16_t>(b.cumulative_lost));
  w.u32(b.highest_seq);
  w.u32(b.jitter);
  w.u32(b.lsr);
  w.u32(b.dlsr);
}

ReportBlock read_block(ByteReader& r) {
  ReportBlock b;
  b.ssrc = r.u32();
  b.fraction_lost = r.u8();
  std::uint32_t hi = r.u8();
  b.cumulative_lost = (hi << 16) | r.u16();
  b.highest_seq = r.u32();
  b.jitter = r.u32();
  b.lsr = r.u32();
  b.dlsr = r.u32();
  return b;
}

void write_header(ByteWriter& w, std::uint8_t type, std::uint8_t count,
                  std::uint16_t length_words) {
  w.u8(static_cast<std::uint8_t>(kVersionBits | (count & 0x1F)));
  w.u8(type);
  w.u16(length_words);
}

// Wire size of one report block: ssrc + fraction/cumulative + highest_seq
// + jitter + lsr + dlsr.
constexpr std::size_t kReportBlockBytes = 24;
}  // namespace

Bytes serialize(const SenderReport& sr) {
  ByteWriter w;
  auto words = static_cast<std::uint16_t>(6 + 6 * sr.blocks.size());
  write_header(w, kRtcpSenderReport, static_cast<std::uint8_t>(sr.blocks.size()), words);
  w.u32(sr.ssrc);
  w.u64(sr.ntp_timestamp);
  w.u32(sr.rtp_timestamp);
  w.u32(sr.packet_count);
  w.u32(sr.octet_count);
  for (const auto& b : sr.blocks) write_block(w, b);
  return w.take();
}

Bytes serialize(const ReceiverReport& rr) {
  ByteWriter w;
  auto words = static_cast<std::uint16_t>(1 + 6 * rr.blocks.size());
  write_header(w, kRtcpReceiverReport, static_cast<std::uint8_t>(rr.blocks.size()), words);
  w.u32(rr.ssrc);
  for (const auto& b : rr.blocks) write_block(w, b);
  return w.take();
}

Bytes serialize(const Bye& bye) {
  ByteWriter w;
  write_header(w, kRtcpBye, 1, 1);
  w.u32(bye.ssrc);
  return w.take();
}

Result<RtcpPacket> parse_rtcp(std::span<const std::uint8_t> data) {
  if (data.size() < 4) return fail<RtcpPacket>("rtcp: too short");
  ByteReader r(data);
  std::uint8_t b0 = r.u8();
  if ((b0 >> 6) != 2) return fail<RtcpPacket>("rtcp: bad version");
  std::uint8_t count = b0 & 0x1F;
  std::uint8_t type = r.u8();
  r.u16();  // length in words, unused (we parse a single packet)
  RtcpPacket p;
  p.type = type;
  switch (type) {
    case kRtcpSenderReport:
      p.sr.ssrc = r.u32();
      p.sr.ntp_timestamp = r.u64();
      p.sr.rtp_timestamp = r.u32();
      p.sr.packet_count = r.u32();
      p.sr.octet_count = r.u32();
      // A header claiming 31 blocks on an 8-byte packet used to push 31
      // zero-filled blocks before the final ok() check caught it.
      if (kReportBlockBytes * count > r.remaining()) {
        return fail<RtcpPacket>("rtcp: report block count exceeds packet");
      }
      p.sr.blocks.reserve(count);
      for (std::uint8_t i = 0; i < count; ++i) p.sr.blocks.push_back(read_block(r));
      break;
    case kRtcpReceiverReport:
      p.rr.ssrc = r.u32();
      if (kReportBlockBytes * count > r.remaining()) {
        return fail<RtcpPacket>("rtcp: report block count exceeds packet");
      }
      p.rr.blocks.reserve(count);
      for (std::uint8_t i = 0; i < count; ++i) p.rr.blocks.push_back(read_block(r));
      break;
    case kRtcpBye:
      p.bye.ssrc = r.u32();
      break;
    default:
      return fail<RtcpPacket>("rtcp: unsupported packet type " + std::to_string(type));
  }
  if (!r.ok()) return fail<RtcpPacket>("rtcp: truncated packet");
  return p;
}

bool looks_like_rtcp(std::span<const std::uint8_t> data) {
  if (data.size() < 2) return false;
  if ((data[0] >> 6) != 2) return false;
  return data[1] >= 200 && data[1] <= 204;
}

}  // namespace gmmcs::rtp
