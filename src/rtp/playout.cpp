#include "rtp/playout.hpp"

namespace gmmcs::rtp {

PlayoutBuffer::PlayoutBuffer(sim::EventLoop& loop) : PlayoutBuffer(loop, Config{}) {}

PlayoutBuffer::PlayoutBuffer(sim::EventLoop& loop, Config cfg) : loop_(&loop), cfg_(cfg) {}

PlayoutBuffer::~PlayoutBuffer() {
  // A playout buffer can die mid-run (its session torn down) with plays
  // still queued; those callbacks touch `this`. Cancelling an
  // already-run id is a no-op, so cancel everything ever scheduled.
  for (sim::TaskId id : pending_) loop_->cancel(id);
}

void PlayoutBuffer::push(const RtpPacket& packet) {
  SimTime now = loop_->now();
  if (!base_arrival_) {
    base_arrival_ = now;
    base_ts_ = packet.timestamp;
  }
  // Media-timeline offset relative to the first packet (signed: a
  // reordered packet can predate it).
  auto ts_delta = static_cast<std::int32_t>(packet.timestamp - *base_ts_);
  double offset_s = static_cast<double>(ts_delta) / static_cast<double>(cfg_.clock_rate);
  SimTime playout = *base_arrival_ + cfg_.delay + duration_seconds(offset_s);
  if (playout < now) {
    ++dropped_late_;
    last_pushed_seq_ = packet.sequence;
    return;
  }
  if (last_pushed_seq_ &&
      static_cast<std::uint16_t>(packet.sequence - *last_pushed_seq_) > 0x8000) {
    ++reorders_absorbed_;  // arrived late in sequence but still playable
  }
  last_pushed_seq_ = packet.sequence;
  sim::TaskId id = loop_->schedule_at(playout, [this, packet] {
    ++played_;
    ++fired_;
    if (fired_ == pending_.size()) {
      // Buffer drained: every scheduled play has run, drop the ids.
      pending_.clear();
      fired_ = 0;
    }
    if (handler_) handler_(packet);
  });
  pending_.push_back(id);
}

void PlayoutBuffer::on_play(std::function<void(const RtpPacket&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace gmmcs::rtp
