// RTCP sender/receiver reports (RFC 3550 §6.4), subset.
//
// Global-MMCS uses RTCP for the receiver quality feedback that the
// capacity experiments (claims C1/C2 in DESIGN.md) evaluate: fraction
// lost, cumulative lost, highest sequence and interarrival jitter.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace gmmcs::rtp {

constexpr std::uint8_t kRtcpSenderReport = 200;
constexpr std::uint8_t kRtcpReceiverReport = 201;
constexpr std::uint8_t kRtcpBye = 203;

/// One reception report block (RFC 3550 §6.4.1).
struct ReportBlock {
  std::uint32_t ssrc = 0;            // source this block reports on
  std::uint8_t fraction_lost = 0;    // fixed point, /256
  std::uint32_t cumulative_lost = 0; // 24 bits on the wire
  std::uint32_t highest_seq = 0;     // extended highest sequence received
  std::uint32_t jitter = 0;          // in timestamp units
  std::uint32_t lsr = 0;             // last SR timestamp
  std::uint32_t dlsr = 0;            // delay since last SR

  [[nodiscard]] double fraction_lost_ratio() const {
    return static_cast<double>(fraction_lost) / 256.0;
  }
};

struct SenderReport {
  std::uint32_t ssrc = 0;
  std::uint64_t ntp_timestamp = 0;  // simulated-clock ns at send
  std::uint32_t rtp_timestamp = 0;
  std::uint32_t packet_count = 0;
  std::uint32_t octet_count = 0;
  std::vector<ReportBlock> blocks;
};

struct ReceiverReport {
  std::uint32_t ssrc = 0;  // reporter
  std::vector<ReportBlock> blocks;
};

struct Bye {
  std::uint32_t ssrc = 0;
};

/// A parsed RTCP packet (exactly one of the alternatives is meaningful,
/// selected by `type`).
struct RtcpPacket {
  std::uint8_t type = 0;
  SenderReport sr;
  ReceiverReport rr;
  Bye bye;
};

Bytes serialize(const SenderReport& sr);
Bytes serialize(const ReceiverReport& rr);
Bytes serialize(const Bye& bye);
[[nodiscard]] Result<RtcpPacket> parse_rtcp(std::span<const std::uint8_t> data);

/// Distinguishes RTCP from RTP when both arrive on one socket: RTCP packet
/// types 200..204 collide with the RTP marker+payload-type byte range
/// 72..76, which real deployments avoid for media. We follow that rule.
bool looks_like_rtcp(std::span<const std::uint8_t> data);

}  // namespace gmmcs::rtp
