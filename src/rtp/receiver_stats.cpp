#include "rtp/receiver_stats.hpp"

#include <cmath>
#include <stdexcept>

namespace gmmcs::rtp {

ReceiverStats::ReceiverStats(std::uint32_t clock_rate) : clock_rate_(clock_rate) {
  if (clock_rate == 0) throw std::invalid_argument("ReceiverStats: clock rate must be nonzero");
}

void ReceiverStats::init_sequence(std::uint16_t seq) {
  base_seq_ = seq;
  max_seq_ = seq;
  cycles_ = 0;
}

void ReceiverStats::on_packet(const RtpPacket& packet, SimTime arrival, SimTime sent) {
  if (first_) {
    init_sequence(packet.sequence);
    first_ = false;
  } else {
    std::uint16_t delta = static_cast<std::uint16_t>(packet.sequence - max_seq_);
    if (delta == 0) {
      ++duplicates_;
    } else if (delta < 0x8000) {
      if (packet.sequence < max_seq_) ++cycles_;  // wrapped
      max_seq_ = packet.sequence;
    } else {
      ++reordered_;  // late arrival
    }
  }
  ++received_;

  // RFC 3550 Appendix A.8 jitter: transit = arrival (in ts units) - rtp ts.
  double arrival_ts = arrival.to_seconds() * static_cast<double>(clock_rate_);
  double transit = arrival_ts - static_cast<double>(packet.timestamp);
  if (last_transit_) {
    double d = std::abs(transit - *last_transit_);
    jitter_ += (d - jitter_) / 16.0;
  }
  last_transit_ = transit;

  double delay = (arrival - sent).to_ms();
  delay_ms_.add(delay);
  if (record_series_) {
    auto idx = static_cast<double>(received_ - 1);
    delay_series_.add(idx, delay);
    jitter_series_.add(idx, jitter_ms());
  }
}

std::uint64_t ReceiverStats::expected() const {
  if (first_) return 0;
  return static_cast<std::uint64_t>(extended_highest_seq()) - base_seq_ + 1;
}

std::int64_t ReceiverStats::cumulative_lost() const {
  return static_cast<std::int64_t>(expected()) - static_cast<std::int64_t>(received_);
}

double ReceiverStats::loss_ratio() const {
  std::uint64_t exp = expected();
  if (exp == 0) return 0.0;
  std::int64_t lost = cumulative_lost();
  if (lost < 0) lost = 0;  // duplicates can make received > expected
  return static_cast<double>(lost) / static_cast<double>(exp);
}

std::uint8_t ReceiverStats::fraction_lost_since_last() {
  std::uint64_t expected_now = expected();
  std::uint64_t expected_interval = expected_now - expected_prior_;
  std::uint64_t received_interval = received_ - received_prior_;
  expected_prior_ = expected_now;
  received_prior_ = received_;
  if (expected_interval == 0 || received_interval >= expected_interval) return 0;
  std::uint64_t lost = expected_interval - received_interval;
  return static_cast<std::uint8_t>((lost << 8) / expected_interval);
}

std::uint32_t ReceiverStats::extended_highest_seq() const {
  return (cycles_ << 16) | max_seq_;
}

std::uint32_t ReceiverStats::jitter_timestamp_units() const {
  return static_cast<std::uint32_t>(jitter_);
}

double ReceiverStats::jitter_ms() const {
  return jitter_ * 1000.0 / static_cast<double>(clock_rate_);
}

}  // namespace gmmcs::rtp
