#include "rtp/session.hpp"

#include <algorithm>

namespace gmmcs::rtp {

RtpSession::RtpSession(sim::Host& host, Config cfg)
    : cfg_(cfg),
      socket_(host),
      // Deterministic but distinct initial sequence per SSRC.
      next_seq_(static_cast<std::uint16_t>(cfg.ssrc * 2654435761u >> 16)) {
  socket_.on_receive([this](const sim::Datagram& d) { handle(d); });
  if (cfg_.send_rtcp) {
    rtcp_task_ = std::make_unique<sim::PeriodicTask>(
        host.loop(), cfg_.rtcp_interval, [this](std::uint64_t) { emit_rtcp(); });
    rtcp_task_->start();
  }
}

RtpSession::~RtpSession() = default;

void RtpSession::add_destination(sim::Endpoint dst) {
  if (std::find(dests_.begin(), dests_.end(), dst) == dests_.end()) dests_.push_back(dst);
}

void RtpSession::clear_destinations() {
  dests_.clear();
}

void RtpSession::set_multicast_group(sim::GroupId group) {
  group_ = group;
}

void RtpSession::send_media(Payload payload, std::uint32_t timestamp, bool marker) {
  RtpPacket p;
  p.marker = marker;
  p.payload_type = cfg_.payload_type;
  p.sequence = next_seq_++;
  p.timestamp = timestamp;
  p.ssrc = cfg_.ssrc;
  p.payload = std::move(payload);
  // One serialization per packet; every destination shares the handle.
  Payload wire = p.serialize();
  ++packets_sent_;
  octets_sent_ += static_cast<std::uint32_t>(p.payload.size());
  for (const auto& dst : dests_) socket_.send_to(dst, wire);
  if (group_ != 0) socket_.send_group(group_, wire);
  if (send_tap_) send_tap_(wire);
}

void RtpSession::on_send(std::function<void(const Payload&)> tap) {
  send_tap_ = std::move(tap);
}

void RtpSession::on_media(std::function<void(const RtpPacket&, const sim::Datagram&)> handler) {
  media_handler_ = std::move(handler);
}

void RtpSession::on_rtcp(std::function<void(const RtcpPacket&, const sim::Datagram&)> handler) {
  rtcp_handler_ = std::move(handler);
}

ReceiverStats& RtpSession::source_stats(std::uint32_t ssrc) {
  auto it = sources_.find(ssrc);
  if (it == sources_.end()) {
    it = sources_.emplace(ssrc, std::make_unique<ReceiverStats>(cfg_.clock_rate)).first;
  }
  return *it->second;
}

void RtpSession::handle(const sim::Datagram& d) {
  if (looks_like_rtcp(d.payload)) {
    auto r = parse_rtcp(d.payload);
    if (!r.ok()) {
      ++parse_errors_;
      return;
    }
    if (rtcp_handler_) rtcp_handler_(r.value(), d);
    return;
  }
  auto r = RtpPacket::parse(d.payload);
  if (!r.ok()) {
    ++parse_errors_;
    return;
  }
  const RtpPacket& p = r.value();
  source_stats(p.ssrc).on_packet(p, socket_.host().loop().now(), d.sent_at);
  if (media_handler_) media_handler_(p, d);
}

void RtpSession::emit_rtcp() {
  SimTime now = socket_.host().loop().now();
  Payload wire;
  if (packets_sent_ > 0) {
    SenderReport sr;
    sr.ssrc = cfg_.ssrc;
    sr.ntp_timestamp = static_cast<std::uint64_t>(now.ns());
    sr.rtp_timestamp = static_cast<std::uint32_t>(now.to_seconds() *
                                                  static_cast<double>(cfg_.clock_rate));
    sr.packet_count = packets_sent_;
    sr.octet_count = octets_sent_;
    wire = serialize(sr);
  } else if (!sources_.empty()) {
    ReceiverReport rr;
    rr.ssrc = cfg_.ssrc;
    for (auto& [ssrc, stats] : sources_) {
      ReportBlock b;
      b.ssrc = ssrc;
      b.fraction_lost = stats->fraction_lost_since_last();
      auto lost = stats->cumulative_lost();
      b.cumulative_lost = lost > 0 ? static_cast<std::uint32_t>(lost) : 0;
      b.highest_seq = stats->extended_highest_seq();
      b.jitter = stats->jitter_timestamp_units();
      rr.blocks.push_back(b);
    }
    wire = serialize(rr);
  } else {
    return;  // nothing to report yet
  }
  for (const auto& dst : dests_) socket_.send_to(dst, wire);
}

void RtpSession::send_bye() {
  Payload wire = serialize(Bye{cfg_.ssrc});
  for (const auto& dst : dests_) socket_.send_to(dst, wire);
}

}  // namespace gmmcs::rtp
