// Per-source RTP reception statistics (RFC 3550 §6.4.1 and Appendix A).
//
// This produces the two quantities the paper's Figure 3 plots: one-way
// delay (from simulation-stamped send times — the analogue of the paper's
// co-located sender/receiver clock) and interarrival jitter, computed
// exactly per RFC 3550: J += (|D| - J) / 16 where D compares arrival
// spacing against RTP timestamp spacing.
#pragma once

#include <cstdint>
#include <optional>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "rtp/packet.hpp"

namespace gmmcs::rtp {

class ReceiverStats {
 public:
  /// clock_rate: RTP timestamp units per second for the carried codec.
  explicit ReceiverStats(std::uint32_t clock_rate);

  /// Records a received packet. `arrival` is the local receive instant,
  /// `sent` the (simulation-stamped) send instant used for one-way delay.
  void on_packet(const RtpPacket& packet, SimTime arrival, SimTime sent);

  // --- RFC 3550 sequence accounting ---
  [[nodiscard]] std::uint64_t received() const { return received_; }
  /// Packets expected from the extended sequence range.
  [[nodiscard]] std::uint64_t expected() const;
  [[nodiscard]] std::int64_t cumulative_lost() const;
  [[nodiscard]] double loss_ratio() const;
  /// Fraction lost since the previous report interval, as the RFC's 8-bit
  /// fixed point value; also resets the interval counters.
  std::uint8_t fraction_lost_since_last();
  [[nodiscard]] std::uint32_t extended_highest_seq() const;
  [[nodiscard]] std::uint64_t out_of_order() const { return reordered_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

  // --- Jitter ---
  /// Interarrival jitter in RTP timestamp units (RFC wire value).
  [[nodiscard]] std::uint32_t jitter_timestamp_units() const;
  /// Same, converted to milliseconds.
  [[nodiscard]] double jitter_ms() const;

  // --- Delay (simulation-side observability, not on the RTCP wire) ---
  [[nodiscard]] const RunningStats& delay_ms() const { return delay_ms_; }
  /// (packet index, delay ms) points for Figure-3 style series.
  [[nodiscard]] const Series& delay_series() const { return delay_series_; }
  [[nodiscard]] const Series& jitter_series() const { return jitter_series_; }
  /// Enables recording of the per-packet series (off by default: 400
  /// receivers would record 800k points).
  void enable_series(bool on) { record_series_ = on; }

 private:
  void init_sequence(std::uint16_t seq);

  std::uint32_t clock_rate_;
  bool first_ = true;
  std::uint16_t max_seq_ = 0;
  std::uint32_t cycles_ = 0;
  std::uint32_t base_seq_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t expected_prior_ = 0;
  std::uint64_t received_prior_ = 0;
  double jitter_ = 0.0;  // timestamp units, RFC running estimate
  std::optional<double> last_transit_;  // arrival - ts, in timestamp units
  RunningStats delay_ms_;
  Series delay_series_;
  Series jitter_series_;
  bool record_series_ = false;
};

}  // namespace gmmcs::rtp
