// Playout (jitter) buffer.
//
// Receivers in 2003-era A/V tools smoothed network jitter with a fixed
// playout delay: a packet with RTP timestamp t plays at
//   first_arrival + delay + (t - first_t) / clock_rate,
// restoring the sender's media timeline. Packets arriving after their
// playout instant are late and dropped (they would have glitched), and
// moderate reordering is repaired for free because playout follows
// timestamps, not arrival order. The capacity experiments' "good
// quality" threshold corresponds to keeping late drops rare at a playout
// delay a human tolerates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "rtp/packet.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::rtp {

class PlayoutBuffer {
 public:
  struct Config {
    SimDuration delay = duration_ms(80);
    std::uint32_t clock_rate = 90000;
  };

  PlayoutBuffer(sim::EventLoop& loop, Config cfg);
  /// Default configuration (80 ms, 90 kHz).
  explicit PlayoutBuffer(sim::EventLoop& loop);
  /// Cancels every still-pending play (they capture `this`).
  ~PlayoutBuffer();
  PlayoutBuffer(const PlayoutBuffer&) = delete;
  PlayoutBuffer& operator=(const PlayoutBuffer&) = delete;

  /// Hands a received packet to the buffer (arrival = now).
  void push(const RtpPacket& packet);
  /// Fired at each packet's playout instant, in media-timeline order.
  void on_play(std::function<void(const RtpPacket&)> handler);

  [[nodiscard]] std::uint64_t played() const { return played_; }
  [[nodiscard]] std::uint64_t dropped_late() const { return dropped_late_; }
  /// Packets that arrived out of order but still played on time.
  [[nodiscard]] std::uint64_t reorders_absorbed() const { return reorders_absorbed_; }

 private:
  sim::EventLoop* loop_;
  Config cfg_;
  std::function<void(const RtpPacket&)> handler_;
  std::optional<SimTime> base_arrival_;
  std::optional<std::uint32_t> base_ts_;
  std::optional<std::uint16_t> last_pushed_seq_;
  // Ids of scheduled plays, cancelled in the destructor; compacted when
  // the buffer drains (fired_ catches up with pending_.size()).
  std::vector<sim::TaskId> pending_;
  std::size_t fired_ = 0;
  std::uint64_t played_ = 0;
  std::uint64_t dropped_late_ = 0;
  std::uint64_t reorders_absorbed_ = 0;
};

}  // namespace gmmcs::rtp
