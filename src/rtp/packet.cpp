#include "rtp/packet.hpp"

namespace gmmcs::rtp {

Bytes RtpPacket::serialize() const {
  ByteWriter w(wire_size());
  std::uint8_t b0 = static_cast<std::uint8_t>(kRtpVersion << 6);  // P=0, X=0
  b0 |= static_cast<std::uint8_t>(csrcs.size() & 0x0F);
  w.u8(b0);
  std::uint8_t b1 = static_cast<std::uint8_t>(payload_type & 0x7F);
  if (marker) b1 |= 0x80;
  w.u8(b1);
  w.u16(sequence);
  w.u32(timestamp);
  w.u32(ssrc);
  for (std::uint32_t csrc : csrcs) w.u32(csrc);
  w.raw(payload);
  return w.take();
}

Result<RtpPacket> RtpPacket::parse(const Payload& data) {
  if (data.size() < kRtpHeaderSize) return fail<RtpPacket>("rtp: packet shorter than header");
  ByteReader r(data);
  std::uint8_t b0 = r.u8();
  if ((b0 >> 6) != kRtpVersion) return fail<RtpPacket>("rtp: bad version");
  if (b0 & 0x20) return fail<RtpPacket>("rtp: padding not supported");
  if (b0 & 0x10) return fail<RtpPacket>("rtp: header extension not supported");
  std::uint8_t cc = b0 & 0x0F;
  std::uint8_t b1 = r.u8();
  RtpPacket p;
  p.marker = (b1 & 0x80) != 0;
  p.payload_type = b1 & 0x7F;
  p.sequence = r.u16();
  p.timestamp = r.u32();
  p.ssrc = r.u32();
  if (std::size_t{4} * cc > r.remaining()) {
    return fail<RtpPacket>("rtp: truncated CSRC list");
  }
  p.csrcs.reserve(cc);
  for (std::uint8_t i = 0; i < cc; ++i) p.csrcs.push_back(r.u32());
  if (!r.ok()) return fail<RtpPacket>("rtp: truncated CSRC list");
  // Zero-copy: the payload is a slice of the packet buffer covering the
  // reader's trailing byte run.
  std::size_t at = r.position();
  std::size_t len = r.rest().size();
  p.payload = data.slice(at, len);
  return p;
}

}  // namespace gmmcs::rtp
