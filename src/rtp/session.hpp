// RTP session: a socket plus send/receive machinery and per-source stats.
//
// Every media endpoint in the system (H.323 terminals, SIP endpoints,
// Access Grid tools, broker RTP proxies, the JMF reflector baseline and the
// measured receivers of the Figure-3 experiment) speaks through an
// RtpSession. RTP and RTCP share one socket, demultiplexed by packet type
// as real single-port deployments do.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "rtp/packet.hpp"
#include "rtp/receiver_stats.hpp"
#include "rtp/rtcp.hpp"
#include "sim/event_loop.hpp"
#include "transport/datagram_socket.hpp"

namespace gmmcs::rtp {

class RtpSession {
 public:
  struct Config {
    std::uint32_t ssrc = 0;
    std::uint8_t payload_type = 0;
    std::uint32_t clock_rate = 90000;
    /// When true, a periodic task emits SR (if we sent) and RR (per source)
    /// to every destination.
    bool send_rtcp = false;
    SimDuration rtcp_interval = duration_s(5);
  };

  RtpSession(sim::Host& host, Config cfg);
  ~RtpSession();

  // --- Destinations ---
  void add_destination(sim::Endpoint dst);
  void clear_destinations();
  /// Media is additionally sent to this multicast group when set.
  void set_multicast_group(sim::GroupId group);
  [[nodiscard]] const std::vector<sim::Endpoint>& destinations() const { return dests_; }

  // --- Sending ---
  /// Sends one media packet to all destinations; sequence numbers are
  /// managed by the session, timestamp/marker supplied by the media layer.
  void send_media(Payload payload, std::uint32_t timestamp, bool marker = false);
  /// Tap on outgoing packets: receives every serialized RTP packet. Used
  /// to feed media into non-RTP transports (e.g. publish as broker events).
  void on_send(std::function<void(const Payload& wire)> tap);
  [[nodiscard]] std::uint32_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint32_t octets_sent() const { return octets_sent_; }

  // --- Receiving ---
  /// Media callback: parsed packet plus the raw datagram (for send-time /
  /// delay accounting).
  void on_media(std::function<void(const RtpPacket&, const sim::Datagram&)> handler);
  void on_rtcp(std::function<void(const RtcpPacket&, const sim::Datagram&)> handler);
  /// Per-source reception stats, created on first packet (or first call).
  ReceiverStats& source_stats(std::uint32_t ssrc);
  [[nodiscard]] const std::map<std::uint32_t, std::unique_ptr<ReceiverStats>>& sources() const {
    return sources_;
  }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }

  // --- Multicast receive ---
  void join_group(sim::GroupId group) { socket_.join_group(group); }
  void leave_group(sim::GroupId group) { socket_.leave_group(group); }

  [[nodiscard]] sim::Endpoint local() const { return socket_.local(); }
  [[nodiscard]] sim::Host& host() const { return socket_.host(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Sends an RTCP BYE to all destinations (session teardown).
  void send_bye();

 private:
  void handle(const sim::Datagram& d);
  void emit_rtcp();

  Config cfg_;
  transport::DatagramSocket socket_;
  std::vector<sim::Endpoint> dests_;
  sim::GroupId group_ = 0;
  std::uint16_t next_seq_;
  std::uint32_t packets_sent_ = 0;
  std::uint32_t octets_sent_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::function<void(const Payload&)> send_tap_;
  std::function<void(const RtpPacket&, const sim::Datagram&)> media_handler_;
  std::function<void(const RtcpPacket&, const sim::Datagram&)> rtcp_handler_;
  std::map<std::uint32_t, std::unique_ptr<ReceiverStats>> sources_;
  std::unique_ptr<sim::PeriodicTask> rtcp_task_;
};

}  // namespace gmmcs::rtp
