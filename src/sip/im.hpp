// Chat rooms over SIP MESSAGE (paper §3.2: "the SIP Proxy and SIP Gateway
// provide the services of Instant Messaging and Chat room for IM capable
// clients such as Windows Messenger").
//
// Rooms are addressed  sip:<room>@chat.gmmcs  and reached through the
// proxy's domain route. Joining, leaving and speaking are all MESSAGEs:
// a body of "/join" or "/leave" manages membership (the sender's Contact
// header tells the server where to deliver), anything else is fanned out
// to the other members with the sender prefixed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sip/agent.hpp"

namespace gmmcs::sip {

class ChatServer {
 public:
  static constexpr std::uint16_t kChatPort = 5062;
  static constexpr const char* kDomain = "chat.gmmcs";

  explicit ChatServer(sim::Host& host, std::uint16_t port = kChatPort);

  static std::string room_uri(const std::string& room) {
    return "sip:" + room + "@" + std::string(kDomain);
  }

  [[nodiscard]] sim::Endpoint endpoint() const { return agent_.endpoint(); }
  [[nodiscard]] std::size_t member_count(const std::string& room) const;
  [[nodiscard]] std::uint64_t messages_relayed() const { return relayed_; }

 private:
  struct Member {
    std::string uri;
    sim::Endpoint contact;
  };

  void handle(const SipMessage& req, const SipAgent::Responder& respond);

  SipAgent agent_;
  std::map<std::string, std::vector<Member>> rooms_;
  std::uint64_t relayed_ = 0;
};

}  // namespace gmmcs::sip
