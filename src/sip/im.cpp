#include "sip/im.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace gmmcs::sip {

ChatServer::ChatServer(sim::Host& host, std::uint16_t port) : agent_(host, port) {
  agent_.on_request(
      [this](const SipMessage& req, const SipAgent::Responder& respond) { handle(req, respond); });
}

std::size_t ChatServer::member_count(const std::string& room) const {
  auto it = rooms_.find(room);
  return it == rooms_.end() ? 0 : it->second.size();
}

void ChatServer::handle(const SipMessage& req, const SipAgent::Responder& respond) {
  if (req.method != "MESSAGE") {
    respond(SipMessage::response(req, 501, "Not Implemented"));
    return;
  }
  auto uri = SipUri::parse(req.request_uri);
  if (!uri.ok()) {
    respond(SipMessage::response(req, 400, "Bad Request-URI"));
    return;
  }
  const std::string room = uri.value().user;
  const std::string sender = req.from_uri();
  std::string body(trim(req.body));

  if (body == "/join") {
    auto contact = parse_contact(req.header("Contact"));
    if (!contact.ok()) {
      respond(SipMessage::response(req, 400, "Bad Contact"));
      return;
    }
    auto& members = rooms_[room];
    bool already = std::any_of(members.begin(), members.end(),
                               [&](const Member& m) { return m.uri == sender; });
    if (!already) members.push_back(Member{sender, contact.value()});
    respond(SipMessage::response(req, 200, "OK"));
    return;
  }
  if (body == "/leave") {
    auto it = rooms_.find(room);
    if (it != rooms_.end()) {
      std::erase_if(it->second, [&](const Member& m) { return m.uri == sender; });
    }
    respond(SipMessage::response(req, 200, "OK"));
    return;
  }

  auto it = rooms_.find(room);
  if (it == rooms_.end()) {
    respond(SipMessage::response(req, 404, "No Such Room"));
    return;
  }
  bool is_member = std::any_of(it->second.begin(), it->second.end(),
                               [&](const Member& m) { return m.uri == sender; });
  if (!is_member) {
    respond(SipMessage::response(req, 403, "Join First"));
    return;
  }
  for (const Member& m : it->second) {
    if (m.uri == sender) continue;
    SipMessage relay = SipMessage::request("MESSAGE", m.uri, room_uri(room), m.uri,
                                           agent_.new_call_id(), agent_.next_cseq());
    relay.set_header("Content-Type", "text/plain");
    relay.set_header("X-Chat-From", sender);
    relay.body = sender + ": " + req.body;
    ++relayed_;
    agent_.send_request(m.contact, std::move(relay), [](const SipMessage&) {});
  }
  respond(SipMessage::response(req, 200, "OK"));
}

}  // namespace gmmcs::sip
