#include "sip/message.hpp"

#include "common/strings.hpp"

namespace gmmcs::sip {

Result<SipUri> SipUri::parse(const std::string& text) {
  std::string_view s = trim(text);
  if (!starts_with(s, "sip:")) return fail<SipUri>("sip: uri must start with 'sip:'");
  s.remove_prefix(4);
  std::size_t at = s.find('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= s.size()) {
    return fail<SipUri>("sip: uri needs user@host");
  }
  SipUri uri;
  uri.user = std::string(s.substr(0, at));
  uri.host = std::string(s.substr(at + 1));
  return uri;
}

std::string SipMessage::header(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return v;
  }
  return {};
}

bool SipMessage::has_header(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return true;
  }
  return false;
}

SipMessage& SipMessage::set_header(const std::string& name, const std::string& value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = value;
      return *this;
    }
  }
  headers.emplace_back(name, value);
  return *this;
}

SipMessage& SipMessage::add_header(const std::string& name, const std::string& value) {
  headers.emplace_back(name, value);
  return *this;
}

std::uint32_t SipMessage::cseq_number() const {
  auto parts = split_n(header("CSeq"), ' ', 2);
  if (parts.empty()) return 0;
  return parse_u32(parts[0]).value_or(0);
}

std::string SipMessage::cseq_method() const {
  auto parts = split_n(header("CSeq"), ' ', 2);
  return parts.size() == 2 ? std::string(trim(parts[1])) : std::string{};
}

std::string strip_address(const std::string& header_value) {
  std::string_view s = trim(header_value);
  std::size_t lt = s.find('<');
  if (lt != std::string_view::npos) {
    std::size_t gt = s.find('>', lt);
    if (gt != std::string_view::npos) return std::string(s.substr(lt + 1, gt - lt - 1));
  }
  std::size_t semi = s.find(';');
  if (semi != std::string_view::npos) s = s.substr(0, semi);
  return std::string(trim(s));
}

std::string SipMessage::from_uri() const {
  return strip_address(from());
}

std::string SipMessage::to_uri() const {
  return strip_address(to());
}

std::string SipMessage::serialize() const {
  std::string out;
  if (is_request) {
    out = method + " " + request_uri + " SIP/2.0\r\n";
  } else {
    out = "SIP/2.0 " + std::to_string(status) + " " + reason + "\r\n";
  }
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

Result<SipMessage> SipMessage::parse(const std::string& text) {
  std::size_t sep = text.find("\r\n\r\n");
  std::size_t skip = 4;
  if (sep == std::string::npos) {
    sep = text.find("\n\n");
    skip = 2;
    if (sep == std::string::npos) return fail<SipMessage>("sip: no header/body separator");
  }
  std::string head = text.substr(0, sep);
  SipMessage m;
  m.body = text.substr(sep + skip);
  auto lines = split_lines(head);
  if (lines.empty()) return fail<SipMessage>("sip: empty message");
  if (starts_with(lines[0], "SIP/2.0 ")) {
    m.is_request = false;
    auto parts = split_n(lines[0], ' ', 3);
    if (parts.size() < 2) return fail<SipMessage>("sip: malformed status line");
    // "SIP/2.0 99999999999 ..." used to throw std::out_of_range here.
    auto status = parse_u32(parts[1], 999);
    if (!status) return fail<SipMessage>("sip: malformed status code '" + parts[1] + "'");
    m.status = static_cast<int>(*status);
    m.reason = parts.size() == 3 ? parts[2] : "";
  } else {
    auto parts = split_n(lines[0], ' ', 3);
    if (parts.size() != 3 || parts[2] != "SIP/2.0") {
      return fail<SipMessage>("sip: malformed request line");
    }
    m.is_request = true;
    m.method = parts[0];
    m.request_uri = parts[1];
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto kv = split_n(lines[i], ':', 2);
    if (kv.size() != 2) return fail<SipMessage>("sip: malformed header '" + lines[i] + "'");
    std::string name(trim(kv[0]));
    if (iequals(name, "Content-Length")) continue;  // derived from body
    m.headers.emplace_back(std::move(name), std::string(trim(kv[1])));
  }
  return m;
}

SipMessage SipMessage::request(const std::string& method, const std::string& uri,
                               const std::string& from, const std::string& to,
                               const std::string& call_id, std::uint32_t cseq) {
  SipMessage m;
  m.is_request = true;
  m.method = method;
  m.request_uri = uri;
  m.set_header("Via", "SIP/2.0/TCP gmmcs;branch=z9hG4bK-" + call_id + "-" +
                          std::to_string(cseq));
  m.set_header("From", "<" + from + ">;tag=" + call_id.substr(0, 8));
  m.set_header("To", "<" + to + ">");
  m.set_header("Call-ID", call_id);
  m.set_header("CSeq", std::to_string(cseq) + " " + method);
  m.set_header("Max-Forwards", "70");
  return m;
}

SipMessage SipMessage::response(const SipMessage& req, int status, const std::string& reason) {
  SipMessage m;
  m.is_request = false;
  m.status = status;
  m.reason = reason;
  for (const char* h : {"Via", "From", "To", "Call-ID", "CSeq"}) {
    if (req.has_header(h)) m.set_header(h, req.header(h));
  }
  return m;
}

}  // namespace gmmcs::sip
