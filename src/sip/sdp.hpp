// SDP subset (RFC 2327 vintage) for SIP offer/answer.
//
// Carries what the gateways need: the session owner, the connection
// address (our address family is "SIM" with a node id), and per-media
// lines with transport port, payload types and an rtpmap codec name.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "sim/network.hpp"

namespace gmmcs::sip {

struct SdpMedia {
  std::string kind;  // "audio" | "video"
  std::uint16_t port = 0;
  std::uint8_t payload_type = 0;
  std::string codec;  // rtpmap name, e.g. "PCMU/8000"
};

struct Sdp {
  std::string origin_user = "-";
  sim::NodeId address = 0;  // c= line, address family "SIM"
  std::string session_name = "gmmcs";
  std::vector<SdpMedia> media;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Result<Sdp> parse(const std::string& text);

  /// Endpoint of the first media line of the given kind (node from c=).
  [[nodiscard]] std::optional<sim::Endpoint> media_endpoint(const std::string& kind) const;
};

}  // namespace gmmcs::sip
