// SIP transaction/transport layer over reliable streams.
//
// One SipAgent per SIP element (UA, proxy, registrar, gateway, chat
// server): it listens on a port, keeps persistent links to peers, sends
// requests with response correlation (Call-ID + CSeq), and hands inbound
// requests to the element with a responder bound to the originating link.
// Stream transport means TCP-profile SIP: no retransmission timers, which
// is the profile the real Global-MMCS servers ran among themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/network.hpp"
#include "sip/message.hpp"
#include "transport/stream.hpp"

namespace gmmcs::sip {

/// Contact address in our simulated addressing: "sim:<node>:<port>".
std::string make_contact(sim::Endpoint ep);
[[nodiscard]] Result<sim::Endpoint> parse_contact(const std::string& contact);

class GMMCS_PINNED("SIP agents are run-long endpoints; their transports die first") SipAgent {
 public:
  static constexpr std::uint16_t kSipPort = 5060;

  using ResponseHandler = std::function<void(const SipMessage&)>;
  /// Sends a response back over the link the request arrived on.
  using Responder = std::function<void(const SipMessage&)>;
  using RequestHandler = std::function<void(const SipMessage&, const Responder&)>;

  SipAgent(sim::Host& host, std::uint16_t port);

  /// Sends a request; `on_response` fires for every response to it
  /// (provisional and final) and is retired on the final one.
  void send_request(sim::Endpoint target, SipMessage request, ResponseHandler on_response);
  /// Fire-and-forget request (ACK).
  void send_request(sim::Endpoint target, SipMessage request);

  void on_request(RequestHandler handler);

  [[nodiscard]] sim::Endpoint endpoint() const { return listener_.local(); }
  [[nodiscard]] sim::Host& host() const { return *host_; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }
  [[nodiscard]] std::uint64_t requests_received() const { return requests_received_; }

  /// Fresh Call-ID / CSeq helpers for user agents.
  std::string new_call_id();
  std::uint32_t next_cseq() { return next_cseq_++; }

 private:
  transport::StreamConnectionPtr link_to(sim::Endpoint target);
  void handle_message(transport::StreamConnection* from, const Payload& data);
  static std::string transaction_key(const SipMessage& m);

  sim::Host* host_;
  transport::StreamListener listener_;
  std::map<sim::Endpoint, transport::StreamConnectionPtr> out_links_;
  std::vector<transport::StreamConnectionPtr> in_links_;
  std::map<std::string, ResponseHandler> pending_;
  RequestHandler request_handler_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t requests_received_ = 0;
  std::uint64_t call_id_counter_ = 0;
  std::uint32_t next_cseq_ = 1;
};

}  // namespace gmmcs::sip
