#include "sip/agent.hpp"

#include "common/strings.hpp"

namespace gmmcs::sip {

std::string make_contact(sim::Endpoint ep) {
  return "sim:" + std::to_string(ep.node) + ":" + std::to_string(ep.port);
}

Result<sim::Endpoint> parse_contact(const std::string& contact) {
  std::string_view s = trim(contact);
  if (s.size() >= 2 && s.front() == '<' && s.back() == '>') s = s.substr(1, s.size() - 2);
  if (!starts_with(s, "sim:")) return fail<sim::Endpoint>("contact: expected sim: scheme");
  auto parts = split(std::string(s.substr(4)), ':');
  if (parts.size() != 2) return fail<sim::Endpoint>("contact: expected sim:node:port");
  auto node = parse_u32(parts[0]);
  auto port = parse_u16(parts[1]);
  if (!node || !port) return fail<sim::Endpoint>("contact: malformed node/port");
  return sim::Endpoint{static_cast<sim::NodeId>(*node), *port};
}

namespace {
/// port 0 = "any free SIP port": probe upward from the well-known one.
std::uint16_t resolve_port(sim::Host& host, std::uint16_t requested) {
  if (requested != 0) return requested;
  std::uint16_t p = SipAgent::kSipPort;
  while (host.is_bound(p)) ++p;
  return p;
}
}  // namespace

SipAgent::SipAgent(sim::Host& host, std::uint16_t port)
    : host_(&host), listener_(host, resolve_port(host, port)) {
  listener_.on_accept([this](transport::StreamConnectionPtr conn) {
    in_links_.push_back(conn);
    auto* raw = conn.get();
    conn->on_message([this, raw](const Payload& data) { handle_message(raw, data); });
    conn->on_close([this, raw] {
      std::erase_if(in_links_, [raw](const transport::StreamConnectionPtr& c) {
        return c.get() == raw;
      });
    });
  });
}

transport::StreamConnectionPtr SipAgent::link_to(sim::Endpoint target) {
  auto it = out_links_.find(target);
  if (it != out_links_.end() && !it->second->closed()) return it->second;
  auto conn = transport::StreamConnection::connect(*host_, target);
  auto* raw = conn.get();
  conn->on_message([this, raw](const Payload& data) { handle_message(raw, data); });
  conn->on_close([this, target] { out_links_.erase(target); });
  out_links_[target] = conn;
  return conn;
}

std::string SipAgent::transaction_key(const SipMessage& m) {
  return m.call_id() + "|" + std::to_string(m.cseq_number()) + "|" + m.cseq_method();
}

void SipAgent::send_request(sim::Endpoint target, SipMessage request,
                            ResponseHandler on_response) {
  pending_[transaction_key(request)] = std::move(on_response);
  send_request(target, std::move(request));
}

void SipAgent::send_request(sim::Endpoint target, SipMessage request) {
  ++requests_sent_;
  link_to(target)->send(request.serialize());
}

void SipAgent::on_request(RequestHandler handler) {
  request_handler_ = std::move(handler);
}

void SipAgent::handle_message(transport::StreamConnection* from, const Payload& data) {
  auto parsed = SipMessage::parse(gmmcs::to_string(std::span<const std::uint8_t>(data)));
  if (!parsed.ok()) return;
  SipMessage m = std::move(parsed).value();
  if (m.is_request) {
    ++requests_received_;
    if (!request_handler_) return;
    // Bind the responder to the link the request came from; the weak
    // capture pattern is unnecessary here because links outlive the
    // synchronous responder use in all our elements.
    Responder responder = [from](const SipMessage& resp) { from->send(resp.serialize()); };
    request_handler_(m, responder);
    return;
  }
  auto it = pending_.find(transaction_key(m));
  if (it == pending_.end()) return;
  ResponseHandler handler = it->second;
  if (m.status >= 200) pending_.erase(it);
  handler(m);
}

std::string SipAgent::new_call_id() {
  return "cid-" + std::to_string(host_->id()) + "-" + std::to_string(++call_id_counter_);
}

}  // namespace gmmcs::sip
