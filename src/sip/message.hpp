// SIP message model and RFC 3261-subset text codec.
//
// SIP is a text protocol, cheap to implement faithfully, so this is a real
// parser/serializer: request/status lines, ordered headers with
// case-insensitive names, bodies, and the helpers (Call-ID, CSeq, tags,
// branches) the transaction layer needs. Transport in this system is the
// reliable stream, i.e. SIP-over-TCP semantics: no retransmission timers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace gmmcs::sip {

/// "sip:user@host" (we do not model ports inside SIP URIs; hosts map to
/// simulated nodes via the registrar).
struct SipUri {
  std::string user;
  std::string host;

  [[nodiscard]] std::string to_string() const { return "sip:" + user + "@" + host; }
  [[nodiscard]] static Result<SipUri> parse(const std::string& text);
  auto operator<=>(const SipUri&) const = default;
};

struct SipMessage {
  // Request fields.
  bool is_request = true;
  std::string method;       // INVITE, ACK, BYE, REGISTER, MESSAGE, SUBSCRIBE, NOTIFY
  std::string request_uri;  // "sip:conf-1@gmmcs"
  // Response fields.
  int status = 0;
  std::string reason;

  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // --- Header access (case-insensitive names) ---
  [[nodiscard]] std::string header(const std::string& name) const;
  [[nodiscard]] bool has_header(const std::string& name) const;
  SipMessage& set_header(const std::string& name, const std::string& value);
  SipMessage& add_header(const std::string& name, const std::string& value);

  // --- Common helpers ---
  [[nodiscard]] std::string call_id() const { return header("Call-ID"); }
  [[nodiscard]] std::string from() const { return header("From"); }
  [[nodiscard]] std::string to() const { return header("To"); }
  [[nodiscard]] std::uint32_t cseq_number() const;
  [[nodiscard]] std::string cseq_method() const;
  /// The address part of From/To without tag parameters.
  [[nodiscard]] std::string from_uri() const;
  [[nodiscard]] std::string to_uri() const;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Result<SipMessage> parse(const std::string& text);

  /// Builds a request with the mandatory headers.
  static SipMessage request(const std::string& method, const std::string& uri,
                            const std::string& from, const std::string& to,
                            const std::string& call_id, std::uint32_t cseq);
  /// Builds a response echoing the dialog-identifying headers of `req`.
  static SipMessage response(const SipMessage& req, int status, const std::string& reason);
};

/// Strips "<...>" and ";param" decoration from a From/To value.
std::string strip_address(const std::string& header_value);

}  // namespace gmmcs::sip
