#include "sip/sdp.hpp"

#include "common/strings.hpp"

namespace gmmcs::sip {

std::string Sdp::serialize() const {
  std::string out;
  out += "v=0\r\n";
  out += "o=" + origin_user + " 0 0 IN SIM " + std::to_string(address) + "\r\n";
  out += "s=" + session_name + "\r\n";
  out += "c=IN SIM " + std::to_string(address) + "\r\n";
  out += "t=0 0\r\n";
  for (const auto& m : media) {
    out += "m=" + m.kind + " " + std::to_string(m.port) + " RTP/AVP " +
           std::to_string(m.payload_type) + "\r\n";
    if (!m.codec.empty()) {
      out += "a=rtpmap:" + std::to_string(m.payload_type) + " " + m.codec + "\r\n";
    }
  }
  return out;
}

Result<Sdp> Sdp::parse(const std::string& text) {
  Sdp sdp;
  bool saw_v = false;
  for (const auto& line : split_lines(text)) {
    if (line.size() < 2 || line[1] != '=') continue;
    char type = line[0];
    std::string value = line.substr(2);
    switch (type) {
      case 'v':
        saw_v = true;
        break;
      case 'o': {
        auto parts = split(value, ' ');
        if (!parts.empty()) sdp.origin_user = parts[0];
        break;
      }
      case 's':
        sdp.session_name = value;
        break;
      case 'c': {
        auto parts = split(value, ' ');
        if (parts.size() != 3 || parts[0] != "IN") return fail<Sdp>("sdp: malformed c= line");
        auto addr = parse_u32(parts[2]);
        if (!addr) return fail<Sdp>("sdp: malformed c= address");
        sdp.address = static_cast<sim::NodeId>(*addr);
        break;
      }
      case 'm': {
        auto parts = split(value, ' ');
        if (parts.size() < 4) return fail<Sdp>("sdp: malformed m= line");
        SdpMedia m;
        m.kind = parts[0];
        auto port = parse_u16(parts[1]);
        auto pt = parse_u8(parts[3]);
        if (!port || !pt) return fail<Sdp>("sdp: malformed m= line");
        m.port = *port;
        m.payload_type = *pt;
        sdp.media.push_back(std::move(m));
        break;
      }
      case 'a': {
        if (starts_with(value, "rtpmap:") && !sdp.media.empty()) {
          auto parts = split_n(value.substr(7), ' ', 2);
          auto pt = parts.size() == 2 ? parse_u8(parts[0]) : std::nullopt;
          if (pt) {
            for (auto& m : sdp.media) {
              if (m.payload_type == *pt && m.codec.empty()) m.codec = parts[1];
            }
          }
        }
        break;
      }
      default:
        break;  // tolerated, like real parsers
    }
  }
  if (!saw_v) return fail<Sdp>("sdp: missing v= line");
  return sdp;
}

std::optional<sim::Endpoint> Sdp::media_endpoint(const std::string& kind) const {
  for (const auto& m : media) {
    if (m.kind == kind && m.port != 0) return sim::Endpoint{address, m.port};
  }
  return std::nullopt;
}

}  // namespace gmmcs::sip
