#include "sip/proxy.hpp"

#include "common/strings.hpp"

namespace gmmcs::sip {

SipProxy::SipProxy(sim::Host& host, std::uint16_t port) : agent_(host, port) {
  agent_.on_request(
      [this](const SipMessage& req, const SipAgent::Responder& respond) { handle(req, respond); });
}

void SipProxy::add_domain_route(const std::string& host_suffix, sim::Endpoint target) {
  domain_routes_.emplace_back(host_suffix, target);
}

std::optional<sim::Endpoint> SipProxy::lookup(const std::string& aor) const {
  auto it = bindings_.find(aor);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

void SipProxy::handle(const SipMessage& req, const SipAgent::Responder& respond) {
  if (req.method == "REGISTER") {
    handle_register(req, respond);
    return;
  }
  if (req.method == "SUBSCRIBE") {
    handle_subscribe(req, respond);
    return;
  }
  // Route by request URI.
  auto uri = SipUri::parse(req.request_uri);
  if (!uri.ok()) {
    ++rejected_;
    respond(SipMessage::response(req, 400, "Bad Request-URI"));
    return;
  }
  for (const auto& [suffix, target] : domain_routes_) {
    if (ends_with(uri.value().host, suffix)) {
      forward(req, target, respond);
      return;
    }
  }
  if (auto target = lookup(req.request_uri)) {
    forward(req, *target, respond);
    return;
  }
  ++rejected_;
  respond(SipMessage::response(req, 404, "Not Found"));
}

void SipProxy::handle_register(const SipMessage& req, const SipAgent::Responder& respond) {
  std::string aor = req.to_uri();
  std::string contact = req.header("Contact");
  auto ep = parse_contact(contact);
  if (!ep.ok()) {
    ++rejected_;
    respond(SipMessage::response(req, 400, "Bad Contact"));
    return;
  }
  bool expire = req.header("Expires") == "0";
  if (expire) {
    bindings_.erase(aor);
  } else {
    bindings_[aor] = ep.value();
  }
  SipMessage ok = SipMessage::response(req, 200, "OK");
  ok.set_header("Contact", contact);
  respond(ok);
  notify_watchers(aor, !expire);
}

void SipProxy::handle_subscribe(const SipMessage& req, const SipAgent::Responder& respond) {
  std::string watched = req.request_uri;
  auto watcher = parse_contact(req.header("Contact"));
  if (!watcher.ok()) {
    ++rejected_;
    respond(SipMessage::response(req, 400, "Bad Contact"));
    return;
  }
  watchers_[watched].push_back(watcher.value());
  respond(SipMessage::response(req, 200, "OK"));
  // Immediate NOTIFY with current state (RFC 3265 behaviour).
  SipMessage notify = SipMessage::request("NOTIFY", req.from_uri(), watched, req.from_uri(),
                                          req.call_id(), req.cseq_number() + 1);
  notify.set_header("Event", "presence");
  notify.body = bindings_.contains(watched) ? "open" : "closed";
  agent_.send_request(watcher.value(), notify);
}

void SipProxy::notify_watchers(const std::string& aor, bool online) {
  auto it = watchers_.find(aor);
  if (it == watchers_.end()) return;
  for (const auto& watcher : it->second) {
    SipMessage notify =
        SipMessage::request("NOTIFY", aor, aor, aor, agent_.new_call_id(), agent_.next_cseq());
    notify.set_header("Event", "presence");
    notify.body = online ? "open" : "closed";
    agent_.send_request(watcher, notify);
  }
}

void SipProxy::forward(const SipMessage& req, sim::Endpoint target,
                       const SipAgent::Responder& respond) {
  ++forwarded_;
  SipMessage fwd = req;
  fwd.add_header("Via", "SIP/2.0/TCP proxy;branch=z9hG4bK-fwd");
  if (req.method == "ACK") {
    agent_.send_request(target, std::move(fwd));  // ACK has no response
    return;
  }
  agent_.send_request(target, std::move(fwd),
                      [respond](const SipMessage& resp) { respond(resp); });
}

}  // namespace gmmcs::sip
