// SIP user agent: the client-side element (a simulated "SIP endpoint" or
// "Windows Messenger" from the paper's client list).
//
// Registers with the proxy, places/receives calls with SDP offer/answer,
// sends instant messages, and watches presence. Media itself is carried
// by an RtpSession the application wires to the negotiated endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sip/agent.hpp"
#include "sip/sdp.hpp"

namespace gmmcs::sip {

class SipEndpoint {
 public:
  /// `uri` is this user's AOR, e.g. "sip:alice@iu.edu"; all signaling goes
  /// through `proxy`.
  SipEndpoint(sim::Host& host, std::string uri, sim::Endpoint proxy);

  /// Registers the AOR -> this agent binding; cb(success).
  void register_with_proxy(std::function<void(bool)> cb);
  void unregister(std::function<void(bool)> cb);

  // --- Calls ---
  struct Call {
    std::string call_id;
    std::string peer_uri;
    Sdp remote_sdp;
    bool established = false;
  };
  /// Places a call; cb fires on the final response (answer SDP inside the
  /// call on success). Sends the ACK automatically.
  void invite(const std::string& target_uri, const Sdp& offer,
              std::function<void(bool, const Call&)> cb);
  /// Renegotiates the active call's media (re-INVITE within the dialog):
  /// new offer, same Call-ID. Used for hold/resume and port changes.
  void reinvite(const Sdp& new_offer, std::function<void(bool, const Call&)> cb);
  /// Ends the active call.
  void bye(std::function<void(bool)> cb);
  /// Incoming call handler: return the answer SDP to accept, nullopt to
  /// reject with 486 Busy Here.
  void on_invite(std::function<std::optional<Sdp>(const std::string& from, const Sdp& offer)> h);
  [[nodiscard]] const std::optional<Call>& active_call() const { return call_; }

  // --- Instant messaging (paper: IM service via SIP MESSAGE) ---
  void send_message(const std::string& target_uri, const std::string& text,
                    std::function<void(bool)> cb);
  void on_message(std::function<void(const std::string& from, const std::string& text)> h);

  // --- Presence ---
  void subscribe_presence(const std::string& target_uri,
                          std::function<void(const std::string& status)> h);

  [[nodiscard]] const std::string& uri() const { return uri_; }
  [[nodiscard]] SipAgent& agent() { return agent_; }

 private:
  void handle(const SipMessage& req, const SipAgent::Responder& respond);

  std::string uri_;
  sim::Endpoint proxy_;
  SipAgent agent_;
  std::optional<Call> call_;
  std::function<std::optional<Sdp>(const std::string&, const Sdp&)> invite_handler_;
  std::function<void(const std::string&, const std::string&)> message_handler_;
  std::map<std::string, std::function<void(const std::string&)>> presence_handlers_;
};

}  // namespace gmmcs::sip
