#include "sip/hearme.hpp"

#include "common/strings.hpp"

namespace gmmcs::sip {

HearMeService::HearMeService(sim::Host& host, sim::Endpoint broker_stream,
                             std::uint16_t soap_port, std::string name)
    : host_(&host), broker_(broker_stream), name_(std::move(name)), soap_(host, soap_port) {
  soap_.register_operation("JoinConference",
                           [this](const xml::Element& r) { return establish(r); });
  soap_.register_operation("PhoneMembership",
                           [this](const xml::Element& r) { return membership(r); });
  soap_.register_operation("ConferenceControl",
                           [](const xml::Element&) -> Result<xml::Element> {
                             return xml::Element("ConferenceControlResponse");
                           });
}

xgsp::WsdlCi HearMeService::descriptor() const {
  xgsp::WsdlCi d;
  d.service_name = "HearMeConferenceService";
  d.community = "sip";
  d.endpoint = soap_.endpoint();
  d.establish_op = "JoinConference";
  d.membership_op = "PhoneMembership";
  d.control_op = "ConferenceControl";
  return d;
}

std::optional<sim::Endpoint> HearMeService::rendezvous_for(const std::string& session_id) const {
  auto it = bridges_.find(session_id);
  if (it == bridges_.end()) return std::nullopt;
  return it->second->rendezvous->local();
}

std::size_t HearMeService::phones_in(const std::string& session_id) const {
  auto it = bridges_.find(session_id);
  return it == bridges_.end() ? 0 : it->second->phones.size();
}

void HearMeService::fan_out(ConferenceBridge& bridge, const Payload& rtp_wire,
                            sim::Endpoint except) {
  for (const auto& phone : bridge.phones) {
    if (phone == except) continue;
    ++mixed_;
    bridge.rendezvous->send_to(phone, rtp_wire);
  }
}

Result<xml::Element> HearMeService::establish(const xml::Element& request) {
  const xml::Element* invite = request.child("session-invite");
  const xml::Element* session_el =
      invite != nullptr ? invite->child("session") : request.child("session");
  if (session_el == nullptr) return fail<xml::Element>("JoinConference: missing <session>");
  xgsp::Session session = xgsp::Session::from_xml(*session_el);
  const xgsp::MediaStream* audio = session.stream("audio");
  if (audio == nullptr) {
    return fail<xml::Element>("JoinConference: HearMe bridges audio sessions only");
  }
  auto it = bridges_.find(session.id());
  if (it == bridges_.end()) {
    auto bridge = std::make_unique<ConferenceBridge>();
    bridge->topic = audio->topic;
    bridge->rendezvous = std::make_unique<transport::DatagramSocket>(*host_);
    bridge->uplink = std::make_unique<broker::BrokerClient>(
        *host_, broker_,
        broker::BrokerClient::Config{.name = name_ + "-bridge-" + session.id()});
    bridge->uplink->subscribe(audio->topic);
    ConferenceBridge* raw = bridge.get();
    // Phone -> bridge: publish to the session topic and mix to the other
    // phones directly (no round trip through the broker for local legs).
    bridge->rendezvous->on_receive([this, raw](const sim::Datagram& d) {
      raw->uplink->publish(raw->topic, d.payload);
      fan_out(*raw, d.payload, d.src);
    });
    // Topic -> phones (the broker never echoes our own publications).
    bridge->uplink->on_event([this, raw](const broker::Event& ev) {
      fan_out(*raw, ev.payload, sim::Endpoint{});
    });
    it = bridges_.emplace(session.id(), std::move(bridge)).first;
  }
  xml::Element resp("JoinConferenceResponse");
  resp.set_attr("session", session.id());
  xml::Element& rv = resp.add_child("rendezvous");
  rv.set_attr("kind", "audio");
  rv.set_attr("node", std::to_string(it->second->rendezvous->local().node));
  rv.set_attr("port", std::to_string(it->second->rendezvous->local().port));
  return resp;
}

Result<xml::Element> HearMeService::membership(const xml::Element& request) {
  std::string session_id = request.attr("session");
  auto it = bridges_.find(session_id);
  if (it == bridges_.end()) return fail<xml::Element>("PhoneMembership: session not bridged");
  auto node = parse_u32(request.attr("node"));
  auto port = parse_u16(request.attr("port"));
  if (!node || !port) return fail<xml::Element>("PhoneMembership: malformed endpoint");
  sim::Endpoint phone{static_cast<sim::NodeId>(*node), *port};
  if (request.attr("action") == "leave") {
    std::erase(it->second->phones, phone);
  } else if (std::find(it->second->phones.begin(), it->second->phones.end(), phone) ==
             it->second->phones.end()) {
    it->second->phones.push_back(phone);
  }
  xml::Element resp("PhoneMembershipResponse");
  resp.set_attr("phones", std::to_string(it->second->phones.size()));
  return resp;
}

HearMeService::Phone::Phone(sim::Host& host, HearMeService& service, std::string number)
    : service_(&service), number_(std::move(number)), socket_(host) {
  socket_.on_receive([this](const sim::Datagram& d) {
    ++received_;
    if (handler_) handler_(d);
  });
}

bool HearMeService::Phone::dial(const std::string& session_id) {
  auto bridge = service_->rendezvous_for(session_id);
  if (!bridge) return false;
  session_id_ = session_id;
  bridge_ = bridge;
  // Register directly with the community (a real phone would do this via
  // HearMe's own SIP signaling; the membership list is what matters).
  auto it = service_->bridges_.find(session_id);
  auto& phones = it->second->phones;
  if (std::find(phones.begin(), phones.end(), socket_.local()) == phones.end()) {
    phones.push_back(socket_.local());
  }
  return true;
}

void HearMeService::Phone::hang_up() {
  if (session_id_.empty()) return;
  auto it = service_->bridges_.find(session_id_);
  if (it != service_->bridges_.end()) std::erase(it->second->phones, socket_.local());
  session_id_.clear();
  bridge_.reset();
}

void HearMeService::Phone::send_audio(Payload rtp_wire) {
  if (bridge_) socket_.send_to(*bridge_, std::move(rtp_wire));
}

void HearMeService::Phone::on_audio(std::function<void(const sim::Datagram&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace gmmcs::sip
