// HearMe community: the SIP-based Voice-over-IP system whose web services
// the paper reports building (§3.2: "We have built web-services of HearMe
// [6], a SIP based Voice-over-IP system. Similar interface can also be
// implemented based on other SIP or H.323 collaboration systems.")
//
// HearMe is an audio-conference bridge: unicast VoIP phones dial in and
// the bridge fans audio out to every other phone. Integration with
// Global-MMCS goes through the same WSDL-CI shape as Admire — establish
// returns the bridge's rendezvous, membership registers phones — but the
// community behind the interface is entirely different (audio-only,
// unicast fan-out, no multicast), which is exactly the genericity the
// WSDL-CI design claims.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/client.hpp"
#include "soap/soap.hpp"
#include "transport/datagram_socket.hpp"
#include "xgsp/session.hpp"
#include "xgsp/wsdl_ci.hpp"

namespace gmmcs::sip {

class HearMeService {
 public:
  static constexpr std::uint16_t kSoapPort = 8090;

  HearMeService(sim::Host& host, sim::Endpoint broker_stream,
                std::uint16_t soap_port = kSoapPort, std::string name = "hearme-voip");

  /// WSDL-CI descriptor (community kind "sip", audio-only operations).
  [[nodiscard]] xgsp::WsdlCi descriptor() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Endpoint soap_endpoint() const { return soap_.endpoint(); }

  /// The audio rendezvous for a bridged session (phones send RTP here).
  [[nodiscard]] std::optional<sim::Endpoint> rendezvous_for(const std::string& session_id) const;
  [[nodiscard]] std::size_t phones_in(const std::string& session_id) const;
  [[nodiscard]] std::uint64_t packets_mixed() const { return mixed_; }

  /// A dialed-in VoIP phone: unicast RTP both ways.
  class Phone {
   public:
    Phone(sim::Host& host, HearMeService& service, std::string number);
    /// Dials into a bridged session; returns false if not bridged.
    bool dial(const std::string& session_id);
    void hang_up();
    void send_audio(Payload rtp_wire);
    void on_audio(std::function<void(const sim::Datagram&)> handler);
    [[nodiscard]] std::uint64_t packets_received() const { return received_; }
    [[nodiscard]] const std::string& number() const { return number_; }

   private:
    HearMeService* service_;
    std::string number_;
    std::string session_id_;
    transport::DatagramSocket socket_;
    std::optional<sim::Endpoint> bridge_;
    std::uint64_t received_ = 0;
    std::function<void(const sim::Datagram&)> handler_;
  };

 private:
  friend class Phone;

  struct ConferenceBridge {
    std::string topic;
    std::unique_ptr<transport::DatagramSocket> rendezvous;  // phones dial here
    std::unique_ptr<broker::BrokerClient> uplink;           // to gmmcs topic
    std::vector<sim::Endpoint> phones;                      // unicast fan-out list
  };

  [[nodiscard]] Result<xml::Element> establish(const xml::Element& request);
  [[nodiscard]] Result<xml::Element> membership(const xml::Element& request);
  void fan_out(ConferenceBridge& bridge, const Payload& rtp_wire, sim::Endpoint except);

  sim::Host* host_;
  sim::Endpoint broker_;
  std::string name_;
  soap::SoapServer soap_;
  std::map<std::string, std::unique_ptr<ConferenceBridge>> bridges_;  // by session id
  std::uint64_t mixed_ = 0;
};

}  // namespace gmmcs::sip
