#include "sip/endpoint.hpp"

namespace gmmcs::sip {

SipEndpoint::SipEndpoint(sim::Host& host, std::string uri, sim::Endpoint proxy)
    : uri_(std::move(uri)), proxy_(proxy), agent_(host, /*port=*/0) {
  agent_.on_request(
      [this](const SipMessage& req, const SipAgent::Responder& respond) { handle(req, respond); });
}

void SipEndpoint::register_with_proxy(std::function<void(bool)> cb) {
  SipMessage reg = SipMessage::request("REGISTER", uri_, uri_, uri_, agent_.new_call_id(),
                                       agent_.next_cseq());
  reg.set_header("Contact", make_contact(agent_.endpoint()));
  agent_.send_request(proxy_, std::move(reg), [cb = std::move(cb)](const SipMessage& resp) {
    cb(resp.status == 200);
  });
}

void SipEndpoint::unregister(std::function<void(bool)> cb) {
  SipMessage reg = SipMessage::request("REGISTER", uri_, uri_, uri_, agent_.new_call_id(),
                                       agent_.next_cseq());
  reg.set_header("Contact", make_contact(agent_.endpoint()));
  reg.set_header("Expires", "0");
  agent_.send_request(proxy_, std::move(reg), [cb = std::move(cb)](const SipMessage& resp) {
    cb(resp.status == 200);
  });
}

void SipEndpoint::invite(const std::string& target_uri, const Sdp& offer,
                         std::function<void(bool, const Call&)> cb) {
  std::string call_id = agent_.new_call_id();
  SipMessage inv =
      SipMessage::request("INVITE", target_uri, uri_, target_uri, call_id, agent_.next_cseq());
  inv.set_header("Contact", make_contact(agent_.endpoint()));
  inv.set_header("Content-Type", "application/sdp");
  inv.body = offer.serialize();
  std::uint32_t cseq = inv.cseq_number();
  agent_.send_request(
      proxy_, std::move(inv),
      [this, cb = std::move(cb), call_id, target_uri, cseq](const SipMessage& resp) {
        if (resp.status < 200) return;  // provisional
        Call call;
        call.call_id = call_id;
        call.peer_uri = target_uri;
        if (resp.status == 200) {
          auto sdp = Sdp::parse(resp.body);
          if (sdp.ok()) call.remote_sdp = sdp.value();
          call.established = true;
          call_ = call;
          // ACK completes the three-way handshake (sent through the proxy).
          SipMessage ack =
              SipMessage::request("ACK", target_uri, uri_, target_uri, call_id, cseq);
          agent_.send_request(proxy_, std::move(ack));
        }
        cb(resp.status == 200, call);
      });
}

void SipEndpoint::reinvite(const Sdp& new_offer, std::function<void(bool, const Call&)> cb) {
  if (!call_) {
    cb(false, Call{});
    return;
  }
  SipMessage inv = SipMessage::request("INVITE", call_->peer_uri, uri_, call_->peer_uri,
                                       call_->call_id, agent_.next_cseq());
  inv.set_header("Contact", make_contact(agent_.endpoint()));
  inv.set_header("Content-Type", "application/sdp");
  inv.body = new_offer.serialize();
  std::uint32_t cseq = inv.cseq_number();
  std::string peer = call_->peer_uri;
  std::string call_id = call_->call_id;
  agent_.send_request(proxy_, std::move(inv),
                      [this, cb = std::move(cb), peer, call_id, cseq](const SipMessage& resp) {
                        if (resp.status < 200) return;
                        if (resp.status == 200 && call_) {
                          auto sdp = Sdp::parse(resp.body);
                          if (sdp.ok()) call_->remote_sdp = sdp.value();
                          SipMessage ack =
                              SipMessage::request("ACK", peer, uri_, peer, call_id, cseq);
                          agent_.send_request(proxy_, std::move(ack));
                        }
                        cb(resp.status == 200, call_ ? *call_ : Call{});
                      });
}

void SipEndpoint::bye(std::function<void(bool)> cb) {
  if (!call_) {
    cb(false);
    return;
  }
  SipMessage bye = SipMessage::request("BYE", call_->peer_uri, uri_, call_->peer_uri,
                                       call_->call_id, agent_.next_cseq());
  agent_.send_request(proxy_, std::move(bye), [this, cb = std::move(cb)](const SipMessage& resp) {
    if (resp.status == 200) call_.reset();
    cb(resp.status == 200);
  });
}

void SipEndpoint::on_invite(
    std::function<std::optional<Sdp>(const std::string&, const Sdp&)> h) {
  invite_handler_ = std::move(h);
}

void SipEndpoint::send_message(const std::string& target_uri, const std::string& text,
                               std::function<void(bool)> cb) {
  SipMessage msg = SipMessage::request("MESSAGE", target_uri, uri_, target_uri,
                                       agent_.new_call_id(), agent_.next_cseq());
  msg.set_header("Contact", make_contact(agent_.endpoint()));
  msg.set_header("Content-Type", "text/plain");
  msg.body = text;
  agent_.send_request(proxy_, std::move(msg), [cb = std::move(cb)](const SipMessage& resp) {
    cb(resp.status == 200);
  });
}

void SipEndpoint::on_message(
    std::function<void(const std::string&, const std::string&)> h) {
  message_handler_ = std::move(h);
}

void SipEndpoint::subscribe_presence(const std::string& target_uri,
                                     std::function<void(const std::string&)> h) {
  presence_handlers_[target_uri] = std::move(h);
  SipMessage sub = SipMessage::request("SUBSCRIBE", target_uri, uri_, target_uri,
                                       agent_.new_call_id(), agent_.next_cseq());
  sub.set_header("Contact", make_contact(agent_.endpoint()));
  sub.set_header("Event", "presence");
  agent_.send_request(proxy_, std::move(sub), [](const SipMessage&) {});
}

void SipEndpoint::handle(const SipMessage& req, const SipAgent::Responder& respond) {
  if (req.method == "INVITE") {
    auto offer = Sdp::parse(req.body);
    if (!invite_handler_ || !offer.ok()) {
      respond(SipMessage::response(req, 486, "Busy Here"));
      return;
    }
    auto answer = invite_handler_(req.from_uri(), offer.value());
    if (!answer) {
      respond(SipMessage::response(req, 486, "Busy Here"));
      return;
    }
    Call call;
    call.call_id = req.call_id();
    call.peer_uri = req.from_uri();
    call.remote_sdp = offer.value();
    call.established = true;
    call_ = call;
    SipMessage ok = SipMessage::response(req, 200, "OK");
    ok.set_header("Contact", make_contact(agent_.endpoint()));
    ok.set_header("Content-Type", "application/sdp");
    ok.body = answer->serialize();
    respond(ok);
    return;
  }
  if (req.method == "ACK") return;  // dialog confirmed; nothing to send
  if (req.method == "BYE") {
    call_.reset();
    respond(SipMessage::response(req, 200, "OK"));
    return;
  }
  if (req.method == "MESSAGE") {
    if (message_handler_) message_handler_(req.from_uri(), req.body);
    respond(SipMessage::response(req, 200, "OK"));
    return;
  }
  if (req.method == "NOTIFY") {
    // NOTIFYs carry the watched AOR in From.
    auto it = presence_handlers_.find(req.from_uri());
    if (it != presence_handlers_.end()) it->second(req.body);
    respond(SipMessage::response(req, 200, "OK"));
    return;
  }
  respond(SipMessage::response(req, 501, "Not Implemented"));
}

}  // namespace gmmcs::sip
