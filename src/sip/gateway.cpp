#include "sip/gateway.hpp"

#include "common/strings.hpp"
#include "media/codec.hpp"

namespace gmmcs::sip {

SipGateway::SipGateway(sim::Host& host, xgsp::SessionServer& sessions,
                       sim::Endpoint broker_stream, std::uint16_t port)
    : host_(&host), sessions_(&sessions), broker_(broker_stream), agent_(host, port) {
  agent_.on_request(
      [this](const SipMessage& req, const SipAgent::Responder& respond) { handle(req, respond); });
}

void SipGateway::handle(const SipMessage& req, const SipAgent::Responder& respond) {
  if (req.method == "INVITE") {
    handle_invite(req, respond);
  } else if (req.method == "BYE") {
    handle_bye(req, respond);
  } else if (req.method == "ACK") {
    // dialog confirmed
  } else {
    respond(SipMessage::response(req, 501, "Not Implemented"));
  }
}

SipGateway::Bridge& SipGateway::bridge_for(const xgsp::Session& session) {
  auto it = bridges_.find(session.id());
  if (it == bridges_.end()) {
    it = bridges_.emplace(session.id(), Bridge{}).first;
    for (const auto& stream : session.streams()) {
      it->second.proxies.emplace(
          stream.kind,
          std::make_unique<broker::RtpProxy>(
              *host_, broker_,
              broker::RtpProxy::Config{.topic = stream.topic,
                                       .name = "sip-gw-" + session.id() + "-" + stream.kind}));
    }
  }
  return it->second;
}

void SipGateway::handle_invite(const SipMessage& req, const SipAgent::Responder& respond) {
  ++invites_;
  // sip:conf-<id>@gmmcs
  auto uri = SipUri::parse(req.request_uri);
  if (!uri.ok() || !starts_with(uri.value().user, "conf-")) {
    respond(SipMessage::response(req, 404, "Unknown Conference"));
    return;
  }
  std::string session_id = uri.value().user.substr(5);
  auto offer = Sdp::parse(req.body);
  if (!offer.ok()) {
    respond(SipMessage::response(req, 400, "Bad SDP"));
    return;
  }
  // A re-INVITE within an existing dialog renegotiates media: drop the
  // old RTP registrations and fall through to register the new offer.
  auto existing = calls_.find(req.call_id());
  if (existing != calls_.end()) {
    auto bit = bridges_.find(existing->second.session_id);
    if (bit != bridges_.end()) {
      for (const auto& [kind, ep] : existing->second.receiver_regs) {
        auto pit = bit->second.proxies.find(kind);
        if (pit != bit->second.proxies.end()) pit->second->remove_receiver(ep);
      }
    }
    calls_.erase(existing);
  } else {
    // First INVITE: the SIP user joins the XGSP session.
    std::string user = req.from_uri();
    xgsp::Message join_reply =
        sessions_->handle(xgsp::Message::join(session_id, user, xgsp::EndpointKind::kSip));
    if (!join_reply.ok) {
      respond(SipMessage::response(req, 404, "No Such Session"));
      return;
    }
  }
  xgsp::Session* session_ptr = sessions_->find(session_id);
  if (session_ptr == nullptr) {
    respond(SipMessage::response(req, 404, "No Such Session"));
    return;
  }
  const xgsp::Session& session = *session_ptr;
  Bridge& bridge = bridge_for(session);

  CallLeg leg;
  leg.session_id = session_id;
  leg.user = req.from_uri();

  // Answer SDP: for each offered media kind that the session carries,
  // register the caller's RTP endpoint with the topic proxy and expose
  // the proxy's ingress as our media address.
  Sdp answer;
  answer.origin_user = "gmmcs-gw";
  answer.address = host_->id();
  for (const auto& m : offer.value().media) {
    auto pit = bridge.proxies.find(m.kind);
    if (pit == bridge.proxies.end()) continue;  // session has no such stream
    sim::Endpoint caller_rtp{offer.value().address, m.port};
    pit->second->add_receiver(caller_rtp);
    leg.receiver_regs[m.kind] = caller_rtp;
    SdpMedia am;
    am.kind = m.kind;
    am.port = pit->second->rtp_ingress().port;
    am.payload_type = m.payload_type;
    am.codec = m.codec;
    answer.media.push_back(am);
  }
  calls_[req.call_id()] = std::move(leg);

  SipMessage ok = SipMessage::response(req, 200, "OK");
  ok.set_header("Contact", make_contact(agent_.endpoint()));
  ok.set_header("Content-Type", "application/sdp");
  ok.body = answer.serialize();
  respond(ok);
}

void SipGateway::handle_bye(const SipMessage& req, const SipAgent::Responder& respond) {
  auto it = calls_.find(req.call_id());
  if (it == calls_.end()) {
    respond(SipMessage::response(req, 481, "Call/Transaction Does Not Exist"));
    return;
  }
  CallLeg& leg = it->second;
  auto bit = bridges_.find(leg.session_id);
  if (bit != bridges_.end()) {
    for (const auto& [kind, ep] : leg.receiver_regs) {
      auto pit = bit->second.proxies.find(kind);
      if (pit != bit->second.proxies.end()) pit->second->remove_receiver(ep);
    }
  }
  sessions_->handle(xgsp::Message::leave(leg.session_id, leg.user));
  calls_.erase(it);
  respond(SipMessage::response(req, 200, "OK"));
}

}  // namespace gmmcs::sip
