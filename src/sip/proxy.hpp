// SIP Registrar + stateful Proxy (+ presence agent).
//
// The paper's SIP Servers include "a SIP Proxy, SIP Registrar and SIP
// Gateway". This element combines registrar and proxy, as deployments of
// the era did:
//
//  * REGISTER stores the binding  AOR -> contact endpoint  (and fires
//    presence NOTIFYs to watchers);
//  * other requests are routed: a matching domain route wins (conference
//    URIs to the gateway, room URIs to the chat server), otherwise the
//    registrar bindings, otherwise 404;
//  * responses are relayed back statefully.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sip/agent.hpp"

namespace gmmcs::sip {

class SipProxy {
 public:
  SipProxy(sim::Host& host, std::uint16_t port = SipAgent::kSipPort);

  /// Routes requests whose URI host ends with `host_suffix` to `target`
  /// (e.g. "gmmcs" -> the SIP/XGSP gateway agent).
  void add_domain_route(const std::string& host_suffix, sim::Endpoint target);

  [[nodiscard]] std::optional<sim::Endpoint> lookup(const std::string& aor) const;
  [[nodiscard]] std::size_t registrations() const { return bindings_.size(); }
  [[nodiscard]] sim::Endpoint endpoint() const { return agent_.endpoint(); }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  void handle(const SipMessage& req, const SipAgent::Responder& respond);
  void handle_register(const SipMessage& req, const SipAgent::Responder& respond);
  void handle_subscribe(const SipMessage& req, const SipAgent::Responder& respond);
  void forward(const SipMessage& req, sim::Endpoint target,
               const SipAgent::Responder& respond);
  void notify_watchers(const std::string& aor, bool online);

  SipAgent agent_;
  std::map<std::string, sim::Endpoint> bindings_;
  std::vector<std::pair<std::string, sim::Endpoint>> domain_routes_;
  /// presence: watched AOR -> watcher contact endpoints.
  std::map<std::string, std::vector<sim::Endpoint>> watchers_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace gmmcs::sip
