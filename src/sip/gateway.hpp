// SIP Gateway: translates SIP signaling into XGSP and bridges RTP onto
// broker topics (paper §3.2).
//
// "The SIP Servers including a SIP Proxy, SIP Registrar and SIP Gateway
// create a similar SIP domain for SIP terminals and perform SIP
// translation."
//
// Conference URIs have the form  sip:conf-<sessionid>@gmmcs . An INVITE
// becomes an XGSP JoinSession; the SDP answer points the caller's media
// at per-stream RtpProxies on the gateway host, which publish/subscribe
// the session's broker topics; a BYE becomes LeaveSession.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "broker/rtp_proxy.hpp"
#include "sip/agent.hpp"
#include "sip/sdp.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::sip {

class SipGateway {
 public:
  static constexpr std::uint16_t kGatewayPort = 5070;

  SipGateway(sim::Host& host, xgsp::SessionServer& sessions, sim::Endpoint broker_stream,
             std::uint16_t port = kGatewayPort);

  [[nodiscard]] sim::Endpoint endpoint() const { return agent_.endpoint(); }
  [[nodiscard]] std::size_t active_calls() const { return calls_.size(); }
  [[nodiscard]] std::uint64_t invites_handled() const { return invites_; }

  /// Builds the conference URI for an XGSP session id.
  static std::string conference_uri(const std::string& session_id) {
    return "sip:conf-" + session_id + "@gmmcs";
  }

 private:
  /// Per-session media bridge: one RtpProxy per stream kind.
  struct Bridge {
    std::map<std::string, std::unique_ptr<broker::RtpProxy>> proxies;
  };
  struct CallLeg {
    std::string session_id;
    std::string user;
    /// The caller's RTP receive endpoints per media kind (for cleanup).
    std::map<std::string, sim::Endpoint> receiver_regs;
  };

  void handle(const SipMessage& req, const SipAgent::Responder& respond);
  void handle_invite(const SipMessage& req, const SipAgent::Responder& respond);
  void handle_bye(const SipMessage& req, const SipAgent::Responder& respond);
  Bridge& bridge_for(const xgsp::Session& session);

  sim::Host* host_;
  xgsp::SessionServer* sessions_;
  sim::Endpoint broker_;
  SipAgent agent_;
  std::map<std::string, Bridge> bridges_;   // session id -> media bridge
  std::map<std::string, CallLeg> calls_;    // Call-ID -> leg
  std::uint64_t invites_ = 0;
};

}  // namespace gmmcs::sip
