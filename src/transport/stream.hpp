// TCP-like reliable, ordered, message-oriented streams over the simulator.
//
// Broker control links, SOAP/HTTP, SIP, RTSP and H.323 call signaling all
// run over these. The abstraction is message-oriented (each send() arrives
// as one on_message()) because every protocol in this system frames its
// messages anyway; the underlying simulated segments are marked `reliable`
// so they are exempt from random loss but still pay NIC serialization and
// queueing like everything else.
//
// Addressing mirrors real TCP: the connector binds an ephemeral port, the
// acceptor stays on the listener's well-known port, and the listener
// demultiplexes inbound segments by the client endpoint. Keeping the
// 4-tuple constant is what lets the stateful Firewall model admit reply
// traffic exactly like a real firewall admits established TCP flows.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/bytes.hpp"
#include "common/payload.hpp"
#include "sim/network.hpp"

namespace gmmcs::transport {

class StreamConnection;
class StreamListener;
using StreamConnectionPtr = std::shared_ptr<StreamConnection>;

/// Handshake behavior for StreamConnection::connect.
struct ConnectOptions {
  /// SYN retransmission interval while the handshake is outstanding.
  /// Zero disables the timer entirely (the historical behavior: a SYN
  /// into a dead host parks the connection until the caller's own
  /// watchdog gives up on it).
  SimDuration syn_retry{0};
  /// Retransmissions after the initial SYN before the connection gives up
  /// and closes itself (firing on_close, so reconnect policies see a
  /// normal failure).
  int max_syn_retries = 5;
};

/// One end of an established (or connecting) stream. Hold the shared_ptr
/// for as long as the connection should live; dropping the last reference
/// closes it.
class StreamConnection : public std::enable_shared_from_this<StreamConnection> {
 public:
  ~StreamConnection();
  StreamConnection(const StreamConnection&) = delete;
  StreamConnection& operator=(const StreamConnection&) = delete;

  /// Queues a message; delivered reliably and in order. Messages sent
  /// before the handshake completes are buffered. The payload handle is
  /// shared (a fresh frame adopts, another Payload refcounts); the only
  /// byte copy on the path is the kData segment framing at egress.
  void send(Payload message);
  void send(std::string_view text) { send(Payload(to_bytes(text))); }

  /// Receive callback; replaces any previous one. Messages that arrived
  /// before a handler was set are replayed to the new handler. The message
  /// is a zero-copy slice of the arriving segment.
  void on_message(std::function<void(const Payload&)> handler);
  /// Called once when the peer closes or the connection fails.
  void on_close(std::function<void()> handler);
  /// Called once when the handshake completes (connector side; acceptor
  /// connections are born established).
  void on_connect(std::function<void()> handler);

  void close();

  [[nodiscard]] bool established() const { return state_ == State::kOpen; }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  [[nodiscard]] sim::Endpoint local() const { return local_; }
  [[nodiscard]] sim::Endpoint remote() const { return remote_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }

  /// Initiates a connection to a listener at `to`. The returned connection
  /// buffers sends until established; use on_connect() to sequence logic.
  /// With opts.syn_retry > 0 the SYN is retransmitted until answered —
  /// covering a lost SYN or SYN-ACK, and a listener host that restarts
  /// while the handshake is in flight — and the connection closes itself
  /// after max_syn_retries unanswered attempts.
  static StreamConnectionPtr connect(sim::Host& from, sim::Endpoint to,
                                     ConnectOptions opts = {});

 private:
  friend class StreamListener;
  enum class State { kConnecting, kOpen, kClosed };

  StreamConnection(sim::Host& host, State state);

  void handle(const sim::Datagram& d);
  void deliver_or_buffer(Payload payload);
  void flush_pending();
  void do_close(bool notify_peer);
  void arm_syn_timer();
  void cancel_syn_timer();

  sim::Host* host_;
  State state_;
  sim::Endpoint local_{};
  sim::Endpoint remote_{};
  /// Connector side owns an ephemeral port; acceptor side shares the
  /// listener's port and is demultiplexed by the listener.
  bool owns_port_ = false;
  StreamListener* owner_ = nullptr;  // acceptor side: for demux cleanup
  std::function<void(const Payload&)> message_handler_;
  std::function<void()> close_handler_;
  std::function<void()> connect_handler_;
  std::deque<Payload> outbox_;  // buffered until established
  std::deque<Payload> inbox_;   // buffered until a handler is set
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  ConnectOptions opts_;
  sim::TaskId syn_timer_ = 0;
  int syn_attempts_ = 0;
};

/// Accepts incoming stream connections on a fixed port and demultiplexes
/// segments of accepted connections by client endpoint.
class StreamListener {
 public:
  /// port 0 picks any free listening port (see local()).
  StreamListener(sim::Host& host, std::uint16_t port);
  ~StreamListener();
  StreamListener(const StreamListener&) = delete;
  StreamListener& operator=(const StreamListener&) = delete;

  /// Called with each newly accepted (already established) connection.
  /// The handler must keep the pointer or the connection dies.
  void on_accept(std::function<void(StreamConnectionPtr)> handler);

  [[nodiscard]] sim::Endpoint local() const { return {host_->id(), port_}; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::size_t active() const { return conns_.size(); }

 private:
  friend class StreamConnection;
  void handle(const sim::Datagram& d);
  void forget(sim::Endpoint client) { conns_.erase(client); }

  sim::Host* host_;
  std::uint16_t port_;
  std::function<void(StreamConnectionPtr)> handler_;
  std::uint64_t accepted_ = 0;
  std::map<sim::Endpoint, std::weak_ptr<StreamConnection>> conns_;
};

}  // namespace gmmcs::transport
