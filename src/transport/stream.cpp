#include "transport/stream.hpp"

#include <utility>

namespace gmmcs::transport {

namespace {
// Segment types on the wire.
constexpr std::uint8_t kSyn = 1;
constexpr std::uint8_t kSynAck = 2;
constexpr std::uint8_t kData = 3;
constexpr std::uint8_t kFin = 4;

Bytes control_segment(std::uint8_t type) {
  return Bytes{type};
}

// The one residual byte copy on the stream path: a kData segment prepends
// its type byte, so the message is framed into a fresh buffer at egress.
// The receive side undoes it for free (a slice); the best-effort media
// fan-out never comes through here.
Bytes data_segment(const Payload& message) {
  Bytes out;
  out.reserve(message.size() + 1);
  out.push_back(kData);
  out.insert(out.end(), message.data(), message.data() + message.size());
  return out;
}
}  // namespace

StreamConnection::StreamConnection(sim::Host& host, State state)
    : host_(&host), state_(state) {}

StreamConnection::~StreamConnection() {
  close_handler_ = nullptr;  // never call back out into user code from a destructor
  if (state_ != State::kClosed) do_close(/*notify_peer=*/true);
}

StreamConnectionPtr StreamConnection::connect(sim::Host& from, sim::Endpoint to,
                                              ConnectOptions opts) {
  auto conn = StreamConnectionPtr(new StreamConnection(from, State::kConnecting));
  conn->remote_ = to;
  conn->owns_port_ = true;
  conn->opts_ = opts;
  std::uint16_t port = from.bind_ephemeral(
      [raw = conn.get()](const sim::Datagram& d) { raw->handle(d); });
  conn->local_ = sim::Endpoint{from.id(), port};
  from.send(to, port, control_segment(kSyn), /*reliable=*/true);
  conn->arm_syn_timer();
  return conn;
}

void StreamConnection::arm_syn_timer() {
  if (opts_.syn_retry.ns() <= 0) return;
  // The raw `this` capture is safe: every path that destroys or closes the
  // connection goes through do_close(), which cancels the timer.
  syn_timer_ = host_->loop().schedule_after(opts_.syn_retry, [this] {
    syn_timer_ = 0;
    if (state_ != State::kConnecting) return;
    if (syn_attempts_ >= opts_.max_syn_retries) {
      do_close(/*notify_peer=*/false);  // handshake gave up: surface on_close
      return;
    }
    ++syn_attempts_;
    host_->send(remote_, local_.port, control_segment(kSyn), /*reliable=*/true);
    arm_syn_timer();
  });
}

void StreamConnection::cancel_syn_timer() {
  if (syn_timer_ != 0) {
    host_->loop().cancel(syn_timer_);
    syn_timer_ = 0;
  }
}

void StreamConnection::handle(const sim::Datagram& d) {
  auto self = shared_from_this();  // keep alive through user callbacks
  if (d.payload.empty() || d.src != remote_) return;
  switch (d.payload[0]) {
    case kSynAck:
      if (state_ == State::kConnecting) {
        state_ = State::kOpen;
        cancel_syn_timer();
        flush_pending();
        if (connect_handler_) {
          auto h = connect_handler_;
          h();
        }
      }
      break;
    case kSyn:
      // Acceptor side: our SYN-ACK was lost (or is still in flight) and the
      // connector retransmitted. Re-acknowledge so the handshake completes.
      if (state_ == State::kOpen && !owns_port_) {
        host_->send(remote_, local_.port, control_segment(kSynAck), /*reliable=*/true);
      }
      break;
    case kData:
      if (state_ == State::kClosed) break;
      ++received_;
      // Zero-copy: the delivered message is a slice of the arriving
      // segment, sharing the sender's buffer.
      deliver_or_buffer(d.payload.slice(1));
      break;
    case kFin:
      if (state_ != State::kClosed) do_close(/*notify_peer=*/false);
      break;
    default:
      break;  // unknown segment: drop
  }
}

void StreamConnection::deliver_or_buffer(Payload payload) {
  if (message_handler_) {
    // Invoke a copy: the callback may legitimately replace the handler
    // (e.g. the proxy swaps in its relay handler after the CONNECT line),
    // which must not destroy the closure currently executing.
    auto handler = message_handler_;
    handler(payload);
  } else {
    inbox_.push_back(std::move(payload));
  }
}

void StreamConnection::send(Payload message) {
  if (state_ == State::kClosed) return;
  if (state_ == State::kConnecting) {
    outbox_.push_back(std::move(message));
    return;
  }
  ++sent_;
  host_->send(remote_, local_.port, data_segment(message), /*reliable=*/true);
}

void StreamConnection::flush_pending() {
  while (!outbox_.empty()) {
    Payload m = std::move(outbox_.front());
    outbox_.pop_front();
    ++sent_;
    host_->send(remote_, local_.port, data_segment(m), /*reliable=*/true);
  }
}

void StreamConnection::on_message(std::function<void(const Payload&)> handler) {
  message_handler_ = std::move(handler);
  while (message_handler_ && !inbox_.empty()) {
    Payload m = std::move(inbox_.front());
    inbox_.pop_front();
    auto h = message_handler_;  // see deliver_or_buffer
    h(m);
  }
}

void StreamConnection::on_close(std::function<void()> handler) {
  close_handler_ = std::move(handler);
  if (state_ == State::kClosed && close_handler_) close_handler_();
}

void StreamConnection::on_connect(std::function<void()> handler) {
  connect_handler_ = std::move(handler);
  if (state_ == State::kOpen && connect_handler_) connect_handler_();
}

void StreamConnection::close() {
  if (state_ != State::kClosed) do_close(/*notify_peer=*/true);
}

void StreamConnection::do_close(bool notify_peer) {
  State prev = state_;
  state_ = State::kClosed;
  cancel_syn_timer();
  if (notify_peer && prev == State::kOpen) {
    host_->send(remote_, local_.port, control_segment(kFin), /*reliable=*/true);
  }
  if (owns_port_) host_->unbind(local_.port);
  if (owner_ != nullptr) {
    owner_->forget(remote_);
    owner_ = nullptr;
  }
  if (close_handler_) {
    auto h = close_handler_;
    h();
  }
}

namespace {
/// port 0 = "any free listening port": scan a conventional range.
std::uint16_t resolve_listen_port(sim::Host& host, std::uint16_t requested) {
  if (requested != 0) return requested;
  std::uint16_t p = 20000;
  while (host.is_bound(p)) ++p;
  return p;
}
}  // namespace

StreamListener::StreamListener(sim::Host& host, std::uint16_t port)
    : host_(&host), port_(resolve_listen_port(host, port)) {
  host_->bind(port_, [this](const sim::Datagram& d) { handle(d); });
}

StreamListener::~StreamListener() {
  host_->unbind(port_);
  // Detach surviving connections so their close doesn't touch us.
  for (auto& [ep, weak] : conns_) {
    if (auto conn = weak.lock()) conn->owner_ = nullptr;
  }
}

void StreamListener::on_accept(std::function<void(StreamConnectionPtr)> handler) {
  handler_ = std::move(handler);
}

void StreamListener::handle(const sim::Datagram& d) {
  // Existing connection? Demultiplex by client endpoint.
  if (auto it = conns_.find(d.src); it != conns_.end()) {
    if (auto conn = it->second.lock()) {
      conn->handle(d);
    } else {
      conns_.erase(it);
    }
    return;
  }
  if (d.payload.empty() || d.payload[0] != kSyn) return;
  auto conn = StreamConnectionPtr(new StreamConnection(*host_, StreamConnection::State::kOpen));
  conn->remote_ = d.src;
  conn->local_ = local();
  conn->owner_ = this;
  conns_[d.src] = conn;
  host_->send(d.src, port_, control_segment(kSynAck), /*reliable=*/true);
  ++accepted_;
  if (handler_) handler_(std::move(conn));
}

}  // namespace gmmcs::transport
