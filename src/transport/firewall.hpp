// Firewall / NAT model and HTTP-style proxy traversal.
//
// The paper (§2.3) highlights that NaradaBrokering can reach clients behind
// firewalls and proxies. We model the two mechanisms that matter:
//
//  * a stateful firewall on a host: unsolicited inbound traffic is blocked,
//    but replies to flows the host itself initiated are allowed
//    (connection tracking), with policy knobs matching common 2003-era
//    configurations (UDP blocked, outbound TCP allowed);
//  * a ProxyServer that relays stream connections: a client behind a
//    firewall opens an *outbound* stream to the proxy, names the real
//    target, and the proxy pipes the two streams together — the same shape
//    as HTTP CONNECT tunneling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/network.hpp"
#include "transport/stream.hpp"

namespace gmmcs::transport {

struct FirewallRules {
  /// Allow unsolicited inbound datagrams (UDP). Usually false.
  bool allow_inbound_datagrams = false;
  /// Allow inbound stream handshakes (TCP SYN). Usually false for clients.
  bool allow_inbound_streams = false;
};

/// Installs a stateful packet filter on a host. Lives as long as the
/// firewall should be active; removes its hooks on destruction.
class GMMCS_PINNED("a firewall is installed on a host for the host's whole lifetime") Firewall {
 public:
  Firewall(sim::Host& host, FirewallRules rules);
  ~Firewall();
  Firewall(const Firewall&) = delete;
  Firewall& operator=(const Firewall&) = delete;

  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }
  [[nodiscard]] std::uint64_t passed() const { return passed_; }

 private:
  [[nodiscard]] bool admit(const sim::Datagram& d);

  sim::Host* host_;
  FirewallRules rules_;
  /// Flows the host initiated: (local port, remote endpoint).
  std::set<std::pair<std::uint16_t, sim::Endpoint>> outbound_flows_;
  std::uint64_t blocked_ = 0;
  std::uint64_t passed_ = 0;
};

/// Stream relay: accepts connections whose first message is
/// "CONNECT <node>:<port>" and pipes all further messages to/from the
/// target. Because streams are ordered, clients may start sending payload
/// immediately after the CONNECT line.
class GMMCS_PINNED("the proxy lives for the run and owns both legs of every tunnel in pairs_") ProxyServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 3128;

  ProxyServer(sim::Host& host, std::uint16_t port = kDefaultPort);

  [[nodiscard]] sim::Endpoint endpoint() const { return listener_.local(); }
  [[nodiscard]] std::size_t active_tunnels() const { return tunnels_; }
  [[nodiscard]] std::uint64_t relayed_messages() const { return relayed_; }

 private:
  void accept(StreamConnectionPtr client);

  sim::Host* host_;
  StreamListener listener_;
  std::size_t tunnels_ = 0;
  std::uint64_t relayed_ = 0;
  // Keep tunnel connection pairs alive.
  std::vector<std::pair<StreamConnectionPtr, StreamConnectionPtr>> pairs_;
};

/// Opens a stream to `target` tunneled through `proxy`. The returned
/// connection behaves like a direct stream to the target.
StreamConnectionPtr connect_via_proxy(sim::Host& from, sim::Endpoint proxy,
                                      sim::Endpoint target);

}  // namespace gmmcs::transport
