// UDP-like socket over the simulated network.
//
// RTP media, broker UDP client profiles and the Access Grid tools all use
// this. It is a thin RAII wrapper over sim::Host port binding.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "sim/network.hpp"

namespace gmmcs::transport {

class DatagramSocket {
 public:
  /// Binds an ephemeral port on the host.
  explicit DatagramSocket(sim::Host& host);
  /// Binds a specific port; throws if taken.
  DatagramSocket(sim::Host& host, std::uint16_t port);
  ~DatagramSocket();
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  /// Sets the receive callback (replaces any previous one).
  void on_receive(std::function<void(const sim::Datagram&)> handler);

  /// Sends a datagram; returns false if dropped at the local NIC.
  bool send_to(sim::Endpoint dst, Payload payload);
  /// Sends to a multicast group.
  void send_group(sim::GroupId group, Payload payload);
  /// Joins/leaves a multicast group on this socket's port.
  void join_group(sim::GroupId group);
  void leave_group(sim::GroupId group);

  [[nodiscard]] sim::Endpoint local() const { return {host_->id(), port_}; }
  [[nodiscard]] sim::Host& host() const { return *host_; }

 private:
  sim::Host* host_;
  std::uint16_t port_;
  std::function<void(const sim::Datagram&)> handler_;
};

}  // namespace gmmcs::transport
