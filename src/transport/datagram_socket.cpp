#include "transport/datagram_socket.hpp"

namespace gmmcs::transport {

DatagramSocket::DatagramSocket(sim::Host& host) : host_(&host) {
  port_ = host_->bind_ephemeral([this](const sim::Datagram& d) {
    if (handler_) handler_(d);
  });
}

DatagramSocket::DatagramSocket(sim::Host& host, std::uint16_t port) : host_(&host), port_(port) {
  host_->bind(port_, [this](const sim::Datagram& d) {
    if (handler_) handler_(d);
  });
}

DatagramSocket::~DatagramSocket() {
  host_->unbind(port_);
}

void DatagramSocket::on_receive(std::function<void(const sim::Datagram&)> handler) {
  handler_ = std::move(handler);
}

bool DatagramSocket::send_to(sim::Endpoint dst, Payload payload) {
  return host_->send(dst, port_, std::move(payload));
}

void DatagramSocket::send_group(sim::GroupId group, Payload payload) {
  host_->send_multicast(group, port_, std::move(payload));
}

void DatagramSocket::join_group(sim::GroupId group) {
  host_->network().join_group(group, local());
}

void DatagramSocket::leave_group(sim::GroupId group) {
  host_->network().leave_group(group, local());
}

}  // namespace gmmcs::transport
