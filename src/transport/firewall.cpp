#include "transport/firewall.hpp"

#include <string>

#include "common/strings.hpp"

namespace gmmcs::transport {

Firewall::Firewall(sim::Host& host, FirewallRules rules) : host_(&host), rules_(rules) {
  host_->set_ingress_filter([this](const sim::Datagram& d) { return admit(d); });
  host_->set_egress_observer([this](const sim::Datagram& d) {
    outbound_flows_.insert({d.src.port, d.dst});
  });
}

Firewall::~Firewall() {
  host_->set_ingress_filter(nullptr);
  host_->set_egress_observer(nullptr);
}

bool Firewall::admit(const sim::Datagram& d) {
  bool allow = false;
  if (outbound_flows_.contains({d.dst.port, d.src})) {
    allow = true;  // reply to a flow we initiated
  } else if (d.reliable ? rules_.allow_inbound_streams : rules_.allow_inbound_datagrams) {
    allow = true;
  }
  if (allow) {
    ++passed_;
  } else {
    ++blocked_;
  }
  return allow;
}

ProxyServer::ProxyServer(sim::Host& host, std::uint16_t port)
    : host_(&host), listener_(host, port) {
  listener_.on_accept([this](StreamConnectionPtr client) { accept(std::move(client)); });
}

void ProxyServer::accept(StreamConnectionPtr client) {
  // The proxy owns both legs of every tunnel via pairs_; handlers capture
  // raw pointers only. Capturing the shared_ptrs inside the connections'
  // own handlers would form reference cycles and leak every tunnel.
  // (Connection destructors never invoke close handlers, so the raw
  // cross-pointers cannot dangle during pair teardown.)
  auto* raw = client.get();
  pairs_.emplace_back(std::move(client), nullptr);
  // The first message must be the CONNECT line; subsequent messages are
  // payload and may already be queued behind it (ordered delivery).
  raw->on_message([this, raw](const Bytes& first) {
    std::string line = to_string(first);
    if (!starts_with(line, "CONNECT ")) {
      raw->close();
      return;
    }
    auto parts = split(line.substr(8), ':');
    if (parts.size() != 2) {
      raw->close();
      return;
    }
    sim::Endpoint target{static_cast<sim::NodeId>(std::stoul(parts[0])),
                         static_cast<std::uint16_t>(std::stoul(parts[1]))};
    auto upstream = StreamConnection::connect(*host_, target);
    auto* up = upstream.get();
    ++tunnels_;
    for (auto& [c, u] : pairs_) {
      if (c.get() == raw) {
        u = std::move(upstream);
        break;
      }
    }
    // Re-point the client handler at the relay; upstream buffers until open.
    raw->on_message([this, up](const Bytes& m) {
      ++relayed_;
      up->send(m);
    });
    up->on_message([this, raw](const Bytes& m) {
      ++relayed_;
      raw->send(m);
    });
    raw->on_close([this, up] {
      if (tunnels_ > 0) --tunnels_;
      up->close();
    });
    up->on_close([raw] { raw->close(); });
  });
}

StreamConnectionPtr connect_via_proxy(sim::Host& from, sim::Endpoint proxy,
                                      sim::Endpoint target) {
  auto conn = StreamConnection::connect(from, proxy);
  conn->send("CONNECT " + std::to_string(target.node) + ":" + std::to_string(target.port));
  return conn;
}

}  // namespace gmmcs::transport
