#include "transport/firewall.hpp"

#include <string>

#include "common/strings.hpp"

namespace gmmcs::transport {

Firewall::Firewall(sim::Host& host, FirewallRules rules) : host_(&host), rules_(rules) {
  host_->set_ingress_filter([this](const sim::Datagram& d) { return admit(d); });
  host_->set_egress_observer([this](const sim::Datagram& d) {
    outbound_flows_.insert({d.src.port, d.dst});
  });
}

Firewall::~Firewall() {
  host_->set_ingress_filter(nullptr);
  host_->set_egress_observer(nullptr);
}

bool Firewall::admit(const sim::Datagram& d) {
  bool allow = false;
  if (outbound_flows_.contains({d.dst.port, d.src})) {
    allow = true;  // reply to a flow we initiated
  } else if (d.reliable ? rules_.allow_inbound_streams : rules_.allow_inbound_datagrams) {
    allow = true;
  }
  if (allow) {
    ++passed_;
  } else {
    ++blocked_;
  }
  return allow;
}

ProxyServer::ProxyServer(sim::Host& host, std::uint16_t port)
    : host_(&host), listener_(host, port) {
  listener_.on_accept([this](StreamConnectionPtr client) { accept(std::move(client)); });
}

void ProxyServer::accept(StreamConnectionPtr client) {
  // Tunnel legs are shared with the host connection tables, so relay
  // handlers capture weak_ptrs (the kPing shape): no reference cycles —
  // a handler stored on one leg never keeps the other leg alive — and a
  // leg torn down mid-run turns the peer's handler into a no-op instead
  // of a dangling pointer.
  std::weak_ptr<StreamConnection> client_weak = client;
  auto* raw = client.get();
  pairs_.emplace_back(std::move(client), nullptr);
  // The first message must be the CONNECT line; subsequent messages are
  // payload and may already be queued behind it (ordered delivery).
  raw->on_message([this, client_weak](const Payload& first) {
    auto conn = client_weak.lock();
    if (!conn) return;
    std::string line = to_string(first);
    if (!starts_with(line, "CONNECT ")) {
      conn->close();
      return;
    }
    auto parts = split(line.substr(8), ':');
    if (parts.size() != 2) {
      conn->close();
      return;
    }
    auto node = parse_u32(parts[0]);
    auto port = parse_u16(parts[1]);
    if (!node || !port) {
      conn->close();
      return;
    }
    sim::Endpoint target{static_cast<sim::NodeId>(*node), *port};
    auto upstream = StreamConnection::connect(*host_, target);
    std::weak_ptr<StreamConnection> up_weak = upstream;
    ++tunnels_;
    // Re-point the client handler at the relay; upstream buffers until open.
    // Relay legs pass the refcounted handle through: tunneled bytes are
    // never copied by the proxy.
    conn->on_message([this, up_weak](const Payload& m) {
      auto up = up_weak.lock();
      if (!up) return;
      ++relayed_;
      up->send(m);
    });
    upstream->on_message([this, client_weak](const Payload& m) {
      auto down = client_weak.lock();
      if (!down) return;
      ++relayed_;
      down->send(m);
    });
    conn->on_close([this, up_weak] {
      if (tunnels_ > 0) --tunnels_;
      if (auto up = up_weak.lock()) up->close();
    });
    upstream->on_close([client_weak] {
      if (auto down = client_weak.lock()) down->close();
    });
    for (auto& [c, u] : pairs_) {
      if (c == conn) {
        u = std::move(upstream);
        break;
      }
    }
  });
}

StreamConnectionPtr connect_via_proxy(sim::Host& from, sim::Endpoint proxy,
                                      sim::Endpoint target) {
  auto conn = StreamConnection::connect(from, proxy);
  conn->send("CONNECT " + std::to_string(target.node) + ":" + std::to_string(target.port));
  return conn;
}

}  // namespace gmmcs::transport
