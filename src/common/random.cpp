#include "common/random.hpp"

#include <cmath>

namespace gmmcs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

bool Rng::chance(double p) {
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

Rng Rng::fork() {
  return Rng{next()};
}

}  // namespace gmmcs
