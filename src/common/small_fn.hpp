// SmallFn: a move-only `void()` callable with a 64-byte inline buffer.
//
// std::function on libstdc++ only stores captures inline when they are
// trivially copyable and at most 16 bytes; a ServiceCenter copy job
// captures a shared_ptr plus a couple of ids (24..56 bytes), so every
// submitted job used to pay a heap allocation just to carry its
// completion closure. SmallFn raises the inline threshold to 64 bytes
// and drops the copyability requirement (move-only captures like
// unique_ptr are fine). Callables that are still too big — or that need
// stricter alignment than max_align_t — fall back to a single heap cell;
// correctness never depends on fitting inline.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gmmcs {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVTable<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when the wrapped callable lives in the inline buffer (no heap).
  [[nodiscard]] bool is_inline() const noexcept { return vt_ != nullptr && vt_->inline_stored; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to) noexcept;  // move into `to`, destroy `from`
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  // The move constructor must stay noexcept, so inline storage also
  // requires a nothrow-movable callable (true for every capture in-tree).
  template <class D>
  static constexpr bool fits_inline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  struct InlineOps {
    static D* self(void* s) noexcept { return std::launder(reinterpret_cast<D*>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) D(std::move(*self(from)));
      self(from)->~D();
    }
    static void destroy(void* s) noexcept { self(s)->~D(); }
  };

  template <class D>
  struct HeapOps {
    static D* self(void* s) noexcept { return *std::launder(reinterpret_cast<D**>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) D*(self(from));  // just move the pointer across
    }
    static void destroy(void* s) noexcept { delete self(s); }
  };

  template <class D>
  static constexpr VTable kInlineVTable{&InlineOps<D>::invoke, &InlineOps<D>::relocate,
                                        &InlineOps<D>::destroy, /*inline_stored=*/true};
  template <class D>
  static constexpr VTable kHeapVTable{&HeapOps<D>::invoke, &HeapOps<D>::relocate,
                                      &HeapOps<D>::destroy, /*inline_stored=*/false};

  void steal(SmallFn& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(other.buf_, buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace gmmcs
