#include "common/log.hpp"

#include <cstdio>

#include "common/time.hpp"

namespace gmmcs {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel level) { g_level = level; }

void Log::write(LogLevel level, const std::string& component, const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%-5s] %-12s %s\n", level_name(level), component.c_str(),
               message.c_str());
}

std::string to_string(SimDuration d) {
  char buf[48];
  double ms = d.to_ms();
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", ms / 1000.0);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fus", ms * 1000.0);
  }
  return buf;
}

std::string to_string(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.to_seconds());
  return buf;
}

}  // namespace gmmcs
