// Minimal leveled logger.
//
// Quiet by default (tests and benches stay clean); examples raise the level
// to narrate what the system is doing. Not thread-safe by design — the
// entire simulation is single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace gmmcs {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log configuration.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Emits one line at the given level (no-op if below threshold).
  static void write(LogLevel level, const std::string& component, const std::string& message);
};

/// Stream-style helper: LogLine(LogLevel::kInfo, "broker") << "routed " << n;
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Log::write(level_, component_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

#define GMMCS_LOG(level, component) ::gmmcs::LogLine((level), (component))
#define GMMCS_INFO(component) GMMCS_LOG(::gmmcs::LogLevel::kInfo, (component))
#define GMMCS_DEBUG(component) GMMCS_LOG(::gmmcs::LogLevel::kDebug, (component))
#define GMMCS_WARN(component) GMMCS_LOG(::gmmcs::LogLevel::kWarn, (component))

}  // namespace gmmcs
