#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

namespace gmmcs {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_n(std::string_view s, char sep, std::size_t max_parts) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (out.size() + 1 < max_parts) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(s.substr(start));
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) {
      if (start < s.size()) out.emplace_back(s.substr(start));
      break;
    }
    std::size_t end = pos;
    if (end > start && s[end - 1] == '\r') --end;
    out.emplace_back(s.substr(start, end - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s, std::uint64_t max) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (max - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

std::optional<std::uint32_t> parse_u32(std::string_view s, std::uint32_t max) {
  auto v = parse_u64(s, max);
  if (!v) return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

std::optional<std::uint16_t> parse_u16(std::string_view s) {
  auto v = parse_u64(s, UINT16_MAX);
  if (!v) return std::nullopt;
  return static_cast<std::uint16_t>(*v);
}

std::optional<std::uint8_t> parse_u8(std::string_view s) {
  auto v = parse_u64(s, UINT8_MAX);
  if (!v) return std::nullopt;
  return static_cast<std::uint8_t>(*v);
}

std::optional<std::int32_t> parse_i32(std::string_view s) {
  bool neg = !s.empty() && s.front() == '-';
  if (neg) s.remove_prefix(1);
  auto v = parse_u64(s, neg ? std::uint64_t{1} << 31 : std::uint64_t{INT32_MAX});
  if (!v) return std::nullopt;
  return neg ? static_cast<std::int32_t>(-static_cast<std::int64_t>(*v))
             : static_cast<std::int32_t>(*v);
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view s, std::uint64_t max) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else return std::nullopt;
    if (v > (max - digit) / 16) return std::nullopt;
    v = v * 16 + digit;
  }
  return v;
}

std::optional<double> parse_f64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace gmmcs
