#include "common/strings.hpp"

#include <algorithm>
#include <cctype>

namespace gmmcs {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_n(std::string_view s, char sep, std::size_t max_parts) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (out.size() + 1 < max_parts) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(s.substr(start));
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) {
      if (start < s.size()) out.emplace_back(s.substr(start));
      break;
    }
    std::size_t end = pos;
    if (end > start && s[end - 1] == '\r') --end;
    out.emplace_back(s.substr(start, end - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace gmmcs
