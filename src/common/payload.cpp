#include "common/payload.hpp"

namespace gmmcs {

namespace {
// Commutative sums; fan-out copy jobs may run on parallel dispatch
// workers, so the counters are atomic (relaxed: only read between events).
std::atomic<std::uint64_t> g_payload_copies{0};
std::atomic<std::uint64_t> g_payload_bytes_copied{0};
}  // namespace

Payload Payload::copy_of(std::span<const std::uint8_t> data) {
  g_payload_copies.fetch_add(1, std::memory_order_relaxed);
  g_payload_bytes_copied.fetch_add(data.size(), std::memory_order_relaxed);
  return Payload(Bytes(data.begin(), data.end()));
}

Payload Payload::slice(std::size_t offset, std::size_t len) const {
  if (offset > size_) return {};
  if (len > size_ - offset) len = size_ - offset;
  return Payload(buf_, data_ + offset, len);
}

Bytes Payload::to_bytes() const {
  g_payload_copies.fetch_add(1, std::memory_order_relaxed);
  g_payload_bytes_copied.fetch_add(size_, std::memory_order_relaxed);
  return Bytes(data_, data_ + size_);
}

std::uint64_t payload_copy_count() {
  return g_payload_copies.load(std::memory_order_relaxed);
}

std::uint64_t payload_bytes_copied() {
  return g_payload_bytes_copied.load(std::memory_order_relaxed);
}

}  // namespace gmmcs
