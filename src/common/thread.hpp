// Annotated thread wrapper: the only sanctioned way to spawn a thread in
// src/ (the determinism linter rejects raw std::thread elsewhere).
//
// Threads in this codebase exist solely as *host-CPU* workers inside the
// deterministic parallel dispatch executor (sim::EventLoop); nothing about
// simulated time or simulated randomness may depend on thread scheduling.
// Keeping construction funneled through this type makes that auditable.
#pragma once

#include <thread>  // det-lint: allow(raw-threading) — the sanctioned wrapper
#include <utility>

namespace gmmcs {

/// Joining thread wrapper (std::jthread semantics without the stop token).
class Thread {
 public:
  Thread() = default;
  template <class Fn, class... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : t_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}
  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    join();
    t_ = std::move(other.t_);
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() { join(); }

  void join() {
    if (t_.joinable()) t_.join();
  }
  [[nodiscard]] bool joinable() const { return t_.joinable(); }

 private:
  std::thread t_;  // det-lint: allow(raw-threading)
};

}  // namespace gmmcs
