// Deterministic pseudo-random numbers.
//
// Every stochastic element of the simulation (packet loss, talkspurt
// lengths, VBR frame sizes, jittered client start times) draws from a
// seeded Rng so that runs are bit-for-bit reproducible. We use
// xoshiro256** seeded through SplitMix64 — tiny, fast, and good enough
// statistically for workload generation.
#pragma once

#include <cstdint>

namespace gmmcs {

/// SplitMix64: used to expand a single seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with probability p of true.
  bool chance(double p);
  /// Exponentially distributed value with the given mean.
  double exponential(double mean);
  /// Normally distributed value (Box–Muller).
  double normal(double mean, double stddev);
  /// Spawns an independent generator (for per-entity streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace gmmcs
