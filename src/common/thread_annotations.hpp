// Clang thread-safety-analysis attribute macros.
//
// Shared mutable state in the (otherwise single-threaded) simulator exists
// only around the parallel host-dispatch executor (sim::EventLoop worker
// pool). Everything that crosses a thread boundary must be annotated with
// these macros and built with `-Wthread-safety -Werror=thread-safety`
// under clang so lock discipline is checked statically; under GCC the
// macros compile away.
//
// Conventions (DESIGN.md §9):
//  * every mutex-protected member carries GMMCS_GUARDED_BY(mu_);
//  * functions that expect the caller to hold a lock are annotated with
//    GMMCS_REQUIRES(mu_) instead of re-locking;
//  * raw std::mutex / std::thread are banned outside common/ wrappers by
//    tools/lint/determinism_lint.py — use gmmcs::Mutex / gmmcs::MutexLock
//    (common/mutex.hpp) and gmmcs::Thread (common/thread.hpp), which are
//    what these attributes are attached to.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GMMCS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GMMCS_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define GMMCS_CAPABILITY(x) GMMCS_THREAD_ANNOTATION(capability(x))
#define GMMCS_SCOPED_CAPABILITY GMMCS_THREAD_ANNOTATION(scoped_lockable)
#define GMMCS_GUARDED_BY(x) GMMCS_THREAD_ANNOTATION(guarded_by(x))
#define GMMCS_PT_GUARDED_BY(x) GMMCS_THREAD_ANNOTATION(pt_guarded_by(x))
#define GMMCS_ACQUIRED_BEFORE(...) GMMCS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GMMCS_ACQUIRED_AFTER(...) GMMCS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GMMCS_REQUIRES(...) GMMCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GMMCS_REQUIRES_SHARED(...) \
  GMMCS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define GMMCS_ACQUIRE(...) GMMCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GMMCS_ACQUIRE_SHARED(...) GMMCS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GMMCS_RELEASE(...) GMMCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GMMCS_RELEASE_SHARED(...) GMMCS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GMMCS_TRY_ACQUIRE(...) GMMCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GMMCS_EXCLUDES(...) GMMCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GMMCS_ASSERT_CAPABILITY(x) GMMCS_THREAD_ANNOTATION(assert_capability(x))
#define GMMCS_RETURN_CAPABILITY(x) GMMCS_THREAD_ANNOTATION(lock_returned(x))
#define GMMCS_NO_THREAD_SAFETY_ANALYSIS GMMCS_THREAD_ANNOTATION(no_thread_safety_analysis)

// Lifetime pin for gmmcs-lint pass 7 ("lifetime", DESIGN.md §14).
// `class GMMCS_PINNED("why") Foo { ... };` declares that every Foo is
// constructed before the event loop starts and destroyed only after it
// drains — sim hosts, brokers, protocol servers that are immortal for a
// run. Callables deferred into the loop may therefore capture a raw
// pointer/reference/`this` of a pinned class without escaping its
// lifetime. The reason string is mandatory (the linter rejects an empty
// one) and should say *why* the instance outlives all deferred work.
// Compiles away entirely; it exists for the analyzer and the reader.
#define GMMCS_PINNED(reason)
