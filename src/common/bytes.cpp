#include "common/bytes.hpp"

namespace gmmcs {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::lstr(std::string_view s) {
  u16(static_cast<std::uint16_t>(s.size()));
  str(s);
}

bool ByteReader::need(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!need(2)) return 0;
  auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

Bytes ByteReader::raw(std::size_t n) {
  if (!need(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  if (!need(n)) return {};
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  if (!need(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::string_view ByteReader::str_view(std::size_t n) {
  if (!need(n)) return {};
  std::string_view out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::string ByteReader::lstr() {
  std::size_t n = u16();
  return str(n);
}

std::string_view ByteReader::lstr_view() {
  std::size_t n = u16();
  return str_view(n);
}

std::span<const std::uint8_t> ByteReader::rest() {
  return view(remaining());
}

void ByteReader::skip(std::size_t n) {
  if (need(n)) pos_ += n;
}

Result<std::size_t> ByteReader::read_len_bounded(std::size_t max) {
  std::uint32_t len = u32();
  if (!ok_) return fail<std::size_t>("bytes: truncated length field");
  if (len > max || len > remaining()) {
    ok_ = false;
    pos_ = data_.size();
    return fail<std::size_t>("bytes: length " + std::to_string(len) +
                             " exceeds bound");
  }
  return std::size_t{len};
}

Result<std::size_t> ByteReader::check_count(std::uint64_t count, std::size_t elem_size) {
  if (!ok_) return fail<std::size_t>("bytes: truncated count field");
  if (elem_size == 0) elem_size = 1;
  // Division instead of multiplication: count * elem_size cannot wrap.
  if (count > remaining() / elem_size) {
    ok_ = false;
    pos_ = data_.size();
    return fail<std::size_t>("bytes: count " + std::to_string(count) +
                             " exceeds remaining bytes");
  }
  return static_cast<std::size_t>(count);
}

Result<std::size_t> ByteReader::read_count_u8(std::size_t elem_size) {
  return check_count(u8(), elem_size);
}

Result<std::size_t> ByteReader::read_count_u16(std::size_t elem_size) {
  return check_count(u16(), elem_size);
}

Result<std::size_t> ByteReader::read_count_u32(std::size_t elem_size) {
  return check_count(u32(), elem_size);
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(std::span<const std::uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

}  // namespace gmmcs
