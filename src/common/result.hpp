// Lightweight Result<T> for wire-data parsing.
//
// Error-handling policy (see DESIGN.md §6): exceptions signal programmer or
// configuration errors; malformed *network input* is expected data and is
// reported through Result so callers are forced to handle it.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace gmmcs {

/// Error payload: a human-readable reason.
struct Error {
  std::string message;
};

/// Either a value or an Error. Accessing value() on an error throws
/// std::logic_error — by that point it *is* a programming mistake.
template <class T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(std::move(v_));
  }
  [[nodiscard]] const Error& error() const {
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

/// Convenience maker: fail<T>("reason").
template <class T>
[[nodiscard]] Result<T> fail(std::string message) {
  return Result<T>{Error{std::move(message)}};
}

}  // namespace gmmcs
