// Small string utilities used by the text protocols (SIP, RTSP, SOAP/HTTP
// framing) and by XGSP addressing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gmmcs {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);
/// Splits on a character, keeping at most max_parts (last part holds the rest).
std::vector<std::string> split_n(std::string_view s, char sep, std::size_t max_parts);
/// Splits into lines on "\r\n" or "\n".
std::vector<std::string> split_lines(std::string_view s);
/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);
/// ASCII lower-casing.
std::string to_lower(std::string_view s);
/// Case-insensitive ASCII comparison (SIP/RTSP header names).
bool iequals(std::string_view a, std::string_view b);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace gmmcs
