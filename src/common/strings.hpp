// Small string utilities used by the text protocols (SIP, RTSP, SOAP/HTTP
// framing) and by XGSP addressing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gmmcs {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);
/// Splits on a character, keeping at most max_parts (last part holds the rest).
std::vector<std::string> split_n(std::string_view s, char sep, std::size_t max_parts);
/// Splits into lines on "\r\n" or "\n".
std::vector<std::string> split_lines(std::string_view s);
/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);
/// ASCII lower-casing.
std::string to_lower(std::string_view s);
/// Case-insensitive ASCII comparison (SIP/RTSP header names).
bool iequals(std::string_view a, std::string_view b);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Non-throwing bounded numeric parses for wire-derived text — the
/// sanctioned alternative to std::sto*/atoi/strtol, which either throw on
/// hostile input or silently accept garbage prefixes. gmmcs-lint pass
/// "wire" rejects the throwing forms in protocol modules. The whole input
/// must be digits (leading whitespace is not skipped — trim() first);
/// empty input, stray characters, and overflow past `max` all yield
/// nullopt.
std::optional<std::uint64_t> parse_u64(std::string_view s,
                                       std::uint64_t max = UINT64_MAX);
std::optional<std::uint32_t> parse_u32(std::string_view s,
                                       std::uint32_t max = UINT32_MAX);
std::optional<std::uint16_t> parse_u16(std::string_view s);
std::optional<std::uint8_t> parse_u8(std::string_view s);
/// Signed variant: one optional leading '-' then digits; range-checked.
std::optional<std::int32_t> parse_i32(std::string_view s);
/// Hex digits only, no 0x prefix (XML character entities: &#xHHHH;).
std::optional<std::uint64_t> parse_hex_u64(std::string_view s,
                                           std::uint64_t max = UINT64_MAX);
/// Finite decimal floating point (no locale, no exceptions).
std::optional<double> parse_f64(std::string_view s);

}  // namespace gmmcs
