// Immutable, ref-counted payload buffer — the zero-copy payload plane.
//
// A Payload is a shared byte buffer plus a view into it. Copying a Payload
// copies a handle (refcount bump); slicing shares the same buffer. The
// routed-event fast path allocates an event's bytes exactly once — at the
// publisher's encode — and every later carrier (datagram, stream segment
// inbox, RoutedEvent wire cache, decoded Event::payload, RTP fan-out)
// holds a view of that one allocation.
//
// Ownership model (DESIGN.md §15):
//  * construction from `Bytes&&` ADOPTS the vector — a move, never a copy.
//    There is deliberately no construction from `const Bytes&`: turning a
//    borrowed buffer into a Payload is a deep copy and must be spelled
//    `Payload::copy_of(...)`, which the copy counters record and the
//    gmmcs-lint "copy" pass audits.
//  * `slice()` is O(1) and shares the buffer; a slice keeps the whole
//    underlying allocation alive (fine here: frames are short-lived and a
//    payload dominates its frame's size).
//  * `to_bytes()` is the escape hatch back to an owned vector; it is a
//    counted deep copy like copy_of().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>

#include "common/bytes.hpp"

namespace gmmcs {

class Payload {
 public:
  Payload() = default;

  /// Adopts a byte vector: the buffer moves, no bytes are copied. Implicit
  /// so freshly-framed buffers (`encode(...)`, `w.take()`) flow into
  /// Payload-typed carriers unchanged.
  Payload(Bytes&& bytes)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<const Bytes>(std::move(bytes))),
        data_(buf_->data()),
        size_(buf_->size()) {}

  /// Deep copy of a borrowed buffer. The only way to build a Payload from
  /// bytes the caller keeps — recorded by the payload copy counters.
  static Payload copy_of(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<const std::uint8_t> view() const { return {data_, size_}; }
  /// Implicit view conversion: lets a Payload flow anywhere a byte span is
  /// read (ByteReader, to_string, writer.raw) without copying.
  operator std::span<const std::uint8_t>() const { return view(); }  // NOLINT(google-explicit-constructor)
  [[nodiscard]] std::string_view str_view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// O(1) sub-view sharing the same buffer. Out-of-range clamps to the end.
  [[nodiscard]] Payload slice(std::size_t offset, std::size_t len) const;
  [[nodiscard]] Payload slice(std::size_t offset) const {
    return slice(offset, offset > size_ ? 0 : size_ - offset);
  }

  /// Deep copy back to an owned vector (counted, like copy_of).
  [[nodiscard]] Bytes to_bytes() const;

  friend bool operator==(const Payload& a, const Payload& b) {
    return std::equal(a.data_, a.data_ + a.size_, b.data_, b.data_ + b.size_);
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return std::equal(a.data_, a.data_ + a.size_, b.begin(), b.end());
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  Payload(std::shared_ptr<const Bytes> buf, const std::uint8_t* data, std::size_t size)
      : buf_(std::move(buf)), data_(data), size_(size) {}

  std::shared_ptr<const Bytes> buf_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Process-wide deep-copy instrumentation (like event_encode_count()):
/// every Payload::copy_of / to_bytes bumps the count and adds the bytes.
/// Tests and benches diff these around a fan-out to certify the payload
/// plane stays zero-copy; not part of the simulation cost model.
std::uint64_t payload_copy_count();
std::uint64_t payload_bytes_copied();

}  // namespace gmmcs
