// Byte-buffer IO used by every wire format in the system (RTP headers,
// H.323 TLV messages, broker event frames). All multi-byte integers are
// big-endian (network order), matching the real protocols.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace gmmcs {

using Bytes = std::vector<std::uint8_t>;

/// Appends values to a growable byte vector in network byte order.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> data);
  void raw(const Bytes& data) { raw(std::span<const std::uint8_t>{data}); }
  /// Writes the string bytes verbatim (no terminator, no length prefix).
  void str(std::string_view s);
  /// Length-prefixed string: u16 length followed by the bytes.
  void lstr(std::string_view s);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  /// Moves the buffer out; the writer is empty afterwards.
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads values from a byte span in network byte order.
///
/// Reads past the end set the error flag and return zeros instead of
/// throwing: malformed network input is data, not a programming error.
/// Callers check ok() once after parsing a whole structure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads exactly n bytes; returns an empty vector (and flags error) if short.
  /// Allocates an owned copy — decode paths that only inspect use view().
  Bytes raw(std::size_t n);
  /// Non-allocating sibling of raw(): a view into the underlying buffer,
  /// valid only while that buffer lives. Empty (and flags error) if short.
  std::span<const std::uint8_t> view(std::size_t n);
  /// Reads exactly n bytes as a string (allocating; see str_view()).
  std::string str(std::size_t n);
  /// Non-allocating sibling of str(n): a view into the underlying buffer.
  std::string_view str_view(std::size_t n);
  /// Reads a u16 length prefix then that many bytes as a string.
  std::string lstr();
  /// Non-allocating sibling of lstr().
  std::string_view lstr_view();
  /// Consumes the rest of the buffer as a view (trailing byte-run codecs).
  std::span<const std::uint8_t> rest();
  /// Skips n bytes.
  void skip(std::size_t n);

  /// Checked sibling of a raw u32 length read: fails (and poisons the
  /// reader, so error-flag callers still see !ok()) unless the length is
  /// both <= max and <= remaining(). The returned length is safe to
  /// allocate against — it can never exceed the frame it arrived in.
  [[nodiscard]] Result<std::size_t> read_len_bounded(std::size_t max);
  /// Checked element-count reads (u8/u16/u32 wire widths): fail unless
  /// count * elem_size bytes are actually left in the buffer, so a
  /// hostile count can never drive a loop past the frame. elem_size is
  /// the wire size of one element (>= 1).
  [[nodiscard]] Result<std::size_t> read_count_u8(std::size_t elem_size);
  [[nodiscard]] Result<std::size_t> read_count_u16(std::size_t elem_size);
  [[nodiscard]] Result<std::size_t> read_count_u32(std::size_t elem_size);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  [[nodiscard]] bool need(std::size_t n);
  [[nodiscard]] Result<std::size_t> check_count(std::uint64_t count, std::size_t elem_size);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Converts a string to its bytes (convenience for payload construction).
Bytes to_bytes(std::string_view s);
/// Converts bytes to a string (lossless copy; bytes need not be text).
std::string to_string(std::span<const std::uint8_t> data);

}  // namespace gmmcs
