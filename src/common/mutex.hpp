// Annotated mutex / condition-variable wrappers.
//
// The only sanctioned locking primitives in src/ (the determinism linter
// rejects raw std::mutex / std::condition_variable everywhere else).
// They are thin std wrappers carrying clang thread-safety capabilities so
// `-Wthread-safety -Werror=thread-safety` can certify lock discipline.
#pragma once

#include <condition_variable>  // det-lint: allow(raw-threading) — the sanctioned wrapper
#include <mutex>               // det-lint: allow(raw-threading) — the sanctioned wrapper

#include "common/thread_annotations.hpp"

namespace gmmcs {

/// Annotated exclusive mutex (see thread_annotations.hpp conventions).
class GMMCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GMMCS_ACQUIRE() { mu_.lock(); }
  void unlock() GMMCS_RELEASE() { mu_.unlock(); }
  bool try_lock() GMMCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for CondVar, which needs the underlying handle.
  std::mutex& native() { return mu_; }  // det-lint: allow(raw-threading)

 private:
  std::mutex mu_;  // det-lint: allow(raw-threading)
};

/// RAII scoped lock over gmmcs::Mutex.
class GMMCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GMMCS_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() GMMCS_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with gmmcs::Mutex. The wait predicate runs
/// with the mutex held, matching std::condition_variable semantics.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu` (enforced under clang via GMMCS_REQUIRES).
  template <class Pred>
  void wait(Mutex& mu, Pred pred) GMMCS_REQUIRES(mu) {
    // clang's analysis cannot see through unique_lock's adopt/release
    // dance, so the body is opted out; the REQUIRES contract above is
    // what callers are checked against.
    wait_impl(mu, [&]() GMMCS_NO_THREAD_SAFETY_ANALYSIS { return pred(); });
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  template <class Pred>
  void wait_impl(Mutex& mu, Pred pred) GMMCS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);  // det-lint: allow(raw-threading)
    cv_.wait(lk, pred);
    lk.release();  // the enclosing MutexLock / caller still owns the lock
  }

  std::condition_variable cv_;  // det-lint: allow(raw-threading)
};

}  // namespace gmmcs
