// Annotated mutex / condition-variable wrappers.
//
// The only sanctioned locking primitives in src/ (the determinism linter
// rejects raw std::mutex / std::condition_variable everywhere else).
// They are thin std wrappers carrying clang thread-safety capabilities so
// `-Wthread-safety -Werror=thread-safety` can certify lock discipline.
#pragma once

#include <condition_variable>  // det-lint: allow(raw-threading) — the sanctioned wrapper
#include <mutex>               // det-lint: allow(raw-threading) — the sanctioned wrapper

#include "common/thread_annotations.hpp"

namespace gmmcs {

/// Annotated exclusive mutex (see thread_annotations.hpp conventions).
class GMMCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GMMCS_ACQUIRE() { mu_.lock(); }
  void unlock() GMMCS_RELEASE() { mu_.unlock(); }
  bool try_lock() GMMCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for CondVar, which needs the underlying handle.
  std::mutex& native() { return mu_; }  // det-lint: allow(raw-threading)

 private:
  std::mutex mu_;  // det-lint: allow(raw-threading)
};

/// RAII scoped lock over gmmcs::Mutex.
class GMMCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GMMCS_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() GMMCS_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Phantom capability: a zero-cost "lock" that is never actually acquired,
/// used to annotate state that is protected by *execution discipline*
/// rather than a mutex. The simulator's lane model (DESIGN.md §9/§11) is
/// the canonical case: a Host's members are touched only by the one thread
/// running that host's lane, so no mutex exists — but the members still
/// need GMMCS_GUARDED_BY coverage so clang thread-safety analysis and the
/// gmmcs-lint lock-order pass can reject stray cross-lane access.
///
/// Usage (DESIGN.md §11): give the class a `ExecContext ctx_;` member,
/// guard state with GMMCS_GUARDED_BY(ctx_), mark internal helpers
/// GMMCS_REQUIRES(ctx_), and have public entry points establish the
/// capability with `ctx_.assert_held()` — an assertion of the runtime
/// discipline (EventLoop lane scheduling), not an acquisition, so it never
/// blocks and never creates a deadlock edge in the acquisition graph.
class GMMCS_CAPABILITY("context") ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Declares (to the analysis) that the calling thread already owns this
  /// execution context. No runtime effect.
  void assert_held() const GMMCS_ASSERT_CAPABILITY(this) {}
};

/// Condition variable paired with gmmcs::Mutex. The wait predicate runs
/// with the mutex held, matching std::condition_variable semantics.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu` (enforced under clang via GMMCS_REQUIRES).
  template <class Pred>
  void wait(Mutex& mu, Pred pred) GMMCS_REQUIRES(mu) {
    // clang's analysis cannot see through unique_lock's adopt/release
    // dance, so the body is opted out; the REQUIRES contract above is
    // what callers are checked against.
    wait_impl(mu, [&]() GMMCS_NO_THREAD_SAFETY_ANALYSIS { return pred(); });
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  template <class Pred>
  void wait_impl(Mutex& mu, Pred pred) GMMCS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);  // det-lint: allow(raw-threading)
    cv_.wait(lk, pred);
    lk.release();  // the enclosing MutexLock / caller still owns the lock
  }

  std::condition_variable cv_;  // det-lint: allow(raw-threading)
};

}  // namespace gmmcs
