#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gmmcs {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double frac = counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return bucket_lo(counts_.size() - 1) + width_;
}

double Series::mean_y() const {
  if (points_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& p : points_) s += p.y;
  return s / static_cast<double>(points_.size());
}

Series Series::downsample(std::size_t n) const {
  Series out;
  if (points_.empty() || n == 0) return out;
  std::size_t group = std::max<std::size_t>(1, points_.size() / n);
  for (std::size_t i = 0; i < points_.size(); i += group) {
    double sx = 0.0, sy = 0.0;
    std::size_t end = std::min(points_.size(), i + group);
    for (std::size_t j = i; j < end; ++j) {
      sx += points_[j].x;
      sy += points_[j].y;
    }
    auto cnt = static_cast<double>(end - i);
    out.add(sx / cnt, sy / cnt);
  }
  return out;
}

}  // namespace gmmcs
