// Deterministic id generation.
//
// Entity ids (sessions, calls, SSRCs, broker events) come from per-domain
// monotonic counters rather than UUIDs so that test expectations and bench
// output are stable across runs.
#pragma once

#include <cstdint>
#include <string>

namespace gmmcs {

/// Monotonic counter; one instance per id domain.
class IdGenerator {
 public:
  explicit IdGenerator(std::uint64_t start = 1) : next_(start) {}

  std::uint64_t next() { return next_++; }

  /// Produces ids like "sess-42" for a given prefix.
  std::string next_tagged(const std::string& prefix) {
    return prefix + "-" + std::to_string(next());
  }

 private:
  std::uint64_t next_;
};

}  // namespace gmmcs
