// Simulated-time types shared by every subsystem.
//
// The whole system runs on a deterministic discrete-event simulator, so we
// never touch the wall clock. SimDuration / SimTime are thin strong types
// over signed 64-bit nanosecond counts: cheap to copy, impossible to mix up
// with raw integers, and wide enough for ~292 years of simulated time.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace gmmcs {

/// A span of simulated time, in nanoseconds. Value type, totally ordered.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t us() const { return ns_ / 1000; }
  [[nodiscard]] constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration{ns_ + o.ns_}; }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration{ns_ - o.ns_}; }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration{ns_ * k}; }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration{ns_ / k}; }
  constexpr SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }

 private:
  std::int64_t ns_ = 0;
};

/// An instant of simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime{ns_ + d.ns()}; }
  constexpr SimTime operator-(SimDuration d) const { return SimTime{ns_ - d.ns()}; }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimDuration d) { ns_ += d.ns(); return *this; }

  static constexpr SimTime zero() { return SimTime{0}; }
  /// A sentinel far in the future, useful as "never".
  static constexpr SimTime infinity() { return SimTime{INT64_MAX}; }

 private:
  std::int64_t ns_ = 0;
};

// Readable constructors: duration_ms(20), duration_us(5)...
constexpr SimDuration duration_ns(std::int64_t v) { return SimDuration{v}; }
constexpr SimDuration duration_us(std::int64_t v) { return SimDuration{v * 1000}; }
constexpr SimDuration duration_ms(std::int64_t v) { return SimDuration{v * 1'000'000}; }
constexpr SimDuration duration_s(std::int64_t v) { return SimDuration{v * 1'000'000'000}; }
/// Fractional seconds, for rate computations (rounds to nearest ns).
constexpr SimDuration duration_seconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
}

/// Human-readable rendering, e.g. "12.5ms", used in logs and bench output.
std::string to_string(SimDuration d);
std::string to_string(SimTime t);

}  // namespace gmmcs
