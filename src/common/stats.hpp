// Statistics accumulators shared by metrics collection, tests and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace gmmcs {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for delay distributions in the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Value below which the given fraction of samples fall (linear
  /// interpolation within the bucket).
  [[nodiscard]] double percentile(double p) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Records (x, y) points, e.g. packet-number vs delay series for Figure 3.
class Series {
 public:
  void add(double x, double y) { points_.push_back({x, y}); }
  struct Point { double x, y; };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] double mean_y() const;
  /// Downsamples to at most n points by averaging consecutive runs
  /// (used to print plot-sized tables).
  [[nodiscard]] Series downsample(std::size_t n) const;

 private:
  std::vector<Point> points_;
};

}  // namespace gmmcs
