#include "media/codec.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace gmmcs::media {

namespace {
std::vector<CodecInfo> make_registry() {
  return {
      {"PCMU", MediaType::kAudio, 0, 8000, 64000, duration_ms(20)},
      {"GSM", MediaType::kAudio, 3, 8000, 13200, duration_ms(20)},
      {"G723", MediaType::kAudio, 4, 8000, 6300, duration_ms(30)},
      {"H261", MediaType::kVideo, 31, 90000, 320000, duration_ms(40)},
      {"H263", MediaType::kVideo, 34, 90000, 384000, duration_ms(40)},
      // The paper's test stream: "average bandwidth of 600Kbps" video.
      {"MPEG4-SIM", MediaType::kVideo, 96, 90000, 600000, duration_ms(40)},
      {"REAL-VIDEO", MediaType::kVideo, 97, 90000, 225000, duration_ms(100)},
      {"REAL-AUDIO", MediaType::kAudio, 98, 8000, 32000, duration_ms(100)},
  };
}
}  // namespace

const std::vector<CodecInfo>& all_codecs() {
  static const std::vector<CodecInfo> registry = make_registry();
  return registry;
}

std::optional<CodecInfo> find_codec(std::string_view name) {
  for (const auto& c : all_codecs()) {
    if (iequals(c.name, name)) return c;
  }
  return std::nullopt;
}

std::optional<CodecInfo> find_codec(std::uint8_t payload_type) {
  for (const auto& c : all_codecs()) {
    if (c.payload_type == payload_type) return c;
  }
  return std::nullopt;
}

namespace codecs {
namespace {
const CodecInfo& by_name(std::string_view name) {
  for (const auto& c : all_codecs()) {
    if (c.name == name) return c;
  }
  throw std::logic_error("codec registry missing " + std::string(name));
}
}  // namespace

const CodecInfo& g711u() { return by_name("PCMU"); }
const CodecInfo& gsm() { return by_name("GSM"); }
const CodecInfo& g723() { return by_name("G723"); }
const CodecInfo& h261() { return by_name("H261"); }
const CodecInfo& h263() { return by_name("H263"); }
const CodecInfo& mpeg4_sim() { return by_name("MPEG4-SIM"); }
const CodecInfo& real_video() { return by_name("REAL-VIDEO"); }
const CodecInfo& real_audio() { return by_name("REAL-AUDIO"); }
}  // namespace codecs

}  // namespace gmmcs::media
