#include "media/generator.hpp"

#include <algorithm>
#include <cmath>

#include "media/stamp.hpp"

namespace gmmcs::media {

namespace {
std::uint32_t timestamp_step(const CodecInfo& codec) {
  return static_cast<std::uint32_t>(codec.interval.to_seconds() *
                                    static_cast<double>(codec.clock_rate));
}
}  // namespace

AudioSource::AudioSource(rtp::RtpSession& session, Config cfg)
    : session_(&session),
      cfg_(cfg),
      rng_(cfg.seed),
      packet_bytes_(static_cast<std::size_t>(cfg.codec.bitrate_bps *
                                             cfg.codec.interval.to_seconds() / 8.0)),
      ts_step_(timestamp_step(cfg.codec)),
      task_(session.host().loop(), cfg.codec.interval, [this](std::uint64_t n) { tick(n); }) {}

void AudioSource::start() {
  state_until_ = session_->host().loop().now() +
                 duration_seconds(rng_.exponential(cfg_.talk_mean_s));
  task_.start();
}

void AudioSource::stop() {
  task_.stop();
}

void AudioSource::tick(std::uint64_t) {
  timestamp_ += ts_step_;
  if (cfg_.talkspurt) {
    SimTime now = session_->host().loop().now();
    while (now >= state_until_) {
      talking_ = !talking_;
      double mean = talking_ ? cfg_.talk_mean_s : cfg_.silence_mean_s;
      state_until_ += duration_seconds(rng_.exponential(mean));
    }
    if (!talking_) return;  // silence suppression: no packet
  }
  ++packets_;
  // Marker on the first packet of a talkspurt is not modeled; receivers
  // here key on timestamps only.
  Bytes payload(packet_bytes_, 0xA0);
  embed_origin(payload, session_->host().loop().now());
  session_->send_media(std::move(payload), timestamp_);
}

VideoSource::VideoSource(rtp::RtpSession& session, Config cfg)
    : session_(&session),
      cfg_(cfg),
      rng_(cfg.seed),
      ts_step_(timestamp_step(cfg.codec)),
      task_(session.host().loop(), cfg.codec.interval,
            [this](std::uint64_t n) { emit_frame(n); }) {
  // Choose the nominal P-frame size so that one GoP carries exactly
  // gop_size * bitrate * interval bits:
  //   (gop-1) * p + i_scale * p = gop * mean  =>  p = gop*mean/(gop-1+i_scale)
  double mean_frame_bits = cfg.codec.bitrate_bps * cfg.codec.interval.to_seconds();
  double denom = static_cast<double>(cfg.gop_size) - 1.0 + cfg.i_frame_scale;
  double p_bits = static_cast<double>(cfg.gop_size) * mean_frame_bits / denom;
  p_frame_bytes_ = static_cast<std::size_t>(p_bits / 8.0);
}

void VideoSource::start() {
  task_.start();
}

void VideoSource::stop() {
  task_.stop();
}

void VideoSource::emit_frame(std::uint64_t n) {
  timestamp_ += ts_step_;
  bool i_frame = (n % cfg_.gop_size) == 0;
  double nominal = static_cast<double>(p_frame_bytes_) * (i_frame ? cfg_.i_frame_scale : 1.0);
  double jittered = nominal * std::exp(rng_.normal(0.0, cfg_.size_jitter));
  auto frame_bytes = static_cast<std::size_t>(std::max(64.0, jittered));
  ++frames_;
  // Fragment into MTU-sized RTP packets, marker on the last fragment.
  SimTime now = session_->host().loop().now();
  std::size_t offset = 0;
  while (offset < frame_bytes) {
    std::size_t chunk = std::min(cfg_.mtu_payload, frame_bytes - offset);
    // Keep every fragment large enough to carry an origin stamp.
    std::size_t rest = frame_bytes - offset - chunk;
    if (rest > 0 && rest < kStampBytes) chunk = frame_bytes - offset - kStampBytes;
    offset += chunk;
    bool last = offset >= frame_bytes;
    ++packets_;
    Bytes payload(chunk, i_frame ? 0x1F : 0x2F);
    embed_origin(payload, now);
    session_->send_media(std::move(payload), timestamp_, last);
  }
}

}  // namespace gmmcs::media
