// Origin timestamps embedded in media payloads.
//
// The paper measured one-way delay by running the measured receivers on
// the sender's machine so both ends shared a clock. Our equivalent: test
// media payloads carry the publisher's send instant in their first bytes
// (payload bits are synthetic anyway), so any receiver — behind the
// broker, the JMF reflector, or an RTP proxy chain — can compute true
// end-to-end delay regardless of how many hops re-stamped the transport
// metadata.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace gmmcs::media {

/// Minimum payload size required to carry an origin stamp.
constexpr std::size_t kStampBytes = 12;
constexpr std::uint32_t kStampMagic = 0x474D5453;  // "GMTS"

/// Writes the stamp into the payload's first bytes (payload must be at
/// least kStampBytes long; smaller payloads are left unstamped).
inline void embed_origin(Bytes& payload, SimTime origin) {
  if (payload.size() < kStampBytes) return;
  std::uint32_t magic = kStampMagic;
  auto ns = static_cast<std::uint64_t>(origin.ns());
  for (int i = 0; i < 4; ++i) payload[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(magic >> (24 - 8 * i));
  for (int i = 0; i < 8; ++i) payload[static_cast<std::size_t>(4 + i)] =
      static_cast<std::uint8_t>(ns >> (56 - 8 * i));
}

/// Reads a stamp back; nullopt if the payload is unstamped.
inline std::optional<SimTime> extract_origin(std::span<const std::uint8_t> payload) {
  if (payload.size() < kStampBytes) return std::nullopt;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic = (magic << 8) | payload[static_cast<std::size_t>(i)];
  if (magic != kStampMagic) return std::nullopt;
  std::uint64_t ns = 0;
  for (int i = 0; i < 8; ++i) ns = (ns << 8) | payload[static_cast<std::size_t>(4 + i)];
  return SimTime{static_cast<std::int64_t>(ns)};
}

}  // namespace gmmcs::media
