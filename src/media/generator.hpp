// Media traffic generators.
//
// These drive the workloads of every experiment: constant-bitrate and
// talkspurt audio (claims C1), and GoP-structured variable-bitrate video
// whose long-run average matches the codec's nominal bitrate — the 600 Kbps
// stream of Figure 3. Video frames larger than the MTU are fragmented into
// back-to-back RTP packets sharing a timestamp, marker set on the last
// fragment, exactly as RFC 3550 video payload formats do. Those
// back-to-back bursts are what make the reflector/broker queueing visible.
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.hpp"
#include "media/codec.hpp"
#include "rtp/session.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::media {

/// Audio packet source: one fixed-size packet per codec interval, with an
/// optional on/off talkspurt model (exponential talk and silence periods).
class AudioSource {
 public:
  struct Config {
    CodecInfo codec = codecs::g711u();
    bool talkspurt = false;
    double talk_mean_s = 1.2;
    double silence_mean_s = 1.8;
    std::uint64_t seed = 1;
  };

  AudioSource(rtp::RtpSession& session, Config cfg);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_; }
  [[nodiscard]] std::size_t packet_bytes() const { return packet_bytes_; }

 private:
  void tick(std::uint64_t n);

  rtp::RtpSession* session_;
  Config cfg_;
  Rng rng_;
  std::size_t packet_bytes_;
  std::uint32_t ts_step_;
  std::uint32_t timestamp_ = 0;
  bool talking_ = true;
  SimTime state_until_;
  std::uint64_t packets_ = 0;
  sim::PeriodicTask task_;
};

/// Video frame source: GoP-structured VBR. Every `gop_size`-th frame is an
/// I-frame `i_frame_scale` times the P-frame size; sizes are jittered
/// log-normally; the long-run bitrate converges to codec.bitrate_bps.
class VideoSource {
 public:
  struct Config {
    CodecInfo codec = codecs::mpeg4_sim();
    std::size_t gop_size = 12;
    double i_frame_scale = 3.0;
    /// Relative stddev of frame sizes around their nominal value.
    double size_jitter = 0.15;
    /// RTP payload bytes per fragment.
    std::size_t mtu_payload = 960;
    std::uint64_t seed = 1;
  };

  VideoSource(rtp::RtpSession& session, Config cfg);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t frames_emitted() const { return frames_; }
  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_; }
  /// Nominal P-frame payload size implied by the bitrate/GoP parameters.
  [[nodiscard]] std::size_t p_frame_bytes() const { return p_frame_bytes_; }

 private:
  void emit_frame(std::uint64_t n);

  rtp::RtpSession* session_;
  Config cfg_;
  Rng rng_;
  std::size_t p_frame_bytes_;
  std::uint32_t ts_step_;
  std::uint32_t timestamp_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t packets_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace gmmcs::media
