#include "media/transcoder.hpp"

namespace gmmcs::media {

Transcoder::Transcoder(sim::EventLoop& loop, Config cfg)
    : loop_(&loop), cfg_(cfg), cpu_(loop, cfg.threads, cfg.queue_limit) {}

void Transcoder::push_packet(const rtp::RtpPacket& packet) {
  std::size_t& acc = partial_[packet.timestamp];
  acc += packet.payload.size();
  if (!packet.marker) return;
  std::size_t frame_bytes = acc;
  partial_.erase(packet.timestamp);
  frame_complete(packet.timestamp, frame_bytes);
}

void Transcoder::frame_complete(std::uint32_t timestamp, std::size_t bytes) {
  ++frames_in_;
  auto cost = SimDuration{static_cast<std::int64_t>(
      cfg_.cost_per_kb.ns() * static_cast<double>(bytes) / 1024.0)};
  bool accepted = cpu_.submit(cost, [this, timestamp, bytes] {
    EncodedBlock block;
    block.timestamp = timestamp;
    block.bytes = static_cast<std::size_t>(static_cast<double>(bytes) * cfg_.output_ratio);
    block.payload_type = cfg_.output.payload_type;
    block.encoded_at = loop_->now();
    ++frames_out_;
    if (handler_) handler_(block);
  });
  if (!accepted) ++frames_dropped_;
}

void Transcoder::on_output(std::function<void(const EncodedBlock&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace gmmcs::media
