// Simulated transcoder: the paper's "Real Producer" re-encoding path.
//
// The real system received RTP audio/video from the broker, re-encoded it
// into RealMedia format and handed it to the Helix server (§3.2). What
// matters for behaviour is the *pipeline shape*: frame reassembly from RTP
// fragments, a CPU service queue with per-frame cost proportional to input
// size, and a bitrate reduction on the output. Payload bits are synthetic
// throughout the simulation, so the "encoder" transforms sizes and
// timestamps, not pixels.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/time.hpp"
#include "media/codec.hpp"
#include "rtp/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/service_center.hpp"

namespace gmmcs::media {

/// One re-encoded media block leaving the transcoder.
struct EncodedBlock {
  std::uint32_t timestamp = 0;
  std::size_t bytes = 0;
  std::uint8_t payload_type = 0;
  /// When encoding finished (includes queueing + service time).
  SimTime encoded_at;
};

class Transcoder {
 public:
  struct Config {
    CodecInfo output = codecs::real_video();
    /// Output bytes per input byte (RealMedia at a lower ladder rung).
    double output_ratio = 0.4;
    /// CPU cost per kilobyte of input frame.
    SimDuration cost_per_kb = duration_us(300);
    /// Parallel encoder threads.
    int threads = 1;
    /// Jobs waiting beyond this bound are dropped (encoder overload).
    std::size_t queue_limit = 256;
  };

  Transcoder(sim::EventLoop& loop, Config cfg);

  /// Feed an RTP fragment; a frame completes when its marker fragment
  /// arrives (fragments share a timestamp).
  void push_packet(const rtp::RtpPacket& packet);
  void on_output(std::function<void(const EncodedBlock&)> handler);

  [[nodiscard]] std::uint64_t frames_in() const { return frames_in_; }
  [[nodiscard]] std::uint64_t frames_out() const { return frames_out_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }
  [[nodiscard]] std::size_t backlog() const { return cpu_.queue_length(); }
  [[nodiscard]] SimDuration mean_encode_wait() const { return cpu_.mean_wait(); }

 private:
  void frame_complete(std::uint32_t timestamp, std::size_t bytes);

  sim::EventLoop* loop_;
  Config cfg_;
  sim::ServiceCenter cpu_;
  // timestamp -> accumulated bytes of the in-progress frame (per SSRC would
  // be needed for mixing; the producer runs one transcoder per stream).
  std::map<std::uint32_t, std::size_t> partial_;
  std::function<void(const EncodedBlock&)> handler_;
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace gmmcs::media
