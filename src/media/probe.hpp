// Media reception probe: the measurement endpoint of the experiments.
//
// Feeds raw RTP wire bytes (however they arrived — broker event payload,
// reflector datagram, RTP proxy fan-out, multicast) into ReceiverStats,
// using the payload-embedded origin stamp for true end-to-end delay.
#pragma once

#include "common/payload.hpp"
#include "common/time.hpp"
#include "media/stamp.hpp"
#include "rtp/packet.hpp"
#include "rtp/receiver_stats.hpp"

namespace gmmcs::media {

class MediaProbe {
 public:
  explicit MediaProbe(std::uint32_t clock_rate, bool record_series = false)
      : stats_(clock_rate) {
    stats_.enable_series(record_series);
  }

  /// Processes one received RTP packet (wire format) arriving at `arrival`.
  void on_wire(const Payload& rtp_wire, SimTime arrival) {
    auto r = rtp::RtpPacket::parse(rtp_wire);
    if (!r.ok()) {
      ++parse_errors_;
      return;
    }
    const rtp::RtpPacket& p = r.value();
    SimTime origin = extract_origin(p.payload).value_or(arrival);
    stats_.on_packet(p, arrival, origin);
  }

  [[nodiscard]] const rtp::ReceiverStats& stats() const { return stats_; }
  [[nodiscard]] rtp::ReceiverStats& stats() { return stats_; }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }

 private:
  rtp::ReceiverStats stats_;
  std::uint64_t parse_errors_ = 0;
};

}  // namespace gmmcs::media
