// Codec registry.
//
// Global-MMCS bridges clients with different media capabilities: H.323
// terminals (G.711/G.723 audio, H.261/H.263 video), Access Grid MBONE
// tools (vic/rat: H.261, PCM/GSM), SIP endpoints and RealMedia streaming.
// The registry carries the static parameters each codec contributes to the
// simulation: RTP payload type and clock rate, nominal bitrate, and
// packetization cadence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace gmmcs::media {

enum class MediaType { kAudio, kVideo };

struct CodecInfo {
  std::string name;
  MediaType type = MediaType::kAudio;
  /// Static RTP payload type (RFC 3551) or our dynamic assignment (96+).
  std::uint8_t payload_type = 0;
  std::uint32_t clock_rate = 8000;
  /// Nominal media bitrate in bits/second.
  double bitrate_bps = 64000;
  /// Packet (audio) or frame (video) cadence.
  SimDuration interval = duration_ms(20);
};

/// Well-known codecs used across the system.
namespace codecs {
const CodecInfo& g711u();       // PCMU audio, PT 0, 64 kbps
const CodecInfo& gsm();         // GSM audio, PT 3, 13.2 kbps
const CodecInfo& g723();        // G.723.1 audio, PT 4, 6.3 kbps
const CodecInfo& h261();        // H.261 video, PT 31, 90 kHz clock
const CodecInfo& h263();        // H.263 video, PT 34
const CodecInfo& mpeg4_sim();   // dynamic PT 96, 600 kbps video (Fig-3 stream)
const CodecInfo& real_video();  // dynamic PT 97, RealMedia re-encoded video
const CodecInfo& real_audio();  // dynamic PT 98, RealMedia re-encoded audio
}  // namespace codecs

/// All registered codecs.
const std::vector<CodecInfo>& all_codecs();
/// Lookup by name (case-insensitive) or payload type.
std::optional<CodecInfo> find_codec(std::string_view name);
std::optional<CodecInfo> find_codec(std::uint8_t payload_type);

}  // namespace gmmcs::media
