// Deterministic failure injection for the simulated network.
//
// A FaultPlan is a declarative schedule of host crashes/restarts, link
// flaps, loss bursts and partitions at absolute simulated times — the
// chaos harness behind the self-healing broker fabric experiments.
// install() translates the schedule into event-loop callbacks; because
// everything is driven by the shared deterministic EventLoop (and any
// randomness lives in the Network's seeded Rng), the same plan on the
// same seed reproduces the same run bit-for-bit. An empty plan installs
// nothing, so a run with an empty FaultPlan is byte-identical to one
// with no plan at all.
#pragma once

#include <vector>

#include "sim/network.hpp"

namespace gmmcs::sim {

class FaultPlan {
 public:
  enum class FaultKind { kHostCrash, kLinkFlap, kLossBurst, kPartition };

  struct Fault {
    FaultKind kind;
    SimTime from;
    /// End of the fault; SimTime::infinity() = permanent.
    SimTime until;
    /// kHostCrash: the host. kLinkFlap/kLossBurst: {a}. kPartition: group A.
    std::vector<NodeId> side_a;
    /// kLinkFlap/kLossBurst: {b}. kPartition: group B.
    std::vector<NodeId> side_b;
    double loss = 0.0;          // kLossBurst
    double burst_length = 1.0;  // kLossBurst
  };

  /// Host loses power at `from` and comes back at `until`.
  FaultPlan& crash_host(NodeId node, SimTime from, SimTime until = SimTime::infinity());
  /// The (a, b) path is cut for [from, until); reliable traffic included.
  FaultPlan& flap_link(NodeId a, NodeId b, SimTime from, SimTime until = SimTime::infinity());
  /// Temporarily overrides the (a, b) path's loss model (Gilbert–Elliott
  /// when burst_length > 1); the original path is restored at `until`.
  FaultPlan& loss_burst(NodeId a, NodeId b, SimTime from, SimTime until, double loss,
                        double burst_length = 1.0);
  /// Cuts every cross pair between the two host groups for [from, until).
  FaultPlan& partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b, SimTime from,
                       SimTime until = SimTime::infinity());

  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
  [[nodiscard]] bool empty() const { return faults_.empty(); }
  /// True if any scheduled fault is active at `t` (bench windowing).
  [[nodiscard]] bool active_at(SimTime t) const;

  /// Schedules every fault on the network's event loop. Call once, after
  /// the hosts referenced by the plan exist.
  void install(Network& net) const;

 private:
  std::vector<Fault> faults_;
};

}  // namespace gmmcs::sim
