// Deterministic failure injection for the simulated network.
//
// A FaultPlan is a declarative schedule of host crashes/restarts, link
// flaps, loss bursts and partitions at absolute simulated times — the
// chaos harness behind the self-healing broker fabric experiments.
// install() translates the schedule into event-loop callbacks; because
// everything is driven by the shared deterministic EventLoop (and any
// randomness lives in the Network's seeded Rng), the same plan on the
// same seed reproduces the same run bit-for-bit. An empty plan installs
// nothing, so a run with an empty FaultPlan is byte-identical to one
// with no plan at all.
#pragma once

#include <vector>

#include "sim/network.hpp"

namespace gmmcs::sim {

class FaultPlan {
 public:
  enum class FaultKind { kHostCrash, kLinkFlap, kLossBurst, kPartition, kOneWayCut, kGrayHost };

  struct Fault {
    FaultKind kind;
    SimTime from;
    /// End of the fault; SimTime::infinity() = permanent.
    SimTime until;
    /// kHostCrash/kGrayHost: the host. kLinkFlap/kLossBurst: {a}.
    /// kOneWayCut: {src}. kPartition: group A.
    std::vector<NodeId> side_a;
    /// kLinkFlap/kLossBurst: {b}. kOneWayCut: {dst}. kPartition: group B.
    std::vector<NodeId> side_b;
    double loss = 0.0;          // kLossBurst / kGrayHost
    double burst_length = 1.0;  // kLossBurst / kGrayHost
  };

  /// Host loses power at `from` and comes back at `until`. Overlapping
  /// crash windows on one host union: it restarts only when the last
  /// window ends (never, if any overlapping crash is permanent).
  FaultPlan& crash_host(NodeId node, SimTime from, SimTime until = SimTime::infinity());
  /// The (a, b) path is cut for [from, until); reliable traffic included.
  /// Overlapping cuts of the same pair (including via partition) union
  /// like crash windows.
  FaultPlan& flap_link(NodeId a, NodeId b, SimTime from, SimTime until = SimTime::infinity());
  /// Asymmetric cut: only the src → dst direction drops (reliable traffic
  /// included); dst → src keeps flowing. The failure detector on the deaf
  /// side sees the link die while the other side still hears heartbeats.
  FaultPlan& cut_oneway(NodeId src, NodeId dst, SimTime from,
                        SimTime until = SimTime::infinity());
  /// Temporarily overrides the (a, b) path's loss model (Gilbert–Elliott
  /// when burst_length > 1). Overrides stack: overlapping bursts compose
  /// and the *original* path model is restored once the last one ends.
  FaultPlan& loss_burst(NodeId a, NodeId b, SimTime from, SimTime until, double loss,
                        double burst_length = 1.0);
  /// Gray failure: the host's egress drops best-effort datagrams with the
  /// given loss model while the host and its links stay administratively
  /// up and reliable control traffic still flows.
  FaultPlan& gray_host(NodeId node, SimTime from, SimTime until, double loss,
                       double burst_length = 1.0);
  /// Cuts every cross pair between the two host groups for [from, until).
  FaultPlan& partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b, SimTime from,
                       SimTime until = SimTime::infinity());

  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
  [[nodiscard]] bool empty() const { return faults_.empty(); }
  /// True if any scheduled fault is active at `t` (bench windowing).
  [[nodiscard]] bool active_at(SimTime t) const;

  /// Schedules every fault on the network's event loop. Call once, after
  /// the hosts referenced by the plan exist.
  void install(Network& net) const;

 private:
  std::vector<Fault> faults_;
};

}  // namespace gmmcs::sim
