#include "sim/chaos_gen.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/random.hpp"

namespace gmmcs::sim {

namespace {

using FaultKind = FaultPlan::FaultKind;

constexpr std::int64_t kTrafficStartMs = 300;
// Faults on the reliable subscriber's path must leave a clean tail of
// in-order events after they heal: gap detection rides on later events
// (ReliableSubscriber adopts the first seq it sees as base, and the SYNC
// probe chain ends once a probe finds it up to date), so a fault that
// swallows the head or extends past the publish schedule could hide loss
// from the oracle legitimately. 600 ms in, 800 ms of clean tail out.
constexpr std::int64_t kRsubSafeFromMs = 600;
constexpr std::int64_t kRsubTailMarginMs = 800;

std::string ref_token(const ChaosRef& r) {
  switch (r.kind) {
    case ChaosRefKind::kBroker:
      return "b" + std::to_string(r.index);
    case ChaosRefKind::kClient:
      return "c" + std::to_string(r.index);
    case ChaosRefKind::kRsub:
      return "r";
  }
  return "?";
}

bool parse_ref(const std::string& tok, ChaosRef& out) {
  if (tok == "r") {
    out = {ChaosRefKind::kRsub, 0};
    return true;
  }
  if (tok.size() < 2 || (tok[0] != 'b' && tok[0] != 'c')) return false;
  out.kind = tok[0] == 'b' ? ChaosRefKind::kBroker : ChaosRefKind::kClient;
  out.index = std::atoi(tok.c_str() + 1);
  return true;
}

std::string time_token(SimTime t) {
  return t == SimTime::infinity() ? "inf" : std::to_string(t.ns());
}

bool parse_time(const std::string& tok, SimTime& out) {
  if (tok == "inf") {
    out = SimTime::infinity();
    return true;
  }
  out = SimTime{std::atoll(tok.c_str())};
  return true;
}

/// Shortest-roundtrip double rendering (%.17g always reparses exactly).
std::string double_token(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* topology_token(ChaosSpec::Topology t) {
  switch (t) {
    case ChaosSpec::Topology::kRing:
      return "ring";
    case ChaosSpec::Topology::kTree:
      return "tree";
    case ChaosSpec::Topology::kMesh:
      return "mesh";
  }
  return "?";
}

const char* fault_token(FaultKind k) {
  switch (k) {
    case FaultKind::kHostCrash:
      return "crash";
    case FaultKind::kLinkFlap:
      return "flap";
    case FaultKind::kLossBurst:
      return "burst";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kOneWayCut:
      return "oneway";
    case FaultKind::kGrayHost:
      return "gray";
  }
  return "?";
}

}  // namespace

std::string ChaosSpec::serialize() const {
  std::string out = "chaos-spec v1\n";
  out += "seed " + std::to_string(seed) + "\n";
  out += "topology " + std::string(topology_token(topology)) + "\n";
  out += "brokers " + std::to_string(brokers) + "\n";
  out += "gossip " + std::string(gossip ? "1" : "0") + "\n";
  out += "horizon " + std::to_string(horizon.ns()) + "\n";
  out += "settle " + std::to_string(settle.ns()) + "\n";
  out += "reliable " + std::to_string(reliable_events) + " " +
         std::to_string(reliable_spacing.ns()) + "\n";
  for (const auto& [a, b] : links) {
    out += "link " + std::to_string(a) + " " + std::to_string(b) + "\n";
  }
  for (const ChaosClient& c : clients) {
    out += "client " + std::to_string(c.broker) + " " + std::to_string(c.stream_only ? 1 : 0) +
           " " + std::to_string(c.publisher ? 1 : 0) + " " + std::to_string(c.topic) + " " +
           std::to_string(c.events) + " " + std::to_string(c.spacing.ns()) + "\n";
  }
  for (const ChaosFault& f : faults) {
    out += "fault " + std::string(fault_token(f.kind));
    switch (f.kind) {
      case FaultKind::kHostCrash:
      case FaultKind::kGrayHost:
        out += " " + ref_token(f.a);
        break;
      case FaultKind::kLinkFlap:
      case FaultKind::kLossBurst:
      case FaultKind::kOneWayCut:
        out += " " + ref_token(f.a) + " " + ref_token(f.b);
        break;
      case FaultKind::kPartition:
        break;
    }
    out += " " + time_token(f.from) + " " + time_token(f.until);
    if (f.kind == FaultKind::kLossBurst || f.kind == FaultKind::kGrayHost) {
      out += " " + double_token(f.loss) + " " + double_token(f.burst_length);
    }
    if (f.kind == FaultKind::kPartition) {
      out += " a";
      for (int i : f.group_a) out += " " + std::to_string(i);
      out += " b";
      for (int i : f.group_b) out += " " + std::to_string(i);
    }
    out += "\n";
  }
  return out;
}

std::optional<ChaosSpec> ChaosSpec::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "chaos-spec v1") return std::nullopt;
  ChaosSpec s;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seed") {
      ls >> s.seed;
    } else if (key == "topology") {
      std::string t;
      ls >> t;
      if (t == "ring") {
        s.topology = Topology::kRing;
      } else if (t == "tree") {
        s.topology = Topology::kTree;
      } else if (t == "mesh") {
        s.topology = Topology::kMesh;
      } else {
        return std::nullopt;
      }
    } else if (key == "brokers") {
      ls >> s.brokers;
    } else if (key == "gossip") {
      int v = 0;
      ls >> v;
      s.gossip = v != 0;
    } else if (key == "horizon") {
      std::int64_t ns = 0;
      ls >> ns;
      s.horizon = SimTime{ns};
    } else if (key == "settle") {
      std::int64_t ns = 0;
      ls >> ns;
      s.settle = SimDuration{ns};
    } else if (key == "reliable") {
      std::int64_t ns = 0;
      ls >> s.reliable_events >> ns;
      s.reliable_spacing = SimDuration{ns};
    } else if (key == "link") {
      int a = 0, b = 0;
      ls >> a >> b;
      s.links.emplace_back(a, b);
    } else if (key == "client") {
      ChaosClient c;
      int so = 0, pub = 0;
      std::int64_t ns = 0;
      ls >> c.broker >> so >> pub >> c.topic >> c.events >> ns;
      c.stream_only = so != 0;
      c.publisher = pub != 0;
      c.spacing = SimDuration{ns};
      s.clients.push_back(c);
    } else if (key == "fault") {
      ChaosFault f;
      std::string kind, tok;
      ls >> kind;
      if (kind == "crash") {
        f.kind = FaultKind::kHostCrash;
      } else if (kind == "flap") {
        f.kind = FaultKind::kLinkFlap;
      } else if (kind == "burst") {
        f.kind = FaultKind::kLossBurst;
      } else if (kind == "partition") {
        f.kind = FaultKind::kPartition;
      } else if (kind == "oneway") {
        f.kind = FaultKind::kOneWayCut;
      } else if (kind == "gray") {
        f.kind = FaultKind::kGrayHost;
      } else {
        return std::nullopt;
      }
      if (f.kind == FaultKind::kHostCrash || f.kind == FaultKind::kGrayHost) {
        ls >> tok;
        if (!parse_ref(tok, f.a)) return std::nullopt;
      } else if (f.kind != FaultKind::kPartition) {
        ls >> tok;
        if (!parse_ref(tok, f.a)) return std::nullopt;
        ls >> tok;
        if (!parse_ref(tok, f.b)) return std::nullopt;
      }
      ls >> tok;
      if (!parse_time(tok, f.from)) return std::nullopt;
      ls >> tok;
      if (!parse_time(tok, f.until)) return std::nullopt;
      if (f.kind == FaultKind::kLossBurst || f.kind == FaultKind::kGrayHost) {
        ls >> f.loss >> f.burst_length;
      }
      if (f.kind == FaultKind::kPartition) {
        ls >> tok;
        if (tok != "a") return std::nullopt;
        std::vector<int>* grp = &f.group_a;
        while (ls >> tok) {
          if (tok == "b") {
            grp = &f.group_b;
          } else {
            grp->push_back(std::atoi(tok.c_str()));
          }
        }
      }
      if (ls.fail() && !ls.eof()) return std::nullopt;
      s.faults.push_back(std::move(f));
    } else {
      return std::nullopt;
    }
  }
  return s;
}

std::uint64_t ChaosSpec::hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : serialize()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ChaosSpec ChaosGen::next() {
  std::uint64_t state = seed_ + 0x9E3779B97F4A7C15ull * ++count_;
  return generate(splitmix64(state));
}

ChaosSpec ChaosGen::generate(std::uint64_t seed) {
  Rng rng(seed);
  ChaosSpec s;
  s.seed = seed;

  // --- Topology ---
  s.brokers = static_cast<int>(rng.uniform_int(3, 6));
  switch (rng.uniform_int(0, 2)) {
    case 0:
      s.topology = ChaosSpec::Topology::kRing;
      for (int i = 0; i < s.brokers; ++i) s.links.emplace_back(i, (i + 1) % s.brokers);
      break;
    case 1:
      s.topology = ChaosSpec::Topology::kTree;
      for (int i = 1; i < s.brokers; ++i) {
        s.links.emplace_back(static_cast<int>(rng.uniform_int(0, i - 1)), i);
      }
      break;
    default:
      s.topology = ChaosSpec::Topology::kMesh;
      for (int i = 0; i < s.brokers; ++i) {
        for (int j = i + 1; j < s.brokers; ++j) s.links.emplace_back(i, j);
      }
      break;
  }
  s.gossip = rng.chance(0.5);

  // --- Schedules ---
  const std::int64_t horizon_ms = rng.uniform_int(3000, 4500);
  s.horizon = SimTime{duration_ms(horizon_ms).ns()};
  s.settle = duration_ms(2500);
  // Reliable stream spans most of the run (ends ~400 ms before the
  // horizon) so every rsub-path fault is followed by live traffic.
  const std::int64_t rel_spacing_ms = rng.uniform_int(20, 50);
  s.reliable_spacing = duration_ms(rel_spacing_ms);
  s.reliable_events =
      static_cast<int>((horizon_ms - kTrafficStartMs - 400) / rel_spacing_ms);
  const std::int64_t rel_end_ms = kTrafficStartMs + s.reliable_events * rel_spacing_ms;

  const int n_clients = static_cast<int>(rng.uniform_int(2, 5));
  for (int i = 0; i < n_clients; ++i) {
    ChaosClient c;
    c.broker = static_cast<int>(rng.uniform_int(0, s.brokers - 1));
    c.stream_only = rng.chance(0.35);
    c.publisher = rng.chance(0.5);
    c.topic = static_cast<int>(rng.uniform_int(0, 2));
    if (c.publisher) {
      c.events = static_cast<int>(rng.uniform_int(5, 25));
      c.spacing = duration_ms(rng.uniform_int(20, 60));
    }
    s.clients.push_back(c);
  }

  // --- Faults ---
  // General window: start after setup traffic is flowing, heal at least
  // 400 ms before the horizon so detectors and reconnects converge
  // within the settle period.
  auto window = [&rng, horizon_ms](ChaosFault& f) {
    const std::int64_t from_ms = rng.uniform_int(kTrafficStartMs, horizon_ms - 1600);
    const std::int64_t dur_ms = rng.uniform_int(300, 1200);
    f.from = SimTime{duration_ms(from_ms).ns()};
    f.until = SimTime{duration_ms(std::min(from_ms + dur_ms, horizon_ms - 400)).ns()};
  };
  auto rsub_window = [&rng, rel_end_ms](ChaosFault& f) {
    const std::int64_t hi = rel_end_ms - kRsubTailMarginMs;
    const std::int64_t from_ms = rng.uniform_int(kRsubSafeFromMs, hi - 300);
    const std::int64_t dur_ms = rng.uniform_int(300, 1200);
    f.from = SimTime{duration_ms(from_ms).ns()};
    f.until = SimTime{duration_ms(std::min(from_ms + dur_ms, hi)).ns()};
  };
  auto fabric_link = [&rng, &s] {
    return s.links[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.links.size()) - 1))];
  };
  // Endpoint pair for a path-shaped fault (burst / one-way cut): a fabric
  // link, a client <-> its broker path, or the reliable subscriber's
  // delivery path from broker 0 (inside the tail-safe window).
  auto path_endpoints = [&](ChaosFault& f) {
    const double r = rng.uniform();
    if (r < 0.5) {
      auto [a, b] = fabric_link();
      f.a = {ChaosRefKind::kBroker, a};
      f.b = {ChaosRefKind::kBroker, b};
      if (rng.chance(0.5)) std::swap(f.a, f.b);
      window(f);
    } else if (r < 0.8) {
      const int ci = static_cast<int>(rng.uniform_int(0, n_clients - 1));
      f.a = {ChaosRefKind::kClient, ci};
      f.b = {ChaosRefKind::kBroker, s.clients[static_cast<std::size_t>(ci)].broker};
      if (rng.chance(0.5)) std::swap(f.a, f.b);
      window(f);
    } else {
      f.a = {ChaosRefKind::kBroker, 0};
      f.b = {ChaosRefKind::kRsub, 0};
      rsub_window(f);
    }
  };

  const int n_faults = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < n_faults; ++i) {
    ChaosFault f;
    const double pick = rng.uniform();
    if (pick < 0.22 && s.brokers > 1) {
      // Broker crash; broker 0 anchors the reliable pipeline and is exempt.
      f.kind = FaultKind::kHostCrash;
      f.a = {ChaosRefKind::kBroker, static_cast<int>(rng.uniform_int(1, s.brokers - 1))};
      window(f);
    } else if (pick < 0.40) {
      // Client host crash; permanent with some probability — the ghost
      // client record shape the keepalive reaper exists for.
      f.kind = FaultKind::kHostCrash;
      f.a = {ChaosRefKind::kClient, static_cast<int>(rng.uniform_int(0, n_clients - 1))};
      window(f);
      if (rng.chance(0.3)) f.until = SimTime::infinity();
    } else if (pick < 0.55) {
      f.kind = FaultKind::kLinkFlap;
      auto [a, b] = fabric_link();
      f.a = {ChaosRefKind::kBroker, a};
      f.b = {ChaosRefKind::kBroker, b};
      window(f);
    } else if (pick < 0.70) {
      f.kind = FaultKind::kLossBurst;
      path_endpoints(f);
      f.loss = rng.uniform(0.3, 0.9);
      f.burst_length = rng.uniform(1.0, 5.0);
    } else if (pick < 0.82) {
      f.kind = FaultKind::kOneWayCut;
      path_endpoints(f);
    } else if (pick < 0.92 || s.brokers < 2) {
      // Gray failure: a host's best-effort egress degrades while links
      // stay up and reliable control traffic flows. Broker 0 is excluded
      // (its egress carries the reliable subscriber's delivery path
      // outside the tail-safe window).
      f.kind = FaultKind::kGrayHost;
      if (rng.chance(0.6) && s.brokers > 1) {
        f.a = {ChaosRefKind::kBroker, static_cast<int>(rng.uniform_int(1, s.brokers - 1))};
      } else {
        f.a = {ChaosRefKind::kClient, static_cast<int>(rng.uniform_int(0, n_clients - 1))};
      }
      window(f);
      f.loss = rng.uniform(0.3, 0.9);
      f.burst_length = rng.uniform(1.0, 5.0);
    } else {
      f.kind = FaultKind::kPartition;
      f.group_a.push_back(0);
      for (int b = 1; b < s.brokers; ++b) {
        (rng.chance(0.5) ? f.group_a : f.group_b).push_back(b);
      }
      if (f.group_b.empty()) {
        f.group_a.pop_back();
        f.group_b.push_back(s.brokers - 1);
      }
      window(f);
    }
    s.faults.push_back(std::move(f));
  }
  return s;
}

bool write_spec_file(const std::string& path, const ChaosSpec& spec) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << spec.serialize();
  return static_cast<bool>(out);
}

std::optional<ChaosSpec> read_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return ChaosSpec::parse(buf.str());
}

}  // namespace gmmcs::sim
