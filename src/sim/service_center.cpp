#include "sim/service_center.hpp"

#include <stdexcept>
#include <utility>

namespace gmmcs::sim {

ServiceCenter::ServiceCenter(EventLoop& loop, int servers, std::size_t queue_limit)
    : loop_(loop), servers_(servers), queue_limit_(queue_limit) {
  if (servers <= 0) throw std::invalid_argument("ServiceCenter: need at least one server");
}

bool ServiceCenter::submit(SimDuration service_time, SmallFn done) {
  ctx_.assert_held();
  Job job{loop_.now(), service_time, std::move(done)};
  if (busy_ < servers_) {
    start(std::move(job));
    return true;
  }
  if (queue_limit_ != 0 && queue_length() >= queue_limit_) {
    ++rejected_;
    return false;
  }
  queue_.push_back(std::move(job));
  return true;
}

void ServiceCenter::start(Job job) {
  ++busy_;
  total_wait_ += loop_.now() - job.enqueued;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    inflight_[slot] = std::move(job.done);
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.push_back(std::move(job.done));
  }
  // {this, slot} is 16 trivially-copyable bytes: it fits std::function's
  // inline buffer, so scheduling the completion allocates nothing. The
  // callable itself sits in inflight_[slot] (inline in the SmallFn for
  // captures up to 64 bytes).
  loop_.schedule_after(job.service, [this, slot] {
    ctx_.assert_held();  // completion fires on the owner's lane
    SmallFn done = std::move(inflight_[slot]);
    free_slots_.push_back(slot);  // safe: `done` reentering submit() sees a free slot
    --busy_;
    ++completed_;
    if (done) done();
    drain();
  });
}

void ServiceCenter::drain() {
  while (busy_ < servers_ && q_head_ < queue_.size()) {
    Job job = std::move(queue_[q_head_++]);
    if (q_head_ == queue_.size()) {
      // Drained empty: reset in place, keeping the vector's capacity.
      queue_.clear();
      q_head_ = 0;
    } else if (q_head_ >= 64 && q_head_ * 2 >= queue_.size()) {
      // Sustained backlog: trim the consumed prefix so the vector doesn't
      // grow without bound while the queue never fully empties.
      queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(q_head_));
      q_head_ = 0;
    }
    start(std::move(job));
  }
}

SimDuration ServiceCenter::mean_wait() const {
  ctx_.assert_held();
  std::uint64_t n = completed_ + static_cast<std::uint64_t>(busy_);
  if (n == 0) return SimDuration{0};
  return SimDuration{total_wait_.ns() / static_cast<std::int64_t>(n)};
}

}  // namespace gmmcs::sim
