#include "sim/service_center.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gmmcs::sim {

ServiceCenter::ServiceCenter(EventLoop& loop, int servers, std::size_t queue_limit)
    : loop_(loop), servers_(servers), queue_limit_(queue_limit) {
  if (servers <= 0) throw std::invalid_argument("ServiceCenter: need at least one server");
}

bool ServiceCenter::submit(SimDuration service_time, SmallFn done) {
  ctx_.assert_held();
  Job job{loop_.now(), service_time, std::move(done)};
  if (busy_ < servers_) {
    start(std::move(job));
    return true;
  }
  if (queue_limit_ != 0 && queue_length() >= queue_limit_) {
    ++rejected_;
    return false;
  }
  queue_.push_back(std::move(job));
  ++queued_logical_;
  return true;
}

std::size_t ServiceCenter::submit_batch(std::size_t n, const BatchParams& params,
                                        std::function<void(std::size_t)> done) {
  ctx_.assert_held();
  if (n == 0) return 0;
  // Admission as if submitted one at a time: free servers take jobs
  // regardless of the limit, the rest queue until the limit fills.
  const std::size_t free_servers =
      busy_ < servers_ ? static_cast<std::size_t>(servers_ - busy_) : 0;
  std::size_t accepted = n;
  if (queue_limit_ != 0) {
    const std::size_t room = queue_limit_ > queued_logical_ ? queue_limit_ - queued_logical_ : 0;
    accepted = std::min(n, free_servers + room);
  }
  rejected_ += n - accepted;
  if (accepted == 0) return 0;
  auto b = std::make_shared<BatchCtrl>(
      BatchCtrl{params, accepted, 0, std::move(done)});

  if (busy_ != 0) {
    // Servers occupied: ride the FIFO queue as one Job; drain() peels
    // items into servers as they free up, interleaved FIFO with any
    // classic submissions around it.
    queue_.push_back(Job{loop_.now(), params.service, {}, std::move(b)});
    queued_logical_ += accepted;
    drain();
    return accepted;
  }

  // Fast path: every server idle (the queue is then empty by drain()'s
  // invariant), which is the steady state of broker fan-out — one batch
  // per published event, usually finished before the next event arrives.
  // Expand the whole batch arithmetically: item i runs on server i % s,
  // whose ladder time f[s] is exactly when peeling would have started it,
  // so completion times match the queue path while touching the queue not
  // at all and scheduling exactly one event per item.
  const SimTime now = loop_.now();
  const std::size_t s = std::min(accepted, static_cast<std::size_t>(servers_));
  busy_ = static_cast<int>(s);
  if (accepted > s) queued_logical_ += accepted - s;
  ladder_.assign(s, now);
  for (std::size_t i = 0; i < accepted; ++i) {
    const std::size_t j = i % s;
    total_wait_ += ladder_[j] - now;
    const SimTime c = gate_completion(ladder_[j] + params.service, params);
    ladder_[j] = c;
    // Item i's completion is the moment its server picks up item i+s (the
    // ladder already accounts for that); only a server's *last* item
    // releases it. {this, b, i, release} = 33 bytes, inside SmallFn.
    const bool release = i + s >= accepted;
    loop_.schedule_at(c, [this, b, i, release] {
      ctx_.assert_held();
      if (i + static_cast<std::size_t>(servers_) < b->accepted) --queued_logical_;
      if (release) --busy_;
      ++completed_;
      if (b->done) b->done(i);
      if (release) drain();
    });
  }
  return accepted;
}

SimTime ServiceCenter::gate_completion(SimTime cpu_done, const BatchParams& p) {
  if (p.wire_bytes == 0 || p.nic_bps <= 0 || p.nic_cap == 0) return cpu_done;
  const double rate = p.nic_bps / 8e9;  // bytes per simulated ns
  const double wire = static_cast<double>(p.wire_bytes);
  // Admit once the virtual queue (backlog drains at `rate`) has headroom
  // for this copy plus the slack target.
  const double headroom_ns =
      (static_cast<double>(p.nic_cap) - static_cast<double>(p.nic_slack) - wire) / rate;
  double c = static_cast<double>(cpu_done.ns());
  c = std::max(c, nic_free_v_ - headroom_ns);
  nic_free_v_ = std::max(nic_free_v_, c) + wire / rate;
  return SimTime{static_cast<std::int64_t>(std::llround(c))};
}

void ServiceCenter::start(Job job) {
  ++busy_;
  total_wait_ += loop_.now() - job.enqueued;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    inflight_[slot] = std::move(job.done);
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.push_back(std::move(job.done));
  }
  // {this, slot} is 16 trivially-copyable bytes: it fits std::function's
  // inline buffer, so scheduling the completion allocates nothing. The
  // callable itself sits in inflight_[slot] (inline in the SmallFn for
  // captures up to 64 bytes).
  loop_.schedule_after(job.service, [this, slot] {
    ctx_.assert_held();  // completion fires on the owner's lane
    SmallFn done = std::move(inflight_[slot]);
    free_slots_.push_back(slot);  // safe: `done` reentering submit() sees a free slot
    --busy_;
    ++completed_;
    if (done) done();
    drain();
  });
}

void ServiceCenter::drain() {
  while (busy_ < servers_ && q_head_ < queue_.size()) {
    Job& front = queue_[q_head_];
    if (front.batch) {
      // Peel one batch item into the free server; the Job stays at the
      // queue front until its last item has started.
      std::shared_ptr<BatchCtrl> b = front.batch;
      const std::size_t i = b->next++;
      const SimTime enqueued = front.enqueued;
      if (b->next == b->accepted) advance_head();
      --queued_logical_;
      ++busy_;
      total_wait_ += loop_.now() - enqueued;
      const SimTime c = gate_completion(loop_.now() + b->params.service, b->params);
      loop_.schedule_at(c, [this, b, i] {
        ctx_.assert_held();
        --busy_;
        ++completed_;
        if (b->done) b->done(i);
        drain();
      });
      continue;
    }
    Job job = std::move(front);
    advance_head();
    --queued_logical_;
    start(std::move(job));
  }
}

void ServiceCenter::advance_head() {
  ++q_head_;
  if (q_head_ == queue_.size()) {
    // Drained empty: reset in place, keeping the vector's capacity.
    queue_.clear();
    q_head_ = 0;
  } else if (q_head_ >= 64 && q_head_ * 2 >= queue_.size()) {
    // Sustained backlog: trim the consumed prefix so the vector doesn't
    // grow without bound while the queue never fully empties.
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(q_head_));
    q_head_ = 0;
  }
}

SimDuration ServiceCenter::mean_wait() const {
  ctx_.assert_held();
  std::uint64_t n = completed_ + static_cast<std::uint64_t>(busy_);
  if (n == 0) return SimDuration{0};
  return SimDuration{total_wait_.ns() / static_cast<std::int64_t>(n)};
}

}  // namespace gmmcs::sim
