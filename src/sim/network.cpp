#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmmcs::sim {

std::string Endpoint::to_string() const {
  return "host" + std::to_string(node) + ":" + std::to_string(port);
}

Host::Host(Network& net, NodeId id, std::string name, NicConfig cfg)
    : net_(&net), id_(id), name_(std::move(name)), nic_(cfg) {}

EventLoop& Host::loop() const {
  return net_->loop();
}

void Host::bind(std::uint16_t port, Handler handler) {
  ctx_.assert_held();
  if (!up_) {
    throw std::logic_error("Host '" + name_ + "': bind on port " + std::to_string(port) +
                           " while host is down");
  }
  auto [it, inserted] = ports_.emplace(port, std::move(handler));
  if (!inserted) {
    throw std::logic_error("Host '" + name_ + "': port " + std::to_string(port) +
                           " already bound");
  }
}

void Host::set_up(bool up) {
  ctx_.assert_held();
  if (up_ == up) return;
  up_ = up;
  if (!up) {
    // Power loss wipes the NIC: queued bytes vanish (they must not
    // serialize when power returns) and pending queue-release callbacks
    // for them are invalidated via the epoch bump.
    last_down_at_ = loop().now();
    ++nic_epoch_;
    nic_queued_bytes_ = 0;
    nic_free_at_ = loop().now();
  }
}

std::uint16_t Host::bind_ephemeral(Handler handler) {
  ctx_.assert_held();
  while (ports_.contains(next_ephemeral_)) {
    ++next_ephemeral_;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  }
  std::uint16_t port = next_ephemeral_++;
  bind(port, std::move(handler));
  return port;
}

void Host::unbind(std::uint16_t port) {
  ctx_.assert_held();
  ports_.erase(port);
}

bool Host::is_bound(std::uint16_t port) const {
  ctx_.assert_held();
  return ports_.contains(port);
}

SimDuration Host::nic_backlog_delay() const {
  ctx_.assert_held();
  SimTime now = loop().now();
  if (nic_free_at_ <= now) return SimDuration{0};
  return nic_free_at_ - now;
}

bool Host::egress(std::size_t wire_bytes, SimTime& depart) {
  // Single-server drop-tail queue modeled in virtual time: the NIC is busy
  // until nic_free_at_; queued bytes are released when their packet departs.
  if (nic_queued_bytes_ + wire_bytes > nic_.queue_bytes) {
    ++nic_dropped_;
    return false;
  }
  EventLoop& lp = loop();
  SimTime now = lp.now();
  SimTime start = std::max(now, nic_free_at_);
  auto ser = duration_seconds(static_cast<double>(wire_bytes) * 8.0 / nic_.egress_bps);
  depart = start + ser;
  nic_free_at_ = depart;
  nic_queued_bytes_ += wire_bytes;
  ++nic_sent_;
  lp.schedule_at(depart, [this, wire_bytes, epoch = nic_epoch_] {
    ctx_.assert_held();  // queue release runs on this host's lane
    if (epoch == nic_epoch_) nic_queued_bytes_ -= wire_bytes;
  });
  return true;
}

bool Host::send(Endpoint dst, std::uint16_t src_port, Payload payload, bool reliable) {
  ctx_.assert_held();
  if (!up_) return false;
  std::size_t wire = payload.size() + nic_.overhead_bytes;
  SimTime depart;
  if (!egress(wire, depart)) return false;
  Datagram d;
  d.src = Endpoint{id_, src_port};
  d.dst = dst;
  d.payload = std::move(payload);
  d.sent_at = loop().now();
  d.reliable = reliable;
  if (egress_observer_) egress_observer_(d);
  EventLoop& lp = loop();
  if (lp.in_parallel_batch()) {
    // Cross-host effect: transmit mutates fabric-shared state (the loss
    // RNG, burst maps, arrival scheduling). Defer it to the merge barrier
    // so those draws happen in serial (when, seq) order; serial execution
    // takes the direct call and pays no closure allocation.
    lp.post_effect([net = net_, self = this, d = std::move(d), depart]() mutable {
      net->transmit(*self, std::move(d), depart);
    });
  } else {
    net_->transmit(*this, std::move(d), depart);
  }
  return true;
}

void Host::send_multicast(GroupId group, std::uint16_t src_port, Payload payload) {
  ctx_.assert_held();
  if (!up_) return;
  std::size_t wire = payload.size() + nic_.overhead_bytes;
  SimTime depart;
  if (!egress(wire, depart)) return;
  Datagram d;
  d.src = Endpoint{id_, src_port};
  d.payload = std::move(payload);
  d.sent_at = loop().now();
  d.group = group;
  EventLoop& lp = loop();
  if (lp.in_parallel_batch()) {
    lp.post_effect([net = net_, self = this, group, d = std::move(d), depart]() mutable {
      net->transmit_multicast(*self, group, std::move(d), depart);
    });
  } else {
    net_->transmit_multicast(*this, group, std::move(d), depart);
  }
}

void Host::deliver(Datagram d) {
  ctx_.assert_held();
  if (!up_) return;
  if (ingress_filter_ && !ingress_filter_(d)) return;
  auto it = ports_.find(d.dst.port);
  if (it == ports_.end()) return;  // no listener: silently dropped, like UDP
  it->second(d);
}

Network::Network(EventLoop& loop, std::uint64_t seed) : loop_(&loop), rng_(seed) {}

Host& Network::add_host(std::string name, NicConfig cfg) {
  ctx_.assert_held();
  auto id = static_cast<NodeId>(hosts_.size());
  hosts_.push_back(std::unique_ptr<Host>(new Host(*this, id, std::move(name), cfg)));
  return *hosts_.back();
}

Host& Network::host(NodeId id) {
  ctx_.assert_held();
  return *hosts_.at(id);
}

const Host& Network::host(NodeId id) const {
  ctx_.assert_held();
  return *hosts_.at(id);
}

void Network::set_path(NodeId a, NodeId b, PathConfig cfg) {
  ctx_.assert_held();
  paths_[std::minmax(a, b)] = cfg;
}

PathConfig Network::path(NodeId a, NodeId b) const {
  ctx_.assert_held();
  // Effective path: the most recent live override wins over the base model.
  if (!path_overrides_.empty()) {
    auto ov = path_overrides_.find(std::minmax(a, b));
    if (ov != path_overrides_.end() && !ov->second.empty()) return ov->second.back().second;
  }
  auto it = paths_.find(std::minmax(a, b));
  return it == paths_.end() ? default_path_ : it->second;
}

Network::OverrideToken Network::push_path_override(NodeId a, NodeId b, PathConfig cfg) {
  ctx_.assert_held();
  OverrideToken token = next_override_token_++;
  path_overrides_[std::minmax(a, b)].emplace_back(token, cfg);
  return token;
}

void Network::pop_path_override(NodeId a, NodeId b, OverrideToken token) {
  ctx_.assert_held();
  auto it = path_overrides_.find(std::minmax(a, b));
  if (it == path_overrides_.end()) return;
  auto& stack = it->second;
  std::erase_if(stack, [token](const auto& e) { return e.first == token; });
  if (stack.empty()) path_overrides_.erase(it);
}

Network::OverrideToken Network::push_host_degrade(NodeId node, double loss, double burst_length) {
  ctx_.assert_held();
  OverrideToken token = next_override_token_++;
  host_degrade_[node].emplace_back(token, loss, burst_length);
  return token;
}

void Network::pop_host_degrade(NodeId node, OverrideToken token) {
  ctx_.assert_held();
  auto it = host_degrade_.find(node);
  if (it == host_degrade_.end()) return;
  auto& stack = it->second;
  std::erase_if(stack, [token](const auto& e) { return std::get<0>(e) == token; });
  if (stack.empty()) {
    host_degrade_.erase(it);
    // Restore a clean NIC: forget the gray burst chain for this source.
    std::erase_if(gray_burst_state_,
                  [node](const auto& e) { return e.first.first == node; });
  }
}

GroupId Network::create_group() {
  ctx_.assert_held();
  GroupId g = next_group_++;
  groups_[g];
  return g;
}

void Network::join_group(GroupId group, Endpoint member) {
  ctx_.assert_held();
  auto& members = groups_.at(group);
  if (std::find(members.begin(), members.end(), member) == members.end()) {
    members.push_back(member);
  }
}

void Network::leave_group(GroupId group, Endpoint member) {
  ctx_.assert_held();
  auto& members = groups_.at(group);
  members.erase(std::remove(members.begin(), members.end(), member), members.end());
}

std::size_t Network::group_size(GroupId group) const {
  ctx_.assert_held();
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  ctx_.assert_held();
  if (up) {
    down_links_.erase(std::minmax(a, b));
  } else {
    down_links_.insert(std::minmax(a, b));
  }
}

void Network::set_link_up_oneway(NodeId src, NodeId dst, bool up) {
  ctx_.assert_held();
  if (up) {
    down_oneway_.erase({src, dst});
  } else {
    down_oneway_.insert({src, dst});
  }
}

bool Network::roll_loss(const PathConfig& cfg, NodeId src, NodeId dst) {
  return roll_loss_in(burst_state_, cfg.loss, cfg.burst_length, src, dst);
}

bool Network::roll_loss_in(std::map<std::pair<NodeId, NodeId>, bool>& state, double loss,
                           double burst_length, NodeId src, NodeId dst) {
  if (loss <= 0.0) return false;
  if (burst_length <= 1.0) return rng_.chance(loss);
  // Gilbert–Elliott: leave a burst with rate r = 1/L; enter one with
  // p = r * loss / (1 - loss), giving stationary loss p/(p+r) = loss.
  double r = 1.0 / burst_length;
  double p = r * loss / (1.0 - loss);
  bool& in_burst = state[{src, dst}];
  if (in_burst) {
    if (rng_.chance(r)) in_burst = false;
  } else {
    if (rng_.chance(p)) in_burst = true;
  }
  return in_burst;
}

bool Network::gray_drop(NodeId src, NodeId dst) {
  if (host_degrade_.empty()) return false;
  auto it = host_degrade_.find(src);
  if (it == host_degrade_.end() || it->second.empty()) return false;
  const auto& [token, loss, burst] = it->second.back();
  (void)token;
  return roll_loss_in(gray_burst_state_, loss, burst, src, dst);
}

void Network::transmit(Host& from, Datagram d, SimTime depart) {
  // Runs in serial order only: direct call in serial mode, or replayed at
  // the merge barrier via post_effect in parallel mode (see Host::send).
  ctx_.assert_held();
  // Administratively-cut links (symmetric or one-way) drop everything,
  // reliable traffic included.
  if (!link_up_directed(from.id(), d.dst.node)) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  PathConfig p = path(from.id(), d.dst.node);
  if (!d.reliable && roll_loss(p, from.id(), d.dst.node)) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Gray failure: a degraded host's egress bleeds best-effort traffic while
  // reliable control traffic still flows (detectors keep seeing a healthy
  // peer).
  if (!d.reliable && gray_drop(from.id(), d.dst.node)) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SimTime arrive = depart + p.latency;
  Host* src = &from;
  Host* dst = hosts_.at(d.dst.node).get();
  // Arrival runs on the destination's lane: it only touches dst state,
  // the commutative counters, and (read-only; writes happen in solo
  // kNoLane fault events) the source's power-down timestamp.
  auto arrival = [this, src, dst, depart, d = std::move(d)]() mutable {
    // The source crashing while the datagram sat in its NIC queue wipes it.
    if (src->egress_wiped(d.sent_at, depart)) {
      lost_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    dst->deliver(std::move(d));
  };
  loop_->schedule_at(arrive, std::move(arrival), dst->lane());
}

void Network::transmit_multicast(Host& from, GroupId group, Datagram d, SimTime depart) {
  ctx_.assert_held();
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  for (const Endpoint& member : it->second) {
    if (member.node == from.id() && member.port == d.src.port) continue;  // no self-loop
    if (!link_up_directed(from.id(), member.node)) {
      lost_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    PathConfig p = path(from.id(), member.node);
    if (roll_loss(p, from.id(), member.node) || gray_drop(from.id(), member.node)) {
      lost_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Datagram copy = d;
    copy.dst = member;
    SimTime arrive = depart + p.latency;
    Host* src = &from;
    Host* dst = hosts_.at(member.node).get();
    auto arrival = [this, src, dst, depart, copy = std::move(copy)]() mutable {
      if (src->egress_wiped(copy.sent_at, depart)) {
        lost_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      delivered_.fetch_add(1, std::memory_order_relaxed);
      dst->deliver(std::move(copy));
    };
    loop_->schedule_at(arrive, std::move(arrival), dst->lane());
  }
}

}  // namespace gmmcs::sim
