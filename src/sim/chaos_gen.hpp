// Seeded chaos generation: random fabric topologies, client populations,
// traffic schedules and fault plans for property-based testing.
//
// A ChaosSpec is pure data — broker indices, client indices and
// durations, no live objects — so it lives in the sim layer (the broker
// harness in broker/chaos.hpp materializes it). generate(seed) is a pure
// function: the same seed always yields the same spec, and a spec
// round-trips through its text form losslessly, which is what makes
// failing specs replayable from a committed seed file.
//
// The generator deliberately bounds its output so that every emitted
// spec *should* satisfy the oracle invariants (DESIGN.md §13): faults
// heal before the horizon, broker 0 (which anchors the reliable
// pipeline) never crashes, and faults on the reliable subscriber's path
// stay inside a window where gap detection is guaranteed to see a clean
// tail of later events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/fault.hpp"

namespace gmmcs::sim {

/// What a ChaosFault endpoint refers to: a broker host, a generated
/// client host, or the reliable subscriber's host (faultable only inside
/// the tail-safe window; the publisher and recovery hosts are never
/// faulted — the oracle's eventual-delivery invariant needs the recovery
/// buffer complete).
enum class ChaosRefKind { kBroker, kClient, kRsub };

struct ChaosRef {
  ChaosRefKind kind = ChaosRefKind::kBroker;
  int index = 0;  // broker or client index; unused for kRsub

  auto operator<=>(const ChaosRef&) const = default;
};

/// One generated client: attaches to a broker, subscribes to one topic
/// of a small fixed set, and optionally publishes a best-effort schedule.
struct ChaosClient {
  int broker = 0;
  /// No UDP channels — the ghost-record shape: a returning UDP client's
  /// Hello evicts its crashed incarnation's record, a stream-only one
  /// relies on the broker-side keepalive reaper.
  bool stream_only = false;
  bool publisher = false;
  int topic = 0;  // index into the generated topic set
  int events = 0;
  SimDuration spacing{};
};

struct ChaosFault {
  FaultPlan::FaultKind kind = FaultPlan::FaultKind::kHostCrash;
  SimTime from{};
  SimTime until{};  // SimTime::infinity() = permanent (client crashes only)
  ChaosRef a, b;    // endpoints, meaning as in FaultPlan::Fault
  std::vector<int> group_a, group_b;  // kPartition broker index groups
  double loss = 0.0;
  double burst_length = 1.0;
};

struct ChaosSpec {
  enum class Topology { kRing, kTree, kMesh };

  std::uint64_t seed = 0;  // the seed generate() was called with
  Topology topology = Topology::kRing;
  int brokers = 3;
  std::vector<std::pair<int, int>> links;  // broker index pairs
  /// Run the fabric with gossiped link-state (BrokerNetwork::set_gossip).
  bool gossip = false;
  std::vector<ChaosClient> clients;
  /// Reliable pipeline schedule (publisher/recovery/subscriber pinned to
  /// broker 0 by the harness).
  int reliable_events = 0;
  SimDuration reliable_spacing{};
  /// Publish schedules and faults all end before `horizon`; the run then
  /// quiesces for `settle` before the oracle inspects invariants.
  SimTime horizon{};
  SimDuration settle{};
  std::vector<ChaosFault> faults;

  /// Canonical line-based text form; parse(serialize()) == *this and
  /// serialize(parse(text)) == text for any text serialize produced.
  [[nodiscard]] std::string serialize() const;
  static std::optional<ChaosSpec> parse(const std::string& text);
  /// FNV-1a over serialize(): a stable identity for bench tagging and
  /// corpus deduplication.
  [[nodiscard]] std::uint64_t hash() const;
};

class ChaosGen {
 public:
  explicit ChaosGen(std::uint64_t seed) : seed_(seed) {}

  /// The i-th spec of this generator's stream. next() derives an
  /// independent per-spec seed (SplitMix64 over seed_ and the counter)
  /// so any single spec is reproducible from its recorded spec.seed
  /// without replaying the stream.
  ChaosSpec next();

  /// Pure function: the spec for one seed.
  static ChaosSpec generate(std::uint64_t seed);

 private:
  std::uint64_t seed_;
  std::uint64_t count_ = 0;
};

/// Seed-file helpers for the regression corpus (tests/chaos_seeds/).
/// write_spec_file refuses silently-unreplayable content: it writes
/// exactly serialize(). read_spec_file returns nullopt on IO or parse
/// failure.
bool write_spec_file(const std::string& path, const ChaosSpec& spec);
std::optional<ChaosSpec> read_spec_file(const std::string& path);

}  // namespace gmmcs::sim
