// Simulated network: hosts, NICs, paths and multicast groups.
//
// This replaces the paper's physical LAN testbed (see DESIGN.md §2). The
// model captures the mechanisms that produced the paper's measurements:
//
//  * each host has a NIC with finite egress bandwidth and a drop-tail
//    byte-bounded egress queue — serialization + queueing delay;
//  * host pairs have a path with propagation latency and random loss;
//  * multicast groups serialize once at the sender and fan out in the
//    network (used by the Access Grid / Admire communities);
//  * host CPUs are modeled separately with ServiceCenter where a component
//    wants per-packet processing costs (broker dispatch, JMF reflector).
//
// Ingress is delivered directly to the bound port handler; receive-side
// CPU contention is modeled by the components that need it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/payload.hpp"
#include "common/random.hpp"
#include "common/thread_annotations.hpp"
#include "common/time.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::sim {

using NodeId = std::uint32_t;
using GroupId = std::uint32_t;

/// A (host, port) address.
struct Endpoint {
  NodeId node = 0;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// Hash for unordered containers keyed by Endpoint (hot-path reverse
/// indexes like the broker's UDP publisher lookup). (node, port) packs
/// into 48 bits, so one integer hash covers the pair collision-free.
struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(e.node) << 16) | e.port);
  }
};

/// A datagram in flight. `sent_at` is stamped at send time so receivers can
/// compute one-way delay (all hosts share the simulation clock, mirroring
/// the paper's trick of co-locating measured receivers with the sender).
struct Datagram {
  Endpoint src;
  Endpoint dst;
  /// Ref-counted view: every hop of a fan-out shares the sender's buffer.
  Payload payload;
  SimTime sent_at;
  /// Reliable traffic (stream segments) is exempt from random path loss;
  /// retransmission is abstracted away but queueing is still paid.
  bool reliable = false;
  /// Nonzero when delivered via a multicast group.
  GroupId group = 0;
};

struct NicConfig {
  /// Egress line rate in bits per second (default: gigabit Ethernet).
  double egress_bps = 1e9;
  /// Drop-tail egress queue bound in bytes.
  std::size_t queue_bytes = 4 * 1024 * 1024;
  /// Fixed per-datagram overhead added to the payload size on the wire
  /// (frame headers). 42 ≈ Ethernet + IP + UDP.
  std::size_t overhead_bytes = 42;
};

struct PathConfig {
  /// One-way propagation delay.
  SimDuration latency = duration_us(200);
  /// Stationary loss probability.
  double loss = 0.0;
  /// Mean loss-burst length in packets. 1.0 = independent (Bernoulli)
  /// losses; >1 switches to a Gilbert–Elliott two-state model with the
  /// same stationary loss rate but correlated drops, the loss character
  /// of congested 2003 WAN paths.
  double burst_length = 1.0;
};

class Network;

/// A machine in the simulation. Obtained from Network::add_host; stable
/// address (hosts are stored as unique_ptrs).
class GMMCS_PINNED("sim hosts are built with the topology and outlive the event loop drain") Host {
 public:
  using Handler = std::function<void(const Datagram&)>;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const { return *net_; }
  EventLoop& loop() const;

  /// Binds a handler to a specific port; throws if already bound.
  void bind(std::uint16_t port, Handler handler);
  /// Binds to a fresh ephemeral port and returns it.
  std::uint16_t bind_ephemeral(Handler handler);
  void unbind(std::uint16_t port);
  [[nodiscard]] bool is_bound(std::uint16_t port) const;

  /// Sends a datagram; returns false if the NIC queue dropped it. The
  /// payload handle is shared, not copied: pass a fresh frame (`Bytes&&`
  /// adopts) or another Payload's handle (refcount bump).
  bool send(Endpoint dst, std::uint16_t src_port, Payload payload, bool reliable = false);
  /// Sends to every member of a multicast group (one NIC serialization).
  void send_multicast(GroupId group, std::uint16_t src_port, Payload payload);

  /// Parallel-dispatch lane of this host's events (DESIGN.md §9): each
  /// host gets its own lane so same-timestamp events of *different* hosts
  /// may run concurrently. kNoLane when the host is marked exclusive.
  [[nodiscard]] Lane lane() const {
    // Read cross-lane by Network::transmit when scheduling arrivals;
    // exclusive_ is configured at setup and stable while events run, so
    // the access is race-free (DESIGN.md §11).
    ctx_.assert_held();
    return exclusive_ ? kNoLane : static_cast<Lane>(id_) + 1;
  }
  /// Forces this host's events onto the global barrier lane (they then
  /// never run concurrently with anything). An opt-out for components
  /// whose handlers touch state shared across hosts without a safe read
  /// path — where per-host independence, the premise of parallel
  /// dispatch, does not hold. (BrokerNetwork used this before the
  /// epoch-snapshot control plane made its dispatch reads lock-free; no
  /// in-tree component needs it today.)
  void set_exclusive(bool on) {
    ctx_.assert_held();
    exclusive_ = on;
  }

  /// This host's NIC parameters (fixed at construction). Used by the
  /// broker's batched fan-out to expand per-copy completion times — the
  /// same serialization + drop-tail model Host::send applies — without a
  /// ServiceCenter round-trip per copy.
  [[nodiscard]] const NicConfig& nic_config() const { return nic_; }

  /// Takes the host offline: all traffic to/from it is dropped, anything
  /// still queued in the NIC is wiped (a crashed machine does not serialize
  /// its backlog on power-up), and new port binds are refused while down.
  /// Bound handlers and queued application state survive — the model is a
  /// machine losing power, not a process losing memory. Used by FaultPlan
  /// and failure-injection tests.
  void set_up(bool up);
  [[nodiscard]] bool up() const {
    ctx_.assert_held();
    return up_;
  }

  /// Ingress filter: return false to drop an arriving datagram before it
  /// reaches the port handler. Used by the transport-layer firewall model.
  void set_ingress_filter(std::function<bool(const Datagram&)> filter) {
    ctx_.assert_held();
    ingress_filter_ = std::move(filter);
  }
  /// Egress observer: sees every datagram this host successfully enqueues.
  /// Used for firewall connection tracking and traffic accounting.
  void set_egress_observer(std::function<void(const Datagram&)> observer) {
    ctx_.assert_held();
    egress_observer_ = std::move(observer);
  }

  // NIC statistics.
  [[nodiscard]] std::uint64_t nic_sent() const {
    ctx_.assert_held();
    return nic_sent_;
  }
  [[nodiscard]] std::uint64_t nic_dropped() const {
    ctx_.assert_held();
    return nic_dropped_;
  }
  [[nodiscard]] std::size_t nic_queued_bytes() const {
    ctx_.assert_held();
    return nic_queued_bytes_;
  }
  /// Instantaneous NIC queueing delay for a hypothetical new packet.
  [[nodiscard]] SimDuration nic_backlog_delay() const;

 private:
  friend class Network;
  Host(Network& net, NodeId id, std::string name, NicConfig cfg);

  /// Runs the egress pipeline; returns departure time or nullopt on drop.
  bool egress(std::size_t wire_bytes, SimTime& depart) GMMCS_REQUIRES(ctx_);
  void deliver(Datagram d);
  /// True if a datagram that entered the NIC at `sent` and would have
  /// departed at `depart` was wiped by a power-down in between.
  [[nodiscard]] bool egress_wiped(SimTime sent, SimTime depart) const {
    // Evaluated inside the *destination* host's arrival event — a
    // cross-lane read of this (the source) host's last_down_at_. Safe
    // because set_up runs only in solo kNoLane fault events, so no write
    // can be concurrent with any arrival (DESIGN.md §11).
    ctx_.assert_held();
    return last_down_at_.ns() >= 0 && last_down_at_ >= sent && last_down_at_ < depart;
  }

  Network* net_;
  NodeId id_;
  std::string name_;
  NicConfig nic_;
  /// Lane execution context (phantom capability, DESIGN.md §11): the state
  /// below is touched only by events on this host's lane — or, for the
  /// commented exceptions above, by race-free cross-lane reads.
  ExecContext ctx_;
  bool up_ GMMCS_GUARDED_BY(ctx_) = true;
  bool exclusive_ GMMCS_GUARDED_BY(ctx_) = false;
  /// Most recent power-down instant (-1 = never). Queued NIC bytes with a
  /// later departure are dropped (see egress_wiped).
  SimTime last_down_at_ GMMCS_GUARDED_BY(ctx_){-1};
  /// Bumped on power-down so pending queue-release callbacks for wiped
  /// bytes become no-ops.
  std::uint64_t nic_epoch_ GMMCS_GUARDED_BY(ctx_) = 0;
  SimTime nic_free_at_ GMMCS_GUARDED_BY(ctx_);
  std::size_t nic_queued_bytes_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t nic_sent_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t nic_dropped_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint16_t next_ephemeral_ GMMCS_GUARDED_BY(ctx_) = 49152;
  std::unordered_map<std::uint16_t, Handler> ports_ GMMCS_GUARDED_BY(ctx_);
  std::function<bool(const Datagram&)> ingress_filter_ GMMCS_GUARDED_BY(ctx_);
  std::function<void(const Datagram&)> egress_observer_ GMMCS_GUARDED_BY(ctx_);
};

/// The simulated network fabric: owns hosts, paths and multicast groups.
class GMMCS_PINNED("one Network owns the topology for the whole run and dies after the loop drains") Network {
 public:
  Network(EventLoop& loop, std::uint64_t seed = 1);

  Host& add_host(std::string name, NicConfig cfg = {});
  [[nodiscard]] Host& host(NodeId id);
  [[nodiscard]] const Host& host(NodeId id) const;
  [[nodiscard]] std::size_t host_count() const {
    ctx_.assert_held();
    return hosts_.size();
  }

  /// Sets the (symmetric) path between two hosts.
  void set_path(NodeId a, NodeId b, PathConfig cfg);
  /// Path used when no explicit one was set.
  void set_default_path(PathConfig cfg) {
    ctx_.assert_held();
    default_path_ = cfg;
  }
  [[nodiscard]] PathConfig path(NodeId a, NodeId b) const;

  /// Administratively cuts (or restores) the path between two hosts; while
  /// down, every datagram between them — reliable traffic included — is
  /// dropped. Used by FaultPlan link flaps and partitions.
  void set_link_up(NodeId a, NodeId b, bool up);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const {
    ctx_.assert_held();
    return down_links_.empty() || !down_links_.contains(std::minmax(a, b));
  }

  /// Asymmetric cut: drops datagrams traveling src → dst only; the reverse
  /// direction keeps working. Models one-way WAN failures (policy
  /// blackholes, unidirectional fiber faults) where A still hears B but B
  /// has gone deaf to A. Used by FaultPlan::cut_oneway.
  void set_link_up_oneway(NodeId src, NodeId dst, bool up);
  /// Effective directed reachability: symmetric cut AND one-way cut.
  [[nodiscard]] bool link_up_directed(NodeId src, NodeId dst) const {
    ctx_.assert_held();
    if (!link_up(src, dst)) return false;
    return down_oneway_.empty() || !down_oneway_.contains({src, dst});
  }

  /// Opaque handle for a pushed path override or host degrade; 0 is never
  /// a valid token.
  using OverrideToken = std::uint64_t;

  /// Pushes a temporary path model for (a, b) on top of the base path (and
  /// any earlier overrides). The effective path is the most recent live
  /// override, so overlapping faults compose: popping an inner override
  /// reveals the next one down, and popping the last reveals the base path
  /// — whatever set_path made it in the meantime. Used by FaultPlan loss
  /// bursts so overlapping bursts restore the *original* model at the
  /// latest `until` instead of a mid-burst snapshot.
  OverrideToken push_path_override(NodeId a, NodeId b, PathConfig cfg);
  void pop_path_override(NodeId a, NodeId b, OverrideToken token);

  /// Pushes a "gray failure" on a host: its egress silently drops
  /// non-reliable datagrams with the given loss model while the host stays
  /// up, links stay up, and reliable control traffic (heartbeats, streams)
  /// still flows — the failure detectors see a healthy peer while the data
  /// plane bleeds. Stacks like path overrides; most recent wins.
  OverrideToken push_host_degrade(NodeId node, double loss, double burst_length = 1.0);
  void pop_host_degrade(NodeId node, OverrideToken token);

  GroupId create_group();
  void join_group(GroupId group, Endpoint member);
  void leave_group(GroupId group, Endpoint member);
  [[nodiscard]] std::size_t group_size(GroupId group) const;

  [[nodiscard]] EventLoop& loop() const { return *loop_; }

  // Fabric-wide statistics.
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lost() const { return lost_.load(std::memory_order_relaxed); }

 private:
  friend class Host;
  void transmit(Host& from, Datagram d, SimTime depart);
  void transmit_multicast(Host& from, GroupId group, Datagram d, SimTime depart);
  /// Applies the path's loss model (Bernoulli or Gilbert–Elliott);
  /// true = drop. Burst state is kept per directed (src, dst) pair.
  bool roll_loss(const PathConfig& cfg, NodeId src, NodeId dst) GMMCS_REQUIRES(ctx_);
  /// Loss roll against an explicit burst-state map — gray degrades keep a
  /// chain independent of the path's own.
  bool roll_loss_in(std::map<std::pair<NodeId, NodeId>, bool>& state, double loss,
                    double burst_length, NodeId src, NodeId dst) GMMCS_REQUIRES(ctx_);
  /// True when the source host's topmost gray degrade drops this datagram.
  bool gray_drop(NodeId src, NodeId dst) GMMCS_REQUIRES(ctx_);

  EventLoop* loop_;
  /// Fabric execution context (phantom capability, DESIGN.md §11): the
  /// state below is shared across all hosts and touched only from setup
  /// code or serial-order execution — kNoLane events and the post_effect
  /// merge barrier (Host::send defers transmit there in parallel mode).
  ExecContext ctx_;
  Rng rng_ GMMCS_GUARDED_BY(ctx_);
  std::vector<std::unique_ptr<Host>> hosts_ GMMCS_GUARDED_BY(ctx_);
  PathConfig default_path_ GMMCS_GUARDED_BY(ctx_);
  std::map<std::pair<NodeId, NodeId>, PathConfig> paths_ GMMCS_GUARDED_BY(ctx_);
  GroupId next_group_ GMMCS_GUARDED_BY(ctx_) = 1;
  std::unordered_map<GroupId, std::vector<Endpoint>> groups_ GMMCS_GUARDED_BY(ctx_);
  /// Administratively-down host pairs (link flaps, partitions), keyed minmax.
  std::set<std::pair<NodeId, NodeId>> down_links_ GMMCS_GUARDED_BY(ctx_);
  /// Directed one-way cuts: (src, dst) pairs whose src → dst direction drops.
  std::set<std::pair<NodeId, NodeId>> down_oneway_ GMMCS_GUARDED_BY(ctx_);
  /// Stacked path overrides per minmax pair; the back entry is effective.
  std::map<std::pair<NodeId, NodeId>, std::vector<std::pair<OverrideToken, PathConfig>>>
      path_overrides_ GMMCS_GUARDED_BY(ctx_);
  /// Stacked gray-failure degrades per host: (token, loss, burst_length).
  std::map<NodeId, std::vector<std::tuple<OverrideToken, double, double>>> host_degrade_
      GMMCS_GUARDED_BY(ctx_);
  OverrideToken next_override_token_ GMMCS_GUARDED_BY(ctx_) = 1;
  /// Gilbert–Elliott "in a loss burst" flag per directed host pair.
  std::map<std::pair<NodeId, NodeId>, bool> burst_state_ GMMCS_GUARDED_BY(ctx_);
  /// Separate burst state for host gray-degrades (an independent loss
  /// process from the path's own Gilbert–Elliott chain).
  std::map<std::pair<NodeId, NodeId>, bool> gray_burst_state_ GMMCS_GUARDED_BY(ctx_);
  /// Commutative sums bumped from arrival events, which run concurrently
  /// on distinct lanes in parallel mode — atomic (relaxed: the value is
  /// only read between events, order never matters for a sum).
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> lost_{0};
};

}  // namespace gmmcs::sim
