// Discrete-event simulation core.
//
// A single EventLoop instance drives an entire Global-MMCS deployment:
// every host, broker, gateway and media client schedules callbacks on it.
// Events at equal times run in scheduling order (a monotonic sequence
// number breaks ties), which keeps runs fully deterministic.
//
// Parallel host dispatch (DESIGN.md §9): with set_workers(N > 1), events
// carrying *distinct lanes* (one lane per independent host) that fall on
// the same simulated timestamp execute concurrently on a host-CPU worker
// pool. A lane-tagged callback may only touch that lane's state; every
// cross-lane side effect — scheduling, cancelling, Network::transmit —
// is buffered per event while the batch runs and merged at a barrier in
// (when, seq) order, i.e. exactly the order serial execution would have
// applied it. Untagged (kNoLane) events are barriers: they run alone.
// The result is byte-identical to serial mode for any workload that
// respects lane discipline; scripts/check.sh thread (TSan) and the
// serial-vs-parallel equivalence tests certify it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/small_fn.hpp"
#include "common/thread.hpp"
#include "common/time.hpp"

namespace gmmcs::sim {

/// Handle for cancelling a scheduled event.
using TaskId = std::uint64_t;

/// Execution lane for parallel host dispatch. Events on the same lane
/// never run concurrently (they keep their (when, seq) order); events on
/// distinct lanes at the same timestamp may. kNoLane events are global
/// barriers — they always execute alone.
using Lane = std::uint32_t;
inline constexpr Lane kNoLane = 0;

class EventLoop {
 public:
  /// Scheduled-event callback. A SmallFn (64-byte inline buffer, move-only
  /// captures allowed) rather than std::function: Network::transmit
  /// arrival closures and ServiceCenter completions exceed std::function's
  /// 16-byte SBO and used to heap-allocate on every schedule.
  using Callback = SmallFn;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules a callback at an absolute time (>= now). The event inherits
  /// the lane of the event currently executing (kNoLane outside events),
  /// which keeps per-host callback chains on their host's lane.
  TaskId schedule_at(SimTime when, Callback cb);
  /// Schedules with an explicit lane (kNoLane = global barrier event).
  TaskId schedule_at(SimTime when, Callback cb, Lane lane);
  /// Schedules a callback after a relative delay (>= 0); lane inherited.
  TaskId schedule_after(SimDuration delay, Callback cb);
  TaskId schedule_after(SimDuration delay, Callback cb, Lane lane);
  /// Cancels a pending event; cancelling an already-run or unknown id is a no-op.
  void cancel(TaskId id);

  /// Runs `fn` now in serial execution. During a parallel batch the call
  /// is buffered and replayed at the merge barrier in (when, seq) order of
  /// the buffering events — the hook Network uses to keep cross-host
  /// traffic (and its RNG draws) in serial order. `fn` runs on the
  /// coordinator thread with no lane context.
  void post_effect(SmallFn fn);
  /// True while the calling thread is executing an event of a parallel
  /// batch (i.e. side effects on shared state must go through
  /// post_effect / the buffered schedule path).
  [[nodiscard]] bool in_parallel_batch() const;
  /// True while the loop is inside event execution — an inline event, a
  /// parallel batch, or the merge barrier replaying buffered effects.
  /// Deferred-publication logic (BrokerNetwork's snapshot epoch) keys off
  /// this: mutations from setup/test code publish synchronously, while
  /// mutations inside a run defer publication to a scheduled event so
  /// serial and parallel execution see epoch flips at the same (when, seq)
  /// position.
  [[nodiscard]] bool executing() const { return executing_ || in_parallel_batch(); }

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= deadline; afterwards now() == deadline.
  void run_until(SimTime deadline);
  /// Runs for the given simulated duration from the current time.
  void run_for(SimDuration d) { run_until(now_ + d); }
  /// Executes at most one event (always inline, even with workers);
  /// returns false if the queue was empty.
  bool step();

  /// Enables parallel host dispatch on `n` workers (n <= 1 = serial).
  /// Call outside run(); the pool persists until changed or destroyed.
  void set_workers(int n);
  [[nodiscard]] int workers() const { return workers_; }

  /// Lane of the event currently executing on this thread (kNoLane when
  /// called outside an event). New events inherit this by default.
  [[nodiscard]] Lane current_lane() const;

  /// Execution-trace hook, called once per executed event as (when, seq)
  /// in commit order. Serial and parallel runs of the same workload must
  /// produce identical traces — the equivalence tests assert exactly that.
  void set_trace(std::function<void(SimTime, std::uint64_t)> fn) { trace_ = std::move(fn); }

  [[nodiscard]] std::size_t pending() const { return live_; }
  /// Total events executed since construction (useful in tests).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Heap slots currently allocated, including stale entries left by
  /// cancel(); compaction keeps this within 2x of pending().
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    TaskId id;
    std::uint32_t slot;
    Lane lane;
    // Heap entries are copied around by push_heap/pop_heap; the callback
    // lives in slots_[slot] (a recycled slot table, the ServiceCenter
    // technique) so entries stay trivially copyable and scheduling an
    // event allocates nothing once the table is warm.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Callback storage for one scheduled event. `owner` is the TaskId the
  /// slot currently serves (0 = free); a heap Entry is live iff its slot
  /// still names it, which gives cancel() O(1) liveness without a map.
  struct CbSlot {
    Callback cb;
    TaskId owner = 0;
  };

  /// One buffered side effect of an event running in a parallel batch.
  struct PendingOp {
    enum class Kind { kSchedule, kCancel, kEffect };
    Kind kind;
    SimTime when;         // kSchedule
    Lane lane = kNoLane;  // kSchedule
    TaskId id = 0;        // kSchedule (pre-assigned) / kCancel
    SmallFn fn;           // kSchedule callback / kEffect closure
  };

  /// Per-event execution context while a parallel batch is in flight.
  /// Written only by the one thread running the event; read by the
  /// coordinator after the barrier (synchronized via pool_mu_).
  struct ExecCtx {
    EventLoop* loop = nullptr;
    Lane lane = kNoLane;
    TaskId id_base = 0;  // deterministic pre-assigned TaskId block
    std::uint32_t minted = 0;
    std::vector<PendingOp> ops;
  };

  struct BatchItem {
    Entry entry;
    Callback cb;
    ExecCtx ctx;
  };

  TaskId schedule_direct(SimTime when, Callback cb, Lane lane);
  void cancel_direct(TaskId id);
  /// Reserves a slot in slots_ (recycling freed ones) for `owner`'s cb.
  std::uint32_t acquire_slot(TaskId owner, Callback cb);
  /// True iff the heap entry's slot still belongs to it (not cancelled/run).
  [[nodiscard]] bool is_live(const Entry& e) const {
    return cb_slots_[e.slot].owner == e.id;
  }
  /// Moves the callback out of a live entry's slot and frees the slot.
  Callback take_callback(const Entry& e);
  /// Drops stale (cancelled) heap entries once they outnumber live ones.
  void maybe_compact();
  /// Pops cancelled entries off the heap top; false if the heap empties.
  bool prune_stale_top();
  void pop_top();
  /// Runs one event inline on the calling thread (serial execution path).
  void execute_inline(Entry e, Callback cb);
  /// Gathers and executes one same-timestamp batch (parallel mode);
  /// returns false if no live event has when <= deadline. Lane-aware
  /// lookahead: same-timestamp entries whose lane is already in the batch
  /// are deferred past (not barriers), widening the batch; they run inline
  /// at the merge barrier in exact seq order.
  bool run_batch(SimTime deadline);
  /// Applies one event's buffered ops in order (coordinator thread).
  void commit(BatchItem& item);
  void start_pool();
  void stop_pool();
  void worker_main();
  /// Claims and runs slots of batch generation `gen` until none are left
  /// (any pool thread, and the coordinator itself).
  void run_slots(std::uint64_t gen);

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Min-heap over (when, seq) maintained with std::push_heap/pop_heap so
  /// compaction can rebuild it in place after heavy cancel() churn.
  std::vector<Entry> heap_;
  /// Recycled callback storage; Entry::slot indexes it. Freed slots go on
  /// free_slots_ (LIFO, cache-warm) so steady-state scheduling never
  /// allocates. Serial TaskIds encode their slot (slot+1 in the top 31
  /// bits below kParallelIdBit, a serial counter in the low 32), which
  /// makes cancel() a direct owner-check with no lookup structure at all;
  /// parallel-minted ids carry a pre-assigned block id instead, so those
  /// (rare: only brokers schedule from batches today) go through
  /// parallel_slots_. A stale cancel can only mis-hit a recycled slot if
  /// the low 32-bit serial wraps *and* collides — 2^32 mints between a
  /// cancel and its target's reuse, which no simulated workload reaches.
  std::vector<CbSlot> cb_slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint32_t next_serial_ = 1;
  /// Slot lookup for parallel-minted (kParallelIdBit) TaskIds only.
  std::unordered_map<TaskId, std::uint32_t> parallel_slots_;
  /// Lane of the event currently running inline (coordinator thread).
  Lane inline_lane_ = kNoLane;
  /// True while an event executes or a batch merge is in progress (see
  /// executing()).
  bool executing_ = false;
  std::function<void(SimTime, std::uint64_t)> trace_;

  // --- Parallel dispatch (all touched by run_batch and the pool) ---
  int workers_ = 1;
  /// TaskIds minted inside parallel batches live above this bit so they
  /// never collide with the serial next_id_ counter.
  static constexpr TaskId kParallelIdBit = TaskId{1} << 63;
  /// Each batch slot may mint up to kIdBlock tasks while buffered.
  static constexpr TaskId kIdBlock = TaskId{1} << 16;
  TaskId next_block_base_ = kParallelIdBit;
  std::vector<BatchItem> batch_;
  /// Same-timestamp entries skipped by the lane-aware lookahead because
  /// their lane was already taken in batch_. Their callbacks stay parked
  /// in cb_slots_; the merge barrier executes them inline at their exact
  /// seq position, interleaved with the batch commits.
  std::vector<Entry> deferred_;
  /// Per-slot arenas for buffered PendingOps: batch slot i reuses the ops
  /// vector (and each op's SmallFn storage is inline anyway) it used last
  /// batch, so steady-state parallel broker fan-out stops reallocating
  /// op buffers once warm.
  std::vector<std::vector<PendingOp>> op_arena_;
  std::vector<Thread> pool_;
  Mutex pool_mu_;
  CondVar work_cv_;  // workers: new batch or shutdown
  CondVar done_cv_;  // coordinator: batch fully executed
  /// Bumped once per published batch; a worker only claims slots while
  /// its observed generation is current, which makes late wake-ups exit
  /// cleanly instead of touching a batch being rebuilt.
  std::uint64_t generation_ GMMCS_GUARDED_BY(pool_mu_) = 0;
  bool stopping_ GMMCS_GUARDED_BY(pool_mu_) = false;
  /// Snapshot of batch_ for the pool (stable while a batch is in flight).
  BatchItem* slots_ GMMCS_GUARDED_BY(pool_mu_) = nullptr;
  std::size_t batch_size_ GMMCS_GUARDED_BY(pool_mu_) = 0;
  std::size_t next_slot_ GMMCS_GUARDED_BY(pool_mu_) = 0;
  std::size_t done_count_ GMMCS_GUARDED_BY(pool_mu_) = 0;
  /// Parallel-batch execution context of the calling thread (see
  /// ExecCtx); static so the buffered schedule/cancel/post_effect paths
  /// can find it without plumbing.
  static thread_local ExecCtx* tls_ctx_;
};

/// Repeatedly invokes a callback at a fixed period until stopped.
/// The callback receives the tick index (0, 1, 2, ...).
class PeriodicTask {
 public:
  /// Ticks run on `lane` (default: the lane current when the task is
  /// started — kNoLane when started from setup code).
  PeriodicTask(EventLoop& loop, SimDuration period, std::function<void(std::uint64_t)> fn);
  PeriodicTask(EventLoop& loop, SimDuration period, std::function<void(std::uint64_t)> fn,
               Lane lane);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  /// Starts with an initial phase offset before the first tick.
  void start_after(SimDuration initial_delay);
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(SimDuration delay);

  EventLoop& loop_;
  SimDuration period_;
  std::function<void(std::uint64_t)> fn_;
  bool has_lane_ = false;
  Lane lane_ = kNoLane;
  std::uint64_t tick_ = 0;
  TaskId pending_ = 0;
  bool running_ = false;
};

}  // namespace gmmcs::sim
