// Discrete-event simulation core.
//
// A single EventLoop instance drives an entire Global-MMCS deployment:
// every host, broker, gateway and media client schedules callbacks on it.
// Events at equal times run in scheduling order (a monotonic sequence
// number breaks ties), which keeps runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace gmmcs::sim {

/// Handle for cancelling a scheduled event.
using TaskId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules a callback at an absolute time (>= now).
  TaskId schedule_at(SimTime when, Callback cb);
  /// Schedules a callback after a relative delay (>= 0).
  TaskId schedule_after(SimDuration delay, Callback cb);
  /// Cancels a pending event; cancelling an already-run or unknown id is a no-op.
  void cancel(TaskId id);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with time <= deadline; afterwards now() == deadline.
  void run_until(SimTime deadline);
  /// Runs for the given simulated duration from the current time.
  void run_for(SimDuration d) { run_until(now_ + d); }
  /// Executes at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::size_t pending() const { return size_; }
  /// Total events executed since construction (useful in tests).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    TaskId id;
    // Heap entries are copied around; the callback lives in a separate map
    // keyed by id so cancel() can drop it cheaply.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t size_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // id -> callback; erased on cancel, so stale heap entries become no-ops.
  std::unordered_map<TaskId, Callback> callbacks_;
};

/// Repeatedly invokes a callback at a fixed period until stopped.
/// The callback receives the tick index (0, 1, 2, ...).
class PeriodicTask {
 public:
  PeriodicTask(EventLoop& loop, SimDuration period, std::function<void(std::uint64_t)> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  /// Starts with an initial phase offset before the first tick.
  void start_after(SimDuration initial_delay);
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(SimDuration delay);

  EventLoop& loop_;
  SimDuration period_;
  std::function<void(std::uint64_t)> fn_;
  std::uint64_t tick_ = 0;
  TaskId pending_ = 0;
  bool running_ = false;
};

}  // namespace gmmcs::sim
