#include "sim/event_loop.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace gmmcs::sim {

thread_local EventLoop::ExecCtx* EventLoop::tls_ctx_ = nullptr;

EventLoop::~EventLoop() {
  stop_pool();
}

Lane EventLoop::current_lane() const {
  if (ExecCtx* ctx = tls_ctx_; ctx != nullptr && ctx->loop == this) return ctx->lane;
  return inline_lane_;
}

bool EventLoop::in_parallel_batch() const {
  ExecCtx* ctx = tls_ctx_;
  return ctx != nullptr && ctx->loop == this;
}

TaskId EventLoop::schedule_at(SimTime when, Callback cb) {
  return schedule_at(when, std::move(cb), current_lane());
}

TaskId EventLoop::schedule_at(SimTime when, Callback cb, Lane lane) {
  if (when < now_) when = now_;  // never schedule into the past
  if (ExecCtx* ctx = tls_ctx_; ctx != nullptr && ctx->loop == this) {
    // Parallel batch: buffer the request; the real heap entry (and its
    // tie-breaking seq) is created at the merge barrier in serial order.
    // The TaskId is pre-assigned from the event's deterministic block so
    // the caller can cancel it before or after the barrier.
    assert(ctx->minted + 1 < kIdBlock);
    TaskId id = ctx->id_base + ctx->minted++;
    ctx->ops.push_back(PendingOp{PendingOp::Kind::kSchedule, when, lane, id, std::move(cb)});
    return id;
  }
  return schedule_direct(when, std::move(cb), lane);
}

TaskId EventLoop::schedule_after(SimDuration delay, Callback cb) {
  return schedule_after(delay, std::move(cb), current_lane());
}

TaskId EventLoop::schedule_after(SimDuration delay, Callback cb, Lane lane) {
  if (delay < SimDuration{0}) delay = SimDuration{0};
  return schedule_at(now_ + delay, std::move(cb), lane);
}

std::uint32_t EventLoop::acquire_slot(TaskId owner, Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(cb_slots_.size());
    cb_slots_.emplace_back();
  }
  cb_slots_[slot].cb = std::move(cb);
  cb_slots_[slot].owner = owner;
  ++live_;
  return slot;
}

EventLoop::Callback EventLoop::take_callback(const Entry& e) {
  CbSlot& s = cb_slots_[e.slot];
  Callback cb = std::move(s.cb);  // move disengages s.cb
  s.owner = 0;
  free_slots_.push_back(e.slot);
  --live_;
  if ((e.id & kParallelIdBit) != 0) parallel_slots_.erase(e.id);
  return cb;
}

TaskId EventLoop::schedule_direct(SimTime when, Callback cb, Lane lane) {
  std::uint32_t slot = acquire_slot(/*owner=*/0, std::move(cb));
  // Serial ids encode their slot (see cb_slots_), so cancel() needs no
  // lookup; slot+1 keeps the id nonzero and below kParallelIdBit.
  TaskId id = ((TaskId{slot} + 1) << 32) | next_serial_++;
  cb_slots_[slot].owner = id;
  heap_.push_back(Entry{when, next_seq_++, id, slot, lane});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventLoop::cancel(TaskId id) {
  if (ExecCtx* ctx = tls_ctx_; ctx != nullptr && ctx->loop == this) {
    ctx->ops.push_back(PendingOp{PendingOp::Kind::kCancel, SimTime{}, kNoLane, id, nullptr});
    return;
  }
  cancel_direct(id);
}

void EventLoop::cancel_direct(TaskId id) {
  std::uint32_t slot;
  if ((id & kParallelIdBit) != 0) {
    auto it = parallel_slots_.find(id);
    if (it == parallel_slots_.end()) return;  // already run/cancelled
    slot = it->second;
    parallel_slots_.erase(it);
  } else {
    TaskId hi = id >> 32;
    if (hi == 0 || hi > cb_slots_.size()) return;  // id 0 or never minted
    slot = static_cast<std::uint32_t>(hi - 1);
  }
  CbSlot& s = cb_slots_[slot];
  if (s.owner != id) return;  // slot already recycled: stale cancel, no-op
  s.cb.reset();  // destroy captured state eagerly, as the map erase did
  s.owner = 0;
  free_slots_.push_back(slot);
  --live_;
  maybe_compact();
  // The heap entry stays (unless compacted); execution skips entries whose
  // slot no longer names them.
}

void EventLoop::maybe_compact() {
  // Lazy compaction: cancelled ids leave dead Entry records behind; once
  // they outnumber live ones (PeriodicTask-heavy fabrics churn cancels
  // every heartbeat), rebuild the heap from the live entries in O(n).
  constexpr std::size_t kCompactMin = 64;
  if (heap_.size() < kCompactMin || heap_.size() <= 2 * live_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventLoop::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

bool EventLoop::prune_stale_top() {
  while (!heap_.empty()) {
    if (is_live(heap_.front())) return true;
    pop_top();
  }
  return false;
}

void EventLoop::post_effect(SmallFn fn) {
  if (ExecCtx* ctx = tls_ctx_; ctx != nullptr && ctx->loop == this) {
    ctx->ops.push_back(
        PendingOp{PendingOp::Kind::kEffect, SimTime{}, kNoLane, 0, std::move(fn)});
    return;
  }
  fn();
}

void EventLoop::execute_inline(Entry e, Callback cb) {
  now_ = e.when;
  ++executed_;
  if (trace_) trace_(e.when, e.seq);
  Lane prev = inline_lane_;
  bool prev_exec = executing_;
  inline_lane_ = e.lane;
  executing_ = true;
  cb();
  executing_ = prev_exec;
  inline_lane_ = prev;
}

bool EventLoop::step() {
  if (!prune_stale_top()) return false;
  Entry e = heap_.front();
  pop_top();
  Callback cb = take_callback(e);
  execute_inline(std::move(e), std::move(cb));
  return true;
}

void EventLoop::run() {
  if (workers_ <= 1) {
    while (step()) {
    }
    return;
  }
  while (run_batch(SimTime::infinity())) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  if (workers_ <= 1) {
    while (prune_stale_top()) {
      if (heap_.front().when > deadline) break;
      step();
    }
  } else {
    while (run_batch(deadline)) {
    }
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventLoop::run_batch(SimTime deadline) {
  if (!prune_stale_top()) return false;
  SimTime t = heap_.front().when;
  if (t > deadline) return false;

  // Gather same-timestamp events in (when, seq) order. Events whose lane
  // is untaken join the batch; events whose lane a batch member already
  // holds are *deferred* (lane-aware lookahead) so the events behind them
  // can still widen the batch — they execute inline at the merge barrier
  // in their exact seq position, which is where serial execution would
  // have run them. Untagged (kNoLane) events are hard stops: they never
  // share a batch and never jump the lookahead.
  batch_.clear();
  deferred_.clear();
  while (prune_stale_top() && heap_.front().when == t) {
    const Entry& top = heap_.front();
    if (!batch_.empty()) {
      if (top.lane == kNoLane) break;  // barrier: stays queued for the next batch
      bool conflict = false;
      for (const BatchItem& item : batch_) conflict |= item.entry.lane == top.lane;
      if (conflict) {
        // Defer: pop the entry but leave its callback parked in cb_slots_
        // (a commit-time cancel must still be able to kill it).
        deferred_.push_back(top);
        pop_top();
        continue;
      }
    }
    Entry e = top;
    pop_top();
    Callback cb = take_callback(e);
    bool solo = e.lane == kNoLane;
    batch_.push_back(BatchItem{std::move(e), std::move(cb), ExecCtx{}});
    if (solo) break;
  }

  now_ = t;
  if (batch_.size() == 1) {
    // Nothing to parallelize: run the head event inline, then any deferred
    // entries (all same-lane with it, all later in seq order) the same way.
    BatchItem item = std::move(batch_.front());
    batch_.clear();
    execute_inline(std::move(item.entry), std::move(item.cb));
    for (std::size_t di = 0; di < deferred_.size(); ++di) {
      Entry e = deferred_[di];
      if (!is_live(e)) continue;  // cancelled by an earlier inline event
      Callback cb = take_callback(e);
      execute_inline(std::move(e), std::move(cb));
    }
    deferred_.clear();
    return true;
  }

  // Pre-assign each slot its deterministic TaskId block (in seq order) and
  // hand it last batch's ops arena so buffering doesn't reallocate.
  if (op_arena_.size() < batch_.size()) op_arena_.resize(batch_.size());
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    BatchItem& item = batch_[i];
    item.ctx.loop = this;
    item.ctx.lane = item.entry.lane;
    item.ctx.id_base = next_block_base_;
    item.ctx.ops = std::move(op_arena_[i]);
    next_block_base_ += kIdBlock;
  }

  // Publish the batch to the pool and help drain it.
  std::uint64_t gen;
  {
    MutexLock lk(pool_mu_);
    slots_ = batch_.data();
    batch_size_ = batch_.size();
    next_slot_ = 0;
    done_count_ = 0;
    gen = ++generation_;
  }
  work_cv_.notify_all();
  run_slots(gen);
  {
    MutexLock lk(pool_mu_);
    done_cv_.wait(pool_mu_, [this]() GMMCS_REQUIRES(pool_mu_) {
      return done_count_ == batch_size_;
    });
    // Close the batch: late worker wake-ups must find nothing claimable.
    batch_size_ = 0;
    slots_ = nullptr;
  }

  // Merge barrier: interleave batch commits and deferred inline events in
  // (when, seq) order — exactly the order serial execution would have
  // produced. executing_ stays set across the merge so effects that defer
  // publication (see executing()) behave identically in serial and
  // parallel runs.
  bool prev_exec = executing_;
  executing_ = true;
  std::size_t bi = 0;
  std::size_t di = 0;
  while (bi < batch_.size() || di < deferred_.size()) {
    bool take_batch = di >= deferred_.size() ||
                      (bi < batch_.size() && batch_[bi].entry.seq < deferred_[di].seq);
    if (take_batch) {
      commit(batch_[bi]);
      op_arena_[bi] = std::move(batch_[bi].ctx.ops);  // return arena (capacity kept)
      ++bi;
    } else {
      Entry e = deferred_[di++];
      if (!is_live(e)) continue;  // cancelled by an earlier commit/inline event
      Callback cb = take_callback(e);
      execute_inline(std::move(e), std::move(cb));
    }
  }
  executing_ = prev_exec;
  batch_.clear();
  deferred_.clear();
  return true;
}

void EventLoop::commit(BatchItem& item) {
  ++executed_;
  if (trace_) trace_(item.entry.when, item.entry.seq);
  for (PendingOp& op : item.ctx.ops) {
    switch (op.kind) {
      case PendingOp::Kind::kSchedule: {
        // Parallel-minted ids are pre-assigned block ids and can't encode a
        // slot, so they get a parallel_slots_ map entry.
        std::uint32_t slot = acquire_slot(op.id, std::move(op.fn));
        parallel_slots_.emplace(op.id, slot);
        heap_.push_back(Entry{op.when, next_seq_++, op.id, slot, op.lane});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        break;
      }
      case PendingOp::Kind::kCancel:
        cancel_direct(op.id);
        break;
      case PendingOp::Kind::kEffect:
        op.fn();
        break;
    }
  }
  // Destroy the callback (and anything it captured) before the next
  // slot's effects apply, matching serial destruction order.
  item.cb = nullptr;
  item.ctx.ops.clear();
}

void EventLoop::run_slots(std::uint64_t gen) {
  for (;;) {
    BatchItem* item = nullptr;
    {
      MutexLock lk(pool_mu_);
      // A stale generation means the batch this thread was woken for has
      // already been fully executed and closed — nothing to claim.
      if (gen != generation_ || next_slot_ >= batch_size_) return;
      item = &slots_[next_slot_++];
    }
    tls_ctx_ = &item->ctx;
    item->cb();
    tls_ctx_ = nullptr;
    MutexLock lk(pool_mu_);
    if (++done_count_ == batch_size_) done_cv_.notify_all();
  }
}

void EventLoop::worker_main() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      MutexLock lk(pool_mu_);
      work_cv_.wait(pool_mu_, [&]() GMMCS_REQUIRES(pool_mu_) {
        return stopping_ || generation_ != seen_gen;
      });
      if (stopping_) return;
      seen_gen = generation_;
    }
    run_slots(seen_gen);
  }
}

void EventLoop::set_workers(int n) {
  if (n < 1) n = 1;
  if (n == workers_) return;
  stop_pool();
  workers_ = n;
  if (workers_ > 1) start_pool();
}

void EventLoop::start_pool() {
  {
    MutexLock lk(pool_mu_);
    stopping_ = false;
  }
  // The coordinator claims slots too, so n workers = n-1 pool threads.
  for (int i = 1; i < workers_; ++i) {
    pool_.emplace_back([this] { worker_main(); });
  }
}

void EventLoop::stop_pool() {
  if (pool_.empty()) return;
  {
    MutexLock lk(pool_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  pool_.clear();  // Thread joins on destruction
}

PeriodicTask::PeriodicTask(EventLoop& loop, SimDuration period,
                           std::function<void(std::uint64_t)> fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {
  if (period_ <= SimDuration{0}) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
}

PeriodicTask::PeriodicTask(EventLoop& loop, SimDuration period,
                           std::function<void(std::uint64_t)> fn, Lane lane)
    : PeriodicTask(loop, period, std::move(fn)) {
  has_lane_ = true;
  lane_ = lane;
}

PeriodicTask::~PeriodicTask() {
  stop();
}

void PeriodicTask::start() {
  start_after(period_);
}

void PeriodicTask::start_after(SimDuration initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::arm(SimDuration delay) {
  auto tick = [this] {
    if (!running_) return;
    std::uint64_t t = tick_++;
    arm(period_);
    fn_(t);
  };
  pending_ = has_lane_ ? loop_.schedule_after(delay, std::move(tick), lane_)
                       : loop_.schedule_after(delay, std::move(tick));
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  loop_.cancel(pending_);
}

}  // namespace gmmcs::sim
