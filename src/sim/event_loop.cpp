#include "sim/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace gmmcs::sim {

TaskId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;  // never schedule into the past
  TaskId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++size_;
  return id;
}

TaskId EventLoop::schedule_after(SimDuration delay, Callback cb) {
  if (delay < SimDuration{0}) delay = SimDuration{0};
  return schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::cancel(TaskId id) {
  if (callbacks_.erase(id) > 0) --size_;
  // The heap entry stays; step() skips ids with no callback.
}

bool EventLoop::step() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --size_;
    now_ = e.when;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip over cancelled entries without advancing time.
    Entry e = heap_.top();
    if (callbacks_.find(e.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (e.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

PeriodicTask::PeriodicTask(EventLoop& loop, SimDuration period,
                           std::function<void(std::uint64_t)> fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {
  if (period_ <= SimDuration{0}) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
}

PeriodicTask::~PeriodicTask() {
  stop();
}

void PeriodicTask::start() {
  start_after(period_);
}

void PeriodicTask::start_after(SimDuration initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::arm(SimDuration delay) {
  pending_ = loop_.schedule_after(delay, [this] {
    if (!running_) return;
    std::uint64_t t = tick_++;
    arm(period_);
    fn_(t);
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  loop_.cancel(pending_);
}

}  // namespace gmmcs::sim
