#include "sim/fault.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

namespace gmmcs::sim {

FaultPlan& FaultPlan::crash_host(NodeId node, SimTime from, SimTime until) {
  faults_.push_back(Fault{FaultKind::kHostCrash, from, until, {node}, {}});
  return *this;
}

FaultPlan& FaultPlan::flap_link(NodeId a, NodeId b, SimTime from, SimTime until) {
  faults_.push_back(Fault{FaultKind::kLinkFlap, from, until, {a}, {b}});
  return *this;
}

FaultPlan& FaultPlan::cut_oneway(NodeId src, NodeId dst, SimTime from, SimTime until) {
  faults_.push_back(Fault{FaultKind::kOneWayCut, from, until, {src}, {dst}});
  return *this;
}

FaultPlan& FaultPlan::loss_burst(NodeId a, NodeId b, SimTime from, SimTime until, double loss,
                                 double burst_length) {
  faults_.push_back(Fault{FaultKind::kLossBurst, from, until, {a}, {b}, loss, burst_length});
  return *this;
}

FaultPlan& FaultPlan::gray_host(NodeId node, SimTime from, SimTime until, double loss,
                                double burst_length) {
  faults_.push_back(Fault{FaultKind::kGrayHost, from, until, {node}, {}, loss, burst_length});
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                                SimTime from, SimTime until) {
  faults_.push_back(
      Fault{FaultKind::kPartition, from, until, std::move(side_a), std::move(side_b)});
  return *this;
}

bool FaultPlan::active_at(SimTime t) const {
  for (const Fault& f : faults_) {
    if (f.from <= t && t < f.until) return true;
  }
  return false;
}

void FaultPlan::install(Network& net) const {
  EventLoop& loop = net.loop();
  // Boolean faults (crash / flap / cut / partition) are depth-counted per
  // host, undirected link or directed pair: overlapping intervals on the
  // same target only restore when the *last* covering fault ends, and a
  // permanent fault (until = infinity) never decrements, pinning the
  // target down forever. Without this, a short crash overlapping a
  // permanent one would revive the host at its own `until`. Loss bursts
  // and gray degrades get the same property from the network's override
  // stacks. The counter maps are shared by the scheduled events and die
  // with the last one.
  auto crash_depth = std::make_shared<std::map<NodeId, int>>();
  auto link_depth = std::make_shared<std::map<std::pair<NodeId, NodeId>, int>>();
  auto oneway_depth = std::make_shared<std::map<std::pair<NodeId, NodeId>, int>>();
  auto cut_link = [&loop, &net, &link_depth](NodeId a, NodeId b, SimTime from, SimTime until) {
    const std::pair<NodeId, NodeId> key = std::minmax(a, b);
    loop.schedule_at(from, [&net, key, link_depth] {
      if ((*link_depth)[key]++ == 0) net.set_link_up(key.first, key.second, false);
    });
    if (until != SimTime::infinity()) {
      loop.schedule_at(until, [&net, key, link_depth] {
        if (--(*link_depth)[key] == 0) net.set_link_up(key.first, key.second, true);
      });
    }
  };
  for (const Fault& f : faults_) {
    switch (f.kind) {
      case FaultKind::kHostCrash: {
        NodeId node = f.side_a.front();
        loop.schedule_at(f.from, [&net, node, crash_depth] {
          if ((*crash_depth)[node]++ == 0) net.host(node).set_up(false);
        });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until, [&net, node, crash_depth] {
            if (--(*crash_depth)[node] == 0) net.host(node).set_up(true);
          });
        }
        break;
      }
      case FaultKind::kLinkFlap:
        cut_link(f.side_a.front(), f.side_b.front(), f.from, f.until);
        break;
      case FaultKind::kLossBurst: {
        NodeId a = f.side_a.front(), b = f.side_b.front();
        // The degraded model goes on the network's override stack rather
        // than overwriting the base path: overlapping bursts (or a burst
        // spanning a flap/crash) each push and pop their own entry, so the
        // original path model reappears exactly when the last one ends.
        auto token = std::make_shared<Network::OverrideToken>(0);
        loop.schedule_at(f.from, [&net, a, b, token, loss = f.loss, burst = f.burst_length] {
          PathConfig degraded = net.path(a, b);
          degraded.loss = loss;
          degraded.burst_length = burst;
          *token = net.push_path_override(a, b, degraded);
        });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until,
                           [&net, a, b, token] { net.pop_path_override(a, b, *token); });
        }
        break;
      }
      case FaultKind::kOneWayCut: {
        const std::pair<NodeId, NodeId> key{f.side_a.front(), f.side_b.front()};
        loop.schedule_at(f.from, [&net, key, oneway_depth] {
          if ((*oneway_depth)[key]++ == 0) net.set_link_up_oneway(key.first, key.second, false);
        });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until, [&net, key, oneway_depth] {
            if (--(*oneway_depth)[key] == 0) net.set_link_up_oneway(key.first, key.second, true);
          });
        }
        break;
      }
      case FaultKind::kGrayHost: {
        NodeId node = f.side_a.front();
        auto token = std::make_shared<Network::OverrideToken>(0);
        loop.schedule_at(f.from, [&net, node, token, loss = f.loss, burst = f.burst_length] {
          *token = net.push_host_degrade(node, loss, burst);
        });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until, [&net, node, token] { net.pop_host_degrade(node, *token); });
        }
        break;
      }
      case FaultKind::kPartition: {
        // Shares the link depth counters with kLinkFlap: a flap inside a
        // partition window (or two overlapping partitions) must not
        // reconnect a pair early.
        for (NodeId a : f.side_a) {
          for (NodeId b : f.side_b) cut_link(a, b, f.from, f.until);
        }
        break;
      }
    }
  }
}

}  // namespace gmmcs::sim
