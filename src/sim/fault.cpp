#include "sim/fault.hpp"

#include <memory>
#include <utility>

namespace gmmcs::sim {

FaultPlan& FaultPlan::crash_host(NodeId node, SimTime from, SimTime until) {
  faults_.push_back(Fault{FaultKind::kHostCrash, from, until, {node}, {}});
  return *this;
}

FaultPlan& FaultPlan::flap_link(NodeId a, NodeId b, SimTime from, SimTime until) {
  faults_.push_back(Fault{FaultKind::kLinkFlap, from, until, {a}, {b}});
  return *this;
}

FaultPlan& FaultPlan::loss_burst(NodeId a, NodeId b, SimTime from, SimTime until, double loss,
                                 double burst_length) {
  faults_.push_back(Fault{FaultKind::kLossBurst, from, until, {a}, {b}, loss, burst_length});
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                                SimTime from, SimTime until) {
  faults_.push_back(
      Fault{FaultKind::kPartition, from, until, std::move(side_a), std::move(side_b)});
  return *this;
}

bool FaultPlan::active_at(SimTime t) const {
  for (const Fault& f : faults_) {
    if (f.from <= t && t < f.until) return true;
  }
  return false;
}

void FaultPlan::install(Network& net) const {
  EventLoop& loop = net.loop();
  for (const Fault& f : faults_) {
    switch (f.kind) {
      case FaultKind::kHostCrash: {
        NodeId node = f.side_a.front();
        loop.schedule_at(f.from, [&net, node] { net.host(node).set_up(false); });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until, [&net, node] { net.host(node).set_up(true); });
        }
        break;
      }
      case FaultKind::kLinkFlap: {
        NodeId a = f.side_a.front(), b = f.side_b.front();
        loop.schedule_at(f.from, [&net, a, b] { net.set_link_up(a, b, false); });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until, [&net, a, b] { net.set_link_up(a, b, true); });
        }
        break;
      }
      case FaultKind::kLossBurst: {
        NodeId a = f.side_a.front(), b = f.side_b.front();
        // The pre-burst path is captured at fire time (not install time) so
        // plans compose with later set_path calls.
        auto saved = std::make_shared<PathConfig>();
        loop.schedule_at(f.from, [&net, a, b, saved, loss = f.loss, burst = f.burst_length] {
          *saved = net.path(a, b);
          PathConfig degraded = *saved;
          degraded.loss = loss;
          degraded.burst_length = burst;
          net.set_path(a, b, degraded);
        });
        if (f.until != SimTime::infinity()) {
          loop.schedule_at(f.until, [&net, a, b, saved] { net.set_path(a, b, *saved); });
        }
        break;
      }
      case FaultKind::kPartition: {
        for (NodeId a : f.side_a) {
          for (NodeId b : f.side_b) {
            loop.schedule_at(f.from, [&net, a, b] { net.set_link_up(a, b, false); });
            if (f.until != SimTime::infinity()) {
              loop.schedule_at(f.until, [&net, a, b] { net.set_link_up(a, b, true); });
            }
          }
        }
        break;
      }
    }
  }
}

}  // namespace gmmcs::sim
