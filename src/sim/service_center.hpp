// Service centers: queueing models for CPU and thread-pool work.
//
// The paper's delay/jitter numbers were produced by queueing inside the
// broker and the JMF reflector (per-packet processing on a bounded number
// of threads). A ServiceCenter models exactly that: `k` parallel servers
// draining a FIFO queue of jobs with explicit service times. The JMF
// reflector is a ServiceCenter with one server; the optimized
// NaradaBrokering dispatch pool has several.
#pragma once

#include <cstdint>
#include <vector>

#include "common/mutex.hpp"
#include "common/small_fn.hpp"
#include "common/time.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::sim {

class ServiceCenter {
 public:
  /// servers: number of parallel workers; queue_limit: max queued jobs
  /// (0 = unbounded). Jobs arriving at a full queue are rejected.
  ServiceCenter(EventLoop& loop, int servers, std::size_t queue_limit = 0);

  /// Submits a job; `done` runs when its service time has elapsed.
  /// Returns false (and drops the job) if the queue is full. The callable
  /// rides in a SmallFn: captures up to 64 bytes cost no heap allocation.
  bool submit(SimDuration service_time, SmallFn done);

  [[nodiscard]] std::size_t queue_length() const {
    ctx_.assert_held();
    return queue_.size() - q_head_;
  }
  [[nodiscard]] int busy_servers() const {
    ctx_.assert_held();
    return busy_;
  }
  [[nodiscard]] std::uint64_t completed() const {
    ctx_.assert_held();
    return completed_;
  }
  [[nodiscard]] std::uint64_t rejected() const {
    ctx_.assert_held();
    return rejected_;
  }
  /// Total time jobs spent waiting in queue (not being served).
  [[nodiscard]] SimDuration total_wait() const {
    ctx_.assert_held();
    return total_wait_;
  }
  /// Mean queueing wait across completed jobs.
  [[nodiscard]] SimDuration mean_wait() const;

 private:
  struct Job {
    SimTime enqueued;
    SimDuration service;
    SmallFn done;
  };

  void start(Job job) GMMCS_REQUIRES(ctx_);
  void drain() GMMCS_REQUIRES(ctx_);

  EventLoop& loop_;
  int servers_;
  std::size_t queue_limit_;
  /// Owner execution context (phantom capability, DESIGN.md §11): a
  /// ServiceCenter models one component's CPU, so submissions and
  /// completions all run on that component's lane (or serially).
  ExecContext ctx_;
  int busy_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// FIFO queue as a vector + head index rather than std::deque: a deque
  /// allocates a fresh block every ~few pushes even at steady state, while
  /// this layout reuses its capacity forever (the consumed prefix is
  /// trimmed whenever the queue drains empty, which it does every time
  /// servers catch up).
  std::vector<Job> queue_ GMMCS_GUARDED_BY(ctx_);
  std::size_t q_head_ GMMCS_GUARDED_BY(ctx_) = 0;
  // In-flight completion callables, parked here so the EventLoop closure
  // only captures {this, slot} — small enough for std::function's inline
  // buffer. Freed slots are recycled LIFO.
  std::vector<SmallFn> inflight_ GMMCS_GUARDED_BY(ctx_);
  std::vector<std::uint32_t> free_slots_ GMMCS_GUARDED_BY(ctx_);
  std::uint64_t completed_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t rejected_ GMMCS_GUARDED_BY(ctx_) = 0;
  SimDuration total_wait_ GMMCS_GUARDED_BY(ctx_){};
};

}  // namespace gmmcs::sim
