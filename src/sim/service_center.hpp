// Service centers: queueing models for CPU and thread-pool work.
//
// The paper's delay/jitter numbers were produced by queueing inside the
// broker and the JMF reflector (per-packet processing on a bounded number
// of threads). A ServiceCenter models exactly that: `k` parallel servers
// draining a FIFO queue of jobs with explicit service times. The JMF
// reflector is a ServiceCenter with one server; the optimized
// NaradaBrokering dispatch pool has several.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "common/small_fn.hpp"
#include "common/thread_annotations.hpp"
#include "common/time.hpp"
#include "sim/event_loop.hpp"

namespace gmmcs::sim {

class GMMCS_PINNED("wired into its loop at startup, torn down only after the loop drains") ServiceCenter {
 public:
  /// servers: number of parallel workers; queue_limit: max queued jobs
  /// (0 = unbounded). Jobs arriving at a full queue are rejected.
  ServiceCenter(EventLoop& loop, int servers, std::size_t queue_limit = 0);

  /// Submits a job; `done` runs when its service time has elapsed.
  /// Returns false (and drops the job) if the queue is full. The callable
  /// rides in a SmallFn: captures up to 64 bytes cost no heap allocation.
  bool submit(SimDuration service_time, SmallFn done);

  /// Parameters for a batch of identical jobs (broker fan-out: one copy
  /// per recipient). `service` is the per-job CPU time; the remaining
  /// fields, when set, model egress-NIC backpressure: a job's completion
  /// (= its copy entering the NIC queue) is delayed until a virtual
  /// drop-tail queue of `nic_cap` bytes draining at `nic_bps` has at least
  /// `nic_slack` + one copy of headroom. A gated completion keeps its
  /// server busy — threads blocked on a full NIC is exactly the optimized
  /// NaradaBrokering behavior — so dispatch throughput degrades to line
  /// rate instead of flooding the queue.
  struct BatchParams {
    SimDuration service;
    std::size_t wire_bytes = 0;
    double nic_bps = 0;
    std::size_t nic_cap = 0;
    std::size_t nic_slack = 0;
  };

  /// Submits `n` identical jobs as one batch; `done(i)` runs as job i
  /// completes (FIFO-equivalent to n submit() calls, in order). Returns
  /// how many jobs were accepted (the tail past the queue limit is
  /// rejected). When all servers are idle the batch expands
  /// arithmetically — per-server completion ladders computed in one pass,
  /// one scheduled event per job and no queue traffic — which is the
  /// broker fan-out fast path; otherwise jobs peel off the shared FIFO
  /// queue one at a time as servers free up.
  std::size_t submit_batch(std::size_t n, const BatchParams& params,
                           std::function<void(std::size_t)> done);

  [[nodiscard]] std::size_t queue_length() const {
    ctx_.assert_held();
    return queued_logical_;
  }
  [[nodiscard]] int busy_servers() const {
    ctx_.assert_held();
    return busy_;
  }
  [[nodiscard]] std::uint64_t completed() const {
    ctx_.assert_held();
    return completed_;
  }
  [[nodiscard]] std::uint64_t rejected() const {
    ctx_.assert_held();
    return rejected_;
  }
  /// Total time jobs spent waiting in queue (not being served).
  [[nodiscard]] SimDuration total_wait() const {
    ctx_.assert_held();
    return total_wait_;
  }
  /// Mean queueing wait across completed jobs.
  [[nodiscard]] SimDuration mean_wait() const;

 private:
  /// Shared state of one queued batch (slow path): items peel off it one
  /// at a time; `next` is the first item not yet started.
  struct BatchCtrl {
    BatchParams params;
    std::size_t accepted = 0;
    std::size_t next = 0;
    std::function<void(std::size_t)> done;
  };

  struct Job {
    SimTime enqueued;
    SimDuration service;
    SmallFn done;
    /// Non-null for a queued batch; `done` is empty then.
    std::shared_ptr<BatchCtrl> batch;
  };

  void start(Job job) GMMCS_REQUIRES(ctx_);
  void drain() GMMCS_REQUIRES(ctx_);
  /// Advances q_head_ past the consumed front Job (reset/trim heuristics).
  void advance_head() GMMCS_REQUIRES(ctx_);
  /// Applies the virtual-NIC admission gate to a job completing its CPU
  /// service at `cpu_done`; returns the (possibly later) gated completion
  /// and accounts the copy's serialization in nic_free_v_.
  SimTime gate_completion(SimTime cpu_done, const BatchParams& p) GMMCS_REQUIRES(ctx_);

  EventLoop& loop_;
  int servers_;
  std::size_t queue_limit_;
  /// Owner execution context (phantom capability, DESIGN.md §11): a
  /// ServiceCenter models one component's CPU, so submissions and
  /// completions all run on that component's lane (or serially).
  ExecContext ctx_;
  int busy_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// FIFO queue as a vector + head index rather than std::deque: a deque
  /// allocates a fresh block every ~few pushes even at steady state, while
  /// this layout reuses its capacity forever (the consumed prefix is
  /// trimmed whenever the queue drains empty, which it does every time
  /// servers catch up).
  std::vector<Job> queue_ GMMCS_GUARDED_BY(ctx_);
  std::size_t q_head_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Logical jobs waiting (each batch item counts one): queue_length() and
  /// the admission check use this, since a batch rides in a single Job and
  /// fast-path batch items wait without touching queue_ at all.
  std::size_t queued_logical_ GMMCS_GUARDED_BY(ctx_) = 0;
  /// Per-server completion ladder arena for the batch fast path.
  std::vector<SimTime> ladder_ GMMCS_GUARDED_BY(ctx_);
  /// Virtual egress-NIC free time (ns, as a double so per-copy
  /// serialization times keep sub-ns precision across thousands of
  /// copies), for gate_completion's admission model.
  double nic_free_v_ GMMCS_GUARDED_BY(ctx_) = 0;
  // In-flight completion callables, parked here so the EventLoop closure
  // only captures {this, slot} — small enough for std::function's inline
  // buffer. Freed slots are recycled LIFO.
  std::vector<SmallFn> inflight_ GMMCS_GUARDED_BY(ctx_);
  std::vector<std::uint32_t> free_slots_ GMMCS_GUARDED_BY(ctx_);
  std::uint64_t completed_ GMMCS_GUARDED_BY(ctx_) = 0;
  std::uint64_t rejected_ GMMCS_GUARDED_BY(ctx_) = 0;
  SimDuration total_wait_ GMMCS_GUARDED_BY(ctx_){};
};

}  // namespace gmmcs::sim
