#include "h323/gateway.hpp"

#include "common/strings.hpp"

namespace gmmcs::h323 {

H323Gateway::H323Gateway(sim::Host& host, xgsp::SessionServer& sessions,
                         sim::Endpoint broker_stream)
    : host_(&host),
      sessions_(&sessions),
      broker_(broker_stream),
      q931_listener_(host, kCallSignalPort) {
  q931_listener_.on_accept(
      [this](transport::StreamConnectionPtr conn) { accept_q931(std::move(conn)); });
}

H323Gateway::Bridge& H323Gateway::bridge_for(const xgsp::Session& session) {
  auto it = bridges_.find(session.id());
  if (it == bridges_.end()) {
    it = bridges_.emplace(session.id(), Bridge{}).first;
    for (const auto& stream : session.streams()) {
      it->second.proxies.emplace(
          stream.kind,
          std::make_unique<broker::RtpProxy>(
              *host_, broker_,
              broker::RtpProxy::Config{.topic = stream.topic,
                                       .name = "h323-gw-" + session.id() + "-" + stream.kind}));
    }
  }
  return it->second;
}

void H323Gateway::accept_q931(transport::StreamConnectionPtr conn) {
  auto* raw = conn.get();
  q931_conns_[raw] = conn;
  conn->on_message([this, raw](const Payload& data) {
    auto parsed = Q931Message::decode(data);
    if (!parsed.ok()) return;
    const Q931Message& m = parsed.value();
    switch (m.type) {
      case Q931Type::kSetup:
        handle_setup(m, q931_conns_.at(raw));
        break;
      case Q931Type::kReleaseComplete:
        if (std::uint64_t id = find_call(raw, m.call_reference); id != 0) {
          teardown(id, /*send_release=*/false);
        }
        break;
      default:
        break;  // we never receive proceeding/alerting/connect as callee
    }
  });
  // A dropped signaling connection releases every call it carried — the
  // H.323-over-TCP behaviour real gateways implement.
  conn->on_close([this, raw] {
    std::vector<std::uint64_t> stale;
    for (const auto& [id, call] : calls_) {
      if (call->q931.get() == raw) stale.push_back(id);
    }
    for (std::uint64_t id : stale) teardown(id, /*send_release=*/false);
    q931_conns_.erase(raw);
  });
}

void H323Gateway::handle_setup(const Q931Message& setup, transport::StreamConnectionPtr conn) {
  ++setups_;
  auto refuse = [&](const std::string& reason) {
    Q931Message release;
    release.type = Q931Type::kReleaseComplete;
    release.call_reference = setup.call_reference;
    release.release_reason = reason;
    conn->send(release.encode());
  };
  if (!starts_with(setup.called_party, "conf-")) {
    refuse("gateway only terminates conference calls");
    return;
  }
  std::string session_id = setup.called_party.substr(5);
  xgsp::Message join = sessions_->handle(
      xgsp::Message::join(session_id, setup.calling_party, xgsp::EndpointKind::kH323));
  if (!join.ok) {
    refuse("no such conference");
    return;
  }
  const xgsp::Session& session = join.sessions.front();
  bridge_for(session);

  auto call = std::make_unique<Call>();
  Call* call_ptr = call.get();
  call->id = next_call_id_++;
  call->session_id = session_id;
  call->caller_alias = setup.calling_party;
  call->call_reference = setup.call_reference;
  call->q931 = conn;
  // A dedicated H.245 control listener per call associates the control
  // connection with this call, as per-call H.245 addresses do in H.323.
  call->h245_listener = std::make_unique<transport::StreamListener>(*host_, /*port=*/0);
  calls_[call->id] = std::move(call);

  Q931Message proceeding;
  proceeding.type = Q931Type::kCallProceeding;
  proceeding.call_reference = setup.call_reference;
  conn->send(proceeding.encode());

  Q931Message connect;
  connect.type = Q931Type::kConnect;
  connect.call_reference = setup.call_reference;
  connect.h245_address = call_ptr->h245_listener->local();
  conn->send(connect.encode());

  // The H.245 connection is shared with the peer's host tables and can
  // outlive the call (clear_call erases it from calls_ mid-run), so the
  // message handler must not hold a raw Call*: look the call up by id
  // and drop late control messages for a released call.
  call_ptr->h245_listener->on_accept([this, call_ptr](transport::StreamConnectionPtr h245) {
    call_ptr->h245 = h245;
    h245->on_message([this, id = call_ptr->id](const Payload& data) {
      auto it = calls_.find(id);
      if (it == calls_.end()) return;  // call released while in flight
      auto parsed = H245Message::decode(data);
      if (parsed.ok()) handle_h245(*it->second, parsed.value());
    });
  });
}

void H323Gateway::handle_h245(Call& call, const H245Message& m) {
  switch (m.type) {
    case H245Type::kTerminalCapabilitySet: {
      H245Message ack;
      ack.type = H245Type::kTerminalCapabilitySetAck;
      ack.seq = m.seq;
      call.h245->send(ack.encode());
      // The gateway bridges any payload type the broker carries, so its
      // own TCS advertises the union the session codecs use.
      H245Message tcs;
      tcs.type = H245Type::kTerminalCapabilitySet;
      tcs.capabilities = {0, 3, 4, 31, 34, 96};
      call.h245->send(tcs.encode());
      break;
    }
    case H245Type::kMasterSlaveDetermination: {
      H245Message ack;
      ack.type = H245Type::kMasterSlaveAck;
      ack.seq = m.seq;
      call.h245->send(ack.encode());
      break;
    }
    case H245Type::kOpenLogicalChannel: {
      auto bit = bridges_.find(call.session_id);
      H245Message resp;
      resp.seq = m.seq;
      resp.channel = m.channel;
      if (bit == bridges_.end() || !bit->second.proxies.contains(m.media_kind)) {
        resp.type = H245Type::kOpenLogicalChannelReject;
        resp.reject_reason = "no such media stream in session";
      } else {
        auto& proxy = bit->second.proxies.at(m.media_kind);
        proxy->add_receiver(m.media_address);
        call.receiver_regs[m.media_kind] = m.media_address;
        resp.type = H245Type::kOpenLogicalChannelAck;
        resp.media_kind = m.media_kind;
        resp.media_address = proxy->rtp_ingress();
      }
      call.h245->send(resp.encode());
      break;
    }
    case H245Type::kCloseLogicalChannel: {
      auto bit = bridges_.find(call.session_id);
      auto rit = call.receiver_regs.find(m.media_kind);
      if (bit != bridges_.end() && rit != call.receiver_regs.end()) {
        auto pit = bit->second.proxies.find(m.media_kind);
        if (pit != bit->second.proxies.end()) pit->second->remove_receiver(rit->second);
        call.receiver_regs.erase(rit);
      }
      H245Message ack;
      ack.type = H245Type::kCloseLogicalChannelAck;
      ack.seq = m.seq;
      ack.media_kind = m.media_kind;
      call.h245->send(ack.encode());
      break;
    }
    case H245Type::kEndSession:
      teardown(call.id, /*send_release=*/true);
      break;
    default:
      // Acks/rejects of our own outbound H.245 requests need no reaction:
      // channels open optimistically and teardown is driven by kEndSession.
      break;
  }
}

std::uint64_t H323Gateway::find_call(const transport::StreamConnection* q931,
                                     std::uint16_t call_reference) const {
  for (const auto& [id, call] : calls_) {
    if (call->q931.get() == q931 && call->call_reference == call_reference) return id;
  }
  return 0;
}

void H323Gateway::teardown(std::uint64_t call_id, bool send_release) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = *it->second;
  auto bit = bridges_.find(call.session_id);
  if (bit != bridges_.end()) {
    for (const auto& [kind, ep] : call.receiver_regs) {
      auto pit = bit->second.proxies.find(kind);
      if (pit != bit->second.proxies.end()) pit->second->remove_receiver(ep);
    }
  }
  sessions_->handle(xgsp::Message::leave(call.session_id, call.caller_alias));
  if (send_release && call.q931) {
    Q931Message release;
    release.type = Q931Type::kReleaseComplete;
    release.call_reference = call.call_reference;
    call.q931->send(release.encode());
  }
  calls_.erase(it);
}

}  // namespace gmmcs::h323
